package vsnoop

import "testing"

func quick(cfg Config) Config {
	cfg.RefsPerVCPU = 2500
	cfg.WarmupRefs = 500
	return cfg
}

func TestRunBaselineVsVirtualSnooping(t *testing.T) {
	base := quick(DefaultConfig())
	base.Policy = PolicyBroadcast
	bres, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	vs := quick(DefaultConfig())
	vs.Policy = PolicyBase
	vres, err := Run(vs)
	if err != nil {
		t.Fatal(err)
	}
	if bres.SnoopsPerTransaction < 15.5 {
		t.Fatalf("baseline snoops/txn = %.2f, want 16", bres.SnoopsPerTransaction)
	}
	ratio := vres.SnoopsPerTransaction / bres.SnoopsPerTransaction
	if ratio > 0.3 {
		t.Fatalf("virtual snooping ratio = %.2f, want ~0.25", ratio)
	}
	if vres.TrafficByteHops >= bres.TrafficByteHops {
		t.Fatal("virtual snooping did not reduce traffic")
	}
}

func TestRunRejectsUnknownWorkload(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload = "doom"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunRejectsEmptyWorkload(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload = ""
	if _, err := Run(cfg); err == nil {
		t.Fatal("empty workload accepted")
	}
}

func TestWorkloadsListed(t *testing.T) {
	ws := Workloads()
	if len(ws) < 20 {
		t.Fatalf("only %d workloads", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		seen[w] = true
	}
	for _, want := range []string{"fft", "blackscholes", "specjbb", "oltp"} {
		if !seen[want] {
			t.Fatalf("workload %q missing", want)
		}
	}
}

func TestRunWithMigrationAndCounter(t *testing.T) {
	cfg := quick(DefaultConfig())
	cfg.Policy = PolicyCounter
	cfg.MigrationPeriodMs = 1
	cfg.CyclesPerMs = 10_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relocations == 0 {
		t.Fatal("no relocations despite migration period")
	}
}

func TestRunContentSharing(t *testing.T) {
	cfg := quick(DefaultConfig())
	cfg.Workload = "canneal"
	cfg.ContentSharing = true
	cfg.Content = ContentMemoryDirect
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ContentAccessPct <= 0 {
		t.Fatal("content sharing produced no content accesses")
	}
}

func TestPolicyStrings(t *testing.T) {
	if PolicyCounter.String() != "counter" || PolicyBroadcast.String() != "tokenB" {
		t.Fatal("policy names wrong")
	}
	if ContentMemoryDirect.String() != "memory-direct" {
		t.Fatal("content policy names wrong")
	}
}
