module vsnoop

go 1.22
