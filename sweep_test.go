package vsnoop

import (
	"fmt"
	"testing"

	"vsnoop/internal/runner"
)

// TestParallelSweepMatchesSerial drives the vsnoop-sweep harness shape — a
// job list executed through runner.Stream — once with a single worker and
// once with several, and requires the emitted rows to match exactly. This is
// the end-to-end determinism guarantee for parallel sweeps: worker count
// must never change output, only wall-clock time.
func TestParallelSweepMatchesSerial(t *testing.T) {
	var cfgs []Config
	for _, app := range []string{"fft", "ocean"} {
		for _, period := range []float64{0, 2.5} {
			for _, pol := range []Policy{PolicyBroadcast, PolicyCounter} {
				cfg := DefaultConfig()
				cfg.Workload = app
				cfg.Policy = pol
				cfg.RefsPerVCPU = 1200
				cfg.WarmupRefs = 200
				cfg.MigrationPeriodMs = period
				cfg.CyclesPerMs = 12000
				cfg.Seed = 2
				cfgs = append(cfgs, cfg)
			}
		}
	}

	row := func(cfg Config) string {
		res, err := Run(cfg)
		if err != nil {
			t.Errorf("%s/%s: %v", cfg.Workload, cfg.Policy, err)
			return "error"
		}
		return fmt.Sprintf("%s,%g,%s,%.3f,%d,%d,%d",
			cfg.Workload, cfg.MigrationPeriodMs, cfg.Policy,
			res.SnoopsPerTransaction, res.TrafficByteHops,
			res.ExecCycles, res.Relocations)
	}

	sweep := func(workers int) []string {
		rows := make([]string, 0, len(cfgs))
		runner.Stream(workers, len(cfgs), func(i int) string {
			return row(cfgs[i])
		}, func(_ int, r string) {
			rows = append(rows, r)
		})
		return rows
	}

	serial := sweep(1)
	parallel := sweep(4)
	if len(serial) != len(parallel) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("row %d differs:\nserial:   %s\nparallel: %s", i, serial[i], parallel[i])
		}
	}
}
