package check_test

import (
	"strings"
	"testing"

	"vsnoop/internal/cache"
	"vsnoop/internal/check"
	"vsnoop/internal/mem"
	"vsnoop/internal/memctrl"
	"vsnoop/internal/mesh"
	"vsnoop/internal/sim"
	"vsnoop/internal/token"
)

func TestLedgerBookkeeping(t *testing.T) {
	l := check.NewLedger()
	l.Depart(64, 3, true)
	if tok, own := l.Inflight(64); tok != 3 || own != 1 {
		t.Fatalf("inflight = %d/%d, want 3/1", tok, own)
	}
	l.Depart(64, 1, false)
	l.Arrive(64, 3, true)
	if tok, own := l.Inflight(64); tok != 1 || own != 0 {
		t.Fatalf("inflight = %d/%d, want 1/0", tok, own)
	}
	l.Arrive(64, 1, false)
	if tok, own := l.Inflight(64); tok != 0 || own != 0 {
		t.Fatalf("inflight = %d/%d, want 0/0 (entry cleared)", tok, own)
	}
}

// broadcastRouter snoops every other core (TokenB baseline).
type broadcastRouter struct{ all []mesh.NodeID }

func (r broadcastRouter) Route(info token.RouteInfo) []mesh.NodeID {
	out := make([]mesh.NodeID, 0, len(r.all)-1)
	for _, n := range r.all {
		if n != info.CoreNode {
			out = append(out, n)
		}
	}
	return out
}

// blackholeRouter filters everything AND pairs with an unhandled MC node,
// so a transaction can never complete (liveness-test rig).
type blackholeRouter struct{}

func (blackholeRouter) Route(token.RouteInfo) []mesh.NodeID { return nil }

type rig struct {
	eng   *sim.Engine
	ctrls []*token.CacheCtrl
	l2s   []*cache.Cache
	mc    *memctrl.Ctrl
	led   *check.Ledger
	p     token.Params
}

// newRig wires n cores + one MC with the in-flight ledger observing every
// controller, mirroring internal/system's checker wiring.
func newRig(t *testing.T, n int, blackhole bool) *rig {
	t.Helper()
	eng := sim.NewEngine()
	net := mesh.New(eng, mesh.DefaultConfig())
	p := token.DefaultParams(n)
	led := check.NewLedger()

	coreNodes := make([]mesh.NodeID, n)
	for i := range coreNodes {
		coreNodes[i] = net.Attach(i%4, i/4, nil)
	}
	mcNode := net.Attach(0, 0, nil)
	mc := &memctrl.Ctrl{Eng: eng, Net: net, Node: mcNode, P: p, AllCaches: coreNodes}
	mc.Init()
	mc.Obs = led
	if !blackhole {
		net.SetHandler(mcNode, mc.Handle)
	}

	r := &rig{eng: eng, mc: mc, led: led, p: p}
	for i := 0; i < n; i++ {
		l2 := cache.New(cache.Config{Name: "L2", SizeBytes: 16 * 1024, Ways: 8, BlockBytes: 64, HitLatency: 10})
		c := &token.CacheCtrl{
			Eng: eng, Net: net, Node: coreNodes[i], Core: i, L2: l2, P: p,
			MCNodes: []mesh.NodeID{mcNode},
		}
		if blackhole {
			c.Router = blackholeRouter{}
		} else {
			c.Router = broadcastRouter{all: coreNodes}
		}
		others := make([]mesh.NodeID, 0, n-1)
		for j, nd := range coreNodes {
			if j != i {
				others = append(others, nd)
			}
		}
		c.AllCores = others
		c.Obs = led
		c.Init()
		net.SetHandler(coreNodes[i], c.Handle)
		r.ctrls = append(r.ctrls, c)
		r.l2s = append(r.l2s, l2)
	}
	return r
}

func (r *rig) conservation() check.Invariant {
	return check.TokenConservation(r.p.TotalTokens, r.l2s, []*memctrl.Ctrl{r.mc}, r.led)
}

func TestInvariantsHoldAfterTransactions(t *testing.T) {
	r := newRig(t, 4, false)
	// A read-share then write-invalidate sequence across cores, twice
	// (one transaction per controller at a time).
	addrs := []mem.BlockAddr{100, 228}
	for _, a := range addrs {
		r.ctrls[0].Start(a, 1, mem.PagePrivate, false, func() {})
		r.ctrls[1].Start(a, 1, mem.PagePrivate, false, func() {})
		r.eng.Run()
		r.ctrls[2].Start(a, 1, mem.PagePrivate, true, func() {})
		r.eng.Run()
	}

	for _, inv := range []check.Invariant{
		r.conservation(), check.SingleWriter(r.p.TotalTokens, r.l2s),
	} {
		if v := inv.Check(); len(v) != 0 {
			t.Fatalf("%s violated on a clean run: %v", inv.Name, v)
		}
	}
	// The in-flight ledger must be empty at quiescence.
	for _, a := range addrs {
		if tok, own := r.led.Inflight(a); tok != 0 || own != 0 {
			t.Fatalf("block %d: %d tokens / %d owners still in flight at quiescence", a, tok, own)
		}
	}
}

func TestConservationDetectsForgedAndLostTokens(t *testing.T) {
	for _, tc := range []struct {
		name  string
		delta int
	}{{"forged", +1}, {"lost", -1}} {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t, 4, false)
			r.ctrls[0].Start(100, 1, mem.PagePrivate, true, func() {})
			r.eng.Run()
			b := r.l2s[0].Lookup(100)
			if b == nil {
				t.Fatal("writer line missing")
			}
			b.Tokens += tc.delta // simulated state corruption
			v := r.conservation().Check()
			if len(v) == 0 {
				t.Fatalf("%s token not detected", tc.name)
			}
			if !strings.Contains(v[0], "tokens") {
				t.Fatalf("unexpected violation text: %q", v[0])
			}
		})
	}
}

func TestSingleWriterDetectsDoubleOwner(t *testing.T) {
	r := newRig(t, 4, false)
	// A write brings the owner token into l2s[0].
	r.ctrls[0].Start(100, 1, mem.PagePrivate, true, func() {})
	r.eng.Run()
	// Forge a second owner copy in another cache.
	b, _, _ := r.l2s[3].Insert(100, 1)
	b.Tokens, b.Owner = 1, true
	found := false
	for _, v := range check.SingleWriter(r.p.TotalTokens, r.l2s).Check() {
		if strings.Contains(v, "owner") {
			found = true
		}
	}
	if !found {
		t.Fatal("double owner not detected")
	}
}

func TestSingleWriterAllowsFullyCachedSharing(t *testing.T) {
	// Regression: all tokens residing in caches split among readers is
	// legal sharing, not a writer violation.
	r := newRig(t, 4, false)
	b0, _, _ := r.l2s[0].Insert(100, 1)
	b0.Tokens, b0.Owner = r.p.TotalTokens-1, true
	b1, _, _ := r.l2s[1].Insert(100, 1)
	b1.Tokens = 1
	if v := check.SingleWriter(r.p.TotalTokens, r.l2s).Check(); len(v) != 0 {
		t.Fatalf("legal reader sharing flagged: %v", v)
	}
}

func TestSingleWriterDetectsWriterWithCompany(t *testing.T) {
	r := newRig(t, 4, false)
	b0, _, _ := r.l2s[0].Insert(100, 1)
	b0.Tokens, b0.Owner = r.p.TotalTokens, true // a writer...
	b1, _, _ := r.l2s[1].Insert(100, 1)
	b1.Tokens = 1 // ...plus another holder
	found := false
	for _, v := range check.SingleWriter(r.p.TotalTokens, r.l2s).Check() {
		if strings.Contains(v, "writer coexists") {
			found = true
		}
	}
	if !found {
		t.Fatal("writer-with-company not detected")
	}
}

func TestTxnCompletionFlagsStuckTransaction(t *testing.T) {
	r := newRig(t, 4, true) // black hole: requests route nowhere, MC is deaf
	r.ctrls[0].Start(100, 1, mem.PagePrivate, false, func() {})
	r.eng.RunUntil(20000)
	inv := check.TxnCompletion(r.eng.Now, r.ctrls, 5000)
	v := inv.Check()
	if len(v) == 0 {
		t.Fatal("stuck transaction not flagged")
	}
	if !strings.Contains(v[0], "core 0") || !strings.Contains(v[0], "outstanding") {
		t.Fatalf("unexpected violation text: %q", v[0])
	}
}

func TestCheckerPeriodicAndCap(t *testing.T) {
	eng := sim.NewEngine()
	c := &check.Checker{Eng: eng, Period: 100, MaxViolations: 3}
	calls := 0
	c.Register("always-bad", func() []string { calls++; return []string{"boom"} })
	c.Start()
	// Keep the engine alive for exactly 10 periods (stop just after the
	// 10th tick so same-cycle queue order can't race it).
	eng.Schedule(1050, func() { c.Stop() })
	eng.Run()
	if calls != 10 {
		t.Fatalf("invariant evaluated %d times, want 10", calls)
	}
	if c.Checks != 10 {
		t.Fatalf("Checks = %d, want 10", c.Checks)
	}
	if len(c.Violations) != 3 {
		t.Fatalf("violations recorded = %d, want cap 3", len(c.Violations))
	}
	if !strings.Contains(c.Violations[0], "always-bad") {
		t.Fatalf("violation text %q lacks invariant name", c.Violations[0])
	}
}
