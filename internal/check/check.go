// Package check implements online protocol invariant checking for the
// simulated machine. A Checker wakes up periodically during a run and
// evaluates registered invariants over global state — something real
// hardware cannot do, and exactly what a simulator-based safety argument
// needs: the paper's claim that a wrong vCPU map "only costs performance"
// is an emergent property of Token Coherence, and these checks turn it
// from an argument into a machine-verified property under fault injection.
//
// Three invariant families are provided:
//
//   - Token conservation: for every block, tokens held in caches + tokens
//     at the home memory controller + tokens in flight equals the fixed
//     total, and exactly one owner token exists. The in-flight term comes
//     from a Ledger fed by token.Observer hooks at every controller (the
//     controllers decrement state before their response is scheduled, so a
//     network-level observer would see phantom violations).
//   - Single writer / multiple readers: a cache holding all tokens (a
//     writer) is the only cache holding any; at most one cache holds the
//     owner token.
//   - Transaction completion: no coherence transaction stays outstanding
//     longer than an age bound — the liveness half of the safety argument
//     (every transaction must eventually obtain data and tokens even when
//     its initial destination set was wrong).
//
// Checks are observation-only (they use non-allocating accessors) and run
// as ordinary engine events, so enabling them never changes simulated
// behaviour — only whether violations are detected.
package check

import (
	"fmt"
	"sort"

	"vsnoop/internal/cache"
	"vsnoop/internal/mem"
	"vsnoop/internal/memctrl"
	"vsnoop/internal/sim"
	"vsnoop/internal/token"
)

// Ledger tracks tokens in flight between controllers. It implements
// token.Observer: Depart adds a message's tokens to the in-flight account,
// Arrive removes them. Controllers that merely relay a message (persistent
// forwarding) call neither, so relayed tokens stay in flight.
type Ledger struct {
	inflight map[mem.BlockAddr]*flight
}

type flight struct {
	tokens int
	owners int
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{inflight: make(map[mem.BlockAddr]*flight)}
}

// Depart implements token.Observer.
func (l *Ledger) Depart(addr mem.BlockAddr, tokens int, owner bool) {
	f := l.inflight[addr]
	if f == nil {
		f = &flight{}
		l.inflight[addr] = f
	}
	f.tokens += tokens
	if owner {
		f.owners++
	}
}

// Arrive implements token.Observer.
func (l *Ledger) Arrive(addr mem.BlockAddr, tokens int, owner bool) {
	f := l.inflight[addr]
	if f == nil {
		f = &flight{}
		l.inflight[addr] = f
	}
	f.tokens -= tokens
	if owner {
		f.owners--
	}
	if f.tokens == 0 && f.owners == 0 {
		delete(l.inflight, addr)
	}
}

// Inflight returns the in-flight token and owner counts for a block.
func (l *Ledger) Inflight(addr mem.BlockAddr) (tokens, owners int) {
	if f := l.inflight[addr]; f != nil {
		return f.tokens, f.owners
	}
	return 0, 0
}

// Invariant is one named global predicate; Check returns violation
// descriptions (empty when the invariant holds).
type Invariant struct {
	Name  string
	Check func() []string
}

// Checker evaluates registered invariants periodically on the engine.
type Checker struct {
	Eng    *sim.Engine
	Period sim.Cycle // check interval (cycles)
	// Now, if set, supplies the simulated time stamped on violations
	// instead of Eng.Now(). Sharded runs drive the checker externally (at
	// window boundaries, where every shard is quiesced) and have no single
	// engine whose clock is authoritative.
	Now func() sim.Cycle
	// MaxViolations caps the recorded list (0 = 16); checking continues so
	// Checks keeps counting, but further text is suppressed.
	MaxViolations int

	// Checks counts invariant evaluations (invariants x wakeups + final).
	Checks uint64
	// Violations holds the recorded violation descriptions, in detection
	// order (deterministic: invariants run in registration order and each
	// reports in sorted address / core order).
	Violations []string

	invs    []Invariant
	stopped bool
	started bool
}

// Register adds an invariant; call before Start.
func (c *Checker) Register(name string, fn func() []string) {
	c.invs = append(c.invs, Invariant{Name: name, Check: fn})
}

// Add registers a prebuilt Invariant (the constructor form of Register).
func (c *Checker) Add(inv Invariant) { c.invs = append(c.invs, inv) }

// Start schedules the periodic evaluation. Safe to call once.
func (c *Checker) Start() {
	if c.started {
		return
	}
	c.started = true
	if c.Period <= 0 {
		c.Period = 5000
	}
	c.tick()
}

// Stop halts future wakeups (pending ones become no-ops).
func (c *Checker) Stop() { c.stopped = true }

func (c *Checker) tick() {
	c.Eng.Schedule(c.Period, func() {
		if c.stopped {
			return
		}
		c.CheckNow()
		c.tick()
	})
}

// CheckNow evaluates every invariant immediately.
func (c *Checker) CheckNow() {
	for _, inv := range c.invs {
		c.Checks++
		for _, v := range inv.Check() {
			c.record(inv.Name, v)
		}
	}
}

func (c *Checker) record(name, v string) {
	max := c.MaxViolations
	if max <= 0 {
		max = 16
	}
	if len(c.Violations) < max {
		now := sim.Cycle(0)
		if c.Now != nil {
			now = c.Now()
		} else if c.Eng != nil {
			now = c.Eng.Now()
		}
		c.Violations = append(c.Violations,
			fmt.Sprintf("[%d] %s: %s", now, name, v))
	}
}

// holderSum is the per-block cache-side accumulation used by the state
// invariants.
type holderSum struct {
	tokens  int
	owners  int
	maxTok  int   // largest single-cache token count
	holders []int // cores holding >= 1 token
}

// sumCaches accumulates token state per block across the private L2s.
// Iteration is core-index order, so reports are deterministic.
func sumCaches(l2s []*cache.Cache) map[mem.BlockAddr]*holderSum {
	acc := make(map[mem.BlockAddr]*holderSum)
	for i, l2 := range l2s {
		if l2 == nil {
			continue
		}
		i := i
		l2.ForEachValid(func(b *cache.Block) {
			if b.Tokens == 0 && !b.Owner {
				return
			}
			h := acc[b.Addr]
			if h == nil {
				h = &holderSum{}
				acc[b.Addr] = h
			}
			h.tokens += b.Tokens
			if b.Owner {
				h.owners++
			}
			if b.Tokens > h.maxTok {
				h.maxTok = b.Tokens
			}
			if b.Tokens > 0 {
				h.holders = append(h.holders, i)
			}
		})
	}
	return acc
}

func sortedAddrs(m map[mem.BlockAddr]bool) []mem.BlockAddr {
	out := make([]mem.BlockAddr, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TokenConservation builds the conservation invariant: every block's
// tokens across caches, its home memory controller, and the in-flight
// ledgers sum to total, with exactly one owner token. home interleaving is
// addr mod len(mcs), matching the cache controllers. Several ledgers may
// be passed (sharded runs keep one per domain so custody observations stay
// shard-local); their per-block balances are summed.
func TokenConservation(total int, l2s []*cache.Cache, mcs []*memctrl.Ctrl, leds ...*Ledger) Invariant {
	check := func() []string {
		acc := sumCaches(l2s)
		universe := make(map[mem.BlockAddr]bool, len(acc))
		for a := range acc { //lint:ordered set union; universe is iterated via sortedAddrs only
			universe[a] = true
		}
		for _, mc := range mcs {
			mc.ForEachLine(func(a mem.BlockAddr, _ int, _ bool) { universe[a] = true })
		}
		for _, led := range leds {
			for a := range led.inflight { //lint:ordered set union; universe is iterated via sortedAddrs only
				universe[a] = true
			}
		}
		var out []string
		for _, a := range sortedAddrs(universe) {
			cTok, cOwn := 0, 0
			if h := acc[a]; h != nil {
				cTok, cOwn = h.tokens, h.owners
			}
			home := mcs[uint64(a)%uint64(len(mcs))]
			mTok, mOwn, present := home.Peek(a)
			if !present {
				// Reset state: memory holds everything.
				mTok, mOwn = total, true
			}
			fTok, fOwn := 0, 0
			for _, led := range leds {
				lt, lo := led.Inflight(a)
				fTok += lt
				fOwn += lo
			}
			sum := cTok + mTok + fTok
			owners := cOwn + fOwn
			if mOwn {
				owners++
			}
			if sum != total {
				out = append(out, fmt.Sprintf(
					"block %d: %d tokens (caches %d + memory %d + inflight %d), want %d",
					a, sum, cTok, mTok, fTok, total))
			}
			if owners != 1 {
				out = append(out, fmt.Sprintf("block %d: %d owner tokens, want 1", a, owners))
			}
		}
		return out
	}
	return Invariant{Name: "token-conservation", Check: check}
}

// SingleWriter builds the coherence-state invariant: a cache holding all
// tokens of a block (write permission) must be its only cache holder, and
// at most one cache holds the owner token. Unlike conservation this reads
// only cache state, so it cross-checks the ledger-based invariant.
func SingleWriter(total int, l2s []*cache.Cache) Invariant {
	check := func() []string {
		acc := sumCaches(l2s)
		universe := make(map[mem.BlockAddr]bool, len(acc))
		for a := range acc { //lint:ordered set union; universe is iterated via sortedAddrs only
			universe[a] = true
		}
		var out []string
		for _, a := range sortedAddrs(universe) {
			h := acc[a]
			if h.tokens > total {
				out = append(out, fmt.Sprintf("block %d: caches hold %d tokens > total %d",
					a, h.tokens, total))
			}
			if h.owners > 1 {
				out = append(out, fmt.Sprintf("block %d: %d caches hold the owner token", a, h.owners))
			}
			if h.maxTok == total && len(h.holders) > 1 {
				out = append(out, fmt.Sprintf(
					"block %d: a writer coexists with other holders (cores %v)", a, h.holders))
			}
		}
		return out
	}
	return Invariant{Name: "single-writer", Check: check}
}

// TxnCompletion builds the liveness invariant: no controller's outstanding
// transaction may be older than maxAge cycles (snoop-domain safety — a
// wrong destination set must still complete via retries or the persistent
// path, only slower). now supplies the current simulated time (an engine's
// Now method serially, the window clock in sharded runs).
func TxnCompletion(now func() sim.Cycle, ctrls []*token.CacheCtrl, maxAge sim.Cycle) Invariant {
	check := func() []string {
		var out []string
		for i, ctrl := range ctrls {
			if ctrl == nil {
				continue
			}
			addr, issued, attempt, ok := ctrl.Outstanding()
			if !ok {
				continue
			}
			if age := now() - issued; age > maxAge {
				out = append(out, fmt.Sprintf(
					"core %d: transaction on block %d outstanding %d cycles (attempt %d, limit %d)",
					i, addr, age, attempt, maxAge))
			}
		}
		return out
	}
	return Invariant{Name: "txn-completion", Check: check}
}
