// Package partition computes topology-aware snoop-domain partitions of the
// mesh for the sharded simulation engine.
//
// The planner replaces the fixed four-quadrant invariant: it builds a
// weighted affinity graph over the mesh nodes (vCPU placement groups cores
// of the same VM, content-sharing friendship couples VM pairs, and a small
// baseline affinity keeps neighbours together), then evaluates guillotine
// grid tilings of the mesh — every axis-aligned rectangle is XY-convex, so
// any such tiling is a valid snoop-domain partition for the XY-routed mesh
// — and picks the cut minimizing
//
//	cost = cut weight + serialization penalty
//
// where the serialization penalty models the critical path of the largest
// domain (fewer domains = less parallelism). A deterministic KL-style
// refinement pass then shifts individual split lines by one row/column
// while that lowers the cut, which handles uneven VM geometries.
//
// The resulting Plan is a pure function of the configuration: the sharded
// engine's results depend only on the domain assignment, never on how many
// goroutines execute it, so bit-identity across shard counts is preserved
// by construction.
package partition

import (
	"fmt"
	"strings"
)

// Weights tunes the affinity graph. The defaults make intra-VM edges
// dominate the baseline by almost two orders of magnitude, so a tiling that
// splits a VM is chosen only when no whole-VM tiling offers comparable
// parallelism.
type Weights struct {
	SameVM   int // adjacent cores running vCPUs of the same VM
	FriendVM int // adjacent cores of content-sharing friend VMs
	Base     int // every adjacent node pair (mesh locality)
	Serial   int // per-core critical-path penalty of the largest domain
}

// DefaultWeights returns the planner's standard affinity weights.
func DefaultWeights() Weights {
	return Weights{SameVM: 64, FriendVM: 16, Base: 1, Serial: 48}
}

// Input describes the machine geometry the planner partitions.
type Input struct {
	Width, Height int
	// CoreGroup[i] labels core i (row-major) with its initial VM, or -1 for
	// an idle core. Cores of one group attract each other.
	CoreGroup []int
	// Friends maps a VM group to its content-sharing friend (both
	// directions listed, or either; -1 / absent = no friend).
	Friends map[int]int
	// MCCorner[j] gives memory controller j's corner coordinates.
	MCCorner [][2]int
	// MaxDomains caps the domain count (0 = number of cores).
	MaxDomains int
	// Weights used for the affinity graph; zero value = DefaultWeights.
	Weights Weights
}

// Plan is a computed snoop-domain partition.
type Plan struct {
	Domains int
	GX, GY  int   // grid tiling dimensions (domains = GX*GY before merge)
	XSplit  []int // ascending interior split columns (len GX-1)
	YSplit  []int // ascending interior split rows (len GY-1)

	CoreDom []int32 // core index (row-major) -> domain
	MCDom   []int32 // memory controller index -> domain

	CutEdges  int // mesh links crossing a domain boundary
	CutWeight int // total affinity weight of cut edges
	Cost      int // cut weight + serialization penalty (planner objective)

	// SpansVM reports whether any VM's initial placement crosses a domain
	// boundary (such configs need replicated snoop-filter state).
	SpansVM bool
}

// Compute returns the best partition for the input. Domains == 1 means the
// machine should run on the single legacy engine.
func Compute(in Input) Plan {
	w := in.Weights
	if w == (Weights{}) {
		w = DefaultWeights()
	}
	W, H := in.Width, in.Height
	if W <= 0 || H <= 0 {
		return Plan{Domains: 1, GX: 1, GY: 1}
	}
	maxD := in.MaxDomains
	if maxD <= 0 {
		maxD = W * H
	}

	ew := edgeWeights(in, w)

	best := Plan{}
	haveBest := false
	for gx := 1; gx <= W; gx++ {
		for gy := 1; gy <= H; gy++ {
			if gx*gy > maxD {
				continue
			}
			p := evalTiling(in, w, ew, gx, gy)
			if !haveBest || better(p, best) {
				best = p
				haveBest = true
			}
		}
	}
	best.finish(in)
	return best
}

// better orders candidate plans: lower cost wins; ties prefer more domains
// (more parallelism at equal cost), then wider grids, then taller — a total
// deterministic order.
func better(a, b Plan) bool {
	if a.Cost != b.Cost {
		return a.Cost < b.Cost
	}
	if a.Domains != b.Domains {
		return a.Domains > b.Domains
	}
	if a.GX != b.GX {
		return a.GX > b.GX
	}
	return a.GY > b.GY
}

// edgeWeights precomputes the affinity of every horizontal and vertical
// mesh edge. horiz[y*W+x] is the weight of (x,y)-(x+1,y); vert[y*W+x] of
// (x,y)-(x,y+1).
func edgeWeights(in Input, w Weights) (ew struct{ horiz, vert []int }) {
	W, H := in.Width, in.Height
	group := func(x, y int) int {
		i := y*W + x
		if i >= len(in.CoreGroup) {
			return -1
		}
		return in.CoreGroup[i]
	}
	affinity := func(a, b int) int {
		wt := w.Base
		if a >= 0 && a == b {
			wt += w.SameVM
		} else if a >= 0 && b >= 0 {
			if f, ok := in.Friends[a]; ok && f == b {
				wt += w.FriendVM
			} else if f, ok := in.Friends[b]; ok && f == a {
				wt += w.FriendVM
			}
		}
		return wt
	}
	ew.horiz = make([]int, W*H)
	ew.vert = make([]int, W*H)
	for y := 0; y < H; y++ {
		for x := 0; x < W; x++ {
			if x+1 < W {
				ew.horiz[y*W+x] = affinity(group(x, y), group(x+1, y))
			}
			if y+1 < H {
				ew.vert[y*W+x] = affinity(group(x, y), group(x, y+1))
			}
		}
	}
	return ew
}

// evalTiling scores one gx x gy guillotine tiling, refining its split lines
// greedily before costing.
func evalTiling(in Input, w Weights, ew struct{ horiz, vert []int }, gx, gy int) Plan {
	W, H := in.Width, in.Height
	xs := uniformSplits(W, gx)
	ys := uniformSplits(H, gy)

	// KL-style refinement: shift each split line by one column/row while it
	// lowers the cut weight. First-improvement, deterministic order, bounded
	// passes; a split line never collapses a run to zero width.
	for pass := 0; pass < 8; pass++ {
		improved := false
		for i := range xs {
			improved = refineSplit(xs, i, W, func() int { return cutWeightX(ew, in, xs) }) || improved
		}
		for i := range ys {
			improved = refineSplit(ys, i, H, func() int { return cutWeightY(ew, in, ys) }) || improved
		}
		if !improved {
			break
		}
	}

	p := Plan{GX: gx, GY: gy, XSplit: xs, YSplit: ys, Domains: gx * gy}
	p.CutWeight = cutWeightX(ew, in, xs) + cutWeightY(ew, in, ys)
	p.CutEdges = cutEdges(in, xs, ys)
	p.Cost = p.CutWeight + w.Serial*ceilDiv(W*H, p.Domains)
	return p
}

// refineSplit tries moving split line i one step each way, keeping the move
// that lowers cost (strict improvement, so refinement terminates).
func refineSplit(splits []int, i, limit int, cost func() int) bool {
	lo := 1
	if i > 0 {
		lo = splits[i-1] + 1
	}
	hi := limit - 1
	if i+1 < len(splits) {
		hi = splits[i+1] - 1
	}
	cur := cost()
	orig := splits[i]
	bestPos, bestCost := orig, cur
	for _, pos := range [2]int{orig - 1, orig + 1} {
		if pos < lo || pos > hi {
			continue
		}
		splits[i] = pos
		if c := cost(); c < bestCost {
			bestPos, bestCost = pos, c
		}
	}
	splits[i] = bestPos
	return bestPos != orig
}

// uniformSplits returns the n-1 interior split positions dividing length
// evenly (earlier runs get the remainder, matching integer strides).
func uniformSplits(length, n int) []int {
	splits := make([]int, 0, n-1)
	for i := 1; i < n; i++ {
		splits = append(splits, i*length/n)
	}
	return splits
}

// cutWeightX sums the affinity of horizontal edges crossing vertical split
// lines (edges between column s-1 and s for each split s).
func cutWeightX(ew struct{ horiz, vert []int }, in Input, xs []int) int {
	W, H := in.Width, in.Height
	total := 0
	for _, s := range xs {
		for y := 0; y < H; y++ {
			total += ew.horiz[y*W+s-1]
		}
	}
	return total
}

// cutWeightY sums the affinity of vertical edges crossing horizontal split
// lines.
func cutWeightY(ew struct{ horiz, vert []int }, in Input, ys []int) int {
	W := in.Width
	total := 0
	for _, s := range ys {
		for x := 0; x < W; x++ {
			total += ew.vert[(s-1)*W+x]
		}
	}
	return total
}

// cutEdges counts mesh links crossing any domain boundary.
func cutEdges(in Input, xs, ys []int) int {
	return len(xs)*in.Height + len(ys)*in.Width
}

// finish derives the per-core and per-MC domain assignments from the chosen
// split lines.
func (p *Plan) finish(in Input) {
	W, H := in.Width, in.Height
	domAt := func(x, y int) int32 {
		tx, ty := 0, 0
		for _, s := range p.XSplit {
			if x >= s {
				tx++
			}
		}
		for _, s := range p.YSplit {
			if y >= s {
				ty++
			}
		}
		return int32(ty*p.GX + tx)
	}
	p.CoreDom = make([]int32, W*H)
	for y := 0; y < H; y++ {
		for x := 0; x < W; x++ {
			p.CoreDom[y*W+x] = domAt(x, y)
		}
	}
	p.MCDom = make([]int32, len(in.MCCorner))
	for j, c := range in.MCCorner {
		p.MCDom[j] = domAt(c[0], c[1])
	}
	groupDom := map[int]int32{}
	for i, g := range in.CoreGroup {
		if g < 0 || i >= len(p.CoreDom) {
			continue
		}
		if d, ok := groupDom[g]; !ok {
			groupDom[g] = p.CoreDom[i]
		} else if d != p.CoreDom[i] {
			p.SpansVM = true
		}
	}
}

// DomainOf returns the domain of mesh coordinate (x, y).
func (p *Plan) DomainOf(x, y, width int) int32 { return p.CoreDom[y*width+x] }

// String renders the plan for the -dump-partition debug output: the domain
// grid, the cut summary, and the MC assignment.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "partition: %d domain(s), %dx%d grid, cut %d edge(s) weight %d cost %d\n",
		p.Domains, p.GX, p.GY, p.CutEdges, p.CutWeight, p.Cost)
	if len(p.CoreDom) > 0 && p.GX > 0 {
		// CoreDom is row-major over the full mesh.
		w := meshWidth(p)
		for y := 0; y*w < len(p.CoreDom); y++ {
			b.WriteString("  ")
			for x := 0; x < w; x++ {
				fmt.Fprintf(&b, "%2d ", p.CoreDom[y*w+x])
			}
			b.WriteString("\n")
		}
	}
	for j, d := range p.MCDom {
		fmt.Fprintf(&b, "  mc%d -> domain %d\n", j, d)
	}
	return b.String()
}

// meshWidth reconstructs the mesh width from the split lines and grid.
func meshWidth(p *Plan) int {
	// GX runs over width; XSplit are interior columns. The width itself is
	// not stored, so derive it from the core count and the Y grid: height =
	// GY runs; len(CoreDom) = W*H. Safe because String is debug-only.
	if len(p.YSplit) > 0 {
		h := 0
		// height >= last split + 1; width = len/hGuess. Walk plausible
		// heights until the division is exact.
		for h = p.YSplit[len(p.YSplit)-1] + 1; h <= len(p.CoreDom); h++ {
			if len(p.CoreDom)%h == 0 {
				return len(p.CoreDom) / h
			}
		}
	}
	// Single row of tiles: assume square-or-wider mesh.
	for w := p.GX; w <= len(p.CoreDom); w++ {
		if len(p.CoreDom)%w == 0 && len(p.CoreDom)/w <= w {
			return w
		}
	}
	return len(p.CoreDom)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
