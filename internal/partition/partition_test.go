package partition

import (
	"reflect"
	"testing"
)

// quadrantInput models the default machine: 4x4 mesh, 4 VMs of 4 vCPUs
// placed in 2x2 quadrant blocks, MCs at the four corners.
func quadrantInput() Input {
	group := make([]int, 16)
	for i := range group {
		x, y := i%4, i/4
		group[i] = (x / 2) + 2*(y/2)
	}
	return Input{
		Width: 4, Height: 4,
		CoreGroup: group,
		MCCorner:  [][2]int{{0, 0}, {3, 0}, {0, 3}, {3, 3}},
	}
}

// TestQuadrantExact pins byte-compatibility with the legacy four-quadrant
// partition: the planner must reproduce it exactly for the default config.
func TestQuadrantExact(t *testing.T) {
	p := Compute(quadrantInput())
	if p.Domains != 4 || p.GX != 2 || p.GY != 2 {
		t.Fatalf("want 2x2 grid with 4 domains, got %dx%d (%d domains)", p.GX, p.GY, p.Domains)
	}
	if !reflect.DeepEqual(p.XSplit, []int{2}) || !reflect.DeepEqual(p.YSplit, []int{2}) {
		t.Fatalf("want splits [2]/[2], got %v/%v", p.XSplit, p.YSplit)
	}
	for i := 0; i < 16; i++ {
		x, y := i%4, i/4
		want := int32((x / 2) + 2*(y/2))
		if p.CoreDom[i] != want {
			t.Fatalf("core %d: want domain %d, got %d", i, want, p.CoreDom[i])
		}
	}
	if !reflect.DeepEqual(p.MCDom, []int32{0, 1, 2, 3}) {
		t.Fatalf("want MC domains [0 1 2 3], got %v", p.MCDom)
	}
	if p.SpansVM {
		t.Fatalf("quadrant placement must not span VMs across domains")
	}
}

// TestLinearRowStrips pins the linear-placement case: 4 VMs laid out
// sequentially on a 4x4 mesh occupy whole rows, so the planner should cut
// the mesh into four row strips.
func TestLinearRowStrips(t *testing.T) {
	group := make([]int, 16)
	for i := range group {
		group[i] = i / 4
	}
	p := Compute(Input{
		Width: 4, Height: 4,
		CoreGroup: group,
		MCCorner:  [][2]int{{0, 0}, {3, 0}, {0, 3}, {3, 3}},
	})
	if p.SpansVM {
		t.Fatalf("row strips must not split a VM: %+v", p)
	}
	if p.Domains < 4 {
		t.Fatalf("want at least 4 domains for 4 row-placed VMs, got %d (grid %dx%d)", p.Domains, p.GX, p.GY)
	}
	// Every VM's cores must share one domain, and distinct VMs must not all
	// collapse into one domain.
	vmDom := map[int]int32{}
	for i, g := range group {
		if d, ok := vmDom[g]; ok && d != p.CoreDom[i] {
			t.Fatalf("VM %d split across domains %d and %d", g, d, p.CoreDom[i])
		}
		vmDom[g] = p.CoreDom[i]
	}
	seen := map[int32]bool{}
	for _, d := range vmDom {
		seen[d] = true
	}
	if len(seen) != 4 {
		t.Fatalf("want each row VM in its own domain, got %v", vmDom)
	}
}

// TestLargeMesh checks an 8x8 mesh with 16 sequentially placed VMs
// partitions into many whole-VM domains.
func TestLargeMesh(t *testing.T) {
	group := make([]int, 64)
	for i := range group {
		group[i] = i / 4 // 16 VMs, 4 consecutive cores each
	}
	p := Compute(Input{
		Width: 8, Height: 8,
		CoreGroup: group,
		MCCorner:  [][2]int{{0, 0}, {7, 0}, {0, 7}, {7, 7}},
	})
	if p.Domains < 4 {
		t.Fatalf("8x8/16-VM mesh should shard at least 4 ways, got %d", p.Domains)
	}
	if p.SpansVM {
		t.Fatalf("sequential 8x8 placement has whole-VM tilings; planner split a VM: %+v", p)
	}
	checkCover(t, p, 8, 8)
}

// TestIdleCores checks a partially loaded mesh still partitions and that
// domain indexing covers every node.
func TestIdleCores(t *testing.T) {
	group := make([]int, 16)
	for i := range group {
		group[i] = -1
	}
	for i := 0; i < 4; i++ {
		group[i] = 0 // one VM on row 0
	}
	p := Compute(Input{
		Width: 4, Height: 4,
		CoreGroup: group,
		MCCorner:  [][2]int{{0, 0}, {3, 0}, {0, 3}, {3, 3}},
	})
	if p.Domains < 2 {
		t.Fatalf("idle-heavy mesh should still shard, got %d domains", p.Domains)
	}
	checkCover(t, p, 4, 4)
}

// TestFriendAffinity checks content-sharing friendship is priced into the
// cut: friend edges raise the cut weight, and when friendship dominates the
// serialization term the planner keeps friend pairs together.
func TestFriendAffinity(t *testing.T) {
	base := Compute(quadrantInput())

	in := quadrantInput()
	in.Friends = map[int]int{0: 1, 1: 0, 2: 3, 3: 2}
	p := Compute(in)
	if p.GX == base.GX && p.GY == base.GY && p.CutWeight <= base.CutWeight {
		t.Fatalf("friend edges not priced into cut: weight %d vs base %d", p.CutWeight, base.CutWeight)
	}

	// With friendship outweighing parallelism, friend pairs (sharing the
	// top/bottom halves) must co-reside: only horizontal cuts remain viable.
	in.Weights = Weights{SameVM: 64, FriendVM: 200, Base: 1, Serial: 48}
	p = Compute(in)
	if p.Domains < 2 {
		t.Fatalf("want at least 2 domains, got %d", p.Domains)
	}
	for _, pair := range [][2]int{{0, 1}, {2, 3}} {
		a, b := pair[0], pair[1]
		if domOfGroup(p, in, a) != domOfGroup(p, in, b) {
			t.Fatalf("friend VMs %d,%d split across domains:\n%s", a, b, p.String())
		}
	}
}

// TestDeterminism pins that Compute is a pure function of its input.
func TestDeterminism(t *testing.T) {
	a := Compute(quadrantInput())
	b := Compute(quadrantInput())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Compute not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

// TestDegenerate covers empty and single-node meshes.
func TestDegenerate(t *testing.T) {
	if p := Compute(Input{}); p.Domains != 1 {
		t.Fatalf("empty input: want 1 domain, got %d", p.Domains)
	}
	p := Compute(Input{Width: 1, Height: 1, CoreGroup: []int{0}})
	if p.Domains != 1 {
		t.Fatalf("1x1 mesh: want 1 domain, got %d", p.Domains)
	}
}

// TestMaxDomains caps the grid size.
func TestMaxDomains(t *testing.T) {
	in := quadrantInput()
	in.MaxDomains = 2
	p := Compute(in)
	if p.Domains > 2 {
		t.Fatalf("MaxDomains=2 violated: got %d domains", p.Domains)
	}
}

// TestString smoke-tests the debug dump used by -dump-partition.
func TestString(t *testing.T) {
	p := Compute(quadrantInput())
	s := p.String()
	if s == "" {
		t.Fatal("empty dump")
	}
}

// checkCover verifies every mesh node has a domain in [0, Domains) and
// every domain is non-empty.
func checkCover(t *testing.T, p Plan, w, h int) {
	t.Helper()
	if len(p.CoreDom) != w*h {
		t.Fatalf("CoreDom covers %d nodes, want %d", len(p.CoreDom), w*h)
	}
	used := make([]bool, p.Domains)
	for i, d := range p.CoreDom {
		if d < 0 || int(d) >= p.Domains {
			t.Fatalf("node %d assigned out-of-range domain %d", i, d)
		}
		used[d] = true
	}
	for d, u := range used {
		if !u {
			t.Fatalf("domain %d empty", d)
		}
	}
}

func domOfGroup(p Plan, in Input, g int) int32 {
	for i, cg := range in.CoreGroup {
		if cg == g {
			return p.CoreDom[i]
		}
	}
	return -1
}
