package runner

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdered(t *testing.T) {
	got := Map(4, 100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapZeroJobs(t *testing.T) {
	if got := Map(4, 0, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestMapDefaultWorkers(t *testing.T) {
	// workers <= 0 must still complete all jobs (GOMAXPROCS pool).
	got := Map(0, 37, func(i int) int { return i + 1 })
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	var active, peak int64
	Map(3, 64, func(i int) int {
		a := atomic.AddInt64(&active, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if a <= p || atomic.CompareAndSwapInt64(&peak, p, a) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt64(&active, -1)
		return i
	})
	if peak > 3 {
		t.Fatalf("peak concurrency %d exceeds 3 workers", peak)
	}
}

func TestStreamEmitsInOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	delays := make([]time.Duration, 50)
	for i := range delays {
		delays[i] = time.Duration(rng.Intn(3)) * time.Millisecond
	}
	var emitted []int
	Stream(8, len(delays), func(i int) int {
		time.Sleep(delays[i]) // force out-of-order completion
		return i * 10
	}, func(i, v int) {
		if v != i*10 {
			t.Errorf("emit(%d) got %d", i, v)
		}
		emitted = append(emitted, i)
	})
	if len(emitted) != len(delays) {
		t.Fatalf("emitted %d of %d", len(emitted), len(delays))
	}
	for i, e := range emitted {
		if e != i {
			t.Fatalf("emission order broken at %d: %v", i, emitted[:i+1])
		}
	}
}

func TestStreamMatchesMap(t *testing.T) {
	fn := func(i int) int { return i*i + 7 }
	want := Map(4, 200, fn)
	got := make([]int, 0, 200)
	Stream(4, 200, fn, func(_ int, v int) { got = append(got, v) })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stream[%d] = %d, map[%d] = %d", i, got[i], i, want[i])
		}
	}
}

func TestWorkersClamp(t *testing.T) {
	if w := Workers(0, 100); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0,100) = %d", w)
	}
	if w := Workers(8, 3); w != 3 {
		t.Fatalf("Workers(8,3) = %d", w)
	}
	if w := Workers(-1, 0); w != 1 {
		t.Fatalf("Workers(-1,0) = %d", w)
	}
	if w := Workers(5, 100); w != 5 {
		t.Fatalf("Workers(5,100) = %d", w)
	}
}
