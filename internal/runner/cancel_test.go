package runner

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestStreamCtxMatchesStream: with a context that never fires, StreamCtx
// emits exactly what Stream does, in the same order.
func TestStreamCtxMatchesStream(t *testing.T) {
	const n = 50
	fn := func(i int) int { return i * i }
	var want []int
	Stream(4, n, fn, func(_ int, v int) { want = append(want, v) })
	var got []int
	err := StreamCtx(context.Background(), 4, n, fn, func(_ int, v int) { got = append(got, v) })
	if err != nil {
		t.Fatalf("StreamCtx: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("emitted %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestStreamCtxCancelPrefix cancels mid-sweep and requires (a) ctx.Err()
// returned, (b) the emitted rows to be the contiguous prefix 0..k in order,
// and (c) every started job to have been emitted — no dropped completions.
func TestStreamCtxCancelPrefix(t *testing.T) {
	const n = 200
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	var once sync.Once
	fn := func(i int) int {
		started.Add(1)
		if i == 10 {
			cancel()
			once.Do(func() { close(release) })
		}
		if i > 10 {
			<-release // jobs dispatched alongside/after the cancel
		}
		return i
	}
	var emitted []int
	err := StreamCtx(ctx, 4, n, fn, func(i int, v int) { emitted = append(emitted, v) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if int64(len(emitted)) != started.Load() {
		t.Fatalf("emitted %d rows but started %d jobs", len(emitted), started.Load())
	}
	if len(emitted) == n {
		t.Fatal("cancel had no effect: all jobs ran")
	}
	for i, v := range emitted {
		if v != i {
			t.Fatalf("emitted[%d] = %d: not the contiguous prefix", i, v)
		}
	}
}

// TestStreamCtxPreCanceled: an already-fired context dispatches nothing.
func TestStreamCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := StreamCtx(ctx, 4, 10, func(i int) int { ran = true; return i },
		func(int, int) { ran = true })
	if !errors.Is(err, context.Canceled) || ran {
		t.Fatalf("err=%v ran=%v, want Canceled and no work", err, ran)
	}
}

func TestPoolRunsTasks(t *testing.T) {
	p := NewPool(3, 8)
	var sum atomic.Int64
	for i := 1; i <= 100; i++ {
		i := i
		for !p.TrySubmit(func() { sum.Add(int64(i)) }) {
		}
	}
	p.Close()
	if sum.Load() != 5050 {
		t.Fatalf("sum = %d, want 5050", sum.Load())
	}
}

// TestPoolBackpressure fills the queue with blocked tasks and requires
// TrySubmit to refuse — without blocking — until capacity frees.
func TestPoolBackpressure(t *testing.T) {
	p := NewPool(1, 2)
	gate := make(chan struct{})
	running := make(chan struct{})
	if !p.TrySubmit(func() { close(running); <-gate }) {
		t.Fatal("submit to empty pool refused")
	}
	<-running // worker is occupied; queue is empty again
	if !p.TrySubmit(func() {}) || !p.TrySubmit(func() {}) {
		t.Fatal("queue capacity 2 refused before full")
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("full queue accepted a task")
	}
	if d := p.Depth(); d != 2 {
		t.Fatalf("Depth = %d, want 2", d)
	}
	close(gate)
	p.Close()
}

// TestPoolCloseRefuses: Close is idempotent, drains queued work, and makes
// TrySubmit refuse.
func TestPoolCloseRefuses(t *testing.T) {
	p := NewPool(2, 4)
	var done atomic.Int64
	for i := 0; i < 4; i++ {
		for !p.TrySubmit(func() { done.Add(1) }) {
		}
	}
	p.Close()
	p.Close()
	if done.Load() != 4 {
		t.Fatalf("Close drained %d of 4 tasks", done.Load())
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("closed pool accepted a task")
	}
}

// TestPoolSubmitCloseRace hammers TrySubmit from many goroutines while
// Close runs; under -race this pins the closed-channel guard.
func TestPoolSubmitCloseRace(t *testing.T) {
	p := NewPool(2, 2)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					p.TrySubmit(func() {})
				}
			}
		}()
	}
	p.Close()
	close(stop)
	wg.Wait()
}
