// Package runner is the shared worker-pool harness for experiment sweeps:
// a bounded pool of goroutines executes independent jobs (each a complete,
// single-threaded simulation) and hands results back in deterministic job
// order, so parallel sweeps emit byte-identical output to serial ones.
//
// Two shapes are provided. Map collects every result before returning
// (experiment tables that post-process the whole set). Stream delivers each
// result to a callback as soon as it is ready *and* in order — a reorder
// buffer holds out-of-order completions — so long sweeps print rows
// incrementally without sacrificing output determinism.
package runner

import (
	"context"
	"runtime"
	"sync"
)

// Workers clamps a requested worker count: n <= 0 selects GOMAXPROCS
// (bounded parallelism that saturates the machine without oversubscribing
// it), and the count never exceeds the job count.
func Workers(requested, jobs int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0) //lint:wallclock worker-pool sizing only; every job's simulation output is independent of the worker count
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs fn(i) for i in [0, n) on at most workers goroutines
// (workers <= 0 selects GOMAXPROCS) and returns the results indexed by i.
// fn must be safe to call concurrently from distinct goroutines; each call
// sees a distinct i.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	w := Workers(workers, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// Stream runs fn(i) for i in [0, n) on at most workers goroutines and
// invokes emit(i, result) exactly once per job, in strictly ascending i —
// regardless of completion order. emit runs on a worker goroutine but never
// concurrently with itself, so it may write to shared output unsynchronized.
// Completed out-of-order results wait in a reorder buffer bounded by the
// worker count.
func Stream[T any](workers, n int, fn func(i int) T, emit func(i int, v T)) {
	if n == 0 {
		return
	}
	w := Workers(workers, n)
	var (
		mu      sync.Mutex
		ready   = make(map[int]T, w)
		nextOut = 0
	)
	deliver := func(i int, v T) {
		mu.Lock()
		ready[i] = v
		for {
			r, ok := ready[nextOut]
			if !ok {
				break
			}
			delete(ready, nextOut)
			emit(nextOut, r)
			nextOut++
		}
		mu.Unlock()
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				deliver(i, fn(i))
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// StreamCtx is Stream with cancellation: once ctx fires, no further jobs
// are dispatched and StreamCtx returns ctx.Err() after in-flight jobs
// drain. Jobs are dispatched in ascending order and every dispatched job
// completes and is emitted, so the emitted results always form a contiguous
// prefix 0..k — a partially canceled sweep yields exactly the rows a serial
// sweep would have produced before stopping, never a gap. fn should watch
// the same ctx (e.g. via vsnoop.RunCtx) so in-flight jobs stop promptly
// too; a job canceled mid-run still gets its (error) result emitted.
func StreamCtx[T any](ctx context.Context, workers, n int, fn func(i int) T, emit func(i int, v T)) error {
	if n == 0 {
		return ctx.Err()
	}
	w := Workers(workers, n)
	var (
		mu      sync.Mutex
		ready   = make(map[int]T, w)
		nextOut = 0
	)
	deliver := func(i int, v T) {
		mu.Lock()
		ready[i] = v
		for {
			r, ok := ready[nextOut]
			if !ok {
				break
			}
			delete(ready, nextOut)
			emit(nextOut, r)
			nextOut++
		}
		mu.Unlock()
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				deliver(i, fn(i))
			}
		}()
	}
	var err error
	for i := 0; i < n; i++ {
		if err = ctx.Err(); err != nil {
			break
		}
		select {
		case next <- i:
		case <-ctx.Done():
			err = ctx.Err()
		}
		if err != nil {
			break
		}
	}
	close(next)
	wg.Wait()
	return err
}

// Pool is a long-lived bounded worker pool for servers: a fixed number of
// workers drain a fixed-capacity task queue, and submission never blocks —
// a full queue is reported to the caller, who sheds load (HTTP 429) instead
// of queueing unboundedly. This is the admission-control primitive behind
// vsnoop-serve: queue capacity bounds memory, TrySubmit's failure is the
// backpressure signal.
type Pool struct {
	tasks chan func()
	mu    sync.RWMutex // guards closed vs TrySubmit's send
	close bool
	wg    sync.WaitGroup
}

// NewPool starts workers goroutines draining a queue of the given capacity
// (minimums of 1 are applied to both).
func NewPool(workers, queue int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queue < 1 {
		queue = 1
	}
	p := &Pool{tasks: make(chan func(), queue)}
	for k := 0; k < workers; k++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for t := range p.tasks {
				t()
			}
		}()
	}
	return p
}

// TrySubmit enqueues t without ever blocking. It reports false — the
// backpressure signal — when the queue is full or the pool is closed.
func (p *Pool) TrySubmit(t func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.close {
		return false
	}
	select {
	case p.tasks <- t:
		return true
	default:
		return false
	}
}

// Depth returns the number of tasks queued but not yet picked up by a
// worker (the /metrics queue-depth gauge).
func (p *Pool) Depth() int { return len(p.tasks) }

// Close stops intake and waits until every queued and running task has
// finished. Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.close {
		p.close = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
