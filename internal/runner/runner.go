// Package runner is the shared worker-pool harness for experiment sweeps:
// a bounded pool of goroutines executes independent jobs (each a complete,
// single-threaded simulation) and hands results back in deterministic job
// order, so parallel sweeps emit byte-identical output to serial ones.
//
// Two shapes are provided. Map collects every result before returning
// (experiment tables that post-process the whole set). Stream delivers each
// result to a callback as soon as it is ready *and* in order — a reorder
// buffer holds out-of-order completions — so long sweeps print rows
// incrementally without sacrificing output determinism.
package runner

import (
	"runtime"
	"sync"
)

// Workers clamps a requested worker count: n <= 0 selects GOMAXPROCS
// (bounded parallelism that saturates the machine without oversubscribing
// it), and the count never exceeds the job count.
func Workers(requested, jobs int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs fn(i) for i in [0, n) on at most workers goroutines
// (workers <= 0 selects GOMAXPROCS) and returns the results indexed by i.
// fn must be safe to call concurrently from distinct goroutines; each call
// sees a distinct i.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	w := Workers(workers, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// Stream runs fn(i) for i in [0, n) on at most workers goroutines and
// invokes emit(i, result) exactly once per job, in strictly ascending i —
// regardless of completion order. emit runs on a worker goroutine but never
// concurrently with itself, so it may write to shared output unsynchronized.
// Completed out-of-order results wait in a reorder buffer bounded by the
// worker count.
func Stream[T any](workers, n int, fn func(i int) T, emit func(i int, v T)) {
	if n == 0 {
		return
	}
	w := Workers(workers, n)
	var (
		mu      sync.Mutex
		ready   = make(map[int]T, w)
		nextOut = 0
	)
	deliver := func(i int, v T) {
		mu.Lock()
		ready[i] = v
		for {
			r, ok := ready[nextOut]
			if !ok {
				break
			}
			delete(ready, nextOut)
			emit(nextOut, r)
			nextOut++
		}
		mu.Unlock()
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				deliver(i, fn(i))
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
