package token_test

import (
	"testing"

	"vsnoop/internal/mem"
	"vsnoop/internal/mesh"
	"vsnoop/internal/token"
)

// TestStarvationFreedom is the protocol's liveness argument as a table:
// destroy the first N transient request messages (or bounce the first N
// responses to the home controller) and the transaction must still
// complete — through timeouts and retries for small N, through the
// persistent-request path when every transient attempt is starved. The
// persistent path itself is never faulted (internal/fault's model: it is
// the reliable channel of last resort).
func TestStarvationFreedom(t *testing.T) {
	cases := []struct {
		name        string
		dropReqs    int // destroy the first N transient request messages
		bounceResps int // bounce the first N data/token responses home
		write       bool
		wantRetries uint64 // minimum
		wantPersist bool
	}{
		{name: "clean read"},
		{name: "clean write", write: true},
		// One full request volley lost (3 cores + home MC = 4 messages):
		// the timeout must fire and the retry complete.
		{name: "one volley lost", dropReqs: 4, wantRetries: 1},
		{name: "two volleys lost, write", dropReqs: 8, write: true, wantRetries: 2},
		// Every transient attempt starved: only the persistent path can
		// finish the transaction.
		{name: "starved to persistent", dropReqs: 1000, write: true,
			wantRetries: 3, wantPersist: true},
		{name: "starved read to persistent", dropReqs: 1000,
			wantRetries: 3, wantPersist: true},
		// Responses misdelivered to the home controller: tokens are
		// absorbed there and the retry fetches them from memory.
		{name: "responses bounced home", bounceResps: 2, wantRetries: 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			h := newHarness(t, 4, nil)
			droppedReqs, bouncedResps := 0, 0
			h.net.FaultHook = func(src, dst mesh.NodeID, bytes int, payload interface{}) mesh.FaultOutcome {
				msg, ok := payload.(token.Msg)
				if !ok {
					return mesh.FaultOutcome{}
				}
				switch msg.Kind {
				case token.MsgGetS, token.MsgGetX:
					if droppedReqs < tc.dropReqs {
						droppedReqs++
						return mesh.FaultOutcome{Drop: true}
					}
				case token.MsgData, token.MsgTokens:
					if bouncedResps < tc.bounceResps {
						bouncedResps++
						return mesh.FaultOutcome{Redirected: true, RedirectTo: h.mc.Node}
					}
				}
				return mesh.FaultOutcome{}
			}

			done := false
			h.ctrls[0].Start(100, 1, mem.PagePrivate, tc.write, func() { done = true })
			h.run()

			if !done {
				t.Fatalf("transaction starved: dropped %d requests, bounced %d responses",
					droppedReqs, bouncedResps)
			}
			st := h.ctrls[0].Stats
			if st.Retries < tc.wantRetries {
				t.Fatalf("Retries = %d, want >= %d", st.Retries, tc.wantRetries)
			}
			if tc.wantPersist && st.Persistent == 0 {
				t.Fatal("persistent path never activated despite total starvation")
			}
			if !tc.wantPersist && st.Persistent != 0 {
				t.Fatalf("persistent activated (%d) for a recoverable loss", st.Persistent)
			}
			if tc.wantRetries == 0 && st.Retries != 0 {
				t.Fatalf("clean run retried %d times", st.Retries)
			}
			// Tokens must be conserved whatever path completed the
			// transaction.
			h.checkConservation(t, []mem.BlockAddr{100})
		})
	}
}

// TestRetryBackoffGrows pins the exponential-backoff shape: each retry's
// timeout wait doubles (capped), so retry issue times spread apart instead
// of hammering a congested system at a fixed period.
func TestRetryBackoffGrows(t *testing.T) {
	h := newHarness(t, 4, nil)
	// Starve every transient attempt; record when each is issued.
	var issueCycles []uint64
	h.net.FaultHook = func(src, dst mesh.NodeID, bytes int, payload interface{}) mesh.FaultOutcome {
		msg, ok := payload.(token.Msg)
		if ok && (msg.Kind == token.MsgGetS || msg.Kind == token.MsgGetX) {
			if n := len(issueCycles); n == 0 || issueCycles[n-1] != uint64(h.eng.Now()) {
				issueCycles = append(issueCycles, uint64(h.eng.Now()))
			}
			return mesh.FaultOutcome{Drop: true}
		}
		return mesh.FaultOutcome{}
	}
	done := false
	h.ctrls[0].Start(100, 1, mem.PagePrivate, true, func() { done = true })
	h.run()
	if !done {
		t.Fatal("persistent path did not rescue the starved write")
	}
	if len(issueCycles) < 4 {
		t.Fatalf("only %d transient attempts observed, want >= 4", len(issueCycles))
	}
	// Gaps between successive attempts must be non-decreasing in the
	// deterministic part (base << attempt dominates the per-attempt
	// jitter, which is at most TimeoutJitter * attempt).
	prevGap := uint64(0)
	for i := 1; i < len(issueCycles); i++ {
		gap := issueCycles[i] - issueCycles[i-1]
		if gap < prevGap {
			t.Fatalf("retry gap shrank: attempt %d gap %d < previous %d (cycles %v)",
				i+1, gap, prevGap, issueCycles)
		}
		prevGap = gap
	}
	// And the last transient gap must exceed the first by at least one
	// doubling, proving the backoff is actually exponential, not constant.
	first := issueCycles[1] - issueCycles[0]
	last := issueCycles[len(issueCycles)-1] - issueCycles[len(issueCycles)-2]
	if last < 2*first-uint64(h.p.TimeoutJitter)*8 {
		t.Fatalf("backoff not growing: first gap %d, last gap %d", first, last)
	}
}
