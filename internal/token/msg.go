// Package token implements the Token Coherence protocol (Martin et al.,
// ISCA 2003) that the paper uses as its base coherence protocol (Table II:
// "Token Coherence, MOESI protocol"). Each block has a fixed number of
// tokens; a reader needs at least one token plus valid data, a writer
// needs all of them. Requests are *transient* (unordered, may fail and be
// retried) with a *persistent* fallback that guarantees forward progress.
//
// Virtual snooping plugs in underneath as a Router that chooses which
// cores a transient request is multicast to. The protocol's safe-retry
// property is exactly what the paper's counter-threshold policy exploits:
// the first attempts may be filtered too aggressively, and the later
// attempts broadcast.
package token

import (
	"vsnoop/internal/mem"
	"vsnoop/internal/mesh"
	"vsnoop/internal/sim"
)

// Kind enumerates coherence message types.
type Kind uint8

const (
	// MsgGetS is a transient read request (needs data + >=1 token).
	MsgGetS Kind = iota
	// MsgGetX is a transient write request (needs data + all tokens).
	MsgGetX
	// MsgData carries data plus zero or more tokens to a requester.
	MsgData
	// MsgTokens carries tokens without data.
	MsgTokens
	// MsgWBData is an owner writeback (data + tokens) to memory.
	MsgWBData
	// MsgWBTokens is a token-only writeback to memory.
	MsgWBTokens
	// MsgPersistentReq asks the home memory controller to activate a
	// persistent request for the sender.
	MsgPersistentReq
	// MsgPersistentActivate is broadcast by the home memory controller:
	// every holder must forward its tokens to the persistent requester,
	// and forward any tokens that arrive while the entry is active.
	MsgPersistentActivate
	// MsgPersistentRelease tells the home controller the persistent
	// requester is satisfied.
	MsgPersistentRelease
	// MsgPersistentDeactivate is broadcast by the home controller to clear
	// the persistent entry at every node.
	MsgPersistentDeactivate
)

func (k Kind) String() string {
	return [...]string{"GetS", "GetX", "Data", "Tokens", "WBData", "WBTokens",
		"PReq", "PAct", "PRel", "PDeact"}[k]
}

// Msg is one coherence message. Control messages occupy CtrlBytes on the
// network; messages carrying data occupy DataBytes.
type Msg struct {
	Kind   Kind
	Addr   mem.BlockAddr
	Src    mesh.NodeID // sender endpoint
	Tokens int
	Owner  bool // the owner token travels with this message
	Dirty  bool // data is dirty relative to memory (travels with owner)
	Data   bool // message carries the data block

	// Request-only fields.
	VM    mem.VMID     // requesting VM (for RO provider logic and stats)
	Page  mem.PageType // sharing type from the requester's TLB
	TID   uint64       // transaction id (matches responses to attempts)
	Dests []mesh.NodeID
	Write bool
}

// Params are the protocol timing/size constants.
type Params struct {
	TotalTokens int // tokens per block (cores + 1)

	CtrlBytes int // control message size (8 B)
	DataBytes int // data message size (64 B block + 8 B header)

	L2Latency   sim.Cycle // lookup/response latency at a snooped cache
	FillLatency sim.Cycle // requester restart after satisfaction
	DRAMLatency sim.Cycle // memory access latency
	MCLatency   sim.Cycle // memory controller token-only processing

	TimeoutBase   sim.Cycle // transient-request timeout (first attempt)
	TimeoutJitter int       // random extra cycles per retry (livelock break)
	// TimeoutMax caps the exponential backoff of the retry timeout; 0 means
	// 8x TimeoutBase. Backoff desynchronizes retries under message-loss
	// storms (without it every loser of a token race retries in lockstep).
	TimeoutMax sim.Cycle

	// RetriesBeforeBroadcast is the number of attempts issued with the
	// Router's (possibly filtered) destination set before falling back to
	// broadcast. The paper's counter-threshold policy uses 2.
	RetriesBeforeBroadcast int
	// RetriesBeforePersistent is the number of transient attempts before
	// resorting to a persistent request.
	RetriesBeforePersistent int
}

// DefaultParams returns the constants used throughout the evaluation
// (Table II timing, 1 GHz clock).
func DefaultParams(cores int) Params {
	return Params{
		TotalTokens:             cores + 1,
		CtrlBytes:               8,
		DataBytes:               72,
		L2Latency:               10,
		FillLatency:             2,
		DRAMLatency:             200,
		MCLatency:               10,
		TimeoutBase:             400,
		TimeoutJitter:           64,
		RetriesBeforeBroadcast:  2,
		RetriesBeforePersistent: 4,
	}
}

// RouteInfo describes one transaction attempt to the snoop Router.
type RouteInfo struct {
	Addr      mem.BlockAddr
	VM        mem.VMID
	Page      mem.PageType
	Requester int         // core index
	CoreNode  mesh.NodeID // requester's network endpoint
	Attempt   int         // 1-based
	Write     bool
}

// Router chooses the remote cache controllers a transient request is sent
// to. The home memory controller is always included implicitly. Virtual
// snooping's destination-set policies implement this interface; the
// baseline TokenB router returns every other core.
type Router interface {
	Route(info RouteInfo) []mesh.NodeID
}

// Oracle gives the memory controller the global visibility a real design
// obtains with response aggregation: whether a designated RO-shared
// provider copy exists among the snooped cores, so memory sends a
// token-only message instead of a redundant data block (Section VI.B).
type Oracle interface {
	ROProviderAmong(addr mem.BlockAddr, cores []mesh.NodeID) bool
}

// Observer watches token custody changes at coherence controllers. Depart
// fires when a controller hands tokens to the network (its own state already
// decremented); Arrive fires when a controller absorbs them. The invariant
// checker (internal/check) uses the pair to maintain an in-flight ledger, so
// token conservation can be verified at any instant even while messages are
// on the wire. Hooks are observation-only and must not mutate protocol state.
type Observer interface {
	Depart(addr mem.BlockAddr, tokens int, owner bool)
	Arrive(addr mem.BlockAddr, tokens int, owner bool)
}

// EscalationSink is notified when a transaction escalates past a filtering
// threshold: level 1 when it falls back to broadcast (the filtered
// destination set failed RetriesBeforeBroadcast times), level 2 when it
// resorts to a persistent request. The snoop filter (internal/core) uses
// these signals to suspect the requesting VM's vCPU map and degrade its
// destination sets gracefully (map -> counter-augmented map -> broadcast).
type EscalationSink interface {
	NoteEscalation(vm mem.VMID, level int)
}
