package token

import (
	"fmt"

	"vsnoop/internal/cache"
	"vsnoop/internal/mem"
	"vsnoop/internal/mesh"
	"vsnoop/internal/sim"
)

// Txn is one outstanding coherence transaction (an L2 miss or a write
// upgrade). Cores are in-order and blocking, so each cache controller has
// at most one.
type Txn struct {
	Addr    mem.BlockAddr
	VM      mem.VMID
	Page    mem.PageType
	Write   bool
	Attempt int
	TID     uint64
	Issued  sim.Cycle

	done       func()
	gotData    bool
	persistent bool
	completed  bool
}

// Stats are the per-controller protocol counters.
type Stats struct {
	// SnoopLookups counts external-request tag lookups performed at this
	// cache (the power-relevant quantity snoop filtering attacks).
	SnoopLookups uint64
	// SnoopsIssued counts cores snooped by this core's own requests,
	// including the requester itself — the paper's per-transaction snoop
	// cost (broadcast on 16 cores = 16; a 4-core vCPU map = 4).
	SnoopsIssued uint64
	// Transactions counts coherence transactions started.
	Transactions uint64
	// Retries counts transient-request re-issues.
	Retries uint64
	// Persistent counts persistent-request activations.
	Persistent uint64
	// Writebacks counts evicted blocks returned to memory.
	Writebacks uint64
}

// CacheCtrl is the cache-side Token Coherence controller of one core's
// private L2.
type CacheCtrl struct {
	Eng    *sim.Engine
	Net    *mesh.Network
	Node   mesh.NodeID
	Core   int
	L2     *cache.Cache
	P      Params
	Router Router

	// AllCores lists every other core's endpoint (broadcast fallback).
	AllCores []mesh.NodeID
	// MCNodes are the memory controllers; the home is chosen by block
	// address interleaving.
	MCNodes []mesh.NodeID

	Rng *sim.Rand

	Stats Stats

	// Obs, if set, watches token custody changes (invariant checking).
	Obs Observer
	// Esc, if set, is told when a transaction escalates past a filtering
	// threshold (graceful map degradation in the snoop filter).
	Esc EscalationSink

	// OnFill, if set, runs when a transaction completes and its block is
	// resident (the system layer uses it to designate RO provider copies).
	OnFill func(b *cache.Block, t *Txn)

	cur        *Txn
	txn        Txn // backing storage for cur: cores are blocking, so one suffices
	tidSeq     uint64
	persistent map[mem.BlockAddr]mesh.NodeID

	// sendFn/timeoutFn are the prebound event handlers for the two hot
	// schedulers (delayed response send, retry timeout), created once in
	// Init so arming them allocates nothing.
	sendFn    sim.HandlerFn
	timeoutFn sim.HandlerFn
}

// Init prepares internal state; call once after the fields are set.
func (c *CacheCtrl) Init() {
	c.persistent = make(map[mem.BlockAddr]mesh.NodeID)
	if c.Rng == nil {
		c.Rng = sim.NewRandTagged(0xC0DE, fmt.Sprintf("ctrl%d", c.Core))
	}
	// u packs (destination << 32 | bytes); the already-boxed Msg rides in arg.
	c.sendFn = func(arg interface{}, u uint64) {
		c.Net.Send(c.Node, mesh.NodeID(u>>32), int(uint32(u)), arg)
	}
	// u is the TID the timeout was armed for.
	c.timeoutFn = func(_ interface{}, u uint64) {
		if c.cur == nil || c.cur.TID != u || c.cur.completed {
			return
		}
		c.Stats.Retries++
		c.issueAttempt()
	}
}

// Busy reports whether a transaction is outstanding.
func (c *CacheCtrl) Busy() bool { return c.cur != nil }

// Outstanding describes the in-flight transaction, if any: its address,
// issue cycle, and attempt count. The transaction-completion invariant
// (internal/check) uses it to detect transactions stuck beyond an age bound.
func (c *CacheCtrl) Outstanding() (addr mem.BlockAddr, issued sim.Cycle, attempt int, ok bool) {
	if c.cur == nil {
		return 0, 0, 0, false
	}
	return c.cur.Addr, c.cur.Issued, c.cur.Attempt, true
}

// HomeMC returns the home memory controller endpoint for addr
// (block-interleaved).
func (c *CacheCtrl) HomeMC(a mem.BlockAddr) mesh.NodeID {
	return c.MCNodes[uint64(a)%uint64(len(c.MCNodes))]
}

// Start begins a transaction for addr. done runs (after the fill latency)
// once the request is satisfied. The caller must have established that
// this is a genuine miss or upgrade (Busy must be false).
func (c *CacheCtrl) Start(addr mem.BlockAddr, vm mem.VMID, page mem.PageType, write bool, done func()) {
	if c.cur != nil {
		panic(fmt.Sprintf("token: core %d started txn while busy", c.Core))
	}
	c.txn = Txn{Addr: addr, VM: vm, Page: page, Write: write, done: done, Issued: c.Eng.Now()}
	t := &c.txn
	c.cur = t
	c.Stats.Transactions++
	if b := c.L2.Lookup(addr); b != nil && b.Tokens >= 1 {
		t.gotData = true // upgrade: data already valid locally
		need := 1
		if write {
			need = c.P.TotalTokens
		}
		if b.Tokens >= need {
			// Already satisfiable without the network (e.g. a silent E->M
			// upgrade); no response will arrive, so complete here.
			c.complete(t, b)
			return
		}
	}
	c.issueAttempt()
}

//vsnoop:hotpath
func (c *CacheCtrl) issueAttempt() {
	t := c.cur
	t.Attempt++
	c.tidSeq++
	t.TID = c.tidSeq

	if t.Attempt > c.P.RetriesBeforePersistent {
		c.activatePersistent(t)
		return
	}

	var dests []mesh.NodeID
	if t.Attempt > c.P.RetriesBeforeBroadcast {
		if t.Attempt == c.P.RetriesBeforeBroadcast+1 && c.Esc != nil {
			c.Esc.NoteEscalation(t.VM, 1)
		}
		dests = c.AllCores
	} else {
		dests = c.Router.Route(RouteInfo{
			Addr: t.Addr, VM: t.VM, Page: t.Page,
			Requester: c.Core, CoreNode: c.Node,
			Attempt: t.Attempt, Write: t.Write,
		})
	}
	c.Stats.SnoopsIssued += uint64(len(dests)) + 1 // +1: the requester itself

	kind := MsgGetS
	if t.Write {
		kind = MsgGetX
	}
	// Box the request Msg into an interface value once; every unicast of the
	// multicast shares it (payloads are read-only by protocol convention).
	//lint:alloc deliberate one-boxing per multicast: N unicasts share this single escaped Msg
	var payload interface{} = Msg{Kind: kind, Addr: t.Addr, Src: c.Node, VM: t.VM,
		Page: t.Page, TID: t.TID, Dests: dests, Write: t.Write}
	for _, d := range dests {
		c.Net.Send(c.Node, d, c.P.CtrlBytes, payload)
	}
	c.Net.Send(c.Node, c.HomeMC(t.Addr), c.P.CtrlBytes, payload)

	c.armTimeout(t)
}

func (c *CacheCtrl) armTimeout(t *Txn) {
	// Exponential backoff: attempt k waits base*2^(k-1), capped, so that a
	// loss storm doesn't re-synchronize every loser onto the same retry
	// cycle. Attempt 1 waits exactly TimeoutBase (fault-free timing is
	// unchanged from before backoff existed).
	wait := c.P.TimeoutBase
	if shift := t.Attempt - 1; shift > 0 {
		if shift > 6 {
			shift = 6 // avoid Cycle overflow on pathological attempt counts
		}
		wait = c.P.TimeoutBase << uint(shift)
		maxWait := c.P.TimeoutMax
		if maxWait == 0 {
			maxWait = 8 * c.P.TimeoutBase
		}
		if wait > maxWait {
			wait = maxWait
		}
	}
	if c.P.TimeoutJitter > 0 {
		wait += sim.Cycle(c.Rng.Intn(c.P.TimeoutJitter)) * sim.Cycle(t.Attempt)
	}
	c.Eng.ScheduleFn(wait, c.timeoutFn, nil, t.TID)
}

func (c *CacheCtrl) activatePersistent(t *Txn) {
	t.persistent = true
	c.Stats.Persistent++
	if c.Esc != nil {
		c.Esc.NoteEscalation(t.VM, 2)
	}
	c.Net.Send(c.Node, c.HomeMC(t.Addr), c.P.CtrlBytes, Msg{
		Kind: MsgPersistentReq, Addr: t.Addr, Src: c.Node, VM: t.VM,
		Page: t.Page, TID: t.TID, Write: t.Write, Dests: c.AllCores,
	})
	// The activation broadcast costs a snoop at every core.
	c.Stats.SnoopsIssued += uint64(len(c.AllCores)) + 1
	c.armTimeout(t) // re-arm in case activation itself races
}

// depart/arrive notify the token-custody observer (no-ops when unset or
// when the transfer carries nothing the ledger tracks).
func (c *CacheCtrl) depart(addr mem.BlockAddr, tokens int, owner bool) {
	if c.Obs != nil && (tokens > 0 || owner) {
		c.Obs.Depart(addr, tokens, owner)
	}
}

func (c *CacheCtrl) arrive(addr mem.BlockAddr, tokens int, owner bool) {
	if c.Obs != nil && (tokens > 0 || owner) {
		c.Obs.Arrive(addr, tokens, owner)
	}
}

// badCtrlMsgPanic is Handle's cold failure path; it keeps the fmt call out
// of the annotated hot function.
func badCtrlMsgPanic(k Kind) {
	panic(fmt.Sprintf("token: cache ctrl got %v", k))
}

// Handle processes a delivered coherence message; it is the mesh handler
// for this endpoint.
//vsnoop:hotpath
func (c *CacheCtrl) Handle(payload interface{}) {
	msg := payload.(Msg)
	switch msg.Kind {
	case MsgGetS, MsgGetX:
		c.handleRequest(msg)
	case MsgData, MsgTokens:
		c.handleResponse(msg)
	case MsgPersistentActivate:
		c.handleActivate(msg)
	case MsgPersistentDeactivate:
		delete(c.persistent, msg.Addr)
	default:
		badCtrlMsgPanic(msg.Kind)
	}
}

// handleRequest applies the TokenB snoop-response rules.
//vsnoop:hotpath
func (c *CacheCtrl) handleRequest(msg Msg) {
	c.Stats.SnoopLookups++
	b := c.L2.Lookup(msg.Addr)
	if b == nil || b.Tokens == 0 {
		// RO-shared provider copies answer reads even without spare
		// tokens; but a token-less block holds no data rights, so nothing
		// to do here.
		return
	}
	switch msg.Kind {
	case MsgGetS:
		switch {
		case b.Owner && b.Tokens >= 2:
			b.Tokens--
			c.depart(msg.Addr, 1, false)
			c.respond(msg.Src, Msg{Kind: MsgData, Addr: msg.Addr, Src: c.Node,
				Tokens: 1, Data: true})
		case b.Owner: // only the owner token left: transfer ownership
			info := c.L2.Invalidate(b)
			c.depart(msg.Addr, info.Tokens, true)
			c.respond(msg.Src, Msg{Kind: MsgData, Addr: msg.Addr, Src: c.Node,
				Tokens: info.Tokens, Owner: true, Dirty: info.Dirty, Data: true})
		case b.Provider && msg.Page == mem.PageROShared:
			// Designated per-VM provider for a content-shared block: send
			// data only; the token comes from memory (Section VI.B).
			c.respond(msg.Src, Msg{Kind: MsgData, Addr: msg.Addr, Src: c.Node,
				Tokens: 0, Data: true})
		}
	case MsgGetX:
		info := c.L2.Invalidate(b)
		c.depart(msg.Addr, info.Tokens, info.Owner)
		kind := MsgTokens
		if info.Owner {
			kind = MsgData
		}
		c.respond(msg.Src, Msg{Kind: kind, Addr: msg.Addr, Src: c.Node,
			Tokens: info.Tokens, Owner: info.Owner, Dirty: info.Dirty,
			Data: info.Owner})
	}
}

// respond sends a response after the L2 access latency.
//vsnoop:hotpath
func (c *CacheCtrl) respond(dst mesh.NodeID, msg Msg) {
	bytes := c.P.CtrlBytes
	if msg.Data {
		bytes = c.P.DataBytes
	}
	//lint:alloc deliberate one-boxing: the Msg escapes exactly once here and the delayed send reuses the boxed value
	var payload interface{} = msg
	c.Eng.ScheduleFn(c.P.L2Latency, c.sendFn, payload, uint64(dst)<<32|uint64(uint32(bytes)))
}

// handleResponse accumulates arriving tokens/data into the outstanding
// transaction, forwarding them if a persistent entry for another node is
// active, or conserving them if no transaction wants them.
//vsnoop:hotpath
func (c *CacheCtrl) handleResponse(msg Msg) {
	if holder, ok := c.persistent[msg.Addr]; ok && holder != c.Node {
		// Relayed tokens stay in flight: no Arrive/Depart on the ledger.
		c.forward(holder, msg)
		return
	}
	c.arrive(msg.Addr, msg.Tokens, msg.Owner)
	t := c.cur
	if t == nil || t.Addr != msg.Addr || t.completed {
		// Stray response (e.g. a second holder answered a retried
		// request). Absorb into a resident block, else conserve tokens by
		// writing them back to memory.
		if b := c.L2.Lookup(msg.Addr); b != nil {
			b.Tokens += msg.Tokens
			b.Owner = b.Owner || msg.Owner
			b.Dirty = b.Dirty || msg.Dirty
			return
		}
		if msg.Tokens > 0 {
			c.writebackTokens(msg.Addr, msg.Tokens, msg.Owner, msg.Dirty)
		}
		return
	}

	b := c.ensureBlock(t)
	b.Tokens += msg.Tokens
	b.Owner = b.Owner || msg.Owner
	b.Dirty = b.Dirty || msg.Dirty
	if msg.Data {
		t.gotData = true
	}

	need := 1
	if t.Write {
		need = c.P.TotalTokens
	}
	if t.gotData && b.Tokens >= need {
		c.complete(t, b)
	}
}

// ensureBlock returns the L2 block for the transaction, re-inserting it if
// a competing GetX invalidated it mid-flight.
func (c *CacheCtrl) ensureBlock(t *Txn) *cache.Block {
	if b := c.L2.Lookup(t.Addr); b != nil {
		return b
	}
	b, victim, evicted := c.L2.Insert(t.Addr, t.VM)
	if evicted {
		c.writeback(victim)
	}
	return b
}

func (c *CacheCtrl) complete(t *Txn, b *cache.Block) {
	t.completed = true
	// A completed coherence transaction is forward progress: under a fault
	// plan's delay storm one reference can legitimately burn through far
	// more events than usual (every retry re-floods the snoop domain), and
	// only the reference stream used to feed the watchdog. Auditing here
	// keeps the no-progress limit meaning "stuck", not "slow".
	c.Eng.Progress()
	if t.Write {
		b.Dirty = true
		if !b.Owner {
			panic("token: write completed without owner token")
		}
	}
	c.L2.Touch(b)
	if c.OnFill != nil {
		c.OnFill(b, t)
	}
	if t.persistent {
		c.Net.Send(c.Node, c.HomeMC(t.Addr), c.P.CtrlBytes,
			Msg{Kind: MsgPersistentRelease, Addr: t.Addr, Src: c.Node})
	}
	done := t.done
	c.cur = nil
	c.Eng.Schedule(c.P.FillLatency, done)
}

// handleActivate services a persistent-request activation: forward every
// token we hold (and remember to forward future arrivals).
func (c *CacheCtrl) handleActivate(msg Msg) {
	c.Stats.SnoopLookups++
	c.persistent[msg.Addr] = msg.Src
	if msg.Src == c.Node {
		return
	}
	b := c.L2.Lookup(msg.Addr)
	if b == nil || b.Tokens == 0 {
		return
	}
	info := c.L2.Invalidate(b)
	c.depart(msg.Addr, info.Tokens, info.Owner)
	kind := MsgTokens
	if info.Owner {
		kind = MsgData
	}
	c.respond(msg.Src, Msg{Kind: kind, Addr: msg.Addr, Src: c.Node,
		Tokens: info.Tokens, Owner: info.Owner, Dirty: info.Dirty,
		Data: info.Owner})
}

// forward relays tokens to a persistent requester.
func (c *CacheCtrl) forward(dst mesh.NodeID, msg Msg) {
	out := msg
	out.Src = c.Node
	bytes := c.P.CtrlBytes
	if out.Data {
		bytes = c.P.DataBytes
	}
	c.Net.Send(c.Node, dst, bytes, out)
}

// FlushVM invalidates every block the VM holds in this L2 and writes the
// tokens (and dirty data) back to memory — the selective-flush mechanism
// Section IV.B sketches as an alternative to waiting for natural eviction.
// It returns the number of blocks flushed.
func (c *CacheCtrl) FlushVM(vm mem.VMID) int {
	infos := c.L2.FlushVM(vm)
	for _, v := range infos {
		c.writeback(v)
	}
	return len(infos)
}

// writeback returns an evicted block's tokens (and dirty data) to memory.
func (c *CacheCtrl) writeback(v cache.EvictInfo) {
	if v.Tokens == 0 {
		return // a mid-fill block with no tokens carries no obligations
	}
	c.writebackTokens(v.Addr, v.Tokens, v.Owner, v.Dirty)
}

func (c *CacheCtrl) writebackTokens(addr mem.BlockAddr, tokens int, owner, dirty bool) {
	c.Stats.Writebacks++
	c.depart(addr, tokens, owner)
	kind := MsgWBTokens
	bytes := c.P.CtrlBytes
	if owner && dirty {
		kind = MsgWBData
		bytes = c.P.DataBytes
	}
	c.Net.Send(c.Node, c.HomeMC(addr), bytes, Msg{
		Kind: kind, Addr: addr, Src: c.Node,
		Tokens: tokens, Owner: owner, Dirty: dirty, Data: kind == MsgWBData,
	})
}
