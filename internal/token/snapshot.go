package token

import (
	"vsnoop/internal/mem"
	"vsnoop/internal/mesh"
	"vsnoop/internal/sim"
)

// persistSave is one flattened persistent-table entry.
type persistSave struct {
	addr   mem.BlockAddr
	holder mesh.NodeID
}

// CtrlSnap is one checkpoint of a cache controller (optimistic shard
// engine): the outstanding transaction (a value copy — the done closure it
// carries was created before the checkpoint, so replay re-enters it with
// its captured state restored by the owning layer's own snapshot), the TID
// sequence, the counters, the RNG state, and the persistent-request table.
type CtrlSnap struct {
	txn     Txn
	cur     bool // cur == &c.txn (cores are blocking: one backing Txn)
	tidSeq  uint64
	stats   Stats
	rng     sim.Rand
	persist []persistSave
}

// Save copies the controller's mutable state into s.
func (c *CacheCtrl) Save(s *CtrlSnap) {
	s.txn = c.txn
	s.cur = c.cur != nil
	s.tidSeq = c.tidSeq
	s.stats = c.Stats
	s.rng = *c.Rng
	s.persist = s.persist[:0]
	for a, h := range c.persistent { //lint:ordered flattened entries are rebuilt into a map on Restore; the table is only ever read by key
		s.persist = append(s.persist, persistSave{addr: a, holder: h})
	}
}

// Restore rewinds the controller to the state captured by Save. The
// persistent table is rebuilt from the flattened entries; map iteration
// order in Save is irrelevant because the table is only ever read by key.
func (c *CacheCtrl) Restore(s *CtrlSnap) {
	c.txn = s.txn
	if s.cur {
		c.cur = &c.txn
	} else {
		c.cur = nil
	}
	c.tidSeq = s.tidSeq
	c.Stats = s.stats
	*c.Rng = s.rng
	clear(c.persistent)
	for _, p := range s.persist {
		c.persistent[p.addr] = p.holder
	}
}
