package token_test

import (
	"testing"

	"vsnoop/internal/mem"
)

// TestCompletionResetsWatchdog chains many back-to-back coherence
// transactions with a watchdog limit far below the run's total event count
// but far above any single transaction's. Each completed transaction must
// audit forward progress — otherwise a long run of individually healthy
// transactions (the signature of a fault-plan delay storm, where retries
// inflate events-per-reference) trips the watchdog spuriously.
func TestCompletionResetsWatchdog(t *testing.T) {
	h := newHarness(t, 16, nil)
	const txns = 400
	const limit = 4000 // >> events per transaction, << events per run
	h.eng.SetProgressLimit(limit)

	completed := 0
	var start func(i int)
	start = func(i int) {
		if i >= txns {
			return
		}
		h.ctrls[i%16].Start(mem.BlockAddr(1000+i), 1, mem.PagePrivate, i%2 == 0, func() {
			completed++
			start(i + 1)
		})
	}
	start(0)

	for {
		ok, err := h.eng.StepChecked()
		if err != nil {
			t.Fatalf("watchdog tripped after %d/%d transactions: %v", completed, txns, err)
		}
		if !ok {
			break
		}
	}
	if completed != txns {
		t.Fatalf("completed %d of %d transactions", completed, txns)
	}
	if h.eng.Fired() <= limit {
		t.Fatalf("rig too small to catch a regression: %d events <= limit %d", h.eng.Fired(), limit)
	}
}
