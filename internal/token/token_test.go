package token_test

import (
	"testing"

	"vsnoop/internal/cache"
	"vsnoop/internal/mem"
	"vsnoop/internal/memctrl"
	"vsnoop/internal/mesh"
	"vsnoop/internal/sim"
	"vsnoop/internal/token"
)

// broadcastRouter is the TokenB baseline: snoop every other core.
type broadcastRouter struct{ all []mesh.NodeID }

func (r broadcastRouter) Route(info token.RouteInfo) []mesh.NodeID {
	out := make([]mesh.NodeID, 0, len(r.all)-1)
	for _, n := range r.all {
		if n != info.CoreNode {
			out = append(out, n)
		}
	}
	return out
}

// emptyRouter filters everything out (forces retries/persistent fallback).
type emptyRouter struct{}

func (emptyRouter) Route(token.RouteInfo) []mesh.NodeID { return nil }

type harness struct {
	eng   *sim.Engine
	net   *mesh.Network
	ctrls []*token.CacheCtrl
	mc    *memctrl.Ctrl
	p     token.Params
}

func newHarness(t *testing.T, nCores int, router token.Router) *harness {
	t.Helper()
	eng := sim.NewEngine()
	net := mesh.New(eng, mesh.DefaultConfig())
	p := token.DefaultParams(nCores)

	coreNodes := make([]mesh.NodeID, nCores)
	for i := 0; i < nCores; i++ {
		coreNodes[i] = net.Attach(i%4, i/4, nil)
	}
	mcNode := net.Attach(0, 0, nil)

	mc := &memctrl.Ctrl{Eng: eng, Net: net, Node: mcNode, P: p, AllCaches: coreNodes}
	mc.Init()
	net.SetHandler(mcNode, mc.Handle)

	h := &harness{eng: eng, net: net, mc: mc, p: p}
	for i := 0; i < nCores; i++ {
		l2 := cache.New(cache.Config{Name: "L2", SizeBytes: 16 * 1024, Ways: 8, BlockBytes: 64, HitLatency: 10})
		c := &token.CacheCtrl{
			Eng: eng, Net: net, Node: coreNodes[i], Core: i, L2: l2, P: p,
			Router: router, MCNodes: []mesh.NodeID{mcNode},
		}
		if router == nil {
			c.Router = broadcastRouter{all: coreNodes}
		}
		others := make([]mesh.NodeID, 0, nCores-1)
		for j, n := range coreNodes {
			if j != i {
				others = append(others, n)
			}
		}
		c.AllCores = others
		c.Init()
		net.SetHandler(coreNodes[i], c.Handle)
		h.ctrls = append(h.ctrls, c)
	}
	return h
}

// run drives the engine until quiescent.
func (h *harness) run() { h.eng.Run() }

// checkConservation asserts that, at quiescence, every touched block has
// exactly TotalTokens tokens and exactly one owner across caches + memory.
func (h *harness) checkConservation(t *testing.T, addrs []mem.BlockAddr) {
	t.Helper()
	for _, a := range addrs {
		tokens, owners := 0, 0
		mcTok, mcOwn := h.mc.Tokens(a)
		tokens += mcTok
		if mcOwn {
			owners++
		}
		for _, c := range h.ctrls {
			if b := c.L2.Lookup(a); b != nil {
				tokens += b.Tokens
				if b.Owner {
					owners++
				}
			}
		}
		if tokens != h.p.TotalTokens {
			t.Fatalf("block %d: %d tokens in system, want %d", a, tokens, h.p.TotalTokens)
		}
		if owners != 1 {
			t.Fatalf("block %d: %d owner tokens, want exactly 1", a, owners)
		}
	}
}

func TestColdReadFromMemory(t *testing.T) {
	h := newHarness(t, 4, nil)
	done := false
	h.ctrls[0].Start(100, 1, mem.PagePrivate, false, func() { done = true })
	h.run()
	if !done {
		t.Fatal("read never completed")
	}
	b := h.ctrls[0].L2.Lookup(100)
	if b == nil || b.Tokens != 1 {
		t.Fatalf("requester block = %+v", b)
	}
	if cache.StateOf(b, h.p.TotalTokens) != cache.Shared {
		t.Fatalf("state = %v, want S", cache.StateOf(b, h.p.TotalTokens))
	}
	if h.mc.Stats.DRAMReads != 1 {
		t.Fatalf("DRAM reads = %d", h.mc.Stats.DRAMReads)
	}
	h.checkConservation(t, []mem.BlockAddr{100})
}

func TestWriteThenReadCacheToCache(t *testing.T) {
	h := newHarness(t, 4, nil)
	phase := 0
	h.ctrls[0].Start(200, 1, mem.PagePrivate, true, func() { phase = 1 })
	h.run()
	if phase != 1 {
		t.Fatal("write never completed")
	}
	b0 := h.ctrls[0].L2.Lookup(200)
	if cache.StateOf(b0, h.p.TotalTokens) != cache.Modified {
		t.Fatalf("writer state = %v, want M", cache.StateOf(b0, h.p.TotalTokens))
	}
	dramBefore := h.mc.Stats.DRAMReads
	h.ctrls[1].Start(200, 1, mem.PagePrivate, false, func() { phase = 2 })
	h.run()
	if phase != 2 {
		t.Fatal("read never completed")
	}
	if h.mc.Stats.DRAMReads != dramBefore {
		t.Fatal("read of dirty block went to DRAM instead of cache-to-cache")
	}
	b1 := h.ctrls[1].L2.Lookup(200)
	if b1 == nil || b1.Tokens < 1 {
		t.Fatalf("reader block = %+v", b1)
	}
	// Writer kept the owner token and the dirty data.
	b0 = h.ctrls[0].L2.Lookup(200)
	if b0 == nil || !b0.Owner || !b0.Dirty {
		t.Fatalf("old writer lost ownership unexpectedly: %+v", b0)
	}
	h.checkConservation(t, []mem.BlockAddr{200})
}

func TestGetXInvalidatesSharers(t *testing.T) {
	h := newHarness(t, 4, nil)
	n := 0
	for i := 0; i < 3; i++ {
		h.ctrls[i].Start(300, 1, mem.PagePrivate, false, func() { n++ })
		h.run()
	}
	if n != 3 {
		t.Fatalf("reads completed = %d", n)
	}
	h.ctrls[3].Start(300, 1, mem.PagePrivate, true, func() { n++ })
	h.run()
	if n != 4 {
		t.Fatal("write never completed")
	}
	for i := 0; i < 3; i++ {
		if b := h.ctrls[i].L2.Lookup(300); b != nil {
			t.Fatalf("sharer %d not invalidated: %+v", i, b)
		}
	}
	b := h.ctrls[3].L2.Lookup(300)
	if cache.StateOf(b, h.p.TotalTokens) != cache.Modified {
		t.Fatalf("writer state = %v", cache.StateOf(b, h.p.TotalTokens))
	}
	h.checkConservation(t, []mem.BlockAddr{300})
}

func TestWriteUpgradeFromShared(t *testing.T) {
	h := newHarness(t, 4, nil)
	steps := 0
	h.ctrls[0].Start(400, 1, mem.PagePrivate, false, func() { steps++ })
	h.run()
	h.ctrls[1].Start(400, 1, mem.PagePrivate, false, func() { steps++ })
	h.run()
	h.ctrls[0].Start(400, 1, mem.PagePrivate, true, func() { steps++ })
	h.run()
	if steps != 3 {
		t.Fatalf("steps = %d", steps)
	}
	b := h.ctrls[0].L2.Lookup(400)
	if cache.StateOf(b, h.p.TotalTokens) != cache.Modified {
		t.Fatalf("upgrader state = %v", cache.StateOf(b, h.p.TotalTokens))
	}
	if h.ctrls[1].L2.Lookup(400) != nil {
		t.Fatal("other sharer survived the upgrade")
	}
	h.checkConservation(t, []mem.BlockAddr{400})
}

func TestEvictionWritebackRestoresMemory(t *testing.T) {
	h := newHarness(t, 2, nil)
	// L2 is 16KB/8way/64B = 32 sets. Fill one set beyond capacity with
	// writes so dirty evictions occur.
	var addrs []mem.BlockAddr
	for i := 0; i < 10; i++ {
		a := mem.BlockAddr(i * 32) // same set
		addrs = append(addrs, a)
		done := false
		h.ctrls[0].Start(a, 1, mem.PagePrivate, true, func() { done = true })
		h.run()
		if !done {
			t.Fatalf("write %d never completed", i)
		}
	}
	if h.ctrls[0].Stats.Writebacks == 0 {
		t.Fatal("no writebacks despite set overflow")
	}
	if h.mc.Stats.DRAMWrites == 0 {
		t.Fatal("dirty evictions did not write DRAM")
	}
	h.checkConservation(t, addrs)
}

func TestFilteredRouterFallsBackToBroadcast(t *testing.T) {
	// Core 0 holds the block M; the router filters all snoops (as an
	// over-aggressive counter-threshold would). The requester must fall
	// back to broadcast after RetriesBeforeBroadcast attempts and finish.
	h := newHarness(t, 4, emptyRouter{})
	done := false
	h.ctrls[0].Start(500, 1, mem.PagePrivate, true, func() { done = true })
	h.run()
	if !done {
		t.Fatal("setup write failed")
	}
	got := false
	h.ctrls[1].Start(500, 2, mem.PagePrivate, true, func() { got = true })
	h.run()
	if !got {
		t.Fatal("filtered request never completed via broadcast fallback")
	}
	if h.ctrls[1].Stats.Retries == 0 {
		t.Fatal("expected at least one retry")
	}
	h.checkConservation(t, []mem.BlockAddr{500})
}

func TestPersistentRequestGuaranteesProgress(t *testing.T) {
	h := newHarness(t, 4, emptyRouter{})
	// Never broadcast transiently: force the persistent path.
	for _, c := range h.ctrls {
		c.P.RetriesBeforeBroadcast = 100
		c.P.RetriesBeforePersistent = 2
	}
	done := false
	h.ctrls[0].Start(600, 1, mem.PagePrivate, true, func() { done = true })
	h.run()
	if !done {
		t.Fatal("setup write failed (memory responds even to empty dests)")
	}
	got := false
	h.ctrls[1].Start(600, 2, mem.PagePrivate, true, func() { got = true })
	h.run()
	if !got {
		t.Fatal("persistent request did not complete")
	}
	if h.ctrls[1].Stats.Persistent == 0 {
		t.Fatal("persistent path not exercised")
	}
	if h.mc.Stats.Activations == 0 {
		t.Fatal("no activation recorded at memory")
	}
	h.checkConservation(t, []mem.BlockAddr{600})
}

func TestConcurrentWritersBothComplete(t *testing.T) {
	h := newHarness(t, 4, nil)
	done := 0
	h.ctrls[0].Start(700, 1, mem.PagePrivate, true, func() { done++ })
	h.ctrls[1].Start(700, 1, mem.PagePrivate, true, func() { done++ })
	h.run()
	if done != 2 {
		t.Fatalf("completed = %d, want 2 (racing writers must both finish)", done)
	}
	h.checkConservation(t, []mem.BlockAddr{700})
}

func TestROSharedMemoryDirect(t *testing.T) {
	// memory-direct: empty core destination set, memory supplies data.
	h := newHarness(t, 4, emptyRouter{})
	done := false
	h.ctrls[0].Start(800, 1, mem.PageROShared, false, func() { done = true })
	h.run()
	if !done {
		t.Fatal("memory-direct read did not complete")
	}
	if h.ctrls[0].Stats.Retries != 0 {
		t.Fatal("memory-direct read needed retries")
	}
	if h.mc.Stats.DRAMReads != 1 {
		t.Fatalf("DRAM reads = %d, want 1", h.mc.Stats.DRAMReads)
	}
	// Snoop cost: only the requester itself.
	if h.ctrls[0].Stats.SnoopsIssued != 1 {
		t.Fatalf("snoops issued = %d, want 1", h.ctrls[0].Stats.SnoopsIssued)
	}
	h.checkConservation(t, []mem.BlockAddr{800})
}

type fixedOracle bool

func (f fixedOracle) ROProviderAmong(mem.BlockAddr, []mesh.NodeID) bool { return bool(f) }

func TestROSharedProviderSuppliesData(t *testing.T) {
	h := newHarness(t, 4, nil)
	h.mc.Oracle = fixedOracle(true)
	// Seed core 0 with a provider copy.
	setup := false
	h.ctrls[0].Start(900, 1, mem.PageROShared, false, func() { setup = true })
	h.run()
	if !setup {
		t.Fatal("setup read failed")
	}
	b := h.ctrls[0].L2.Lookup(900)
	b.Provider = true
	dram := h.mc.Stats.DRAMReads
	got := false
	h.ctrls[1].Start(900, 2, mem.PageROShared, false, func() { got = true })
	h.run()
	if !got {
		t.Fatal("provider-backed read did not complete")
	}
	if h.mc.Stats.DRAMReads != dram {
		t.Fatal("memory sent data although a provider existed")
	}
	if h.mc.Stats.TokenSends == 0 {
		t.Fatal("memory should have sent the token")
	}
	h.checkConservation(t, []mem.BlockAddr{900})
}

func TestTokenConservationRandomProperty(t *testing.T) {
	// Random interleavings of reads/writes from all cores; at quiescence
	// tokens and owners must be conserved for every block.
	for seed := uint64(1); seed <= 5; seed++ {
		h := newHarness(t, 8, nil)
		r := sim.NewRand(seed)
		const blocks = 24
		var addrs []mem.BlockAddr
		for i := 0; i < blocks; i++ {
			addrs = append(addrs, mem.BlockAddr(1000+i))
		}
		pending := 0
		var issue func(core int)
		ops := make([]int, 8)
		issue = func(core int) {
			if ops[core] >= 30 {
				pending--
				return
			}
			ops[core]++
			a := addrs[r.Intn(blocks)]
			write := r.Bool(0.4)
			c := h.ctrls[core]
			if b := c.L2.Lookup(a); b != nil && b.Tokens >= 1 && (!write || b.Tokens == c.P.TotalTokens) {
				// hit: silent upgrade allowed at E
				if write {
					b.Dirty = true
				}
				h.eng.Schedule(1, func() { issue(core) })
				return
			}
			c.Start(a, mem.VMID(core/2), mem.PagePrivate, write, func() { issue(core) })
		}
		for core := 0; core < 8; core++ {
			pending++
			core := core
			h.eng.Schedule(sim.Cycle(core), func() { issue(core) })
		}
		h.run()
		total := 0
		for _, n := range ops {
			total += n
		}
		if total != 8*30 {
			t.Fatalf("seed %d: deadlock, only %d ops completed", seed, total)
		}
		h.checkConservation(t, addrs)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, uint64) {
		h := newHarness(t, 4, nil)
		r := sim.NewRand(7)
		count := 0
		var issue func(core int)
		issue = func(core int) {
			if count >= 100 {
				return
			}
			count++
			a := mem.BlockAddr(2000 + r.Intn(16))
			h.ctrls[core].Start(a, 1, mem.PagePrivate, r.Bool(0.5), func() { issue(core) })
		}
		issue(0)
		h.eng.Schedule(3, func() { issue(1) })
		h.run()
		var sn uint64
		for _, c := range h.ctrls {
			sn += c.Stats.SnoopLookups
		}
		return sn, h.net.ByteHops
	}
	s1, b1 := run()
	s2, b2 := run()
	if s1 != s2 || b1 != b2 {
		t.Fatalf("nondeterministic protocol: (%d,%d) vs (%d,%d)", s1, b1, s2, b2)
	}
}
