package lint

import (
	"go/ast"
	"go/types"
)

// wallClockAnalyzer forbids ambient inputs in sim-critical and
// deterministic-only packages: wall clock reads, environment lookups, and
// the global math/rand source. A simulation run must be a pure function of
// its configuration — simulated time comes from sim.Engine.Now and all
// randomness from seeded sim.Rand streams (or an explicitly constructed,
// seeded *rand.Rand plumbed through config). Methods on a *rand.Rand value
// are allowed; the package-level convenience functions draw from the
// shared, unseeded global source and are not. Host parallelism
// (runtime.GOMAXPROCS / runtime.NumCPU) is ambient too: a shard count
// derived inside sim code would make results depend on the machine, so the
// CLIs read it once at entry and plumb the value down (vsnoop.AutoShards).
// The serving tier follows the same discipline with an injected clock
// (serve.Options.Now), which keeps quota refill and job timing testable
// under a fake clock.
var wallClockAnalyzer = &Analyzer{
	Name:      "wallclock",
	Doc:       "forbids time.Now/Since, os.Getenv, runtime.GOMAXPROCS, and global math/rand in sim-critical and deterministic-only packages",
	WaiverKey: "wallclock",
	Run:       runWallClock,
}

// forbiddenCalls maps package path -> function name -> the complaint. An
// empty inner map means every package-level function is forbidden except
// those in allowedRand (seeded-source constructors).
var forbiddenWallClock = map[string]map[string]string{
	"time": {
		"Now":   "reads the wall clock; use the engine's simulated clock (sim.Engine.Now)",
		"Since": "reads the wall clock; use the engine's simulated clock (sim.Engine.Now)",
		"Until": "reads the wall clock; use the engine's simulated clock (sim.Engine.Now)",
	},
	"os": {
		"Getenv":    "reads the environment; plumb configuration through Config instead",
		"LookupEnv": "reads the environment; plumb configuration through Config instead",
		"Environ":   "reads the environment; plumb configuration through Config instead",
	},
	"runtime": {
		"GOMAXPROCS": "reads host parallelism inside sim code; read it once at CLI entry and plumb the value through config (shards auto-selection)",
		"NumCPU":     "reads host parallelism inside sim code; read it once at CLI entry and plumb the value through config (shards auto-selection)",
	},
}

// globalRandPkgs are the math/rand flavors whose package-level functions
// draw from a shared global source (unseeded, or per-process seeded —
// either way not reproducible per run-configuration).
var globalRandPkgs = map[string]bool{"math/rand": true, "math/rand/v2": true}

// allowedRand are math/rand package-level names that construct explicitly
// seeded sources rather than drawing from the global one.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
	// Type names, usable in declarations like *rand.Rand.
	"Rand": true, "Source": true, "Source64": true, "Zipf": true, "PCG": true, "ChaCha8": true,
}

func runWallClock(mod *Module, opts Options, report ReportFn) {
	for _, pkg := range mod.Pkgs {
		if !opts.Critical(pkg.Path) && !opts.Deterministic(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := pkg.Info.Uses[id].(*types.PkgName)
				if !ok {
					return true
				}
				path, name := pn.Imported().Path(), sel.Sel.Name
				if msg, bad := forbiddenWallClock[path][name]; bad {
					report(pkg, sel.Pos(), path+"."+name+" "+msg)
					return true
				}
				if globalRandPkgs[path] && !allowedRand[name] {
					report(pkg, sel.Pos(),
						path+"."+name+" uses the global rand source; use a seeded *rand.Rand (or sim.Rand) plumbed through config")
				}
				return true
			})
		}
	}
}
