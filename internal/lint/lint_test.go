package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureOptions treats every fixture package as sim-critical, so the
// critical-only analyzers apply to the testdata packages.
func fixtureOptions() Options {
	return Options{Critical: func(string) bool { return true }}
}

// want is one expectation parsed from a `// want "regex"` comment: a
// finding must appear on the same line with a message matching the regex.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// loadFixture loads testdata/src/<name> as a synthetic module.
func loadFixture(t *testing.T, name string) *Module {
	t.Helper()
	mod, err := LoadTree(filepath.Join("testdata", "src", name), "fix/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return mod
}

// checkFixture runs the full suite over one fixture with every package
// treated as sim-critical; checkFixtureWith does the same under caller
// scoping. Findings are verified against the fixture's want comments:
// every finding needs a matching want on its line, and every want must be
// consumed.
func checkFixture(t *testing.T, name string) {
	t.Helper()
	checkFixtureWith(t, name, fixtureOptions())
}

func checkFixtureWith(t *testing.T, name string, opts Options) {
	t.Helper()
	mod := loadFixture(t, name)

	var wants []*want
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "// want ")
					if idx < 0 {
						continue
					}
					p := mod.Fset.Position(c.Pos())
					for _, m := range wantRE.FindAllStringSubmatch(c.Text[idx:], -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want regex %q: %v", p.Filename, p.Line, m[1], err)
						}
						wants = append(wants, &want{file: relFile(mod, p.Filename), line: p.Line, re: re})
					}
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", name)
	}

	findings := Run(mod, opts)
	for _, f := range findings {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == f.File && w.line == f.Line && w.re.MatchString(f.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestMapRangeFixture(t *testing.T)  { checkFixture(t, "maprange") }
func TestWallClockFixture(t *testing.T) { checkFixture(t, "wallclock") }
func TestHotAllocFixture(t *testing.T)  { checkFixture(t, "hotalloc") }
func TestShardSafeFixture(t *testing.T) { checkFixture(t, "shardsafe") }

// TestShardAtomicFixture covers the atomic-confinement half of shardsafe:
// the allowlisted internal/sim structs pass, everything else is flagged.
func TestShardAtomicFixture(t *testing.T) { checkFixture(t, "shardatomic") }

// TestDomainOwnFixture covers the //vsnoop:owned annotation grammar and the
// confinement proof: self-indexed and deposited access is clean; foreign
// indexes, table enumeration, alias chains, package-level owned state, and
// call leaks are findings.
func TestDomainOwnFixture(t *testing.T) { checkFixture(t, "domainown") }

// TestTimewarpFixture covers the optimistic engine's speculative state
// under domainown: checkpoint saves and anti-message handling confined to
// the owning domain are clean, while a seeded cross-domain checkpoint
// write and a foreign outbox push are findings.
func TestTimewarpFixture(t *testing.T) { checkFixture(t, "timewarp") }

// TestIRFlowFixture covers the dataflow-IR corners: the verified key
// harvest and its near misses, package-level writes through local aliases,
// and hot-path allocations that escape on a later line.
func TestIRFlowFixture(t *testing.T) { checkFixture(t, "irflow") }

// TestStaleWaiverFixture covers stale-waiver detection: used waivers are
// silent, waivers that suppress nothing are findings at the waiver line.
func TestStaleWaiverFixture(t *testing.T) { checkFixture(t, "stalewaiver") }

// TestStaleOnlyForRanAnalyzers pins the interaction with -enable/-disable:
// a waiver is only stale relative to an analyzer that actually ran, so a
// restricted run must not condemn waivers it never evaluated.
func TestStaleOnlyForRanAnalyzers(t *testing.T) {
	mod := loadFixture(t, "stalewaiver")
	opts := fixtureOptions()
	opts.Enabled = map[string]bool{"wallclock": true}
	if fs := Run(mod, opts); len(fs) != 0 {
		t.Errorf("wallclock-only run must not report ordered/alloc waivers as stale, got %v", fs)
	}
}

// TestDomainOwnSeesPastShardSafe is the analyzer-split proof: the seeded
// cross-domain write (the SEED-marked line in the domainown fixture)
// mutates instance state only, so the shardsafe call-graph walk — which
// reaches the handler — reports nothing there, while domainown flags it.
func TestDomainOwnSeesPastShardSafe(t *testing.T) {
	mod := loadFixture(t, "domainown")

	seed := 0
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if strings.Contains(c.Text, "// SEED") {
						seed = mod.Fset.Position(c.Pos()).Line
					}
				}
			}
		}
	}
	if seed == 0 {
		t.Fatal("domainown fixture lost its SEED marker")
	}

	opts := fixtureOptions()
	opts.Enabled = map[string]bool{"shardsafe": true}
	for _, f := range Run(mod, opts) {
		if f.Line == seed {
			t.Errorf("shardsafe unexpectedly sees the seeded write: %s", f)
		}
	}

	opts = fixtureOptions()
	opts.Enabled = map[string]bool{"domainown": true}
	hit := false
	for _, f := range Run(mod, opts) {
		if f.Line == seed && strings.Contains(f.Message, "domain confinement") {
			hit = true
		}
	}
	if !hit {
		t.Errorf("domainown must flag the seeded cross-domain write on line %d", seed)
	}
}

// TestSuiteComposition pins the analyzer roster and waiver keys the CI lint
// job and the waiver grammar depend on.
func TestSuiteComposition(t *testing.T) {
	wantNames := []string{"maprange", "wallclock", "hotalloc", "shardsafe", "domainown"}
	wantKeys := []string{"ordered", "wallclock", "alloc", "shardsafe", "owned"}
	as := Analyzers()
	if len(as) != len(wantNames) {
		t.Fatalf("Analyzers() = %d entries, want %d", len(as), len(wantNames))
	}
	for i, a := range as {
		if a.Name != wantNames[i] {
			t.Errorf("Analyzers()[%d].Name = %q, want %q", i, a.Name, wantNames[i])
		}
		if a.WaiverKey != wantKeys[i] {
			t.Errorf("Analyzers()[%d].WaiverKey = %q, want %q", i, a.WaiverKey, wantKeys[i])
		}
	}
}

// TestPartTransferFixture covers the cross-domain ownership-transfer
// patterns from the graph-cut partitioner: prebound depart/arrive/ack
// handlers rooted purely by their sim.HandlerFn shape (no scheduler call in
// view), the deposit-only discipline they must follow, and the shortcuts —
// goroutine hand-off, package-level counters, ack channels, overlay map
// iteration — the suite must catch in that code.
func TestPartTransferFixture(t *testing.T) { checkFixture(t, "parttransfer") }

// TestServeScopeFixture covers the deterministic-only package class, the
// scoping the real module applies to internal/serve: goroutines, channels,
// mutexes, atomics on arbitrary structs, and package-level state draw no
// findings (shardsafe and hotalloc do not apply), while map iteration and
// ambient inputs are still flagged by maprange and wallclock.
func TestServeScopeFixture(t *testing.T) {
	checkFixtureWith(t, "servescope", Options{
		Critical:      func(string) bool { return false },
		Deterministic: func(string) bool { return true },
	})
}

// TestServeScopeNotCovered is the control: with the fixture in neither
// class, nothing at all is reported — the deterministic-only findings in
// TestServeScopeFixture really do come from the new scoping.
func TestServeScopeNotCovered(t *testing.T) {
	mod := loadFixture(t, "servescope")
	opts := Options{
		Critical:      func(string) bool { return false },
		Deterministic: func(string) bool { return false },
	}
	if fs := Run(mod, opts); len(fs) != 0 {
		t.Errorf("unscoped fixture must be silent, got %v", fs)
	}
}

// TestWaiverGrammar checks the negative fixture: a reason-less waiver and a
// misspelled key are findings themselves AND fail to suppress the map
// iterations they sit on, so the driver exits nonzero.
func TestWaiverGrammar(t *testing.T) {
	mod := loadFixture(t, "waiverbad")
	findings := Run(mod, fixtureOptions())

	countBy := make(map[string]int)
	for _, f := range findings {
		countBy[f.Analyzer]++
	}
	if countBy["waiver"] != 2 {
		t.Errorf("want 2 waiver-grammar findings, got %d (all: %v)", countBy["waiver"], findings)
	}
	if countBy["maprange"] != 2 {
		t.Errorf("malformed waivers must not suppress: want 2 maprange findings, got %d (all: %v)",
			countBy["maprange"], findings)
	}
	var sawNoReason, sawUnknownKey bool
	for _, f := range findings {
		if f.Analyzer != "waiver" {
			continue
		}
		if strings.Contains(f.Message, "lacks a reason") {
			sawNoReason = true
		}
		if strings.Contains(f.Message, "unknown waiver key sorted") {
			sawUnknownKey = true
		}
	}
	if !sawNoReason {
		t.Error("missing finding for the reason-less //lint:ordered")
	}
	if !sawUnknownKey {
		t.Error("missing finding for the misspelled //lint:sorted key")
	}
	if got := ExitCode(findings); got != 1 {
		t.Errorf("driver must exit nonzero on findings: ExitCode = %d, want 1", got)
	}
}

// TestExitCode pins the exit-code contract the CI lint job relies on.
func TestExitCode(t *testing.T) {
	if got := ExitCode(nil); got != 0 {
		t.Errorf("ExitCode(nil) = %d, want 0", got)
	}
	if got := ExitCode([]Finding{{Analyzer: "maprange"}}); got != 1 {
		t.Errorf("ExitCode(one finding) = %d, want 1", got)
	}
}

// TestAnalyzerSelection checks -enable/-disable semantics: restricting the
// run to maprange silences the wallclock fixture, and disabling wallclock
// does the same.
func TestAnalyzerSelection(t *testing.T) {
	mod := loadFixture(t, "wallclock")

	opts := fixtureOptions()
	opts.Enabled = map[string]bool{"maprange": true}
	if fs := Run(mod, opts); len(fs) != 0 {
		t.Errorf("enable=maprange on the wallclock fixture: want 0 findings, got %v", fs)
	}

	opts = fixtureOptions()
	opts.Disabled = map[string]bool{"wallclock": true}
	if fs := Run(mod, opts); len(fs) != 0 {
		t.Errorf("disable=wallclock on the wallclock fixture: want 0 findings, got %v", fs)
	}
}

// TestRepoClean is the HEAD-clean acceptance gate: the real module must
// produce zero findings (true problems fixed, judgment calls waived with
// reasons). It type-checks the whole repository, so it is the slowest test
// in the package.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check in -short mode")
	}
	mod, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	findings := Run(mod, Options{})
	for _, f := range findings {
		t.Errorf("repository not lint-clean: %s", f)
	}
}
