// Package lint implements vsnoop-lint, a from-scratch static-analysis
// suite (stdlib only: go/parser, go/ast, go/types, go/importer) guarding
// the two properties the simulator's correctness story rests on:
//
//   - Determinism — a run is a pure function of its configuration, and
//     sharded replay is bit-identical to serial. The #1 threat is Go map
//     iteration order; the #2 is wall-clock time and ambient randomness
//     leaking into simulation code. The maprange and wallclock analyzers
//     forbid both in the sim-critical packages, and also in the
//     deterministic-only packages (the serving tier), whose
//     content-addressed memoization and journal replay depend on the code
//     around the simulator being order- and clock-independent too.
//   - Hot-path allocation discipline — the PR-2 event kernel is zero-alloc
//     at steady state, enforced at runtime by AllocsPerRun gates. The
//     hotalloc analyzer enforces it at the syntax level for every function
//     annotated `//vsnoop:hotpath`, so a regression is a lint error before
//     it is a flaky benchmark.
//   - Shard isolation — under the PR-3 conservative PDES, code reachable
//     from event handlers runs concurrently on shard goroutines and must
//     not communicate except through the internal/sim mailbox (deposit)
//     API. The shardsafe analyzer walks the static call graph from handler
//     roots and flags goroutine launches, channel operations, and writes
//     to package-level state. It also confines sync/atomic in the critical
//     packages to the fields of internal/sim's synchronization structs
//     (barrier, shardSlot, mailbox, ShardedEngine) — the PR-5 adaptive
//     protocol's EOT words, mailbox locks, and termination counters.
//   - Domain confinement — the paper's isolation invariant, lifted to the
//     code: state annotated //vsnoop:owned (filter replicas, COW overlays,
//     RegionScout shards, directory homes) belongs to one domain, and the
//     domainown analyzer proves, flow-sensitively over the internal/lint/ir
//     dataflow IR, that every handler-reachable access path to owned state
//     stays within the owning domain or crosses through the internal/sim
//     deposit API (Engine.ScheduleFnAtDom). See annot.go for the annotation
//     grammar and DESIGN.md §14 for the proof argument.
//
// The shardsafe and hotalloc analyzers also run flow-sensitive passes over
// the same IR: shard isolation catches writes to package-level state routed
// through local pointer aliases, and the hot-path rules catch interface
// boxing and heap escapes a syntax walk cannot see.
//
// Findings are suppressed only by an explicit waiver comment with a
// mandatory reason, placed on the offending line or the line above:
//
//	//lint:<key> <reason>
//
// where <key> is the analyzer's waiver key (ordered, wallclock, alloc,
// shardsafe, owned). A waiver without a reason is itself a finding and
// fails the build, and so is a stale waiver — one whose analyzer ran but
// that suppressed nothing — so waivers document live judgment calls; they
// neither hide problems nor outlive them.
package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation, positioned for editors and CI logs.
type Finding struct {
	Analyzer string `json:"analyzer"`
	Pkg      string `json:"pkg"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// ReportFn receives one finding from an analyzer, positioned by pos.
type ReportFn func(pkg *Package, pos token.Pos, msg string)

// Analyzer is one lint rule set.
type Analyzer struct {
	Name      string // analyzer name, used in findings and -enable/-disable
	Doc       string // one-line description
	WaiverKey string // the //lint:<key> that suppresses its findings
	Run       func(mod *Module, opts Options, report ReportFn)
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{mapRangeAnalyzer, wallClockAnalyzer, hotAllocAnalyzer, shardSafeAnalyzer, domainOwnAnalyzer}
}

// CriticalDirs are the sim-critical package directories (relative to the
// module root) in which nondeterminism is forbidden: everything that
// executes inside, or feeds state to, the discrete-event simulation.
var CriticalDirs = []string{
	"internal/sim", "internal/system", "internal/token", "internal/mesh",
	"internal/cache", "internal/core", "internal/mem", "internal/memctrl",
	"internal/stats", "internal/check", "internal/fault", "internal/hv",
	"internal/partition", "internal/regionscout",
}

// DefaultCritical returns the critical-package predicate for a module: the
// import path's module-relative suffix must be one of CriticalDirs.
func DefaultCritical(modPath string) func(pkgPath string) bool {
	set := make(map[string]bool, len(CriticalDirs))
	for _, d := range CriticalDirs {
		set[modPath+"/"+d] = true
	}
	return func(p string) bool { return set[p] }
}

// DeterministicDirs are the deterministic-only package directories: code
// that must stay a pure function of its inputs (no map-order dependence, no
// ambient clock/env reads) but legitimately uses goroutines, channels, and
// atomics for its own concurrency, so the shard-isolation and hot-path
// rules do not apply. The serving tier lives here: its memoization story is
// "same config hash ⇒ same stored bytes", which only holds if the code
// around the simulator is as deterministic as the simulator itself — while
// its worker pool, singleflight, and metrics are exactly the kind of
// concurrency shardsafe exists to forbid in sim code. The runner (worker
// pool around whole simulations) and the three mains (vsnoop-sim,
// vsnoop-sweep, vsnoop-report) are here too: they assemble configs, shard
// plans, and reports whose bytes feed the golden files and the serve tier's
// content-addressed memoization, so map-order or clock dependence in them
// corrupts exactly the artifacts the sim's determinism story certifies.
var DeterministicDirs = []string{
	"internal/serve", "internal/runner",
	"cmd/vsnoop-sim", "cmd/vsnoop-sweep", "cmd/vsnoop-report",
}

// DefaultDeterministic returns the deterministic-only predicate for a
// module, mirroring DefaultCritical over DeterministicDirs.
func DefaultDeterministic(modPath string) func(pkgPath string) bool {
	set := make(map[string]bool, len(DeterministicDirs))
	for _, d := range DeterministicDirs {
		set[modPath+"/"+d] = true
	}
	return func(p string) bool { return set[p] }
}

// Options configures a Run.
type Options struct {
	// Critical reports whether a package is sim-critical (maprange and
	// wallclock apply there; shardsafe roots only there). Nil means
	// DefaultCritical(mod.Path).
	Critical func(pkgPath string) bool
	// Deterministic reports whether a package is deterministic-only:
	// maprange and wallclock apply, but shardsafe and hotalloc do not —
	// the package may use goroutines, channels, and atomics freely. Nil
	// means DefaultDeterministic(mod.Path).
	Deterministic func(pkgPath string) bool
	// Selected filters which packages findings are reported for (the
	// analysis itself is always whole-module, which shardsafe requires).
	// Nil selects every package.
	Selected func(pkgPath string) bool
	// Disabled names analyzers to skip; Enabled, when non-empty, restricts
	// the run to exactly those analyzers.
	Enabled, Disabled map[string]bool
}

func (o *Options) runs(name string) bool {
	if o.Disabled[name] {
		return false
	}
	if len(o.Enabled) > 0 {
		return o.Enabled[name]
	}
	return true
}

// Run executes every enabled analyzer over the module and returns the
// surviving findings: waived findings are dropped, and waiver-grammar
// violations (unknown key, missing reason) are appended as findings of the
// pseudo-analyzer "waiver". The result is sorted by position.
func Run(mod *Module, opts Options) []Finding {
	if opts.Critical == nil {
		opts.Critical = DefaultCritical(mod.Path)
	}
	if opts.Deterministic == nil {
		opts.Deterministic = DefaultDeterministic(mod.Path)
	}
	if opts.Selected == nil {
		opts.Selected = func(string) bool { return true }
	}
	ws := collectWaivers(mod)

	var out []Finding
	ranKey := make(map[string]bool)
	for _, a := range Analyzers() {
		if !opts.runs(a.Name) {
			continue
		}
		ranKey[a.WaiverKey] = true
		a := a
		a.Run(mod, opts, func(pkg *Package, pos token.Pos, msg string) {
			if !opts.Selected(pkg.Path) {
				return
			}
			p := mod.Fset.Position(pos)
			if ws.covers(a.WaiverKey, p) {
				return
			}
			out = append(out, Finding{
				Analyzer: a.Name, Pkg: pkg.Path,
				File: relFile(mod, p.Filename), Line: p.Line, Col: p.Column,
				Message: msg,
			})
		})
	}
	problems := append(ws.problems, ws.stale(func(key string) bool { return ranKey[key] })...)
	for _, pr := range problems {
		if !opts.Selected(pr.pkg) {
			continue
		}
		out = append(out, Finding{
			Analyzer: "waiver", Pkg: pr.pkg,
			File: relFile(mod, pr.pos.Filename), Line: pr.pos.Line, Col: pr.pos.Column,
			Message: pr.msg,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// ExitCode maps a finding list to the driver's process exit code: 0 clean,
// 1 findings. (Load and type errors exit 2, handled by the driver.)
func ExitCode(findings []Finding) int {
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// relFile shortens an absolute filename to be module-relative when possible.
func relFile(mod *Module, name string) string {
	if rel, err := filepath.Rel(mod.Dir, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return name
}
