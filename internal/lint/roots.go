package lint

import (
	"go/ast"
	"go/constant"
	"go/types"

	"vsnoop/internal/lint/ir"
)

// funcIndex is the module-wide function registry shared by the IR-based
// analyzers: every declared function with a body, keyed by its types
// object, plus memoized IR for declarations and literals.
type funcIndex struct {
	mod   *Module
	decls map[*types.Func]declSite
	irFns map[*types.Func]*ir.Func
	irLit map[*ast.FuncLit]*ir.Func
}

type declSite struct {
	pkg *Package
	fd  *ast.FuncDecl
}

func newFuncIndex(mod *Module) *funcIndex {
	ix := &funcIndex{
		mod:   mod,
		decls: make(map[*types.Func]declSite),
		irFns: make(map[*types.Func]*ir.Func),
		irLit: make(map[*ast.FuncLit]*ir.Func),
	}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						ix.decls[obj] = declSite{pkg, fd}
					}
				}
			}
		}
	}
	return ix
}

// irOf builds (memoized) the IR of a declared module function; nil when
// the function has no body in the module.
func (ix *funcIndex) irOf(obj *types.Func) *ir.Func {
	if fn, ok := ix.irFns[obj]; ok {
		return fn
	}
	var fn *ir.Func
	if site, ok := ix.decls[obj]; ok {
		fn = ir.BuildDecl(site.pkg.Info, site.fd)
	}
	ix.irFns[obj] = fn
	return fn
}

// irOfLit builds (memoized) the IR of a function literal.
func (ix *funcIndex) irOfLit(pkg *Package, fl *ast.FuncLit) *ir.Func {
	if fn, ok := ix.irLit[fl]; ok {
		return fn
	}
	fn := ir.BuildLit(pkg.Info, fl)
	ix.irLit[fl] = fn
	return fn
}

// handlerRoot is one analysis root: a named function or literal that
// executes in handler context, with the statically inferred domain it
// executes in (joined over every deposit site that names it).
type handlerRoot struct {
	obj *types.Func  // named root (nil for literals)
	lit *ast.FuncLit // literal root (nil for named)
	pkg *Package
	dom domValue
}

// rootSet is the result of root collection, shared by shardsafe (which
// only needs reachability) and domainown (which also uses the domains).
type rootSet struct {
	named map[*types.Func]*handlerRoot
	lits  map[*ast.FuncLit]*handlerRoot
}

// collectRoots finds every handler root in the module outside internal/sim:
//
//   - function-typed arguments of scheduler calls (Schedule, ScheduleFn,
//     ScheduleFnAtDom, SetHandler, Attach, ...), carrying the deposit
//     site's static domain: the constant dom argument of ScheduleFnAtDom,
//     or — for same-domain schedulers — the engine the call is made on,
//     resolved through `<x>[C].eng` receivers, including one def-use hop
//     through a local (`eng := m.doms[0].eng; eng.ScheduleFn(...)`);
//   - handlers bound to struct fields (m.stepFn = ...) that are later
//     scheduled through the field: the binding's RHS is rooted with the
//     deposit site's domain;
//   - every value of handler shape (func(interface{}) / func(interface{},
//     uint64)), rooted with no domain constraint — registries the walk
//     cannot see may invoke them from anywhere;
//   - //vsnoop:handler annotated functions, with their declared dom=N.
//
// Domain facts from explicit deposit sites and annotations take
// precedence; shape occurrences alone yield the unconstrained domain.
func collectRoots(ix *funcIndex, own *ownership) *rootSet {
	mod := ix.mod
	simPath := mod.Path + "/internal/sim"
	rs := &rootSet{
		named: make(map[*types.Func]*handlerRoot),
		lits:  make(map[*ast.FuncLit]*handlerRoot),
	}

	// weak marks roots that so far have only shape evidence: their dom is
	// provisional `many` and is REPLACED (not joined) by the first strong
	// deposit-site fact.
	weak := make(map[*handlerRoot]bool)

	addNamed := func(pkg *Package, obj *types.Func, dom domValue, strong bool) {
		if obj == nil {
			return
		}
		site, ok := ix.decls[obj]
		if !ok || site.pkg.Path == simPath {
			return
		}
		r := rs.named[obj]
		if r == nil {
			r = &handlerRoot{obj: obj, pkg: site.pkg}
			rs.named[obj] = r
			weak[r] = !strong
		}
		mergeRootDom(r, dom, strong, weak)
	}
	addLit := func(pkg *Package, fl *ast.FuncLit, dom domValue, strong bool) {
		if pkg.Path == simPath {
			return
		}
		r := rs.lits[fl]
		if r == nil {
			r = &handlerRoot{lit: fl, pkg: pkg}
			rs.lits[fl] = r
			weak[r] = !strong
		}
		mergeRootDom(r, dom, strong, weak)
	}
	addExpr := func(pkg *Package, e ast.Expr, dom domValue, strong bool) {
		switch x := unparen(e).(type) {
		case *ast.FuncLit:
			addLit(pkg, x, dom, strong)
		case *ast.Ident:
			if obj, ok := pkg.Info.Uses[x].(*types.Func); ok {
				addNamed(pkg, obj, dom, strong)
			}
		case *ast.SelectorExpr:
			if obj, ok := pkg.Info.Uses[x.Sel].(*types.Func); ok {
				addNamed(pkg, obj, dom, strong)
			}
		}
	}

	// Handler-field bindings: field variable -> RHS handler expressions.
	type binding struct {
		pkg *Package
		e   ast.Expr
	}
	bindings := make(map[*types.Var][]binding)
	for _, pkg := range mod.Pkgs {
		if pkg.Path == simPath {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != len(as.Rhs) {
					return true
				}
				for i, lhs := range as.Lhs {
					sel, ok := unparen(lhs).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if v, ok := pkg.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
						bindings[v] = append(bindings[v], binding{pkg, as.Rhs[i]})
					}
				}
				return true
			})
		}
	}

	// Scheduler call sites and handler-shaped values, per function body so
	// receiver resolution has def-use context.
	scanBody := func(pkg *Package, node ast.Node, body *ast.BlockStmt, fnIR func() *ir.Func) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				sel, ok := unparen(x.Fun).(*ast.SelectorExpr)
				if !ok || !schedulerFuncs[sel.Sel.Name] {
					return true
				}
				dom := depositDomain(pkg, sel, x, fnIR)
				for _, arg := range x.Args {
					t := pkg.Info.TypeOf(arg)
					if t == nil {
						continue
					}
					if _, isFn := t.Underlying().(*types.Signature); !isFn {
						continue
					}
					addExpr(pkg, arg, dom, true)
					// Field-mediated: the arg names a handler field; root
					// everything ever bound to that field at this domain.
					if as, ok := unparen(arg).(*ast.SelectorExpr); ok {
						if v, ok := pkg.Info.Uses[as.Sel].(*types.Var); ok && v.IsField() {
							for _, b := range bindings[v] {
								addExpr(b.pkg, b.e, dom, true)
							}
						}
					}
					// Local-mediated: the arg is a local whose reaching
					// definitions bind literals (fn = func(...){...}; ...;
					// eng.ScheduleFnAtDom(at, 0, fn, ...)). Root each bound
					// literal at this deposit's domain.
					if id, ok := unparen(arg).(*ast.Ident); ok {
						if _, isLocal := pkg.Info.Uses[id].(*types.Var); isLocal {
							if fn := fnIR(); fn != nil {
								for _, def := range fn.BuildDefUse().Defs(id) {
									if ir.EntryDef(def) {
										continue
									}
									if rhs := singleRHSFor(def, id); rhs != nil {
										addExpr(pkg, rhs, dom, true)
									}
								}
							}
						}
					}
				}
			case *ast.FuncLit:
				if isHandlerShape(pkg.Info.TypeOf(x)) {
					addLit(pkg, x, domMany(), false)
				}
			case *ast.Ident:
				if obj, ok := pkg.Info.Uses[x].(*types.Func); ok && isHandlerShape(pkg.Info.TypeOf(x)) {
					addNamed(pkg, obj, domMany(), false)
				}
			case *ast.SelectorExpr:
				if obj, ok := pkg.Info.Uses[x.Sel].(*types.Func); ok && isHandlerShape(pkg.Info.TypeOf(x)) {
					addNamed(pkg, obj, domMany(), false)
				}
			}
			return true
		})
	}

	for _, pkg := range mod.Pkgs {
		if pkg.Path == simPath {
			continue
		}
		pkg := pkg
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				var cached *ir.Func
				fnIR := func() *ir.Func {
					if cached == nil {
						if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
							cached = ix.irOf(obj)
						}
					}
					return cached
				}
				scanBody(pkg, fd, fd.Body, fnIR)
			}
		}
	}

	// Annotated roots are strong: the annotation is the domain authority.
	for obj, dom := range own.handlers {
		if site, ok := ix.decls[obj]; ok {
			addNamed(site.pkg, obj, dom, true)
		}
	}
	return rs
}

func mergeRootDom(r *handlerRoot, dom domValue, strong bool, weak map[*handlerRoot]bool) {
	switch {
	case strong && weak[r]:
		weak[r] = false
		r.dom = dom
	case strong:
		r.dom.join(dom)
	case weak[r]:
		r.dom.join(domMany())
	}
}

// depositDomain infers the static domain a scheduler call deposits into.
func depositDomain(pkg *Package, fun *ast.SelectorExpr, call *ast.CallExpr, fnIR func() *ir.Func) domValue {
	switch fun.Sel.Name {
	case "ScheduleFnAtDom":
		// (at, dom, fn, arg, u): a constant dom pins the domain.
		if len(call.Args) >= 2 {
			if c := constIntOf(pkg.Info, call.Args[1]); c != nil {
				return domKnown(*c)
			}
		}
		return domMany()
	case "Schedule", "ScheduleAt", "ScheduleFn", "ScheduleFnAt":
		// Same-domain schedulers: the domain is the engine's. Resolve the
		// receiver to `<x>[C].eng`, directly or through one local.
		return engineDomain(pkg, fun.X, fnIR)
	default: // SetHandler, Attach: mesh registration, domain unknown
		return domMany()
	}
}

// engineDomain resolves an engine-valued receiver expression to a static
// domain: `m.doms[0].eng` directly, or an ident whose every reaching
// definition is such an expression.
func engineDomain(pkg *Package, recv ast.Expr, fnIR func() *ir.Func) domValue {
	if d := engineSelDomain(pkg, recv); d.state != 0 {
		return d
	}
	id, ok := unparen(recv).(*ast.Ident)
	if !ok {
		return domMany()
	}
	fn := fnIR()
	if fn == nil {
		return domMany()
	}
	du := fn.BuildDefUse()
	defs := du.Defs(id)
	if len(defs) == 0 {
		return domMany()
	}
	var dom domValue
	for _, def := range defs {
		if ir.EntryDef(def) {
			return domMany()
		}
		rhs := singleRHSFor(def, id)
		if rhs == nil {
			return domMany()
		}
		d := engineSelDomain(pkg, rhs)
		if d.state == 0 {
			return domMany()
		}
		dom.join(d)
	}
	if dom.state == 0 {
		return domMany()
	}
	return dom
}

// engineSelDomain matches `<x>[C].eng`-shaped expressions.
func engineSelDomain(pkg *Package, e ast.Expr) domValue {
	sel, ok := unparen(e).(*ast.SelectorExpr)
	if !ok {
		return domValue{}
	}
	idx, ok := unparen(sel.X).(*ast.IndexExpr)
	if !ok {
		return domValue{}
	}
	if c := constIntOf(pkg.Info, idx.Index); c != nil {
		return domKnown(*c)
	}
	return domMany()
}

// singleRHSFor returns the RHS expression a definition instruction assigns
// to the variable behind id, when the instruction has paired sides.
func singleRHSFor(def *ir.Instr, id *ast.Ident) ast.Expr {
	if def.Op != ir.OpAssign && def.Op != ir.OpDecl {
		return nil
	}
	if len(def.Lhs) != len(def.Rhs) {
		return nil
	}
	for i, l := range def.Lhs {
		if li, ok := l.(*ast.Ident); ok && li.Name == id.Name {
			return def.Rhs[i]
		}
	}
	return nil
}

// constIntOf evaluates e to a constant int when the type checker did.
func constIntOf(info *types.Info, e ast.Expr) *int64 {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return nil
	}
	if n, exact := constant.Int64Val(tv.Value); exact {
		return &n
	}
	return nil
}
