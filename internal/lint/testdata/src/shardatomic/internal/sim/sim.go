// Package sim is a lint fixture: this directory's import path ends in
// internal/sim, so the allowlisted synchronization structs may hold atomic
// fields — and nothing else may.
package sim

import "sync/atomic"

// The four allowlisted structs: atomic fields here are the protocol.
type barrier struct {
	arrived atomic.Int32
	gen     atomic.Uint32
}

type shardSlot struct {
	eot atomic.Uint64
}

type mailbox struct {
	lock atomic.Uint32
	n    atomic.Int32
}

type ShardedEngine struct {
	deposited atomic.Uint64
	busy      atomic.Int64
	stop      atomic.Uint32
}

// sideChannel is NOT an allowlisted struct, even inside internal/sim.
type sideChannel struct {
	flag atomic.Bool // want "atomic field in struct sideChannel"
}

var globalEpoch atomic.Uint64 // want "atomic variable globalEpoch"

var legacyWord uint64

func bumpLegacy() {
	atomic.AddUint64(&legacyWord, 1) // want "atomic.AddUint64 call in a sim-critical package"
}

var debugGen atomic.Uint32 //lint:shardsafe debug-only generation stamp, never read by simulation code

var (
	_ = barrier{}
	_ = shardSlot{}
	_ = mailbox{}
	_ = ShardedEngine{}
	_ = sideChannel{}
	_ = bumpLegacy
)
