// Package shardatomic is a lint fixture: sync/atomic outside internal/sim.
// The struct below reuses an allowlisted NAME — the allowlist must still
// reject it, because only the internal/sim package may hold protocol state.
package shardatomic

import "sync/atomic"

type mailbox struct {
	n atomic.Int32 // want "atomic field in struct mailbox"
}

type tracker struct {
	hits *atomic.Uint64 // want "atomic field in struct tracker"
}

func count() uint64 {
	var local atomic.Uint64 // want "atomic variable local"
	local.Add(1)
	return local.Load()
}

var (
	_ = mailbox{}
	_ = tracker{}
	_ = count
)
