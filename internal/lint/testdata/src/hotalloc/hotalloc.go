// Package hotalloc is a lint fixture: allocation-causing constructs in
// functions annotated //vsnoop:hotpath.
package hotalloc

import "fmt"

type sink struct{ vals []int }

// addAll uses only the self-append idiom — never flagged.
//vsnoop:hotpath
func (s *sink) addAll(xs []int) {
	for _, x := range xs {
		s.vals = append(s.vals, x)
	}
}

//vsnoop:hotpath
func report(n int) {
	fmt.Println(n) // want "fmt.Println allocates"
}

//vsnoop:hotpath
func capture(n int) func() int {
	return func() int { return n } // want "closure literal captures variables"
}

//vsnoop:hotpath
func box(n int) interface{} {
	return n // want "conversion of int to interface allocates"
}

//vsnoop:hotpath
func concat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//vsnoop:hotpath
func tally(xs []int) map[int]int {
	m := make(map[int]int) // want "allocates; use a dense slice or bitset"
	for _, x := range xs {
		m[x]++
	}
	return m
}

//vsnoop:hotpath
func merge(a, b []int) []int {
	out := append(a, b...) // want "append outside the self-append idiom"
	return out
}

// deliberate documents its one boxing — a waived finding.
//vsnoop:hotpath
func deliberate(n int) interface{} {
	//lint:alloc boxed once per batch by design; consumers share the value
	return n
}

// cold is unannotated: the same constructs are never flagged.
func cold(n int) interface{} {
	fmt.Println(n)
	return n
}

var _ = (*sink).addAll
var _ = report
var _ = capture
var _ = box
var _ = concat
var _ = tally
var _ = merge
var _ = deliberate
var _ = cold
