// Package irflow is a lint fixture for the dataflow-IR corners: the
// verified key-harvest exemption (and its near misses) in maprange, the
// package-level alias tracking in shardsafe, and the escape pass in
// hotalloc. Everything here turns on flow — loop joins, kills at
// reassignment, def-use through locals — rather than on syntax shape.
package irflow

import "sort"

// ---------------------------------------------------------------------------
// Verified harvest: collect-then-sort over map keys is order-free and
// exempt; every deviation from the proven shape keeps the finding.

func harvestOK(m map[int]int) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

func harvestComparatorOK(m map[string]bool) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func harvestValueUse(m map[int]int) int {
	sum := 0
	for _, v := range m { // want "nondeterministic order"
		sum += v
	}
	return sum
}

func harvestNoSort(m map[int]int) []int {
	var ks []int
	for k := range m { // want "nondeterministic order"
		ks = append(ks, k)
	}
	return ks
}

func harvestUseBeforeSort(m map[int]int) []int {
	var ks []int
	n := 0
	for k := range m { // want "nondeterministic order"
		ks = append(ks, k)
	}
	n = len(ks) // anything between loop and sort voids the proof
	sort.Ints(ks)
	return ks[:n]
}

func harvestExtraStmt(m map[int]int) []int {
	var ks []int
	for k := range m { // want "nondeterministic order"
		ks = append(ks, k)
		ks = append(ks, k+1)
	}
	sort.Ints(ks)
	return ks
}

// ---------------------------------------------------------------------------
// Shard-isolation alias pass: handler-reachable writes to package-level
// storage routed through local pointers. The handlers are rooted by shape.

type counters struct {
	hits []int
	n    int
}

var shared counters

var table []*counters

var handlers = []func(interface{}, uint64){
	aliasWrite, aliasSlice, aliasKilled, aliasJoin, aliasRange, aliasClosure,
}

func aliasWrite(p interface{}, u uint64) {
	c := &shared
	c.n++ // want "writes package-level variable shared through local alias c"
}

func aliasSlice(p interface{}, u uint64) {
	h := shared.hits
	h[0] = 1 // want "writes package-level variable shared through local alias h"
}

func aliasKilled(p interface{}, u uint64) {
	var local counters
	c := &shared
	c = &local
	c.n = 5 // clean: the alias died at the reassignment
	_ = c
}

func aliasJoin(p interface{}, u uint64) {
	var local counters
	c := &local
	if u > 0 {
		c = &shared
	}
	c.n++ // want "writes package-level variable shared through local alias c"
}

func aliasRange(p interface{}, u uint64) {
	for _, c := range table {
		c.n++ // want "writes package-level variable table through local alias c"
	}
}

func aliasClosure(p interface{}, u uint64) {
	c := &shared
	bump := func() {
		c.n-- // want "writes package-level variable shared through local alias c"
	}
	bump()
}

// ---------------------------------------------------------------------------
// Hot-path escape pass: allocation sites whose pointer escapes on a later
// line, reported at the allocation.

type event struct{ t uint64 }

type queue struct{ evs []*event }

func (q *queue) push(e *event) { q.evs = append(q.evs, e) }

type holder struct{ p *uint64 }

func touch(p *uint64) {}

//vsnoop:hotpath
func escapeViaCall(q *queue, t uint64) {
	e := &event{t: t} // want "address of composite literal escapes"
	q.push(e)
}

//vsnoop:hotpath
func escapeReturned(t uint64) *event {
	e := &event{t: t} // want "address of composite literal escapes"
	return e
}

//vsnoop:hotpath
func escapeNew(t uint64) *event {
	e := new(event) // want "new\(event\) escapes"
	e.t = t
	return e
}

//vsnoop:hotpath
func staysLocal(t uint64) uint64 {
	e := event{t: t}
	pe := &e
	return pe.t // clean: the pointer never leaves the frame
}

//vsnoop:hotpath
func addrLocalToCall(e *event) uint64 {
	t := e.t
	touch(&t) // clean: &local handed to a callee commonly stays on the stack
	return t
}

//vsnoop:hotpath
func addrLocalStored(g *holder) {
	x := uint64(1)
	g.p = &x // want "address of local x escapes"
}

//vsnoop:hotpath
func escapeInLoop(q *queue, n int) {
	for i := 0; i < n; i++ {
		e := &event{t: uint64(i)} // want "address of composite literal escapes"
		q.push(e)
	}
}
