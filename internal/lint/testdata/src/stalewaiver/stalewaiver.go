// Package stalewaiver is a lint fixture for stale-waiver detection: a
// well-formed waiver that suppresses at least one finding is a documented
// judgment call; one that suppresses nothing is itself a finding, so
// waivers cannot outlive the problem they were written for.
package stalewaiver

// liveSameLine carries a waiver on the offending line: used, no findings.
func liveSameLine(m map[int]int) int {
	sum := 0
	for _, v := range m { //lint:ordered commutative sum, order cannot be observed
		sum += v
	}
	return sum
}

// liveLineAbove carries the waiver on the line above: also used.
func liveLineAbove(m map[int]int) int {
	n := 0
	//lint:ordered counting elements, order cannot be observed
	for range m {
		n++
	}
	return n
}

// staleOrdered sits on a line with nothing to suppress.
func staleOrdered() int {
	x := 1 //lint:ordered nothing nondeterministic here // want "stale waiver //lint:ordered suppresses no findings"
	return x
}

// staleAlloc is stale for a different analyzer: hotalloc runs, finds
// nothing here (the function is not even a hot path), so the waiver is
// dead weight.
func staleAlloc() []int {
	var s []int //lint:alloc leftover note from a deleted append // want "stale waiver //lint:alloc suppresses no findings"
	return s
}
