// Package parttransfer is a lint fixture: the cross-domain ownership
// transfer patterns introduced by the graph-cut partitioner — prebound
// depart/arrive/ack handlers, package-level delta appliers, domain-local
// overlay state — and the shortcuts such code must not take. Handlers here
// are never passed to a scheduler call; they are rooted purely by their
// shape (func(interface{}, uint64) ~ sim.HandlerFn) at the prebind
// assignments, which is how the real machine wires its transfer pipeline.
package parttransfer

// handlerFn mirrors sim.HandlerFn.
type handlerFn func(p interface{}, u uint64)

// engine mimics the sharded engine's cross-domain deposit API: the only
// legal way for transfer code to touch another domain.
type engine struct{ now uint64 }

func (e *engine) ScheduleFnAtDom(at uint64, dom int, fn handlerFn, p interface{}, u uint64) {}

type domain struct {
	idx  int
	live int
	cow  map[uint64]uint64
}

type vcpu struct {
	dom  *domain
	core int
}

type machine struct {
	eng      *engine
	crossHor []uint64
	departFn handlerFn
	arriveFn handlerFn
	ackFn    handlerFn
}

var relocations int // package-level: transfer handlers must not touch it

// prebind mirrors machine construction: method values of handler shape are
// roots the moment they are assigned, with no scheduler call in sight.
func (m *machine) prebind() {
	m.departFn = m.handleDepart
	m.arriveFn = m.handleArrive
	m.ackFn = m.handleAck
}

// handleDepart is the good citizen: instance state plus a lookahead-delayed
// re-deposit into the destination domain, nothing else. No findings.
func (m *machine) handleDepart(p interface{}, u uint64) {
	v := p.(*vcpu)
	v.dom.live--
	m.eng.ScheduleFnAtDom(m.eng.now+m.crossHor[v.dom.idx], int(u), m.arriveFn, v, u)
}

// handleArrive takes the tempting shortcut of pushing the overlay rebuild
// off the shard goroutine.
func (m *machine) handleArrive(p interface{}, u uint64) {
	v := p.(*vcpu)
	v.core = int(u)
	go rebuildOverlay(v.dom) // want "launches a goroutine"
}

// handleAck counts the finished move in the obvious — and wrong — place.
func (m *machine) handleAck(p interface{}, u uint64) {
	relocations++ // want "writes package-level variable relocations"
}

// rebuildOverlay is reachable from a handler, and the fixture package is
// sim-critical, so the map iteration is flagged by maprange even though the
// rewrite happens to be idempotent.
func rebuildOverlay(d *domain) {
	for gp, pr := range d.cow { // want "iteration over map d.cow"
		d.cow[gp] = pr
	}
}

// wire shows a handler literal of the right shape being rooted at its use
// site: the ack-wait inside is the cross-shard sin the deposit API exists
// to replace.
func (m *machine) wire(done chan struct{}) {
	m.prebind()
	var drain handlerFn = func(p interface{}, u uint64) {
		<-done // want "receives from a channel"
	}
	_ = drain
}

var _ = (*machine).wire
