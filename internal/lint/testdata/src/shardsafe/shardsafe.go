// Package shardsafe is a lint fixture: handler-reachable code that bypasses
// the sim mailbox.
package shardsafe

// net mimics the mesh endpoint registry: SetHandler roots its argument.
type net struct{ h func(interface{}) }

func (n *net) SetHandler(h func(interface{})) { n.h = h }

var total int
var debugSeq int

type counter struct{ n int }

// Handle writes only instance state itself, but calls bump.
func (c *counter) Handle(p interface{}) {
	c.n++
	bump()
}

func bump() {
	total++ // want "writes package-level variable total"
}

func spawn(p interface{}) {
	go bump() // want "launches a goroutine"
}

func stamp(p interface{}) {
	debugSeq++ //lint:shardsafe debug-only counter; torn increments are acceptable and never sim-visible
}

func wire(n *net, ch chan int) {
	c := &counter{}
	n.SetHandler(c.Handle)
	n.SetHandler(spawn)
	n.SetHandler(stamp)
	n.SetHandler(func(p interface{}) {
		ch <- 1 // want "sends on a channel"
	})
}

// idle is not reachable from any handler: never flagged.
func idle(ch chan int) {
	ch <- 2
	go bump()
}

var _ = wire
var _ = idle
