// Package servescope is a lint fixture for the deterministic-only package
// class (the serving tier): goroutines, channels, mutexes, atomics, and
// package-level state are all legitimate here — shardsafe and hotalloc do
// not apply — but map iteration and ambient inputs (wall clock, env,
// global rand) are still forbidden, because memoization and journal replay
// depend on deterministic behavior around the simulator.
package servescope

import (
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// metrics-style counters: atomics on an arbitrary struct, which shardsafe
// would confine to the internal/sim allowlist in a critical package. Not
// flagged under deterministic-only scoping.
type counters struct {
	accepted atomic.Uint64
	shed     atomic.Uint64
}

var stats counters // package-level mutable state: fine here

// pool is a worker pool: goroutine launches, channel sends/receives, and a
// mutex — all shardsafe findings in a critical package, none here.
type pool struct {
	tasks chan func()
	mu    sync.Mutex
	done  bool
	wg    sync.WaitGroup
}

func newPool(workers int) *pool {
	p := &pool{tasks: make(chan func(), 8)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for t := range p.tasks {
				t()
				stats.accepted.Add(1)
			}
		}()
	}
	return p
}

func (p *pool) trySubmit(t func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done {
		return false
	}
	select {
	case p.tasks <- t:
		return true
	default:
		stats.shed.Add(1)
		return false
	}
}

// lookups over a map by key are fine; only iteration is order-dependent.
func outcome(states map[string]string, hash string) string {
	return states[hash]
}

// renderStates iterates a map straight into output — exactly the bug the
// deterministic-only class exists to catch in the serving tier.
func renderStates(states map[string]string) []string {
	var out []string
	for h, s := range states { // want "iteration over map states has nondeterministic order"
		out = append(out, h+"="+s)
	}
	return out
}

// stampJob reads the wall clock instead of the injected serve clock.
func stampJob() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

// dataDir reads ambient configuration instead of Options.
func dataDir() string {
	return os.Getenv("VSNOOP_DATA") // want "os.Getenv reads the environment"
}

var _ = newPool
var _ = (*pool).trySubmit
var _ = outcome
var _ = renderStates
var _ = stampJob
var _ = dataDir
