// Package domainown is a lint fixture: the //vsnoop:owned annotation
// grammar and the confinement proofs over it. A three-domain machine mimics
// the partitioned engine — an ownership table of per-domain state, const
// identity fields, a deposit API — and its handlers exercise both sides of
// the invariant: self-indexed access and deposited payloads are clean,
// while foreign constant indexes, table enumeration, alias chains through
// locals, package-level owned state, and leaks into ordinary calls are
// findings.
//
// The handleForeignWrite seed (marked SEED) is also the proof obligation
// for the analyzer split: it mutates instance state only — no channel, no
// goroutine, no package-level variable — so the shardsafe call-graph walk
// reaches it and finds nothing, while domainown must flag it. The
// TestDomainOwnSeesPastShardSafe test pins exactly that.
package domainown

// handlerFn mirrors sim.HandlerFn.
type handlerFn func(p interface{}, u uint64)

// engine mimics the sharded engine's cross-domain deposit API.
type engine struct{ now uint64 }

func (e *engine) ScheduleFnAtDom(at uint64, dom int, fn handlerFn, p interface{}, u uint64) {}

// filter is domain-owned leaf state, reached through a domain.
//
//vsnoop:owned
type filter struct{ hits int }

// domain is the per-domain slice of the world.
//
//vsnoop:owned
type domain struct {
	idx  int //vsnoop:owned const
	live int
	flt  *filter
}

type machine struct {
	eng  *engine
	doms []*domain //vsnoop:owned table
	fns  []handlerFn
}

// sentinel is package-level owned state: foreign to every handler.
var sentinel filter

// prebind mirrors machine construction: the method values are handler
// shaped, which is what roots them for the shardsafe call-graph walk.
func (m *machine) prebind() {
	m.fns = []handlerFn{
		m.handleSelf, m.handleForeignWrite, m.handleEnumerate,
		m.handleAlias, m.handleTableStore, m.handleLeak,
		m.handleDeposit, touchGlobal,
	}
}

// handleSelf touches only the executing domain's slice of the table:
// constant indexes equal to the declared domain prove SELF. No findings.
//
//vsnoop:handler dom=1
func (m *machine) handleSelf(p interface{}, u uint64) {
	m.doms[1].live++
	m.doms[1].flt.hits++
}

// handleForeignWrite is the seeded cross-domain write: domain 1 code
// reaching into domain 0's state through the ownership table.
//
//vsnoop:handler dom=1
func (m *machine) handleForeignWrite(p interface{}, u uint64) {
	m.doms[0].live++ // SEED // want "writes field live of a foreign domain-owned value"
}

// handleEnumerate ranges over the ownership table; every element it binds
// is foreign (the enumeration covers all domains).
//
//vsnoop:handler dom=1
func (m *machine) handleEnumerate(p interface{}, u uint64) {
	for _, d := range m.doms {
		d.live = 0 // want "writes field live of a foreign domain-owned value"
	}
}

// handleAlias launders the foreign element through two locals; the
// flow-sensitive provenance follows it.
//
//vsnoop:handler dom=1
func (m *machine) handleAlias(p interface{}, u uint64) {
	d := m.doms[2]
	q := d
	q.live++ // want "writes field live of a foreign domain-owned value"
}

// handleTableStore replaces a foreign domain's slot outright.
//
//vsnoop:handler dom=1
func (m *machine) handleTableStore(p interface{}, u uint64) {
	m.doms[0] = nil // want "stores into an ownership table at a foreign index"
}

// handleLeak smuggles owned state into ordinary calls.
//
//vsnoop:handler dom=1
func (m *machine) handleLeak(p interface{}, u uint64) {
	inspect(m.doms[0]) // want "passes a foreign domain-owned value to a call"
	scanAll(m.doms)    // want "passes an ownership table to a call"
}

func inspect(d *domain)    {}
func scanAll(ds []*domain) {}

// handleDeposit is the sanctioned transfer: reading the const identity
// field of a foreign value to compute the destination, then handing the
// value whole to ScheduleFnAtDom. No findings.
//
//vsnoop:handler dom=1
func (m *machine) handleDeposit(p interface{}, u uint64) {
	v := m.doms[0]
	dst := v.idx
	m.eng.ScheduleFnAtDom(m.eng.now+1, dst, m.arrive, v, u)
}

// arrive runs in the destination domain; the deposited payload is owned by
// the receiving domain by the deposit contract. No findings.
func (m *machine) arrive(p interface{}, u uint64) {
	d := p.(*domain)
	d.live++
}

// touchGlobal writes package-level owned state: foreign to any domain, and
// also a package-level write the shardsafe syntax walk flags on its own.
//
//vsnoop:handler dom=1
func touchGlobal(p interface{}, u uint64) {
	sentinel.hits++ // want "writes field hits of a foreign domain-owned value" "writes package-level variable sentinel"
}

// wire deposits a literal into a constant destination domain: the literal
// is rooted AT that domain, so its self-index is clean and its foreign
// index is not.
func (m *machine) wire() {
	m.eng.ScheduleFnAtDom(0, 2, func(p interface{}, u uint64) {
		m.doms[2].live++
		m.doms[1].live = 7 // want "writes field live of a foreign domain-owned value"
	}, nil, 0)
}

// wireLocal binds the literal to a local first; the def-use chain carries
// the deposit domain back to it.
func (m *machine) wireLocal() {
	fn := func(p interface{}, u uint64) {
		m.doms[0].live = 9 // want "writes field live of a foreign domain-owned value"
	}
	m.eng.ScheduleFnAtDom(0, 2, fn, nil, 0)
}

var (
	_ = (*machine).prebind
	_ = (*machine).wire
	_ = (*machine).wireLocal
)
