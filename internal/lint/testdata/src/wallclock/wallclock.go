// Package wallclock is a lint fixture: ambient inputs in a critical package.
package wallclock

import (
	"math/rand"
	"os"
	"runtime"
	"time"
)

func stamp() int64 {
	return time.Now().Unix() // want "time.Now reads the wall clock"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads the wall clock"
}

func mode() string {
	return os.Getenv("VSNOOP_MODE") // want "os.Getenv reads the environment"
}

func roll() int {
	return rand.Intn(6) // want "math/rand.Intn uses the global rand source"
}

func autoShards() int {
	return runtime.GOMAXPROCS(0) // want "runtime.GOMAXPROCS reads host parallelism"
}

func cpus() int {
	return runtime.NumCPU() // want "runtime.NumCPU reads host parallelism"
}

// yield is a runtime call that is NOT an ambient input — never flagged.
func yield() {
	runtime.Gosched()
}

// seeded draws from an explicitly seeded stream — never flagged.
func seeded(r *rand.Rand) int {
	return r.Intn(6)
}

// mkStream constructs a seeded source — the allowed constructors.
func mkStream(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func banner() int64 {
	return time.Now().Unix() //lint:wallclock startup banner only, printed before the engine runs
}

var _ = stamp
var _ = elapsed
var _ = mode
var _ = roll
var _ = autoShards
var _ = cpus
var _ = yield
var _ = seeded
var _ = mkStream
var _ = banner
