// Package maprange is a lint fixture: map iterations in a critical package.
package maprange

// sum iterates a map bare — a true positive.
func sum(m map[int]int) int {
	total := 0
	for _, v := range m { // want "iteration over map m has nondeterministic order"
		total += v
	}
	return total
}

// keys harvests then sorts (in the caller) — a waived finding.
func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m { //lint:ordered key harvest only; callers sort before use
		out = append(out, k)
	}
	return out
}

// overSlice ranges a slice — never flagged.
func overSlice(s []int) int {
	t := 0
	for _, v := range s {
		t += v
	}
	return t
}

var _ = sum
var _ = keys
var _ = overSlice
