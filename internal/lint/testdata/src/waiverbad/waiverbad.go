// Package waiverbad is a lint fixture: malformed waivers must not suppress
// anything and are findings themselves.
package waiverbad

func keys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	//lint:ordered
	for k := range m {
		out = append(out, k)
	}
	return out
}

func size(m map[int]int) int {
	n := 0
	for range m { //lint:sorted the key is misspelled, so this suppresses nothing
		n++
	}
	return n
}

var _ = keys
var _ = size
