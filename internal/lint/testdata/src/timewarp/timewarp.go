// Package timewarp is a lint fixture: the optimistic engine's speculative
// state under the domainown confinement proof. Checkpoint buffers and
// anti-message outboxes are domain-owned exactly like live state — a
// rollback restores a snapshot into the owning domain, so a cross-domain
// checkpoint write poisons a future Restore silently, and only on the
// rollback path where no conservative test ever looks. The seeded handler
// (marked SEED) writes another shard's checkpoint slot; domainown must
// flag it even though the write is pure instance-state mutation that the
// shardsafe walk cannot see.
package timewarp

// handlerFn mirrors sim.HandlerFn.
type handlerFn func(p interface{}, u uint64)

// engine mimics the sharded engine's cross-domain deposit API.
type engine struct{ now uint64 }

func (e *engine) ScheduleFnAtDom(at uint64, dom int, fn handlerFn, p interface{}, u uint64) {}

// snap is one flat-slice checkpoint of a domain's mutable state.
//
//vsnoop:owned
type snap struct {
	fired uint64
	live  []int
}

// antiMsg is one held cross-shard send awaiting GVT commit (release) or
// rollback (annihilation).
type antiMsg struct {
	at  uint64
	dst int
}

// domain carries live state plus its speculative side: the checkpoint
// ring and the anti-message outbox, owned by the same domain as the live
// state they shadow.
//
//vsnoop:owned
type domain struct {
	idx    int //vsnoop:owned const
	live   int
	snaps  [4]snap
	outbox []antiMsg
}

type machine struct {
	eng  *engine
	doms []*domain //vsnoop:owned table
	fns  []handlerFn
}

// prebind mirrors machine construction: handler-shaped method values root
// the shardsafe walk and the domainown provenance pass.
func (m *machine) prebind() {
	m.fns = []handlerFn{
		m.handleSave, m.handleRollback, m.handleCommitDeposit,
		m.handleForeignSave, m.handleForeignAnti,
	}
}

// handleSave checkpoints the executing domain into its own ring: the
// flat-slice copy stays inside the owning domain. No findings.
//
//vsnoop:handler dom=1
func (m *machine) handleSave(p interface{}, u uint64) {
	d := m.doms[1]
	d.snaps[0].fired = uint64(d.live)
	d.snaps[0].live = append(d.snaps[0].live[:0], d.live)
}

// handleRollback restores the domain's own snapshot and annihilates its
// own outbox. No findings.
//
//vsnoop:handler dom=1
func (m *machine) handleRollback(p interface{}, u uint64) {
	d := m.doms[1]
	d.live = int(d.snaps[0].fired)
	d.outbox = d.outbox[:0]
}

// handleCommitDeposit releases a held send the sanctioned way: the
// destination comes from the message, and the payload crosses domains only
// through the deposit API. No findings.
//
//vsnoop:handler dom=1
func (m *machine) handleCommitDeposit(p interface{}, u uint64) {
	d := m.doms[1]
	for _, am := range d.outbox {
		m.eng.ScheduleFnAtDom(am.at, am.dst, m.arrive, nil, u)
	}
	d.outbox = d.outbox[:0]
}

// arrive runs in the destination domain on the deposited payload. No
// findings.
func (m *machine) arrive(p interface{}, u uint64) {}

// handleForeignSave is the seeded cross-domain checkpoint write: domain 1
// code capturing its view of the world into domain 0's checkpoint ring.
// Domain 0's next Restore would replay domain 1's speculation as if it
// were committed state.
//
//vsnoop:handler dom=1
func (m *machine) handleForeignSave(p interface{}, u uint64) {
	m.doms[0].snaps[0].fired = u // SEED // want "foreign domain-owned value" "foreign domain-owned value"
}

// handleForeignAnti queues an anti-message directly into another shard's
// outbox instead of depositing it — racing the owner's commit walk.
//
//vsnoop:handler dom=1
func (m *machine) handleForeignAnti(p interface{}, u uint64) {
	d := m.doms[2]
	d.outbox = append(d.outbox, antiMsg{at: u, dst: 1}) // want "foreign domain-owned value" "foreign domain-owned value"
}

var _ = (*machine).prebind
