package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"vsnoop/internal/lint/ir"
)

// mapRangeAnalyzer flags `for ... range` over map-typed expressions in
// sim-critical and deterministic-only packages. Go randomizes map iteration
// order per run, so a map range in a stats merge, a destination-set scan,
// or any other sim-visible path silently breaks bit-identical replay — the
// property the golden rows and the K∈{1,2,4} determinism suites exist to
// protect. In the serving tier the same rule protects journal/replay
// equivalence: recovery must observe the exact record order a live run
// produced.
//
// One shape is exempted because the IR proves it order-free — the verified
// key harvest:
//
//	for k := range m {
//		s = append(s, k)
//	}
//	sort.Slice(s, ...)
//
// The loop body is exactly one append of the key, and the first statement
// of the loop's join block sorts the harvested slice. Map keys are unique,
// so the sorted slice is a pure function of the key SET (the comparator is
// trusted to be a total order over the keys — the same judgment the old
// waivers asserted in prose, now checked structurally). Anything else —
// value use, extra statements, a use of the slice before the sort — gets
// the finding; loops whose effect cannot depend on order for deeper
// reasons (a commutative sum) still carry a //lint:ordered waiver.
var mapRangeAnalyzer = &Analyzer{
	Name:      "maprange",
	Doc:       "forbids map iteration in sim-critical and deterministic-only packages (nondeterministic order); a collect-then-sort key harvest is verified and exempt",
	WaiverKey: "ordered",
	Run:       runMapRange,
}

func runMapRange(mod *Module, opts Options, report ReportFn) {
	for _, pkg := range mod.Pkgs {
		if !opts.Critical(pkg.Path) && !opts.Deterministic(pkg.Path) {
			continue
		}
		pkg := pkg
		// Each function body is scanned against its own IR (a nested
		// literal is its own dataflow world, so it gets its own pass).
		var scanFn func(node ast.Node, body *ast.BlockStmt)
		scanFn = func(node ast.Node, body *ast.BlockStmt) {
			var fnir *ir.Func
			built := false
			getIR := func() *ir.Func {
				if !built {
					built = true
					switch d := node.(type) {
					case *ast.FuncDecl:
						fnir = ir.BuildDecl(pkg.Info, d)
					case *ast.FuncLit:
						fnir = ir.BuildLit(pkg.Info, d)
					}
				}
				return fnir
			}
			ast.Inspect(body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.FuncLit:
					scanFn(x, x.Body)
					return false
				case *ast.RangeStmt:
					t := pkg.Info.TypeOf(x.X)
					if t == nil {
						return true
					}
					if _, isMap := t.Underlying().(*types.Map); !isMap {
						return true
					}
					if verifiedHarvest(pkg.Info, getIR(), x) {
						return true
					}
					report(pkg, x.For,
						"iteration over map "+types.ExprString(x.X)+
							" has nondeterministic order; sort the keys, use a dense slice, or waive with //lint:ordered <reason>")
				}
				return true
			})
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					scanFn(fd, fd.Body)
				}
			}
		}
	}
}

// verifiedHarvest reports whether rs is the exempt collect-then-sort key
// harvest (see the analyzer doc), proven over the enclosing function's IR.
func verifiedHarvest(info *types.Info, fn *ir.Func, rs *ast.RangeStmt) bool {
	if fn == nil || rs.Value != nil || rs.Key == nil {
		return false
	}
	keyVar := identVar(info, rs.Key)
	if keyVar == nil {
		return false
	}
	// Body: exactly `s = append(s, k)` for a local slice s.
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	sliceVar := identVar(info, as.Lhs[0])
	if sliceVar == nil || isPackageLevel(sliceVar) {
		return false
	}
	call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || call.Ellipsis != token.NoPos || len(call.Args) != 2 {
		return false
	}
	if !isBuiltinCall(info, call, "append") {
		return false
	}
	if identVar(info, call.Args[0]) != sliceVar || identVar(info, call.Args[1]) != keyVar {
		return false
	}
	// The loop's join block must begin with the sort of s: nothing can
	// observe the harvested order first.
	head := findRangeHead(fn, rs)
	if head == nil || len(head.Succs) != 2 {
		return false
	}
	join := head.Succs[1]
	if len(join.Instrs) == 0 {
		return false
	}
	first := join.Instrs[0]
	if first.Op != ir.OpEval {
		return false
	}
	sortCall, ok := unparen(first.X).(*ast.CallExpr)
	if !ok || len(sortCall.Args) == 0 {
		return false
	}
	if !isSortCall(info, sortCall) {
		return false
	}
	return identVar(info, sortCall.Args[0]) == sliceVar
}

// findRangeHead locates the block holding rs's OpRange instruction.
func findRangeHead(fn *ir.Func, rs *ast.RangeStmt) *ir.Block {
	for _, b := range fn.Blocks {
		for _, ins := range b.Instrs {
			if ins.Op == ir.OpRange && ins.Stmt == rs {
				return b
			}
		}
	}
	return nil
}

// sortFuncs are the stdlib entry points accepted as the harvesting sort.
var sortFuncs = map[string]map[string]bool{
	"sort":   {"Slice": true, "SliceStable": true, "Strings": true, "Ints": true, "Float64s": true, "Sort": true, "Stable": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// isSortCall matches a qualified call to one of sortFuncs.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	return sortFuncs[pn.Imported().Path()][sel.Sel.Name]
}

// identVar resolves a plain identifier expression to its variable object.
func identVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}
