package lint

import (
	"go/ast"
	"go/types"
)

// mapRangeAnalyzer flags `for ... range` over map-typed expressions in
// sim-critical and deterministic-only packages. Go randomizes map iteration
// order per run, so a map range in a stats merge, a destination-set scan,
// or any other sim-visible path silently breaks bit-identical replay — the
// property the golden rows and the K∈{1,2,4} determinism suites exist to
// protect. In the serving tier the same rule protects journal/replay
// equivalence: recovery must observe the exact record order a live run
// produced. Loops whose effect genuinely cannot depend on order (a
// commutative sum, a collect-then-sort key harvest) carry a //lint:ordered
// waiver saying why.
var mapRangeAnalyzer = &Analyzer{
	Name:      "maprange",
	Doc:       "forbids map iteration in sim-critical and deterministic-only packages (nondeterministic order)",
	WaiverKey: "ordered",
	Run:       runMapRange,
}

func runMapRange(mod *Module, opts Options, report ReportFn) {
	for _, pkg := range mod.Pkgs {
		if !opts.Critical(pkg.Path) && !opts.Deterministic(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pkg.Info.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap {
					report(pkg, rs.For,
						"iteration over map "+types.ExprString(rs.X)+
							" has nondeterministic order; sort the keys, use a dense slice, or waive with //lint:ordered <reason>")
				}
				return true
			})
		}
	}
}
