package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotAllocAnalyzer enforces allocation discipline in functions annotated
// `//vsnoop:hotpath` (the PR-2 zero-alloc event kernel: engine schedule/
// pop/step, filter lookup/update, mesh route/deliver, token handlers). It
// flags the constructs that put values on the heap:
//
//   - closure literals that capture variables (each evaluation allocates)
//   - conversions of non-pointer-shaped concrete values to interfaces
//     (boxing; pointers, maps, chans, and funcs box for free)
//   - append outside the amortized self-append idiom x = append(x, ...),
//     and any append into a slice of interfaces (boxes every element)
//   - fmt.* calls (interface boxing plus formatting state)
//   - string concatenation (builds a fresh string)
//   - map literals and make(map...)
//   - allocation sites (&T{...}, new(T), &local) whose pointer later
//     escapes — returned, sent, stored outside a local, or passed to a
//     call — proven flow-sensitively over the internal/lint/ir CFG
//     (see hotescape.go)
//
// The analyzer checks only the annotated function's own body; callees are
// annotated (or not) on their own merits. Deliberate allocations — e.g. the
// one-boxing-per-multicast design in the token controller — carry a
// //lint:alloc waiver with the reason.
var hotAllocAnalyzer = &Analyzer{
	Name:      "hotalloc",
	Doc:       "flags allocation-causing constructs in //vsnoop:hotpath functions",
	WaiverKey: "alloc",
	Run:       runHotAlloc,
}

// hotPathMarker is the annotation, written as the last line of the doc
// comment: //vsnoop:hotpath
const hotPathMarker = "//vsnoop:hotpath"

func runHotAlloc(mod *Module, opts Options, report ReportFn) {
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !isHotPath(fd) {
					continue
				}
				checkHotBody(pkg, fd, report)
			}
		}
	}
}

// isHotPath reports whether the function's doc comment carries the marker.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotPathMarker {
			return true
		}
	}
	return false
}

func checkHotBody(pkg *Package, fd *ast.FuncDecl, report ReportFn) {
	info := pkg.Info
	name := fd.Name.Name

	// First pass: appends in the amortized self-append idiom
	// `x = append(x, ...)` are allowed — the backing array is reused across
	// calls and growth is amortized (the event heap, register files).
	allowedAppend := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if ok && isBuiltinCall(info, call, "append") && len(call.Args) > 0 &&
			types.ExprString(as.Lhs[0]) == types.ExprString(call.Args[0]) {
			allowedAppend[call] = true
		}
		return true
	})

	rep := func(pos token.Pos, msg string) {
		report(pkg, pos, "hot path "+name+": "+msg)
	}

	var results *types.Tuple
	if sig, ok := info.TypeOf(fd.Name).(*types.Signature); ok {
		results = sig.Results()
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if capturesVariables(info, x) {
				rep(x.Pos(), "closure literal captures variables — each evaluation allocates; prebind a HandlerFn and pass state via (arg, u)")
			}
			// The literal runs later, outside this hot invocation; its body
			// is not this function's hot path.
			return false
		case *ast.CompositeLit:
			if t := info.TypeOf(x); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					rep(x.Pos(), "map literal allocates; use a dense slice or bitset")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringExpr(info, x.X) && info.Types[x].Value == nil {
				rep(x.Pos(), "string concatenation allocates; move formatting off the hot path")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringExpr(info, x.Lhs[0]) {
				rep(x.Pos(), "string concatenation allocates; move formatting off the hot path")
			}
			if x.Tok == token.ASSIGN {
				for i := range x.Lhs {
					if i < len(x.Rhs) && len(x.Lhs) == len(x.Rhs) {
						checkBoxing(info, rep, info.TypeOf(x.Lhs[i]), x.Rhs[i])
					}
				}
			}
		case *ast.ValueSpec:
			if x.Type != nil {
				dt := info.TypeOf(x.Type)
				for _, v := range x.Values {
					checkBoxing(info, rep, dt, v)
				}
			}
		case *ast.ReturnStmt:
			if results != nil && len(x.Results) == results.Len() {
				for i, r := range x.Results {
					checkBoxing(info, rep, results.At(i).Type(), r)
				}
			}
		case *ast.CallExpr:
			checkHotCall(info, rep, x, allowedAppend)
		}
		return true
	})

	// Flow-sensitive half: allocation sites whose pointer escapes on a
	// later line (see hotescape.go).
	checkHotEscapes(pkg, fd, rep)
}

func checkHotCall(info *types.Info, rep func(token.Pos, string), call *ast.CallExpr, allowedAppend map[*ast.CallExpr]bool) {
	tv, ok := info.Types[unparen(call.Fun)]
	if !ok {
		return
	}
	switch {
	case tv.IsType():
		// Explicit conversion T(x): boxing when T is an interface.
		if len(call.Args) == 1 {
			checkBoxing(info, rep, tv.Type, call.Args[0])
		}
		return
	case tv.IsBuiltin():
		switch builtinName(info, call) {
		case "append":
			if !allowedAppend[call] {
				rep(call.Pos(), "append outside the self-append idiom x = append(x, ...) — preallocate, or waive with //lint:alloc <reason>")
			}
			// Appending into a slice of interfaces boxes every element,
			// self-append idiom or not.
			if !call.Ellipsis.IsValid() && len(call.Args) > 1 {
				if t := info.TypeOf(call.Args[0]); t != nil {
					if sl, ok := t.Underlying().(*types.Slice); ok {
						for _, a := range call.Args[1:] {
							checkBoxing(info, rep, sl.Elem(), a)
						}
					}
				}
			}
		case "make":
			if len(call.Args) > 0 {
				if t := info.TypeOf(call.Args[0]); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						rep(call.Pos(), "make(map) allocates; use a dense slice or bitset")
					}
				}
			}
		}
		return
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				rep(call.Pos(), "fmt."+sel.Sel.Name+" allocates (boxing + formatting); move it to a cold helper")
				return
			}
		}
	}
	// Implicit boxing of call arguments into interface parameters.
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				if i == np-1 {
					pt = sig.Params().At(np - 1).Type()
				}
			} else if sl, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		checkBoxing(info, rep, pt, arg)
	}
}

// checkBoxing reports when assigning expr to a destination of type dst
// boxes a heap-allocating value into an interface.
func checkBoxing(info *types.Info, rep func(token.Pos, string), dst types.Type, expr ast.Expr) {
	if dst == nil {
		return
	}
	if _, isIface := dst.Underlying().(*types.Interface); !isIface {
		return
	}
	at := info.TypeOf(expr)
	if at == nil || !boxingAllocates(at) {
		return
	}
	rep(expr.Pos(), "conversion of "+at.String()+" to interface allocates (boxing); pass a pointer or pre-boxed value")
}

// boxingAllocates reports whether converting a value of type t to an
// interface heap-allocates. Pointer-shaped kinds (pointers, maps, chans,
// funcs, unsafe pointers) fit in the interface data word; everything else
// (structs, arrays, slices, strings, numerics) escapes.
func boxingAllocates(t types.Type) bool {
	if b, ok := t.(*types.Basic); ok && (b.Kind() == types.UntypedNil || b.Kind() == types.Invalid) {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer && u.Kind() != types.UntypedNil
	}
	return true
}

// capturesVariables reports whether the func literal references variables
// declared outside itself (excluding package-level state, which is not
// captured — it is addressed directly).
func capturesVariables(info *types.Info, fl *ast.FuncLit) bool {
	captured := false
	ast.Inspect(fl, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == nil || isPackageLevel(v) {
			return true
		}
		if v.Pos() < fl.Pos() || v.Pos() > fl.End() {
			captured = true
		}
		return true
	})
	return captured
}

func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	return builtinName(info, call) == name
}

func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
