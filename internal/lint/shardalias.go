package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"vsnoop/internal/lint/ir"
)

// The alias pass is the flow-sensitive half of shardsafe: the syntax walk
// flags writes whose target chain bottoms out at a package-level variable,
// but a handler can launder the same write through a local —
//
//	p := &sharedTable
//	p.rows[i] = v // mutates package state; the syntax walk sees only p
//
// The pass runs over the internal/lint/ir CFG of every handler-reachable
// body, tracking for each local the set of package-level variables whose
// storage it may reference. Aliases are born from address-taking (&g,
// &g.field, &g[i]), from reading a pointer-shaped package-level value
// (a package-level pointer, slice, or map is shared storage whichever
// local it is copied into), and from ranging over such a value with
// pointer-shaped elements. They propagate through plain copies and
// selector/index/deref chains, join by union at control-flow merges, and
// die on reassignment. A write whose base local carries a non-empty alias
// set is the same finding as the direct write, with the laundering local
// named.
//
// Nested function literals are analyzed at their creation point with the
// alias fact holding there: a closure captures its environment by
// reference, so aliases live on inside it. Aliases returned from calls or
// smuggled through struct fields are not tracked — a documented soundness
// limit shared with the call-graph walk's treatment of dynamic dispatch.

// aliasFact maps each local variable to the package-level variables whose
// storage it may reference. Absent means "no known alias".
type aliasFact map[*types.Var]map[*types.Var]bool

func copyAliasFact(f aliasFact) aliasFact {
	g := make(aliasFact, len(f))
	for v, set := range f {
		s := make(map[*types.Var]bool, len(set))
		for p := range set {
			s[p] = true
		}
		g[v] = s
	}
	return g
}

func aliasAnalysis(info *types.Info, entry aliasFact) ir.ForwardAnalysis[aliasFact] {
	return ir.ForwardAnalysis[aliasFact]{
		Entry:  func(fn *ir.Func) aliasFact { return copyAliasFact(entry) },
		Bottom: func() aliasFact { return make(aliasFact) },
		Copy:   copyAliasFact,
		Join: func(dst, src aliasFact) bool {
			changed := false
			for v, set := range src {
				d := dst[v]
				if d == nil {
					d = make(map[*types.Var]bool, len(set))
					dst[v] = d
				}
				for p := range set {
					if !d[p] {
						d[p] = true
						changed = true
					}
				}
			}
			return changed
		},
		Transfer: func(f aliasFact, ins *ir.Instr) { aliasTransfer(info, f, ins) },
	}
}

func aliasTransfer(info *types.Info, f aliasFact, ins *ir.Instr) {
	for _, v := range ins.Defs {
		delete(f, v) // kill; the gen below re-adds surviving aliases
	}
	switch ins.Op {
	case ir.OpAssign, ir.OpDecl:
		if len(ins.Lhs) != len(ins.Rhs) {
			return // tuple assignment from a call: killed above, nothing gen'd
		}
		for i, lhs := range ins.Lhs {
			v := localVar(info, unparen(lhs))
			if v == nil {
				continue
			}
			if s := exprAliases(info, f, ins.Rhs[i]); len(s) > 0 {
				f[v] = s
			}
		}
	case ir.OpRange:
		// for _, e := range g — with pointer-shaped elements, e references
		// storage reachable from whatever the range operand aliases.
		if ins.Value == nil {
			return
		}
		v := localVar(info, unparen(ins.Value))
		if v == nil || !ptrShaped(info.TypeOf(ins.Value)) {
			return
		}
		if s := baseAliases(info, f, ins.X); len(s) > 0 {
			f[v] = s
		}
	}
}

// exprAliases computes the package-level variables the value of e may
// reference: &chain (whatever the chain's base aliases), or a
// pointer-shaped read whose base chain reaches a package-level variable or
// an already-aliasing local.
func exprAliases(info *types.Info, f aliasFact, e ast.Expr) map[*types.Var]bool {
	switch x := unparen(e).(type) {
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return baseAliases(info, f, x.X)
		}
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		if ptrShaped(info.TypeOf(e)) {
			return baseAliases(info, f, e)
		}
	}
	return nil
}

// baseAliases unwraps selector/index/deref chains to the base identifier
// and returns the alias set: the variable itself when package-level, its
// tracked set when a local.
func baseAliases(info *types.Info, f aliasFact, e ast.Expr) map[*types.Var]bool {
	for {
		switch x := unparen(e).(type) {
		case *ast.SelectorExpr:
			// A qualified reference pkg.Var is a base, not a field access.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					e = x.Sel
					continue
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok {
				if isPackageLevel(v) {
					return map[*types.Var]bool{v: true}
				}
				if set := f[v]; len(set) > 0 {
					s := make(map[*types.Var]bool, len(set))
					for p := range set {
						s[p] = true
					}
					return s
				}
			}
			return nil
		default:
			return nil
		}
	}
}

// ptrShaped reports whether values of t share storage when copied:
// pointers, slices, and maps. (Channels are caught by the channel rules;
// funcs carry no writable state.)
func ptrShaped(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

// scanAliases runs the alias pass over one handler-reachable body and
// recurses into nested (non-rooted) function literals with the alias fact
// holding at their creation point.
func scanAliases(pkg *Package, fn *ir.Func, entry aliasFact, flag func(token.Pos, string), rooted map[*ast.FuncLit]bool) {
	if fn == nil {
		return
	}
	info := pkg.Info
	a := aliasAnalysis(info, entry)
	in := ir.Forward(fn, a)
	ir.Replay(fn, a, in, func(fact aliasFact, ins *ir.Instr) {
		ins.Exprs(func(e ast.Expr) {
			ast.Inspect(e, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					if !rooted[fl] {
						scanAliases(pkg, ir.BuildLit(info, fl), copyAliasFact(fact), flag, rooted)
					}
					return false
				}
				return true
			})
		})
		switch ins.Op {
		case ir.OpAssign, ir.OpIncDec:
			for _, lhs := range ins.Lhs {
				checkAliasWrite(info, fact, lhs, flag)
			}
		}
	})
}

// checkAliasWrite flags a write whose target chain bottoms out at a local
// that aliases package-level storage. Direct writes (base is itself
// package-level) belong to the syntax walk and are skipped here.
func checkAliasWrite(info *types.Info, fact aliasFact, lhs ast.Expr, flag func(token.Pos, string)) {
	if packageLevelTarget(info, lhs) != nil {
		return
	}
	e := unparen(lhs)
	wrapped := false
	for done := false; !done; {
		switch x := e.(type) {
		case *ast.StarExpr:
			e, wrapped = unparen(x.X), true
		case *ast.IndexExpr:
			e, wrapped = unparen(x.X), true
		case *ast.SelectorExpr:
			e, wrapped = unparen(x.X), true
		default:
			done = true
		}
	}
	if !wrapped {
		return // plain rebinding of the local, not a write through it
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return
	}
	v := localVar(info, id)
	if v == nil {
		return
	}
	set := fact[v]
	if len(set) == 0 {
		return
	}
	names := make([]string, 0, len(set))
	for p := range set {
		names = append(names, p.Name())
	}
	sort.Strings(names)
	flag(lhs.Pos(), "writes package-level variable "+strings.Join(names, ", ")+
		" through local alias "+id.Name)
}
