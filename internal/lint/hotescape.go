package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"vsnoop/internal/lint/ir"
)

// The escape pass is the flow-sensitive half of hotalloc. The syntax walk
// flags constructs that always allocate (map literals, fmt, string
// concatenation, boxing into interface destinations); what it cannot see
// is a pointer born on this line escaping on a later one —
//
//	e := &event{...} // stack-allocatable on its own
//	q.push(e)        // ...until it escapes into the queue: heap allocation
//
// The pass runs over the internal/lint/ir CFG of each //vsnoop:hotpath
// body, tracking for each local the set of allocation sites (&T{...},
// new(T), &local) it may hold, and reports AT THE ALLOCATION SITE when one
// reaches an escape sink: a return, a channel send, a store anywhere but a
// plain local, or a call argument. Go's own escape analysis makes exactly
// this judgment at compile time; the lint version makes the regression
// visible in review instead of as a flaky AllocsPerRun gate.
//
// &local is sunk only by returns, sends, and stores — a pointer argument
// to a call commonly stays on the stack (the callee does not leak it), and
// flagging every &x passed to a helper would bury the real findings.
// Composite-literal and new() addresses are flagged on call sinks too:
// a hot path has no business constructing a fresh object per event,
// escaping or not barely matters once it crosses a call boundary.

// escFact maps each local to the allocation-site expressions whose result
// it may hold.
type escFact map[*types.Var]map[ast.Expr]bool

// escScan is one hot-path body's escape analysis.
type escScan struct {
	info     *types.Info
	rep      func(token.Pos, string)
	desc     map[ast.Expr]string // alloc site -> description for the finding
	reported map[ast.Expr]bool   // one finding per alloc site
}

func checkHotEscapes(pkg *Package, fd *ast.FuncDecl, rep func(token.Pos, string)) {
	fn := ir.BuildDecl(pkg.Info, fd)
	if fn == nil {
		return
	}
	s := &escScan{
		info:     pkg.Info,
		rep:      rep,
		desc:     make(map[ast.Expr]string),
		reported: make(map[ast.Expr]bool),
	}
	a := ir.ForwardAnalysis[escFact]{
		Entry:  func(*ir.Func) escFact { return make(escFact) },
		Bottom: func() escFact { return make(escFact) },
		Copy:   copyEscFact,
		Join:   joinEscFact,
		Transfer: func(f escFact, ins *ir.Instr) { s.transfer(f, ins) },
	}
	in := ir.Forward(fn, a)
	ir.Replay(fn, a, in, func(fact escFact, ins *ir.Instr) { s.check(fact, ins) })
}

func copyEscFact(f escFact) escFact {
	g := make(escFact, len(f))
	for v, set := range f {
		s := make(map[ast.Expr]bool, len(set))
		for e := range set {
			s[e] = true
		}
		g[v] = s
	}
	return g
}

func joinEscFact(dst, src escFact) bool {
	changed := false
	for v, set := range src {
		d := dst[v]
		if d == nil {
			d = make(map[ast.Expr]bool, len(set))
			dst[v] = d
		}
		for e := range set {
			if !d[e] {
				d[e] = true
				changed = true
			}
		}
	}
	return changed
}

func (s *escScan) transfer(f escFact, ins *ir.Instr) {
	for _, v := range ins.Defs {
		delete(f, v)
	}
	switch ins.Op {
	case ir.OpAssign, ir.OpDecl:
		if len(ins.Lhs) != len(ins.Rhs) {
			return
		}
		for i, lhs := range ins.Lhs {
			v := localVar(s.info, unparen(lhs))
			if v == nil {
				continue
			}
			if set := s.holdings(f, ins.Rhs[i]); len(set) > 0 {
				f[v] = set
			}
		}
	}
}

// holdings returns the allocation sites the value of e may be: the site
// itself when e allocates directly, or the tracked set when e is a local.
func (s *escScan) holdings(f escFact, e ast.Expr) map[ast.Expr]bool {
	if site, what := s.allocSite(e); site != nil {
		s.desc[site] = what
		return map[ast.Expr]bool{site: true}
	}
	if v := localVar(s.info, unparen(e)); v != nil {
		if set := f[v]; len(set) > 0 {
			out := make(map[ast.Expr]bool, len(set))
			for a := range set {
				out[a] = true
			}
			return out
		}
	}
	return nil
}

// allocSite recognizes the heap-allocation producers the pass tracks.
func (s *escScan) allocSite(e ast.Expr) (ast.Expr, string) {
	switch x := unparen(e).(type) {
	case *ast.UnaryExpr:
		if x.Op != token.AND {
			return nil, ""
		}
		switch t := unparen(x.X).(type) {
		case *ast.CompositeLit:
			return x, "address of composite literal"
		case *ast.Ident:
			if v := localVar(s.info, t); v != nil {
				return x, "address of local " + t.Name
			}
		}
	case *ast.CallExpr:
		if isBuiltinCall(s.info, x, "new") && len(x.Args) == 1 {
			return x, "new(" + types.ExprString(x.Args[0]) + ")"
		}
	}
	return nil, ""
}

// localOnly reports whether the alloc site is &local, whose call-argument
// uses are exempt (see the pass doc).
func (s *escScan) localOnly(site ast.Expr) bool {
	u, ok := site.(*ast.UnaryExpr)
	if !ok {
		return false
	}
	_, isLit := unparen(u.X).(*ast.CompositeLit)
	return !isLit
}

func (s *escScan) sink(f escFact, e ast.Expr, how string, callSink bool) {
	for site := range s.holdings(f, e) {
		if s.reported[site] || (callSink && s.localOnly(site)) {
			continue
		}
		s.reported[site] = true
		s.rep(site.Pos(), s.desc[site]+" escapes to the heap ("+how+
			"); reuse a pooled or preallocated object, or waive with //lint:alloc <reason>")
	}
}

func (s *escScan) check(f escFact, ins *ir.Instr) {
	switch ins.Op {
	case ir.OpReturn:
		for _, e := range ins.Rhs {
			s.sink(f, e, "returned", false)
		}
	case ir.OpSend:
		for _, e := range ins.Rhs {
			s.sink(f, e, "sent on a channel", false)
		}
	case ir.OpAssign:
		for i, lhs := range ins.Lhs {
			if localVar(s.info, unparen(lhs)) != nil {
				continue // plain local rebinding: tracked, not an escape
			}
			if i < len(ins.Rhs) && len(ins.Lhs) == len(ins.Rhs) {
				s.sink(f, ins.Rhs[i], "stored in "+types.ExprString(lhs), false)
			}
		}
	}
	// Call-argument sinks, wherever calls appear in the instruction.
	ins.Exprs(func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false // a literal's body is not this hot path
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			tv, known := s.info.Types[unparen(call.Fun)]
			if known && (tv.IsType() || tv.IsBuiltin()) {
				// Conversions never escape their operand by themselves;
				// the only escaping builtin is append, whose result is
				// tracked as a slice (the arg lives in its backing array).
				if !isBuiltinCall(s.info, call, "append") {
					return true
				}
			}
			for _, arg := range call.Args {
				s.sink(f, arg, "passed to "+types.ExprString(call.Fun), true)
			}
			return true
		})
	})
}
