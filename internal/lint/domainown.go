package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"vsnoop/internal/lint/ir"
)

// domainOwnAnalyzer proves the code-level analogue of the paper's isolation
// invariant: domain-owned state (filter replicas, COW overlays, RegionScout
// shards, directory homes, per-core nodes) is only touched by its owning
// domain's handlers, or handed across domains through the internal/sim
// deposit API (Engine.ScheduleFnAtDom).
//
// State is declared with //vsnoop:owned annotations (see annot.go for the
// grammar). The analyzer walks flow-sensitively from every handler root
// (collectRoots) and tracks, per local variable, a provenance fact over
// the ir CFG:
//
//   - SELF — derived from the handler's own inputs: the deposited arg, the
//     domain index u, the rooted method's receiver, captured variables
//     (bound at wiring time), fields of SELF values, and ownership-table
//     elements indexed by SELF-derived indexes (or by a constant equal to
//     the root's statically known domain);
//   - FOREIGN — obtained by enumerating an ownership table, indexing one
//     with anything else, or reading package-level owned state.
//
// Accessing a FOREIGN owned value — reading or writing its fields, calling
// its methods, indexing it — is a finding, with two sanctioned exceptions:
// reading a //vsnoop:owned const field (immutable identity, used to compute
// deposit destinations), and passing the value whole as the payload of
// ScheduleFnAtDom (the ownership transfer itself). Passing a FOREIGN owned
// value to any other call smuggles state across the domain boundary and is
// flagged too, as is leaking a whole ownership table into a call.
//
// The proof is relative to the deposit discipline: a deposited payload is
// assumed owned by the receiving domain (that is what depositing means —
// dynamic staleness is handled by the event-tag chase protocol), and index
// arithmetic over handler inputs is trusted (guarded at runtime by the
// bit-identity test matrix). Dynamic dispatch is not resolved; handlers
// reached only through interfaces carry //vsnoop:handler annotations.
var domainOwnAnalyzer = &Analyzer{
	Name:      "domainown",
	Doc:       "proves handler access to //vsnoop:owned state stays in the owning domain or crosses via the sim deposit API",
	WaiverKey: "owned",
	Run:       runDomainOwn,
}

func runDomainOwn(mod *Module, opts Options, report ReportFn) {
	own := collectOwnership(mod)
	if own.empty() {
		return
	}
	ix := newFuncIndex(mod)
	roots := collectRoots(ix, own)

	a := &ownAnalysis{mod: mod, own: own, ix: ix, roots: roots}

	// Interprocedural fixpoint over the static-domain lattice: every
	// function reachable from a root accumulates the join of the domains
	// it can execute in; constant table indexes prove SELF only when they
	// match a known domain.
	engine := &ir.Interproc[*domState]{
		Build: ix.irOf,
		Copy:  func(s *domState) *domState { c := *s; return &c },
		Join:  func(dst, src *domState) bool { return dst.dom.join(src.dom) },
		Analyze: func(fn *ir.Func, obj *types.Func, entry *domState) []ir.CallOut[*domState] {
			return a.analyze(fn, a.pkgOf(obj), entry.dom, nil)
		},
	}
	for _, r := range sortedNamedRoots(roots) {
		engine.AddRoot(r.obj, &domState{dom: r.dom})
	}
	// Rooted literals are not engine nodes (it is keyed by *types.Func);
	// seed the functions they call directly. Their domain facts are fixed,
	// so one pre-pass suffices.
	for _, r := range sortedLitRoots(roots) {
		for _, out := range a.analyze(ix.irOfLit(r.pkg, r.lit), r.pkg, r.dom, nil) {
			engine.AddRoot(out.Callee, out.Fact)
		}
	}
	final := engine.Run()

	// Reporting pass: every reached function once under its final domain
	// fact, then every rooted literal. Nested non-root literals are
	// analyzed inline by their enclosing body.
	type reached struct {
		obj *types.Func
		dom domValue
	}
	var order []reached
	for obj, st := range final {
		order = append(order, reached{obj, st.dom})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].obj.FullName() < order[j].obj.FullName() })
	for _, r := range order {
		a.analyze(ix.irOf(r.obj), a.pkgOf(r.obj), r.dom, report)
	}
	for _, r := range sortedLitRoots(roots) {
		a.analyze(ix.irOfLit(r.pkg, r.lit), r.pkg, r.dom, report)
	}
}

func sortedNamedRoots(roots *rootSet) []*handlerRoot {
	out := make([]*handlerRoot, 0, len(roots.named))
	for _, r := range roots.named {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].obj.FullName() < out[j].obj.FullName() })
	return out
}

func sortedLitRoots(roots *rootSet) []*handlerRoot {
	out := make([]*handlerRoot, 0, len(roots.lits))
	for _, r := range roots.lits {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].lit.Pos() < out[j].lit.Pos() })
	return out
}

type domState struct{ dom domValue }

// pv is the per-value provenance fact.
type pv struct {
	foreign bool // derived from cross-domain enumeration or global state
	owned   bool // refers to domain-owned state (annotated type or table element)
	table   bool // aliases an ownership table
}

func (p pv) or(q pv) pv {
	return pv{p.foreign || q.foreign, p.owned || q.owned, p.table || q.table}
}

type pvFact map[*types.Var]pv

// ownAnalysis is the per-module provenance pass state.
type ownAnalysis struct {
	mod   *Module
	own   *ownership
	ix    *funcIndex
	roots *rootSet
}

func (a *ownAnalysis) pkgOf(obj *types.Func) *Package {
	if site, ok := a.ix.decls[obj]; ok {
		return site.pkg
	}
	return nil
}

// analyze runs the provenance dataflow over fn under the given static
// domain. With report nil it only returns propagation edges (fixpoint
// phase); with report set it also emits findings. Nested non-root literals
// are analyzed inline with the same domain (they execute synchronously in
// the handler, or are rooted separately when deposited).
func (a *ownAnalysis) analyze(fn *ir.Func, pkg *Package, dom domValue, report ReportFn) []ir.CallOut[*domState] {
	if fn == nil || pkg == nil || pkg.Path == a.mod.Path+"/internal/sim" {
		return nil
	}
	st := &ownScan{a: a, pkg: pkg, dom: dom, report: report}
	st.run(fn)
	return st.outs
}

// ownScan carries per-function analysis state.
type ownScan struct {
	a      *ownAnalysis
	pkg    *Package
	dom    domValue
	report ReportFn
	outs   []ir.CallOut[*domState]
}

func (s *ownScan) run(fn *ir.Func) {
	analysis := ir.ForwardAnalysis[pvFact]{
		Entry:  func(*ir.Func) pvFact { return make(pvFact) },
		Bottom: func() pvFact { return make(pvFact) },
		Copy: func(f pvFact) pvFact {
			g := make(pvFact, len(f))
			for v, p := range f {
				g[v] = p
			}
			return g
		},
		Join: func(dst, src pvFact) bool {
			changed := false
			for v, p := range src {
				m := dst[v].or(p)
				if m != dst[v] {
					dst[v] = m
					changed = true
				}
			}
			return changed
		},
		Transfer: s.transfer,
	}
	in := ir.Forward(fn, analysis)
	ir.Replay(fn, analysis, in, func(fact pvFact, ins *ir.Instr) {
		s.check(fact, ins)
	})
}

func (s *ownScan) info() *types.Info { return s.pkg.Info }

// transfer updates the fact through one instruction.
func (s *ownScan) transfer(fact pvFact, ins *ir.Instr) {
	switch ins.Op {
	case ir.OpAssign, ir.OpDecl:
		nl, nr := len(ins.Lhs), len(ins.Rhs)
		for i, l := range ins.Lhs {
			v := localVar(s.info(), l)
			if v == nil {
				continue
			}
			switch {
			case nl == nr:
				fact[v] = s.exprPV(fact, ins.Rhs[i])
			case nr == 1:
				// comma-ok / multi-value call: every LHS derives from the
				// single RHS.
				fact[v] = s.exprPV(fact, ins.Rhs[0])
			default:
				fact[v] = pv{}
			}
		}
	case ir.OpRange:
		x := s.exprPV(fact, ins.X)
		elemForeign := x.foreign || x.table
		if v := localVar(s.info(), ins.Key); v != nil {
			// Ranged keys of a table are indexes covering every domain.
			fact[v] = pv{foreign: elemForeign}
		}
		if v := localVar(s.info(), ins.Value); v != nil {
			fact[v] = pv{foreign: elemForeign, owned: x.table || x.owned}
		}
	case ir.OpTypeSwitchBind:
		if len(ins.Defs) == 1 && ins.X != nil {
			fact[ins.Defs[0]] = s.exprPV(fact, ins.X)
		}
	}
}

// exprPV computes the provenance of an expression under fact.
func (s *ownScan) exprPV(fact pvFact, e ast.Expr) pv {
	if e == nil {
		return pv{}
	}
	info := s.info()
	switch x := e.(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			owned := s.a.own.ownedType(v.Type())
			if isPackageLevel(v) {
				return pv{foreign: owned, owned: owned}
			}
			p := fact[v]
			p.owned = p.owned || owned
			return p
		}
		return pv{}
	case *ast.ParenExpr:
		return s.exprPV(fact, x.X)
	case *ast.StarExpr:
		return s.exprPV(fact, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			return pv{}
		}
		return s.exprPV(fact, x.X)
	case *ast.TypeAssertExpr:
		return s.exprPV(fact, x.X)
	case *ast.SelectorExpr:
		return s.selPV(fact, x)
	case *ast.IndexExpr:
		base := s.exprPV(fact, x.X)
		if base.table {
			if s.indexIsSelf(fact, x.Index) {
				return pv{owned: true}
			}
			return pv{foreign: true, owned: true}
		}
		elemOwned := s.a.own.ownedType(info.TypeOf(x))
		return pv{foreign: base.foreign, owned: base.owned || elemOwned}
	case *ast.SliceExpr:
		return s.exprPV(fact, x.X)
	case *ast.CallExpr:
		if tv, ok := info.Types[unparen(x.Fun)]; ok && tv.IsType() && len(x.Args) == 1 {
			return s.exprPV(fact, x.Args[0]) // conversion
		}
		return pv{owned: s.a.own.ownedType(info.TypeOf(x))}
	case *ast.BinaryExpr:
		l, r := s.exprPV(fact, x.X), s.exprPV(fact, x.Y)
		return pv{foreign: l.foreign || r.foreign}
	default:
		return pv{}
	}
}

// selPV is the field/method-selection provenance rule.
func (s *ownScan) selPV(fact pvFact, x *ast.SelectorExpr) pv {
	info := s.info()
	own := s.a.own
	// Qualified reference pkg.Var.
	if id, ok := x.X.(*ast.Ident); ok {
		if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
			if v, ok := info.Uses[x.Sel].(*types.Var); ok {
				owned := own.ownedType(v.Type())
				return pv{foreign: owned, owned: owned}
			}
			return pv{}
		}
	}
	fieldVar, _ := info.Uses[x.Sel].(*types.Var)
	base := s.exprPV(fact, x.X)
	switch {
	case fieldVar != nil && own.tables[fieldVar]:
		return pv{table: true, foreign: base.foreign}
	case fieldVar != nil && own.refs[fieldVar]:
		// Same-domain reference wired at setup: reads are domain-local.
		return pv{owned: own.ownedType(fieldVar.Type()), foreign: base.foreign}
	case fieldVar != nil && fieldVar.IsField() && own.ownedType(fieldVar.Type()) &&
		!base.owned && !own.consts[fieldVar]:
		// An owned-typed field hanging off unowned shared state (the
		// Machine, a controller): a cross-domain reference unless
		// annotated //vsnoop:owned ref.
		return pv{foreign: true, owned: true}
	default:
		t := info.TypeOf(x)
		return pv{foreign: base.foreign, owned: own.ownedType(t)}
	}
}

// indexIsSelf decides whether an index expression stays in the executing
// domain: constants must equal the statically known domain; everything
// else must be SELF-derived (not foreign).
func (s *ownScan) indexIsSelf(fact pvFact, idx ast.Expr) bool {
	if c := constIntOf(s.info(), idx); c != nil {
		return s.dom.isKnown() && s.dom.val == *c
	}
	return !s.exprPV(fact, idx).foreign
}

// check inspects one instruction for violations and records callouts.
func (s *ownScan) check(fact pvFact, ins *ir.Instr) {
	isWriteTarget := func(e ast.Expr) bool {
		if ins.Op != ir.OpAssign && ins.Op != ir.OpIncDec {
			return false
		}
		for _, lhs := range ins.Lhs {
			if lhs == e {
				return true
			}
		}
		return false
	}
	for _, lhs := range ins.Lhs {
		if ins.Op == ir.OpAssign || ins.Op == ir.OpIncDec {
			s.checkWrite(fact, lhs)
		}
	}
	ins.Exprs(func(e ast.Expr) {
		s.walkExpr(fact, e, isWriteTarget(e))
	})
	if ins.Op == ir.OpRange && ins.X != nil {
		if p := s.exprPV(fact, ins.X); p.foreign && p.owned && !p.table {
			s.flag(ins.X.Pos(), "ranges over a foreign domain-owned value"+transferHint)
		}
	}
}

// checkWrite flags a store whose target chain passes through foreign
// owned state or into an ownership table at a foreign index. Const fields
// are NOT exempt: identity is immutable.
func (s *ownScan) checkWrite(fact pvFact, lhs ast.Expr) {
	e := unparen(lhs)
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if base := s.exprPV(fact, x.X); base.foreign && base.owned {
				s.flag(x.Pos(), "writes field "+x.Sel.Name+" of a foreign domain-owned value"+transferHint)
				return
			}
			e = unparen(x.X)
		case *ast.IndexExpr:
			base := s.exprPV(fact, x.X)
			if base.table && !s.indexIsSelf(fact, x.Index) {
				s.flag(x.Pos(), "stores into an ownership table at a foreign index"+transferHint)
				return
			}
			if base.foreign && base.owned {
				s.flag(x.Pos(), "writes an element of a foreign domain-owned value"+transferHint)
				return
			}
			e = unparen(x.X)
		case *ast.StarExpr:
			if base := s.exprPV(fact, x.X); base.foreign && base.owned {
				s.flag(x.Pos(), "writes through a pointer to a foreign domain-owned value"+transferHint)
				return
			}
			e = unparen(x.X)
		default:
			return
		}
	}
}

// walkExpr descends an operand expression flagging foreign-owned reads
// and call leaks. writeTarget marks the instruction's own store target,
// whose base chain checkWrite already covered.
func (s *ownScan) walkExpr(fact pvFact, e ast.Expr, writeTarget bool) {
	info := s.info()
	var walk func(e ast.Expr, skipTop bool)
	walk = func(e ast.Expr, skipTop bool) {
		switch x := e.(type) {
		case nil:
		case *ast.ParenExpr:
			walk(x.X, skipTop)
		case *ast.FuncLit:
			s.nestedLit(x)
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					return
				}
			}
			if !skipTop {
				if base := s.exprPV(fact, x.X); base.foreign && base.owned {
					fieldVar, _ := info.Uses[x.Sel].(*types.Var)
					if fieldVar == nil || !s.a.own.consts[fieldVar] {
						what := "field " + x.Sel.Name
						if _, isFn := info.Uses[x.Sel].(*types.Func); isFn {
							what = "method " + x.Sel.Name
						}
						s.flag(x.Pos(), "accesses "+what+" of a foreign domain-owned value"+transferHint)
					}
				}
			}
			walk(x.X, false)
		case *ast.IndexExpr:
			if !skipTop {
				if base := s.exprPV(fact, x.X); base.foreign && base.owned && !base.table {
					s.flag(x.Pos(), "indexes a foreign domain-owned value"+transferHint)
				}
			}
			walk(x.X, skipTop)
			walk(x.Index, false)
		case *ast.CallExpr:
			s.checkCall(fact, x)
			walk(x.Fun, true) // the method access itself is checked by checkCall's receiver rule below
			for _, arg := range x.Args {
				walk(arg, false)
			}
		case *ast.StarExpr:
			walk(x.X, skipTop)
		case *ast.UnaryExpr:
			walk(x.X, false)
		case *ast.BinaryExpr:
			walk(x.X, false)
			walk(x.Y, false)
		case *ast.TypeAssertExpr:
			walk(x.X, false)
		case *ast.SliceExpr:
			walk(x.X, false)
			walk(x.Low, false)
			walk(x.High, false)
			walk(x.Max, false)
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				walk(el, false)
			}
		case *ast.KeyValueExpr:
			walk(x.Value, false)
		}
	}
	walk(e, writeTarget)
}

// nestedLit analyzes a non-root nested literal inline: it executes
// synchronously in the same handler (sort comparators, small helpers);
// deposited literals are separate roots and skipped here.
func (s *ownScan) nestedLit(fl *ast.FuncLit) {
	if _, isRoot := s.a.roots.lits[fl]; isRoot {
		return
	}
	fn := s.a.ix.irOfLit(s.pkg, fl)
	ns := &ownScan{a: s.a, pkg: s.pkg, dom: s.dom, report: s.report}
	ns.run(fn)
	s.outs = append(s.outs, ns.outs...)
}

// checkCall flags foreign owned values and ownership tables leaking into
// ordinary calls, exempts the sanctioned transfer (the ScheduleFnAtDom
// payload), checks the receiver of method calls, and records the callout
// for the interprocedural fixpoint.
func (s *ownScan) checkCall(fact pvFact, call *ast.CallExpr) {
	info := s.info()
	tv, ok := info.Types[unparen(call.Fun)]
	if ok && (tv.IsType() || tv.IsBuiltin()) {
		return // conversions and builtins (len, cap, append) do not leak
	}
	// Method call on a foreign owned receiver.
	if sel, isSel := unparen(call.Fun).(*ast.SelectorExpr); isSel {
		if _, isFn := info.Uses[sel.Sel].(*types.Func); isFn {
			if base := s.exprPV(fact, sel.X); base.foreign && base.owned {
				s.flag(sel.Pos(), "calls method "+sel.Sel.Name+" on a foreign domain-owned value"+transferHint)
			}
		}
	}
	deposit := isDepositCall(call)
	for i, arg := range call.Args {
		if deposit && i >= 1 {
			// dst, fn, payload, u: the deposit contract hands the payload
			// (and its routing metadata) to the destination domain.
			continue
		}
		p := s.exprPV(fact, arg)
		if p.foreign && p.owned {
			s.flag(arg.Pos(), "passes a foreign domain-owned value to a call"+transferHint)
		}
		if p.table {
			s.flag(arg.Pos(), "passes an ownership table to a call; index it at the call site instead")
		}
	}
	if callee := staticCallee(info, call); callee != nil {
		s.outs = append(s.outs, ir.CallOut[*domState]{Callee: callee, Fact: &domState{dom: s.dom}})
	}
}

const transferHint = "; hand it to its owner with Engine.ScheduleFnAtDom or waive with //lint:owned <reason>"

func (s *ownScan) flag(pos token.Pos, msg string) {
	if s.report == nil {
		return
	}
	s.report(s.pkg, pos, "domain confinement: handler-reachable code "+msg)
}

// isDepositCall matches the sanctioned ownership-transfer API by name:
// Engine.ScheduleFnAtDom(at, dom, fn, arg, u).
func isDepositCall(call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "ScheduleFnAtDom" && len(call.Args) == 5
}

// staticCallee resolves a call to a module-level named function or method.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[f].(*types.Func); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[f.Sel].(*types.Func); ok {
			return obj
		}
	}
	return nil
}

// localVar resolves a plain identifier to a local variable.
func localVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	var v *types.Var
	if d, ok := info.Defs[id].(*types.Var); ok {
		v = d
	} else if u, ok := info.Uses[id].(*types.Var); ok {
		v = u
	}
	if v == nil || v.IsField() || isPackageLevel(v) {
		return nil
	}
	return v
}
