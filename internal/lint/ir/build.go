package ir

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BuildDecl lowers a declared function with a body to IR. Returns nil for
// bodyless declarations.
func BuildDecl(info *types.Info, fd *ast.FuncDecl) *Func {
	if fd.Body == nil {
		return nil
	}
	sig, _ := info.TypeOf(fd.Name).(*types.Signature)
	fn := newFunc(info, fd.Name.Name, sig, fd)
	fn.build(fd.Body)
	return fn
}

// BuildLit lowers a function literal to IR.
func BuildLit(info *types.Info, fl *ast.FuncLit) *Func {
	sig, _ := info.TypeOf(fl).(*types.Signature)
	fn := newFunc(info, "func literal", sig, fl)
	fn.build(fl.Body)
	return fn
}

func newFunc(info *types.Info, name string, sig *types.Signature, decl ast.Node) *Func {
	fn := &Func{Name: name, Info: info, Sig: sig, Decl: decl}
	if sig != nil {
		if r := sig.Recv(); r != nil {
			fn.EntryVars = append(fn.EntryVars, r)
		}
		for i := 0; i < sig.Params().Len(); i++ {
			fn.EntryVars = append(fn.EntryVars, sig.Params().At(i))
		}
		for i := 0; i < sig.Results().Len(); i++ {
			if v := sig.Results().At(i); v.Name() != "" {
				fn.EntryVars = append(fn.EntryVars, v)
			}
		}
	}
	return fn
}

// builder state: the block under construction plus the break/continue
// targets of the enclosing loops and switches.
type builder struct {
	fn  *Func
	cur *Block
	// frames is the stack of enclosing breakable/continuable constructs.
	frames []frame
}

type frame struct {
	label    string
	brk, cnt *Block // cnt nil for switches/selects
}

func (fn *Func) build(body *ast.BlockStmt) {
	b := &builder{fn: fn}
	fn.Entry = b.newBlock("entry")
	fn.Exit = &Block{Index: -1, What: "exit"}
	b.cur = fn.Entry
	b.stmt(body)
	b.jump(b.cur, fn.Exit)
	fn.Exit.Index = len(fn.Blocks)
	fn.Blocks = append(fn.Blocks, fn.Exit)
}

func (b *builder) newBlock(what string) *Block {
	blk := &Block{Index: len(b.fn.Blocks), What: what}
	b.fn.Blocks = append(b.fn.Blocks, blk)
	return blk
}

func (b *builder) jump(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *builder) emit(ins *Instr) {
	b.cur.Instrs = append(b.cur.Instrs, ins)
}

// defIdent resolves an identifier to the local variable it defines or
// assigns, or nil (blank, field, package-level).
func (b *builder) defIdent(e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	var v *types.Var
	if d, ok := b.fn.Info.Defs[id].(*types.Var); ok {
		v = d
	} else if u, ok := b.fn.Info.Uses[id].(*types.Var); ok {
		v = u
	}
	if v == nil || v.IsField() {
		return nil
	}
	if v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return nil // package-level writes are not local defs
	}
	return v
}

func (b *builder) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range x.List {
			b.stmt(st)
		}
	case *ast.ExprStmt:
		b.emit(&Instr{Op: OpEval, Pos: x.Pos(), Stmt: x, X: x.X})
	case *ast.AssignStmt:
		ins := &Instr{Op: OpAssign, Pos: x.Pos(), Stmt: x, Lhs: x.Lhs, Rhs: x.Rhs, Tok: x.Tok}
		for _, l := range x.Lhs {
			if v := b.defIdent(l); v != nil {
				ins.Defs = append(ins.Defs, v)
			}
		}
		b.emit(ins)
	case *ast.IncDecStmt:
		ins := &Instr{Op: OpIncDec, Pos: x.Pos(), Stmt: x, Lhs: []ast.Expr{x.X}, Tok: x.Tok}
		if v := b.defIdent(x.X); v != nil {
			ins.Defs = append(ins.Defs, v)
		}
		b.emit(ins)
	case *ast.DeclStmt:
		gd, ok := x.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return // const/type declarations define no dataflow
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			ins := &Instr{Op: OpDecl, Pos: vs.Pos(), Stmt: x, Rhs: vs.Values}
			for _, n := range vs.Names {
				ins.Lhs = append(ins.Lhs, n)
				if v := b.defIdent(n); v != nil {
					ins.Defs = append(ins.Defs, v)
				}
			}
			b.emit(ins)
		}
	case *ast.ReturnStmt:
		b.emit(&Instr{Op: OpReturn, Pos: x.Pos(), Stmt: x, Rhs: x.Results})
		b.jump(b.cur, b.fn.Exit)
		b.cur = b.newBlock("return.dead")
	case *ast.SendStmt:
		b.emit(&Instr{Op: OpSend, Pos: x.Pos(), Stmt: x, X: x.Chan, Rhs: []ast.Expr{x.Value}})
	case *ast.GoStmt:
		b.emit(&Instr{Op: OpGo, Pos: x.Pos(), Stmt: x, X: x.Call})
	case *ast.DeferStmt:
		b.emit(&Instr{Op: OpDefer, Pos: x.Pos(), Stmt: x, X: x.Call})
	case *ast.IfStmt:
		b.ifStmt(x)
	case *ast.ForStmt:
		b.forStmt(x, "")
	case *ast.RangeStmt:
		b.rangeStmt(x, "")
	case *ast.SwitchStmt:
		b.switchStmt(x, "")
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(x, "")
	case *ast.SelectStmt:
		b.selectStmt(x, "")
	case *ast.LabeledStmt:
		b.labeled(x)
	case *ast.BranchStmt:
		b.branch(x)
	case *ast.EmptyStmt:
	default:
		// Unmodeled statements (none in practice) evaluate nothing.
	}
}

func (b *builder) ifStmt(x *ast.IfStmt) {
	b.stmt(x.Init)
	b.emit(&Instr{Op: OpCond, Pos: x.Cond.Pos(), Stmt: x, X: x.Cond})
	head := b.cur
	join := b.newBlock("if.join")

	then := b.newBlock("if.then")
	b.jump(head, then)
	b.cur = then
	b.stmt(x.Body)
	b.jump(b.cur, join)

	if x.Else != nil {
		els := b.newBlock("if.else")
		b.jump(head, els)
		b.cur = els
		b.stmt(x.Else)
		b.jump(b.cur, join)
	} else {
		b.jump(head, join)
	}
	b.cur = join
}

func (b *builder) forStmt(x *ast.ForStmt, label string) {
	b.stmt(x.Init)
	head := b.newBlock("for.head")
	b.jump(b.cur, head)
	b.cur = head
	if x.Cond != nil {
		b.emit(&Instr{Op: OpCond, Pos: x.Cond.Pos(), Stmt: x, X: x.Cond})
	}
	body := b.newBlock("for.body")
	join := b.newBlock("for.join")
	b.jump(head, body)
	if x.Cond != nil {
		b.jump(head, join)
	}

	cnt := head
	var post *Block
	if x.Post != nil {
		post = b.newBlock("for.post")
		cnt = post
	}
	b.frames = append(b.frames, frame{label: label, brk: join, cnt: cnt})
	b.cur = body
	b.stmt(x.Body)
	b.frames = b.frames[:len(b.frames)-1]

	if post != nil {
		b.jump(b.cur, post)
		b.cur = post
		b.stmt(x.Post)
	}
	b.jump(b.cur, head)
	b.cur = join
}

func (b *builder) rangeStmt(x *ast.RangeStmt, label string) {
	head := b.newBlock("range.head")
	b.jump(b.cur, head)
	ins := &Instr{Op: OpRange, Pos: x.For, Stmt: x, X: x.X, Key: x.Key, Value: x.Value, Tok: x.Tok}
	for _, e := range []ast.Expr{x.Key, x.Value} {
		if e == nil {
			continue
		}
		if v := rangeVar(b.fn.Info, e, x.Tok); v != nil {
			ins.Defs = append(ins.Defs, v)
		}
	}
	head.Instrs = append(head.Instrs, ins)

	body := b.newBlock("range.body")
	join := b.newBlock("range.join")
	b.jump(head, body)
	b.jump(head, join)

	b.frames = append(b.frames, frame{label: label, brk: join, cnt: head})
	b.cur = body
	b.stmt(x.Body)
	b.frames = b.frames[:len(b.frames)-1]
	b.jump(b.cur, head)
	b.cur = join
}

func rangeVar(info *types.Info, e ast.Expr, tok token.Token) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if tok == token.DEFINE {
		v, _ := info.Defs[id].(*types.Var)
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	if v != nil && (v.IsField() || (v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope())) {
		return nil
	}
	return v
}

func (b *builder) switchStmt(x *ast.SwitchStmt, label string) {
	b.stmt(x.Init)
	if x.Tag != nil {
		b.emit(&Instr{Op: OpEval, Pos: x.Tag.Pos(), Stmt: x, X: x.Tag})
	}
	head := b.cur
	join := b.newBlock("switch.join")
	b.frames = append(b.frames, frame{label: label, brk: join})

	hasDefault := false
	for _, c := range x.Body.List {
		cc := c.(*ast.CaseClause)
		blk := b.newBlock("switch.case")
		b.jump(head, blk)
		b.cur = blk
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			b.emit(&Instr{Op: OpEval, Pos: e.Pos(), X: e})
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.jump(b.cur, join)
	}
	b.frames = b.frames[:len(b.frames)-1]
	if !hasDefault || len(x.Body.List) == 0 {
		b.jump(head, join)
	}
	b.cur = join
}

func (b *builder) typeSwitchStmt(x *ast.TypeSwitchStmt, label string) {
	b.stmt(x.Init)
	// The operand: either `x.(type)` bare or `v := x.(type)`.
	var operand ast.Expr
	switch a := x.Assign.(type) {
	case *ast.ExprStmt:
		operand = a.X
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			operand = a.Rhs[0]
		}
	}
	if operand != nil {
		b.emit(&Instr{Op: OpEval, Pos: operand.Pos(), Stmt: x, X: operand})
	}
	head := b.cur
	join := b.newBlock("typeswitch.join")
	b.frames = append(b.frames, frame{label: label, brk: join})

	hasDefault := false
	for _, c := range x.Body.List {
		cc := c.(*ast.CaseClause)
		blk := b.newBlock("typeswitch.case")
		b.jump(head, blk)
		b.cur = blk
		if cc.List == nil {
			hasDefault = true
		}
		// The per-clause implicit binding, when the switch names one.
		if v, ok := b.fn.Info.Implicits[cc].(*types.Var); ok {
			b.emit(&Instr{Op: OpTypeSwitchBind, Pos: cc.Pos(), Stmt: x, X: operand, Defs: []*types.Var{v}})
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.jump(b.cur, join)
	}
	b.frames = b.frames[:len(b.frames)-1]
	if !hasDefault || len(x.Body.List) == 0 {
		b.jump(head, join)
	}
	b.cur = join
}

func (b *builder) selectStmt(x *ast.SelectStmt, label string) {
	head := b.cur
	join := b.newBlock("select.join")
	b.frames = append(b.frames, frame{label: label, brk: join})
	for _, c := range x.Body.List {
		cc := c.(*ast.CommClause)
		blk := b.newBlock("select.case")
		b.jump(head, blk)
		b.cur = blk
		b.stmt(cc.Comm)
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.jump(b.cur, join)
	}
	b.frames = b.frames[:len(b.frames)-1]
	if len(x.Body.List) == 0 {
		b.jump(head, join)
	}
	b.cur = join
}

func (b *builder) labeled(x *ast.LabeledStmt) {
	name := x.Label.Name
	switch s := x.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(s, name)
	case *ast.RangeStmt:
		b.rangeStmt(s, name)
	case *ast.SwitchStmt:
		b.switchStmt(s, name)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, name)
	case *ast.SelectStmt:
		b.selectStmt(s, name)
	default:
		// A labeled plain statement: the label is a goto target; the
		// statement itself executes normally.
		b.stmt(s)
	}
}

func (b *builder) branch(x *ast.BranchStmt) {
	target := func(cont bool) *Block {
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if x.Label != nil && f.label != x.Label.Name {
				continue
			}
			if cont {
				if f.cnt != nil {
					return f.cnt
				}
				continue // continue skips switch/select frames
			}
			return f.brk
		}
		return nil
	}
	switch x.Tok {
	case token.BREAK:
		b.jump(b.cur, target(false))
	case token.CONTINUE:
		b.jump(b.cur, target(true))
	case token.GOTO:
		// No goto in this module; treat as an opaque jump to exit so
		// downstream facts stay sound for the code that IS analyzed.
		b.jump(b.cur, b.fn.Exit)
	case token.FALLTHROUGH:
		// Conservatively ignored (the next clause is also a successor of
		// the switch head, so its facts already include this path's join).
	}
	b.cur = b.newBlock("branch.dead")
}
