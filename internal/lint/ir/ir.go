// Package ir is the stdlib-only (go/ast + go/types) SSA-lite intermediate
// representation underneath vsnoop-lint's flow-sensitive analyzers. It
// deliberately stops short of full SSA: there is no phi construction and no
// value renaming. Instead it gives analyzers the three things the PR-4
// syntax walks could not see through:
//
//   - a control-flow graph of basic blocks over the original statements,
//     so facts can be propagated flow-sensitively (loops converge by
//     fixpoint, branches join by union);
//   - reaching definitions and def-use chains over *types.Var, so an
//     analyzer can ask "which assignments can this identifier observe?"
//     and trace a value through local aliases;
//   - a generic forward dataflow solver and an interprocedural fixpoint
//     engine, so client lattices (alias sets, provenance, escape state)
//     plug in without re-implementing worklists.
//
// Instructions keep pointers into the original AST rather than lowering to
// an opcode soup: the analyzers built on top (domainown, shardsafe,
// hotalloc) report at source positions and pattern-match on expressions,
// so the AST is the natural operand representation. What the IR adds is
// ORDER — a linearization of control flow the AST does not expose.
package ir

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Func is the IR of one function body: a CFG whose blocks hold the body's
// statements lowered to instructions, plus the entry values (receiver,
// parameters, named results, and free variables for literals) every
// forward analysis seeds its initial fact from.
type Func struct {
	Name string
	Info *types.Info
	Sig  *types.Signature
	Decl ast.Node // *ast.FuncDecl or *ast.FuncLit

	Entry  *Block
	Exit   *Block // synthetic; every return edges here
	Blocks []*Block

	// EntryVars are the variables live-on-entry: receiver, parameters, and
	// named results. Free variables of function literals are not listed —
	// clients detect them with FreeVar.
	EntryVars []*types.Var
}

// Block is one basic block: straight-line instructions with branch-free
// control flow, linked to successors and predecessors.
type Block struct {
	Index  int
	What   string // "entry", "if.then", "for.head", ... for debugging
	Instrs []*Instr
	Succs  []*Block
	Preds  []*Block
}

// Op discriminates instruction kinds.
type Op uint8

const (
	// OpAssign is an assignment or short declaration: Lhs Tok Rhs.
	OpAssign Op = iota
	// OpDecl is a var declaration (one ValueSpec): Lhs are the name
	// identifiers, Rhs the initializers (possibly empty).
	OpDecl
	// OpIncDec is X++ or X--.
	OpIncDec
	// OpEval evaluates X for effect (expression statements, switch tags,
	// case expressions).
	OpEval
	// OpCond evaluates the branch condition X; the enclosing block's two
	// successors are the true and false arms (in that order).
	OpCond
	// OpRange is a range-loop header: Key, Value := range X per iteration.
	// The enclosing block's successors are the body and the exit join.
	OpRange
	// OpReturn returns Rhs.
	OpReturn
	// OpSend sends Rhs[0] on channel X.
	OpSend
	// OpGo launches call X on a new goroutine.
	OpGo
	// OpDefer defers call X.
	OpDefer
	// OpTypeSwitchBind binds a type-switch clause's implicit variable
	// (Defs) from the switch operand X.
	OpTypeSwitchBind
)

// Instr is one instruction. Operand fields are populated per Op; unneeded
// fields are nil.
type Instr struct {
	Op   Op
	Pos  token.Pos
	Stmt ast.Stmt // originating statement, when there is exactly one

	X          ast.Expr   // cond / eval / range operand / chan / call
	Lhs, Rhs   []ast.Expr // assignment sides, return values
	Tok        token.Token
	Key, Value ast.Expr // range loop variables (may be nil)

	// Defs are the local variables this instruction (re)defines: short
	// declarations, plain-identifier assignments, inc/dec, var decls,
	// range keys/values, and type-switch bindings.
	Defs []*types.Var
}

// FreeVar reports whether v is free in fn: referenced by the body but
// neither an entry variable nor defined by any instruction. For function
// literals these are the captured variables; for declared functions only
// package-level objects are free, and those return false (they are not
// *local* state).
func (fn *Func) FreeVar(v *types.Var) bool {
	if v == nil || v.IsField() {
		return false
	}
	if v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return false // package-level, addressed directly rather than captured
	}
	var lo, hi token.Pos
	switch d := fn.Decl.(type) {
	case *ast.FuncDecl:
		lo, hi = d.Pos(), d.End()
	case *ast.FuncLit:
		lo, hi = d.Pos(), d.End()
	default:
		return false
	}
	return v.Pos() < lo || v.Pos() > hi
}

// LocalDefs returns every variable defined by some instruction, for
// analyses that need the def universe up front.
func (fn *Func) LocalDefs() []*types.Var {
	seen := make(map[*types.Var]bool)
	var out []*types.Var
	for _, b := range fn.Blocks {
		for _, ins := range b.Instrs {
			for _, v := range ins.Defs {
				if v != nil && !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
		}
	}
	return out
}

// Exprs calls f on every operand expression of the instruction, in
// evaluation order (Rhs before Lhs for assignments, matching Go).
func (ins *Instr) Exprs(f func(ast.Expr)) {
	for _, e := range ins.Rhs {
		if e != nil {
			f(e)
		}
	}
	if ins.X != nil {
		f(ins.X)
	}
	for _, e := range ins.Lhs {
		if e != nil {
			f(e)
		}
	}
}
