package ir

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// src is one self-contained, import-free program exercising every CFG
// construct the builder lowers: branch joins, loop back-edges, switch and
// type-switch fan-out, select, labeled break/continue, goto, assignment-form
// range variables, closures, and a small call graph for the
// interprocedural engine (ext is deliberately bodyless).
const src = `package irtest

var global int

func du(c bool) int {
	x := 1
	if c {
		x = 2
	}
	y := x
	return y
}

func loop(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}

func sw(n int) string {
	out := ""
	switch n {
	case 0:
		out = "zero"
		fallthrough
	case 1:
		out = out + "one"
		break
	default:
		out = "many"
	}
	return out
}

func ts(x interface{}) int {
	switch v := x.(type) {
	case int:
		return v
	case string:
		return len(v)
	default:
		_ = v
		return 0
	}
}

func sel(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case b <- 1:
		return 1
	}
}

func lab(xs [][]int) int {
	n := 0
outer:
	for _, row := range xs {
		for _, v := range row {
			if v < 0 {
				continue outer
			}
			if v == 99 {
				break outer
			}
			n += v
		}
	}
	return n
}

func hop(n int) int {
	if n > 0 {
		goto done
	}
	n++
done:
	return n
}

func rv(m []int) (int, int) {
	var k, v int
	for k, v = range m {
		_ = k
	}
	return k, v
}

func fv(p int) func() int {
	q := 2
	f := func() int { return p + q + global }
	return f
}

func ext()

func rootA(n int) { shared(n) }

func rootB(n int) { shared(n + 1) }

func shared(n int) {
	ext()
	leaf(n)
}

func leaf(n int) { _ = n }
`

// compile type-checks the test program and returns its file and type info.
func compile(t *testing.T) (*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "irtest.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	if _, err := (&types.Config{}).Check("irtest", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return f, info
}

func funcDecl(t *testing.T, f *ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	t.Fatalf("test program lost function %s", name)
	return nil
}

func buildNamed(t *testing.T, f *ast.File, info *types.Info, name string) *Func {
	t.Helper()
	fn := BuildDecl(info, funcDecl(t, f, name))
	if fn == nil {
		t.Fatalf("BuildDecl(%s) = nil", name)
	}
	return fn
}

func hasBlock(bs []*Block, b *Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}

// checkWellFormed verifies the CFG invariants every analysis relies on:
// entry and exit are in Blocks, succ/pred edges mirror each other, and the
// synthetic exit has no successors.
func checkWellFormed(t *testing.T, fn *Func) {
	t.Helper()
	member := make(map[*Block]bool, len(fn.Blocks))
	for _, b := range fn.Blocks {
		member[b] = true
	}
	if !member[fn.Entry] {
		t.Errorf("%s: entry block not in Blocks", fn.Name)
	}
	if !member[fn.Exit] {
		t.Errorf("%s: exit block not in Blocks", fn.Name)
	}
	if len(fn.Exit.Succs) != 0 {
		t.Errorf("%s: exit block has successors", fn.Name)
	}
	for _, b := range fn.Blocks {
		for _, s := range b.Succs {
			if !member[s] {
				t.Errorf("%s: %s has an out-of-graph successor", fn.Name, b.What)
			}
			if !hasBlock(s.Preds, b) {
				t.Errorf("%s: edge %s -> %s missing its pred link", fn.Name, b.What, s.What)
			}
		}
		for _, p := range b.Preds {
			if !hasBlock(p.Succs, b) {
				t.Errorf("%s: pred link %s <- %s missing its succ edge", fn.Name, b.What, p.What)
			}
		}
	}
}

func countWhat(fn *Func, what string) int {
	n := 0
	for _, b := range fn.Blocks {
		if b.What == what {
			n++
		}
	}
	return n
}

// TestCFGConstructs lowers every statement form and checks the resulting
// graphs are well-formed with the expected shapes.
func TestCFGConstructs(t *testing.T) {
	f, info := compile(t)
	for _, name := range []string{"du", "loop", "sw", "ts", "sel", "lab", "hop", "rv", "fv"} {
		fn := buildNamed(t, f, info, name)
		checkWellFormed(t, fn)
	}

	if got := countWhat(buildNamed(t, f, info, "sw"), "switch.case"); got != 3 {
		t.Errorf("sw: %d switch.case blocks, want 3", got)
	}
	if got := countWhat(buildNamed(t, f, info, "ts"), "typeswitch.case"); got != 3 {
		t.Errorf("ts: %d typeswitch.case blocks, want 3", got)
	}
	if got := countWhat(buildNamed(t, f, info, "sel"), "select.case"); got != 2 {
		t.Errorf("sel: %d select.case blocks, want 2", got)
	}
	if got := countWhat(buildNamed(t, f, info, "lab"), "range.head"); got != 2 {
		t.Errorf("lab: %d range.head blocks, want 2", got)
	}

	// goto lowers to an opaque edge to exit, so exit collects both the goto
	// block and the labeled return.
	if hop := buildNamed(t, f, info, "hop"); len(hop.Exit.Preds) < 2 {
		t.Errorf("hop: exit has %d preds, want the goto edge and the return", len(hop.Exit.Preds))
	}
}

// TestTypeSwitchBindings checks each clause of `switch v := x.(type)` gets
// its own OpTypeSwitchBind defining a distinct per-clause variable.
func TestTypeSwitchBindings(t *testing.T) {
	f, info := compile(t)
	fn := buildNamed(t, f, info, "ts")

	seen := map[*types.Var]bool{}
	binds := 0
	for _, b := range fn.Blocks {
		for _, ins := range b.Instrs {
			if ins.Op != OpTypeSwitchBind {
				continue
			}
			binds++
			if len(ins.Defs) != 1 || ins.Defs[0] == nil {
				t.Errorf("bind at %v defines %d vars, want 1", ins.Pos, len(ins.Defs))
				continue
			}
			if seen[ins.Defs[0]] {
				t.Error("two clauses share one implicit variable")
			}
			seen[ins.Defs[0]] = true
			if ins.X == nil {
				t.Error("bind lost its switch operand")
			}
		}
	}
	if binds != 3 {
		t.Errorf("%d OpTypeSwitchBind instructions, want 3 (one per clause)", binds)
	}
}

// TestRangeAssignVars checks the assignment-form range loop
// (`for k, v = range m` over pre-declared variables) still records both
// loop variables as definitions of the range head.
func TestRangeAssignVars(t *testing.T) {
	f, info := compile(t)
	fn := buildNamed(t, f, info, "rv")

	for _, b := range fn.Blocks {
		for _, ins := range b.Instrs {
			if ins.Op != OpRange {
				continue
			}
			if len(ins.Defs) != 2 {
				t.Fatalf("range head defines %d vars, want k and v", len(ins.Defs))
			}
			return
		}
	}
	t.Fatal("rv lost its OpRange instruction")
}

// findUse locates the use identifier named name on the RHS of the
// statement assigning to lhs (or in the return when lhs is "").
func findUse(t *testing.T, fd *ast.FuncDecl, lhs, name string) *ast.Ident {
	t.Helper()
	var found *ast.Ident
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if lhs == "" {
				return true
			}
			if id, ok := s.Lhs[0].(*ast.Ident); !ok || id.Name != lhs {
				return true
			}
			if id, ok := s.Rhs[0].(*ast.Ident); ok && id.Name == name {
				found = id
			}
		case *ast.ReturnStmt:
			if lhs != "" {
				return true
			}
			for _, r := range s.Results {
				if id, ok := r.(*ast.Ident); ok && id.Name == name {
					found = id
				}
			}
		}
		return true
	})
	if found == nil {
		t.Fatalf("no use of %s (lhs %q) in %s", name, lhs, fd.Name.Name)
	}
	return found
}

// TestDefUse checks reaching definitions through joins and loop
// back-edges, and that parameter uses resolve to the entry definition.
func TestDefUse(t *testing.T) {
	f, info := compile(t)

	// du: both arms of the if reach `y := x`.
	duFn := buildNamed(t, f, info, "du")
	chains := duFn.BuildDefUse()
	if defs := chains.Defs(findUse(t, funcDecl(t, f, "du"), "y", "x")); len(defs) != 2 {
		t.Errorf("x at the join has %d reaching defs, want 2 (x := 1 and x = 2)", len(defs))
	}

	// The condition reads the parameter: exactly the entry definition.
	var cond *ast.Ident
	ast.Inspect(funcDecl(t, f, "du").Body, func(n ast.Node) bool {
		if s, ok := n.(*ast.IfStmt); ok {
			cond, _ = s.Cond.(*ast.Ident)
		}
		return true
	})
	defs := chains.Defs(cond)
	if len(defs) != 1 || !EntryDef(defs[0]) {
		t.Errorf("parameter use: got %d defs (entry=%v), want the single entry def",
			len(defs), len(defs) == 1 && EntryDef(defs[0]))
	}

	// loop: the returned s sees both the initialization and the loop-carried
	// update; i inside the body sees its init and the post-statement ++.
	loopFn := buildNamed(t, f, info, "loop")
	loopChains := loopFn.BuildDefUse()
	if defs := loopChains.Defs(findUse(t, funcDecl(t, f, "loop"), "", "s")); len(defs) != 2 {
		t.Errorf("returned s has %d reaching defs, want 2 (init and loop body)", len(defs))
	}
	if defs := loopChains.Defs(findUse(t, funcDecl(t, f, "loop"), "s", "i")); len(defs) != 2 {
		t.Errorf("i in the body has %d reaching defs, want 2 (init and i++)", len(defs))
	}
}

// TestFreeVar checks capture detection: the literal in fv captures the
// enclosing parameter and local but not the package-level variable, and
// from the declaring function's own IR nothing is free.
func TestFreeVar(t *testing.T) {
	f, info := compile(t)
	fd := funcDecl(t, f, "fv")

	var lit *ast.FuncLit
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if l, ok := n.(*ast.FuncLit); ok {
			lit = l
		}
		return true
	})
	if lit == nil {
		t.Fatal("fv lost its function literal")
	}
	litFn := BuildLit(info, lit)

	varNamed := func(name string) *types.Var {
		var out *types.Var
		for id, obj := range info.Defs {
			if v, ok := obj.(*types.Var); ok && id.Name == name {
				out = v
			}
		}
		if out == nil {
			t.Fatalf("test program lost variable %s", name)
		}
		return out
	}
	p, q, g := varNamed("p"), varNamed("q"), varNamed("global")

	if !litFn.FreeVar(p) || !litFn.FreeVar(q) {
		t.Errorf("literal: FreeVar(p)=%v FreeVar(q)=%v, want both captured", litFn.FreeVar(p), litFn.FreeVar(q))
	}
	if litFn.FreeVar(g) {
		t.Error("package-level global must not count as a captured free variable")
	}

	declFn := BuildDecl(info, fd)
	if declFn.FreeVar(p) || declFn.FreeVar(q) || declFn.FreeVar(g) {
		t.Error("nothing is free in the declaring function's own IR")
	}
	if nil == declFn || len(declFn.LocalDefs()) == 0 {
		t.Error("fv declares locals; LocalDefs must list them")
	}
}

// TestInterproc drives the interprocedural engine over the rootA/rootB →
// shared → leaf diamond: facts from both roots join at shared and flow to
// leaf, the bodyless ext is analyzed-through without appearing in the
// result, and root widening re-queues.
func TestInterproc(t *testing.T) {
	f, info := compile(t)

	decls := map[*types.Func]*ast.FuncDecl{}
	byName := map[string]*types.Func{}
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
			decls[obj] = fd
			byName[fd.Name.Name] = obj
		}
	}

	type fact = map[string]bool
	ip := &Interproc[fact]{
		Build: func(o *types.Func) *Func {
			if fd := decls[o]; fd != nil {
				return BuildDecl(info, fd)
			}
			return nil
		},
		Copy: func(f fact) fact {
			g := make(fact, len(f))
			for k := range f {
				g[k] = true
			}
			return g
		},
		Join: func(dst, src fact) bool {
			changed := false
			for k := range src {
				if !dst[k] {
					dst[k] = true
					changed = true
				}
			}
			return changed
		},
		Analyze: func(fn *Func, obj *types.Func, entry fact) []CallOut[fact] {
			var outs []CallOut[fact]
			for _, b := range fn.Blocks {
				for _, ins := range b.Instrs {
					ins.Exprs(func(e ast.Expr) {
						ast.Inspect(e, func(n ast.Node) bool {
							call, ok := n.(*ast.CallExpr)
							if !ok {
								return true
							}
							id, ok := call.Fun.(*ast.Ident)
							if !ok {
								return true
							}
							callee, ok := info.Uses[id].(*types.Func)
							if !ok {
								return true
							}
							out := make(fact, len(entry)+1)
							for k := range entry {
								out[k] = true
							}
							out["via:"+obj.Name()] = true
							outs = append(outs, CallOut[fact]{Callee: callee, Fact: out})
							return true
						})
					})
				}
			}
			return outs
		},
	}

	ip.AddRoot(byName["rootA"], fact{"A": true})
	ip.AddRoot(byName["rootB"], fact{"B": true})
	ip.AddRoot(byName["rootA"], fact{"A2": true}) // widen an existing root
	final := ip.Run()

	shared := final[byName["shared"]]
	for _, k := range []string{"A", "A2", "B", "via:rootA", "via:rootB"} {
		if !shared[k] {
			t.Errorf("shared's entry fact lost %q: %v", k, shared)
		}
	}
	leaf := final[byName["leaf"]]
	for _, k := range []string{"A", "B", "via:shared"} {
		if !leaf[k] {
			t.Errorf("leaf's entry fact lost %q: %v", k, leaf)
		}
	}
	if _, ok := final[byName["ext"]]; ok {
		t.Error("bodyless ext must be dropped from the final fact map")
	}
	if ip.IR(byName["shared"]) == nil {
		t.Error("IR(shared) must return the memoized body")
	}
	if ip.IR(byName["ext"]) != nil {
		t.Error("IR(ext) must be nil for a bodyless declaration")
	}
}
