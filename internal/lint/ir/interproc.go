package ir

import (
	"go/types"
	"sort"
)

// CallOut is one discovered propagation edge from an analyzed function: a
// statically resolved callee plus the entry fact the call site implies.
type CallOut[F any] struct {
	Callee *types.Func
	Fact   F
}

// Interproc is a context-insensitive interprocedural fixpoint engine: each
// function accumulates one entry fact (the join over every call site and
// root that reaches it) and is re-analyzed whenever that fact grows. With
// a finite client lattice the worklist terminates; the result is the final
// entry fact per reachable function, which the client then replays once
// for reporting.
type Interproc[F any] struct {
	// Build returns the IR of a function, or nil when it has no body in
	// the module (stdlib, interface methods). Results are memoized here.
	Build func(*types.Func) *Func
	// Copy and Join mirror ForwardAnalysis: facts are mutable values.
	Copy func(F) F
	Join func(dst, src F) bool
	// Analyze runs the client's intraprocedural pass over fn under the
	// given entry fact and returns the outgoing propagation edges.
	Analyze func(fn *Func, obj *types.Func, entry F) []CallOut[F]

	irCache map[*types.Func]*Func
	entry   map[*types.Func]F
}

// AddRoot seeds (or widens) a root function's entry fact.
func (ip *Interproc[F]) AddRoot(obj *types.Func, fact F) {
	ip.init()
	if have, ok := ip.entry[obj]; ok {
		ip.Join(have, fact)
		return
	}
	ip.entry[obj] = ip.Copy(fact)
}

func (ip *Interproc[F]) init() {
	if ip.entry == nil {
		ip.entry = make(map[*types.Func]F)
		ip.irCache = make(map[*types.Func]*Func)
	}
}

func (ip *Interproc[F]) irOf(obj *types.Func) *Func {
	if fn, ok := ip.irCache[obj]; ok {
		return fn
	}
	fn := ip.Build(obj)
	ip.irCache[obj] = fn
	return fn
}

// Run drives the worklist to fixpoint and returns the final entry fact of
// every reached function that has IR in the module.
func (ip *Interproc[F]) Run() map[*types.Func]F {
	ip.init()
	work := make([]*types.Func, 0, len(ip.entry))
	queued := make(map[*types.Func]bool, len(ip.entry))
	for obj := range ip.entry {
		work = append(work, obj)
		queued[obj] = true
	}
	// Deterministic worklist order: findings and fact evolution must not
	// depend on map iteration.
	sort.Slice(work, func(i, j int) bool { return funcKey(work[i]) < funcKey(work[j]) })

	for len(work) > 0 {
		obj := work[0]
		work = work[1:]
		queued[obj] = false

		fn := ip.irOf(obj)
		if fn == nil {
			continue
		}
		outs := ip.Analyze(fn, obj, ip.Copy(ip.entry[obj]))
		sort.SliceStable(outs, func(i, j int) bool { return funcKey(outs[i].Callee) < funcKey(outs[j].Callee) })
		for _, out := range outs {
			if out.Callee == nil {
				continue
			}
			have, ok := ip.entry[out.Callee]
			if !ok {
				ip.entry[out.Callee] = ip.Copy(out.Fact)
			} else if !ip.Join(have, out.Fact) {
				continue
			}
			if !queued[out.Callee] {
				queued[out.Callee] = true
				work = append(work, out.Callee)
			}
		}
	}

	final := make(map[*types.Func]F, len(ip.entry))
	for obj, f := range ip.entry {
		if ip.irOf(obj) != nil {
			final[obj] = f
		}
	}
	return final
}

// IR returns the memoized IR of obj after Run (nil if bodyless).
func (ip *Interproc[F]) IR(obj *types.Func) *Func {
	ip.init()
	return ip.irOf(obj)
}

func funcKey(f *types.Func) string {
	if f == nil {
		return ""
	}
	return f.FullName()
}
