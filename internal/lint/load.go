package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module is a fully parsed and type-checked Go module: every non-test
// package under the module root, in deterministic (import-path) order.
type Module struct {
	Dir  string // module root on disk
	Path string // module import path (from go.mod, or synthetic)
	Fset *token.FileSet
	Pkgs []*Package

	byPath map[string]*Package
}

// Package is one loaded package with its syntax and type information.
type Package struct {
	Path  string // import path
	Dir   string // directory on disk
	Name  string // package name
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Lookup returns the loaded package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// LoadModule loads the module rooted at dir, reading the module path from
// its go.mod. All packages are parsed (with comments — the waiver and
// annotation grammar lives there) and type-checked; any parse or type error
// fails the load, because the analyzers depend on complete type information.
func LoadModule(dir string) (*Module, error) {
	path, err := moduleGoModPath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	return LoadTree(dir, path)
}

// LoadTree loads every package under dir as if it were a module named
// modPath. It is LoadModule without the go.mod requirement, used by the
// analyzer fixture tests.
func LoadTree(dir, modPath string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	m := &Module{
		Dir:    abs,
		Path:   modPath,
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
	}

	srcs, err := discover(abs, modPath)
	if err != nil {
		return nil, err
	}
	for _, s := range srcs {
		for _, name := range s.filenames {
			f, err := parser.ParseFile(m.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			s.files = append(s.files, f)
		}
	}

	imp := &moduleImporter{
		mod:  m,
		srcs: make(map[string]*pkgSrc, len(srcs)),
		std:  importer.ForCompiler(m.Fset, "source", nil),
	}
	for _, s := range srcs {
		imp.srcs[s.path] = s
	}
	for _, s := range srcs {
		if _, err := imp.Import(s.path); err != nil {
			return nil, err
		}
	}

	for _, s := range srcs {
		m.Pkgs = append(m.Pkgs, s.pkg)
		m.byPath[s.path] = s.pkg
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
	return m, nil
}

// moduleGoModPath extracts the module path from a go.mod file.
func moduleGoModPath(file string) (string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", file)
}

// pkgSrc is one discovered package directory awaiting type-check.
type pkgSrc struct {
	path      string
	dir       string
	filenames []string
	files     []*ast.File
	pkg       *Package
	checking  bool
}

// discover walks the module tree and returns one pkgSrc per directory that
// holds non-test Go files. testdata, hidden, and underscore directories are
// skipped, matching the go tool's own package discovery.
func discover(root, modPath string) ([]*pkgSrc, error) {
	byDir := make(map[string]*pkgSrc)
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		dir := filepath.Dir(p)
		s := byDir[dir]
		if s == nil {
			rel, err := filepath.Rel(root, dir)
			if err != nil {
				return err
			}
			ipath := modPath
			if rel != "." {
				ipath = modPath + "/" + filepath.ToSlash(rel)
			}
			s = &pkgSrc{path: ipath, dir: dir}
			byDir[dir] = s
		}
		s.filenames = append(s.filenames, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	srcs := make([]*pkgSrc, 0, len(byDir))
	for _, s := range byDir {
		sort.Strings(s.filenames)
		srcs = append(srcs, s)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i].path < srcs[j].path })
	return srcs, nil
}

// moduleImporter resolves module-internal import paths against the loaded
// sources (type-checking them on demand, memoized) and delegates everything
// else to the stdlib source importer. The module has zero dependencies, so
// "everything else" is exactly the standard library.
type moduleImporter struct {
	mod  *Module
	srcs map[string]*pkgSrc
	std  types.Importer
}

func (imp *moduleImporter) Import(path string) (*types.Package, error) {
	s, ok := imp.srcs[path]
	if !ok {
		return imp.std.Import(path)
	}
	if s.pkg != nil {
		return s.pkg.Types, nil
	}
	if s.checking {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	s.checking = true
	defer func() { s.checking = false }()

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, imp.mod.Fset, s.files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	s.pkg = &Package{
		Path:  path,
		Dir:   s.dir,
		Name:  tpkg.Name(),
		Files: s.files,
		Types: tpkg,
		Info:  info,
	}
	return tpkg, nil
}
