package lint

import (
	"go/token"
	"strings"
)

// waiverPrefix introduces a suppression comment: //lint:<key> <reason>.
// The reason is mandatory — a bare //lint:<key> is itself a finding.
const waiverPrefix = "//lint:"

// waiverSet indexes every well-formed waiver by (key, file, line) and
// collects grammar problems (unknown keys, missing reasons) as findings.
// Each well-formed waiver tracks whether it suppressed anything: a waiver
// whose analyzer ran but that covered zero findings is stale — the code it
// excused was fixed or deleted — and is itself reported, so waivers cannot
// quietly outlive their justification.
type waiverSet struct {
	byKey   map[string]map[string]map[int]*waiverRecord // key -> file -> line
	records []*waiverRecord                             // in scan order
	problems []waiverProblem
}

type waiverRecord struct {
	key  string
	pkg  string
	pos  token.Position
	used bool
}

type waiverProblem struct {
	pkg string
	pos token.Position
	msg string
}

// covers reports whether a finding of the given waiver key at position p is
// suppressed: a well-formed waiver for that key on the same line (trailing
// comment) or the line directly above (preceding comment line). A covering
// waiver is marked used.
func (ws *waiverSet) covers(key string, p token.Position) bool {
	lines := ws.byKey[key][p.Filename]
	for _, ln := range [2]int{p.Line, p.Line - 1} {
		if r := lines[ln]; r != nil {
			r.used = true
			return true
		}
	}
	return false
}

// stale returns one problem per well-formed waiver that suppressed nothing,
// restricted to keys whose analyzer actually ran this invocation (a waiver
// for a disabled analyzer is not evidence of anything).
func (ws *waiverSet) stale(ran func(key string) bool) []waiverProblem {
	var out []waiverProblem
	for _, r := range ws.records {
		if r.used || !ran(r.key) {
			continue
		}
		out = append(out, waiverProblem{
			pkg: r.pkg, pos: r.pos,
			msg: "stale waiver //lint:" + r.key + " suppresses no findings; delete it",
		})
	}
	return out
}

// validKeys renders the known waiver keys for the unknown-key diagnostic.
func validKeys() string {
	var keys []string
	for _, a := range Analyzers() {
		keys = append(keys, a.WaiverKey)
	}
	return strings.Join(keys, ", ")
}

// collectWaivers scans every comment in the module for the waiver grammar.
func collectWaivers(mod *Module) *waiverSet {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.WaiverKey] = true
	}
	ws := &waiverSet{byKey: make(map[string]map[string]map[int]*waiverRecord)}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, waiverPrefix)
					if !ok {
						continue
					}
					key, reason, _ := strings.Cut(rest, " ")
					reason = strings.TrimSpace(reason)
					p := mod.Fset.Position(c.Pos())
					switch {
					case !known[key]:
						ws.problems = append(ws.problems, waiverProblem{
							pkg: pkg.Path, pos: p,
							msg: "unknown waiver key " + strings.Trim(key, ":") + " (valid: " + validKeys() + ")",
						})
					case reason == "":
						ws.problems = append(ws.problems, waiverProblem{
							pkg: pkg.Path, pos: p,
							msg: "waiver //lint:" + key + " lacks a reason — every waiver must say why the rule does not apply",
						})
					default:
						perFile := ws.byKey[key]
						if perFile == nil {
							perFile = make(map[string]map[int]*waiverRecord)
							ws.byKey[key] = perFile
						}
						lines := perFile[p.Filename]
						if lines == nil {
							lines = make(map[int]*waiverRecord)
							perFile[p.Filename] = lines
						}
						r := &waiverRecord{key: key, pkg: pkg.Path, pos: p}
						lines[p.Line] = r
						ws.records = append(ws.records, r)
					}
				}
			}
		}
	}
	return ws
}
