package lint

import (
	"go/token"
	"strings"
)

// waiverPrefix introduces a suppression comment: //lint:<key> <reason>.
// The reason is mandatory — a bare //lint:<key> is itself a finding.
const waiverPrefix = "//lint:"

// waiverSet indexes every well-formed waiver by (key, file, line) and
// collects grammar problems (unknown keys, missing reasons) as findings.
type waiverSet struct {
	byKey    map[string]map[string]map[int]bool // key -> file -> line
	problems []waiverProblem
}

type waiverProblem struct {
	pkg string
	pos token.Position
	msg string
}

// covers reports whether a finding of the given waiver key at position p is
// suppressed: a well-formed waiver for that key on the same line (trailing
// comment) or the line directly above (preceding comment line).
func (ws *waiverSet) covers(key string, p token.Position) bool {
	lines := ws.byKey[key][p.Filename]
	return lines[p.Line] || lines[p.Line-1]
}

// collectWaivers scans every comment in the module for the waiver grammar.
func collectWaivers(mod *Module) *waiverSet {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.WaiverKey] = true
	}
	ws := &waiverSet{byKey: make(map[string]map[string]map[int]bool)}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, waiverPrefix)
					if !ok {
						continue
					}
					key, reason, _ := strings.Cut(rest, " ")
					reason = strings.TrimSpace(reason)
					p := mod.Fset.Position(c.Pos())
					switch {
					case !known[key]:
						ws.problems = append(ws.problems, waiverProblem{
							pkg: pkg.Path, pos: p,
							msg: "unknown waiver key " + strings.Trim(key, ":") + " (valid: ordered, wallclock, alloc, shardsafe)",
						})
					case reason == "":
						ws.problems = append(ws.problems, waiverProblem{
							pkg: pkg.Path, pos: p,
							msg: "waiver //lint:" + key + " lacks a reason — every waiver must say why the rule does not apply",
						})
					default:
						perFile := ws.byKey[key]
						if perFile == nil {
							perFile = make(map[string]map[int]bool)
							ws.byKey[key] = perFile
						}
						lines := perFile[p.Filename]
						if lines == nil {
							lines = make(map[int]bool)
							perFile[p.Filename] = lines
						}
						lines[p.Line] = true
					}
				}
			}
		}
	}
	return ws
}
