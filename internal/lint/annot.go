package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// Ownership annotation grammar (doc or trailing comments):
//
//	//vsnoop:owned            on a struct type: values are domain-owned —
//	                          handler code may touch them only when they
//	                          belong to the executing domain.
//	//vsnoop:owned table      on a struct field: a cross-domain ownership
//	                          table (e.g. Machine.doms, Machine.replicas,
//	                          Machine.cores). The element's owner is a pure
//	                          function of the index (domain i for per-domain
//	                          tables, the planner's CoreDom for per-core
//	                          ones), so indexing with anything not derived
//	                          from the handler's own inputs — enumerating
//	                          the table, a constant that is not the
//	                          statically known executing domain — yields a
//	                          foreign value.
//	//vsnoop:owned const      on a struct field: runtime-immutable identity
//	                          (domain.idx, holderProbe.srcDom). Readable
//	                          from any domain — it is how deposits compute
//	                          their destination — but never writable.
//	//vsnoop:owned ref        on a struct field: a same-domain reference
//	                          wired once at setup (a core controller's
//	                          pointer to its own domain's filter replica).
//	                          Reads stay domain-local by construction.
//	//vsnoop:handler [dom=N]  on a function: an additional analysis root
//	                          that runs in handler context; dom=N records
//	                          the statically known executing domain.
const (
	ownedMarker   = "//vsnoop:owned"
	handlerMarker = "//vsnoop:handler"
)

// ownership is the module-wide annotation index consumed by domainown.
type ownership struct {
	structs map[*types.TypeName]bool // //vsnoop:owned
	consts  map[*types.Var]bool      // //vsnoop:owned const
	tables  map[*types.Var]bool      // //vsnoop:owned table
	refs    map[*types.Var]bool      // //vsnoop:owned ref
	// handlers maps annotated root functions to their static domain
	// (domValue many when no dom=N was given).
	handlers map[*types.Func]domValue
}

func (o *ownership) empty() bool {
	return len(o.structs) == 0 && len(o.consts) == 0 && len(o.tables) == 0 && len(o.refs) == 0
}

// collectOwnership scans every package for the annotation grammar.
func collectOwnership(mod *Module) *ownership {
	o := &ownership{
		structs:  make(map[*types.TypeName]bool),
		consts:   make(map[*types.Var]bool),
		tables:   make(map[*types.Var]bool),
		refs:     make(map[*types.Var]bool),
		handlers: make(map[*types.Func]domValue),
	}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if ok, dom := handlerAnnotation(d.Doc); ok {
						if obj, k := pkg.Info.Defs[d.Name].(*types.Func); k {
							o.handlers[obj] = dom
						}
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						doc := ts.Doc
						if doc == nil && len(d.Specs) == 1 {
							doc = d.Doc
						}
						if hasMarker(doc, ownedMarker) {
							if obj, k := pkg.Info.Defs[ts.Name].(*types.TypeName); k {
								o.structs[obj] = true
							}
						}
						st, ok := ts.Type.(*ast.StructType)
						if !ok {
							continue
						}
						for _, fld := range st.Fields.List {
							kind := fieldOwnedKind(fld)
							if kind == "" {
								continue
							}
							for _, name := range fld.Names {
								v, k := pkg.Info.Defs[name].(*types.Var)
								if !k {
									continue
								}
								switch kind {
								case "table":
									o.tables[v] = true
								case "const":
									o.consts[v] = true
								case "ref":
									o.refs[v] = true
								}
							}
						}
					}
				}
			}
		}
	}
	return o
}

// hasMarker reports whether any comment line, trimmed, is exactly the
// marker (the annotation is the whole line, by convention the last one).
func hasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}

// markerLine returns the trimmed suffix after the marker on the line that
// starts with it, or "" when absent. "//vsnoop:owned table" -> "table".
func markerLine(cg *ast.CommentGroup, marker string) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		t := strings.TrimSpace(c.Text)
		if rest, ok := strings.CutPrefix(t, marker+" "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// fieldOwnedKind extracts table/const/ref from a field's doc or trailing
// comment.
func fieldOwnedKind(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if k := markerLine(cg, ownedMarker); k == "table" || k == "const" || k == "ref" {
			return k
		}
	}
	return ""
}

// handlerAnnotation parses //vsnoop:handler and an optional dom=N.
func handlerAnnotation(doc *ast.CommentGroup) (bool, domValue) {
	if doc == nil {
		return false, domValue{}
	}
	for _, c := range doc.List {
		t := strings.TrimSpace(c.Text)
		if t == handlerMarker {
			return true, domMany()
		}
		if rest, ok := strings.CutPrefix(t, handlerMarker+" "); ok {
			for _, f := range strings.Fields(rest) {
				if ns, ok := strings.CutPrefix(f, "dom="); ok {
					if n, err := strconv.ParseInt(ns, 10, 64); err == nil {
						return true, domKnown(n)
					}
				}
			}
			return true, domMany()
		}
	}
	return false, domValue{}
}

// ownedType reports whether t (possibly behind pointers) is an annotated
// domain-owned struct type.
func (o *ownership) ownedType(t types.Type) bool {
	for t != nil {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			if o.structs[u.Obj()] {
				return true
			}
			t = u.Underlying()
		default:
			return false
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// domValue: the static-domain lattice — unset < known(N) < many.

type domValue struct {
	state uint8 // 0 unset, 1 known, 2 many
	val   int64
}

func domKnown(n int64) domValue { return domValue{state: 1, val: n} }
func domMany() domValue         { return domValue{state: 2} }

func (d domValue) isKnown() bool { return d.state == 1 }

// join widens the receiver by other, reporting change.
func (d *domValue) join(other domValue) bool {
	switch {
	case other.state == 0 || d.state == 2:
		return false
	case d.state == 0:
		*d = other
		return true
	case other.state == 2 || (other.state == 1 && other.val != d.val):
		d.state, d.val = 2, 0
		return true
	}
	return false
}
