package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"vsnoop/internal/lint/ir"
)

// shardSafeAnalyzer guards the PR-3 conservative-PDES contract: event
// handlers run concurrently on shard goroutines, so code reachable from a
// handler must not communicate except through the internal/sim mailbox API
// (Engine.ScheduleFnAtDom routes cross-domain events into per-(src,dst)
// boxes drained at barriers). The analyzer:
//
//  1. collects handler roots — function literals and named functions that
//     are (a) arguments to Schedule / ScheduleAt / ScheduleFn /
//     ScheduleFnAt / ScheduleFnAtDom / SetHandler / Attach calls, or
//     (b) used as values of handler shape (func(interface{}) ~
//     mesh.Handler, func(interface{}, uint64) ~ sim.HandlerFn);
//  2. walks the static call graph from those roots (direct calls plus any
//     use of a module function as a value);
//  3. flags, in every reachable function outside internal/sim, the
//     constructs that bypass the mailbox: goroutine launches, channel
//     operations (send, receive, close, select, range-over-channel), and
//     writes to package-level variables — including writes laundered
//     through local pointer aliases (p := &shared; p.f = v), which a
//     flow-sensitive pass over the internal/lint/ir CFG resolves back to
//     the package-level storage they mutate (see shardalias.go).
//
// internal/sim itself is exempt — it IS the mailbox implementation and
// its internal synchronization (barriers, runner goroutines) is the
// mechanism the rest of the module is required to use. Dynamic dispatch
// (interface method calls, func-typed fields) is not resolved; that is a
// documented soundness limit, mitigated by rooting every handler-shaped
// function value at its creation site.
//
// A second, package-wide rule confines sync/atomic: the only permitted
// cross-shard atomics in sim-critical packages are the fields of the
// internal/sim synchronization structs (barrier, shardSlot, mailbox,
// ShardedEngine) — the adaptive protocol's EOT words, mailbox locks, and
// termination counters, whose memory-order obligations are argued in
// internal/sim/adaptive.go. Any other atomic declaration, or any legacy
// atomic.AddX/LoadX-style call, in a critical package is a finding: ad-hoc
// atomics are how nondeterminism sneaks past the deposit discipline.
var shardSafeAnalyzer = &Analyzer{
	Name:      "shardsafe",
	Doc:       "flags handler-reachable code that bypasses the sim mailbox, and atomics outside internal/sim's synchronization structs",
	WaiverKey: "shardsafe",
	Run:       runShardSafe,
}

// atomicStructAllowlist names the internal/sim structs whose atomic fields
// implement the sharded synchronization protocol (plus the Canceler control
// word polled by StepChecked). Only fields of these structs, in a package
// whose import path ends in internal/sim, may have sync/atomic types
// without a waiver.
var atomicStructAllowlist = map[string]bool{
	"barrier": true, "shardSlot": true, "mailbox": true, "ShardedEngine": true,
	"Canceler": true,
}

// schedulerFuncs are method/function names whose function-typed arguments
// execute in handler context.
var schedulerFuncs = map[string]bool{
	"Schedule": true, "ScheduleAt": true,
	"ScheduleFn": true, "ScheduleFnAt": true, "ScheduleFnAtDom": true,
	"SetHandler": true, "Attach": true,
}

// shardWork is one node of the reachability walk: a function body plus the
// package whose types.Info describes it. node is the *ast.FuncDecl or
// *ast.FuncLit, for building the body's IR.
type shardWork struct {
	pkg  *Package
	name string
	body *ast.BlockStmt
	node ast.Node
}

func runShardSafe(mod *Module, opts Options, report ReportFn) {
	runAtomicConfinement(mod, opts, report)
	simPath := mod.Path + "/internal/sim"

	// Registry: every module function with a body, by its types object.
	type declSite struct {
		pkg *Package
		fd  *ast.FuncDecl
	}
	registry := make(map[*types.Func]declSite)
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						registry[obj] = declSite{pkg, fd}
					}
				}
			}
		}
	}

	var (
		queue       []shardWork
		seenFunc    = make(map[*types.Func]bool)
		seenLit     = make(map[*ast.FuncLit]bool)
		rootedUnder = make(map[*ast.FuncLit]bool) // lits enqueued as roots; skip when met inline
	)
	enqueueFunc := func(obj *types.Func) {
		if obj == nil || seenFunc[obj] {
			return
		}
		site, ok := registry[obj]
		if !ok || site.pkg.Path == simPath {
			return
		}
		seenFunc[obj] = true
		queue = append(queue, shardWork{site.pkg, obj.Name(), site.fd.Body, site.fd})
	}
	enqueueExpr := func(pkg *Package, e ast.Expr) {
		switch x := unparen(e).(type) {
		case *ast.FuncLit:
			if pkg.Path != simPath && !seenLit[x] {
				seenLit[x] = true
				rootedUnder[x] = true
				queue = append(queue, shardWork{pkg, "func literal", x.Body, x})
			}
		case *ast.Ident:
			if obj, ok := pkg.Info.Uses[x].(*types.Func); ok {
				enqueueFunc(obj)
			}
		case *ast.SelectorExpr:
			if obj, ok := pkg.Info.Uses[x.Sel].(*types.Func); ok {
				enqueueFunc(obj)
			}
		}
	}

	// Root collection: scheduler-call arguments and handler-shaped values.
	for _, pkg := range mod.Pkgs {
		if pkg.Path == simPath {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.CallExpr:
					if sel, ok := unparen(x.Fun).(*ast.SelectorExpr); ok && schedulerFuncs[sel.Sel.Name] {
						for _, arg := range x.Args {
							if t := pkg.Info.TypeOf(arg); t != nil {
								if _, isFn := t.Underlying().(*types.Signature); isFn {
									enqueueExpr(pkg, arg)
								}
							}
						}
					}
				case *ast.FuncLit:
					if isHandlerShape(pkg.Info.TypeOf(x)) {
						enqueueExpr(pkg, x)
					}
				case *ast.Ident:
					// Shape-check TypeOf(x), not obj.Type(): a method value's
					// expression type has the receiver stripped, which is the
					// shape the handler registries see.
					if obj, ok := pkg.Info.Uses[x].(*types.Func); ok && isHandlerShape(pkg.Info.TypeOf(x)) {
						enqueueFunc(obj)
					}
				case *ast.SelectorExpr:
					if obj, ok := pkg.Info.Uses[x.Sel].(*types.Func); ok && isHandlerShape(pkg.Info.TypeOf(x)) {
						enqueueFunc(obj)
					}
				}
				return true
			})
		}
	}

	// Reachability walk. Func literals nested in a scanned body are scanned
	// in place (they run, or are re-scheduled, in handler context too).
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		info := w.pkg.Info
		flag := func(pos token.Pos, what string) {
			report(w.pkg, pos, "shard-handler-reachable "+w.name+" "+what+
				"; cross-domain communication must go through the sim mailbox (Engine.ScheduleFnAtDom)")
		}
		ast.Inspect(w.body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				if rootedUnder[x] {
					return false // scanned as its own root
				}
				seenLit[x] = true
			case *ast.GoStmt:
				flag(x.Pos(), "launches a goroutine")
			case *ast.SendStmt:
				flag(x.Pos(), "sends on a channel")
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					flag(x.Pos(), "receives from a channel")
				}
			case *ast.SelectStmt:
				flag(x.Pos(), "selects on channels")
			case *ast.RangeStmt:
				if t := info.TypeOf(x.X); t != nil {
					if _, isCh := t.Underlying().(*types.Chan); isCh {
						flag(x.For, "ranges over a channel")
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if v := packageLevelTarget(info, lhs); v != nil {
						flag(lhs.Pos(), "writes package-level variable "+v.Name())
					}
				}
			case *ast.IncDecStmt:
				if v := packageLevelTarget(info, x.X); v != nil {
					flag(x.Pos(), "writes package-level variable "+v.Name())
				}
			case *ast.CallExpr:
				if builtinName(info, x) == "close" {
					flag(x.Pos(), "closes a channel")
				}
				enqueueExpr(w.pkg, x.Fun)
			case *ast.Ident:
				if obj, ok := info.Uses[x].(*types.Func); ok {
					enqueueFunc(obj)
				}
			}
			return true
		})
		// Flow-sensitive half: the same write rule through local aliases.
		var fnIR *ir.Func
		switch d := w.node.(type) {
		case *ast.FuncDecl:
			fnIR = ir.BuildDecl(info, d)
		case *ast.FuncLit:
			fnIR = ir.BuildLit(info, d)
		}
		scanAliases(w.pkg, fnIR, nil, flag, rootedUnder)
	}
}

// isHandlerShape reports whether t is one of the two handler signatures:
// func(interface{}) (mesh.Handler) or func(interface{}, uint64)
// (sim.HandlerFn). Named types with those underlying shapes match too.
func isHandlerShape(t types.Type) bool {
	if t == nil {
		return false
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Results().Len() != 0 || sig.Recv() != nil {
		return false
	}
	p := sig.Params()
	switch p.Len() {
	case 1:
		return isEmptyInterface(p.At(0).Type())
	case 2:
		if !isEmptyInterface(p.At(0).Type()) {
			return false
		}
		b, ok := p.At(1).Type().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Uint64
	}
	return false
}

func isEmptyInterface(t types.Type) bool {
	i, ok := t.Underlying().(*types.Interface)
	return ok && i.NumMethods() == 0
}

// runAtomicConfinement is the declaration-site half of the shard-isolation
// contract: it flags every sync/atomic-typed declaration (struct fields,
// package-level and local variables) and every legacy atomic.* function
// call in the sim-critical packages, except the fields of the allowlisted
// internal/sim synchronization structs. Flagging declarations rather than
// each Load/Store keeps waivers at the point where the judgment call is
// made — the decision to hold shared mutable state at all.
func runAtomicConfinement(mod *Module, opts Options, report ReportFn) {
	for _, pkg := range mod.Pkgs {
		if !opts.Critical(pkg.Path) {
			continue
		}
		inSim := strings.HasSuffix(pkg.Path, "internal/sim")
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.TypeSpec:
					st, ok := x.Type.(*ast.StructType)
					if !ok {
						return true
					}
					allowed := inSim && atomicStructAllowlist[x.Name.Name]
					for _, fld := range st.Fields.List {
						if allowed || !isAtomicType(pkg.Info.TypeOf(fld.Type)) {
							continue
						}
						report(pkg, fld.Pos(), "atomic field in struct "+x.Name.Name+
							" outside the internal/sim synchronization structs (barrier, shardSlot, mailbox, ShardedEngine); cross-shard state must go through the sim deposit API")
					}
				case *ast.ValueSpec:
					for _, name := range x.Names {
						obj, ok := pkg.Info.Defs[name].(*types.Var)
						if !ok || !isAtomicType(obj.Type()) {
							continue
						}
						report(pkg, name.Pos(), "atomic variable "+name.Name+
							" in a sim-critical package; cross-shard atomics are confined to internal/sim's synchronization structs")
					}
				case *ast.CallExpr:
					sel, ok := unparen(x.Fun).(*ast.SelectorExpr)
					if !ok {
						return true
					}
					id, ok := sel.X.(*ast.Ident)
					if !ok {
						return true
					}
					if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "sync/atomic" {
						// Type conversions and constructors are covered by the
						// declaration checks; only function-style operations on
						// ad-hoc words (atomic.AddUint64 etc.) reach here.
						if _, isSig := pkg.Info.TypeOf(x.Fun).(*types.Signature); isSig {
							report(pkg, x.Pos(), "atomic."+sel.Sel.Name+
								" call in a sim-critical package; cross-shard atomics are confined to internal/sim's synchronization structs")
						}
					}
				}
				return true
			})
		}
	}
}

// isAtomicType reports whether t (or its pointee) is a named type from
// sync/atomic.
func isAtomicType(t types.Type) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// packageLevelTarget resolves an assignment target to the package-level
// variable it mutates, or nil. It unwraps selectors, indexing, and derefs
// to the base identifier: writing g.Field or g[i] mutates g just the same.
func packageLevelTarget(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := unparen(e).(type) {
		case *ast.SelectorExpr:
			// A qualified reference pkg.Var is a base, not a field access.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					e = x.Sel
					continue
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			v, ok := info.Uses[x].(*types.Var)
			if ok && isPackageLevel(v) && !strings.HasPrefix(x.Name, "_") {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}
