// Package core implements virtual snooping, the paper's contribution: a
// snoop filter that confines coherence requests to a VM's *virtual snoop
// domain*.
//
// Each core has a vCPU map register listing the physical cores the VM
// currently running on it must snoop (Section IV.A). The hypervisor keeps
// the registers of a VM's cores synchronized, so this package maintains
// one canonical map per VM. Requests to VM-private pages are multicast to
// the map; RW-shared pages (hypervisor data, inter-VM channels) are
// broadcast; RO-shared (content-shared) pages follow a configurable
// optimization (Section VI.B).
//
// Three relocation policies are provided (Section IV.B):
//
//   - Base: cores are added to a map when a vCPU lands on them and are
//     never removed, so long-lived VMs eventually snoop everything.
//   - Counter: per-VM cache residence counters remove a core as soon as
//     the VM's last block leaves its cache.
//   - CounterThreshold: cores are removed speculatively once the counter
//     falls below a threshold; correctness comes from Token Coherence's
//     safe retries (the protocol broadcasts after two failed attempts).
package core

import (
	"fmt"
	"math/bits"

	"vsnoop/internal/cache"
	"vsnoop/internal/mem"
	"vsnoop/internal/mesh"
	"vsnoop/internal/sim"
	"vsnoop/internal/stats"
	"vsnoop/internal/token"
)

// Policy selects the destination-set policy for VM-private pages.
type Policy int

const (
	// PolicyBroadcast is the TokenB baseline: snoop every core.
	PolicyBroadcast Policy = iota
	// PolicyBase is virtual snooping without map cleanup (vsnoop-base).
	PolicyBase
	// PolicyCounter removes cores whose residence counter reaches zero.
	PolicyCounter
	// PolicyCounterThreshold removes cores speculatively below Threshold.
	PolicyCounterThreshold
	// PolicyCounterFlush removes cores by *flushing* the VM's remaining
	// blocks once the counter falls below Threshold — the selective-flush
	// alternative Section IV.B sketches ("a straightforward solution ...
	// is to flush the cache selectively for a specific VM, if the counter
	// is decreased under a threshold"). Unlike counter-threshold it needs
	// no protocol retry support, at the cost of extra writeback traffic.
	PolicyCounterFlush
)

func (p Policy) String() string {
	return [...]string{"tokenB", "vsnoop-base", "counter", "counter-threshold", "counter-flush"}[p]
}

// ContentPolicy selects how RO-shared (content-shared) page requests are
// routed (Section VI.B).
type ContentPolicy int

const (
	// ContentBroadcast snoops every core (the unoptimized default).
	ContentBroadcast ContentPolicy = iota
	// ContentMemoryDirect sends the request to memory only.
	ContentMemoryDirect
	// ContentIntraVM snoops only the requesting VM's map (plus memory).
	ContentIntraVM
	// ContentFriendVM snoops the requesting VM's map and its friend VM's
	// map (plus memory).
	ContentFriendVM
)

func (p ContentPolicy) String() string {
	return [...]string{"vsnoop-broadcast", "memory-direct", "intra-VM", "friend-VM"}[p]
}

// Config configures a Filter.
type Config struct {
	Policy    Policy
	Content   ContentPolicy
	Threshold int // counter-threshold cutoff (the paper uses 10)
}

// Filter is the virtual-snooping destination-set engine. It implements
// token.Router.
//
// Per-VM core sets are stored exactly as the paper's hardware holds them
// (Section IV.A): each VM's vCPU map is a bit-vector register with one bit
// per physical core, kept here as words of a flat uint64 array indexed by
// mem.DenseVM. Destination sets fall out of bitmask arithmetic (mask, or,
// and-not, popcount) and bits enumerate in ascending core order, which is
// the deterministic send order the simulator requires.
//
// In syncMode partitioned runs each domain owns one replica: a handler may
// only touch the replica of the domain it executes in, and updates reach
// the other replicas as ordered cross-shard deltas (Apply* methods ride
// the deposit path).
//
//vsnoop:owned
type Filter struct {
	cfg       Config
	eng       *sim.Engine
	coreNodes []mesh.NodeID // core index -> network endpoint
	nw        int           // uint64 words per per-VM bit-vector

	// mapBits holds the canonical per-VM vCPU map registers: nw words per
	// dense VM id, bit c set when core c is in the VM's map.
	mapBits []uint64
	// runBits: bit c set when a vCPU of the VM currently runs on core c.
	runBits []uint64
	// pendBits/pendAt record departures awaiting counter-triggered removal
	// (bit set + departure cycle), feeding the Figure 9 removal-period CDF.
	pendBits []uint64
	pendAt   []sim.Cycle // len(coreNodes) slots per dense VM id

	// allBut[i] is the precomputed broadcast destination set excluding core
	// i (exact capacity: appending to it always copies).
	allBut [][]mesh.NodeID

	// caches[i] is core i's L2, consulted for residence counters
	caches []*cache.Cache

	friends map[mem.VMID]mem.VMID

	// RemovalPeriods collects cycles from vCPU departure until the core
	// left the vCPU map (Figure 9).
	RemovalPeriods stats.CDF

	// MapSyncs counts vCPU-map register synchronizations (adds/removes).
	MapSyncs uint64

	// OnFlushVM, wired by the system layer, flushes a VM's blocks from a
	// core's cache (writing tokens back to memory). Required by
	// PolicyCounterFlush.
	OnFlushVM func(core int, vm mem.VMID)

	// OnMapRemove, if set, observes every map-bit removal this replica
	// performs on its own authority (counter policies, departures). The
	// partitioned machine uses it to broadcast the removal to the other
	// domains' replicas as an ordered cross-shard delta. Delta application
	// (ApplyMapClear) never fires it, so replication cannot loop.
	OnMapRemove func(vm mem.VMID, core int)

	// Flushes counts selective-flush events.
	Flushes uint64

	// DegradationEnabled gates graceful map degradation. The system layer
	// sets it only when a fault plan is active, so fault-free runs take
	// exactly the pre-degradation code paths (byte-identical results).
	DegradationEnabled bool

	// slots holds per-dense-VM degradation state (suspicion level while a
	// map is suspected stale, fallback counters, the counter-augmented
	// scratch buffer, and the VM's clock/scan scope). One flat value slot
	// per VM keeps each VM's state confined to the shard that owns it, so
	// degradation under fault load never shares mutable state across shard
	// goroutines.
	slots []vmSlot
}

// vmSlot is one VM's degradation state: at level 1 private requests use the
// counter-augmented map (map plus every core still holding the VM's data);
// at level 2 they broadcast and the map is rebuilt. Suspicion decays after
// suspectWindow cycles without a new trigger — the safety argument (paper
// Section IV) makes the map advisory, so decay can never break correctness,
// only restore filtering efficiency.
type vmSlot struct {
	level int
	until sim.Cycle

	// Degradation statistics (whole-run; summed by the accessor methods).
	fallbackAug   uint64 // private routes served by the counter-augmented map
	fallbackBroad uint64 // private routes served by full broadcast
	rebuilds      uint64 // maps reconstructed from running + resident state
	underflows    uint64 // residence-counter underflows recovered

	// scratch is this VM's reusable word buffer for counter-augmented sets
	// (lazily allocated; per-VM so concurrent shards never share it).
	scratch []uint64
	// scanCores restricts residence scans to these cores (nil = all).
	// Sharded runs set a VM's quadrant, which is exact: its data can only
	// reside in caches its vCPUs have run on.
	scanCores []int
	// eng supplies this VM's clock for suspicion windows (nil = the
	// filter's engine; sharded runs set the owning domain's engine).
	eng *sim.Engine
}

// suspectWindow is how long a suspicion lasts past its latest trigger.
const suspectWindow sim.Cycle = 50_000

// NewFilter builds a filter over the given cores. caches may be nil when
// the counter policies are unused (e.g. the broadcast baseline).
func NewFilter(eng *sim.Engine, cfg Config, coreNodes []mesh.NodeID, caches []*cache.Cache) *Filter {
	return NewFilterScoped(eng, cfg, coreNodes, caches, nil)
}

// NewFilterScoped builds a filter replica that hooks residence-counter
// callbacks only for the cores listed in owned (nil = all). The partitioned
// machine builds one replica per snoop domain over that domain's cores, so
// each cache reports residence triggers to exactly one replica — the one
// whose domain executes that cache's events — while the full register file
// is replicated everywhere and kept coherent by cross-shard deltas.
func NewFilterScoped(eng *sim.Engine, cfg Config, coreNodes []mesh.NodeID, caches []*cache.Cache, owned []int) *Filter {
	if cfg.Policy == PolicyCounterThreshold && cfg.Threshold <= 0 {
		cfg.Threshold = 10
	}
	if cfg.Policy == PolicyCounterFlush && cfg.Threshold <= 0 {
		cfg.Threshold = 10
	}
	f := &Filter{
		cfg:       cfg,
		eng:       eng,
		coreNodes: coreNodes,
		nw:        (len(coreNodes) + 63) / 64,
		caches:    caches,
		friends:   make(map[mem.VMID]mem.VMID),
	}
	f.allBut = make([][]mesh.NodeID, len(coreNodes))
	for i := range coreNodes {
		s := make([]mesh.NodeID, 0, len(coreNodes)-1)
		for j, n := range coreNodes {
			if j != i {
				s = append(s, n)
			}
		}
		f.allBut[i] = s
	}
	// Wire residence-counter callbacks for the owned cores.
	hook := func(i int) {
		c := caches[i]
		if c == nil {
			return
		}
		switch cfg.Policy {
		case PolicyCounter:
			c.OnResidenceZero = func(vm mem.VMID) { f.tryRemove(vm, i, 0) }
		case PolicyCounterThreshold:
			c.Threshold = cfg.Threshold
			c.OnResidenceBelow = func(vm mem.VMID, n int) { f.tryRemove(vm, i, n) }
		case PolicyCounterFlush:
			c.Threshold = cfg.Threshold
			c.OnResidenceBelow = func(vm mem.VMID, n int) { f.tryFlush(vm, i, n) }
		}
	}
	switch cfg.Policy {
	case PolicyCounter, PolicyCounterThreshold, PolicyCounterFlush:
		if owned != nil {
			for _, i := range owned {
				hook(i)
			}
		} else {
			for i := range caches {
				hook(i)
			}
		}
	}
	return f
}

// Config returns the filter configuration.
func (f *Filter) Config() Config { return f.cfg }

// SetFriend records vm's friend VM for the friend-VM content policy.
func (f *Filter) SetFriend(vm, friend mem.VMID) { f.friends[vm] = friend }

// ensure grows the per-VM register files to cover vm and returns its
// dense index. Growth happens only on a VM's first appearance.
//vsnoop:hotpath
func (f *Filter) ensure(vm mem.VMID) int {
	d := mem.DenseVM(vm)
	for (d+1)*f.nw > len(f.mapBits) {
		f.mapBits = append(f.mapBits, make([]uint64, f.nw)...)
		f.runBits = append(f.runBits, make([]uint64, f.nw)...)
		f.pendBits = append(f.pendBits, make([]uint64, f.nw)...)
		f.pendAt = append(f.pendAt, make([]sim.Cycle, len(f.coreNodes))...)
		f.slots = append(f.slots, vmSlot{})
	}
	return d
}

// slot returns vm's degradation slot, growing the register files if needed.
func (f *Filter) slot(vm mem.VMID) *vmSlot { return &f.slots[f.ensure(vm)] }

// slotNow is the clock suspicion windows for this slot are measured on.
func (f *Filter) slotNow(s *vmSlot) sim.Cycle {
	if s.eng != nil {
		return s.eng.Now()
	}
	return f.eng.Now()
}

// SetVMScope confines vm's degradation machinery to its snoop-domain shard:
// residence scans cover only cores (nil = all caches) and suspicion windows
// read eng's clock (nil = the filter's engine). Sharded runs call this at
// setup for every VM, matching the partitioner's core assignment.
func (f *Filter) SetVMScope(vm mem.VMID, cores []int, eng *sim.Engine) {
	s := f.slot(vm)
	s.scanCores = cores
	s.eng = eng
}

// FallbackCounterAug returns the private routes served by the
// counter-augmented map across all VMs.
func (f *Filter) FallbackCounterAug() uint64 {
	var n uint64
	for i := range f.slots {
		n += f.slots[i].fallbackAug
	}
	return n
}

// FallbackBroadcast returns the private routes served by full broadcast.
func (f *Filter) FallbackBroadcast() uint64 {
	var n uint64
	for i := range f.slots {
		n += f.slots[i].fallbackBroad
	}
	return n
}

// MapRebuilds returns the maps reconstructed from running + resident state.
func (f *Filter) MapRebuilds() uint64 {
	var n uint64
	for i := range f.slots {
		n += f.slots[i].rebuilds
	}
	return n
}

// Underflows returns the residence-counter underflows recovered.
func (f *Filter) Underflows() uint64 {
	var n uint64
	for i := range f.slots {
		n += f.slots[i].underflows
	}
	return n
}

// words returns vm's word-slice view of a register file, or nil when the
// VM has never been seen (a read that must not grow the files).
//vsnoop:hotpath
func (f *Filter) words(file []uint64, vm mem.VMID) []uint64 {
	lo := mem.DenseVM(vm) * f.nw
	if lo+f.nw > len(file) {
		return nil
	}
	return file[lo : lo+f.nw]
}

func testBit(w []uint64, c int) bool {
	return w != nil && w[c>>6]&(1<<(uint(c)&63)) != 0
}

func setBit(w []uint64, c int)   { w[c>>6] |= 1 << (uint(c) & 63) }
func clearBit(w []uint64, c int) { w[c>>6] &^= 1 << (uint(c) & 63) }

func popcount(w []uint64) int {
	n := 0
	for _, x := range w {
		n += bits.OnesCount64(x)
	}
	return n
}

// appendCores appends the endpoints of every set bit except requester, in
// ascending core order (the deterministic send order).
//vsnoop:hotpath
func (f *Filter) appendCores(out []mesh.NodeID, w []uint64, requester int) []mesh.NodeID {
	for wi, word := range w {
		base := wi << 6
		for word != 0 {
			c := base + bits.TrailingZeros64(word)
			word &= word - 1
			if c != requester {
				out = append(out, f.coreNodes[c])
			}
		}
	}
	return out
}

// HandleRelocate is the hypervisor hook: vCPU v of a VM moved from core
// `from` (-1 on first placement) to core `to`. The hypervisor adds the new
// core to the VM's map before the VM runs there; the old core stays until
// a counter policy removes it.
//vsnoop:hotpath
func (f *Filter) HandleRelocate(vm mem.VMID, from, to int) {
	d := f.ensure(vm)
	run := f.runBits[d*f.nw : (d+1)*f.nw]
	if from >= 0 {
		clearBit(run, from)
	}
	setBit(run, to)

	m := f.mapBits[d*f.nw : (d+1)*f.nw]
	if !testBit(m, to) {
		setBit(m, to)
		f.MapSyncs++
	}

	if from < 0 || testBit(run, from) {
		return
	}
	f.departCheck(vm, d, from)
}

// departCheck handles a vCPU departure from core `from` once the run bit is
// clear: under the counter policies, remove the core if its data is already
// gone, otherwise record the pending departure feeding the Figure 9 CDF.
//vsnoop:hotpath
func (f *Filter) departCheck(vm mem.VMID, d, from int) {
	switch f.cfg.Policy {
	case PolicyCounter, PolicyCounterThreshold, PolicyCounterFlush:
		n := 0
		if f.caches != nil && f.caches[from] != nil {
			n = f.caches[from].Resident(vm)
		}
		limit := 1 // counter: remove at zero
		if f.cfg.Policy == PolicyCounterThreshold || f.cfg.Policy == PolicyCounterFlush {
			limit = f.cfg.Threshold
		}
		if n < limit {
			f.remove(vm, from)
			if f.cfg.Policy == PolicyCounterFlush && n > 0 && f.OnFlushVM != nil {
				f.Flushes++
				f.OnFlushVM(from, vm)
			}
			return
		}
		setBit(f.pendBits[d*f.nw:(d+1)*f.nw], from)
		f.pendAt[d*len(f.coreNodes)+from] = f.eng.Now()
	}
}

// RelocateDepart is the source-domain half of a cross-shard vCPU move: the
// vCPU left core `from`, so clear the run bit and run the counter-policy
// departure check against this domain's caches (which own core `from`). The
// destination side happens later, in the target domain, via RelocateArrive.
//vsnoop:hotpath
func (f *Filter) RelocateDepart(vm mem.VMID, from int) {
	d := f.ensure(vm)
	clearBit(f.runBits[d*f.nw:(d+1)*f.nw], from)
	f.departCheck(vm, d, from)
}

// RelocateArrive is the destination-domain half of a cross-shard vCPU move:
// the vCPU now runs on core `to`, which the hypervisor adds to the VM's map
// before the VM runs there. MapSyncs is counted here — once per move, on
// the owning domain — never on delta application.
//vsnoop:hotpath
func (f *Filter) RelocateArrive(vm mem.VMID, to int) {
	d := f.ensure(vm)
	setBit(f.runBits[d*f.nw:(d+1)*f.nw], to)
	m := f.mapBits[d*f.nw : (d+1)*f.nw]
	if !testBit(m, to) {
		setBit(m, to)
		f.MapSyncs++
	}
}

// The Apply* methods replay another replica's register update on this one.
// They mutate only the replicated architectural state (run/map/pend bits),
// never the statistics or the departure CDF: every event is counted exactly
// once, on the domain that owns it.

// ApplyRunSet replays a remote run-bit set.
//vsnoop:hotpath
func (f *Filter) ApplyRunSet(vm mem.VMID, core int) {
	d := f.ensure(vm)
	setBit(f.runBits[d*f.nw:(d+1)*f.nw], core)
}

// ApplyRunClear replays a remote run-bit clear.
//vsnoop:hotpath
func (f *Filter) ApplyRunClear(vm mem.VMID, core int) {
	d := f.ensure(vm)
	clearBit(f.runBits[d*f.nw:(d+1)*f.nw], core)
}

// ApplyMapSet replays a remote map addition.
//vsnoop:hotpath
func (f *Filter) ApplyMapSet(vm mem.VMID, core int) {
	d := f.ensure(vm)
	setBit(f.mapBits[d*f.nw:(d+1)*f.nw], core)
}

// ApplyMapClear replays a remote map removal, discarding any pending
// departure record for the core (the owning replica observed the CDF).
//vsnoop:hotpath
func (f *Filter) ApplyMapClear(vm mem.VMID, core int) {
	d := f.ensure(vm)
	clearBit(f.mapBits[d*f.nw:(d+1)*f.nw], core)
	clearBit(f.pendBits[d*f.nw:(d+1)*f.nw], core)
}

// tryRemove handles a residence-counter trigger at core for vm.
//vsnoop:hotpath
func (f *Filter) tryRemove(vm mem.VMID, core int, count int) {
	if testBit(f.words(f.runBits, vm), core) {
		return // still running there: the core must stay in the map
	}
	if !testBit(f.words(f.mapBits, vm), core) {
		return
	}
	f.remove(vm, core)
}

// tryFlush handles a below-threshold trigger under PolicyCounterFlush:
// flush the VM's remaining blocks from the departed core, then remove it.
func (f *Filter) tryFlush(vm mem.VMID, core int, n int) {
	if testBit(f.words(f.runBits, vm), core) || !testBit(f.words(f.mapBits, vm), core) {
		return
	}
	// Remove first: the flush below re-triggers residence callbacks for
	// every invalidated block, and they must find the core already gone.
	f.remove(vm, core)
	if n > 0 && f.OnFlushVM != nil {
		f.Flushes++
		f.OnFlushVM(core, vm)
	}
}

//vsnoop:hotpath
func (f *Filter) remove(vm mem.VMID, core int) {
	d := f.ensure(vm)
	m := f.mapBits[d*f.nw : (d+1)*f.nw]
	if !testBit(m, core) {
		return
	}
	clearBit(m, core)
	f.MapSyncs++
	pend := f.pendBits[d*f.nw : (d+1)*f.nw]
	if testBit(pend, core) {
		f.RemovalPeriods.Observe(float64(f.eng.Now() - f.pendAt[d*len(f.coreNodes)+core]))
		clearBit(pend, core)
	}
	if f.OnMapRemove != nil {
		f.OnMapRemove(vm, core)
	}
}

// NoteEscalation implements token.EscalationSink: a transaction of vm
// escalated to broadcast (level 1) or a persistent request (level 2), which
// under fault load usually means the VM's map excluded a token holder.
func (f *Filter) NoteEscalation(vm mem.VMID, level int) {
	if !f.DegradationEnabled {
		return
	}
	f.SuspectVM(vm, level)
}

// NoteUnderflow records a recovered residence-counter underflow for vm;
// the counters can no longer be trusted, so the map is rebuilt and the VM
// broadcasts until suspicion decays.
func (f *Filter) NoteUnderflow(vm mem.VMID) {
	if !f.DegradationEnabled {
		return
	}
	s := f.slot(vm)
	s.underflows++
	f.SuspectVM(vm, 2)
}

// SuspectVM marks vm's map suspect at the given degradation level (1 =
// counter-augmented map, 2 = broadcast + map rebuild). A repeated trigger
// extends the window; a higher level upgrades it.
func (f *Filter) SuspectVM(vm mem.VMID, level int) {
	if level < 1 {
		level = 1
	}
	if level > 2 {
		level = 2
	}
	s := f.slot(vm)
	if level > s.level {
		s.level = level
	}
	s.until = f.slotNow(s) + suspectWindow
	if s.level >= 2 {
		f.rebuildMap(vm)
	}
}

// SuspicionLevel returns vm's current degradation level (0 = none).
func (f *Filter) SuspicionLevel(vm mem.VMID) int {
	d := mem.DenseVM(vm)
	if d >= len(f.slots) {
		return 0
	}
	s := &f.slots[d]
	if s.level == 0 || f.slotNow(s) > s.until {
		return 0
	}
	return s.level
}

// CorruptMap overwrites vm's vCPU map register without telling anyone — a
// deliberate fault injection (internal/fault). core >= 0 leaves the map
// holding only that core (a stale single entry); core < 0 clears it
// entirely. MapSyncs is not incremented: hardware does not see soft errors.
func (f *Filter) CorruptMap(vm mem.VMID, core int) {
	d := f.ensure(vm)
	m := f.mapBits[d*f.nw : (d+1)*f.nw]
	for i := range m {
		m[i] = 0
	}
	if core >= 0 && core < len(f.coreNodes) {
		setBit(m, core)
	}
}

// rebuildMap reconstructs vm's map from trustworthy state: the cores where
// the VM currently runs plus every core whose cache still holds its data.
func (f *Filter) rebuildMap(vm mem.VMID) {
	d := f.ensure(vm)
	s := &f.slots[d]
	m := f.mapBits[d*f.nw : (d+1)*f.nw]
	run := f.runBits[d*f.nw : (d+1)*f.nw]
	copy(m, run)
	f.scanResident(vm, s, m)
	s.rebuilds++
}

// scanResident sets the bit of every core whose cache still holds vm's data,
// honoring the slot's scan scope.
func (f *Filter) scanResident(vm mem.VMID, s *vmSlot, w []uint64) {
	if f.caches == nil {
		return
	}
	if s.scanCores != nil {
		for _, i := range s.scanCores {
			if c := f.caches[i]; c != nil && c.Resident(vm) > 0 {
				setBit(w, i)
			}
		}
		return
	}
	for i, c := range f.caches {
		if c != nil && c.Resident(vm) > 0 {
			setBit(w, i)
		}
	}
}

// MapCores returns the sorted cores in vm's vCPU map (for tests/stats).
func (f *Filter) MapCores(vm mem.VMID) []int {
	w := f.words(f.mapBits, vm)
	out := make([]int, 0, popcount(w))
	for wi, word := range w {
		base := wi << 6
		for word != 0 {
			out = append(out, base+bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
	return out
}

// MapSize returns the size of vm's vCPU map.
func (f *Filter) MapSize(vm mem.VMID) int { return popcount(f.words(f.mapBits, vm)) }

// Contains reports whether core is in vm's map.
//vsnoop:hotpath
func (f *Filter) Contains(vm mem.VMID, core int) bool {
	return testBit(f.words(f.mapBits, vm), core)
}

// unroutablePanic is Route's cold failure path; it keeps the fmt call out
// of the annotated hot function.
func unroutablePanic(p mem.PageType) {
	panic(fmt.Sprintf("core: unroutable request page=%v", p))
}

// containsNode reports whether set holds n. Destination sets are bounded by
// the core count, so a linear scan beats a map and allocates nothing.
func containsNode(set []mesh.NodeID, n mesh.NodeID) bool {
	for _, m := range set {
		if m == n {
			return true
		}
	}
	return false
}

// Route implements token.Router: the destination set for one transaction
// attempt, excluding the requester (which looks up its own cache anyway)
// and excluding memory (the home controller is always addressed).
//vsnoop:hotpath
func (f *Filter) Route(info token.RouteInfo) []mesh.NodeID {
	if f.cfg.Policy == PolicyBroadcast {
		return f.allExcept(info.Requester)
	}
	switch info.Page {
	case mem.PagePrivate:
		return f.domainExcept(info.VM, info.Requester)
	case mem.PageRWShared:
		return f.allExcept(info.Requester)
	case mem.PageROShared:
		switch f.cfg.Content {
		case ContentBroadcast:
			return f.allExcept(info.Requester)
		case ContentMemoryDirect:
			return nil
		case ContentIntraVM:
			return f.domainExcept(info.VM, info.Requester)
		case ContentFriendVM:
			out := f.domainExcept(info.VM, info.Requester)
			if friend, ok := f.friends[info.VM]; ok {
				for _, n := range f.mapExcept(friend, info.Requester) {
					if !containsNode(out, n) {
						out = append(out, n)
					}
				}
			}
			return out
		}
	}
	unroutablePanic(info.Page)
	return nil
}

// allExcept returns the broadcast destination set excluding the requester.
// The returned slice is a shared precomputed set with exact capacity: callers
// may read or append (append copies) but must never write in place.
//vsnoop:hotpath
func (f *Filter) allExcept(requester int) []mesh.NodeID {
	return f.allBut[requester]
}

// domainExcept is the degradation-aware destination set for a VM's own
// snoop domain: the plain map normally, the counter-augmented map at
// suspicion level 1, full broadcast at level 2. With degradation disabled
// it is exactly mapExcept.
//vsnoop:hotpath
func (f *Filter) domainExcept(vm mem.VMID, requester int) []mesh.NodeID {
	if !f.DegradationEnabled {
		return f.mapExcept(vm, requester)
	}
	d := mem.DenseVM(vm)
	if d >= len(f.slots) {
		return f.mapExcept(vm, requester)
	}
	s := &f.slots[d]
	if s.level == 0 || f.slotNow(s) > s.until {
		s.level = 0 // suspicion decayed
		return f.mapExcept(vm, requester)
	}
	if s.level >= 2 {
		s.fallbackBroad++
		return f.allExcept(requester)
	}
	s.fallbackAug++
	return f.counterAugExcept(vm, s, requester)
}

// counterAugExcept returns the map augmented with every core whose
// residence counter says it still holds the VM's data — the level-1
// degradation set: cheap to compute, strictly safer than the map alone.
//vsnoop:hotpath
func (f *Filter) counterAugExcept(vm mem.VMID, s *vmSlot, requester int) []mesh.NodeID {
	if s.scratch == nil {
		s.scratch = make([]uint64, f.nw)
	}
	w := s.scratch
	for i := range w {
		w[i] = 0
	}
	copy(w, f.words(f.mapBits, vm))
	f.scanResident(vm, s, w)
	n := popcount(w)
	if testBit(w, requester) {
		n--
	}
	return f.appendCores(make([]mesh.NodeID, 0, n), w, requester)
}

//vsnoop:hotpath
func (f *Filter) mapExcept(vm mem.VMID, requester int) []mesh.NodeID {
	w := f.words(f.mapBits, vm)
	if w == nil {
		return nil
	}
	n := popcount(w)
	if testBit(w, requester) {
		n--
	}
	if n == 0 {
		return nil
	}
	return f.appendCores(make([]mesh.NodeID, 0, n), w, requester)
}
