// Package core implements virtual snooping, the paper's contribution: a
// snoop filter that confines coherence requests to a VM's *virtual snoop
// domain*.
//
// Each core has a vCPU map register listing the physical cores the VM
// currently running on it must snoop (Section IV.A). The hypervisor keeps
// the registers of a VM's cores synchronized, so this package maintains
// one canonical map per VM. Requests to VM-private pages are multicast to
// the map; RW-shared pages (hypervisor data, inter-VM channels) are
// broadcast; RO-shared (content-shared) pages follow a configurable
// optimization (Section VI.B).
//
// Three relocation policies are provided (Section IV.B):
//
//   - Base: cores are added to a map when a vCPU lands on them and are
//     never removed, so long-lived VMs eventually snoop everything.
//   - Counter: per-VM cache residence counters remove a core as soon as
//     the VM's last block leaves its cache.
//   - CounterThreshold: cores are removed speculatively once the counter
//     falls below a threshold; correctness comes from Token Coherence's
//     safe retries (the protocol broadcasts after two failed attempts).
package core

import (
	"fmt"
	"sort"

	"vsnoop/internal/cache"
	"vsnoop/internal/mem"
	"vsnoop/internal/mesh"
	"vsnoop/internal/sim"
	"vsnoop/internal/stats"
	"vsnoop/internal/token"
)

// Policy selects the destination-set policy for VM-private pages.
type Policy int

const (
	// PolicyBroadcast is the TokenB baseline: snoop every core.
	PolicyBroadcast Policy = iota
	// PolicyBase is virtual snooping without map cleanup (vsnoop-base).
	PolicyBase
	// PolicyCounter removes cores whose residence counter reaches zero.
	PolicyCounter
	// PolicyCounterThreshold removes cores speculatively below Threshold.
	PolicyCounterThreshold
	// PolicyCounterFlush removes cores by *flushing* the VM's remaining
	// blocks once the counter falls below Threshold — the selective-flush
	// alternative Section IV.B sketches ("a straightforward solution ...
	// is to flush the cache selectively for a specific VM, if the counter
	// is decreased under a threshold"). Unlike counter-threshold it needs
	// no protocol retry support, at the cost of extra writeback traffic.
	PolicyCounterFlush
)

func (p Policy) String() string {
	return [...]string{"tokenB", "vsnoop-base", "counter", "counter-threshold", "counter-flush"}[p]
}

// ContentPolicy selects how RO-shared (content-shared) page requests are
// routed (Section VI.B).
type ContentPolicy int

const (
	// ContentBroadcast snoops every core (the unoptimized default).
	ContentBroadcast ContentPolicy = iota
	// ContentMemoryDirect sends the request to memory only.
	ContentMemoryDirect
	// ContentIntraVM snoops only the requesting VM's map (plus memory).
	ContentIntraVM
	// ContentFriendVM snoops the requesting VM's map and its friend VM's
	// map (plus memory).
	ContentFriendVM
)

func (p ContentPolicy) String() string {
	return [...]string{"vsnoop-broadcast", "memory-direct", "intra-VM", "friend-VM"}[p]
}

// Config configures a Filter.
type Config struct {
	Policy    Policy
	Content   ContentPolicy
	Threshold int // counter-threshold cutoff (the paper uses 10)
}

// Filter is the virtual-snooping destination-set engine. It implements
// token.Router.
type Filter struct {
	cfg       Config
	eng       *sim.Engine
	coreNodes []mesh.NodeID // core index -> network endpoint

	// canonical per-VM vCPU maps (core index sets)
	maps map[mem.VMID]map[int]bool
	// running[vm][core]: cores where a vCPU of vm is currently placed
	running map[mem.VMID]map[int]bool
	// caches[i] is core i's L2, consulted for residence counters
	caches []*cache.Cache

	friends map[mem.VMID]mem.VMID

	// pendingRemoval[vm][core] records when the VM's last vCPU left the
	// core while data remained, for the Figure 9 removal-period CDF.
	pendingRemoval map[mem.VMID]map[int]sim.Cycle

	// RemovalPeriods collects cycles from vCPU departure until the core
	// left the vCPU map (Figure 9).
	RemovalPeriods stats.CDF

	// MapSyncs counts vCPU-map register synchronizations (adds/removes).
	MapSyncs uint64

	// OnFlushVM, wired by the system layer, flushes a VM's blocks from a
	// core's cache (writing tokens back to memory). Required by
	// PolicyCounterFlush.
	OnFlushVM func(core int, vm mem.VMID)

	// Flushes counts selective-flush events.
	Flushes uint64

	// DegradationEnabled gates graceful map degradation. The system layer
	// sets it only when a fault plan is active, so fault-free runs take
	// exactly the pre-degradation code paths (byte-identical results).
	DegradationEnabled bool

	// suspects holds per-VM degradation state while a map is suspected
	// stale (injected corruption, counter underflow, or a transaction that
	// escalated past a filtering threshold).
	suspects map[mem.VMID]*suspicion

	// Degradation statistics (whole-run; see system.Stats).
	FallbackCounterAug uint64 // private routes served by the counter-augmented map
	FallbackBroadcast  uint64 // private routes served by full broadcast
	MapRebuilds        uint64 // maps reconstructed from running + resident state
	Underflows         uint64 // residence-counter underflows recovered
}

// suspicion is one VM's degradation state: at level 1 private requests use
// the counter-augmented map (map plus every core still holding the VM's
// data); at level 2 they broadcast and the map is rebuilt. Suspicion decays
// after suspectWindow cycles without a new trigger — the safety argument
// (paper Section IV) makes the map advisory, so decay can never break
// correctness, only restore filtering efficiency.
type suspicion struct {
	level int
	until sim.Cycle
}

// suspectWindow is how long a suspicion lasts past its latest trigger.
const suspectWindow sim.Cycle = 50_000

// NewFilter builds a filter over the given cores. caches may be nil when
// the counter policies are unused (e.g. the broadcast baseline).
func NewFilter(eng *sim.Engine, cfg Config, coreNodes []mesh.NodeID, caches []*cache.Cache) *Filter {
	if cfg.Policy == PolicyCounterThreshold && cfg.Threshold <= 0 {
		cfg.Threshold = 10
	}
	f := &Filter{
		cfg:            cfg,
		eng:            eng,
		coreNodes:      coreNodes,
		maps:           make(map[mem.VMID]map[int]bool),
		running:        make(map[mem.VMID]map[int]bool),
		caches:         caches,
		friends:        make(map[mem.VMID]mem.VMID),
		pendingRemoval: make(map[mem.VMID]map[int]sim.Cycle),
		suspects:       make(map[mem.VMID]*suspicion),
	}
	// Wire residence-counter callbacks.
	switch cfg.Policy {
	case PolicyCounter:
		for i, c := range caches {
			if c == nil {
				continue
			}
			i := i
			c.OnResidenceZero = func(vm mem.VMID) { f.tryRemove(vm, i, 0) }
		}
	case PolicyCounterThreshold:
		for i, c := range caches {
			if c == nil {
				continue
			}
			i := i
			c.Threshold = cfg.Threshold
			c.OnResidenceBelow = func(vm mem.VMID, n int) { f.tryRemove(vm, i, n) }
		}
	case PolicyCounterFlush:
		if cfg.Threshold <= 0 {
			cfg.Threshold = 10
			f.cfg.Threshold = 10
		}
		for i, c := range caches {
			if c == nil {
				continue
			}
			i := i
			c.Threshold = cfg.Threshold
			c.OnResidenceBelow = func(vm mem.VMID, n int) { f.tryFlush(vm, i, n) }
		}
	}
	return f
}

// Config returns the filter configuration.
func (f *Filter) Config() Config { return f.cfg }

// SetFriend records vm's friend VM for the friend-VM content policy.
func (f *Filter) SetFriend(vm, friend mem.VMID) { f.friends[vm] = friend }

func (f *Filter) mapOf(vm mem.VMID) map[int]bool {
	m, ok := f.maps[vm]
	if !ok {
		m = make(map[int]bool)
		f.maps[vm] = m
	}
	return m
}

func (f *Filter) runningOf(vm mem.VMID) map[int]bool {
	m, ok := f.running[vm]
	if !ok {
		m = make(map[int]bool)
		f.running[vm] = m
	}
	return m
}

// HandleRelocate is the hypervisor hook: vCPU v of a VM moved from core
// `from` (-1 on first placement) to core `to`. The hypervisor adds the new
// core to the VM's map before the VM runs there; the old core stays until
// a counter policy removes it.
func (f *Filter) HandleRelocate(vm mem.VMID, from, to int) {
	run := f.runningOf(vm)
	if from >= 0 {
		delete(run, from)
	}
	run[to] = true

	m := f.mapOf(vm)
	if !m[to] {
		m[to] = true
		f.MapSyncs++
	}

	if from < 0 || run[from] {
		return
	}
	// The VM no longer runs on `from`. Under the counter policies, check
	// whether its data is already gone; otherwise record the departure so
	// the eventual removal latency feeds Figure 9.
	switch f.cfg.Policy {
	case PolicyCounter, PolicyCounterThreshold, PolicyCounterFlush:
		n := 0
		if f.caches != nil && f.caches[from] != nil {
			n = f.caches[from].Resident(vm)
		}
		limit := 1 // counter: remove at zero
		if f.cfg.Policy == PolicyCounterThreshold || f.cfg.Policy == PolicyCounterFlush {
			limit = f.cfg.Threshold
		}
		if n < limit {
			f.remove(vm, from)
			if f.cfg.Policy == PolicyCounterFlush && n > 0 && f.OnFlushVM != nil {
				f.Flushes++
				f.OnFlushVM(from, vm)
			}
			return
		}
		pr, ok := f.pendingRemoval[vm]
		if !ok {
			pr = make(map[int]sim.Cycle)
			f.pendingRemoval[vm] = pr
		}
		pr[from] = f.eng.Now()
	}
}

// tryRemove handles a residence-counter trigger at core for vm.
func (f *Filter) tryRemove(vm mem.VMID, core int, count int) {
	if f.runningOf(vm)[core] {
		return // still running there: the core must stay in the map
	}
	if !f.mapOf(vm)[core] {
		return
	}
	f.remove(vm, core)
}

// tryFlush handles a below-threshold trigger under PolicyCounterFlush:
// flush the VM's remaining blocks from the departed core, then remove it.
func (f *Filter) tryFlush(vm mem.VMID, core int, n int) {
	if f.runningOf(vm)[core] || !f.mapOf(vm)[core] {
		return
	}
	// Remove first: the flush below re-triggers residence callbacks for
	// every invalidated block, and they must find the core already gone.
	f.remove(vm, core)
	if n > 0 && f.OnFlushVM != nil {
		f.Flushes++
		f.OnFlushVM(core, vm)
	}
}

func (f *Filter) remove(vm mem.VMID, core int) {
	m := f.mapOf(vm)
	if !m[core] {
		return
	}
	delete(m, core)
	f.MapSyncs++
	if pr := f.pendingRemoval[vm]; pr != nil {
		if t0, ok := pr[core]; ok {
			f.RemovalPeriods.Observe(float64(f.eng.Now() - t0))
			delete(pr, core)
		}
	}
}

// NoteEscalation implements token.EscalationSink: a transaction of vm
// escalated to broadcast (level 1) or a persistent request (level 2), which
// under fault load usually means the VM's map excluded a token holder.
func (f *Filter) NoteEscalation(vm mem.VMID, level int) {
	if !f.DegradationEnabled {
		return
	}
	f.SuspectVM(vm, level)
}

// NoteUnderflow records a recovered residence-counter underflow for vm;
// the counters can no longer be trusted, so the map is rebuilt and the VM
// broadcasts until suspicion decays.
func (f *Filter) NoteUnderflow(vm mem.VMID) {
	if !f.DegradationEnabled {
		return
	}
	f.Underflows++
	f.SuspectVM(vm, 2)
}

// SuspectVM marks vm's map suspect at the given degradation level (1 =
// counter-augmented map, 2 = broadcast + map rebuild). A repeated trigger
// extends the window; a higher level upgrades it.
func (f *Filter) SuspectVM(vm mem.VMID, level int) {
	if level < 1 {
		level = 1
	}
	if level > 2 {
		level = 2
	}
	s := f.suspects[vm]
	if s == nil {
		s = &suspicion{}
		f.suspects[vm] = s
	}
	if level > s.level {
		s.level = level
	}
	s.until = f.eng.Now() + suspectWindow
	if s.level >= 2 {
		f.rebuildMap(vm)
	}
}

// SuspicionLevel returns vm's current degradation level (0 = none).
func (f *Filter) SuspicionLevel(vm mem.VMID) int {
	s := f.suspects[vm]
	if s == nil || f.eng.Now() > s.until {
		return 0
	}
	return s.level
}

// CorruptMap overwrites vm's vCPU map register without telling anyone — a
// deliberate fault injection (internal/fault). core >= 0 leaves the map
// holding only that core (a stale single entry); core < 0 clears it
// entirely. MapSyncs is not incremented: hardware does not see soft errors.
func (f *Filter) CorruptMap(vm mem.VMID, core int) {
	m := make(map[int]bool)
	if core >= 0 && core < len(f.coreNodes) {
		m[core] = true
	}
	f.maps[vm] = m
}

// rebuildMap reconstructs vm's map from trustworthy state: the cores where
// the VM currently runs plus every core whose cache still holds its data.
func (f *Filter) rebuildMap(vm mem.VMID) {
	m := make(map[int]bool)
	for c := range f.runningOf(vm) {
		m[c] = true
	}
	if f.caches != nil {
		for i, c := range f.caches {
			if c != nil && c.Resident(vm) > 0 {
				m[i] = true
			}
		}
	}
	f.maps[vm] = m
	f.MapRebuilds++
}

// MapCores returns the sorted cores in vm's vCPU map (for tests/stats).
func (f *Filter) MapCores(vm mem.VMID) []int {
	m := f.maps[vm]
	out := make([]int, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// MapSize returns the size of vm's vCPU map.
func (f *Filter) MapSize(vm mem.VMID) int { return len(f.maps[vm]) }

// Contains reports whether core is in vm's map.
func (f *Filter) Contains(vm mem.VMID, core int) bool { return f.maps[vm][core] }

// Route implements token.Router: the destination set for one transaction
// attempt, excluding the requester (which looks up its own cache anyway)
// and excluding memory (the home controller is always addressed).
func (f *Filter) Route(info token.RouteInfo) []mesh.NodeID {
	if f.cfg.Policy == PolicyBroadcast {
		return f.allExcept(info.Requester)
	}
	switch info.Page {
	case mem.PagePrivate:
		return f.domainExcept(info.VM, info.Requester)
	case mem.PageRWShared:
		return f.allExcept(info.Requester)
	case mem.PageROShared:
		switch f.cfg.Content {
		case ContentBroadcast:
			return f.allExcept(info.Requester)
		case ContentMemoryDirect:
			return nil
		case ContentIntraVM:
			return f.domainExcept(info.VM, info.Requester)
		case ContentFriendVM:
			out := f.domainExcept(info.VM, info.Requester)
			if friend, ok := f.friends[info.VM]; ok {
				seen := make(map[mesh.NodeID]bool, len(out))
				for _, n := range out {
					seen[n] = true
				}
				for _, n := range f.mapExcept(friend, info.Requester) {
					if !seen[n] {
						out = append(out, n)
					}
				}
			}
			return out
		}
	}
	panic(fmt.Sprintf("core: unroutable request page=%v", info.Page))
}

func (f *Filter) allExcept(requester int) []mesh.NodeID {
	out := make([]mesh.NodeID, 0, len(f.coreNodes)-1)
	for i, n := range f.coreNodes {
		if i != requester {
			out = append(out, n)
		}
	}
	return out
}

// domainExcept is the degradation-aware destination set for a VM's own
// snoop domain: the plain map normally, the counter-augmented map at
// suspicion level 1, full broadcast at level 2. With degradation disabled
// it is exactly mapExcept.
func (f *Filter) domainExcept(vm mem.VMID, requester int) []mesh.NodeID {
	if !f.DegradationEnabled {
		return f.mapExcept(vm, requester)
	}
	s := f.suspects[vm]
	if s == nil || f.eng.Now() > s.until {
		if s != nil {
			delete(f.suspects, vm) // suspicion decayed
		}
		return f.mapExcept(vm, requester)
	}
	if s.level >= 2 {
		f.FallbackBroadcast++
		return f.allExcept(requester)
	}
	f.FallbackCounterAug++
	return f.counterAugExcept(vm, requester)
}

// counterAugExcept returns the map augmented with every core whose
// residence counter says it still holds the VM's data — the level-1
// degradation set: cheap to compute, strictly safer than the map alone.
func (f *Filter) counterAugExcept(vm mem.VMID, requester int) []mesh.NodeID {
	cores := make(map[int]bool, len(f.maps[vm]))
	for c := range f.maps[vm] {
		cores[c] = true
	}
	if f.caches != nil {
		for i, c := range f.caches {
			if c != nil && c.Resident(vm) > 0 {
				cores[i] = true
			}
		}
	}
	delete(cores, requester)
	sorted := make([]int, 0, len(cores))
	for c := range cores {
		sorted = append(sorted, c)
	}
	sort.Ints(sorted)
	out := make([]mesh.NodeID, len(sorted))
	for i, c := range sorted {
		out[i] = f.coreNodes[c]
	}
	return out
}

func (f *Filter) mapExcept(vm mem.VMID, requester int) []mesh.NodeID {
	m := f.maps[vm]
	cores := make([]int, 0, len(m))
	for c := range m {
		if c != requester {
			cores = append(cores, c)
		}
	}
	sort.Ints(cores) // deterministic send order
	out := make([]mesh.NodeID, len(cores))
	for i, c := range cores {
		out[i] = f.coreNodes[c]
	}
	return out
}
