package core

import (
	"testing"

	"vsnoop/internal/cache"
	"vsnoop/internal/mem"
	"vsnoop/internal/mesh"
	"vsnoop/internal/sim"
	"vsnoop/internal/token"
)

// testRig builds a filter over n cores with per-core L2s.
func testRig(t *testing.T, n int, cfg Config) (*sim.Engine, *Filter, []*cache.Cache, []mesh.NodeID) {
	t.Helper()
	eng := sim.NewEngine()
	nodes := make([]mesh.NodeID, n)
	caches := make([]*cache.Cache, n)
	for i := range nodes {
		nodes[i] = mesh.NodeID(i)
		caches[i] = cache.New(cache.Config{Name: "L2", SizeBytes: 4096, Ways: 4, BlockBytes: 64})
	}
	f := NewFilter(eng, cfg, nodes, caches)
	return eng, f, caches, nodes
}

func place(f *Filter, vm mem.VMID, cores ...int) {
	for _, c := range cores {
		f.HandleRelocate(vm, -1, c)
	}
}

func route(f *Filter, vm mem.VMID, page mem.PageType, req int) []mesh.NodeID {
	return f.Route(token.RouteInfo{VM: vm, Page: page, Requester: req, CoreNode: mesh.NodeID(req), Attempt: 1})
}

func TestBroadcastPolicySnoopsEveryone(t *testing.T) {
	_, f, _, _ := testRig(t, 16, Config{Policy: PolicyBroadcast})
	place(f, 1, 0, 1, 2, 3)
	if got := len(route(f, 1, mem.PagePrivate, 0)); got != 15 {
		t.Fatalf("broadcast dests = %d, want 15", got)
	}
}

func TestPrivatePageUsesVCPUMap(t *testing.T) {
	_, f, _, _ := testRig(t, 16, Config{Policy: PolicyBase})
	place(f, 1, 0, 1, 2, 3)
	place(f, 2, 4, 5, 6, 7)
	dests := route(f, 1, mem.PagePrivate, 0)
	if len(dests) != 3 {
		t.Fatalf("private dests = %v, want the 3 other map cores", dests)
	}
	for _, d := range dests {
		if int(d) > 3 {
			t.Fatalf("snooped core %d outside the VM's map", d)
		}
	}
}

func TestRWSharedAlwaysBroadcasts(t *testing.T) {
	_, f, _, _ := testRig(t, 16, Config{Policy: PolicyBase})
	place(f, 1, 0, 1, 2, 3)
	if got := len(route(f, 1, mem.PageRWShared, 0)); got != 15 {
		t.Fatalf("RW-shared dests = %d, want broadcast (15)", got)
	}
}

func TestContentPolicies(t *testing.T) {
	for _, tc := range []struct {
		policy ContentPolicy
		want   int
	}{
		{ContentBroadcast, 15},
		{ContentMemoryDirect, 0},
		{ContentIntraVM, 3},
		{ContentFriendVM, 7}, // own 3 + friend's 4
	} {
		_, f, _, _ := testRig(t, 16, Config{Policy: PolicyBase, Content: tc.policy})
		place(f, 1, 0, 1, 2, 3)
		place(f, 2, 4, 5, 6, 7)
		f.SetFriend(1, 2)
		if got := len(route(f, 1, mem.PageROShared, 0)); got != tc.want {
			t.Errorf("%v: dests = %d, want %d", tc.policy, got, tc.want)
		}
	}
}

func TestFriendVMDedupsOverlap(t *testing.T) {
	_, f, _, _ := testRig(t, 16, Config{Policy: PolicyBase, Content: ContentFriendVM})
	place(f, 1, 0, 1, 2, 3)
	place(f, 2, 4, 5)
	// VM 2's map also accumulated core 3 through a past relocation.
	f.HandleRelocate(2, -1, 3)
	f.HandleRelocate(2, 3, 4) // moved away; base policy keeps core 3 in map
	f.SetFriend(1, 2)
	dests := route(f, 1, mem.PageROShared, 0)
	seen := map[mesh.NodeID]bool{}
	for _, d := range dests {
		if seen[d] {
			t.Fatalf("duplicate destination %d in %v", d, dests)
		}
		seen[d] = true
	}
}

func TestBaseNeverRemovesCores(t *testing.T) {
	_, f, caches, _ := testRig(t, 8, Config{Policy: PolicyBase})
	place(f, 1, 0)
	caches[0].Insert(100, 1)
	f.HandleRelocate(1, 0, 5)
	caches[0].Invalidate(caches[0].Lookup(100)) // VM 1 data gone from core 0
	if !f.Contains(1, 0) {
		t.Fatal("base policy removed a core")
	}
	if f.MapSize(1) != 2 {
		t.Fatalf("map = %v, want {0,5}", f.MapCores(1))
	}
}

func TestCounterRemovesCoreWhenDataGone(t *testing.T) {
	eng, f, caches, _ := testRig(t, 8, Config{Policy: PolicyCounter})
	place(f, 1, 0)
	b1, _, _ := caches[0].Insert(100, 1)
	b2, _, _ := caches[0].Insert(101, 1)
	f.HandleRelocate(1, 0, 5) // vCPU leaves core 0 with 2 blocks resident
	if !f.Contains(1, 0) {
		t.Fatal("core removed while data resident")
	}
	eng.RunUntil(50)
	caches[0].Invalidate(b1)
	if !f.Contains(1, 0) {
		t.Fatal("core removed with one block left")
	}
	eng.RunUntil(120)
	caches[0].Invalidate(b2)
	if f.Contains(1, 0) {
		t.Fatal("core not removed when counter hit zero")
	}
	// Removal period recorded for Figure 9: departed at ~0, removed at 120.
	if f.RemovalPeriods.N() != 1 {
		t.Fatalf("removal periods recorded = %d", f.RemovalPeriods.N())
	}
	if got := f.RemovalPeriods.Quantile(1); got != 120 {
		t.Fatalf("removal period = %v, want 120", got)
	}
}

func TestCounterRemovesImmediatelyWhenEmpty(t *testing.T) {
	_, f, _, _ := testRig(t, 8, Config{Policy: PolicyCounter})
	place(f, 1, 0)
	f.HandleRelocate(1, 0, 5) // no data was cached
	if f.Contains(1, 0) {
		t.Fatal("empty core not removed at relocation")
	}
}

func TestCounterKeepsCoreWhileVMRunsThere(t *testing.T) {
	_, f, caches, _ := testRig(t, 8, Config{Policy: PolicyCounter})
	place(f, 1, 0, 1)
	b, _, _ := caches[0].Insert(100, 1)
	caches[0].Invalidate(b) // counter reaches zero while still running
	if !f.Contains(1, 0) {
		t.Fatal("removed a core the VM still runs on")
	}
}

func TestCounterThresholdRemovesEarly(t *testing.T) {
	_, f, caches, _ := testRig(t, 8, Config{Policy: PolicyCounterThreshold, Threshold: 10})
	place(f, 1, 0)
	var blocks []*cache.Block
	for i := 0; i < 12; i++ {
		b, _, _ := caches[0].Insert(mem.BlockAddr(i), 1)
		blocks = append(blocks, b)
	}
	f.HandleRelocate(1, 0, 5)
	if !f.Contains(1, 0) {
		t.Fatal("removed with 12 blocks resident (threshold 10)")
	}
	caches[0].Invalidate(blocks[0]) // 11 left
	caches[0].Invalidate(blocks[1]) // 10 left: not yet below threshold
	if !f.Contains(1, 0) {
		t.Fatal("removed at exactly the threshold")
	}
	caches[0].Invalidate(blocks[2]) // 9 left: below threshold
	if f.Contains(1, 0) {
		t.Fatal("not removed below threshold")
	}
}

func TestRelocationGrowsMapUnderBase(t *testing.T) {
	_, f, caches, _ := testRig(t, 16, Config{Policy: PolicyBase})
	place(f, 1, 0)
	caches[0].Insert(1, 1)
	cur := 0
	for next := 1; next < 16; next++ {
		caches[next].Insert(mem.BlockAddr(next*10), 1)
		f.HandleRelocate(1, cur, next)
		cur = next
	}
	if f.MapSize(1) != 16 {
		t.Fatalf("map size = %d, want 16 (base policy accumulates all cores)", f.MapSize(1))
	}
}

func TestRouteIsSortedAndDeterministic(t *testing.T) {
	_, f, _, _ := testRig(t, 16, Config{Policy: PolicyBase})
	place(f, 1, 3, 1, 7, 5)
	a := route(f, 1, mem.PagePrivate, 1)
	b := route(f, 1, mem.PagePrivate, 1)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("dests = %v / %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("route order not deterministic")
		}
		if i > 0 && a[i] <= a[i-1] {
			t.Fatal("route not sorted")
		}
	}
}

func TestMapSyncsCounted(t *testing.T) {
	_, f, _, _ := testRig(t, 8, Config{Policy: PolicyCounter})
	place(f, 1, 0, 1)
	if f.MapSyncs != 2 {
		t.Fatalf("syncs = %d, want 2", f.MapSyncs)
	}
	f.HandleRelocate(1, 0, 2) // add core 2 (+1); core 0 empty: removed (+1)
	if f.MapSyncs != 4 {
		t.Fatalf("syncs = %d, want 4", f.MapSyncs)
	}
}

// Invariant: under the counter policy, any cache holding a VM's block is
// in that VM's map (filter conservativeness).
func TestCounterConservativeInvariant(t *testing.T) {
	eng, f, caches, _ := testRig(t, 8, Config{Policy: PolicyCounter})
	r := sim.NewRand(42)
	for vm := mem.VMID(0); vm < 2; vm++ {
		for i := 0; i < 2; i++ {
			place(f, vm, int(vm)*2+i)
		}
	}
	cur := map[mem.VMID][]int{0: {0, 1}, 1: {2, 3}}
	for step := 0; step < 2000; step++ {
		eng.RunUntil(sim.Cycle(step))
		vm := mem.VMID(r.Intn(2))
		switch r.Intn(4) {
		case 0: // insert a block on one of the VM's running cores
			c := cur[vm][r.Intn(2)]
			a := mem.BlockAddr(r.Intn(64))
			if caches[c].Lookup(a) == nil {
				caches[c].Insert(a, vm)
			}
		case 1: // invalidate a random block of the VM anywhere
			c := r.Intn(8)
			var victim *cache.Block
			caches[c].ForEachValid(func(b *cache.Block) {
				if b.VM == vm && victim == nil {
					victim = b
				}
			})
			if victim != nil {
				caches[c].Invalidate(victim)
			}
		case 2, 3: // relocate one of the VM's vCPUs to a free core
			free := -1
			occupied := map[int]bool{}
			for _, cs := range cur {
				for _, c := range cs {
					occupied[c] = true
				}
			}
			for c := 0; c < 8; c++ {
				if !occupied[c] {
					free = c
					break
				}
			}
			if free == -1 {
				continue
			}
			idx := r.Intn(2)
			from := cur[vm][idx]
			f.HandleRelocate(vm, from, free)
			cur[vm][idx] = free
		}
		// Check the invariant.
		for c := 0; c < 8; c++ {
			for checkVM := mem.VMID(0); checkVM < 2; checkVM++ {
				if caches[c].Resident(checkVM) > 0 && !f.Contains(checkVM, c) {
					t.Fatalf("step %d: core %d holds VM %d data but is not in its map", step, c, checkVM)
				}
			}
		}
	}
}

func TestCounterFlushFlushesAndRemoves(t *testing.T) {
	_, f, caches, _ := testRig(t, 8, Config{Policy: PolicyCounterFlush, Threshold: 10})
	flushed := map[int]mem.VMID{}
	f.OnFlushVM = func(core int, vm mem.VMID) {
		flushed[core] = vm
		caches[core].FlushVM(vm)
	}
	place(f, 1, 0)
	for i := 0; i < 12; i++ {
		caches[0].Insert(mem.BlockAddr(i), 1)
	}
	f.HandleRelocate(1, 0, 5)
	if !f.Contains(1, 0) {
		t.Fatal("removed above threshold")
	}
	// Drop below the threshold: the filter must flush the rest and remove.
	caches[0].Invalidate(caches[0].Lookup(0))
	caches[0].Invalidate(caches[0].Lookup(1))
	caches[0].Invalidate(caches[0].Lookup(2))
	if f.Contains(1, 0) {
		t.Fatal("not removed below threshold")
	}
	if flushed[0] != 1 {
		t.Fatalf("flush hook not invoked: %v", flushed)
	}
	if caches[0].Resident(1) != 0 {
		t.Fatalf("blocks remain after flush: %d", caches[0].Resident(1))
	}
	if f.Flushes != 1 {
		t.Fatalf("Flushes = %d", f.Flushes)
	}
}

func TestCounterFlushAtRelocationWhenBelowThreshold(t *testing.T) {
	_, f, caches, _ := testRig(t, 8, Config{Policy: PolicyCounterFlush, Threshold: 10})
	f.OnFlushVM = func(core int, vm mem.VMID) { caches[core].FlushVM(vm) }
	place(f, 1, 0)
	for i := 0; i < 5; i++ { // below threshold already
		caches[0].Insert(mem.BlockAddr(i), 1)
	}
	f.HandleRelocate(1, 0, 5)
	if f.Contains(1, 0) {
		t.Fatal("core kept despite below-threshold occupancy at relocation")
	}
	if caches[0].Resident(1) != 0 {
		t.Fatal("blocks not flushed at relocation")
	}
}
