package core

import (
	"testing"

	"vsnoop/internal/mem"
)

func TestDegradationDisabledByDefault(t *testing.T) {
	_, f, _, _ := testRig(t, 16, Config{Policy: PolicyBase})
	place(f, 1, 0, 1, 2, 3)
	f.NoteEscalation(1, 2)
	f.NoteUnderflow(1)
	if f.SuspicionLevel(1) != 0 {
		t.Fatal("suspicion recorded with degradation disabled")
	}
	if got := len(route(f, 1, mem.PagePrivate, 0)); got != 3 {
		t.Fatalf("route size %d, want plain map (3)", got)
	}
	if f.FallbackBroadcast() != 0 || f.FallbackCounterAug() != 0 || f.Underflows() != 0 {
		t.Fatal("degradation counters moved while disabled")
	}
}

func TestLevel1UsesCounterAugmentedMap(t *testing.T) {
	_, f, caches, _ := testRig(t, 16, Config{Policy: PolicyBase})
	f.DegradationEnabled = true
	place(f, 1, 0, 1, 2, 3)
	// Core 7 is NOT in the map but still caches VM 1's data — the
	// counter-augmented set must include it.
	caches[7].Insert(mem.BlockAddr(64), 1)
	f.NoteEscalation(1, 1)
	if f.SuspicionLevel(1) != 1 {
		t.Fatalf("suspicion level %d, want 1", f.SuspicionLevel(1))
	}
	dsts := route(f, 1, mem.PagePrivate, 0)
	if got := len(dsts); got != 4 { // cores 1,2,3 + resident core 7
		t.Fatalf("counter-augmented route size %d, want 4 (%v)", got, dsts)
	}
	if f.FallbackCounterAug() == 0 {
		t.Fatal("FallbackCounterAug not counted")
	}
}

func TestLevel2BroadcastsAndRebuilds(t *testing.T) {
	_, f, caches, _ := testRig(t, 16, Config{Policy: PolicyBase})
	f.DegradationEnabled = true
	place(f, 1, 0, 1, 2, 3)
	caches[7].Insert(mem.BlockAddr(64), 1)
	// A corrupted map register leaves a single stale entry...
	f.CorruptMap(1, 5)
	if got := f.MapCores(1); len(got) != 1 || got[0] != 5 {
		t.Fatalf("corrupted map = %v, want [5]", got)
	}
	// ...then persistent-request escalation pushes to level 2: broadcast
	// and rebuild from running + resident state.
	f.NoteEscalation(1, 2)
	if f.SuspicionLevel(1) != 2 {
		t.Fatalf("suspicion level %d, want 2", f.SuspicionLevel(1))
	}
	if got := len(route(f, 1, mem.PagePrivate, 0)); got != 15 {
		t.Fatalf("level-2 route size %d, want broadcast (15)", got)
	}
	if f.FallbackBroadcast() == 0 || f.MapRebuilds() == 0 {
		t.Fatal("broadcast fallback / rebuild not counted")
	}
	// The rebuilt map holds the running cores plus resident core 7.
	want := []int{0, 1, 2, 3, 7}
	got := f.MapCores(1)
	if len(got) != len(want) {
		t.Fatalf("rebuilt map = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rebuilt map = %v, want %v", got, want)
		}
	}
}

func TestUnderflowForcesLevel2(t *testing.T) {
	_, f, _, _ := testRig(t, 16, Config{Policy: PolicyCounter})
	f.DegradationEnabled = true
	place(f, 2, 4, 5)
	f.NoteUnderflow(2)
	if f.SuspicionLevel(2) != 2 {
		t.Fatalf("suspicion level %d after underflow, want 2", f.SuspicionLevel(2))
	}
	if f.Underflows() != 1 {
		t.Fatalf("Underflows = %d, want 1", f.Underflows())
	}
}

func TestSuspicionDecays(t *testing.T) {
	eng, f, _, _ := testRig(t, 16, Config{Policy: PolicyBase})
	f.DegradationEnabled = true
	place(f, 1, 0, 1, 2, 3)
	f.NoteEscalation(1, 1)
	if f.SuspicionLevel(1) != 1 {
		t.Fatal("suspicion not recorded")
	}
	// Advance past the decay window: routing reverts to the plain map.
	eng.Schedule(suspectWindow+1, func() {})
	eng.Run()
	if f.SuspicionLevel(1) != 0 {
		t.Fatalf("suspicion level %d after window, want 0", f.SuspicionLevel(1))
	}
	if got := len(route(f, 1, mem.PagePrivate, 0)); got != 3 {
		t.Fatalf("route size %d after decay, want 3", got)
	}
}

func TestHigherLevelWins(t *testing.T) {
	_, f, _, _ := testRig(t, 16, Config{Policy: PolicyBase})
	f.DegradationEnabled = true
	place(f, 1, 0, 1)
	f.NoteEscalation(1, 2)
	f.NoteEscalation(1, 1) // later, weaker signal must not downgrade
	if f.SuspicionLevel(1) != 2 {
		t.Fatalf("suspicion level %d, want 2 (no downgrade)", f.SuspicionLevel(1))
	}
}

func TestCorruptMapClear(t *testing.T) {
	_, f, _, _ := testRig(t, 16, Config{Policy: PolicyBase})
	place(f, 3, 8, 9)
	before := f.MapSyncs
	f.CorruptMap(3, -1)
	if f.MapSize(3) != 0 {
		t.Fatalf("map size %d after clearing corruption, want 0", f.MapSize(3))
	}
	if f.MapSyncs != before {
		t.Fatal("CorruptMap counted as a map sync; soft errors are invisible to hardware")
	}
}
