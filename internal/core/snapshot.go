package core

import "vsnoop/internal/sim"

// slotSave holds the scalar (value) fields of one vmSlot. The scratch
// buffer is pure per-call scratch, and scanCores/eng are static after
// setup, so none of them checkpoint.
type slotSave struct {
	level         int
	until         sim.Cycle
	fallbackAug   uint64
	fallbackBroad uint64
	rebuilds      uint64
	underflows    uint64
}

// FilterSnap is one checkpoint of a filter replica (optimistic shard
// engine): the flat per-VM register files, the degradation slot scalars,
// the counters, and a mark into the removal-period CDF. Restoring
// truncates the register files back to their saved lengths — growth is
// append-only (ensure), so a replayed first appearance of a VM regrows the
// same zero-initialized slots.
//
//vsnoop:owned
type FilterSnap struct {
	mapBits  []uint64
	runBits  []uint64
	pendBits []uint64
	pendAt   []sim.Cycle
	slots    []slotSave
	mapSyncs uint64
	flushes  uint64
	remMark  int
}

// Save copies the replica's mutable state into s.
func (f *Filter) Save(s *FilterSnap) {
	s.mapBits = append(s.mapBits[:0], f.mapBits...)
	s.runBits = append(s.runBits[:0], f.runBits...)
	s.pendBits = append(s.pendBits[:0], f.pendBits...)
	s.pendAt = append(s.pendAt[:0], f.pendAt...)
	s.slots = s.slots[:0]
	for i := range f.slots {
		sl := &f.slots[i]
		s.slots = append(s.slots, slotSave{
			level: sl.level, until: sl.until,
			fallbackAug: sl.fallbackAug, fallbackBroad: sl.fallbackBroad,
			rebuilds: sl.rebuilds, underflows: sl.underflows,
		})
	}
	s.mapSyncs = f.MapSyncs
	s.flushes = f.Flushes
	s.remMark = f.RemovalPeriods.Mark()
}

// Restore rewinds the replica to the state captured by Save. Surviving
// slots keep their scratch/scope pointers (static after setup); slots that
// appeared only during rolled-back speculation are truncated away.
func (f *Filter) Restore(s *FilterSnap) {
	f.mapBits = append(f.mapBits[:0], s.mapBits...)
	f.runBits = append(f.runBits[:0], s.runBits...)
	f.pendBits = append(f.pendBits[:0], s.pendBits...)
	f.pendAt = append(f.pendAt[:0], s.pendAt...)
	f.slots = f.slots[:len(s.slots)]
	for i := range s.slots {
		sv := &s.slots[i]
		sl := &f.slots[i]
		sl.level, sl.until = sv.level, sv.until
		sl.fallbackAug, sl.fallbackBroad = sv.fallbackAug, sv.fallbackBroad
		sl.rebuilds, sl.underflows = sv.rebuilds, sv.underflows
	}
	f.MapSyncs = s.mapSyncs
	f.Flushes = s.flushes
	f.RemovalPeriods.Truncate(s.remMark)
}
