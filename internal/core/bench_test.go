package core

import (
	"testing"

	"vsnoop/internal/cache"
	"vsnoop/internal/mem"
	"vsnoop/internal/mesh"
	"vsnoop/internal/sim"
	"vsnoop/internal/token"
)

func benchFilter(policy Policy) *Filter {
	eng := sim.NewEngine()
	nodes := make([]mesh.NodeID, 16)
	caches := make([]*cache.Cache, 16)
	for i := range nodes {
		nodes[i] = mesh.NodeID(i)
		caches[i] = cache.New(cache.Config{Name: "L2", SizeBytes: 8192, Ways: 8, BlockBytes: 64})
	}
	f := NewFilter(eng, Config{Policy: policy}, nodes, caches)
	for vm := mem.VMID(0); vm < 4; vm++ {
		for i := 0; i < 4; i++ {
			f.HandleRelocate(vm, -1, int(vm)*4+i)
		}
	}
	return f
}

func BenchmarkRoutePrivate(b *testing.B) {
	f := benchFilter(PolicyBase)
	info := token.RouteInfo{VM: 1, Page: mem.PagePrivate, Requester: 4, CoreNode: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(f.Route(info)) != 3 {
			b.Fatal("unexpected destination count")
		}
	}
}

func BenchmarkRouteBroadcast(b *testing.B) {
	f := benchFilter(PolicyBroadcast)
	info := token.RouteInfo{VM: 1, Page: mem.PagePrivate, Requester: 4, CoreNode: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(f.Route(info)) != 15 {
			b.Fatal("unexpected destination count")
		}
	}
}

// BenchmarkRouteCounterAug measures the level-1 degradation set: the vCPU
// map OR'd with the residence-counter bits in the reusable scratch words.
func BenchmarkRouteCounterAug(b *testing.B) {
	f := benchFilter(PolicyCounter)
	f.DegradationEnabled = true
	f.SuspectVM(1, 1)
	info := token.RouteInfo{VM: 1, Page: mem.PagePrivate, Requester: 4, CoreNode: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(f.Route(info)) != 3 {
			b.Fatal("unexpected destination count")
		}
	}
}

// BenchmarkMapMembership measures the bit-vector register primitives the
// hot paths lean on (Contains is a single word test, MapSize a popcount).
func BenchmarkMapMembership(b *testing.B) {
	f := benchFilter(PolicyBase)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		vm := mem.VMID(i & 3)
		if f.Contains(vm, int(vm)*4) {
			sink += f.MapSize(vm)
		}
	}
	if sink == 0 {
		b.Fatal("membership probes all missed")
	}
}

// TestHandleRelocateZeroAllocSteadyState gates the vCPU-map update path:
// once the per-VM register files have grown to cover every VM, a relocation
// (map add, departure check, counter-triggered removal) allocates nothing.
func TestHandleRelocateZeroAllocSteadyState(t *testing.T) {
	f := benchFilter(PolicyCounter)
	for i := 0; i < 256; i++ {
		vm := mem.VMID(i & 3)
		f.HandleRelocate(vm, int(vm)*4, 15-int(vm))
		f.HandleRelocate(vm, 15-int(vm), int(vm)*4)
	}
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			vm := mem.VMID(i & 3)
			// Bounce between the home core and a far one: every call adds a
			// map entry and the empty benchmark caches make the departed core
			// eligible for immediate counter removal.
			f.HandleRelocate(vm, int(vm)*4, 15-int(vm))
			f.HandleRelocate(vm, 15-int(vm), int(vm)*4)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state HandleRelocate allocates %.2f per 128-call batch, want 0", avg)
	}
}

// TestRouteZeroAllocBroadcast gates Route's no-allocation path: broadcast
// returns the precomputed shared destination set without copying it.
func TestRouteZeroAllocBroadcast(t *testing.T) {
	f := benchFilter(PolicyBroadcast)
	info := token.RouteInfo{VM: 1, Page: mem.PagePrivate, Requester: 4, CoreNode: 4}
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			if len(f.Route(info)) != 15 {
				t.Fatal("unexpected destination count")
			}
		}
	})
	if avg != 0 {
		t.Fatalf("broadcast Route allocates %.2f per 64-call batch, want 0", avg)
	}
}

func BenchmarkRelocationChurn(b *testing.B) {
	f := benchFilter(PolicyCounter)
	for i := 0; i < b.N; i++ {
		vm := mem.VMID(i & 3)
		from := int(vm)*4 + (i & 3)
		// Move a vCPU back and forth between its home core and a far one.
		f.HandleRelocate(vm, from, from)
	}
}
