package report

import (
	"strings"
	"testing"

	"vsnoop/internal/core"
	"vsnoop/internal/exp"
)

func TestFigure1Rendering(t *testing.T) {
	var b strings.Builder
	Figure1(&b, []exp.Fig1Row{
		{Workload: "oltp", XenPct: 5.5, Dom0Pct: 9.4, GuestPct: 85.1, PaperPct: 15},
	})
	out := b.String()
	for _, want := range []string{"Figure 1", "oltp", "5.50", "9.40", "15.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure2Rendering(t *testing.T) {
	var b strings.Builder
	Figure2(&b, exp.Figure2())
	out := b.String()
	if !strings.Contains(out, "93.75") {
		t.Fatalf("ideal 16-VM point missing:\n%s", out)
	}
	// One row per VM count.
	for _, vms := range []string{"\n2 ", "\n4 ", "\n8 ", "\n16 "} {
		if !strings.Contains(out, strings.TrimSpace(vms)) {
			t.Fatalf("row for %s VMs missing", vms)
		}
	}
}

func TestTable4Fig6Rendering(t *testing.T) {
	var b strings.Builder
	Table4Figure6(&b, []exp.Table4Fig6Row{
		{Workload: "fft", TrafficReductionPct: 61.5, PaperTrafficRedPct: 63.2,
			NormRuntimePct: 96.1, SnoopReductionPct: 75.0},
	})
	out := b.String()
	for _, want := range []string{"fft", "61.50", "63.20", "average"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFigures78GroupsByCell(t *testing.T) {
	var b strings.Builder
	rows := []exp.Fig78Row{
		{Workload: "fft", PeriodMs: 5, Policy: core.PolicyBase, NormSnoopPct: 46},
		{Workload: "fft", PeriodMs: 5, Policy: core.PolicyCounter, NormSnoopPct: 26},
		{Workload: "fft", PeriodMs: 5, Policy: core.PolicyCounterThreshold, NormSnoopPct: 25.5},
	}
	Figures78(&b, rows)
	out := b.String()
	if strings.Count(out, "fft") != 1 {
		t.Fatalf("expected one merged row per (workload, period):\n%s", out)
	}
	for _, want := range []string{"46.0%", "26.0%", "25.5%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestFigure9Rendering(t *testing.T) {
	var b strings.Builder
	Figure9(&b, []exp.Fig9Series{
		{Workload: "radix", Xms: []float64{1, 2, 3, 4}, CDF: []float64{0.1, 0.4, 0.8, 1}, N: 40, NeverRemovedPct: 2.5},
	})
	out := b.String()
	if !strings.Contains(out, "radix") || !strings.Contains(out, "never-removed=2.5%") {
		t.Fatalf("figure 9 output wrong:\n%s", out)
	}
}

func TestTable6Rendering(t *testing.T) {
	var b strings.Builder
	Table6(&b, []exp.Table6Row{{
		Workload: "canneal", CacheAllPct: 74.3, IntraVMPct: 30, FriendVMPct: 26.2,
		MemoryPct: 25.7, PaperAll: 63.9, PaperIntra: 26.9, PaperFriend: 21, PaperMemory: 37.1,
	}})
	out := b.String()
	for _, want := range []string{"canneal", "74.3", "63.9", "37.1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestAblationsRendering(t *testing.T) {
	var b strings.Builder
	Ablations(&b, []exp.AblationRow{{
		Name: "placement quadrant->linear", Baseline: 61.5, Variant: 55.2,
		Unit: "traffic reduction %", Note: "locality matters",
	}})
	out := b.String()
	if !strings.Contains(out, "placement") || !strings.Contains(out, "locality matters") {
		t.Fatalf("ablation output wrong:\n%s", out)
	}
}
