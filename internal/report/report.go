// Package report renders experiment results as the ASCII tables and series
// the paper's tables/figures report, with paper-published values printed
// beside measured ones wherever the paper gives a number.
package report

import (
	"fmt"
	"io"
	"strings"

	"vsnoop/internal/exp"
	"vsnoop/internal/system"
)

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("-", len(title)))
}

// Robustness renders one run's fault-injection and invariant-checking
// record: what was injected, how the filter degraded and recovered, and
// whether every protocol invariant held.
func Robustness(w io.Writer, st *system.Stats) {
	header(w, "Robustness: injected faults, degradation, invariants")
	fmt.Fprintf(w, "%-28s %d dropped / %d bounced / %d duplicated / %d delayed\n",
		"message faults", st.FaultsDropped, st.FaultsBounced, st.FaultsDuplicated, st.FaultsDelayed)
	fmt.Fprintf(w, "%-28s %d map / %d counter / %d storm swaps\n",
		"scheduled faults", st.MapCorruptions, st.CounterCorruptions, st.StormRelocations)
	fmt.Fprintf(w, "%-28s %d counter-augmented / %d broadcast\n",
		"degraded routes", st.FallbackCounterAug, st.FallbackBroadcast)
	fmt.Fprintf(w, "%-28s %d rebuilds / %d counter underflows\n",
		"map recovery", st.MapRebuilds, st.CounterUnderflows)
	fmt.Fprintf(w, "%-28s %d sweeps, %d violations\n",
		"invariant checks", st.InvariantChecks, len(st.InvariantViolations))
	for _, v := range st.InvariantViolations {
		fmt.Fprintf(w, "  VIOLATION %s\n", v)
	}
}

// Figure1 renders the L2-miss decomposition.
func Figure1(w io.Writer, rows []exp.Fig1Row) {
	header(w, "Figure 1: L2 miss decomposition (2 VMs per workload)")
	fmt.Fprintf(w, "%-14s %8s %8s %8s | %12s %12s\n",
		"workload", "xen%", "dom0%", "guest%", "hv+dom0 meas", "hv+dom0 paper")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %8.2f %8.2f %8.2f | %12.2f %12.2f\n",
			r.Workload, r.XenPct, r.Dom0Pct, r.GuestPct, r.XenPct+r.Dom0Pct, r.PaperPct)
	}
}

// Figure2 renders the potential-reduction model.
func Figure2(w io.Writer, rows []exp.Fig2Row) {
	header(w, "Figure 2: potential snoop reduction (4 vCPUs per VM)")
	fmt.Fprintf(w, "%-6s %-6s | %s\n", "VMs", "cores", "reduction%% by hypervisor ratio (0,5,10,20,30,40%)")
	byVM := map[int][]exp.Fig2Row{}
	var order []int
	for _, r := range rows {
		if _, ok := byVM[r.VMs]; !ok {
			order = append(order, r.VMs)
		}
		byVM[r.VMs] = append(byVM[r.VMs], r)
	}
	for _, vms := range order {
		rs := byVM[vms]
		fmt.Fprintf(w, "%-6d %-6d |", vms, rs[0].Cores)
		for _, r := range rs {
			fmt.Fprintf(w, " %6.2f", r.ReductionPct)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "paper anchors: 16 VMs ideal >93%; 84-89% at 5-10% hypervisor misses")
}

// Figure3 renders the pinning-vs-migration execution times.
func Figure3(w io.Writer, rows []exp.Fig3Row) {
	header(w, "Figure 3: full-migration exec time normalized to pinned (=100)")
	fmt.Fprintf(w, "%-14s %22s %22s\n", "workload", "undercommitted(2VM)", "overcommitted(4VM)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %21.1f%% %21.1f%%\n", r.Workload, r.NormFullUnderPct, r.NormFullOverPct)
	}
	fmt.Fprintln(w, "paper shape: pinning wins undercommitted; migration wins overcommitted")
}

// Table1 renders relocation periods.
func Table1(w io.Writer, rows []exp.Table1Row) {
	header(w, "Table I: average vCPU relocation periods (ms)")
	fmt.Fprintf(w, "%-14s %12s %12s | %12s %12s\n",
		"workload", "under meas", "over meas", "under paper", "over paper")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %12.1f %12.1f | %12.1f %12.1f\n",
			r.Workload, r.UnderMS, r.OverMS, r.PaperUnderMS, r.PaperOverMS)
	}
}

// Table4Figure6 renders traffic reduction and normalized runtime.
func Table4Figure6(w io.Writer, rows []exp.Table4Fig6Row) {
	header(w, "Table IV + Figure 6: ideally pinned VMs (4 VMs x 4 vCPUs, 16 cores)")
	fmt.Fprintf(w, "%-14s %14s %14s %14s %14s\n",
		"workload", "traffic red%", "paper red%", "norm runtime%", "snoop red%")
	var sumT, sumP, sumR float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %14.2f %14.2f %14.2f %14.2f\n",
			r.Workload, r.TrafficReductionPct, r.PaperTrafficRedPct,
			r.NormRuntimePct, r.SnoopReductionPct)
		sumT += r.TrafficReductionPct
		sumP += r.PaperTrafficRedPct
		sumR += r.NormRuntimePct
	}
	n := float64(len(rows))
	fmt.Fprintf(w, "%-14s %14.2f %14.2f %14.2f\n", "average", sumT/n, sumP/n, sumR/n)
	fmt.Fprintln(w, "paper: avg traffic reduction 63.68%; runtimes 90.9-99.8% (avg ~96.2%)")
}

// Figures78 renders the migration sweeps.
func Figures78(w io.Writer, rows []exp.Fig78Row) {
	header(w, "Figures 7/8: normalized snoops vs TokenB under vCPU relocation (ideal=25%)")
	fmt.Fprintf(w, "%-14s %8s | %12s %12s %18s\n",
		"workload", "period", "vsnoop-base", "counter", "counter-threshold")
	type key struct {
		app    string
		period float64
	}
	cells := map[key]map[string]float64{}
	var order []key
	for _, r := range rows {
		k := key{r.Workload, r.PeriodMs}
		if _, ok := cells[k]; !ok {
			cells[k] = map[string]float64{}
			order = append(order, k)
		}
		cells[k][r.Policy.String()] = r.NormSnoopPct
	}
	for _, k := range order {
		c := cells[k]
		fmt.Fprintf(w, "%-14s %6.1fms | %11.1f%% %11.1f%% %17.1f%%\n",
			k.app, k.period, c["vsnoop-base"], c["counter"], c["counter-threshold"])
	}
	fmt.Fprintln(w, "paper shape: counter near 25% at 5/2.5ms, ~55% at 0.1ms; base ~96% at 0.1ms")
}

// Figure9 renders removal-period CDFs.
func Figure9(w io.Writer, series []exp.Fig9Series) {
	header(w, "Figure 9: CDF of core-removal period after relocation (counter, 5ms period)")
	for _, s := range series {
		fmt.Fprintf(w, "%-14s n=%-6d never-removed=%.1f%%\n", s.Workload, s.N, s.NeverRemovedPct)
		if len(s.Xms) == 0 {
			continue
		}
		fmt.Fprintf(w, "  ms : ")
		for i := 0; i < len(s.Xms); i += 4 {
			fmt.Fprintf(w, "%7.1f", s.Xms[i])
		}
		fmt.Fprintf(w, "\n  cdf: ")
		for i := 0; i < len(s.CDF); i += 4 {
			fmt.Fprintf(w, "%7.2f", s.CDF[i])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "paper shape: most removals < 10ms; radix/ferret tails; blackscholes never removes")
}

// Table5 renders content-shared access/miss shares.
func Table5(w io.Writer, rows []exp.Table5Row) {
	header(w, "Table V: L1 accesses / L2 misses on content-shared pages (%)")
	fmt.Fprintf(w, "%-14s %10s %10s | %10s %10s\n",
		"workload", "access", "L2miss", "paper acc", "paper miss")
	var sa, sm float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %10.2f %10.2f | %10.2f %10.2f\n",
			r.Workload, r.AccessPct, r.MissPct, r.PaperAccess, r.PaperMiss)
		sa += r.AccessPct
		sm += r.MissPct
	}
	n := float64(len(rows))
	fmt.Fprintf(w, "%-14s %10.2f %10.2f | %10.2f %10.2f\n", "average", sa/n, sm/n, 12.51, 19.94)
}

// Figure10 renders the content-policy snoop comparison.
func Figure10(w io.Writer, rows []exp.Fig10Row) {
	header(w, "Figure 10: normalized snoops with content-sharing policies (vs TokenB)")
	fmt.Fprintf(w, "%-14s %16s %14s %10s %10s\n",
		"workload", "vsnoop-broadcast", "memory-direct", "intra-VM", "friend-VM")
	type rowmap = map[string]float64
	per := map[string]rowmap{}
	var order []string
	for _, r := range rows {
		if _, ok := per[r.Workload]; !ok {
			per[r.Workload] = rowmap{}
			order = append(order, r.Workload)
		}
		per[r.Workload][r.Policy.String()] = r.NormSnoopPct
	}
	for _, app := range order {
		c := per[app]
		fmt.Fprintf(w, "%-14s %15.1f%% %13.1f%% %9.1f%% %9.1f%%\n",
			app, c["vsnoop-broadcast"], c["memory-direct"], c["intra-VM"], c["friend-VM"])
	}
	fmt.Fprintln(w, "paper shape: memory-direct lowest (<=25%); all beat broadcast on fft/blacksch./canneal/specjbb")
}

// Table6 renders the data-holder decomposition.
func Table6(w io.Writer, rows []exp.Table6Row) {
	header(w, "Table VI: potential data holders for content-shared L2 misses (%)")
	fmt.Fprintf(w, "%-14s | %21s | %21s | %21s | %21s\n",
		"workload", "cache:all meas/paper", "intra-VM meas/paper",
		"friend-VM meas/paper", "memory meas/paper")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s | %9.1f / %8.1f | %9.1f / %8.1f | %9.1f / %8.1f | %9.1f / %8.1f\n",
			r.Workload,
			r.CacheAllPct, r.PaperAll,
			r.IntraVMPct, r.PaperIntra,
			r.FriendVMPct, r.PaperFriend,
			r.MemoryPct, r.PaperMemory)
	}
}

// Ablations renders the design-choice ablation table.
func Ablations(w io.Writer, rows []exp.AblationRow) {
	header(w, "Ablations: design choices quantified")
	fmt.Fprintf(w, "%-42s %12s %12s  %s\n", "ablation", "baseline", "variant", "unit")
	for _, r := range rows {
		fmt.Fprintf(w, "%-42s %12.1f %12.1f  %s\n", r.Name, r.Baseline, r.Variant, r.Unit)
		fmt.Fprintf(w, "%-42s %s\n", "", r.Note)
	}
}

// Energy renders the coherence-energy extension experiment.
func Energy(w io.Writer, rows []exp.EnergyRow) {
	header(w, "Energy (extension): coherence dynamic energy, TokenB vs virtual snooping")
	fmt.Fprintf(w, "%-12s %-12s %10s %10s %10s %10s %10s | %9s %9s\n",
		"workload", "policy", "snooptag", "network", "cache", "dram", "total(nJ)",
		"total%", "snoop%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-12s %10.0f %10.0f %10.0f %10.0f %10.0f | %8.1f%% %8.1f%%\n",
			r.Workload, r.Policy, r.SnoopTagNJ, r.NetworkNJ, r.CacheNJ, r.DRAMNJ,
			r.TotalNJ, r.NormTotalPct, r.NormSnoopTagPct)
	}
	fmt.Fprintln(w, "paper motivation: snoop filtering primarily saves tag-lookup + message power")
}

// Comparison renders the virtual-snooping vs RegionScout comparison.
func Comparison(w io.Writer, rows []exp.ComparisonRow) {
	header(w, "Comparison (extension): vsnoop vs region filtering vs directory")
	fmt.Fprintf(w, "%-12s %-12s %11s %12s %13s %13s %10s\n",
		"workload", "filter", "snoops/txn", "norm snoop%", "traffic red%", "norm runtime%", "miss lat")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-12s %11.2f %11.1f%% %12.1f%% %12.1f%% %9.0fc\n",
			r.Workload, r.Filter, r.SnoopsPerTxn, r.NormSnoopPct,
			r.TrafficRedPct, r.NormRuntimePct, r.MissLatency)
	}
	fmt.Fprintln(w, "paper claims (Sec VII): VM boundaries give a free snoop domain (no tables,")
	fmt.Fprintln(w, "no rediscovery); filtered snooping keeps 2-hop transfers, directories pay")
	fmt.Fprintln(w, "home indirection on every miss")
}
