// Package mem models memory virtualization as seen by the virtual-snooping
// hardware: per-VM guest-physical to host-physical page tables maintained
// by the hypervisor, the page sharing-type bits that virtual snooping
// stores in (shadow/nested) page-table entries, content-based page sharing
// with copy-on-write, and the globally RW-shared hypervisor region.
//
// The paper (Section IV.A) distinguishes three page types, recorded in two
// unused PTE bits and visible at TLB-lookup time:
//
//   - VM-private:   only the owning VM ever touches the page; snoops can be
//     confined to the VM's vCPU map.
//   - RW-shared:    hypervisor data, dom0 I/O rings, inter-VM channels;
//     snoops must be broadcast.
//   - RO-shared:    content-based shared pages, guaranteed clean in memory;
//     snoops can use the memory-direct / intra-VM / friend-VM
//     optimizations of Section VI.
package mem

import (
	"fmt"
	"sort"
)

// Page and block geometry. 4 KB pages, 64 B coherence blocks.
const (
	PageShift     = 12
	BlockShift    = 6
	PageBytes     = 1 << PageShift
	BlockBytes    = 1 << BlockShift
	BlocksPerPage = 1 << (PageShift - BlockShift)
)

// VMID identifies a virtual machine. The hypervisor itself is addressed
// with the sentinel Hypervisor when attributing accesses.
type VMID uint16

// Hypervisor is the VMID sentinel for accesses executed by the hypervisor
// itself (not any guest).
const Hypervisor VMID = 0xFFFF

// reservedVMs is the number of sentinel VMIDs at the top of the VMID
// space (0xFFFD..0xFFFF: dom0, spare, Hypervisor) that DenseVM folds to
// the low indexes.
const reservedVMs = 3

// DenseVM maps a VMID onto a small dense array index: the reserved
// sentinels fold to 0..2 and guest IDs shift up by 3. Hardware-register
// models (residence counters, vCPU map registers) index flat arrays by
// this value, so their footprint is proportional to the number of guest
// VMs rather than the 16-bit VMID space.
func DenseVM(vm VMID) int {
	if vm >= 0xFFFD {
		return int(vm) - 0xFFFD
	}
	return int(vm) + reservedVMs
}

// VMFromDense inverts DenseVM.
func VMFromDense(i int) VMID {
	if i < reservedVMs {
		return VMID(0xFFFD + i)
	}
	return VMID(i - reservedVMs)
}

// GuestPage is a guest-physical page number within one VM.
type GuestPage uint64

// HostPage is a host-physical (machine) page number.
type HostPage uint64

// BlockAddr is a host-physical coherence-block address (block number).
type BlockAddr uint64

// PageOf returns the host page containing a block.
func (b BlockAddr) PageOf() HostPage {
	return HostPage(b >> (PageShift - BlockShift))
}

// BlockInPage builds the block address for block index i (0..63) of page p.
func BlockInPage(p HostPage, i int) BlockAddr {
	return BlockAddr(uint64(p)<<(PageShift-BlockShift) | uint64(i)&(BlocksPerPage-1))
}

// PageType is the sharing classification stored in the two unused PTE bits.
type PageType uint8

const (
	// PagePrivate marks a VM-private page: snoops multicast to the vCPU map.
	PagePrivate PageType = iota
	// PageRWShared marks hypervisor / inter-VM read-write sharing: broadcast.
	PageRWShared
	// PageROShared marks content-based read-only sharing: optimizable.
	PageROShared
)

func (t PageType) String() string {
	switch t {
	case PagePrivate:
		return "VM-private"
	case PageRWShared:
		return "RW-shared"
	case PageROShared:
		return "RO-shared"
	}
	return fmt.Sprintf("PageType(%d)", uint8(t))
}

// ContentID identifies page contents for the content-based sharing
// detector; pages in different VMs with equal nonzero ContentIDs are
// candidates for merging. Zero means "unique content".
type ContentID uint64

// pte is one guest-physical mapping entry.
type pte struct {
	host    HostPage
	typ     PageType
	content ContentID
	valid   bool
}

// Space is one VM's guest-physical address space (the nested/shadow
// mapping table the hypervisor maintains for it).
type Space struct {
	vm    VMID
	table []pte
}

// Pages returns the size of the guest-physical space in pages.
func (s *Space) Pages() int { return len(s.table) }

// Manager is the hypervisor's memory manager: it owns host-physical page
// allocation, per-VM spaces, sharing types, the hypervisor region, and the
// content-based sharing (merge + copy-on-write) machinery.
type Manager struct {
	nextHost HostPage
	spaces   map[VMID]*Space
	hostType map[HostPage]PageType
	// content merge index: content id -> canonical shared host page
	merged map[ContentID]HostPage
	// refcount of VM mappings per RO-shared host page
	roRefs map[HostPage]int
	// which VMs currently map each RO-shared host page
	roSharers map[HostPage]map[VMID]bool
	// hypervisor RW-shared region
	hvPages []HostPage
	// OnShareFlush, if set, is invoked when a page becomes RO-shared so
	// the caching layer can flush dirty lines (paper Section VI.B: memory
	// must hold a clean copy before RO optimizations apply).
	OnShareFlush func(HostPage)
	// statistics
	CowCount    uint64
	MergedPages uint64
}

// NewManager returns a memory manager with hvPages pages of globally
// RW-shared hypervisor memory.
func NewManager(hvPages int) *Manager {
	m := &Manager{
		spaces:    make(map[VMID]*Space),
		hostType:  make(map[HostPage]PageType),
		merged:    make(map[ContentID]HostPage),
		roRefs:    make(map[HostPage]int),
		roSharers: make(map[HostPage]map[VMID]bool),
	}
	for i := 0; i < hvPages; i++ {
		p := m.allocHost(PageRWShared)
		m.hvPages = append(m.hvPages, p)
	}
	return m
}

func (m *Manager) allocHost(t PageType) HostPage {
	p := m.nextHost
	m.nextHost++
	m.hostType[p] = t
	return p
}

// NewSpace creates the guest-physical space for vm with the given number
// of pages. Pages are allocated lazily on first Translate.
func (m *Manager) NewSpace(vm VMID, pages int) *Space {
	if _, ok := m.spaces[vm]; ok {
		panic(fmt.Sprintf("mem: space for VM %d already exists", vm))
	}
	s := &Space{vm: vm, table: make([]pte, pages)}
	m.spaces[vm] = s
	return s
}

// Space returns the address space of vm, or nil.
func (m *Manager) Space(vm VMID) *Space { return m.spaces[vm] }

// HypervisorPages returns the number of pages in the hypervisor region.
func (m *Manager) HypervisorPages() int { return len(m.hvPages) }

// HypervisorPage returns host page i of the RW-shared hypervisor region.
func (m *Manager) HypervisorPage(i int) HostPage { return m.hvPages[i%len(m.hvPages)] }

// Translation is the result of a guest-physical lookup: the host page and
// its sharing type, exactly the information the paper exposes to the cache
// controller through the TLB.
type Translation struct {
	Host HostPage
	Type PageType
}

// Translate maps (vm, guest page) to its host page, allocating a fresh
// VM-private host page on first touch (the hypervisor's lazy allocation).
func (m *Manager) Translate(vm VMID, gp GuestPage) Translation {
	s := m.spaces[vm]
	if s == nil {
		panic(fmt.Sprintf("mem: no space for VM %d", vm))
	}
	if int(gp) >= len(s.table) {
		panic(fmt.Sprintf("mem: guest page %d out of range for VM %d (%d pages)", gp, vm, len(s.table)))
	}
	e := &s.table[gp]
	if !e.valid {
		e.host = m.allocHost(PagePrivate)
		e.typ = PagePrivate
		e.valid = true
	}
	return Translation{Host: e.host, Type: e.typ}
}

// TypeOf returns the sharing type of a host page (PagePrivate for unknown
// pages, which matches the hardware default of no sharing bits set).
func (m *Manager) TypeOf(p HostPage) PageType { return m.hostType[p] }

// PreallocateAll eagerly allocates every unmapped guest page in every space,
// in (VM id, guest page) order — the same order lazy first-touch allocation
// would produce on a serial run of the reference workloads, whose vCPUs walk
// their spaces in VM order from cycle zero. Sharded runs call this at setup:
// Translate's first-touch path mutates the shared allocator from concurrent
// shards, and host-page numbering must not depend on shard interleaving.
func (m *Manager) PreallocateAll() {
	vms := make([]VMID, 0, len(m.spaces))
	for vm := range m.spaces {
		vms = append(vms, vm)
	}
	sort.Slice(vms, func(i, j int) bool { return vms[i] < vms[j] })
	for _, vm := range vms {
		s := m.spaces[vm]
		for gp := range s.table {
			e := &s.table[gp]
			if !e.valid {
				e.host = m.allocHost(PagePrivate)
				e.typ = PagePrivate
				e.valid = true
			}
		}
	}
}

// CowKey packs a (vm, guest page) pair into the key of the preallocated
// copy-on-write target index (PrepareCowTargets).
func CowKey(vm VMID, gp GuestPage) uint64 { return uint64(vm)<<32 | uint64(gp) }

// PrepareCowTargets preallocates one private host page per RO-shared
// (vm, guest page) mapping, in (VM id, guest page) order, and returns the
// target index keyed by CowKey. The partitioned engine calls this at setup,
// after MergeIdentical: copy-on-write traps then remap through per-domain
// overlay tables onto these fixed targets instead of mutating the shared
// manager at run time, so host-page numbering never depends on the order
// concurrent domains take their COW faults.
func (m *Manager) PrepareCowTargets() map[uint64]HostPage {
	targets := make(map[uint64]HostPage)
	vms := make([]VMID, 0, len(m.spaces))
	for vm := range m.spaces {
		vms = append(vms, vm)
	}
	sort.Slice(vms, func(i, j int) bool { return vms[i] < vms[j] })
	for _, vm := range vms {
		s := m.spaces[vm]
		for gp := range s.table {
			e := &s.table[gp]
			if e.valid && e.typ == PageROShared {
				targets[CowKey(vm, GuestPage(gp))] = m.allocHost(PagePrivate)
			}
		}
	}
	return targets
}

// SetContent declares the content of a guest page, touching it first if
// needed. It is used by workload setup to mark pages whose contents are
// identical across VMs (e.g. guest kernel text, shared libraries).
func (m *Manager) SetContent(vm VMID, gp GuestPage, c ContentID) {
	m.Translate(vm, gp) // ensure allocated
	m.spaces[vm].table[gp].content = c
}

// MergeIdentical runs the idealized content-based sharing detector of
// Section VI.A: every pair of pages (across different VMs) with equal
// nonzero ContentIDs is merged onto one RO-shared host page. Newly shared
// pages trigger OnShareFlush so caches can write dirty lines back. It
// returns the number of mappings that were redirected.
func (m *Manager) MergeIdentical() int {
	redirected := 0
	vms := make([]VMID, 0, len(m.spaces))
	for vm := range m.spaces {
		vms = append(vms, vm)
	}
	sort.Slice(vms, func(i, j int) bool { return vms[i] < vms[j] })
	for _, vm := range vms {
		s := m.spaces[vm]
		for gp := range s.table {
			e := &s.table[gp]
			if !e.valid || e.content == 0 || e.typ == PageRWShared {
				continue
			}
			canon, ok := m.merged[e.content]
			if !ok {
				// First page with this content becomes the canonical
				// RO-shared copy.
				canon = e.host
				m.merged[e.content] = canon
				m.hostType[canon] = PageROShared
				m.roRefs[canon] = 1
				m.roSharers[canon] = map[VMID]bool{vm: true}
				m.MergedPages++
				if m.OnShareFlush != nil {
					m.OnShareFlush(canon)
				}
				e.typ = PageROShared
				continue
			}
			if e.host == canon {
				continue // already merged
			}
			// Redirect this mapping to the canonical page. The old private
			// host page is abandoned (freed in a real hypervisor).
			e.host = canon
			e.typ = PageROShared
			m.roRefs[canon]++
			m.roSharers[canon][vm] = true
			redirected++
		}
	}
	return redirected
}

// CopyOnWrite handles a guest store to an RO-shared page (Section VI.A):
// the hypervisor allocates a fresh private page for the writer and remaps
// it; other sharers keep the read-only copy. It returns the old and new
// host pages. It panics if the mapping is not RO-shared.
func (m *Manager) CopyOnWrite(vm VMID, gp GuestPage) (old, fresh HostPage) {
	s := m.spaces[vm]
	e := &s.table[gp]
	if !e.valid || e.typ != PageROShared {
		panic(fmt.Sprintf("mem: CopyOnWrite on non-RO page vm=%d gp=%d", vm, gp))
	}
	old = e.host
	fresh = m.allocHost(PagePrivate)
	e.host = fresh
	e.typ = PagePrivate
	e.content = 0 // contents now diverge
	m.roRefs[old]--
	delete(m.roSharers[old], vm)
	m.CowCount++
	return old, fresh
}

// ShareRW marks a guest page of vm as RW-shared (an inter-VM communication
// ring or hypervisor-shared buffer). Multiple VMs may be mapped onto the
// same RW-shared host page by passing the host page returned from the
// first call.
func (m *Manager) ShareRW(vm VMID, gp GuestPage, existing HostPage, reuse bool) HostPage {
	s := m.spaces[vm]
	e := &s.table[gp]
	var hp HostPage
	if reuse {
		hp = existing
	} else {
		hp = m.allocHost(PageRWShared)
	}
	e.host = hp
	e.typ = PageRWShared
	e.valid = true
	m.hostType[hp] = PageRWShared
	return hp
}

// ROSharers returns the VMs currently mapping RO-shared host page p, in
// ascending VMID order so callers may iterate deterministically.
func (m *Manager) ROSharers(p HostPage) []VMID {
	set := m.roSharers[p]
	out := make([]VMID, 0, len(set))
	for vm := range set {
		out = append(out, vm)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SharedMatrix returns, for each ordered VM pair (a, b), the number of
// RO-shared host pages both currently map. It drives friend-VM selection
// (Section VI.B): a VM's friend is the VM it shares the most content with.
func (m *Manager) SharedMatrix() map[VMID]map[VMID]int {
	out := make(map[VMID]map[VMID]int)
	for _, sharers := range m.roSharers { //lint:ordered per-page pair counts are summed; addition commutes, so the matrix is order-free
		vms := make([]VMID, 0, len(sharers))
		for vm := range sharers { //lint:ordered pair counting below visits every (a,b) pair regardless of harvest order
			vms = append(vms, vm)
		}
		for _, a := range vms {
			for _, b := range vms {
				if a == b {
					continue
				}
				if out[a] == nil {
					out[a] = make(map[VMID]int)
				}
				out[a][b]++
			}
		}
	}
	return out
}

// FriendOf returns the VM sharing the most RO-shared pages with vm, using
// the lowest VMID to break ties. ok is false when vm shares nothing.
func (m *Manager) FriendOf(vm VMID) (friend VMID, ok bool) {
	row := m.SharedMatrix()[vm]
	best := -1
	for other, n := range row { //lint:ordered max under the total order (count, lowest VMID) — the winner is unique whatever the visit order
		if n > best || (n == best && other < friend) {
			best = n
			friend = other
		}
	}
	return friend, best >= 0
}
