package mem

import (
	"testing"
	"testing/quick"
)

func TestTranslateAllocatesLazily(t *testing.T) {
	m := NewManager(0)
	m.NewSpace(1, 16)
	tr1 := m.Translate(1, 3)
	tr2 := m.Translate(1, 3)
	if tr1.Host != tr2.Host {
		t.Fatal("repeat translation changed host page")
	}
	if tr1.Type != PagePrivate {
		t.Fatalf("fresh page type = %v, want VM-private", tr1.Type)
	}
	tr3 := m.Translate(1, 4)
	if tr3.Host == tr1.Host {
		t.Fatal("distinct guest pages mapped to same host page")
	}
}

func TestTranslateIsolationBetweenVMs(t *testing.T) {
	m := NewManager(0)
	m.NewSpace(1, 8)
	m.NewSpace(2, 8)
	a := m.Translate(1, 0)
	b := m.Translate(2, 0)
	if a.Host == b.Host {
		t.Fatal("two VMs share a private host page")
	}
}

func TestHypervisorRegionIsRWShared(t *testing.T) {
	m := NewManager(4)
	if m.HypervisorPages() != 4 {
		t.Fatalf("hv pages = %d", m.HypervisorPages())
	}
	for i := 0; i < 4; i++ {
		if m.TypeOf(m.HypervisorPage(i)) != PageRWShared {
			t.Fatalf("hypervisor page %d is not RW-shared", i)
		}
	}
	// wraps around
	if m.HypervisorPage(5) != m.HypervisorPage(1) {
		t.Fatal("HypervisorPage must wrap modulo region size")
	}
}

func TestMergeIdentical(t *testing.T) {
	m := NewManager(0)
	m.NewSpace(1, 8)
	m.NewSpace(2, 8)
	m.NewSpace(3, 8)
	m.SetContent(1, 0, 77)
	m.SetContent(2, 5, 77)
	m.SetContent(3, 2, 77)
	m.SetContent(1, 1, 88) // unique to VM 1: no cross-VM duplicate but same id only once
	flushed := 0
	m.OnShareFlush = func(HostPage) { flushed++ }
	n := m.MergeIdentical()
	if n != 2 {
		t.Fatalf("redirected %d mappings, want 2", n)
	}
	a := m.Translate(1, 0)
	b := m.Translate(2, 5)
	c := m.Translate(3, 2)
	if a.Host != b.Host || b.Host != c.Host {
		t.Fatal("identical-content pages not merged to one host page")
	}
	if a.Type != PageROShared {
		t.Fatalf("merged page type = %v, want RO-shared", a.Type)
	}
	if flushed == 0 {
		t.Fatal("OnShareFlush not invoked for newly shared page")
	}
	sharers := m.ROSharers(a.Host)
	if len(sharers) != 3 {
		t.Fatalf("sharers = %v, want 3 VMs", sharers)
	}
	// Page with content 88 exists once; it becomes canonical RO-shared on
	// first merge pass (the paper's detector marks it shareable) but no
	// mapping is redirected.
	d := m.Translate(1, 1)
	if d.Type != PageROShared {
		t.Fatalf("single-copy content page type = %v", d.Type)
	}
}

func TestMergeIdempotent(t *testing.T) {
	m := NewManager(0)
	m.NewSpace(1, 4)
	m.NewSpace(2, 4)
	m.SetContent(1, 0, 5)
	m.SetContent(2, 0, 5)
	first := m.MergeIdentical()
	second := m.MergeIdentical()
	if first != 1 || second != 0 {
		t.Fatalf("merge counts = %d,%d want 1,0", first, second)
	}
}

func TestCopyOnWrite(t *testing.T) {
	m := NewManager(0)
	m.NewSpace(1, 4)
	m.NewSpace(2, 4)
	m.SetContent(1, 0, 9)
	m.SetContent(2, 0, 9)
	m.MergeIdentical()
	shared := m.Translate(1, 0).Host
	old, fresh := m.CopyOnWrite(1, 0)
	if old != shared {
		t.Fatal("COW old page mismatch")
	}
	if fresh == shared {
		t.Fatal("COW did not allocate a new page")
	}
	after := m.Translate(1, 0)
	if after.Host != fresh || after.Type != PagePrivate {
		t.Fatalf("post-COW mapping = %+v", after)
	}
	// VM 2 still reads the shared copy.
	if m.Translate(2, 0).Host != shared {
		t.Fatal("COW disturbed the other sharer")
	}
	if got := len(m.ROSharers(shared)); got != 1 {
		t.Fatalf("sharers after COW = %d, want 1", got)
	}
	if m.CowCount != 1 {
		t.Fatalf("CowCount = %d", m.CowCount)
	}
}

func TestCopyOnWritePanicsOnPrivate(t *testing.T) {
	m := NewManager(0)
	m.NewSpace(1, 4)
	m.Translate(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("COW on private page did not panic")
		}
	}()
	m.CopyOnWrite(1, 0)
}

func TestFriendOf(t *testing.T) {
	m := NewManager(0)
	for vm := VMID(1); vm <= 3; vm++ {
		m.NewSpace(vm, 16)
	}
	// VMs 1 and 2 share 3 pages; VMs 1 and 3 share 1 page.
	for c := ContentID(1); c <= 3; c++ {
		m.SetContent(1, GuestPage(c), c)
		m.SetContent(2, GuestPage(c), c)
	}
	m.SetContent(1, 10, 50)
	m.SetContent(3, 10, 50)
	m.MergeIdentical()
	f, ok := m.FriendOf(1)
	if !ok || f != 2 {
		t.Fatalf("FriendOf(1) = %d,%v want 2,true", f, ok)
	}
	f, ok = m.FriendOf(3)
	if !ok || f != 1 {
		t.Fatalf("FriendOf(3) = %d,%v want 1,true", f, ok)
	}
}

func TestFriendOfNoSharing(t *testing.T) {
	m := NewManager(0)
	m.NewSpace(1, 4)
	m.Translate(1, 0)
	if _, ok := m.FriendOf(1); ok {
		t.Fatal("FriendOf reported a friend with no sharing")
	}
}

func TestShareRW(t *testing.T) {
	m := NewManager(0)
	m.NewSpace(1, 4)
	m.NewSpace(2, 4)
	hp := m.ShareRW(1, 0, 0, false)
	hp2 := m.ShareRW(2, 3, hp, true)
	if hp != hp2 {
		t.Fatal("reuse did not map same host page")
	}
	if m.Translate(1, 0).Host != m.Translate(2, 3).Host {
		t.Fatal("RW-shared page not visible to both VMs")
	}
	if m.Translate(1, 0).Type != PageRWShared {
		t.Fatal("RW-shared type not set")
	}
}

func TestBlockAddressing(t *testing.T) {
	p := HostPage(10)
	b0 := BlockInPage(p, 0)
	b63 := BlockInPage(p, 63)
	if b0.PageOf() != p || b63.PageOf() != p {
		t.Fatal("block->page roundtrip failed")
	}
	if b63-b0 != 63 {
		t.Fatalf("page spans %d blocks, want 64", b63-b0+1)
	}
	bNext := BlockInPage(p+1, 0)
	if bNext != b63+1 {
		t.Fatal("pages are not block-contiguous")
	}
}

func TestBlockRoundtripProperty(t *testing.T) {
	err := quick.Check(func(pRaw uint32, iRaw uint8) bool {
		p := HostPage(pRaw)
		i := int(iRaw) % BlocksPerPage
		return BlockInPage(p, i).PageOf() == p
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCOWNeverAliasesWritablePages(t *testing.T) {
	// Property: after any sequence of merges and COWs, no two VMs map the
	// same host page unless that page is RO- or RW-shared.
	m := NewManager(2)
	const vms = 4
	for vm := VMID(0); vm < vms; vm++ {
		m.NewSpace(vm, 32)
	}
	for vm := VMID(0); vm < vms; vm++ {
		for gp := GuestPage(0); gp < 32; gp++ {
			if gp < 8 {
				m.SetContent(vm, gp, ContentID(gp+1)) // common content
			} else {
				m.Translate(vm, gp)
			}
		}
	}
	m.MergeIdentical()
	// Writers break sharing one page at a time.
	for vm := VMID(0); vm < vms; vm++ {
		for gp := GuestPage(0); gp < 8; gp += 2 {
			m.CopyOnWrite(vm, gp)
		}
	}
	owner := make(map[HostPage]VMID)
	for vm := VMID(0); vm < vms; vm++ {
		for gp := GuestPage(0); gp < 32; gp++ {
			tr := m.Translate(vm, gp)
			if tr.Type != PagePrivate {
				continue
			}
			if prev, seen := owner[tr.Host]; seen && prev != vm {
				t.Fatalf("private host page %d aliased by VMs %d and %d", tr.Host, prev, vm)
			}
			owner[tr.Host] = vm
		}
	}
}
