package sim

import "testing"

// TestScheduleFnZeroAllocSteadyState is the allocation gate for the event
// kernel: once the heap's backing array has reached its working-set size,
// scheduling and firing prebound-handler events must not allocate at all.
// The event lives inline in the heap slice and its state rides in (arg, u),
// so the only allocation source would be a regression (interface boxing, a
// closure, or heap growth) — exactly what this test exists to catch.
func TestScheduleFnZeroAllocSteadyState(t *testing.T) {
	e := NewEngine()
	fired := 0
	fn := func(_ interface{}, u uint64) { fired++ }

	// Pre-grow the heap's backing array to steady state.
	for i := 0; i < 1024; i++ {
		e.ScheduleFn(Cycle(i&63), fn, nil, uint64(i))
	}
	e.Run()

	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			e.ScheduleFn(Cycle(i&15), fn, nil, uint64(i))
		}
		for e.Step() {
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state ScheduleFn/Step allocates %.2f allocs per 64-event batch, want 0", avg)
	}
}

// TestScheduleFnPointerArgZeroAlloc verifies that passing a pointer payload
// through arg does not allocate either (boxing a pointer into an interface
// is free; boxing a struct is not, which is why hot paths pre-box).
func TestScheduleFnPointerArgZeroAlloc(t *testing.T) {
	e := NewEngine()
	type payload struct{ n int }
	p := &payload{}
	fn := func(arg interface{}, _ uint64) { arg.(*payload).n++ }
	for i := 0; i < 1024; i++ {
		e.ScheduleFn(Cycle(i&63), fn, p, 0)
	}
	e.Run()

	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			e.ScheduleFn(Cycle(i&15), fn, p, 0)
		}
		for e.Step() {
		}
	})
	if avg != 0 {
		t.Fatalf("pointer-arg ScheduleFn allocates %.2f per batch, want 0", avg)
	}
}
