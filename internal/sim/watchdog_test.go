package sim

import (
	"errors"
	"testing"
)

func TestRunBoundedStepsCompletes(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := Cycle(1); i <= 5; i++ {
		e.Schedule(i, func() { fired++ })
	}
	if err := e.RunBoundedSteps(10); err != nil {
		t.Fatalf("RunBoundedSteps: %v", err)
	}
	if fired != 5 {
		t.Fatalf("fired = %d, want 5", fired)
	}
}

func TestRunBoundedStepsLimit(t *testing.T) {
	e := NewEngine()
	fired := 0
	// A self-perpetuating event chain that never drains.
	var tick func()
	tick = func() { fired++; e.Schedule(1, tick) }
	e.Schedule(1, tick)
	err := e.RunBoundedSteps(100)
	var sl *StepLimitError
	if !errors.As(err, &sl) {
		t.Fatalf("err = %v, want StepLimitError", err)
	}
	if fired != 100 {
		t.Fatalf("fired = %d, want exactly the 100-step bound", fired)
	}
	if sl.Limit != 100 || sl.Pending == 0 {
		t.Fatalf("StepLimitError = %+v, want Limit 100 and pending work", sl)
	}
}

func TestRunBoundedStepsExactFinish(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func() {})
	e.Schedule(2, func() {})
	// Bound equals the event count: the queue drains on the last allowed
	// step, which is completion, not a limit hit.
	if err := e.RunBoundedSteps(2); err != nil {
		t.Fatalf("RunBoundedSteps at exact bound: %v", err)
	}
}

func TestWatchdogFiresWithoutProgress(t *testing.T) {
	e := NewEngine()
	e.SetProgressLimit(50)
	var tick func()
	tick = func() { e.Schedule(1, tick) }
	e.Schedule(1, tick)
	var err error
	for {
		var ok bool
		ok, err = e.StepChecked()
		if err != nil || !ok {
			break
		}
	}
	var np *NoProgressError
	if !errors.As(err, &np) {
		t.Fatalf("err = %v, want NoProgressError", err)
	}
	if np.Limit != 50 {
		t.Fatalf("NoProgressError.Limit = %d, want 50", np.Limit)
	}
}

func TestWatchdogResetByProgress(t *testing.T) {
	e := NewEngine()
	e.SetProgressLimit(50)
	steps := 0
	var tick func()
	tick = func() {
		steps++
		if steps%10 == 0 {
			e.Progress() // simulated forward progress every 10 events
		}
		if steps < 500 {
			e.Schedule(1, tick)
		}
	}
	e.Schedule(1, tick)
	for {
		ok, err := e.StepChecked()
		if err != nil {
			t.Fatalf("watchdog fired despite regular progress: %v", err)
		}
		if !ok {
			break
		}
	}
	if steps != 500 {
		t.Fatalf("steps = %d, want 500", steps)
	}
}

func TestWatchdogDisarm(t *testing.T) {
	e := NewEngine()
	e.SetProgressLimit(10)
	e.SetProgressLimit(0) // disarm
	steps := 0
	var tick func()
	tick = func() {
		steps++
		if steps < 100 {
			e.Schedule(1, tick)
		}
	}
	e.Schedule(1, tick)
	for {
		ok, err := e.StepChecked()
		if err != nil {
			t.Fatalf("disarmed watchdog fired: %v", err)
		}
		if !ok {
			break
		}
	}
}
