package sim

import (
	"runtime"
	"sync/atomic"
)

// This file implements the free-running adaptive synchronization mode of the
// ShardedEngine: a conservative null-message protocol (Chandy-Misra-Bryant
// with lookahead) over the per-shard event queues, with no barriers at all.
//
// Each shard publishes an *earliest output time* (EOT): a monotone lower
// bound on the timestamp of any cross-shard event it may still deposit,
//
//	eot[s] = L_s + min(next local event of s, min over s' != s of eot[s'])
//
// where L_s is shard s's minimum cross-domain mesh latency (the partition
// horizon exposed by mesh.Partition). A shard may freely execute every local
// event strictly below its *earliest input time* EIT_s = min_{s'!=s} eot[s'],
// because any deposit still unseen must arrive at or beyond that bound.
// Windows therefore stretch with the actual distance to pending cross-domain
// work — thousands of cycles when domains run independently — instead of
// being fixed at the worst-case mesh latency, and no shard ever waits for a
// laggard unless the timestamp math forces it to.
//
// Why skipping every barrier cannot reorder an observable event: the heap
// pop order of one shard is a strict total order on (cycle, domain-seq key),
// a pure function of the event *set*. A deposit is pushed before its shard
// executes past the deposit's timestamp (the EIT bound above), so each
// shard's executed sequence — and with it every statistic — is the one the
// serial engine produces. The memory-order argument for the bound has three
// legs, each load-acquire/store-release via the atomics below:
//
//  1. EOTs are monotone (standard CMB induction: local events below the old
//     bound are gone, arrivals carry at least the old bound).
//  2. A reader loads eot[src] *before* draining box[src]: any deposit the
//     drain misses was put after the loaded EOT was published, and every
//     deposit of a round follows that round's execution, whose events are
//     at or above eot - L. So a missed deposit arrives >= the loaded EOT.
//  3. The producer publishes its EOT only after the round's deposits are in
//     their mailboxes, so "visible EOT" never runs ahead of mailbox state.
//
// EOTs stay finite forever: an empty shard publishes eit + L, not
// infinity, because a later arrival could still induce output (publishing
// infinity would let a peer run past that induced output). Quiescent
// shards therefore ratchet each other's EOTs upward without end, and
// termination needs its own detector — a Dijkstra-style double collect
// over three monotone/balanced global counters:
//
//   - deposited: incremented BEFORE each mailbox put;
//   - drained:   incremented AFTER a drain's events are in the heap;
//   - busy:      the number of shards that may still execute or deposit.
//     Starts at K; a shard decrements when it runs out of local events
//     (after the round's deposits are counted) and increments when a
//     drain hands it new work, BEFORE that drain's drained-increment.
//
// An idle shard exits iff it reads d1 := drained, then busy == 0, then
// deposited == d1. Soundness (sync/atomic ops are sequentially
// consistent): d1 == deposited with drained read first means every
// deposit counted by the second read was already drained by the first —
// nothing is in flight. busy == 0 between the two reads means every
// shard's last visible transition was to idle; a shard waking afterwards
// must first drain a deposit, and that deposit's increments either land
// before the collect (making it fail) or constitute a deposit after the
// collect, which inductively requires yet another waker before it — a
// regress that bottoms out in a contradiction. See TestAdaptive* for the
// executable version of this argument.

// shardSlot is one shard's hot synchronization state, padded so two shards
// never share a cache line (the EOT word is stored/loaded on every round).
type shardSlot struct {
	// eot is the published earliest-output-time (adaptive mode only).
	// Always finite: even an empty shard could be handed work whose
	// processing deposits output.
	eot atomic.Uint64

	// deposits counts cross-shard deposits made during the current window
	// (windowed mode only). Written by this shard while it executes, read
	// and reset by the barrier-A leader — the barrier orders both.
	deposits uint64

	// Telemetry, folded into SyncStats after the run.
	windows  uint64
	widthSum uint64
	elided   uint64
	mark     Cycle // end of the last accounted execution stretch

	_ [2]uint64 // pad to 64 bytes
}

// mailbox is one (src shard, dst shard) deposit channel: a spinlocked,
// reusable flat slice. put appends under the lock; drain empties the whole
// batch into the destination heap in one pass, keeping the backing array —
// zero steady-state allocations (gated by TestMailboxZeroAllocSteadyState).
// A growable slice (not a bounded ring) is deliberate: a producer must never
// block on mailbox capacity while its consumer waits on the producer's EOT.
type mailbox struct {
	lock  atomic.Uint32
	n     atomic.Int32 // published length; lets drain skip empty boxes
	items []event
	_     [4]uint64 // pad to 64 bytes
}

// put deposits one event. The CAS loop is uncontended in windowed mode
// (puts and drains are on opposite sides of a barrier) and short in
// adaptive mode (the holder only appends or drains).
//
//vsnoop:hotpath
func (mb *mailbox) put(ev event) {
	for !mb.lock.CompareAndSwap(0, 1) {
		runtime.Gosched()
	}
	mb.items = append(mb.items, ev)
	mb.n.Store(int32(len(mb.items)))
	mb.lock.Store(0)
}

// drain pushes every deposited event into eng's heap and empties the box,
// returning the count. The cheap n probe makes empty boxes (the common case
// when domains run independently) cost one atomic load and no lock; a put
// racing past the probe is safe to miss — its timestamp is at or beyond the
// reader's horizon, see the protocol argument above.
//
//vsnoop:hotpath
func (mb *mailbox) drain(eng *Engine) int {
	if mb.n.Load() == 0 {
		return 0
	}
	for !mb.lock.CompareAndSwap(0, 1) {
		runtime.Gosched()
	}
	items := mb.items
	k := len(items)
	for i := range items {
		eng.push(items[i])
		items[i] = event{} // release fn/arg references held by the array
	}
	mb.items = items[:0]
	mb.n.Store(0)
	mb.lock.Store(0)
	return k
}

// SyncStats is the synchronization telemetry of one sharded run. These are
// execution mechanics — they depend on the shard count and synchronization
// mode by nature, unlike the simulation statistics, which stay bit-identical
// across both.
type SyncStats struct {
	// Windows counts synchronization rounds that executed at least one
	// event (windowed mode: window advances; adaptive mode: execution
	// stretches).
	Windows uint64
	// BarrierWaits counts shard arrivals at a central barrier. Zero for a
	// whole run means no shard ever waited for an exchange.
	BarrierWaits uint64
	// ElidedBarriers counts exchange barriers skipped: quiet windows in
	// windowed mode, every execution stretch in free-running adaptive mode.
	ElidedBarriers uint64
	// WindowWidthSum accumulates the simulated-cycle width of all windows;
	// WindowWidthSum/Windows is the mean window width.
	WindowWidthSum uint64
	// CrossDeposits counts events deposited across shards over the run.
	CrossDeposits uint64

	// Timewarp telemetry (optimistic mode only; zero in the conservative
	// modes). Rollbacks counts checkpoint restores; AntiMessages counts held
	// cross-shard sends annihilated at commit because their sending event was
	// rolled back; GVTLagSum accumulates, over all shards and epochs, the
	// simulated cycles a shard had executed past the commit horizon (rolled
	// -back optimism); Bailouts counts permanent hand-offs to the
	// conservative adaptive engine after sustained floor-width commits.
	Rollbacks    uint64
	AntiMessages uint64
	GVTLagSum    uint64
	Bailouts     uint64
}

// MeanWindowWidth returns the mean simulated-cycle width of one
// synchronization window (0 when no window completed).
func (s SyncStats) MeanWindowWidth() float64 {
	if s.Windows == 0 {
		return 0
	}
	return float64(s.WindowWidthSum) / float64(s.Windows)
}

// MeanGVTLag returns the mean simulated cycles of rolled-back optimism per
// rollback (0 when the run never rolled back).
func (s SyncStats) MeanGVTLag() float64 {
	if s.Rollbacks == 0 {
		return 0
	}
	return float64(s.GVTLagSum) / float64(s.Rollbacks)
}

// runAdaptive is shard s's free-running loop (K >= 2, nothing observing
// window boundaries). Each round: read the other shards' EOTs and drain
// their mailboxes (in that order — see the protocol argument), execute every
// local event strictly below the resulting horizon, then publish this
// shard's new EOT.
func (se *ShardedEngine) runAdaptive(s int) {
	eng := se.engs[s]
	st := &se.sh[s]
	la := se.srcLook[s]
	k := se.k
	idle := false
	for {
		if se.stop.Load() != 0 {
			return // Run resets the counters before any rerun
		}

		// Horizon + drain. Loading eot[src] before draining box[src] makes
		// a missed concurrent put arrive at or beyond the loaded bound.
		eit := infCycle
		drained := 0
		for src := 0; src < k; src++ {
			if src == s {
				continue
			}
			if r := Cycle(se.sh[src].eot.Load()); r < eit {
				eit = r
			}
			drained += se.boxes[src*k+s].drain(eng)
		}
		if idle && drained > 0 {
			// Waking: raise busy before this drain is globally accounted,
			// so a termination collect can never see the work as done but
			// the worker as idle.
			se.busy.Add(1)
			idle = false
		}

		// Execute everything strictly below the horizon.
		f0 := eng.Fired()
		err := eng.RunWindow(eit)
		next := infCycle
		if at, ok := eng.NextAt(); ok {
			next = at
		}

		// Publish the new EOT (monotone by construction; finite whenever
		// any peer's is — an empty queue bounds output by eit + L, never
		// by infinity), then account the drained deposits.
		eo := next
		if eit < eo {
			eo = eit
		}
		if eo != infCycle {
			eo += la
		}
		st.eot.Store(uint64(eo))
		if drained > 0 {
			se.drained.Add(uint64(drained))
		}
		if err != nil {
			se.errs[s] = err
			se.stop.Store(1)
			return
		}

		if eng.Fired() > f0 {
			end := eit
			if end == infCycle {
				end = eng.Now()
			}
			if end > st.mark {
				st.windows++
				st.widthSum += uint64(end - st.mark)
				st.mark = end
			}
			st.elided++
			continue
		}

		// Out of local work: go idle (the decrement follows this round's
		// deposit counting in program order) and try the termination
		// double collect; otherwise yield and re-poll.
		if next == infCycle {
			if !idle {
				idle = true
				se.busy.Add(-1)
			}
			d1 := se.drained.Load()
			if se.busy.Load() == 0 && se.deposited.Load() == d1 {
				return
			}
		}
		runtime.Gosched()
	}
}
