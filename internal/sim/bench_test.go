package sim

import "testing"

func BenchmarkScheduleAndFire(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		e.Schedule(Cycle(i&1023), func() {})
		if e.Pending() > 8192 {
			e.Run()
		}
	}
	e.Run()
}

func BenchmarkScheduleFnAndFire(b *testing.B) {
	e := NewEngine()
	fn := func(interface{}, uint64) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.ScheduleFn(Cycle(i&1023), fn, nil, uint64(i))
		if e.Pending() > 8192 {
			e.Run()
		}
	}
	e.Run()
}

func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkRandZipf(b *testing.B) {
	r := NewRand(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Zipf(4096, 0.7)
	}
	_ = sink
}
