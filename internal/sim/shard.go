package sim

import (
	"math"
	"runtime"
	"sync/atomic"

	"vsnoop/internal/prof"
	"vsnoop/internal/runner"
)

// infCycle marks "no pending work" in window-minimum folds.
const infCycle = Cycle(math.MaxUint64)

// barrier is a sense-reversing central barrier for a handful of shard
// goroutines. The last arriver runs the leader closure (single-threaded:
// everyone else is spinning) and then releases the generation; the atomic
// generation publish orders the leader's plain writes before the waiters'
// reads, so window state needs no further synchronization.
type barrier struct {
	arrived atomic.Int32
	gen     atomic.Uint32
}

func (b *barrier) wait(k int32, leader func()) {
	g := b.gen.Load()
	if b.arrived.Add(1) == k {
		b.arrived.Store(0)
		if leader != nil {
			leader()
		}
		b.gen.Add(1)
		return
	}
	for b.gen.Load() == g {
		// Gosched (not a pure spin) keeps K shards correct, if slow, even
		// on a machine with fewer cores than shards.
		runtime.Gosched()
	}
}

// ShardedEngine runs a domain-partitioned simulation on K event queues —
// one Engine per shard, each on its own goroutine — under conservative
// window synchronization: all shards execute events inside the global
// window [w, w+lookahead), meet at a barrier, exchange cross-shard events
// through per-(src,dst) mailboxes, and the barrier leader advances the
// window to the global minimum pending timestamp. Because every event
// carries a (scheduling domain, per-domain order) key, results are
// bit-identical for any shard count, including K=1.
//
// The lookahead must be a lower bound on the latency of any cross-shard
// event (for the mesh: the minimum cross-domain link latency), so events
// deposited during a window always land at or beyond the window end.
type ShardedEngine struct {
	engs      []*Engine
	domShard  []int // domain -> shard
	k         int
	lookahead Cycle

	// boxes[src][dst] holds events deposited by shard src for shard dst
	// during the current window. Deposits happen before barrier A and
	// drains after it, so no lock is needed: the barrier orders them.
	boxes [][][]event

	// errs[s] is shard s's window error, published before barrier B.
	errs []error

	// Window state, written only by the barrier-B leader.
	w, wend Cycle
	done    bool
	err     error
	fired   uint64

	barA, barB barrier

	// MaxSteps, when nonzero, bounds the total events executed across all
	// shards; the run fails with a StepLimitError at the first window
	// boundary at or past the bound (window granularity keeps the trigger
	// point independent of the shard count).
	MaxSteps uint64

	// OnWindow, if set, runs on the barrier leader at every window
	// advance, with every shard quiesced at exactly cycle now (all events
	// below now executed, none at or above). Invariant checkers hook here.
	// A non-nil error aborts the run.
	OnWindow func(now Cycle) error
}

// NewSharded builds a sharded engine for nd domains with the given
// domain-to-shard assignment (len nd, shard indices dense from 0) and
// lookahead. Components must be wired to Eng(domShard[d]) for their domain.
func NewSharded(domShard []int, lookahead Cycle) *ShardedEngine {
	nd := len(domShard)
	k := 0
	for _, s := range domShard {
		if s+1 > k {
			k = s + 1
		}
	}
	se := &ShardedEngine{
		domShard:  domShard,
		k:         k,
		lookahead: lookahead,
		engs:      make([]*Engine, k),
		boxes:     make([][][]event, k),
		errs:      make([]error, k),
	}
	for s := 0; s < k; s++ {
		s := s
		local := make([]bool, nd)
		for d, sh := range domShard {
			local[d] = sh == s
		}
		eng := NewEngine()
		eng.SetDomains(nd, local, func(ev event) {
			dst := se.domShard[ev.dom]
			se.boxes[s][dst] = append(se.boxes[s][dst], ev)
		})
		se.engs[s] = eng
		se.boxes[s] = make([][]event, k)
	}
	return se
}

// Eng returns shard s's engine.
func (se *ShardedEngine) Eng(s int) *Engine { return se.engs[s] }

// Shards returns the shard count K.
func (se *ShardedEngine) Shards() int { return se.k }

// Fired returns the total events executed across all shards (valid after
// Run returns).
func (se *ShardedEngine) Fired() uint64 { return se.fired }

// Now returns the final window cycle (valid after Run returns).
func (se *ShardedEngine) Now() Cycle { return se.w }

// SetProgressLimit arms every shard's no-forward-progress watchdog.
func (se *ShardedEngine) SetProgressLimit(limit uint64) {
	for _, e := range se.engs {
		e.SetProgressLimit(limit)
	}
}

// Run executes all queued work to quiescence (or error). With K=1 it runs
// the window loop inline on the caller's goroutine — the degenerate serial
// case, whose window boundaries (and therefore results and OnWindow
// callbacks) are identical to any K>1 run.
func (se *ShardedEngine) Run() error {
	se.w, se.wend = 0, 0 // round 0 executes nothing and seeds the window
	se.done, se.err = false, nil
	if se.k == 1 {
		se.runSerial()
	} else {
		runner.Map(se.k, se.k, func(s int) struct{} {
			prof.Do(s, "shard-loop", func() { se.runShard(s) })
			return struct{}{}
		})
	}
	se.fired = 0
	for _, e := range se.engs {
		se.fired += e.Fired()
	}
	return se.err
}

// runSerial is the K=1 path. A single shard owns every domain, so deposits
// never happen and both barriers are no-ops; all that remains of the window
// protocol is the fold bookkeeping. When nothing observes window boundaries
// (no OnWindow hook, no step bound) even that folds away and the run is one
// plain heap drain — zero overhead versus the unsharded engine, with the
// same event order: a single queue pops by (domain, seq) key regardless of
// where windows would have fallen.
func (se *ShardedEngine) runSerial() {
	eng := se.engs[0]
	if se.OnWindow == nil && se.MaxSteps == 0 {
		se.err = eng.RunWindow(infCycle)
		se.w = eng.Now()
		return
	}
	for {
		se.errs[0] = eng.RunWindow(se.wend)
		se.fold()
		if se.done {
			return
		}
	}
}

func (se *ShardedEngine) runShard(s int) {
	eng := se.engs[s]
	k := int32(se.k)
	for {
		err := eng.RunWindow(se.wend)
		// Barrier A: after it, every deposit of this window is in its
		// mailbox and no shard is executing.
		se.barA.wait(k, nil)
		for src := 0; src < se.k; src++ {
			box := se.boxes[src][s]
			for i := range box {
				eng.push(box[i])
			}
			se.boxes[src][s] = box[:0]
		}
		se.errs[s] = err
		// Barrier B: the leader folds errors, checks bounds, and advances
		// the window to the global minimum pending timestamp.
		se.barB.wait(k, se.fold)
		if se.done {
			return
		}
	}
}

// fold is the barrier-B leader: every shard is quiesced and drained.
func (se *ShardedEngine) fold() {
	var ferr error
	for s := 0; s < se.k; s++ {
		if se.errs[s] != nil {
			ferr = se.errs[s]
			break
		}
	}
	var total uint64
	m := infCycle
	pending := 0
	for _, e := range se.engs {
		total += e.Fired()
		pending += e.Pending()
		if at, ok := e.NextAt(); ok && at < m {
			m = at
		}
	}
	if ferr == nil && se.MaxSteps > 0 && total >= se.MaxSteps && pending > 0 {
		ferr = &StepLimitError{Limit: se.MaxSteps, Now: se.w, Pending: pending}
	}
	if ferr != nil {
		se.err = ferr
		se.done = true
		return
	}
	if m == infCycle {
		se.done = true
		return
	}
	if se.OnWindow != nil {
		if err := se.OnWindow(m); err != nil {
			se.err = err
			se.done = true
			return
		}
	}
	se.w, se.wend = m, m+se.lookahead
}
