package sim

import (
	"math"
	"runtime"
	"sync/atomic"

	"vsnoop/internal/prof"
	"vsnoop/internal/runner"
)

// infCycle marks "no pending work" in window-minimum folds.
const infCycle = Cycle(math.MaxUint64)

// barrier is a sense-reversing central barrier for a handful of shard
// goroutines. The last arriver runs the leader closure (single-threaded:
// everyone else is spinning) and then releases the generation; the atomic
// generation publish orders the leader's plain writes before the waiters'
// reads, so window state needs no further synchronization.
type barrier struct {
	arrived atomic.Int32
	gen     atomic.Uint32
}

func (b *barrier) wait(k int32, leader func()) {
	g := b.gen.Load()
	if b.arrived.Add(1) == k {
		b.arrived.Store(0)
		if leader != nil {
			leader()
		}
		b.gen.Add(1)
		return
	}
	for b.gen.Load() == g {
		// Gosched (not a pure spin) keeps K shards correct, if slow, even
		// on a machine with fewer cores than shards.
		runtime.Gosched()
	}
}

// ShardedEngine runs a domain-partitioned simulation on K event queues —
// one Engine per shard, each on its own goroutine — under conservative
// synchronization. Because every event carries a (scheduling domain,
// per-domain order) key, results are bit-identical for any shard count and
// either synchronization mode, including K=1.
//
// Two modes share the engine:
//
//   - Windowed (used whenever something observes window boundaries: an
//     OnWindow hook or a step bound, or when DisableElision is set): all
//     shards execute events inside the global window [w, w+lookahead), meet
//     at barrier A, exchange cross-shard events through the mailboxes, and
//     the barrier-B leader advances the window to the global minimum pending
//     timestamp. When a window produced no cross-shard deposits the barrier-A
//     leader folds immediately and every shard skips the drain and barrier B
//     — one barrier per quiet window instead of two.
//
//   - Adaptive free-running (the default for K >= 2 with nothing observing
//     boundaries): no barriers at all; each shard advances under the
//     null-message horizon protocol in adaptive.go, with windows stretching
//     to the actual distance of pending cross-domain work.
//
// The lookahead must be a lower bound on the latency of any cross-shard
// event (for the mesh: the minimum cross-domain link latency), so events
// deposited during a window always land at or beyond the window end.
type ShardedEngine struct {
	engs      []*Engine
	domShard  []int // domain -> shard
	k         int
	lookahead Cycle

	// srcLook[s] is the adaptive-mode output lookahead of shard s: a lower
	// bound on the latency of any cross-shard event originating in one of
	// s's domains. Defaults to the global lookahead; SetDomainLookahead
	// tightens it from per-domain mesh horizons.
	srcLook []Cycle

	// sh[s] is shard s's padded hot synchronization state (adaptive.go).
	sh []shardSlot

	// boxes[src*k+dst] holds events deposited by shard src for shard dst.
	// In windowed mode deposits happen before barrier A and drains after
	// it, so the spinlock is uncontended; in adaptive mode the lock and the
	// EOT protocol order them.
	boxes []mailbox

	// deposited/drained/busy are the global termination counters of the
	// adaptive mode (see the protocol comment in adaptive.go): deposited
	// is incremented before each mailbox put, drained after a consumer
	// has pushed a drain's events, and busy tracks how many shards may
	// still execute or deposit. An idle shard exits only after a double
	// collect sees busy == 0 bracketed by matching deposited/drained.
	deposited atomic.Uint64
	drained   atomic.Uint64
	busy      atomic.Int64

	// stop aborts the adaptive free-run: set by the first shard to fail,
	// polled by every shard each round.
	stop atomic.Uint32

	// errs[s] is shard s's window error, published before barrier A (the
	// elision leader may fold there).
	errs []error

	// Window state, written only by the barrier leader while all other
	// shards spin (windowed mode), or by the fold after the adaptive run.
	w, wend Cycle
	done    bool
	skipB   bool // leader decision: this window's drain + barrier B elided
	err     error
	fired   uint64
	tele    SyncStats

	barA, barB, barC barrier

	// Mode pins a synchronization engine; the zero value (ModeAuto) keeps
	// the historical dispatch. Set before Run.
	Mode Mode

	// Timewarp state (timewarp.go): the model's checkpoint interface, the
	// per-shard optimistic slots (nil outside a timewarp run — depositEv's
	// routing check keys off that), and the leader's epoch fold state.
	state   ShardState
	tw      []twShard
	twT     Cycle // current epoch base (leader-owned)
	twE     Cycle // current epoch width (leader-owned)
	twC     Cycle // current commit horizon (leader-owned)
	twLmin  Cycle // minimum cross-shard lookahead over all shards
	twSave  bool  // this epoch checkpoints (E above the conservative floor)
	twBail  bool  // permanent hand-off to the adaptive engine
	twFloor int   // consecutive floor-width commits (bailout trigger)

	// DisableElision forces the fully-barriered windowed protocol even
	// when nothing observes window boundaries: no adaptive free-running,
	// no quiet-window barrier elision. Results are bit-identical either
	// way; the flag exists so tests and benchmarks can pin the mode.
	DisableElision bool

	// MaxSteps, when nonzero, bounds the total events executed across all
	// shards; the run fails with a StepLimitError at the first window
	// boundary at or past the bound (window granularity keeps the trigger
	// point independent of the shard count).
	MaxSteps uint64

	// OnWindow, if set, runs on the barrier leader at every window
	// advance, with every shard quiesced at exactly cycle now (all events
	// below now executed, none at or above). Invariant checkers hook here.
	// A non-nil error aborts the run.
	OnWindow func(now Cycle) error
}

// NewSharded builds a sharded engine for nd domains with the given
// domain-to-shard assignment (len nd, shard indices dense from 0) and
// lookahead. Components must be wired to Eng(domShard[d]) for their domain.
func NewSharded(domShard []int, lookahead Cycle) *ShardedEngine {
	nd := len(domShard)
	k := 0
	for _, s := range domShard {
		if s+1 > k {
			k = s + 1
		}
	}
	se := &ShardedEngine{
		domShard:  domShard,
		k:         k,
		lookahead: lookahead,
		srcLook:   make([]Cycle, k),
		sh:        make([]shardSlot, k),
		engs:      make([]*Engine, k),
		boxes:     make([]mailbox, k*k),
		errs:      make([]error, k),
	}
	for s := 0; s < k; s++ {
		se.srcLook[s] = lookahead
		s := s
		local := make([]bool, nd)
		for d, sh := range domShard {
			local[d] = sh == s
		}
		eng := NewEngine()
		eng.SetDomains(nd, local, func(ev event) {
			se.depositEv(s, se.domShard[ev.dom], ev)
		})
		se.engs[s] = eng
	}
	return se
}

// Eng returns shard s's engine.
func (se *ShardedEngine) Eng(s int) *Engine { return se.engs[s] }

// Shards returns the shard count K.
func (se *ShardedEngine) Shards() int { return se.k }

// Fired returns the total events executed across all shards (valid after
// Run returns).
func (se *ShardedEngine) Fired() uint64 { return se.fired }

// Now returns the final window cycle (valid after Run returns).
func (se *ShardedEngine) Now() Cycle { return se.w }

// Telemetry returns the synchronization counters of the last Run.
func (se *ShardedEngine) Telemetry() SyncStats { return se.tele }

// SetProgressLimit arms every shard's no-forward-progress watchdog.
func (se *ShardedEngine) SetProgressLimit(limit uint64) {
	for _, e := range se.engs {
		e.SetProgressLimit(limit)
	}
}

// SetCancel attaches one Canceler to every shard engine. The first shard to
// observe the trip fails its window with a CanceledError; the existing
// error paths (fold in windowed mode, the stop flag in adaptive mode) then
// bring the remaining shards down promptly.
func (se *ShardedEngine) SetCancel(c *Canceler) {
	for _, e := range se.engs {
		e.SetCancel(c)
	}
}

// SetShardState attaches the model's checkpoint interface, enabling
// ModeTimewarp. Without one the timewarp dispatch falls back to the
// conservative adaptive engine.
func (se *ShardedEngine) SetShardState(st ShardState) { se.state = st }

// SetDomainLookahead tightens the adaptive-mode output lookahead from
// per-domain horizons: horizon[d] must lower-bound the latency of any
// cross-domain event originating in domain d. Shard s's lookahead becomes
// the minimum over its domains; entries of zero (or a shard with no
// domains) fall back to the global lookahead. The windowed protocol keeps
// the global lookahead so its window-boundary sequence — and with it every
// OnWindow observation — stays independent of the partition geometry.
func (se *ShardedEngine) SetDomainLookahead(horizon []Cycle) {
	for s := 0; s < se.k; s++ {
		la := infCycle
		for d, sh := range se.domShard {
			if sh == s && d < len(horizon) && horizon[d] < la {
				la = horizon[d]
			}
		}
		if la == infCycle || la == 0 {
			la = se.lookahead
		}
		se.srcLook[s] = la
	}
}

// Run executes all queued work to quiescence (or error). With K=1 it runs
// inline on the caller's goroutine — the degenerate serial case, whose
// results (and, in windowed mode, OnWindow callbacks) are identical to any
// K>1 run in either synchronization mode.
func (se *ShardedEngine) Run() error {
	se.w, se.wend = 0, 0 // round 0 executes nothing and seeds the window
	se.done, se.err, se.skipB = false, nil, false
	se.tele = SyncStats{}
	se.stop.Store(0)
	se.deposited.Store(0)
	se.drained.Store(0)
	se.busy.Store(int64(se.k))
	for s := range se.sh {
		se.sh[s] = shardSlot{}
		se.errs[s] = nil
	}
	se.tw = nil
	switch {
	case se.k == 1:
		// The degenerate serial case covers every mode: one shard owns all
		// domains, so the optimistic engine has nothing to speculate against
		// and timewarp IS the serial run.
		se.runSerial()
	case se.OnWindow != nil || se.MaxSteps > 0 || se.DisableElision || se.Mode == ModeWindowed:
		// Something observes window boundaries (or windowed is pinned):
		// every mode falls back to the fully synchronized protocol.
		runner.Map(se.k, se.k, func(s int) struct{} {
			prof.Do(s, "shard-loop", func() { se.runShard(s) })
			return struct{}{}
		})
	case se.Mode == ModeTimewarp && se.state != nil:
		se.runTimewarpAll()
	default:
		se.runAdaptiveAll()
	}
	se.fired = 0
	for _, e := range se.engs {
		se.fired += e.Fired()
	}
	return se.err
}

// runSerial is the K=1 path. A single shard owns every domain, so deposits
// never happen and both barriers are no-ops; all that remains of the window
// protocol is the fold bookkeeping. When nothing observes window boundaries
// (no OnWindow hook, no step bound) even that folds away and the run is one
// plain heap drain — zero overhead versus the unsharded engine, with the
// same event order: a single queue pops by (domain, seq) key regardless of
// where windows would have fallen.
func (se *ShardedEngine) runSerial() {
	eng := se.engs[0]
	if se.OnWindow == nil && se.MaxSteps == 0 {
		se.err = eng.RunWindow(infCycle)
		se.w = eng.Now()
		if eng.Fired() > 0 {
			se.tele = SyncStats{Windows: 1, WindowWidthSum: uint64(se.w)}
		}
		return
	}
	for {
		se.errs[0] = eng.RunWindow(se.wend)
		se.fold()
		if se.done {
			return
		}
	}
}

// runAdaptiveAll drives the free-running adaptive mode (adaptive.go) and
// folds its per-shard outcome deterministically afterwards.
func (se *ShardedEngine) runAdaptiveAll() {
	runner.Map(se.k, se.k, func(s int) struct{} {
		prof.Do(s, "shard-adaptive", func() { se.runAdaptive(s) })
		return struct{}{}
	})
	for s := 0; s < se.k; s++ {
		if se.errs[s] != nil {
			se.err = se.errs[s]
			break
		}
	}
	w := Cycle(0)
	for s := range se.engs {
		if now := se.engs[s].Now(); now > w {
			w = now
		}
		st := &se.sh[s]
		se.tele.Windows += st.windows
		se.tele.WindowWidthSum += st.widthSum
		se.tele.ElidedBarriers += st.elided
	}
	se.w = w
	se.tele.CrossDeposits = se.deposited.Load()
}

func (se *ShardedEngine) runShard(s int) {
	eng := se.engs[s]
	k := int32(se.k)
	for {
		// Publish the window error before barrier A: the elision leader
		// may fold there, and the barrier orders the write.
		se.errs[s] = eng.RunWindow(se.wend)
		// Barrier A: after it, every deposit of this window is in its
		// mailbox and no shard is executing. The leader decides whether
		// the exchange (drain + barrier B) is needed at all.
		se.barA.wait(k, se.leadA)
		if !se.skipB {
			for src := 0; src < se.k; src++ {
				se.boxes[src*se.k+s].drain(eng)
			}
			// Barrier B: the leader folds errors, checks bounds, and
			// advances the window to the global minimum pending timestamp.
			se.barB.wait(k, se.leadB)
		}
		if se.done {
			return
		}
	}
}

// leadA runs on the barrier-A leader with every shard quiesced. If no shard
// deposited anything this window, the mailboxes are all empty and the drain
// plus barrier B buy nothing: fold here and let everyone skip straight to
// the next window.
func (se *ShardedEngine) leadA() {
	se.tele.BarrierWaits += uint64(se.k)
	var dep uint64
	for s := range se.sh {
		dep += se.sh[s].deposits
		se.sh[s].deposits = 0
	}
	se.tele.CrossDeposits += dep
	if dep == 0 && !se.DisableElision {
		se.skipB = true
		se.tele.ElidedBarriers++
		se.fold()
		return
	}
	se.skipB = false
}

// leadB runs on the barrier-B leader of a non-elided window.
func (se *ShardedEngine) leadB() {
	se.tele.BarrierWaits += uint64(se.k)
	se.fold()
}

// fold advances the window with every shard quiesced and drained. It runs
// single-threaded on a barrier leader (or inline for K=1); the barrier
// generation publish orders its plain writes for the other shards.
func (se *ShardedEngine) fold() {
	var ferr error
	for s := 0; s < se.k; s++ {
		if se.errs[s] != nil {
			ferr = se.errs[s]
			break
		}
	}
	var total uint64
	m := infCycle
	pending := 0
	for _, e := range se.engs {
		total += e.Fired()
		pending += e.Pending()
		if at, ok := e.NextAt(); ok && at < m {
			m = at
		}
	}
	if ferr == nil && se.MaxSteps > 0 && total >= se.MaxSteps && pending > 0 {
		ferr = &StepLimitError{Limit: se.MaxSteps, Now: se.w, Pending: pending}
	}
	if ferr != nil {
		se.err = ferr
		se.done = true
		return
	}
	if m == infCycle {
		se.done = true
		return
	}
	if se.OnWindow != nil {
		if err := se.OnWindow(m); err != nil {
			se.err = err
			se.done = true
			return
		}
	}
	if m > se.w {
		se.tele.Windows++
		se.tele.WindowWidthSum += uint64(m - se.w)
	}
	se.w, se.wend = m, m+se.lookahead
}
