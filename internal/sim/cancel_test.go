package sim

import (
	"errors"
	"sync"
	"testing"
)

// TestCancelStopsEngine trips the Canceler from inside an event handler and
// checks that the bounded-step loop surfaces a CanceledError within one
// polling period instead of draining the rest of the chain.
func TestCancelStopsEngine(t *testing.T) {
	e := NewEngine()
	c := NewCanceler()
	e.SetCancel(c)
	const chain = 10 * (cancelPollMask + 1)
	fired := 0
	var step func()
	step = func() {
		fired++
		if fired == 3 {
			c.Cancel()
		}
		if fired < chain {
			e.Schedule(1, step)
		}
	}
	e.Schedule(1, step)
	err := e.RunBoundedSteps(2 * chain)
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("RunBoundedSteps = %v, want *CanceledError", err)
	}
	if fired >= chain {
		t.Fatalf("fired %d events, cancel never took effect", fired)
	}
	// The poll runs every cancelPollMask+1 events, so at most one full
	// period may elapse between Cancel and the stop.
	if fired > 3+cancelPollMask+1 {
		t.Fatalf("fired %d events after cancel at 3; poll period is %d", fired, cancelPollMask+1)
	}
	if ce.Now == 0 || ce.Pending == 0 {
		t.Fatalf("CanceledError position empty: %+v", ce)
	}
}

// TestCancelCompletedRunUnaffected pins the control-plane contract: a run
// that finishes before its Canceler trips is bit-identical to a run with no
// Canceler at all.
func TestCancelCompletedRunUnaffected(t *testing.T) {
	run := func(c *Canceler) ([]Cycle, uint64) {
		e := NewEngine()
		e.SetCancel(c)
		var trace []Cycle
		for i := Cycle(1); i <= 600; i++ {
			e.Schedule(i, func() { trace = append(trace, e.Now()) })
		}
		if err := e.RunBoundedSteps(1000); err != nil {
			t.Fatalf("run: %v", err)
		}
		return trace, e.Fired()
	}
	plainTrace, plainFired := run(nil)
	withTrace, withFired := run(NewCanceler())
	if plainFired != withFired || len(plainTrace) != len(withTrace) {
		t.Fatalf("fired %d/%d trace %d/%d: Canceler changed a completed run",
			plainFired, withFired, len(plainTrace), len(withTrace))
	}
	for i := range plainTrace {
		if plainTrace[i] != withTrace[i] {
			t.Fatalf("trace[%d] = %d vs %d", i, plainTrace[i], withTrace[i])
		}
	}
}

// TestCancelNilSafety: a nil *Canceler must be inert on both methods so
// callers can thread an optional canceler without guarding every call site.
func TestCancelNilSafety(t *testing.T) {
	var c *Canceler
	c.Cancel() // must not panic
	if c.Canceled() {
		t.Fatal("nil Canceler reports canceled")
	}
}

// cancelPingPong builds the same synthetic 4-domain workload as
// runPingPong but with an endless event chain, attaches a Canceler, and
// cancels from another goroutine once any domain has run a while. Covers
// the cross-goroutine path used by vsnoop-serve: the HTTP handler cancels,
// the shard workers observe.
func cancelPingPong(t *testing.T, domShard []int, disable bool) error {
	t.Helper()
	const L = 6
	se := NewSharded(domShard, L)
	se.DisableElision = disable
	c := NewCanceler()
	se.SetCancel(c)
	nd := len(domShard)
	type domState struct {
		eng *Engine
		d   int
	}
	doms := make([]*domState, nd)
	for d := range doms {
		doms[d] = &domState{eng: se.Eng(domShard[d]), d: d}
	}
	const crossMark = uint64(1) << 40
	started := make(chan struct{})
	var once sync.Once
	var step HandlerFn
	step = func(arg interface{}, u uint64) {
		ad := arg.(*domState)
		now := ad.eng.Now()
		if u&^crossMark > 2*(cancelPollMask+1) {
			once.Do(func() { close(started) })
		}
		if u&crossMark != 0 {
			return // cross arrivals are leaf events, as in runPingPong
		}
		// Endless chain: only cancellation stops this run.
		ad.eng.ScheduleFnAtDom(now+1+Cycle(u%3), int32(ad.d), step, ad, u+1)
		if u%5 == 2 {
			dst := (ad.d + 1) % nd
			ad.eng.ScheduleFnAtDom(now+L+Cycle(u%4), int32(dst), step, doms[dst], crossMark|u)
		}
	}
	for d := range doms {
		doms[d].eng.SetCurDomain(int32(d))
		doms[d].eng.ScheduleFnAt(Cycle(d), step, doms[d], 0)
	}
	errc := make(chan error, 1)
	go func() { errc <- se.Run() }()
	<-started
	c.Cancel()
	return <-errc
}

// TestCancelSharded drives an endless workload on every synchronization
// mode (serial, windowed/barriered, adaptive) and cancels mid-flight from
// another goroutine. Each mode must stop promptly with a CanceledError
// rather than hang or deadlock on a barrier.
func TestCancelSharded(t *testing.T) {
	cases := []struct {
		name     string
		domShard []int
		disable  bool
	}{
		{"serial", []int{0, 0, 0, 0}, false},
		{"k2-adaptive", []int{0, 1, 0, 1}, false},
		{"k2-barriered", []int{0, 1, 0, 1}, true},
		{"k4-adaptive", []int{0, 1, 2, 3}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := cancelPingPong(t, tc.domShard, tc.disable)
			var ce *CanceledError
			if !errors.As(err, &ce) {
				t.Fatalf("Run = %v, want *CanceledError", err)
			}
		})
	}
}
