// Package sim provides the discrete-event simulation kernel used by every
// timing model in this repository: a cycle clock, a deterministic event
// queue, and reproducible pseudo-random number streams.
//
// All simulators in this project (mesh network, caches, token coherence,
// hypervisor scheduler) are built as event handlers scheduled on a single
// Engine. Determinism is guaranteed: events at the same cycle fire in
// schedule order, and all randomness flows from explicitly seeded Rand
// streams, so a run is a pure function of its configuration.
package sim

import (
	"fmt"
)

// Cycle is a point in simulated time, measured in clock cycles.
type Cycle uint64

// HandlerFn is the prebound-handler form of an event: a function created
// once (at component construction) whose per-event state rides in the
// event itself as (arg, u). Scheduling one allocates nothing.
type HandlerFn func(arg interface{}, u uint64)

// event is one queue entry. Exactly one of fn / fn2 is set: fn is the
// closure form (allocates a closure at the call site), fn2 the prebound
// form (zero-alloc). Events live inline in the heap slice — there is no
// per-event heap object and no interface boxing on push or pop.
type event struct {
	at  Cycle
	key uint64 // tie-breaker: schedule order (domain-prefixed in domain mode)
	dom int32  // executing domain (0 in single-domain engines)
	fn  func()
	fn2 HandlerFn
	arg interface{}
	u   uint64
}

// before is the strict total order on events: cycle, then schedule order.
// In domain mode the key embeds the scheduling domain in its high bits, so
// same-cycle ties break by (scheduling domain, per-domain schedule order) —
// an order every shard can reproduce locally, making parallel execution
// bit-identical to serial for the same domain count.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.key < o.key
}

// Engine is a discrete-event simulator. The zero value is ready to use.
// The queue is a concrete-typed 4-ary min-heap: shallower than a binary
// heap (fewer cache lines touched per sift) and free of the interface{}
// boxing container/heap imposes on every push and pop.
type Engine struct {
	now    Cycle
	seq    uint64
	events []event
	fired  uint64

	// Domain mode (SetDomains): events carry an executing domain and
	// schedule-order keys are drawn from per-domain counters, so the tie
	// order is independent of how domains are spread over engines. domSeq
	// is nil in single-domain (legacy) mode, where key == seq exactly.
	domSeq  []uint64
	curDom  int32
	local   []bool          // local[d]: domain d executes on this engine
	deposit func(ev event) // sink for events bound to non-local domains

	// No-forward-progress watchdog: when progressLimit > 0, StepChecked
	// fails after that many events fire without a Progress() mark, turning a
	// protocol livelock into a diagnosable error instead of a hang.
	progressLimit uint64
	sinceProgress uint64

	// cancel, when non-nil, is polled by StepChecked every cancelPollMask+1
	// events: a tripped Canceler turns into a CanceledError at the next poll,
	// so a dead client or an admin abort stops the run promptly without
	// adding per-event cost to the uncancelled hot path.
	cancel *Canceler
}

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.events) }

// schedulePastPanic is the cold failure path shared by the Schedule
// variants. It exists so the fmt call (which allocates) stays out of the
// annotated hot functions.
func schedulePastPanic(at, now Cycle) {
	panic(fmt.Sprintf("sim: schedule at %d before now %d", at, now))
}

// Schedule runs fn after delay cycles (delay 0 means later this cycle,
// after all currently queued same-cycle events).
//vsnoop:hotpath
func (e *Engine) Schedule(delay Cycle, fn func()) {
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at the given absolute cycle, which must not be in the
// past.
//vsnoop:hotpath
func (e *Engine) ScheduleAt(at Cycle, fn func()) {
	if at < e.now {
		schedulePastPanic(at, e.now)
	}
	e.insert(event{at: at, key: e.nextKey(), dom: e.curDom, fn: fn})
}

// ScheduleFn runs fn(arg, u) after delay cycles. It is the zero-alloc
// fast path for hot schedulers: fn is prebound once at construction time
// and the per-event state travels in (arg, u), so nothing escapes to the
// heap (arg should be nil, an already-boxed interface value, or a
// pointer; u packs any scalar state).
//vsnoop:hotpath
func (e *Engine) ScheduleFn(delay Cycle, fn HandlerFn, arg interface{}, u uint64) {
	e.ScheduleFnAt(e.now+delay, fn, arg, u)
}

// ScheduleFnAt is ScheduleFn with an absolute cycle, which must not be in
// the past.
//vsnoop:hotpath
func (e *Engine) ScheduleFnAt(at Cycle, fn HandlerFn, arg interface{}, u uint64) {
	if at < e.now {
		schedulePastPanic(at, e.now)
	}
	e.insert(event{at: at, key: e.nextKey(), dom: e.curDom, fn2: fn, arg: arg, u: u})
}

// ScheduleFnAtDom is ScheduleFnAt with an explicit executing domain: the
// event fires in domain dom's event stream (possibly on another engine when
// domains are sharded) while its tie-break key still comes from the current
// scheduling domain's counter, keeping the order reproducible for any
// domain-to-engine assignment. The mesh uses it for cross-domain delivery.
//vsnoop:hotpath
func (e *Engine) ScheduleFnAtDom(at Cycle, dom int32, fn HandlerFn, arg interface{}, u uint64) {
	if at < e.now {
		schedulePastPanic(at, e.now)
	}
	e.insert(event{at: at, key: e.nextKey(), dom: dom, fn2: fn, arg: arg, u: u})
}

// nextKey draws the next tie-break key: the global schedule counter in
// single-domain mode (key == legacy seq, bit-identical ordering), or the
// current domain's counter prefixed with the domain index in domain mode.
//vsnoop:hotpath
func (e *Engine) nextKey() uint64 {
	if e.domSeq == nil {
		e.seq++
		return e.seq
	}
	d := e.curDom
	e.domSeq[d]++
	return uint64(d)<<48 | e.domSeq[d]
}

// insert routes an event to the local heap, or to the deposit sink when its
// executing domain lives on another engine.
//vsnoop:hotpath
func (e *Engine) insert(ev event) {
	if e.local != nil && !e.local[ev.dom] {
		e.deposit(ev)
		return
	}
	e.push(ev)
}

// SetDomains switches the engine to domain mode with nd domains. local
// marks the domains this engine executes (nil = all); deposit receives
// events bound elsewhere. Call before any event is scheduled.
func (e *Engine) SetDomains(nd int, local []bool, deposit func(ev event)) {
	if nd <= 1 {
		return
	}
	e.domSeq = make([]uint64, nd)
	e.local = local
	e.deposit = deposit
}

// SetCurDomain sets the scheduling domain used for events scheduled outside
// any event handler (machine setup); during execution Step maintains it.
func (e *Engine) SetCurDomain(d int32) { e.curDom = d }

// push inserts ev into the 4-ary heap (sift-up). The self-append reuses the
// backing array, so steady-state pushes allocate nothing.
//vsnoop:hotpath
func (e *Engine) push(ev event) {
	e.events = append(e.events, ev)
	h := e.events
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !h[i].before(&h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// pop removes and returns the minimum event (sift-down with a hole).
//vsnoop:hotpath
func (e *Engine) pop() event {
	h := e.events
	root := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release fn/arg references held by the backing array
	h = h[:n]
	e.events = h
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if h[j].before(&h[m]) {
					m = j
				}
			}
			if !h[m].before(&last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	return root
}

// Step executes the next event, advancing the clock to its cycle. It
// returns false when no events remain.
//vsnoop:hotpath
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.curDom = ev.dom
	e.fired++
	if ev.fn2 != nil {
		ev.fn2(ev.arg, ev.u)
	} else {
		ev.fn()
	}
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// StepLimitError reports that a bounded run exhausted its event budget with
// work still queued.
type StepLimitError struct {
	Limit   uint64 // the budget that was exhausted
	Now     Cycle  // simulated time at exhaustion
	Pending int    // events still queued
}

func (e *StepLimitError) Error() string {
	return fmt.Sprintf("sim: step budget %d exhausted at cycle %d with %d events pending (livelock or undersized budget)",
		e.Limit, e.Now, e.Pending)
}

// NoProgressError reports that the watchdog saw too many events fire without
// a Progress() mark — the signature of a protocol livelock (events keep
// firing but no externally visible work completes).
type NoProgressError struct {
	Limit   uint64 // events allowed between Progress() marks
	Now     Cycle  // simulated time at the trip
	Pending int    // events still queued
}

func (e *NoProgressError) Error() string {
	return fmt.Sprintf("sim: watchdog tripped at cycle %d: %d events fired without forward progress (%d pending)",
		e.Now, e.Limit, e.Pending)
}

// SetCancel attaches a Canceler polled by StepChecked; nil detaches. The
// caller may trip the Canceler from any goroutine (it is a single atomic
// word) — the engine notices at the next poll boundary and fails the run
// with a CanceledError.
func (e *Engine) SetCancel(c *Canceler) { e.cancel = c }

// SetProgressLimit arms the no-forward-progress watchdog: StepChecked fails
// once limit events fire without an intervening Progress() call. 0 disarms.
func (e *Engine) SetProgressLimit(limit uint64) {
	e.progressLimit = limit
	e.sinceProgress = 0
}

// Progress marks forward progress (e.g. a completed memory reference),
// resetting the watchdog.
func (e *Engine) Progress() { e.sinceProgress = 0 }

// cancelPollMask sets the cancellation poll period: StepChecked consults
// the Canceler once every mask+1 executed events. 256 events is a few
// microseconds of simulation — prompt for any caller — while keeping the
// atomic load off almost every step.
const cancelPollMask = 255

// StepChecked executes the next event like Step, but fails with a
// NoProgressError when the watchdog limit is exceeded or a CanceledError
// when an attached Canceler has tripped.
func (e *Engine) StepChecked() (bool, error) {
	if e.progressLimit > 0 && e.sinceProgress >= e.progressLimit {
		return false, &NoProgressError{Limit: e.progressLimit, Now: e.now, Pending: len(e.events)}
	}
	if e.cancel != nil && e.fired&cancelPollMask == 0 && e.cancel.Canceled() {
		return false, &CanceledError{Now: e.now, Pending: len(e.events)}
	}
	if !e.Step() {
		return false, nil
	}
	e.sinceProgress++
	return true, nil
}

// RunBoundedSteps executes events until the queue is empty, failing with a
// StepLimitError if more than max events would be needed (or a
// NoProgressError if the watchdog trips first). It is the hang-proof
// replacement for Run in command-line drivers.
func (e *Engine) RunBoundedSteps(max uint64) error {
	for i := uint64(0); i < max; i++ {
		ok, err := e.StepChecked()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
	if len(e.events) == 0 {
		return nil
	}
	return &StepLimitError{Limit: max, Now: e.now, Pending: len(e.events)}
}

// RunUntil executes events with timestamps <= limit, then stops. The clock
// is left at the timestamp of the last executed event (or limit if the
// queue drained earlier than limit and AdvanceTo semantics are not needed).
func (e *Engine) RunUntil(limit Cycle) {
	for len(e.events) > 0 && e.events[0].at <= limit {
		e.Step()
	}
	if e.now < limit {
		e.now = limit
	}
}

// RunFor executes events for the next d cycles (relative RunUntil).
func (e *Engine) RunFor(d Cycle) { e.RunUntil(e.now + d) }

// NextAt returns the timestamp of the earliest pending event; ok is false
// when the queue is empty. Conservative window synchronization uses it to
// compute the global lower bound on future work.
func (e *Engine) NextAt() (Cycle, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// RunWindow executes events with timestamps strictly below wend under the
// watchdog, leaving later events queued. It is one shard's work for one
// conservative synchronization window.
func (e *Engine) RunWindow(wend Cycle) error {
	for len(e.events) > 0 && e.events[0].at < wend {
		if _, err := e.StepChecked(); err != nil {
			return err
		}
	}
	return nil
}
