package sim

// Rand is a small, fast, deterministic pseudo-random number generator
// (splitmix64 seeded, xorshift128+ stepped). Every stochastic component in
// the simulator owns its own Rand stream, seeded from the run seed and a
// component tag, so adding a component never perturbs the random sequence
// seen by another — runs are reproducible configuration-for-configuration.
type Rand struct {
	s0, s1 uint64
}

// splitmix64 expands a seed into well-distributed state words.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRand returns a generator seeded from seed. Two generators with the
// same seed produce identical sequences.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// NewRandTagged derives an independent stream from a run seed and a
// component tag (e.g. a core index or a workload name hash).
func NewRandTagged(seed uint64, tag string) *Rand {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(tag); i++ {
		h ^= uint64(tag[i])
		h *= 1099511628211
	}
	return NewRand(seed ^ h)
}

// Seed resets the generator state from seed.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1
	}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with n == 0")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf draws from a truncated zipf-like distribution over [0, n) with
// exponent s using inverse-CDF on a precomputed table is avoided for
// memory; instead it uses rejection-free approximate power-law sampling:
// rank = floor(n * u^(1/(1-s))) clamped, which matches a Pareto-tail
// access pattern closely enough for cache-locality modeling.
func (r *Rand) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	if s <= 0 {
		return r.Intn(n)
	}
	u := r.Float64()
	// Map uniform u to a power-law rank: small ranks (hot) are likelier.
	x := int(float64(n) * pow(u, 1.0/(1.0-minf(s, 0.99))*0.5+1.0))
	if x >= n {
		x = n - 1
	}
	if x < 0 {
		x = 0
	}
	return x
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// pow is a small local power helper (avoids importing math for one call
// site on the hot path; exponent is always > 1 here).
func pow(base, exp float64) float64 {
	// Use exp/log via the math package would be fine; implement with
	// repeated squaring over the integer part and a linear blend for the
	// fraction — adequate for sampling skew.
	if base <= 0 {
		return 0
	}
	ip := int(exp)
	frac := exp - float64(ip)
	out := 1.0
	b := base
	for ip > 0 {
		if ip&1 == 1 {
			out *= b
		}
		b *= b
		ip >>= 1
	}
	// Linear interpolation between base^i and base^(i+1) for the fraction.
	return out * (1 - frac + frac*base)
}
