package sim

import "testing"

// The timewarp tests run a deterministic multi-domain model twice — once on
// the K=1 serial path, once optimistically — and require bit-identical
// traces, counters, and fired-event totals. The model's schedule is driven
// by a seeded multiplicative congruential stream folded into each domain's
// counter, so every gap, send decision, and target is a pure function of
// the seed and each domain owns its own randomness (no cross-shard RNG).
//
// The straggler harness shapes the schedule so rollbacks MUST happen:
// domain 0 runs a dense local chain (it speculates far ahead as soon as the
// epoch controller grows E past the quiet stretches), while the other
// domains run sparse chains that occasionally deposit a cross-shard event
// into domain 0 at exactly the minimum lookahead — a short-lookahead send
// whose arrival cuts the commit horizon below domain 0's speculative front.

// twTrace is one executed model event: the cycle it fired at and its packed
// identity. Comparing full traces catches any reorder, duplicate, or loss.
type twTrace struct {
	at Cycle
	id uint64
}

// Model event ids (low word of the packed u payload).
const (
	twIDChain = iota // dense local chain (domain 0)
	twIDPing         // sparse chain (domains >= 1)
	twIDLeaf         // cross-shard deposit target (no rescheduling)
)

// twModel is the test model: per-domain order-sensitive counters and event
// traces, plus the flat-slice checkpoint store implementing ShardState.
type twModel struct {
	engs     []*Engine
	domShard []int
	la       Cycle
	end      Cycle

	// Schedule shape: pinger gap = gapBase + stream % gapJitter; a pinger
	// deposits into domain 0 when stream % sendMod == 0.
	gapBase   Cycle
	gapJitter Cycle
	sendMod   uint64

	counters []uint64
	traces   [][]twTrace

	saved   [][]twModelSnap // [shard][slot]
	commits []int

	fn HandlerFn
}

type twModelSnap struct {
	counters []uint64
	tlens    []int
}

func newTwModel(se *ShardedEngine, domShard []int, la Cycle, seed uint64) *twModel {
	nd := len(domShard)
	m := &twModel{
		domShard: domShard, la: la, end: 20_000,
		gapBase: 150, gapJitter: 90, sendMod: 4,
		counters: make([]uint64, nd),
		traces:   make([][]twTrace, nd),
		commits:  make([]int, se.Shards()),
	}
	for d := 0; d < nd; d++ {
		m.engs = append(m.engs, se.Eng(domShard[d]))
		m.counters[d] = seed*2862933555777941757 + uint64(d)*3037000493 + 1
	}
	m.saved = make([][]twModelSnap, se.Shards())
	for s := range m.saved {
		m.saved[s] = make([]twModelSnap, twSnapSlots)
	}
	m.fn = m.handle
	return m
}

// seedEvents schedules each domain's chain starter.
func (m *twModel) seedEvents() {
	for d, eng := range m.engs {
		eng.SetCurDomain(int32(d))
		id := uint64(twIDPing)
		if d == 0 {
			id = twIDChain
		}
		eng.ScheduleFnAtDom(Cycle(10+7*d), int32(d), m.fn, nil, uint64(d)<<32|id)
	}
}

// handle executes one model event in domain u>>32. The counter fold is
// order-sensitive (a multiplicative accumulator over (cycle, id)), so any
// deviation from the serial event order changes the final value.
func (m *twModel) handle(_ interface{}, u uint64) {
	d := int(u >> 32)
	id := u & 0xFFFFFFFF
	eng := m.engs[d]
	now := eng.Now()
	m.counters[d] = m.counters[d]*6364136223846793005 + uint64(now)*31 + id + 1
	m.traces[d] = append(m.traces[d], twTrace{at: now, id: u})
	stream := m.counters[d]
	switch id {
	case twIDChain:
		if now >= m.end {
			return
		}
		eng.ScheduleFn(1+Cycle(stream>>8%3), m.fn, nil, u)
		if stream>>16%29 == 0 && len(m.engs) > 1 {
			tgt := 1 + int(stream>>24)%(len(m.engs)-1)
			eng.ScheduleFnAtDom(now+m.la, int32(tgt), m.fn, nil, uint64(tgt)<<32|twIDLeaf)
		}
	case twIDPing:
		if now < m.end {
			eng.ScheduleFn(m.gapBase+Cycle(stream>>8)%m.gapJitter, m.fn, nil, u)
		}
		if stream>>16%m.sendMod == 0 {
			// The straggler: a deposit into the dense domain at exactly the
			// minimum cross-shard lookahead.
			eng.ScheduleFnAtDom(now+m.la, 0, m.fn, nil, uint64(twIDLeaf))
		}
	}
}

func (m *twModel) Save(shard, slot int) {
	sn := &m.saved[shard][slot]
	sn.counters = sn.counters[:0]
	sn.tlens = sn.tlens[:0]
	for d, s := range m.domShard {
		if s == shard {
			sn.counters = append(sn.counters, m.counters[d])
			sn.tlens = append(sn.tlens, len(m.traces[d]))
		}
	}
}

func (m *twModel) Restore(shard, slot int) {
	sn := &m.saved[shard][slot]
	i := 0
	for d, s := range m.domShard {
		if s == shard {
			m.counters[d] = sn.counters[i]
			m.traces[d] = m.traces[d][:sn.tlens[i]]
			i++
		}
	}
}

func (m *twModel) Commit(shard int) { m.commits[shard]++ }

// runTwModel builds a fresh nd-domain model on k shards and runs it to
// quiescence in the given mode, returning the model and engine.
func runTwModel(t *testing.T, nd, k int, mode Mode, seed uint64, shape func(*twModel)) (*twModel, *ShardedEngine) {
	t.Helper()
	const la = Cycle(6)
	domShard := make([]int, nd)
	for d := range domShard {
		domShard[d] = d % k
	}
	se := NewSharded(domShard, la)
	se.Mode = mode
	m := newTwModel(se, domShard, la, seed)
	if shape != nil {
		shape(m)
	}
	se.SetShardState(m)
	m.seedEvents()
	if err := se.Run(); err != nil {
		t.Fatalf("nd=%d k=%d mode=%v: %v", nd, k, mode, err)
	}
	return m, se
}

// assertTwIdentical requires two runs of the same workload to match event
// for event.
func assertTwIdentical(t *testing.T, ref, got *twModel, refE, gotE *ShardedEngine, label string) {
	t.Helper()
	for d := range ref.counters {
		if ref.counters[d] != got.counters[d] {
			t.Errorf("%s: domain %d counter diverged: serial %x, got %x", label, d, ref.counters[d], got.counters[d])
		}
		if len(ref.traces[d]) != len(got.traces[d]) {
			t.Fatalf("%s: domain %d trace length %d vs %d", label, d, len(ref.traces[d]), len(got.traces[d]))
		}
		for i := range ref.traces[d] {
			if ref.traces[d][i] != got.traces[d][i] {
				t.Fatalf("%s: domain %d trace[%d] = %+v, want %+v", label, d, i, got.traces[d][i], ref.traces[d][i])
			}
		}
	}
	if refE.Fired() != gotE.Fired() {
		t.Errorf("%s: fired %d events, serial fired %d", label, gotE.Fired(), refE.Fired())
	}
}

// TestTimewarpIdenticalToSerial is the rollback property test: for
// K in {1, 2, 4}, the optimistic run must be bit-identical to the serial
// one, and the straggler-injection shape must actually exercise rollbacks
// and anti-messages (telemetry-asserted) — a run that never speculated
// wrongly would not test the recovery machinery at all.
func TestTimewarpIdenticalToSerial(t *testing.T) {
	for _, tc := range []struct{ nd, k int }{{2, 2}, {4, 2}, {4, 4}} {
		for _, seed := range []uint64{1, 42, 1337} {
			ref, refE := runTwModel(t, tc.nd, 1, ModeTimewarp, seed, nil)
			got, gotE := runTwModel(t, tc.nd, tc.k, ModeTimewarp, seed, nil)
			label := "timewarp"
			assertTwIdentical(t, ref, got, refE, gotE, label)
			tele := gotE.Telemetry()
			if tele.Rollbacks == 0 {
				t.Errorf("nd=%d k=%d seed=%d: no rollbacks — the straggler harness exercised nothing", tc.nd, tc.k, seed)
			}
			if tele.Windows == 0 {
				t.Errorf("nd=%d k=%d seed=%d: no epochs recorded", tc.nd, tc.k, seed)
			}
		}
	}
}

// TestTimewarpAntiMessages shapes domain 0 to both speculate and send, so
// commits cut below staged sends and the source-side annihilation path
// (anti-messages) runs.
func TestTimewarpAntiMessages(t *testing.T) {
	var total uint64
	for _, seed := range []uint64{3, 9, 27} {
		ref, refE := runTwModel(t, 4, 1, ModeTimewarp, seed, nil)
		got, gotE := runTwModel(t, 4, 4, ModeTimewarp, seed, nil)
		assertTwIdentical(t, ref, got, refE, gotE, "antimsg")
		total += gotE.Telemetry().AntiMessages
	}
	if total == 0 {
		t.Errorf("no anti-messages across any seed: rolled-back sends never exercised annihilation")
	}
}

// TestTimewarpBailout drives dense cross traffic (every domain deposits
// every few cycles) so commit widths pin to the conservative floor and the
// controller must hand off to the adaptive engine — and the result must
// still be bit-identical to serial across the hand-off.
func TestTimewarpBailout(t *testing.T) {
	dense := func(m *twModel) {
		m.gapBase, m.gapJitter, m.sendMod = 8, 5, 1
		m.end = 6_000
	}
	ref, refE := runTwModel(t, 4, 1, ModeTimewarp, 7, dense)
	got, gotE := runTwModel(t, 4, 2, ModeTimewarp, 7, dense)
	assertTwIdentical(t, ref, got, refE, gotE, "bailout")
	if gotE.Telemetry().Bailouts == 0 {
		t.Errorf("dense cross traffic never triggered the adaptive bailout")
	}
}

// TestTimewarpMatchesAdaptive cross-checks the two K>1 engines against each
// other on the same workload: conservative and optimistic synchronization
// must agree event for event.
func TestTimewarpMatchesAdaptive(t *testing.T) {
	a, aE := runTwModel(t, 4, 2, ModeAdaptive, 11, nil)
	b, bE := runTwModel(t, 4, 2, ModeTimewarp, 11, nil)
	assertTwIdentical(t, a, b, aE, bE, "vs-adaptive")
}

// TestEngineSnapshotRoundTrip pins the engine checkpoint primitive: save,
// run further, restore, and the replay must reproduce the same execution.
func TestEngineSnapshotRoundTrip(t *testing.T) {
	build := func() (*Engine, *[]Cycle) {
		eng := NewEngine()
		var log []Cycle
		var fn func()
		fn = func() {
			log = append(log, eng.Now())
			if eng.Now() < 100 {
				eng.Schedule(3, fn)
			}
		}
		eng.Schedule(1, fn)
		return eng, &log
	}
	ref, refLog := build()
	ref.Run()

	eng, log := build()
	eng.RunUntil(40)
	var snap engSnap
	eng.saveSnap(&snap)
	mark := len(*log)
	eng.RunUntil(70) // speculate past the checkpoint
	eng.restoreSnap(&snap)
	*log = (*log)[:mark]
	eng.Run()
	if len(*log) != len(*refLog) {
		t.Fatalf("replayed %d events, want %d", len(*log), len(*refLog))
	}
	for i := range *refLog {
		if (*log)[i] != (*refLog)[i] {
			t.Fatalf("replay log[%d] = %d, want %d", i, (*log)[i], (*refLog)[i])
		}
	}
	if eng.Fired() != ref.Fired() {
		t.Errorf("fired %d, want %d (restore must rewind the count)", eng.Fired(), ref.Fired())
	}
}
