package sim

import (
	"fmt"
	"sync/atomic"
)

// Canceler requests early termination of a running simulation from outside
// the simulation goroutines — a dead HTTP client, a CLI timeout, an admin
// abort. It is a single atomic word: Cancel may be called from any
// goroutine, any number of times, before or during the run. Engines poll it
// on the StepChecked path (every cancelPollMask+1 events), so a tripped
// Canceler surfaces as a CanceledError within microseconds of simulated
// work on every shard.
//
// Cancellation is a control-plane mechanism, not a simulation input: a run
// that completes without the Canceler tripping is bit-identical to a run
// with no Canceler attached, and a canceled run returns an error rather
// than a (partial, nondeterministic) result.
type Canceler struct {
	flag atomic.Uint32
}

// NewCanceler returns an untripped Canceler.
func NewCanceler() *Canceler { return &Canceler{} }

// Cancel trips the canceler. Safe from any goroutine; idempotent; nil-safe.
func (c *Canceler) Cancel() {
	if c != nil {
		c.flag.Store(1)
	}
}

// Canceled reports whether Cancel has been called. Nil-safe.
func (c *Canceler) Canceled() bool { return c != nil && c.flag.Load() != 0 }

// CanceledError reports that a run stopped because its Canceler tripped.
// The position fields describe where the engine stopped — useful for
// logging, meaningless as simulation output.
type CanceledError struct {
	Now     Cycle // simulated time at the stop
	Pending int   // events still queued on the stopping engine
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("sim: run canceled at cycle %d (%d events pending)", e.Now, e.Pending)
}
