package sim

import (
	"vsnoop/internal/prof"
	"vsnoop/internal/runner"
)

// This file implements the optimistic (Time Warp) synchronization mode of
// the ShardedEngine: breathing-time-buckets epochs with flat-slice
// checkpoints, source-side anti-messages, and a barrier GVT commit.
//
// The conservative modes (shard.go, adaptive.go) never let a shard execute
// an event until the timestamp math proves no earlier cross-shard event can
// still arrive. When cross-domain lookahead is short — the high-migration,
// high-sharing configs — that proof forces lockstep windows one mesh hop
// wide. The optimistic mode inverts the bet: every shard executes a whole
// epoch [T, T+E) on the assumption that no cross-shard event will interfere,
// and pays for actual conflicts (a rollback to the last checkpoint at or
// below the commit horizon) instead of potential ones.
//
// One epoch, all shards in lockstep over three barriers:
//
//  1. Drain. Every shard empties its inboxes (everything in them was
//     released at the previous commit, so it is committed by construction)
//     and publishes its next pending timestamp. The leader folds the global
//     minimum M: the epoch base T jumps straight to M (idle skip-ahead),
//     and M == +inf is termination — with the world stopped at a barrier,
//     the Dijkstra-style double collect of adaptive.go degenerates to a
//     single read of the matched deposit/drain ledger (GVT = +inf).
//
//  2. Execute. Each shard checkpoints at T (engine snapshot + the model's
//     ShardState.Save) and runs every local event below T+E. Cross-shard
//     sends do NOT go to the mailboxes: they are staged in a per-shard
//     outbox tagged with their send time. Mid-epoch checkpoints land each
//     time execution crosses a stride of the ring (twSnapSlots slots), so a
//     shallow rollback replays a fraction of the epoch, not all of it.
//     When E is at the conservative floor (E <= the minimum cross-shard
//     lookahead), interference is impossible and the checkpoint phase is
//     skipped entirely — the epoch degenerates to one windowed round.
//
//  3. Commit. The leader folds H = min over all staged sends' arrival
//     times and commits C = min(H, T+E): every event below C executed with
//     exactly the inputs the serial engine would have given it, because any
//     send that could land below C would have had to be staged with an
//     arrival below H. A shard whose local virtual time reached C or beyond
//     detects the straggler — a released deposit would land below its LVT —
//     and rolls back: restore the newest checkpoint at or below C, then
//     re-execute up to C with cross-shard sends suppressed (every replayed
//     send is a byte-identical duplicate of one being released, see below).
//     Each shard then walks its outbox: sends stamped below C are released
//     to the mailboxes (their arrivals are >= H >= C, so they can never
//     straggle a committed region), and sends stamped at or beyond C are
//     annihilated in place — the anti-message of classic Time Warp, except
//     the positive message never left the source, so no receiver-side
//     cancellation protocol is needed. The next epoch's base is C.
//
// Why committed state is bit-identical to serial by construction: a shard's
// heap pop order is a strict total order on (cycle, domain-seq key), a pure
// function of the event set (see shard.go); the commit rule guarantees the
// event set below C is exactly the serial one (all earlier cross-shard
// deposits released and drained, none still staged); and replay after a
// rollback is deterministic — same engine state, same key counters, same
// event set, no mid-epoch arrivals — which is also the proof that dropping
// replayed sends loses nothing: the replay regenerates, byte for byte, the
// sends below C that the first execution staged and the commit released.
//
// Optimism is throttled, not trusted: when the committed width sits at the
// conservative floor for twBailEpochs consecutive epochs (dense cross
// traffic — checkpoints buy nothing), the engine permanently hands off to
// the adaptive free-run from the barrier, where every shard is quiesced at
// the committed front and the mailboxes are empty — exactly the state
// adaptive mode starts from.

// Mode selects the ShardedEngine's synchronization engine. The zero value
// (ModeAuto) preserves the historical dispatch: adaptive free-running when
// nothing observes window boundaries, windowed otherwise.
type Mode int

const (
	// ModeAuto lets the engine pick: adaptive free-running for K >= 2 with
	// nothing observing window boundaries, windowed otherwise.
	ModeAuto Mode = iota
	// ModeWindowed pins the fully synchronized windowed protocol.
	ModeWindowed
	// ModeAdaptive pins the conservative null-message free-run (the ModeAuto
	// default when nothing observes boundaries).
	ModeAdaptive
	// ModeTimewarp runs optimistic epochs with checkpoint/rollback. Requires
	// a ShardState (SetShardState); without one — or with an OnWindow hook,
	// a step bound, or DisableElision, all of which need conservative window
	// boundaries — the engine falls back to a conservative mode.
	ModeTimewarp
)

// ShardState saves and restores the simulation-model state owned by one
// shard, so the optimistic engine can checkpoint and roll back model state
// alongside its own event queues. Slots are a small per-shard ring
// (twSnapSlots); Save(s, slot) overwrites the slot, Restore(s, slot) brings
// the shard's model state back to it, and Commit(s) tells the model that
// everything up to the commit horizon is final (acquisition undo-logs and
// similar epoch-local bookkeeping can be truncated). All three are invoked
// on shard s's own goroutine, in barrier-separated phases, so
// implementations touch only shard-owned state and need no locking.
type ShardState interface {
	Save(shard, slot int)
	Restore(shard, slot int)
	Commit(shard int)
}

// Per-shard deposit routing during a timewarp run.
const (
	twDirect int32 = iota // straight to the mailbox (bailed-out / between epochs)
	twHold                // stage in the outbox, tagged with the send time
	twDrop                // rollback replay: every send is a released duplicate
)

// twSnapSlots is the checkpoint-ring depth: one snapshot at the epoch base
// plus up to twSnapSlots-1 mid-epoch snapshots, one per stride crossed.
const twSnapSlots = 4

// twBailEpochs is how many consecutive floor-width commits the controller
// tolerates before permanently handing off to the conservative engine.
const twBailEpochs = 8

// twGrowCap bounds the epoch width (in cycles): optimism beyond this buys
// nothing and makes a worst-case rollback replay arbitrarily long.
const twGrowCap = Cycle(1) << 20

// twMsg is one staged cross-shard send: the event, its destination shard,
// and the simulated time the sending event executed at — the stamp the
// commit rule releases or annihilates by.
//
//vsnoop:owned
type twMsg struct {
	send Cycle
	dst  int32
	ev   event
}

// engSnap is a flat-slice checkpoint of one Engine: the clock, the
// tie-break counters, the watchdog, and the whole event heap. Buffers are
// reused across saves, so a steady-state checkpoint allocates nothing once
// the ring has grown to the run's high-water mark.
//
//vsnoop:owned
type engSnap struct {
	now           Cycle
	seq           uint64
	fired         uint64
	sinceProgress uint64
	curDom        int32
	domSeq        []uint64
	events        []event
}

// saveSnap checkpoints the engine into s, reusing s's buffers.
func (e *Engine) saveSnap(s *engSnap) {
	s.now, s.seq, s.fired, s.sinceProgress, s.curDom = e.now, e.seq, e.fired, e.sinceProgress, e.curDom
	s.domSeq = append(s.domSeq[:0], e.domSeq...)
	s.events = append(s.events[:0], e.events...)
}

// restoreSnap rewinds the engine to s. Restoring fired keeps EventsFired
// bit-identical to serial: discarded speculative events are uncounted and
// the committed replay recounts each exactly once. Heap entries beyond the
// restored length are zeroed first so the backing array drops its fn/arg
// references.
func (e *Engine) restoreSnap(s *engSnap) {
	e.now, e.seq, e.fired, e.sinceProgress, e.curDom = s.now, s.seq, s.fired, s.sinceProgress, s.curDom
	e.domSeq = append(e.domSeq[:0], s.domSeq...)
	h := e.events
	for i := len(s.events); i < len(h); i++ {
		h[i] = event{}
	}
	e.events = append(h[:0], s.events...)
}

// twShard is one shard's optimistic state: the staging outbox, the
// checkpoint ring, and the per-epoch fold inputs. Only the owning shard's
// goroutine touches it outside the barrier leader's folds.
//
//vsnoop:owned
type twShard struct {
	// mode routes this shard's cross-shard deposits (twDirect/twHold/twDrop).
	// Written by the owning goroutine around its execution phases only.
	mode int32

	// outbox holds the epoch's staged cross-shard sends in send order.
	outbox []twMsg

	// snaps/snapAt/nsnap are the epoch's checkpoint ring: snaps[j] was taken
	// with every local event below snapAt[j] executed. Slot 0 is always the
	// epoch base T.
	snaps  [twSnapSlots]engSnap
	snapAt [twSnapSlots]Cycle
	nsnap  int

	// Fold inputs published before a barrier: next pending timestamp after
	// the drain (barrier 1), minimum staged arrival and local virtual time
	// after execution (barrier 2).
	next Cycle
	held Cycle
	lvt  Cycle

	// Telemetry, folded into SyncStats after the run.
	rollbacks uint64
	antimsgs  uint64
	gvtLag    uint64
}

// depositEv routes one cross-shard event from shard s to shard dst. The
// conservative modes always go straight to the mailbox; a timewarp
// execution phase stages the send instead, and a rollback replay drops it
// (the commit already released the identical original).
//
//vsnoop:hotpath
func (se *ShardedEngine) depositEv(s, dst int, ev event) {
	if se.tw != nil {
		switch tws := &se.tw[s]; tws.mode {
		case twHold:
			tws.outbox = append(tws.outbox, twMsg{send: se.engs[s].now, dst: int32(dst), ev: ev})
			return
		case twDrop:
			return
		}
	}
	se.sh[s].deposits++
	// Count before the put: the adaptive termination check must never read
	// a drained total that covers an uncounted deposit.
	se.deposited.Add(1)
	se.boxes[s*se.k+dst].put(ev)
}

// runTimewarpAll drives the optimistic mode and folds its outcome. If the
// controller bailed out mid-run, the shards finished under the adaptive
// protocol and its per-shard telemetry is folded in exactly as
// runAdaptiveAll would.
func (se *ShardedEngine) runTimewarpAll() {
	se.tw = make([]twShard, se.k)
	la := infCycle
	for s := 0; s < se.k; s++ {
		if se.srcLook[s] < la {
			la = se.srcLook[s]
		}
	}
	se.twLmin = la
	se.twE = la * 8 // initial optimism; the controller adapts from here
	if se.twE > twGrowCap {
		se.twE = twGrowCap
	}
	se.twFloor = 0
	se.twBail = false
	runner.Map(se.k, se.k, func(s int) struct{} {
		prof.Do(s, "shard-timewarp", func() { se.runTimewarp(s) })
		return struct{}{}
	})
	for s := 0; s < se.k; s++ {
		if se.err == nil && se.errs[s] != nil {
			se.err = se.errs[s]
		}
		tws := &se.tw[s]
		se.tele.Rollbacks += tws.rollbacks
		se.tele.AntiMessages += tws.antimsgs
		se.tele.GVTLagSum += tws.gvtLag
		// Bailed-out stretches accumulate in the adaptive per-shard slots;
		// zero when the run stayed optimistic throughout.
		st := &se.sh[s]
		se.tele.Windows += st.windows
		se.tele.WindowWidthSum += st.widthSum
		se.tele.ElidedBarriers += st.elided
		if now := se.engs[s].Now(); now > se.w {
			se.w = now
		}
	}
	se.tele.CrossDeposits = se.deposited.Load()
}

// runTimewarp is shard s's epoch loop. The three barriers reuse the
// windowed-mode pair plus one more; every leader runs with all shards
// quiesced, and the barrier generation publish orders its plain writes.
func (se *ShardedEngine) runTimewarp(s int) {
	eng := se.engs[s]
	tws := &se.tw[s]
	k := int32(se.k)
	for {
		// Phase 1 — drain: everything in the inboxes was released at the
		// previous commit and is final. Publish the next pending timestamp
		// for the leader's epoch-base fold.
		drained := 0
		for src := 0; src < se.k; src++ {
			drained += se.boxes[src*se.k+s].drain(eng)
		}
		if drained > 0 {
			se.drained.Add(uint64(drained))
		}
		tws.next = infCycle
		if at, ok := eng.NextAt(); ok {
			tws.next = at
		}
		se.barA.wait(k, se.twLeadOpen)
		if se.done {
			return
		}
		if se.twBail {
			// Permanent hand-off: quiesced at the committed front, inboxes
			// drained, outboxes empty — adaptive mode's starting state.
			se.runAdaptive(s)
			return
		}

		// Phase 2 — optimistic execution of [T, T+E) with sends staged.
		T, wend := se.twT, se.twT+se.twE
		f0 := eng.Fired()
		tws.lvt = T
		tws.mode = twHold
		var err error
		if se.twSave {
			eng.saveSnap(&tws.snaps[0])
			tws.snapAt[0] = T
			se.state.Save(s, 0)
			tws.nsnap = 1
			// Mid-epoch checkpoints only pay when each stride protects at
			// least a conservative floor's worth of replay; narrower epochs
			// keep just the base snapshot and re-execute from T on rollback.
			slots := twSnapSlots
			if se.twE < Cycle(twSnapSlots)*se.twLmin {
				slots = int(se.twE / se.twLmin)
				if slots < 1 {
					slots = 1
				}
			}
			stride := se.twE / Cycle(slots)
			if stride == 0 {
				stride = 1
			}
			lastF := eng.Fired()
			for j := 1; j <= slots; j++ {
				bound := T + stride*Cycle(j)
				if j == slots || bound > wend {
					bound = wend
				}
				err = eng.RunWindow(bound)
				if err != nil || bound == wend {
					break
				}
				if eng.Fired() == lastF {
					// Nothing fired since the last checkpoint: the state is
					// unchanged, so slide that checkpoint's horizon forward
					// instead of saving an identical snapshot.
					tws.snapAt[tws.nsnap-1] = bound
					continue
				}
				eng.saveSnap(&tws.snaps[tws.nsnap])
				tws.snapAt[tws.nsnap] = bound
				se.state.Save(s, tws.nsnap)
				tws.nsnap++
				lastF = eng.Fired()
			}
		} else {
			// E is at the conservative floor: no staged send can land below
			// T+E, so the epoch cannot roll back and checkpoints buy nothing.
			err = eng.RunWindow(wend)
		}
		if eng.Fired() > f0 {
			tws.lvt = eng.Now()
		}
		tws.held = infCycle
		for i := range tws.outbox {
			if at := tws.outbox[i].ev.at; at < tws.held {
				tws.held = at
			}
		}
		se.errs[s] = err
		se.barB.wait(k, se.twLeadCommit)
		if se.done {
			return
		}

		// Phase 3 — commit: roll back past-horizon execution, release
		// committed sends, annihilate rolled-back ones.
		C := se.twC
		if tws.lvt >= C {
			// Straggler: a send being released this epoch arrives below this
			// shard's local virtual time. Restore the newest checkpoint at
			// or below C and replay up to C with sends suppressed.
			tws.rollbacks++
			tws.gvtLag += uint64(tws.lvt - C)
			slot := 0
			for j := 1; j < tws.nsnap; j++ {
				if tws.snapAt[j] <= C {
					slot = j
				}
			}
			eng.restoreSnap(&tws.snaps[slot])
			se.state.Restore(s, slot)
			tws.mode = twDrop
			if rerr := eng.RunWindow(C); rerr != nil {
				se.errs[s] = rerr
			}
		}
		tws.mode = twDirect
		for i := range tws.outbox {
			msg := &tws.outbox[i]
			if msg.send < C {
				se.deposited.Add(1)
				se.boxes[s*se.k+int(msg.dst)].put(msg.ev)
			} else {
				tws.antimsgs++
			}
			*msg = twMsg{} // release fn/arg references held by the array
		}
		tws.outbox = tws.outbox[:0]
		se.state.Commit(s)
		se.barC.wait(k, se.twLeadClose)
		if se.done {
			return
		}
	}
}

// twLeadOpen runs on the barrier-1 leader: fold the epoch base (idle
// skip-ahead), detect termination, and arm the controller's bailout.
func (se *ShardedEngine) twLeadOpen() {
	se.tele.BarrierWaits += uint64(se.k)
	m := infCycle
	for s := range se.tw {
		if se.tw[s].next < m {
			m = se.tw[s].next
		}
	}
	if m == infCycle {
		// No pending event anywhere, every outbox empty (commit drains
		// them), every inbox drained this phase — and, with the world
		// stopped at this barrier, the adaptive double collect degenerates
		// to one read of the matched ledger. GVT = +inf: done.
		if se.deposited.Load() == se.drained.Load() {
			se.done = true
			return
		}
		// A counted deposit not yet drained cannot exist here; treat it as
		// the protocol bug it would be rather than spinning forever.
		panic("sim: timewarp termination with unbalanced deposit ledger")
	}
	se.twT = m
	if se.twFloor >= twBailEpochs {
		// Sustained floor-width commits: cross traffic is dense enough that
		// optimism only pays checkpoint overhead. Seed the adaptive EOTs
		// from the committed front (a fresh 0 would make the null-message
		// protocol ratchet up from cycle zero) and hand off for good.
		se.twBail = true
		se.tele.Bailouts++
		for s := 0; s < se.k; s++ {
			nx := se.tw[s].next
			if nx == infCycle {
				nx = m
			}
			se.sh[s].eot.Store(uint64(nx + se.srcLook[s]))
		}
		return
	}
	se.twSave = se.twE > se.twLmin
}

// twLeadCommit runs on the barrier-2 leader: fold errors, commit
// C = min(H, T+E), and adapt the epoch width.
func (se *ShardedEngine) twLeadCommit() {
	se.tele.BarrierWaits += uint64(se.k)
	for s := 0; s < se.k; s++ {
		if se.errs[s] != nil {
			se.err = se.errs[s]
			se.done = true
			return
		}
	}
	h := infCycle
	for s := range se.tw {
		if se.tw[s].held < h {
			h = se.tw[s].held
		}
	}
	c := se.twT + se.twE
	if h < c {
		c = h
	}
	se.twC = c
	width := c - se.twT
	se.tele.Windows++
	se.tele.WindowWidthSum += uint64(width)
	// Width controller: a full commit doubles the epoch (capped); an
	// interference-cut commit resets it to the observed width. Floor-width
	// commits arm the bailout counter.
	if c == se.twT+se.twE {
		if se.twE < twGrowCap {
			se.twE *= 2
			if se.twE > twGrowCap {
				se.twE = twGrowCap
			}
		}
	} else {
		se.twE = width
		if se.twE < se.twLmin {
			se.twE = se.twLmin
		}
	}
	if width <= 2*se.twLmin {
		se.twFloor++
	} else {
		se.twFloor = 0
	}
}

// twLeadClose runs on the barrier-3 leader: fold replay errors and advance
// the committed front.
func (se *ShardedEngine) twLeadClose() {
	se.tele.BarrierWaits += uint64(se.k)
	for s := 0; s < se.k; s++ {
		if se.errs[s] != nil {
			se.err = se.errs[s]
			se.done = true
			return
		}
	}
	se.w = se.twC
}
