package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// runPingPong drives a synthetic 4-domain workload on a ShardedEngine:
// each domain executes a chain of local events and every fifth step
// deposits a cross-domain event into the next domain, honoring the
// lookahead contract (cross arrivals land at now+L or later). Every
// domain's handler appends (cycle, tag) records to that domain's log, so
// the logs are a complete per-domain execution trace: any reordering
// anywhere shows up as a log difference.
func runPingPong(t *testing.T, domShard []int, disable bool, obs *[]Cycle) ([][]uint64, uint64, SyncStats) {
	t.Helper()
	const L = 6
	const steps = 400
	const crossMark = uint64(1) << 40
	se := NewSharded(domShard, L)
	se.DisableElision = disable
	if obs != nil {
		se.OnWindow = func(now Cycle) error {
			*obs = append(*obs, now)
			return nil
		}
	}
	nd := len(domShard)
	type domState struct {
		eng *Engine
		d   int
		log []uint64
	}
	doms := make([]*domState, nd)
	for d := range doms {
		doms[d] = &domState{eng: se.Eng(domShard[d]), d: d}
	}
	var step HandlerFn
	step = func(arg interface{}, u uint64) {
		ad := arg.(*domState)
		now := ad.eng.Now()
		ad.log = append(ad.log, uint64(now)<<20|(u&0xfffff))
		if u&crossMark != 0 || u >= steps {
			return
		}
		ad.eng.ScheduleFnAtDom(now+1+Cycle(u%3), int32(ad.d), step, ad, u+1)
		if u%5 == 2 {
			dst := (ad.d + 1) % nd
			ad.eng.ScheduleFnAtDom(now+L+Cycle(u%4), int32(dst), step, doms[dst], crossMark|u)
		}
	}
	for d := range doms {
		doms[d].eng.SetCurDomain(int32(d))
		doms[d].eng.ScheduleFnAt(Cycle(d), step, doms[d], 0)
	}
	if err := se.Run(); err != nil {
		t.Fatalf("run(domShard=%v): %v", domShard, err)
	}
	logs := make([][]uint64, nd)
	for d := range doms {
		logs[d] = doms[d].log
	}
	return logs, se.Fired(), se.Telemetry()
}

// TestAdaptiveSyntheticBitIdentical pins the engine-level guarantee under
// both synchronization modes: the per-domain execution traces of the
// free-running adaptive protocol and of the fully-barriered windowed
// protocol are identical to the serial single-shard run, for K in {2, 4}.
// It also pins the mode telemetry: adaptive runs never wait on a barrier,
// fully-barriered runs never elide one.
func TestAdaptiveSyntheticBitIdentical(t *testing.T) {
	serialLogs, serialFired, serialTele := runPingPong(t, []int{0, 0, 0, 0}, false, nil)
	if serialFired == 0 || serialTele.BarrierWaits != 0 {
		t.Fatalf("serial run: fired=%d telemetry=%+v", serialFired, serialTele)
	}
	cases := []struct {
		name     string
		domShard []int
		disable  bool
	}{
		{"k2-adaptive", []int{0, 1, 0, 1}, false},
		{"k2-barriered", []int{0, 1, 0, 1}, true},
		{"k4-adaptive", []int{0, 1, 2, 3}, false},
		{"k4-barriered", []int{0, 1, 2, 3}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			logs, fired, tele := runPingPong(t, tc.domShard, tc.disable, nil)
			if fired != serialFired {
				t.Errorf("fired %d, serial %d", fired, serialFired)
			}
			if !reflect.DeepEqual(logs, serialLogs) {
				for d := range logs {
					if !reflect.DeepEqual(logs[d], serialLogs[d]) {
						t.Errorf("domain %d trace diverged (len %d vs %d)",
							d, len(logs[d]), len(serialLogs[d]))
					}
				}
			}
			if tc.disable {
				if tele.ElidedBarriers != 0 {
					t.Errorf("barriered mode elided %d barriers", tele.ElidedBarriers)
				}
				if tele.BarrierWaits == 0 {
					t.Errorf("barriered mode reported no barrier waits: %+v", tele)
				}
			} else {
				if tele.BarrierWaits != 0 {
					t.Errorf("adaptive mode waited on %d barriers", tele.BarrierWaits)
				}
				if tele.Windows == 0 || tele.ElidedBarriers == 0 {
					t.Errorf("adaptive telemetry empty: %+v", tele)
				}
			}
			if tele.CrossDeposits == 0 {
				t.Errorf("workload deposited nothing across shards: %+v", tele)
			}
		})
	}
}

// TestWindowedBoundariesShardInvariant pins the windowed protocol's
// observable contract: the sequence of OnWindow callback cycles — what the
// invariant checker sees — is identical for every shard count, with and
// without quiet-window barrier elision. (An OnWindow observer always forces
// the windowed protocol; elision only changes which barrier runs the fold.)
func TestWindowedBoundariesShardInvariant(t *testing.T) {
	var ref []Cycle
	runPingPong(t, []int{0, 0, 0, 0}, false, &ref)
	if len(ref) == 0 {
		t.Fatal("observer never ran")
	}
	for _, tc := range []struct {
		name     string
		domShard []int
		disable  bool
	}{
		{"k2", []int{0, 1, 0, 1}, false},
		{"k2-barriered", []int{0, 1, 0, 1}, true},
		{"k4", []int{0, 1, 2, 3}, false},
		{"k4-barriered", []int{0, 1, 2, 3}, true},
	} {
		var got []Cycle
		runPingPong(t, tc.domShard, tc.disable, &got)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("%s: window boundary sequence diverged (len %d vs %d)",
				tc.name, len(got), len(ref))
		}
	}
}

// TestWindowedQuietElision pins barrier-B elision in isolation: a sharded
// workload with NO cross-domain traffic under an OnWindow observer must
// elide the exchange on every advancing window (one barrier per window),
// and disabling elision must restore the two-barrier protocol with the
// same observed boundaries.
func TestWindowedQuietElision(t *testing.T) {
	run := func(disable bool) ([]Cycle, SyncStats) {
		se := NewSharded([]int{0, 1, 2, 3}, 6)
		se.DisableElision = disable
		var obs []Cycle
		se.OnWindow = func(now Cycle) error {
			obs = append(obs, now)
			return nil
		}
		var step HandlerFn
		type local struct {
			eng *Engine
			d   int
		}
		step = func(arg interface{}, u uint64) {
			ls := arg.(*local)
			if u == 0 {
				return
			}
			ls.eng.ScheduleFnAtDom(ls.eng.Now()+2, int32(ls.d), step, ls, u-1)
		}
		for d := 0; d < 4; d++ {
			ls := &local{eng: se.Eng(d), d: d}
			ls.eng.SetCurDomain(int32(d))
			ls.eng.ScheduleFnAt(0, step, ls, 50)
		}
		if err := se.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
		return obs, se.Telemetry()
	}
	obsE, teleE := run(false)
	obsB, teleB := run(true)
	if !reflect.DeepEqual(obsE, obsB) {
		t.Errorf("elision changed the observed boundaries: %d vs %d windows", len(obsE), len(obsB))
	}
	if teleE.CrossDeposits != 0 || teleB.CrossDeposits != 0 {
		t.Fatalf("workload unexpectedly deposited across shards: %+v %+v", teleE, teleB)
	}
	if teleE.ElidedBarriers == 0 || teleE.ElidedBarriers < teleE.Windows {
		t.Errorf("quiet windows not all elided: %+v", teleE)
	}
	if teleB.ElidedBarriers != 0 {
		t.Errorf("disabled elision still elided: %+v", teleB)
	}
	if teleB.BarrierWaits <= teleE.BarrierWaits {
		t.Errorf("elision did not reduce barrier waits: %d vs %d",
			teleE.BarrierWaits, teleB.BarrierWaits)
	}
}

// TestMailboxZeroAllocSteadyState is the allocation gate for the deposit
// path: once a mailbox's backing array (and the destination heap) have
// reached their working-set size, put and a one-pass batch drain must not
// allocate at all.
func TestMailboxZeroAllocSteadyState(t *testing.T) {
	var mb mailbox
	eng := NewEngine()
	fn := func(_ interface{}, _ uint64) {}

	// Pre-grow the mailbox slice and the heap's backing array.
	for i := 0; i < 512; i++ {
		mb.put(event{at: Cycle(i), key: uint64(i), fn2: fn})
	}
	mb.drain(eng)
	eng.events = eng.events[:0]

	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			mb.put(event{at: Cycle(i), key: uint64(i), fn2: fn})
		}
		if got := mb.drain(eng); got != 64 {
			t.Fatalf("drain returned %d, want 64", got)
		}
		eng.events = eng.events[:0]
	})
	if avg != 0 {
		t.Fatalf("steady-state put+drain allocates %.2f allocs per 64-event batch, want 0", avg)
	}
}

// TestMailboxDrainEmptyIsCheap pins the empty-box fast path: draining a
// box that was never written returns zero without taking the lock (the
// atomic length probe short-circuits), so idle shards polling K-1 empty
// mailboxes per round do no spinlock work.
func TestMailboxDrainEmptyIsCheap(t *testing.T) {
	var mb mailbox
	eng := NewEngine()
	mb.lock.Store(1) // a drain that took the lock would spin forever
	for i := 0; i < 3; i++ {
		if got := mb.drain(eng); got != 0 {
			t.Fatalf("empty drain returned %d", got)
		}
	}
	mb.lock.Store(0)
	mb.put(event{at: 1, key: 1})
	if got := mb.drain(eng); got != 1 {
		t.Fatalf("drain after put returned %d, want 1", got)
	}
	if got := mb.drain(eng); got != 0 {
		t.Fatalf("second drain returned %d, want 0", got)
	}
}

var _ = fmt.Sprintf // keep fmt imported for debugging edits
