package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(10, func() { got = append(got, 2) })
	e.Schedule(5, func() { got = append(got, 1) })
	e.Schedule(10, func() { got = append(got, 3) }) // same cycle: schedule order
	e.Schedule(20, func() { got = append(got, 4) })
	e.Run()
	want := []int{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order got %v want %v", got, want)
		}
	}
	if e.Now() != 20 {
		t.Fatalf("clock = %d, want 20", e.Now())
	}
	if e.Fired() != 4 {
		t.Fatalf("fired = %d, want 4", e.Fired())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var seq []Cycle
	e.Schedule(1, func() {
		seq = append(seq, e.Now())
		e.Schedule(2, func() { seq = append(seq, e.Now()) })
		e.Schedule(0, func() { seq = append(seq, e.Now()) }) // same-cycle follow-up
	})
	e.Run()
	if len(seq) != 3 || seq[0] != 1 || seq[1] != 1 || seq[2] != 3 {
		t.Fatalf("seq = %v, want [1 1 3]", seq)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := Cycle(1); i <= 10; i++ {
		e.Schedule(i*10, func() { fired++ })
	}
	e.RunUntil(50)
	if fired != 5 {
		t.Fatalf("fired %d events by cycle 50, want 5", fired)
	}
	if e.Now() != 50 {
		t.Fatalf("clock = %d, want 50", e.Now())
	}
	e.Run()
	if fired != 10 {
		t.Fatalf("fired %d total, want 10", fired)
	}
}

func TestEngineRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(123)
	if e.Now() != 123 {
		t.Fatalf("idle RunUntil left clock at %d, want 123", e.Now())
	}
	e.RunFor(7)
	if e.Now() != 130 {
		t.Fatalf("RunFor left clock at %d, want 130", e.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.ScheduleAt(5, func() {})
}

func TestRandDeterminism(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
	c := NewRand(43)
	same := 0
	a.Seed(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical draws of 1000", same)
	}
}

func TestRandTaggedIndependence(t *testing.T) {
	a := NewRandTagged(7, "core0")
	b := NewRandTagged(7, "core1")
	identical := true
	for i := 0; i < 64; i++ {
		if a.Uint64() != b.Uint64() {
			identical = false
			break
		}
	}
	if identical {
		t.Fatal("tagged streams with different tags are identical")
	}
	c := NewRandTagged(7, "core0")
	d := NewRandTagged(7, "core0")
	for i := 0; i < 64; i++ {
		if c.Uint64() != d.Uint64() {
			t.Fatal("same tag+seed streams differ")
		}
	}
}

func TestRandIntnBounds(t *testing.T) {
	r := NewRand(1)
	err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(5)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(40)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestRandBoolProbability(t *testing.T) {
	r := NewRand(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("Bool(0.3) frequency = %v, want ~0.3", frac)
	}
}

func TestRandZipfSkewAndBounds(t *testing.T) {
	r := NewRand(3)
	const n = 1000
	counts := make([]int, n)
	for i := 0; i < 200000; i++ {
		v := r.Zipf(n, 0.8)
		if v < 0 || v >= n {
			t.Fatalf("Zipf out of bounds: %d", v)
		}
		counts[v]++
	}
	lowHalf, highHalf := 0, 0
	for i, c := range counts {
		if i < n/2 {
			lowHalf += c
		} else {
			highHalf += c
		}
	}
	if lowHalf <= highHalf {
		t.Fatalf("Zipf not skewed toward low ranks: low=%d high=%d", lowHalf, highHalf)
	}
}

func TestEngineManyEventsStaySorted(t *testing.T) {
	e := NewEngine()
	r := NewRand(77)
	last := Cycle(0)
	ok := true
	for i := 0; i < 5000; i++ {
		at := Cycle(r.Intn(100000))
		e.ScheduleAt(at, func() {
			if e.Now() < last {
				ok = false
			}
			last = e.Now()
		})
	}
	e.Run()
	if !ok {
		t.Fatal("events fired out of time order")
	}
}
