// Package regionscout implements a RegionScout-style region-based snoop
// filter (Moshovos, ISCA 2005) as an alternative token.Router, so the
// paper's qualitative related-work comparison — VM boundaries as natural
// snoop domains versus hardware region-tracking tables — can be made
// quantitative on the same machine.
//
// Each core keeps a Not-Shared-Region Table (NSRT) of regions it has
// verified no other cache holds; requests to those regions go straight to
// memory. Discovery piggybacks on broadcasts: when a request finds no
// other cache holding any block of the region, the region enters the
// requester's NSRT. Any external request for a region knocks it out of
// every other core's NSRT (someone else is about to cache it).
//
// Two idealizations, both favoring RegionScout: region presence is
// observed at issue time (the real design learns it from the response
// bits of the same broadcast), and the Cached-Region-Hash is exact (no
// false sharing from hash conflicts). Even so, virtual snooping wins on
// actively shared regions — the VM map bounds them to 4 cores while
// RegionScout must broadcast — which is exactly the paper's argument.
package regionscout

import (
	"vsnoop/internal/cache"
	"vsnoop/internal/mem"
	"vsnoop/internal/mesh"
	"vsnoop/internal/sim"
	"vsnoop/internal/token"
)

// Region is a region number (block address >> shift).
type Region uint64

// Config shapes the filter.
type Config struct {
	// RegionBlocks is the region size in blocks (power of two). The
	// original paper evaluates 1-16 KB regions; the default is 4 KB
	// (64 blocks), matching the page granularity virtual snooping gets
	// for free from the PTE bits.
	RegionBlocks int
	// NSRTEntries bounds each core's not-shared-region table.
	NSRTEntries int
}

// DefaultConfig is 4 KB regions with a 64-entry NSRT.
func DefaultConfig() Config { return Config{RegionBlocks: 64, NSRTEntries: 64} }

// Stats counts filter events.
type Stats struct {
	NSRTHits    uint64 // requests sent memory-direct
	Broadcasts  uint64 // requests that had to snoop everyone
	Discoveries uint64 // regions learned not-shared
	Knockouts   uint64 // NSRT entries invalidated by external requests
}

// nsrt is a small LRU table of not-shared regions.
//
//vsnoop:owned
type nsrt struct {
	cap   int
	items map[Region]uint64
	tick  uint64
}

func newNSRT(capacity int) *nsrt {
	return &nsrt{cap: capacity, items: make(map[Region]uint64)}
}

func (t *nsrt) contains(r Region) bool {
	if _, ok := t.items[r]; ok {
		t.tick++
		t.items[r] = t.tick
		return true
	}
	return false
}

func (t *nsrt) insert(r Region) {
	t.tick++
	t.items[r] = t.tick
	if len(t.items) <= t.cap {
		return
	}
	var oldest Region
	var oldestTick uint64 = ^uint64(0)
	for reg, tk := range t.items { //lint:ordered ticks are a per-table monotonic counter, so every entry's tick is unique and the minimum is unique — the evicted region is the same whatever the visit order
		if tk < oldestTick {
			oldest, oldestTick = reg, tk
		}
	}
	delete(t.items, oldest)
}

func (t *nsrt) remove(r Region) bool {
	if _, ok := t.items[r]; ok {
		delete(t.items, r)
		return true
	}
	return false
}

// Filter is the RegionScout router. It maintains exact per-core region
// presence counts via the cache insert/drop hooks.
//
// In partitioned runs (Partition) every core's NSRT and presence map is
// owned by that core's snoop domain: local-domain presence checks and
// knockouts stay synchronous, while remote domains are consulted through
// probe events carrying the same cross-shard lookahead discipline as the
// mesh. The NSRT insert is deferred until every probe replies — a stale
// not-shared belief is safe because a memory-direct miss that finds the
// tokens elsewhere simply retries attempt 2 as a broadcast.
type Filter struct {
	cfg       Config
	shift     uint
	coreNodes []mesh.NodeID
	// present and tables are per-core state owned by the core's snoop
	// domain in partitioned mode (coreDom[i]); serial mode has one domain
	// owning every entry.
	present []map[Region]int //vsnoop:owned table
	tables  []*nsrt          //vsnoop:owned table

	Stats Stats

	// Partitioned mode (nil/empty outside it).
	coreDom  []int32
	domCores [][]int
	domEng   []*sim.Engine
	crossHor []sim.Cycle
	stats    []paddedStats //vsnoop:owned table
	pools    [][]*probe    //vsnoop:owned table
	probeFn  sim.HandlerFn
	replyFn  sim.HandlerFn
}

// paddedStats keeps each domain's counters on their own cache line.
type paddedStats struct {
	Stats
	_ [4]uint64
}

// probe is one in-flight cross-domain region scan. The immutable fields
// (region, me, srcDom) are written before the probe is sent and only read
// by remote handlers; remaining/shared are owned by the source domain.
//
//vsnoop:owned
type probe struct {
	region    Region //vsnoop:owned const
	me        int    //vsnoop:owned const
	srcDom    int32  //vsnoop:owned const
	remaining int
	shared    bool
}

// New builds the filter over the given cores and wires presence tracking
// into their L2 caches. It must own the caches' OnInsert/OnDrop hooks;
// pass chain functions if other subscribers exist.
func New(cfg Config, coreNodes []mesh.NodeID, caches []*cache.Cache) *Filter {
	if cfg.RegionBlocks <= 0 || cfg.RegionBlocks&(cfg.RegionBlocks-1) != 0 {
		panic("regionscout: RegionBlocks must be a positive power of two")
	}
	shift := uint(0)
	for 1<<shift != cfg.RegionBlocks {
		shift++
	}
	f := &Filter{
		cfg:       cfg,
		shift:     shift,
		coreNodes: coreNodes,
		present:   make([]map[Region]int, len(coreNodes)),
		tables:    make([]*nsrt, len(coreNodes)),
	}
	for i := range coreNodes {
		f.present[i] = make(map[Region]int)
		f.tables[i] = newNSRT(cfg.NSRTEntries)
		if caches != nil && caches[i] != nil {
			f.wire(i, caches[i])
		}
	}
	return f
}

func (f *Filter) wire(i int, c *cache.Cache) {
	prevIns := c.OnInsert
	c.OnInsert = func(a mem.BlockAddr, vm mem.VMID) {
		f.RecordFill(i, a)
		if prevIns != nil {
			prevIns(a, vm)
		}
	}
	prevDrop := c.OnDrop
	c.OnDrop = func(a mem.BlockAddr) {
		f.RecordDrop(i, a)
		if prevDrop != nil {
			prevDrop(a)
		}
	}
}

// RegionOf maps a block address to its region.
func (f *Filter) RegionOf(a mem.BlockAddr) Region { return Region(uint64(a) >> f.shift) }

// RecordFill notes that core i now caches a block of the region.
func (f *Filter) RecordFill(i int, a mem.BlockAddr) {
	f.present[i][f.RegionOf(a)]++
}

// RecordDrop notes that core i dropped a block of the region.
func (f *Filter) RecordDrop(i int, a mem.BlockAddr) {
	r := f.RegionOf(a)
	f.present[i][r]--
	if f.present[i][r] <= 0 {
		delete(f.present[i], r)
	}
}

// Present returns core i's cached-block count for the region (tests).
func (f *Filter) Present(i int, r Region) int { return f.present[i][r] }

// NSRTContains reports whether core i's NSRT holds r (tests).
func (f *Filter) NSRTContains(i int, r Region) bool {
	_, ok := f.tables[i].items[r]
	return ok
}

// Partition switches the filter to domain-owned state: coreDom maps each
// core to its snoop domain, domCores lists each domain's cores, domEng and
// crossHor give each domain's engine and cross-shard horizon. Call at setup,
// before any routing happens.
func (f *Filter) Partition(coreDom []int32, domCores [][]int, domEng []*sim.Engine, crossHor []sim.Cycle) {
	f.coreDom = coreDom
	f.domCores = domCores
	f.domEng = domEng
	f.crossHor = crossHor
	f.stats = make([]paddedStats, len(domCores))
	f.pools = make([][]*probe, len(domCores))
	f.probeFn = f.handleProbe
	f.replyFn = f.handleReply
}

// Totals returns the whole-run counters: the serial struct plus every
// partitioned domain's share.
func (f *Filter) Totals() Stats {
	t := f.Stats
	for i := range f.stats {
		t.NSRTHits += f.stats[i].NSRTHits
		t.Broadcasts += f.stats[i].Broadcasts
		t.Discoveries += f.stats[i].Discoveries
		t.Knockouts += f.stats[i].Knockouts
	}
	return t
}

// getProbe pops a probe from domain d's freelist (or allocates one).
func (f *Filter) getProbe(d int32) *probe {
	pool := f.pools[d]
	if n := len(pool); n > 0 {
		p := pool[n-1]
		f.pools[d] = pool[:n-1]
		return p
	}
	return &probe{}
}

// handleProbe runs in domain u: scan its cores for region presence, knock
// the region out of their NSRTs, and reply to the source domain.
func (f *Filter) handleProbe(arg interface{}, u uint64) {
	p := arg.(*probe)
	d := int(u)
	st := &f.stats[d].Stats
	shared := uint64(0)
	for _, i := range f.domCores[d] {
		if f.present[i][p.region] > 0 {
			shared = 1
		}
		if f.tables[i].remove(p.region) {
			st.Knockouts++
		}
	}
	eng := f.domEng[d]
	eng.ScheduleFnAtDom(eng.Now()+f.crossHor[d], p.srcDom, f.replyFn, p, shared)
}

// handleReply runs in the probe's source domain: fold the remote shared
// bit, and on the last reply learn the region (if nobody held it) and
// recycle the probe.
func (f *Filter) handleReply(arg interface{}, u uint64) {
	p := arg.(*probe)
	if u != 0 {
		p.shared = true
	}
	p.remaining--
	if p.remaining > 0 {
		return
	}
	if !p.shared {
		f.tables[p.me].insert(p.region)
		f.stats[p.srcDom].Discoveries++
	}
	f.pools[p.srcDom] = append(f.pools[p.srcDom], p)
}

// routePartitioned is Route for domain-owned state.
func (f *Filter) routePartitioned(info token.RouteInfo) []mesh.NodeID {
	r := f.RegionOf(info.Addr)
	me := info.Requester
	sd := f.coreDom[me]
	st := &f.stats[sd].Stats

	if info.Attempt == 1 && f.tables[me].contains(r) {
		st.NSRTHits++
		return nil
	}

	st.Broadcasts++
	out := make([]mesh.NodeID, 0, len(f.coreNodes)-1)
	for i, n := range f.coreNodes {
		if i != me {
			out = append(out, n)
		}
	}

	p := f.getProbe(sd)
	p.region, p.me, p.srcDom = r, me, sd
	p.remaining, p.shared = len(f.domCores)-1, false
	for _, i := range f.domCores[sd] {
		if i == me {
			continue
		}
		if f.present[i][r] > 0 {
			p.shared = true
		}
		if f.tables[i].remove(r) {
			st.Knockouts++
		}
	}
	if p.remaining == 0 {
		if !p.shared {
			f.tables[me].insert(r)
			st.Discoveries++
		}
		f.pools[sd] = append(f.pools[sd], p)
		return out
	}
	eng := f.domEng[sd]
	at := eng.Now() + f.crossHor[sd]
	for d := range f.domCores {
		if int32(d) != sd {
			eng.ScheduleFnAtDom(at, int32(d), f.probeFn, p, uint64(d))
		}
	}
	return out
}

// Route implements token.Router: it is invoked through the interface from
// whichever domain's coherence controller is requesting, so the static
// walk cannot see the call edge.
//
//vsnoop:handler
func (f *Filter) Route(info token.RouteInfo) []mesh.NodeID {
	if len(f.domCores) > 1 {
		return f.routePartitioned(info)
	}
	r := f.RegionOf(info.Addr)
	me := info.Requester

	if info.Attempt == 1 && f.tables[me].contains(r) {
		// Known not-shared: memory can serve it without snooping.
		f.Stats.NSRTHits++
		return nil
	}

	// Broadcast; the responses' region bits tell us whether anyone else
	// caches the region.
	f.Stats.Broadcasts++
	sharedElsewhere := false
	out := make([]mesh.NodeID, 0, len(f.coreNodes)-1)
	for i, n := range f.coreNodes {
		if i == me {
			continue
		}
		out = append(out, n)
		if f.present[i][r] > 0 {
			sharedElsewhere = true
		}
		// The external request invalidates this core's not-shared belief:
		// the requester is about to cache the region.
		if f.tables[i].remove(r) {
			f.Stats.Knockouts++
		}
	}
	if !sharedElsewhere {
		f.tables[me].insert(r)
		f.Stats.Discoveries++
	}
	return out
}
