package regionscout

import (
	"testing"

	"vsnoop/internal/cache"
	"vsnoop/internal/mem"
	"vsnoop/internal/mesh"
	"vsnoop/internal/token"
)

func rig(n int) (*Filter, []*cache.Cache) {
	nodes := make([]mesh.NodeID, n)
	caches := make([]*cache.Cache, n)
	for i := range nodes {
		nodes[i] = mesh.NodeID(i)
		caches[i] = cache.New(cache.Config{Name: "L2", SizeBytes: 8192, Ways: 4, BlockBytes: 64})
	}
	return New(DefaultConfig(), nodes, caches), caches
}

func route(f *Filter, req int, addr mem.BlockAddr) []mesh.NodeID {
	return f.Route(token.RouteInfo{Addr: addr, Requester: req, Attempt: 1})
}

func TestFirstRequestBroadcastsThenLearns(t *testing.T) {
	f, caches := rig(4)
	// First request to a region no one caches: broadcast + discovery.
	if got := len(route(f, 0, 100)); got != 3 {
		t.Fatalf("first request dests = %d, want broadcast", got)
	}
	if f.Stats.Discoveries != 1 {
		t.Fatalf("discoveries = %d", f.Stats.Discoveries)
	}
	caches[0].Insert(100, 1) // requester fills
	// Second request to the same region: NSRT hit, memory-direct.
	if got := len(route(f, 0, 101)); got != 0 {
		t.Fatalf("NSRT-covered request dests = %d, want 0", got)
	}
	if f.Stats.NSRTHits != 1 {
		t.Fatalf("NSRT hits = %d", f.Stats.NSRTHits)
	}
}

func TestSharedRegionNeverEntersNSRT(t *testing.T) {
	f, caches := rig(4)
	caches[2].Insert(100, 1) // core 2 holds a block of the region
	if got := len(route(f, 0, 101)); got != 3 {
		t.Fatalf("dests = %d", got)
	}
	if f.Stats.Discoveries != 0 {
		t.Fatal("shared region was learned as not-shared")
	}
	if got := len(route(f, 0, 102)); got != 0 && f.Stats.NSRTHits > 0 {
		t.Fatal("shared region got NSRT-filtered")
	}
}

func TestExternalRequestKnocksOutNSRT(t *testing.T) {
	f, _ := rig(4)
	route(f, 0, 100) // core 0 learns region not-shared
	if !f.NSRTContains(0, f.RegionOf(100)) {
		t.Fatal("discovery did not populate NSRT")
	}
	route(f, 1, 105) // core 1 requests the same region
	if f.NSRTContains(0, f.RegionOf(100)) {
		t.Fatal("external request did not knock out the NSRT entry")
	}
	if f.Stats.Knockouts != 1 {
		t.Fatalf("knockouts = %d", f.Stats.Knockouts)
	}
}

func TestPresenceTracksCache(t *testing.T) {
	f, caches := rig(2)
	r := f.RegionOf(100)
	caches[1].Insert(100, 1)
	caches[1].Insert(101, 1)
	if f.Present(1, r) != 2 {
		t.Fatalf("present = %d", f.Present(1, r))
	}
	caches[1].Invalidate(caches[1].Lookup(100))
	if f.Present(1, r) != 1 {
		t.Fatalf("present after drop = %d", f.Present(1, r))
	}
	caches[1].Invalidate(caches[1].Lookup(101))
	if f.Present(1, r) != 0 {
		t.Fatalf("present after all dropped = %d", f.Present(1, r))
	}
}

func TestNSRTCapacityEviction(t *testing.T) {
	cfg := Config{RegionBlocks: 64, NSRTEntries: 2}
	nodes := []mesh.NodeID{0, 1}
	f := New(cfg, nodes, nil)
	for i := 0; i < 3; i++ {
		f.Route(token.RouteInfo{Addr: mem.BlockAddr(i * 64), Requester: 0, Attempt: 1})
	}
	inNSRT := 0
	for i := 0; i < 3; i++ {
		if f.NSRTContains(0, Region(i)) {
			inNSRT++
		}
	}
	if inNSRT != 2 {
		t.Fatalf("NSRT holds %d regions, capacity 2", inNSRT)
	}
	// Oldest (region 0) must be the evicted one.
	if f.NSRTContains(0, 0) {
		t.Fatal("LRU region survived capacity eviction")
	}
}

func TestRetryBypassesNSRT(t *testing.T) {
	f, _ := rig(4)
	route(f, 0, 100)
	// A retry (attempt 2) must broadcast even with an NSRT hit available,
	// mirroring the token protocol's safe-retry escalation.
	dests := f.Route(token.RouteInfo{Addr: 100, Requester: 0, Attempt: 2})
	if len(dests) != 3 {
		t.Fatalf("retry dests = %d, want broadcast", len(dests))
	}
}

func TestBadRegionSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two region accepted")
		}
	}()
	New(Config{RegionBlocks: 48, NSRTEntries: 4}, []mesh.NodeID{0}, nil)
}
