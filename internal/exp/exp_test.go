package exp

import (
	"testing"
)

// tiny is a minimal scale for smoke-testing the experiment plumbing (the
// calibrated results are validated at quick/full scale by vsnoop-report
// and the root benchmarks).
var tiny = Scale{
	Name:       "tiny",
	RefsPinned: 800, RefsMig: 1500, RefsContent: 800, RefsFig1: 800,
	SchedWorkMS: 200,
	Warmup:      800, MigWarmup: 500,
	Seeds: 1,
}

func TestFigure2Model(t *testing.T) {
	rows := Figure2()
	if len(rows) != 24 {
		t.Fatalf("rows = %d, want 4 VM counts x 6 ratios", len(rows))
	}
	for _, r := range rows {
		// Closed form must match (1-h)(1-4/N).
		want := (1 - r.HvRatioPct/100) * (1 - 4/float64(r.Cores)) * 100
		if diff := r.ReductionPct - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("row %+v: reduction %v != %v", r, r.ReductionPct, want)
		}
	}
	// Monotone in VMs at fixed ratio.
	prev := -1.0
	for _, r := range rows {
		if r.HvRatioPct != 0 {
			continue
		}
		if r.ReductionPct <= prev {
			t.Fatal("reduction not increasing with VM count")
		}
		prev = r.ReductionPct
	}
}

func TestFigure1Smoke(t *testing.T) {
	rows := Figure1(Scale{RefsFig1: 1500, Warmup: 500, Seeds: 1})
	if len(rows) != len(Fig1Apps) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		total := r.XenPct + r.Dom0Pct + r.GuestPct
		if total < 99.9 || total > 100.1 {
			t.Fatalf("%s: decomposition sums to %v", r.Workload, total)
		}
		if r.PaperPct == 0 {
			t.Fatalf("%s: missing paper reference", r.Workload)
		}
	}
}

func TestFigure3Table1Smoke(t *testing.T) {
	f3, t1 := Figure3Table1(tiny)
	if len(f3) != len(ParsecApps) || len(t1) != len(ParsecApps) {
		t.Fatalf("rows = %d/%d", len(f3), len(t1))
	}
	for _, r := range t1 {
		if r.UnderMS <= 0 || r.OverMS <= 0 {
			t.Fatalf("%s: non-positive periods %+v", r.Workload, r)
		}
		if r.PaperUnderMS == 0 {
			t.Fatalf("%s: missing paper reference", r.Workload)
		}
	}
}

func TestTable4Smoke(t *testing.T) {
	rows := Table4Figure6(Scale{RefsPinned: 1200, Warmup: 600, Seeds: 1})
	if len(rows) != len(SectionVApps) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SnoopReductionPct < 70 || r.SnoopReductionPct > 80 {
			t.Fatalf("%s: snoop reduction %.1f%%, want ~75%%", r.Workload, r.SnoopReductionPct)
		}
		if r.TrafficReductionPct < 30 {
			t.Fatalf("%s: traffic reduction %.1f%% too low", r.Workload, r.TrafficReductionPct)
		}
	}
}

func TestFigures78Smoke(t *testing.T) {
	rows := Figures78Periods(tiny, []string{"fft"}, []float64{0.5})
	if len(rows) != len(MigPolicies) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.NormSnoopPct <= 0 || r.NormSnoopPct > 130 {
			t.Fatalf("%v: norm snoops %.1f%% out of range", r.Policy, r.NormSnoopPct)
		}
		if r.Relocations == 0 {
			t.Fatalf("%v: no relocations", r.Policy)
		}
	}
}

func TestTable5Smoke(t *testing.T) {
	rows := Table5(Scale{RefsContent: 1200, Warmup: 600, Seeds: 1})
	if len(rows) != len(ContentApps) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.AccessPct < 0 || r.AccessPct > 100 || r.MissPct < 0 || r.MissPct > 100 {
			t.Fatalf("%s: out-of-range percentages %+v", r.Workload, r)
		}
	}
}

func TestAblationsSmoke(t *testing.T) {
	rows := Ablations(tiny)
	if len(rows) < 5 {
		t.Fatalf("only %d ablations", len(rows))
	}
	for _, r := range rows {
		if r.Name == "" || r.Unit == "" {
			t.Fatalf("incomplete row %+v", r)
		}
		if r.Baseline == 0 && r.Variant == 0 {
			t.Fatalf("%s: degenerate ablation", r.Name)
		}
	}
}

func TestMigRefsScaling(t *testing.T) {
	if migRefs(1000, 5) != 2000 {
		t.Fatal("5ms should double refs")
	}
	if migRefs(1000, 2.5) != 1000 {
		t.Fatal("2.5ms should keep base refs")
	}
	if migRefs(1000, 0.1) != 400 {
		t.Fatal("0.1ms should use 2/5 of base")
	}
}

func TestComparisonSmoke(t *testing.T) {
	rows := Comparison(Scale{RefsPinned: 1000, Warmup: 500, Seeds: 1})
	if len(rows) != 4*len(ComparisonApps) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Filter == "tokenB" && (r.NormSnoopPct < 99.9 || r.NormSnoopPct > 100.1) {
			t.Fatalf("baseline not 100%%: %+v", r)
		}
		if r.Filter != "tokenB" && r.Filter != "directory" && r.NormSnoopPct >= 90 {
			t.Fatalf("%s/%s filtered almost nothing: %+v", r.Workload, r.Filter, r)
		}
		if r.Filter == "regionscout" && r.RegionNSRTHits == 0 {
			t.Fatalf("%s: regionscout never used its NSRT", r.Workload)
		}
	}
}

func TestEnergySmoke(t *testing.T) {
	rows := Energy(Scale{RefsPinned: 1000, Warmup: 500, Seeds: 1})
	if len(rows) != 2*len(EnergyApps) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TotalNJ <= 0 {
			t.Fatalf("%s/%v: zero energy", r.Workload, r.Policy)
		}
		if r.Policy.String() == "vsnoop-base" && r.NormSnoopTagPct >= 50 {
			t.Fatalf("%s: snoop-tag energy only dropped to %.1f%%", r.Workload, r.NormSnoopTagPct)
		}
	}
}
