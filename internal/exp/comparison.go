package exp

import (
	"vsnoop/internal/core"
	"vsnoop/internal/system"
)

// ComparisonRow is one (workload, filter) cell of the related-work
// comparison: virtual snooping against a RegionScout-style region filter
// and a blocking home-directory MESI protocol, all on identical machines.
// The paper argues VM boundaries are a *free* snoop domain (no discovery
// traffic, no tables scaling with working set) and that staying on a
// conventional snooping protocol avoids a directory redesign; this
// experiment quantifies both claims.
type ComparisonRow struct {
	Workload string
	Filter   string // "tokenB", "vsnoop", "regionscout", "directory"

	SnoopsPerTxn    float64
	NormSnoopPct    float64
	TrafficRedPct   float64
	NormRuntimePct  float64
	MissLatency     float64
	RegionNSRTHits  uint64
	RegionBroadcast uint64
}

// ComparisonApps span the sharing spectrum: lu (mostly private),
// fft (moderate intra-VM sharing), specjbb (shared-heavy server).
var ComparisonApps = []string{"lu", "fft", "specjbb"}

// Comparison runs the three filters over each app, pinned, no hypervisor.
func Comparison(sc Scale) []ComparisonRow {
	groups := parallel(len(ComparisonApps), func(i int) []ComparisonRow {
		app := ComparisonApps[i]

		base := pinnedCfg(app, sc.RefsPinned, sc.Warmup)
		base.Filter.Policy = core.PolicyBroadcast
		bst := runMachine(base)

		vs := pinnedCfg(app, sc.RefsPinned, sc.Warmup)
		vs.Filter.Policy = core.PolicyBase
		vst := runMachine(vs)

		rs := pinnedCfg(app, sc.RefsPinned, sc.Warmup)
		rs.UseRegionScout = true
		rst := runMachine(rs)

		dir := pinnedCfg(app, sc.RefsPinned, sc.Warmup)
		dir.Directory = true
		dst := runMachine(dir)

		row := func(name string, st *system.Stats) ComparisonRow {
			return ComparisonRow{
				Workload:        app,
				Filter:          name,
				SnoopsPerTxn:    st.SnoopsPerTransaction(),
				NormSnoopPct:    100 * float64(st.SnoopsIssued) / float64(bst.SnoopsIssued),
				TrafficRedPct:   100 * (1 - float64(st.ByteHops)/float64(bst.ByteHops)),
				NormRuntimePct:  100 * float64(st.ExecCycles) / float64(bst.ExecCycles),
				MissLatency:     st.MissLatency.Mean(),
				RegionNSRTHits:  st.RegionNSRTHits,
				RegionBroadcast: st.RegionBroadcasts,
			}
		}
		return []ComparisonRow{
			row("tokenB", bst),
			row("vsnoop", vst),
			row("regionscout", rst),
			row("directory", dst),
		}
	})
	var out []ComparisonRow
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}
