package exp

import (
	"vsnoop/internal/core"
)

// Table4Fig6Row is one application of Table IV (network traffic reduction
// with ideally pinned VMs) and Figure 6 (execution time normalized to the
// TokenB baseline).
type Table4Fig6Row struct {
	Workload string

	TrafficReductionPct  float64 // measured byte-hop reduction (Table IV)
	PaperTrafficRedPct   float64 // Table IV's published reduction
	NormRuntimePct       float64 // measured runtime vs TokenB (Figure 6)
	SnoopReductionPct    float64 // measured snoop reduction (text: 75% ideal)
	BaselineSnoopsPerTxn float64
	VSnoopSnoopsPerTxn   float64
}

// paperTable4 holds Table IV's published traffic reductions (percent).
var paperTable4 = map[string]float64{
	"cholesky": 63.79, "fft": 63.20, "lu": 64.27, "ocean": 63.74,
	"radix": 63.39, "blackscholes": 64.22, "canneal": 63.35,
	"dedup": 64.97, "ferret": 63.05, "specjbb": 62.79,
}

// Table4Figure6 runs the Section V.B experiment: four ideally pinned VMs
// of the same application on 16 cores, TokenB broadcast versus virtual
// snooping, no hypervisor.
func Table4Figure6(sc Scale) []Table4Fig6Row {
	return parallel(len(SectionVApps), func(i int) Table4Fig6Row {
		app := SectionVApps[i]
		base := pinnedCfg(app, sc.RefsPinned, sc.Warmup)
		base.Filter.Policy = core.PolicyBroadcast
		bst := runMachine(base)

		vs := pinnedCfg(app, sc.RefsPinned, sc.Warmup)
		vs.Filter.Policy = core.PolicyBase
		vst := runMachine(vs)

		return Table4Fig6Row{
			Workload:             app,
			TrafficReductionPct:  100 * (1 - float64(vst.ByteHops)/float64(bst.ByteHops)),
			PaperTrafficRedPct:   paperTable4[app],
			NormRuntimePct:       100 * float64(vst.ExecCycles) / float64(bst.ExecCycles),
			SnoopReductionPct:    100 * (1 - float64(vst.SnoopsIssued)/float64(bst.SnoopsIssued)),
			BaselineSnoopsPerTxn: bst.SnoopsPerTransaction(),
			VSnoopSnoopsPerTxn:   vst.SnoopsPerTransaction(),
		}
	})
}
