package exp

import (
	"vsnoop/internal/core"
)

// MigPeriods are the four migration periods of Figures 7 and 8 (ms).
var MigPeriods = []float64{5, 2.5, 0.5, 0.1}

// MigPolicies are the three virtual-snooping variants compared against the
// TokenB baseline in Figures 7 and 8.
var MigPolicies = []core.Policy{core.PolicyBase, core.PolicyCounter, core.PolicyCounterThreshold}

// Fig78Row is one (workload, period, policy) cell of Figures 7/8: total
// snoops normalized to the TokenB baseline at the same period.
type Fig78Row struct {
	Workload     string
	PeriodMs     float64
	Policy       core.Policy
	NormSnoopPct float64 // 100 = TokenB; 25 = ideal 4-of-16 multicast
	Relocations  uint64
	Retries      uint64
	Persistent   uint64
}

// Figures78 sweeps workloads x migration periods x policies. Within a
// (workload, period) group every policy shares one baseline run.
func Figures78(sc Scale, apps []string) []Fig78Row {
	return Figures78Periods(sc, apps, MigPeriods)
}

// Figures78Periods is Figures78 restricted to the given periods (Figure 7
// uses 5/2.5 ms, Figure 8 uses 0.5/0.1 ms).
func Figures78Periods(sc Scale, apps []string, periods []float64) []Fig78Row {
	type cell struct {
		app    string
		period float64
	}
	var cells []cell
	for _, app := range apps {
		for _, p := range periods {
			cells = append(cells, cell{app, p})
		}
	}
	groups := parallel(len(cells), func(i int) []Fig78Row {
		c := cells[i]
		base := migCfg(c.app, migRefs(sc.RefsMig, c.period), sc.MigWarmup, c.period, core.PolicyBroadcast)
		bst := runMachine(base)
		rows := make([]Fig78Row, 0, len(MigPolicies))
		for _, pol := range MigPolicies {
			cfg := migCfg(c.app, migRefs(sc.RefsMig, c.period), sc.MigWarmup, c.period, pol)
			st := runMachine(cfg)
			rows = append(rows, Fig78Row{
				Workload: c.app, PeriodMs: c.period, Policy: pol,
				NormSnoopPct: 100 * float64(st.SnoopsIssued) / float64(bst.SnoopsIssued),
				Relocations:  st.Relocations,
				Retries:      st.Retries,
				Persistent:   st.Persistent,
			})
		}
		return rows
	})
	var out []Fig78Row
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

// Fig9Series is the Figure 9 output: the cumulative distribution of the
// time from a vCPU's departure from a core until the counter mechanism
// removed that core from the VM's map, for a 5 ms migration period.
type Fig9Series struct {
	Workload string
	Xms      []float64 // removal period (scaled ms)
	CDF      []float64
	N        int
	// NeverRemoved reports maps that still held departed cores at the end
	// of the run (blackscholes' counters never reach zero in the paper).
	NeverRemovedPct float64
}

// Figure9 collects removal-period CDFs with the counter policy at a 5 ms
// period for the given applications.
func Figure9(sc Scale, apps []string) []Fig9Series {
	return parallel(len(apps), func(i int) Fig9Series {
		app := apps[i]
		cfg := migCfg(app, migRefs(sc.RefsMig, 5), sc.MigWarmup, 5, core.PolicyCounter)
		st := runMachine(cfg)
		cdf := st.RemovalPeriods
		xs, ys := cdf.Series(24)
		// Convert cycles to (scaled) milliseconds.
		ms := make([]float64, len(xs))
		for j, x := range xs {
			ms[j] = x / float64(cfg.CyclesPerMs)
		}
		// Pending removals that never resolved: relocations recorded as
		// pending minus completed (counted through the filter's CDF).
		sw := float64(st.Relocations)
		var never float64
		if sw > 0 {
			never = 100 * (1 - float64(cdf.N())/sw)
			if never < 0 {
				never = 0
			}
		}
		return Fig9Series{Workload: app, Xms: ms, CDF: ys, N: cdf.N(), NeverRemovedPct: never}
	})
}
