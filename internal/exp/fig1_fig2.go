package exp

import "vsnoop/internal/system"

// Fig1Row is one bar of Figure 1: the L2 miss decomposition of a workload
// run as two VMs of the same application, with hypervisor and dom0
// activity enabled.
type Fig1Row struct {
	Workload string
	XenPct   float64 // measured share of L2 misses by the hypervisor
	Dom0Pct  float64 // measured share by dom0
	GuestPct float64 // measured share by guest VMs
	PaperPct float64 // paper's hypervisor+dom0 share (read from Figure 1)
}

// paperFig1 holds the hypervisor+dom0 miss shares reported in Figure 1
// (percent, read from the published bars; dedup/freqmine/raytrace and the
// server workloads are called out numerically in the text).
var paperFig1 = map[string]float64{
	"blackscholes": 2, "bodytrack": 4, "canneal": 3, "dedup": 11,
	"facesim": 4, "ferret": 5, "fluidanimate": 4, "freqmine": 8,
	"raytrace": 7, "streamcluster": 3, "swaptions": 2, "vips": 5,
	"x264": 5, "oltp": 15, "specweb": 19,
}

// Figure1 reproduces the L2-miss decomposition: two VMs per workload, the
// Xen/dom0 activity fractions of each profile enabled.
func Figure1(sc Scale) []Fig1Row {
	return parallel(len(Fig1Apps), func(i int) Fig1Row {
		app := Fig1Apps[i]
		cfg := system.DefaultConfig()
		cfg.VMs = 2
		cfg.Workloads = []string{app}
		cfg.RefsPerVCPU = sc.RefsFig1 + sc.Warmup
		cfg.WarmupRefs = sc.Warmup
		st := runMachine(cfg)
		total := float64(st.L2Misses)
		if total == 0 {
			return Fig1Row{Workload: app, PaperPct: paperFig1[app]}
		}
		return Fig1Row{
			Workload: app,
			XenPct:   100 * float64(st.L2MissesXen) / total,
			Dom0Pct:  100 * float64(st.L2MissesDom0) / total,
			GuestPct: 100 * float64(st.L2MissesGuest) / total,
			PaperPct: paperFig1[app],
		}
	})
}

// Fig2Row is one point of Figure 2: the potential snoop reduction for a
// system of nVMs x 4 vCPUs (= 4*nVMs cores) when a given fraction of
// coherence transactions comes from the hypervisor and must broadcast.
type Fig2Row struct {
	VMs           int
	Cores         int
	HvRatioPct    float64
	ReductionPct  float64
	PaperAnchored bool // true for the points the paper quotes numerically
}

// Figure2 computes the paper's analytic model: with pinned VMs, a private
// transaction snoops only the VM's 4 cores instead of all N, so
//
//	reduction = (1 - h) * (1 - 4/N) * 100%
//
// where h is the hypervisor transaction ratio. The paper quotes >93% for
// the ideal 16-VM/64-core point and 84-89% for 5-10% hypervisor misses.
func Figure2() []Fig2Row {
	var out []Fig2Row
	ratios := []float64{0, 5, 10, 20, 30, 40}
	for _, vms := range []int{2, 4, 8, 16} {
		cores := 4 * vms
		for _, h := range ratios {
			red := (1 - h/100) * (1 - 4/float64(cores)) * 100
			out = append(out, Fig2Row{
				VMs: vms, Cores: cores, HvRatioPct: h, ReductionPct: red,
				PaperAnchored: vms == 16 && (h == 0 || h == 5 || h == 10),
			})
		}
	}
	return out
}
