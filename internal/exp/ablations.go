package exp

import (
	"vsnoop/internal/core"
	"vsnoop/internal/hv"
	"vsnoop/internal/workload"
)

// AblationRow is one design-choice ablation: the same experiment run with
// a design knob flipped, so DESIGN.md's choices are quantified.
type AblationRow struct {
	Name     string
	Baseline float64
	Variant  float64
	Unit     string
	Note     string
}

// Ablations quantifies the design choices DESIGN.md calls out:
//
//  1. quadrant vs linear vCPU placement (traffic reduction impact),
//  2. four corner memory controllers vs one,
//  3. link contention modeling on vs off (runtime impact of bandwidth),
//  4. counter vs counter-flush vs counter-threshold at a hostile period,
//  5. subset-pinned scheduling vs full migration when overcommitted
//     (the paper's proposed middle ground).
func Ablations(sc Scale) []AblationRow {
	var rows []AblationRow

	// 1. Placement: quadrant (baseline) vs linear.
	{
		base := pinnedCfg("fft", sc.RefsPinned, sc.Warmup)
		tb := base
		tb.Filter.Policy = core.PolicyBroadcast
		bst := runMachine(tb)
		q := runMachine(base)
		lin := base
		lin.LinearPlacement = true
		linTB := lin
		linTB.Filter.Policy = core.PolicyBroadcast
		lst := runMachine(linTB)
		l := runMachine(lin)
		rows = append(rows, AblationRow{
			Name:     "placement quadrant->linear",
			Baseline: 100 * (1 - float64(q.ByteHops)/float64(bst.ByteHops)),
			Variant:  100 * (1 - float64(l.ByteHops)/float64(lst.ByteHops)),
			Unit:     "traffic reduction %",
			Note:     "quadrant placement shortens intra-VM snoop paths",
		})
	}

	// 2. Memory controllers: 4 corners vs 1.
	{
		base := pinnedCfg("ocean", sc.RefsPinned, sc.Warmup)
		four := runMachine(base)
		one := base
		one.MCs = 1
		o := runMachine(one)
		rows = append(rows, AblationRow{
			Name:     "memory controllers 4->1",
			Baseline: float64(four.ExecCycles),
			Variant:  float64(o.ExecCycles),
			Unit:     "exec cycles",
			Note:     "single-corner MC concentrates traffic and DRAM queueing",
		})
	}

	// 3. Contention: on vs off (baseline TokenB, where bandwidth matters
	// most).
	{
		base := pinnedCfg("canneal", sc.RefsPinned, sc.Warmup)
		base.Filter.Policy = core.PolicyBroadcast
		on := runMachine(base)
		off := base
		off.Mesh.Contention = false
		offst := runMachine(off)
		rows = append(rows, AblationRow{
			Name:     "link contention on->off",
			Baseline: float64(on.ExecCycles),
			Variant:  float64(offst.ExecCycles),
			Unit:     "exec cycles",
			Note:     "contention is what virtual snooping's traffic cut buys back",
		})
	}

	// 4. Relocation policies under a hostile 0.5 ms period, including the
	// counter-flush extension.
	{
		bst := runMachine(migCfg("fft", migRefs(sc.RefsMig, 0.5), sc.MigWarmup, 0.5, core.PolicyBroadcast))
		counter := runMachine(migCfg("fft", migRefs(sc.RefsMig, 0.5), sc.MigWarmup, 0.5, core.PolicyCounter))
		flush := runMachine(migCfg("fft", migRefs(sc.RefsMig, 0.5), sc.MigWarmup, 0.5, core.PolicyCounterFlush))
		rows = append(rows, AblationRow{
			Name:     "counter vs counter-flush @0.5ms",
			Baseline: 100 * float64(counter.SnoopsIssued) / float64(bst.SnoopsIssued),
			Variant:  100 * float64(flush.SnoopsIssued) / float64(bst.SnoopsIssued),
			Unit:     "normalized snoops %",
			Note:     "flushing removes cores immediately at extra writeback cost",
		})
		rows = append(rows, AblationRow{
			Name:     "counter vs counter-flush traffic @0.5ms",
			Baseline: 100 * float64(counter.ByteHops) / float64(bst.ByteHops),
			Variant:  100 * float64(flush.ByteHops) / float64(bst.ByteHops),
			Unit:     "normalized traffic %",
			Note:     "the flush writebacks show up as traffic",
		})
	}

	// 5. Scheduler: subset pinning vs full migration, overcommitted.
	{
		prof := workload.MustGet("bodytrack")
		specs := make([]hv.TaskSpec, 4)
		for i := range specs {
			specs[i] = hv.TaskSpec{WorkMS: sc.SchedWorkMS, BurstMeanMS: prof.BurstMeanMS,
				BlockMeanMS: prof.BlockMeanMS, SerialFrac: prof.SerialFrac}
		}
		full := hv.NewCreditScheduler(hv.DefaultSchedConfig(4, false), specs).Run(sc.SchedWorkMS * 1000)
		subCfg := hv.DefaultSchedConfig(4, false)
		subCfg.SubsetSize = 4
		sub := hv.NewCreditScheduler(subCfg, specs).Run(sc.SchedWorkMS * 1000)
		rows = append(rows, AblationRow{
			Name:     "scheduler full-migration vs subset(4)",
			Baseline: full.MakespanMS,
			Variant:  sub.MakespanMS,
			Unit:     "makespan ms",
			Note:     "subset pinning bounds snoop domains at modest throughput cost",
		})
		rows = append(rows, AblationRow{
			Name:     "relocation period full vs subset(4)",
			Baseline: full.RelocationPeriodMS,
			Variant:  sub.RelocationPeriodMS,
			Unit:     "ms between relocations",
			Note:     "subset migrations stay inside the VM's snoop domain",
		})
	}

	return rows
}
