package exp

import (
	"vsnoop/internal/hv"
	"vsnoop/internal/workload"
)

// Fig3Row is one application of Figure 3: execution time of the
// full-migration credit scheduler normalized to the pinned (no-migration)
// policy, in the undercommitted (2 VMs) and overcommitted (4 VMs) systems.
type Fig3Row struct {
	Workload string
	// NormFullUnderPct: full-migration exec time / pinned exec time * 100,
	// undercommitted. The paper's Figure 3(a) shows pinning winning
	// (values >= ~100).
	NormFullUnderPct float64
	// NormFullOverPct: same, overcommitted. Figure 3(b) shows migration
	// winning decisively (values well below 100).
	NormFullOverPct float64
}

// Table1Row is one application of Table I: mean vCPU relocation periods
// under the default (migrating) credit scheduler.
type Table1Row struct {
	Workload     string
	UnderMS      float64 // measured, undercommitted (2 VMs on 8 cores)
	OverMS       float64 // measured, overcommitted (4 VMs on 8 cores)
	PaperUnderMS float64
	PaperOverMS  float64
}

// paperTable1 reproduces Table I's published relocation periods (ms).
var paperTable1 = map[string][2]float64{
	"blackscholes":  {2880.6, 91.3},
	"bodytrack":     {26.1, 1.2},
	"canneal":       {28.4, 3.4},
	"dedup":         {10.8, 0.1},
	"facesim":       {30.0, 1.2},
	"ferret":        {375.9, 31.5},
	"fluidanimate":  {46.6, 7.9},
	"freqmine":      {1968.0, 2064.4},
	"raytrace":      {528.8, 23.6},
	"streamcluster": {36.2, 1.3},
	"swaptions":     {2203.1, 80.3},
	"vips":          {18.3, 0.7},
	"x264":          {29.2, 8.2},
}

// schedRun drives one credit-scheduler simulation.
func schedRun(app string, vms int, pinned bool, workMS float64) hv.SchedResult {
	prof := workload.MustGet(app)
	specs := make([]hv.TaskSpec, vms)
	for i := range specs {
		specs[i] = hv.TaskSpec{
			WorkMS: workMS, BurstMeanMS: prof.BurstMeanMS,
			BlockMeanMS: prof.BlockMeanMS, SerialFrac: prof.SerialFrac,
		}
	}
	cfg := hv.DefaultSchedConfig(vms, pinned)
	return hv.NewCreditScheduler(cfg, specs).Run(workMS * 1000)
}

// Figure3Table1 runs the Section III scheduling experiment: 13 PARSEC
// profiles on an 8-core host, 2 VMs (undercommitted) and 4 VMs
// (overcommitted), pinned vs full-migration. One pass yields both
// Figure 3 and Table I.
func Figure3Table1(sc Scale) ([]Fig3Row, []Table1Row) {
	type res struct {
		f Fig3Row
		t Table1Row
	}
	rows := parallel(len(ParsecApps), func(i int) res {
		app := ParsecApps[i]
		pinU := schedRun(app, 2, true, sc.SchedWorkMS)
		migU := schedRun(app, 2, false, sc.SchedWorkMS)
		pinO := schedRun(app, 4, true, sc.SchedWorkMS)
		migO := schedRun(app, 4, false, sc.SchedWorkMS)
		paper := paperTable1[app]
		return res{
			f: Fig3Row{
				Workload:         app,
				NormFullUnderPct: 100 * migU.MakespanMS / pinU.MakespanMS,
				NormFullOverPct:  100 * migO.MakespanMS / pinO.MakespanMS,
			},
			t: Table1Row{
				Workload:     app,
				UnderMS:      migU.RelocationPeriodMS,
				OverMS:       migO.RelocationPeriodMS,
				PaperUnderMS: paper[0], PaperOverMS: paper[1],
			},
		}
	})
	f3 := make([]Fig3Row, len(rows))
	t1 := make([]Table1Row, len(rows))
	for i, r := range rows {
		f3[i], t1[i] = r.f, r.t
	}
	return f3, t1
}
