// Package exp reproduces every table and figure of the paper's evaluation.
// Each experiment function returns structured rows carrying both the
// measured value and the paper's published value (where the paper gives
// one), so the report generator can print paper-vs-measured side by side.
//
// Two run scales are provided: Quick (CI-sized, minutes) and Full (the
// scale used to generate EXPERIMENTS.md). Runs at either scale preserve
// the paper's qualitative shapes; see EXPERIMENTS.md for the documented
// time/size scaling.
package exp

import (
	"vsnoop/internal/cache"
	"vsnoop/internal/core"
	"vsnoop/internal/runner"
	"vsnoop/internal/system"
)

// Scale selects run sizes.
type Scale struct {
	Name string

	RefsPinned  int // refs/vCPU for ideally-pinned experiments (Table IV, Fig 6)
	RefsMig     int // refs/vCPU for migration sweeps (Figs 7-9)
	RefsContent int // refs/vCPU for content-sharing runs (Table V/VI, Fig 10)
	RefsFig1    int // refs/vCPU for the hypervisor-decomposition runs (Fig 1)

	SchedWorkMS float64 // per-vCPU CPU work in scheduler runs (Fig 3, Table I)

	Warmup    int // cache-warmup refs/vCPU excluded from statistics
	MigWarmup int // warmup for the (smaller-cache) migration runs

	Seeds int // independent seeds averaged per configuration
}

// Quick is the CI-sized scale.
var Quick = Scale{
	Name:       "quick",
	RefsPinned: 4000, RefsMig: 15000, RefsContent: 5000, RefsFig1: 6000,
	SchedWorkMS: 600,
	Warmup:      6000,
	MigWarmup:   3000,
	Seeds:       1,
}

// Full is the report-generation scale.
var Full = Scale{
	Name:       "full",
	RefsPinned: 40000, RefsMig: 30000, RefsContent: 30000, RefsFig1: 30000,
	SchedWorkMS: 3000,
	Warmup:      8000,
	MigWarmup:   4000,
	Seeds:       1,
}

// SectionVApps are the ten applications of the Section V evaluation
// (Table III: SPLASH-2, PARSEC subset, SPECjbb).
var SectionVApps = []string{
	"cholesky", "fft", "lu", "ocean", "radix",
	"blackscholes", "canneal", "dedup", "ferret", "specjbb",
}

// ContentApps are the nine applications of Table V / Section VI.
var ContentApps = []string{
	"cholesky", "fft", "lu", "ocean", "radix",
	"blackscholes", "canneal", "ferret", "specjbb",
}

// ParsecApps are the thirteen PARSEC applications of Section III.
var ParsecApps = []string{
	"blackscholes", "bodytrack", "canneal", "dedup", "facesim", "ferret",
	"fluidanimate", "freqmine", "raytrace", "streamcluster", "swaptions",
	"vips", "x264",
}

// Fig1Apps are the fifteen workloads of Figure 1.
var Fig1Apps = append(append([]string{}, ParsecApps...), "oltp", "specweb")

// pinnedCfg is the Table II system with ideally pinned VMs and no
// hypervisor (Virtual-GEMS methodology).
func pinnedCfg(app string, refs, warmup int) system.Config {
	cfg := system.DefaultConfig()
	cfg.Workloads = []string{app}
	cfg.RefsPerVCPU = refs + warmup
	cfg.WarmupRefs = warmup
	cfg.NoHypervisor = true
	return cfg
}

// migCfg is the scaled configuration used for the migration sweeps. The
// caches are shrunk 8x and the cycles-per-millisecond factor is chosen so
// that the ratio of migration period to cache-drain time matches the
// full-size system: a departed VM's blocks drain from a 32 KB L2 in
// roughly 130k cycles (~2 scaled ms), mirroring the paper's sub-10 ms
// removal periods against 5/2.5/0.5/0.1 ms migration (documented in
// EXPERIMENTS.md).
func migCfg(app string, refs, warmup int, periodMs float64, policy core.Policy) system.Config {
	cfg := system.DefaultConfig()
	cfg.Workloads = []string{app}
	cfg.RefsPerVCPU = refs + warmup
	cfg.WarmupRefs = warmup
	cfg.NoHypervisor = true
	cfg.L1 = cache.Config{Name: "L1", SizeBytes: 8 * 1024, Ways: 4, BlockBytes: 64, HitLatency: 2}
	cfg.L2 = cache.Config{Name: "L2", SizeBytes: 16 * 1024, Ways: 8, BlockBytes: 64, HitLatency: 10}
	cfg.CyclesPerMs = 60_000
	cfg.MigrationPeriodMs = periodMs
	cfg.Filter.Policy = policy
	return cfg
}

// migRefs scales the per-vCPU stream so long-period runs span enough
// migration epochs (>=10 periods at 5 ms) without making the short-period
// runs needlessly long.
func migRefs(base int, periodMs float64) int {
	switch {
	case periodMs >= 5:
		return 2 * base
	case periodMs >= 2.5:
		return base
	default:
		return base * 2 / 5
	}
}

// runMachine builds and runs one machine; it panics on configuration
// errors (experiment configs are code, not user input).
func runMachine(cfg system.Config) *system.Stats {
	cfg.MaxSteps = MaxSteps
	cfg.Shards = Shards
	cfg.Mode = Mode
	m, err := system.New(cfg)
	if err != nil {
		panic(err)
	}
	return m.Run()
}

// MaxSteps, when nonzero, bounds every experiment machine's event count
// (vsnoop-report's -max-steps runaway guard; exhausting it panics with a
// sim.StepLimitError rather than silently truncating results).
var MaxSteps uint64

// Shards is the per-machine event-queue shard count (vsnoop-report's
// -shards). Results are bit-identical for every value; it only trades
// per-run wall-clock against the experiment-level worker pool.
var Shards int

// Mode is the sharded synchronization engine (vsnoop-report's -mode):
// windowed, adaptive, timewarp, auto, or "" for the historical dispatch.
// Like Shards it is an execution mechanic — results are bit-identical
// across modes.
var Mode string

// parallel runs fn(i) for i in [0, n) on a bounded worker pool and returns
// the results in order. Machines are single-threaded and independent, so
// experiment sweeps parallelize perfectly; see internal/runner for the pool.
func parallel[T any](n int, fn func(i int) T) []T {
	return runner.Map(0, n, fn)
}
