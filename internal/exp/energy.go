package exp

import (
	"vsnoop/internal/core"
	"vsnoop/internal/energy"
)

// EnergyRow is one (workload, policy) energy breakdown — an extension
// experiment quantifying the paper's motivating claim that snoop filtering
// saves tag-lookup and message-transfer power (Section V.B cites
// Moshovos et al. for snoop tag lookups consuming a significant share of
// cache dynamic power).
type EnergyRow struct {
	Workload string
	Policy   core.Policy

	SnoopTagNJ float64
	NetworkNJ  float64
	CacheNJ    float64
	DRAMNJ     float64
	TotalNJ    float64

	// NormTotalPct is total energy normalized to the TokenB baseline.
	NormTotalPct float64
	// NormSnoopTagPct is snoop-tag energy normalized to the baseline.
	NormSnoopTagPct float64
}

// EnergyApps are the workloads of the energy extension experiment.
var EnergyApps = []string{"fft", "canneal", "specjbb"}

// Energy runs the coherence-energy comparison: TokenB vs vsnoop-base on
// the ideally pinned system.
func Energy(sc Scale) []EnergyRow {
	par := energy.Default()
	var out []EnergyRow
	results := parallel(len(EnergyApps), func(i int) []EnergyRow {
		app := EnergyApps[i]
		base := pinnedCfg(app, sc.RefsPinned, sc.Warmup)
		base.Filter.Policy = core.PolicyBroadcast
		bst := runMachine(base)
		bEn := energy.Compute(par, bst)

		var rows []EnergyRow
		rows = append(rows, EnergyRow{
			Workload: app, Policy: core.PolicyBroadcast,
			SnoopTagNJ: bEn.SnoopTag, NetworkNJ: bEn.Network,
			CacheNJ: bEn.Cache, DRAMNJ: bEn.DRAM, TotalNJ: bEn.Total(),
			NormTotalPct: 100, NormSnoopTagPct: 100,
		})
		vs := pinnedCfg(app, sc.RefsPinned, sc.Warmup)
		vs.Filter.Policy = core.PolicyBase
		vst := runMachine(vs)
		vEn := energy.Compute(par, vst)
		rows = append(rows, EnergyRow{
			Workload: app, Policy: core.PolicyBase,
			SnoopTagNJ: vEn.SnoopTag, NetworkNJ: vEn.Network,
			CacheNJ: vEn.Cache, DRAMNJ: vEn.DRAM, TotalNJ: vEn.Total(),
			NormTotalPct:    100 * vEn.Total() / bEn.Total(),
			NormSnoopTagPct: 100 * vEn.SnoopTag / bEn.SnoopTag,
		})
		return rows
	})
	for _, g := range results {
		out = append(out, g...)
	}
	return out
}
