package exp

import (
	"vsnoop/internal/core"
	"vsnoop/internal/system"
)

// Table5Row is one application of Table V: the share of L1 accesses and of
// L2 misses that target content-shared pages (four VMs of the same
// application, idealized content-sharing detector).
type Table5Row struct {
	Workload    string
	AccessPct   float64
	MissPct     float64
	PaperAccess float64
	PaperMiss   float64
	SharedPages uint64 // pages the detector merged
	CowCount    uint64
}

// paperTable5 holds Table V's published percentages {access, L2 miss}.
var paperTable5 = map[string][2]float64{
	"cholesky": {1.45, 2.66}, "fft": {5.43, 30.64}, "lu": {0.43, 8.87},
	"ocean": {0.40, 0.83}, "radix": {20.47, 0.96},
	"blackscholes": {46.16, 41.10}, "canneal": {25.16, 51.49},
	"ferret": {3.64, 5.13}, "specjbb": {9.48, 37.74},
}

// contentCfg is the Section VI setup: four pinned VMs of the same app,
// content sharing on, no hypervisor.
func contentCfg(app string, refs, warmup int, cp core.ContentPolicy) system.Config {
	cfg := pinnedCfg(app, refs, warmup)
	cfg.ContentSharing = true
	cfg.Filter.Policy = core.PolicyBase
	cfg.Filter.Content = cp
	return cfg
}

// Table5 measures content-shared access/miss shares per application.
func Table5(sc Scale) []Table5Row {
	return parallel(len(ContentApps), func(i int) Table5Row {
		app := ContentApps[i]
		st := runMachine(contentCfg(app, sc.RefsContent, sc.Warmup, core.ContentBroadcast))
		paper := paperTable5[app]
		return Table5Row{
			Workload:    app,
			AccessPct:   st.ContentAccessPct(),
			MissPct:     st.ContentMissPct(),
			PaperAccess: paper[0],
			PaperMiss:   paper[1],
			CowCount:    st.Cows,
		}
	})
}

// Fig10Row is one (workload, content policy) bar of Figure 10: total
// snoops normalized to the TokenB baseline.
type Fig10Row struct {
	Workload     string
	Policy       core.ContentPolicy
	NormSnoopPct float64
}

// Table6Row is one application of Table VI: where the data for L2 misses
// on content-shared pages could have come from.
type Table6Row struct {
	Workload    string
	CacheAllPct float64 // some cache held it
	IntraVMPct  float64 // a cache of the requesting VM held it
	FriendVMPct float64 // a friend-VM cache held it (and no intra-VM one)
	MemoryPct   float64 // memory was the only holder
	PaperAll    float64
	PaperIntra  float64
	PaperFriend float64
	PaperMemory float64
}

// paperTable6 holds Table VI's published decompositions
// {cache-all, intra-VM, friend-VM, memory}.
var paperTable6 = map[string][4]float64{
	"fft":          {47.3, 0.1, 24.4, 52.7},
	"blackscholes": {53.2, 6.9, 27.7, 46.8},
	"canneal":      {63.9, 26.9, 21.0, 37.1},
	"specjbb":      {54.3, 14.8, 21.5, 45.7},
}

// Table6Apps are the four applications Table VI reports.
var Table6Apps = []string{"fft", "blackscholes", "canneal", "specjbb"}

// ContentPolicies are the four Figure 10 variants.
var ContentPolicies = []core.ContentPolicy{
	core.ContentBroadcast, core.ContentMemoryDirect,
	core.ContentIntraVM, core.ContentFriendVM,
}

// Figure10Table6 runs the Section VI.B experiment: per application, a
// TokenB baseline plus the four content policies; the holder decomposition
// (Table VI) comes from the same runs.
func Figure10Table6(sc Scale) ([]Fig10Row, []Table6Row) {
	type group struct {
		f10   []Fig10Row
		t6    Table6Row
		hasT6 bool
	}
	groups := parallel(len(ContentApps), func(i int) group {
		app := ContentApps[i]
		base := pinnedCfg(app, sc.RefsContent, sc.Warmup)
		base.ContentSharing = true
		base.Filter.Policy = core.PolicyBroadcast
		bst := runMachine(base)

		var g group
		var holderStats *system.Stats
		for _, cp := range ContentPolicies {
			st := runMachine(contentCfg(app, sc.RefsContent, sc.Warmup, cp))
			g.f10 = append(g.f10, Fig10Row{
				Workload: app, Policy: cp,
				NormSnoopPct: 100 * float64(st.SnoopsIssued) / float64(bst.SnoopsIssued),
			})
			if cp == core.ContentBroadcast {
				holderStats = st
			}
		}
		for _, t6app := range Table6Apps {
			if t6app != app {
				continue
			}
			total := float64(holderStats.HolderMemory + holderStats.HolderIntraVM +
				holderStats.HolderFriend + holderStats.HolderOther)
			if total == 0 {
				break
			}
			paper := paperTable6[app]
			g.t6 = Table6Row{
				Workload:    app,
				CacheAllPct: 100 * float64(holderStats.HolderIntraVM+holderStats.HolderFriend+holderStats.HolderOther) / total,
				IntraVMPct:  100 * float64(holderStats.HolderIntraVM) / total,
				FriendVMPct: 100 * float64(holderStats.HolderFriend) / total,
				MemoryPct:   100 * float64(holderStats.HolderMemory) / total,
				PaperAll:    paper[0], PaperIntra: paper[1],
				PaperFriend: paper[2], PaperMemory: paper[3],
			}
			g.hasT6 = true
		}
		return g
	})
	var f10 []Fig10Row
	var t6 []Table6Row
	for _, g := range groups {
		f10 = append(f10, g.f10...)
		if g.hasT6 {
			t6 = append(t6, g.t6)
		}
	}
	return f10, t6
}
