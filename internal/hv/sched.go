package hv

import (
	"fmt"
	"math"

	"vsnoop/internal/mem"
	"vsnoop/internal/sim"
)

// TaskSpec describes the scheduling behaviour of the vCPUs of one
// application VM: how much CPU work each vCPU must complete, and the
// burst/block rhythm that drives scheduler-induced relocation (I/O,
// synchronization, and pipeline stalls make a vCPU block; the Xen credit
// scheduler then re-places it when it wakes).
type TaskSpec struct {
	WorkMS      float64 // total CPU time each vCPU needs
	BurstMeanMS float64 // mean runnable burst before blocking
	BlockMeanMS float64 // mean blocked duration

	// SerialFrac is the fraction of the VM's execution spent in serial
	// phases where only vCPU 0 is runnable (Amdahl sections, pipeline
	// drains). Serial phases create the load imbalance that makes pinning
	// lose badly on overcommitted systems (Figure 3b): a pinned core
	// whose vCPUs belong to VMs in serial phases idles while runnable
	// vCPUs queue elsewhere.
	SerialFrac float64
	// PhaseMS is the parallel+serial cycle length (default 20 ms).
	PhaseMS float64
}

// SchedConfig configures one credit-scheduler simulation (Section III's
// real-system experiment, reproduced in simulation).
type SchedConfig struct {
	Cores      int
	VMs        int
	VCPUsPerVM int

	TimesliceMS     float64 // Xen credit scheduler: 30 ms
	AccountPeriodMS float64 // credit refill period: 30 ms

	// Pinned selects the "no migration" policy (one-to-one vCPU pinning);
	// otherwise the default work-stealing "full migration" policy runs.
	Pinned bool

	// SubsetSize > 0 selects the middle-ground policy the paper proposes
	// as future work (Section III.B / VIII): each VM may migrate only
	// within a fixed subset of cores, bounding its snoop domain while
	// retaining load balancing inside the subset. SubsetSize is the number
	// of cores per VM subset (VM i uses cores [i*S, (i+1)*S) mod Cores).
	SubsetSize int

	// MigrationPenaltyMS is the cold-cache cost added to a vCPU's
	// remaining work each time it lands on a new core.
	MigrationPenaltyMS float64

	StepMS float64 // simulation timestep (default 0.05 ms)
	Seed   uint64
}

// DefaultSchedConfig mirrors the paper's testbed: 8 physical cores, 4
// vCPUs per VM, Xen credit scheduler defaults.
func DefaultSchedConfig(vms int, pinned bool) SchedConfig {
	return SchedConfig{
		Cores: 8, VMs: vms, VCPUsPerVM: 4,
		TimesliceMS: 30, AccountPeriodMS: 30,
		Pinned: pinned, MigrationPenaltyMS: 0.35,
		StepMS: 0.05, Seed: 1,
	}
}

// SchedResult summarizes one scheduler run.
type SchedResult struct {
	MakespanMS float64 // time until every vCPU finished its work
	// Relocations counts every vCPU-to-core mapping change after first
	// placement ("any mapping change", as Table I measures with xenperf).
	Relocations uint64
	// RelocationPeriodMS is the mean time between mapping changes of one
	// vCPU (Table I's metric).
	RelocationPeriodMS float64
	// BusyFraction is aggregate core utilization until makespan.
	BusyFraction float64
}

type vcpuState int

const (
	vRunnable vcpuState = iota
	vRunning
	vBlocked
	vDone
)

type schedVCPU struct {
	id        VCPU
	spec      TaskSpec
	state     vcpuState
	remaining float64 // work left (ms)
	burstLeft float64
	unblockAt float64
	credit    float64
	sliceUsed float64
	lastCore  int
	pinned    int
	boosted   bool // woken vCPU with BOOST priority (may preempt)
	moves     uint64
}

// CreditScheduler simulates the Xen credit scheduler over a set of
// burst/block vCPUs and reports makespan and relocation statistics.
type vmPhase struct {
	serial    bool
	changeAt  float64
	spec      TaskSpec
	parallelD float64
	serialD   float64
}

type CreditScheduler struct {
	cfg    SchedConfig
	rng    *sim.Rand
	vcpus  []*schedVCPU
	cores  []*schedVCPU // nil = idle
	queue  []*schedVCPU // global runnable queue (full-migration mode)
	phases []*vmPhase   // per-VM parallel/serial phase state

	now      float64
	busyTime float64
}

// NewCreditScheduler builds a scheduler with one TaskSpec per VM (specs
// must have length cfg.VMs).
func NewCreditScheduler(cfg SchedConfig, specs []TaskSpec) *CreditScheduler {
	if len(specs) != cfg.VMs {
		panic(fmt.Sprintf("hv: %d specs for %d VMs", len(specs), cfg.VMs))
	}
	if cfg.StepMS <= 0 {
		cfg.StepMS = 0.05
	}
	s := &CreditScheduler{
		cfg:   cfg,
		rng:   sim.NewRand(cfg.Seed ^ 0x5EDC0DE),
		cores: make([]*schedVCPU, cfg.Cores),
	}
	for vm := 0; vm < cfg.VMs; vm++ {
		spec := specs[vm]
		phaseMS := spec.PhaseMS
		if phaseMS <= 0 {
			phaseMS = 20
		}
		ph := &vmPhase{
			spec:      spec,
			parallelD: phaseMS * (1 - spec.SerialFrac),
			serialD:   phaseMS * spec.SerialFrac,
		}
		ph.changeAt = ph.parallelD * (0.5 + s.rng.Float64()) // desynchronize VMs
		s.phases = append(s.phases, ph)
		for i := 0; i < cfg.VCPUsPerVM; i++ {
			v := &schedVCPU{
				id:        VCPU{VM: mem.VMID(vm), Idx: i},
				spec:      specs[vm],
				state:     vRunnable,
				remaining: specs[vm].WorkMS,
				lastCore:  -1,
				pinned:    (vm*cfg.VCPUsPerVM + i) % cfg.Cores,
			}
			v.burstLeft = s.expDraw(v.spec.BurstMeanMS)
			s.vcpus = append(s.vcpus, v)
		}
	}
	return s
}

// expDraw samples an exponential with the given mean (>=1 step minimum).
func (s *CreditScheduler) expDraw(mean float64) float64 {
	if mean <= 0 {
		return math.Inf(1) // never blocks
	}
	u := s.rng.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	d := -mean * math.Log(u)
	if d < s.cfg.StepMS {
		d = s.cfg.StepMS
	}
	return d
}

// Run simulates until all vCPUs finish (or maxMS elapses) and returns the
// result.
func (s *CreditScheduler) Run(maxMS float64) SchedResult {
	dt := s.cfg.StepMS
	nextAccount := s.cfg.AccountPeriodMS
	s.refillCredits()
	for _, v := range s.vcpus {
		if v.state == vRunnable {
			s.enqueue(v)
		}
	}
	s.dispatch()
	for !s.allDone() && s.now < maxMS {
		s.now += dt
		if s.now >= nextAccount {
			s.refillCredits()
			nextAccount += s.cfg.AccountPeriodMS
		}
		s.advancePhases()
		s.wakeBlocked()
		s.runStep(dt)
		s.dispatch()
	}
	var relocs uint64
	for _, v := range s.vcpus {
		relocs += v.moves
	}
	res := SchedResult{
		MakespanMS:  s.now,
		Relocations: relocs,
	}
	if relocs > 0 {
		res.RelocationPeriodMS = s.now * float64(len(s.vcpus)) / float64(relocs)
	} else {
		res.RelocationPeriodMS = s.now * float64(len(s.vcpus))
	}
	if s.now > 0 {
		res.BusyFraction = s.busyTime / (s.now * float64(s.cfg.Cores))
	}
	return res
}

func (s *CreditScheduler) allDone() bool {
	for _, v := range s.vcpus {
		if v.state != vDone {
			return false
		}
	}
	return true
}

func (s *CreditScheduler) refillCredits() {
	share := s.cfg.AccountPeriodMS * float64(s.cfg.Cores) / float64(len(s.vcpus))
	cap := 2 * share
	for _, v := range s.vcpus {
		if v.state == vDone {
			continue
		}
		v.credit += share
		if v.credit > cap {
			v.credit = cap
		}
	}
}

// advancePhases flips VMs between parallel and serial phases. Entering a
// serial phase forcibly blocks every vCPU of the VM except vCPU 0 until
// the phase ends (they are waiting at a barrier / on the serial thread).
func (s *CreditScheduler) advancePhases() {
	for vm, ph := range s.phases {
		if ph.serialD <= 0 || s.now < ph.changeAt {
			continue
		}
		if !ph.serial {
			ph.serial = true
			ph.changeAt = s.now + ph.serialD
			for _, v := range s.vcpus {
				if int(v.id.VM) != vm || v.id.Idx == 0 || v.state == vDone {
					continue
				}
				switch v.state {
				case vRunning:
					for c, rv := range s.cores {
						if rv == v {
							s.cores[c] = nil
						}
					}
				case vRunnable:
					s.removeFromQueue(v)
				case vBlocked:
					if v.unblockAt > ph.changeAt {
						continue // its own block outlasts the phase
					}
				}
				v.state = vBlocked
				v.unblockAt = ph.changeAt
			}
		} else {
			ph.serial = false
			ph.changeAt = s.now + ph.parallelD
			// The phase-blocked vCPUs wake via wakeBlocked on this step.
		}
	}
}

func (s *CreditScheduler) removeFromQueue(v *schedVCPU) {
	for i, w := range s.queue {
		if w == v {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

func (s *CreditScheduler) wakeBlocked() {
	for _, v := range s.vcpus {
		if v.state == vBlocked && s.now >= v.unblockAt {
			v.state = vRunnable
			v.burstLeft = s.expDraw(v.spec.BurstMeanMS)
			v.boosted = true // Xen credit BOOST: wakers may preempt
			s.enqueue(v)
		}
	}
}

func (s *CreditScheduler) enqueue(v *schedVCPU) {
	s.queue = append(s.queue, v)
}

// runStep advances every running vCPU by dt of work/credit/burst.
func (s *CreditScheduler) runStep(dt float64) {
	for c, v := range s.cores {
		if v == nil {
			continue
		}
		s.busyTime += dt
		v.remaining -= dt
		v.credit -= dt
		v.burstLeft -= dt
		v.sliceUsed += dt
		if v.remaining <= 0 {
			v.state = vDone
			s.cores[c] = nil
			continue
		}
		if v.burstLeft <= 0 {
			v.state = vBlocked
			v.unblockAt = s.now + s.expDraw(v.spec.BlockMeanMS)
			s.cores[c] = nil
			continue
		}
		// Preemption: slice expired and someone eligible is waiting.
		if v.sliceUsed >= s.cfg.TimesliceMS && s.waiterFor(c) {
			v.state = vRunnable
			s.cores[c] = nil
			s.enqueue(v)
		}
	}
}

// allowed reports whether vCPU v may run on core c under the configured
// placement policy.
func (s *CreditScheduler) allowed(v *schedVCPU, c int) bool {
	if s.cfg.Pinned {
		return v.pinned == c
	}
	if s.cfg.SubsetSize > 0 {
		lo := (int(v.id.VM) * s.cfg.SubsetSize) % s.cfg.Cores
		for i := 0; i < s.cfg.SubsetSize; i++ {
			if (lo+i)%s.cfg.Cores == c {
				return true
			}
		}
		return false
	}
	return true
}

// waiterFor reports whether a runnable vCPU is eligible to run on core c.
func (s *CreditScheduler) waiterFor(c int) bool {
	for _, w := range s.queue {
		if s.allowed(w, c) {
			return true
		}
	}
	return false
}

// dispatch fills idle cores from the runnable queue: pinned mode restricts
// each vCPU to its home core; full-migration mode lets any idle core steal
// any waiting vCPU (credit work-stealing), preferring vCPUs with credit
// remaining (UNDER priority).
func (s *CreditScheduler) dispatch() {
	if len(s.queue) == 0 {
		return
	}
	// Iterate idle cores in random order so wake placement is not biased
	// toward low-numbered cores (mirrors Xen's tickle raciness).
	order := s.rng.Perm(s.cfg.Cores)
	for _, c := range order {
		if s.cores[c] != nil || len(s.queue) == 0 {
			continue
		}
		best := -1
		for qi, w := range s.queue {
			if !s.allowed(w, c) {
				continue
			}
			if best == -1 {
				best = qi
				continue
			}
			b := s.queue[best]
			// UNDER (credit > 0) beats OVER; then prefer cache affinity.
			wU, bU := w.credit > 0, b.credit > 0
			if wU != bU {
				if wU {
					best = qi
				}
				continue
			}
			if w.lastCore == c && b.lastCore != c {
				best = qi
			}
		}
		if best == -1 {
			continue
		}
		v := s.queue[best]
		s.queue = append(s.queue[:best], s.queue[best+1:]...)
		s.start(v, c)
	}
	s.boostPreempt()
}

// boostPreempt lets freshly woken (BOOST-priority) vCPUs preempt a running
// vCPU with lower credit, the Xen credit-scheduler behaviour that makes
// overcommitted systems relocate vCPUs so frequently (Table I).
func (s *CreditScheduler) boostPreempt() {
	for qi := 0; qi < len(s.queue); qi++ {
		w := s.queue[qi]
		if !w.boosted {
			continue
		}
		best := -1
		for c, v := range s.cores {
			if v == nil || v.sliceUsed < 1.0 || v.credit >= w.credit {
				continue
			}
			if !s.allowed(w, c) {
				continue
			}
			if best == -1 || v.credit < s.cores[best].credit {
				best = c
			}
		}
		if best == -1 {
			continue
		}
		victim := s.cores[best]
		victim.state = vRunnable
		s.queue = append(s.queue[:qi], s.queue[qi+1:]...)
		qi--
		s.enqueue(victim)
		s.start(w, best)
	}
}

func (s *CreditScheduler) start(v *schedVCPU, c int) {
	v.state = vRunning
	v.sliceUsed = 0
	v.boosted = false
	if v.lastCore != -1 && v.lastCore != c {
		v.moves++
		v.remaining += s.cfg.MigrationPenaltyMS // cold-cache refill cost
	}
	v.lastCore = c
	s.cores[c] = v
}
