package hv

// MapperSnap is one checkpoint of the vCPU-to-core mapping (optimistic
// shard engine; the mapper is owned by the shard hosting domain 0, which is
// the only domain that mutates it).
type MapperSnap struct {
	cores       []VCPU
	relocations uint64
}

// Save copies the mapper's mutable state into s.
func (m *Mapper) Save(s *MapperSnap) {
	s.cores = append(s.cores[:0], m.cores...)
	s.relocations = m.Relocations
}

// Restore rewinds the mapper to the state captured by Save. The inverse
// index is rebuilt from the core table; entries for vCPUs that were placed
// only during rolled-back speculation are deleted so CoreOf answers -1 for
// them again.
func (m *Mapper) Restore(s *MapperSnap) {
	copy(m.cores, s.cores)
	clear(m.where)
	for c, v := range m.cores {
		if v != NoVCPU {
			m.where[v] = c
		}
	}
	m.Relocations = s.relocations
}
