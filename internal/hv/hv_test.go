package hv

import (
	"testing"
	"testing/quick"

	"vsnoop/internal/mem"
	"vsnoop/internal/sim"
)

func TestMapperPlaceAndLookup(t *testing.T) {
	m := NewMapper(4)
	v := VCPU{VM: 1, Idx: 0}
	m.Place(v, 2)
	if m.CoreOf(v) != 2 {
		t.Fatalf("CoreOf = %d", m.CoreOf(v))
	}
	if got := m.On(2); got != v {
		t.Fatalf("On(2) = %v", got)
	}
	if vm, ok := m.VMOn(2); !ok || vm != 1 {
		t.Fatalf("VMOn = %d,%v", vm, ok)
	}
	if _, ok := m.VMOn(0); ok {
		t.Fatal("idle core reported a VM")
	}
}

func TestMapperRelocationCallback(t *testing.T) {
	m := NewMapper(4)
	var events [][2]int
	m.OnRelocate = func(v VCPU, from, to int) { events = append(events, [2]int{from, to}) }
	v := VCPU{VM: 1, Idx: 0}
	m.Place(v, 0) // first placement: from = -1
	m.Place(v, 3) // relocation
	if len(events) != 2 {
		t.Fatalf("events = %v", events)
	}
	if events[0] != [2]int{-1, 0} || events[1] != [2]int{0, 3} {
		t.Fatalf("events = %v", events)
	}
	if m.Relocations != 1 {
		t.Fatalf("relocations = %d, want 1 (first placement excluded)", m.Relocations)
	}
}

func TestMapperSwap(t *testing.T) {
	m := NewMapper(4)
	a := VCPU{VM: 1, Idx: 0}
	b := VCPU{VM: 2, Idx: 0}
	m.Place(a, 0)
	m.Place(b, 1)
	m.Swap(0, 1)
	if m.CoreOf(a) != 1 || m.CoreOf(b) != 0 {
		t.Fatal("swap did not exchange cores")
	}
	if m.Relocations != 2 {
		t.Fatalf("relocations = %d, want 2", m.Relocations)
	}
	// Swap with an idle core moves one vCPU.
	m.Swap(0, 3)
	if m.CoreOf(b) != 3 {
		t.Fatal("swap with idle core failed")
	}
	if m.On(0) != NoVCPU {
		t.Fatal("old core not idled")
	}
}

func TestMapperRunningCores(t *testing.T) {
	m := NewMapper(8)
	for i := 0; i < 4; i++ {
		m.Place(VCPU{VM: 5, Idx: i}, 7-i)
	}
	got := m.RunningCores(5)
	want := []int{4, 5, 6, 7}
	if len(got) != 4 {
		t.Fatalf("cores = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cores = %v, want %v (sorted)", got, want)
		}
	}
}

func TestMapperDoubleOccupancyPanics(t *testing.T) {
	m := NewMapper(2)
	m.Place(VCPU{VM: 1, Idx: 0}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("placing a second vCPU on a busy core did not panic")
		}
	}()
	m.Place(VCPU{VM: 2, Idx: 0}, 0)
}

func TestShufflerSwapsAcrossVMsOnly(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMapper(8)
	for vm := 0; vm < 2; vm++ {
		for i := 0; i < 4; i++ {
			m.Place(VCPU{VM: mem.VMID(vm), Idx: i}, vm*4+i)
		}
	}
	crossings := 0
	m.OnRelocate = func(v VCPU, from, to int) { crossings++ }
	sh := &Shuffler{Eng: eng, Map: m, Period: 100}
	sh.Start()
	eng.RunUntil(10_000)
	sh.Stop()
	if sh.Swaps < 50 {
		t.Fatalf("swaps = %d, want ~100", sh.Swaps)
	}
	if crossings != int(sh.Swaps)*2 {
		t.Fatalf("relocation events %d != 2*swaps %d", crossings, sh.Swaps)
	}
	// Every VM still has exactly 4 running cores.
	for vm := mem.VMID(0); vm < 2; vm++ {
		if got := len(m.RunningCores(vm)); got != 4 {
			t.Fatalf("VM %d on %d cores after shuffles", vm, got)
		}
	}
}

func TestShufflerDisabledWithZeroPeriod(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMapper(4)
	sh := &Shuffler{Eng: eng, Map: m, Period: 0}
	sh.Start()
	if eng.Pending() != 0 {
		t.Fatal("disabled shuffler scheduled events")
	}
}

func TestMapperOccupancyInvariantProperty(t *testing.T) {
	// Under random placements and swaps, every vCPU occupies exactly one
	// core and every core holds at most one vCPU.
	err := quick.Check(func(seed uint64) bool {
		r := sim.NewRand(seed)
		m := NewMapper(8)
		for vm := 0; vm < 2; vm++ {
			for i := 0; i < 4; i++ {
				m.Place(VCPU{VM: mem.VMID(vm), Idx: i}, vm*4+i)
			}
		}
		for op := 0; op < 200; op++ {
			m.Swap(r.Intn(8), r.Intn(8))
		}
		seen := map[VCPU]int{}
		for c := 0; c < 8; c++ {
			v := m.On(c)
			if v == NoVCPU {
				continue
			}
			if _, dup := seen[v]; dup {
				return false
			}
			seen[v] = c
			if m.CoreOf(v) != c {
				return false
			}
		}
		return len(seen) == 8
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

// --- credit scheduler ---

func specs(n int, s TaskSpec) []TaskSpec {
	out := make([]TaskSpec, n)
	for i := range out {
		out[i] = s
	}
	return out
}

func TestSchedulerCompletesAllWork(t *testing.T) {
	cfg := DefaultSchedConfig(2, false)
	s := NewCreditScheduler(cfg, specs(2, TaskSpec{WorkMS: 500, BurstMeanMS: 20, BlockMeanMS: 2}))
	res := s.Run(100_000)
	if res.MakespanMS >= 100_000 {
		t.Fatal("scheduler did not finish")
	}
	// 8 vCPUs with 500ms each on 8 cores: makespan >= 500ms.
	if res.MakespanMS < 500 {
		t.Fatalf("makespan %v < serial bound", res.MakespanMS)
	}
}

func TestUndercommittedPinningWins(t *testing.T) {
	// 2 VMs x 4 vCPUs on 8 cores: pinning avoids cold-cache penalties, so
	// pinned makespan <= migrating makespan (Figure 3a).
	spec := TaskSpec{WorkMS: 2000, BurstMeanMS: 15, BlockMeanMS: 1.5}
	pin := NewCreditScheduler(DefaultSchedConfig(2, true), specs(2, spec)).Run(1e6)
	mig := NewCreditScheduler(DefaultSchedConfig(2, false), specs(2, spec)).Run(1e6)
	if pin.MakespanMS > mig.MakespanMS*1.02 {
		t.Fatalf("undercommitted: pinned %.0f worse than migrating %.0f", pin.MakespanMS, mig.MakespanMS)
	}
}

func TestOvercommittedMigrationWins(t *testing.T) {
	// 4 VMs x 4 vCPUs on 8 cores with blocking: work stealing keeps cores
	// busy, pinning strands work (Figure 3b).
	spec := TaskSpec{WorkMS: 2000, BurstMeanMS: 10, BlockMeanMS: 6}
	pin := NewCreditScheduler(DefaultSchedConfig(4, true), specs(4, spec)).Run(1e6)
	mig := NewCreditScheduler(DefaultSchedConfig(4, false), specs(4, spec)).Run(1e6)
	if mig.MakespanMS >= pin.MakespanMS {
		t.Fatalf("overcommitted: migrating %.0f not faster than pinned %.0f", mig.MakespanMS, pin.MakespanMS)
	}
}

func TestPinnedNeverMigrates(t *testing.T) {
	spec := TaskSpec{WorkMS: 1000, BurstMeanMS: 5, BlockMeanMS: 2}
	res := NewCreditScheduler(DefaultSchedConfig(2, true), specs(2, spec)).Run(1e6)
	if res.Relocations != 0 {
		t.Fatalf("pinned run migrated %d times", res.Relocations)
	}
}

func TestOvercommitMigratesMoreThanUndercommit(t *testing.T) {
	// Table I: overcommitted relocation periods are much shorter.
	spec := TaskSpec{WorkMS: 3000, BurstMeanMS: 12, BlockMeanMS: 2}
	under := NewCreditScheduler(DefaultSchedConfig(2, false), specs(2, spec)).Run(1e6)
	over := NewCreditScheduler(DefaultSchedConfig(4, false), specs(4, spec)).Run(1e6)
	if under.Relocations == 0 || over.Relocations == 0 {
		t.Fatalf("expected migrations in both: under=%d over=%d", under.Relocations, over.Relocations)
	}
	if over.RelocationPeriodMS >= under.RelocationPeriodMS {
		t.Fatalf("overcommitted period %.1f not shorter than undercommitted %.1f",
			over.RelocationPeriodMS, under.RelocationPeriodMS)
	}
}

func TestComputeBoundBlocksRarely(t *testing.T) {
	// A blackscholes-like VM (long bursts) relocates far less often than a
	// bodytrack-like VM (short bursts).
	compute := TaskSpec{WorkMS: 3000, BurstMeanMS: 500, BlockMeanMS: 1}
	blocky := TaskSpec{WorkMS: 3000, BurstMeanMS: 8, BlockMeanMS: 1}
	a := NewCreditScheduler(DefaultSchedConfig(2, false), specs(2, compute)).Run(1e6)
	b := NewCreditScheduler(DefaultSchedConfig(2, false), specs(2, blocky)).Run(1e6)
	if a.RelocationPeriodMS <= b.RelocationPeriodMS {
		t.Fatalf("compute-bound period %.1f not longer than blocky %.1f",
			a.RelocationPeriodMS, b.RelocationPeriodMS)
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	spec := TaskSpec{WorkMS: 800, BurstMeanMS: 10, BlockMeanMS: 3}
	r1 := NewCreditScheduler(DefaultSchedConfig(4, false), specs(4, spec)).Run(1e6)
	r2 := NewCreditScheduler(DefaultSchedConfig(4, false), specs(4, spec)).Run(1e6)
	if r1 != r2 {
		t.Fatalf("nondeterministic scheduler: %+v vs %+v", r1, r2)
	}
}

func TestSchedulerUtilizationBounds(t *testing.T) {
	spec := TaskSpec{WorkMS: 500, BurstMeanMS: 10, BlockMeanMS: 1}
	res := NewCreditScheduler(DefaultSchedConfig(2, false), specs(2, spec)).Run(1e6)
	if res.BusyFraction <= 0 || res.BusyFraction > 1 {
		t.Fatalf("busy fraction = %v", res.BusyFraction)
	}
}

func TestSubsetSchedulingConfinesVMs(t *testing.T) {
	cfg := DefaultSchedConfig(4, false)
	cfg.SubsetSize = 4
	spec := TaskSpec{WorkMS: 500, BurstMeanMS: 10, BlockMeanMS: 3, SerialFrac: 0.3}
	s := NewCreditScheduler(cfg, specs(4, spec))
	// Track placements as they happen.
	res := s.Run(1e6)
	if res.MakespanMS >= 1e6 {
		t.Fatal("subset run did not finish")
	}
	// Verify final placement history via allowed(): every vCPU's lastCore
	// must be inside its subset.
	for _, v := range s.vcpus {
		if v.lastCore == -1 {
			continue
		}
		if !s.allowed(v, v.lastCore) {
			t.Fatalf("vCPU %v ended on core %d outside its subset", v.id, v.lastCore)
		}
	}
}

func TestSubsetRelocatesLessAcrossThanFull(t *testing.T) {
	spec := TaskSpec{WorkMS: 1000, BurstMeanMS: 10, BlockMeanMS: 3, SerialFrac: 0.3}
	full := NewCreditScheduler(DefaultSchedConfig(4, false), specs(4, spec)).Run(1e6)
	sub := DefaultSchedConfig(4, false)
	sub.SubsetSize = 4
	subRes := NewCreditScheduler(sub, specs(4, spec)).Run(1e6)
	// Subset scheduling still migrates (within the subset), and must not
	// collapse throughput relative to full migration.
	if subRes.MakespanMS > full.MakespanMS*1.6 {
		t.Fatalf("subset makespan %.0f vs full %.0f: too large a penalty",
			subRes.MakespanMS, full.MakespanMS)
	}
	if subRes.Relocations == 0 {
		t.Fatal("subset scheduling should still migrate within subsets")
	}
}
