// Package hv models the hypervisor: vCPU-to-core placement for the
// detailed memory-system simulator (including the paper's periodic
// vCPU-shuffle approximation of VM relocation, Section V.C), and a Xen
// credit-scheduler simulation used to reproduce the real-system scheduling
// experiments of Section III (Figure 3 and Table I).
package hv

import (
	"fmt"
	"sort"

	"vsnoop/internal/mem"
	"vsnoop/internal/sim"
)

// VCPU identifies one virtual CPU of a VM.
type VCPU struct {
	VM  mem.VMID
	Idx int
}

func (v VCPU) String() string { return fmt.Sprintf("vm%d.vcpu%d", v.VM, v.Idx) }

// NoVCPU is the sentinel for an idle core.
var NoVCPU = VCPU{VM: 0xFFFE, Idx: -1}

// Mapper tracks which vCPU occupies each physical core. The hypervisor
// updates it on every schedule/relocation decision; the virtual-snooping
// layer observes relocations to maintain vCPU map registers.
type Mapper struct {
	cores []VCPU
	where map[VCPU]int

	// OnRelocate fires when a vCPU changes physical core (from may be -1
	// at first placement).
	OnRelocate func(v VCPU, from, to int)

	// Relocations counts mapping changes (excluding first placements).
	Relocations uint64
}

// NewMapper creates a mapper for n physical cores, all idle.
func NewMapper(n int) *Mapper {
	m := &Mapper{cores: make([]VCPU, n), where: make(map[VCPU]int)}
	for i := range m.cores {
		m.cores[i] = NoVCPU
	}
	return m
}

// NumCores returns the number of physical cores.
func (m *Mapper) NumCores() int { return len(m.cores) }

// Place assigns v to core, displacing nothing (the core must be idle or
// running v already). It fires OnRelocate when v moves.
func (m *Mapper) Place(v VCPU, core int) {
	if cur := m.cores[core]; cur != NoVCPU && cur != v {
		panic(fmt.Sprintf("hv: core %d already runs %v", core, cur))
	}
	from, had := m.where[v]
	if had && from == core {
		return
	}
	if had {
		m.cores[from] = NoVCPU
		m.Relocations++
	} else {
		from = -1
	}
	m.cores[core] = v
	m.where[v] = core
	if m.OnRelocate != nil {
		m.OnRelocate(v, from, core)
	}
}

// Swap exchanges the vCPUs on two cores (the paper's relocation
// approximation: "two vCPUs from different VMs are randomly selected and
// their physical cores are exchanged").
func (m *Mapper) Swap(coreA, coreB int) {
	if coreA == coreB {
		return
	}
	a, b := m.cores[coreA], m.cores[coreB]
	m.cores[coreA], m.cores[coreB] = b, a
	if a != NoVCPU {
		m.where[a] = coreB
		m.Relocations++
		if m.OnRelocate != nil {
			m.OnRelocate(a, coreA, coreB)
		}
	}
	if b != NoVCPU {
		m.where[b] = coreA
		m.Relocations++
		if m.OnRelocate != nil {
			m.OnRelocate(b, coreB, coreA)
		}
	}
}

// CoreOf returns the physical core running v, or -1.
func (m *Mapper) CoreOf(v VCPU) int {
	if c, ok := m.where[v]; ok {
		return c
	}
	return -1
}

// On returns the vCPU running on a core (NoVCPU when idle).
func (m *Mapper) On(core int) VCPU { return m.cores[core] }

// VMOn returns the VM whose vCPU occupies core, or ok=false when idle.
func (m *Mapper) VMOn(core int) (mem.VMID, bool) {
	v := m.cores[core]
	if v == NoVCPU {
		return 0, false
	}
	return v.VM, true
}

// RunningCores returns the sorted cores currently running vCPUs of vm.
func (m *Mapper) RunningCores(vm mem.VMID) []int {
	var out []int
	for c, v := range m.cores {
		if v != NoVCPU && v.VM == vm {
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}

// Shuffler periodically relocates vCPUs by swapping two cores that run
// vCPUs of *different* VMs, mirroring the paper's conservative
// methodology ("we simulate migrations only across VMs").
type Shuffler struct {
	Eng    *sim.Engine
	Map    *Mapper
	Period sim.Cycle
	Rng    *sim.Rand

	stopped bool
	Swaps   uint64
}

// Start arms the periodic shuffle; Period 0 disables it.
func (s *Shuffler) Start() {
	if s.Period == 0 {
		return
	}
	if s.Rng == nil {
		s.Rng = sim.NewRandTagged(0x5457, "shuffler")
	}
	s.Eng.Schedule(s.Period, s.tick)
}

// Stop halts future shuffles.
func (s *Shuffler) Stop() { s.stopped = true }

func (s *Shuffler) tick() {
	if s.stopped {
		return
	}
	s.shuffleOnce()
	s.Eng.Schedule(s.Period, s.tick)
}

// shuffleOnce picks two cores hosting vCPUs of different VMs and swaps
// them; it gives up quietly if no such pair exists.
func (s *Shuffler) shuffleOnce() {
	n := s.Map.NumCores()
	for try := 0; try < 16; try++ {
		a := s.Rng.Intn(n)
		b := s.Rng.Intn(n)
		va, vb := s.Map.On(a), s.Map.On(b)
		if va == NoVCPU || vb == NoVCPU || va.VM == vb.VM {
			continue
		}
		s.Map.Swap(a, b)
		s.Swaps++
		return
	}
}
