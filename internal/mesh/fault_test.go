package mesh

import (
	"testing"

	"vsnoop/internal/sim"
)

func TestFaultHookDrop(t *testing.T) {
	eng, net, ids := build(t, false)
	net.FaultHook = func(src, dst NodeID, bytes int, payload interface{}) FaultOutcome {
		return FaultOutcome{Drop: true}
	}
	delivered := 0
	net.SetHandler(ids[5], func(interface{}) { delivered++ })
	net.Send(ids[0], ids[5], 8, "x")
	eng.Run()
	if delivered != 0 {
		t.Fatalf("dropped message delivered %d times", delivered)
	}
}

func TestFaultHookDuplicate(t *testing.T) {
	eng, net, ids := build(t, false)
	net.FaultHook = func(src, dst NodeID, bytes int, payload interface{}) FaultOutcome {
		return FaultOutcome{Duplicate: true}
	}
	delivered := 0
	net.SetHandler(ids[5], func(interface{}) { delivered++ })
	net.Send(ids[0], ids[5], 8, "x")
	eng.Run()
	if delivered != 2 {
		t.Fatalf("duplicated message delivered %d times, want 2", delivered)
	}
}

func TestFaultHookRedirect(t *testing.T) {
	eng, net, ids := build(t, false)
	net.FaultHook = func(src, dst NodeID, bytes int, payload interface{}) FaultOutcome {
		return FaultOutcome{Redirected: true, RedirectTo: ids[9]}
	}
	atDst, atRedirect := 0, 0
	net.SetHandler(ids[5], func(interface{}) { atDst++ })
	net.SetHandler(ids[9], func(interface{}) { atRedirect++ })
	net.Send(ids[0], ids[5], 8, "x")
	eng.Run()
	if atDst != 0 || atRedirect != 1 {
		t.Fatalf("redirect delivered dst=%d redirect=%d, want 0/1", atDst, atRedirect)
	}
}

func TestFaultHookDelay(t *testing.T) {
	// Identical sends with and without an injected delay: the delayed one
	// arrives exactly Delay cycles later.
	arrivals := make(map[string]sim.Cycle)
	for _, tc := range []struct {
		name  string
		delay sim.Cycle
	}{{"clean", 0}, {"delayed", 70}} {
		eng, net, ids := build(t, false)
		delay := tc.delay
		net.FaultHook = func(src, dst NodeID, bytes int, payload interface{}) FaultOutcome {
			return FaultOutcome{Delay: delay}
		}
		name := tc.name
		net.SetHandler(ids[5], func(interface{}) { arrivals[name] = eng.Now() })
		net.Send(ids[0], ids[5], 8, "x")
		eng.Run()
	}
	if arrivals["delayed"] != arrivals["clean"]+70 {
		t.Fatalf("delayed arrival %d, clean %d: want +70 exactly",
			arrivals["delayed"], arrivals["clean"])
	}
}

func TestFaultHookNilOutcomeIsTransparent(t *testing.T) {
	// A hook returning the zero outcome must not perturb delivery timing.
	var cleanAt, hookedAt sim.Cycle
	{
		eng, net, ids := build(t, false)
		net.SetHandler(ids[7], func(interface{}) { cleanAt = eng.Now() })
		net.Send(ids[2], ids[7], 72, "x")
		eng.Run()
	}
	{
		eng, net, ids := build(t, false)
		net.FaultHook = func(NodeID, NodeID, int, interface{}) FaultOutcome { return FaultOutcome{} }
		net.SetHandler(ids[7], func(interface{}) { hookedAt = eng.Now() })
		net.Send(ids[2], ids[7], 72, "x")
		eng.Run()
	}
	if cleanAt != hookedAt {
		t.Fatalf("zero-outcome hook changed arrival: %d vs %d", hookedAt, cleanAt)
	}
}

func TestDegradeLinksSlowsTraversal(t *testing.T) {
	// Degrading every link multiplies serialization on each hop, so a
	// multi-hop message must arrive strictly later than on a healthy mesh.
	// Degradation models slow link serialization, so it only shows on the
	// contention-aware path.
	var healthyAt, degradedAt sim.Cycle
	{
		eng, net, ids := build(t, true)
		net.SetHandler(ids[15], func(interface{}) { healthyAt = eng.Now() })
		net.Send(ids[0], ids[15], 72, "x")
		eng.Run()
	}
	{
		eng, net, ids := build(t, true)
		n := net.DegradeLinks(1000, 8, sim.NewRand(1))
		if n == 0 {
			t.Fatal("no links degraded")
		}
		net.SetHandler(ids[15], func(interface{}) { degradedAt = eng.Now() })
		net.Send(ids[0], ids[15], 72, "x")
		eng.Run()
	}
	if degradedAt <= healthyAt {
		t.Fatalf("degraded mesh not slower: %d vs healthy %d", degradedAt, healthyAt)
	}
}

func TestDegradeLinksDeterministic(t *testing.T) {
	_, netA, _ := build(t, true)
	_, netB, _ := build(t, true)
	nA := netA.DegradeLinks(5, 4, sim.NewRand(42))
	nB := netB.DegradeLinks(5, 4, sim.NewRand(42))
	if nA != nB || nA != 5 {
		t.Fatalf("degraded counts differ: %d vs %d (want 5)", nA, nB)
	}
	// Same seed must pick the same links: identical sends see identical
	// latencies on both networks.
	for src := NodeID(0); src < 16; src++ {
		for dst := NodeID(0); dst < 16; dst++ {
			la := measure(t, netA, src, dst)
			lb := measure(t, netB, src, dst)
			if la != lb {
				t.Fatalf("latency %d->%d differs under same seed: %d vs %d", src, dst, la, lb)
			}
		}
	}
}

// measure returns the delivery cycle of one message on an otherwise idle
// network, relative to the network's engine clock at call time.
func measure(t *testing.T, net *Network, src, dst NodeID) sim.Cycle {
	t.Helper()
	var at sim.Cycle
	done := false
	net.SetHandler(dst, func(interface{}) { at = net.eng.Now(); done = true })
	start := net.eng.Now()
	net.Send(src, dst, 8, "x")
	net.eng.Run()
	net.SetHandler(dst, nil)
	if !done {
		t.Fatalf("message %d->%d never delivered", src, dst)
	}
	return at - start
}
