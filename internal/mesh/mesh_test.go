package mesh

import (
	"testing"
	"testing/quick"

	"vsnoop/internal/sim"
)

func build(t *testing.T, contention bool) (*sim.Engine, *Network, []NodeID) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Contention = contention
	net := New(eng, cfg)
	ids := make([]NodeID, 16)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			ids[y*4+x] = net.Attach(x, y, nil)
		}
	}
	return eng, net, ids
}

// routeDirs mirrors the inline XY walk in transmit, returning the direction
// taken at each hop, so the routing-shape properties stay testable now that
// no route slice is materialized on the send path.
func routeDirs(net *Network, src, dst NodeID) []int {
	bx, by := net.Coords(dst)
	x, y := net.Coords(src)
	var dirs []int
	for x != bx || y != by {
		var dir int
		switch {
		case bx > x:
			dir = dirEast
		case bx < x:
			dir = dirWest
		case by > y:
			dir = dirSouth
		default:
			dir = dirNorth
		}
		dirs = append(dirs, dir)
		switch dir {
		case dirEast:
			x++
		case dirWest:
			x--
		case dirSouth:
			y++
		default:
			y--
		}
	}
	return dirs
}

func TestHopsIsManhattan(t *testing.T) {
	_, net, ids := build(t, false)
	if got := net.Hops(ids[0], ids[15]); got != 6 {
		t.Fatalf("corner-to-corner hops = %d, want 6", got)
	}
	if got := net.Hops(ids[0], ids[0]); got != 0 {
		t.Fatalf("self hops = %d", got)
	}
	if got := net.Hops(ids[1], ids[2]); got != 1 {
		t.Fatalf("neighbor hops = %d", got)
	}
}

func TestHopsManhattanProperty(t *testing.T) {
	_, net, ids := build(t, false)
	err := quick.Check(func(a, b uint8) bool {
		s := ids[int(a)%16]
		d := ids[int(b)%16]
		sx, sy := net.Coords(s)
		dx, dy := net.Coords(d)
		want := abs(sx-dx) + abs(sy-dy)
		return net.Hops(s, d) == want && len(routeDirs(net, s, d)) == want
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestZeroLoadLatency(t *testing.T) {
	_, net, ids := build(t, false)
	// 1 hop, 8-byte control: 1*(4+1) + ceil(8/16)=1 -> 6 cycles.
	if got := net.Latency(ids[0], ids[1], 8); got != 6 {
		t.Fatalf("1-hop 8B latency = %d, want 6", got)
	}
	// 6 hops, 72-byte data: 6*5 + ceil(72/16)=5 -> 35.
	if got := net.Latency(ids[0], ids[15], 72); got != 35 {
		t.Fatalf("6-hop 72B latency = %d, want 35", got)
	}
	// Local delivery: router + serialization.
	if got := net.Latency(ids[0], ids[0], 8); got != 5 {
		t.Fatalf("local latency = %d, want 5", got)
	}
}

func TestDeliveryAndPayload(t *testing.T) {
	eng, net, ids := build(t, false)
	var got interface{}
	var at sim.Cycle
	net.SetHandler(ids[5], func(p interface{}) { got = p; at = eng.Now() })
	net.Send(ids[0], ids[5], 8, "hello")
	eng.Run()
	if got != "hello" {
		t.Fatalf("payload = %v", got)
	}
	want := net.Latency(ids[0], ids[5], 8)
	if at != want {
		t.Fatalf("delivered at %d, want %d", at, want)
	}
}

func TestContentionSerializes(t *testing.T) {
	eng, net, ids := build(t, true)
	var times []sim.Cycle
	net.SetHandler(ids[1], func(interface{}) { times = append(times, eng.Now()) })
	// Two 64-byte messages on the same link at once: the second must wait
	// for the first's 4-cycle serialization on the shared link.
	net.Send(ids[0], ids[1], 64, nil)
	net.Send(ids[0], ids[1], 64, nil)
	eng.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d messages", len(times))
	}
	if times[1] <= times[0] {
		t.Fatalf("no serialization: %v", times)
	}
	gap := times[1] - times[0]
	if gap != 4 { // ceil(64/16)
		t.Fatalf("serialization gap = %d, want 4", gap)
	}
}

func TestContentionOnlyOnSharedLinks(t *testing.T) {
	eng, net, ids := build(t, true)
	var t01, t23 sim.Cycle
	net.SetHandler(ids[1], func(interface{}) { t01 = eng.Now() })
	net.SetHandler(ids[3], func(interface{}) { t23 = eng.Now() })
	net.Send(ids[0], ids[1], 64, nil) // link (0,0)->E
	net.Send(ids[2], ids[3], 64, nil) // link (2,0)->E, disjoint
	eng.Run()
	if t01 != t23 {
		t.Fatalf("disjoint paths interfered: %d vs %d", t01, t23)
	}
}

func TestTrafficAccounting(t *testing.T) {
	_, net, ids := build(t, false)
	net.Send(ids[0], ids[15], 72, nil) // 6 hops, 5 flits = 80 bytes
	net.Send(ids[0], ids[1], 8, nil)   // 1 hop, 1 flit = 16 bytes
	if net.Bytes != 96 {
		t.Fatalf("bytes = %d, want 96 (flit-quantized)", net.Bytes)
	}
	if net.ByteHops != 80*6+16*1 {
		t.Fatalf("byte-hops = %d, want %d", net.ByteHops, 80*6+16)
	}
	if net.Messages != 2 {
		t.Fatalf("messages = %d", net.Messages)
	}
}

func TestMulticastChargesPerDestination(t *testing.T) {
	eng, net, ids := build(t, false)
	delivered := 0
	for _, id := range []NodeID{ids[1], ids[2], ids[3]} {
		net.SetHandler(id, func(interface{}) { delivered++ })
	}
	net.Multicast(ids[0], []NodeID{ids[1], ids[2], ids[3]}, 8, nil)
	eng.Run()
	if delivered != 3 {
		t.Fatalf("delivered = %d", delivered)
	}
	if net.Messages != 3 {
		t.Fatalf("messages = %d", net.Messages)
	}
	if net.ByteHops != 16*(1+2+3) {
		t.Fatalf("byte-hops = %d, want %d (one flit per hop)", net.ByteHops, 16*6)
	}
}

func TestXYRouteNeverBacktracks(t *testing.T) {
	_, net, ids := build(t, false)
	err := quick.Check(func(a, b uint8) bool {
		s, d := ids[int(a)%16], ids[int(b)%16]
		r := routeDirs(net, s, d)
		// XY: all X-direction links first, then all Y-direction links.
		seenY := false
		for _, dir := range r {
			isY := dir == dirNorth || dir == dirSouth
			if seenY && !isY {
				return false
			}
			if isY {
				seenY = true
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSharedRouterEndpoints(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, DefaultConfig())
	core := net.Attach(0, 0, nil)
	mc := net.Attach(0, 0, nil) // memory controller on the same router
	if net.Hops(core, mc) != 0 {
		t.Fatal("co-located endpoints should be 0 hops apart")
	}
	got := false
	net.SetHandler(mc, func(interface{}) { got = true })
	net.Send(core, mc, 8, nil)
	eng.Run()
	if !got {
		t.Fatal("local message not delivered")
	}
}

func TestDeterministicDelivery(t *testing.T) {
	run := func() (sim.Cycle, uint64) {
		eng, net, ids := build(t, true)
		var last sim.Cycle
		for i := range ids {
			net.SetHandler(ids[i], func(interface{}) { last = eng.Now() })
		}
		r := sim.NewRand(99)
		for i := 0; i < 200; i++ {
			net.Send(ids[r.Intn(16)], ids[r.Intn(16)], 8+r.Intn(64), nil)
		}
		eng.Run()
		return last, net.ByteHops
	}
	l1, b1 := run()
	l2, b2 := run()
	if l1 != l2 || b1 != b2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", l1, b1, l2, b2)
	}
}
