package mesh

import (
	"testing"

	"vsnoop/internal/sim"
)

func benchNet(contention bool) (*sim.Engine, *Network, []NodeID) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Contention = contention
	net := New(eng, cfg)
	ids := make([]NodeID, 16)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			ids[y*4+x] = net.Attach(x, y, func(interface{}) {})
		}
	}
	return eng, net, ids
}

func BenchmarkSendNoContention(b *testing.B) {
	eng, net, ids := benchNet(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Send(ids[i&15], ids[(i+7)&15], 8, nil)
		if eng.Pending() > 4096 {
			eng.Run()
		}
	}
	eng.Run()
}

func BenchmarkSendContention(b *testing.B) {
	eng, net, ids := benchNet(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Send(ids[i&15], ids[(i+7)&15], 72, nil)
		if eng.Pending() > 4096 {
			eng.Run()
		}
	}
	eng.Run()
}

// TestSendZeroAllocSteadyState gates the send path's allocation behaviour:
// with the dense link tables and the prebound delivery handler, routing a
// contended message end to end (XY walk, link reservation, delivery event)
// must not allocate once the event heap has reached steady state.
func TestSendZeroAllocSteadyState(t *testing.T) {
	eng, net, ids := benchNet(true)
	for i := 0; i < 1024; i++ {
		net.Send(ids[i&15], ids[(i+7)&15], 72, nil)
	}
	eng.Run()
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			net.Send(ids[i&15], ids[(i+7)&15], 72, nil)
		}
		eng.Run()
	})
	if avg != 0 {
		t.Fatalf("steady-state Send allocates %.2f per 64-message batch, want 0", avg)
	}
}

// TestPartitionedSendZeroAllocSteadyState gates the partitioned-mode send
// path: the per-domain traffic-slot accounting and the cross-domain
// zero-load delivery (ScheduleFnAtDom) must allocate nothing at steady
// state, same as the serial path TestSendZeroAllocSteadyState covers.
func TestPartitionedSendZeroAllocSteadyState(t *testing.T) {
	eng, net, ids := benchNet(true)
	nodeDom := make([]int32, len(ids))
	for i, id := range ids {
		if x, _ := net.Coords(id); x >= 2 {
			nodeDom[i] = 1
		}
	}
	net.Partition(nodeDom, []*sim.Engine{eng, eng})
	for i := 0; i < 1024; i++ {
		net.Send(ids[i&15], ids[(i+7)&15], 72, nil)
	}
	eng.Run()
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			// (i+7)&15 crosses the column-2 domain boundary for half the
			// pairs, so both the intra-domain contention walk and the
			// cross-domain fast path are exercised.
			net.Send(ids[i&15], ids[(i+7)&15], 72, nil)
		}
		eng.Run()
	})
	if avg != 0 {
		t.Fatalf("steady-state partitioned Send allocates %.2f per 64-message batch, want 0", avg)
	}
}

func BenchmarkBroadcast(b *testing.B) {
	eng, net, ids := benchNet(true)
	dests := ids[1:]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Multicast(ids[0], dests, 8, nil)
		if eng.Pending() > 4096 {
			eng.Run()
		}
	}
	eng.Run()
}
