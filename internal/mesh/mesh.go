// Package mesh models the on-chip interconnect of the simulated system: a
// 2D mesh (4x4 in the paper's Table II) with dimension-ordered XY routing,
// 16-byte links, a 4-cycle router pipeline, and per-link serialization so
// that snoop-request broadcasts create real contention. The network
// accounts traffic in byte-hops (bytes transferred x links traversed),
// which is the quantity Table IV reports ("the total amount of data
// transferred through the network").
//
// Multicasts are modeled as one unicast per destination, matching the
// broadcast behaviour of the TokenB baseline; virtual snooping's savings
// come from shrinking the destination set.
package mesh

import (
	"fmt"

	"vsnoop/internal/sim"
)

// NodeID identifies a network endpoint (core caches and memory
// controllers alike).
type NodeID int

// Config describes the mesh.
type Config struct {
	Width, Height     int
	LinkBytesPerCycle int       // link width (bytes accepted per cycle)
	RouterDelay       sim.Cycle // per-hop router pipeline depth
	LinkDelay         sim.Cycle // per-hop wire delay
	Contention        bool      // serialize messages on links
}

// DefaultConfig matches Table II: 4x4 2D mesh, 16 B links, 4-cycle router
// pipeline.
func DefaultConfig() Config {
	return Config{Width: 4, Height: 4, LinkBytesPerCycle: 16, RouterDelay: 4, LinkDelay: 1, Contention: true}
}

// Handler consumes a delivered payload at a node.
type Handler func(payload interface{})

type node struct {
	x, y    int
	handler Handler
}

// Directed link directions. A link is identified by its source router
// coordinates and direction, flattened to a dense id by linkID so the
// per-link tables are plain arrays instead of maps.
const (
	dirEast  = 0
	dirWest  = 1
	dirNorth = 2
	dirSouth = 3
)

// FaultOutcome tells the network what the fault layer decided for one
// injected message. The zero value means "deliver normally".
type FaultOutcome struct {
	// Drop discards the message at injection (no traffic is charged; the
	// fault layer accounts it). Only messages whose loss the protocol
	// tolerates may be dropped — see internal/fault for the classification.
	Drop bool
	// Duplicate injects a second, independently routed copy.
	Duplicate bool
	// Delay adds extra cycles to the arrival time (late delivery).
	Delay sim.Cycle
	// Redirected reroutes the message to RedirectTo instead of its
	// destination (misdelivery; internal/fault uses it to bounce
	// token-carrying messages to the home memory controller so tokens are
	// never destroyed).
	Redirected bool
	RedirectTo NodeID
}

// FaultHook inspects every injected message and decides its fate. It must be
// deterministic given the injection sequence (all randomness from seeded
// sim.Rand streams) so faulted runs stay reproducible.
type FaultHook func(src, dst NodeID, bytes int, payload interface{}) FaultOutcome

// Network is the mesh interconnect. Create with New, attach endpoints,
// then Send. All delivery happens through the shared sim.Engine.
type Network struct {
	cfg   Config
	eng   *sim.Engine
	nodes []node

	// nextFree[linkID] is the cycle at which a directed link next accepts a
	// flit — a dense array indexed by linkID, sized 4 links per router.
	nextFree []sim.Cycle

	// deliver is the prebound delivery handler shared by every in-flight
	// message (payload rides in the event's arg, the destination in u), so
	// scheduling a delivery allocates nothing.
	deliver sim.HandlerFn

	// FaultHook, if set, is consulted on every Send (fault injection).
	FaultHook FaultHook

	// degraded[linkID] is a serialization multiplier > 1 when the link is
	// degraded (link-width fault: fewer bytes accepted per cycle), 0
	// otherwise.
	degraded []int32

	// Traffic statistics, flit-quantized: a message occupies whole flits
	// of LinkBytesPerCycle bytes on every link it crosses (an 8-byte
	// control message on a 16-byte link still costs one full flit), which
	// matches how Garnet-style NoC models account traffic. In partitioned
	// mode (Partition) these stay zero and traffic is charged to the
	// sending domain's slot instead; read through TrafficTotals.
	ByteHops uint64 // flit-quantized bytes x links traversed
	Bytes    uint64 // flit-quantized bytes injected
	Messages uint64

	// Domain partition (nil outside sharded runs): nodeDom maps endpoints
	// to snoop domains, engs holds the engine executing each domain, and
	// traf is the per-domain traffic accounting (padded to a cache line so
	// concurrent senders do not share one).
	nodeDom  []int32
	engs     []*sim.Engine
	traf     []trafficSlot
	crossHor []sim.Cycle // per-domain minimum cross-domain latency

	// domLinks[d] lists the directed-link ids owned by domain d: the four
	// links of every router hosting one of d's endpoints. Only intra-domain
	// routes reserve links (see transmit), and an intra-domain XY route
	// never leaves the domain's router region, so each nextFree entry is
	// written by exactly one shard — which also makes the per-domain link
	// state checkpointable (SaveDomain/RestoreDomain).
	//vsnoop:owned
	domLinks [][]int32
}

// trafficSlot is one domain's traffic counters, padded to a cache line.
type trafficSlot struct {
	byteHops, bytes, messages uint64
	crossMsgs                 uint64 // messages leaving the domain
	_                         [4]uint64
}

// New creates a mesh network driven by eng.
func New(eng *sim.Engine, cfg Config) *Network {
	if cfg.Width <= 0 || cfg.Height <= 0 || cfg.LinkBytesPerCycle <= 0 {
		panic("mesh: invalid config")
	}
	nLinks := cfg.Width * cfg.Height * 4
	n := &Network{
		cfg: cfg, eng: eng,
		nextFree: make([]sim.Cycle, nLinks),
		degraded: make([]int32, nLinks),
	}
	n.deliver = func(payload interface{}, dst uint64) {
		if h := n.nodes[dst].handler; h != nil {
			h(payload)
		}
	}
	return n
}

// linkID flattens a directed link (source router x,y plus direction) to a
// dense table index.
//vsnoop:hotpath
func (n *Network) linkID(x, y, dir int) int {
	return (y*n.cfg.Width+x)<<2 | dir
}

// Partition switches the network to domain-partitioned mode: endpoint i
// belongs to snoop domain nodeDom[i], and domain d's events execute on
// engs[d] (several domains may share one engine). Intra-domain messages
// keep the full link-contention model — XY routes between endpoints of an
// axis-aligned domain never leave it, so each domain's links are touched by
// exactly one shard. Cross-domain messages are delivered at zero-load
// latency (no link reservations, which would race across shards); since a
// cross-domain route has at least one hop, that latency is at least
// RouterDelay+LinkDelay+1 — the lookahead the sharded engine relies on.
// Call after Attach-ing every endpoint and before any Send.
func (n *Network) Partition(nodeDom []int32, engs []*sim.Engine) {
	if len(nodeDom) != len(n.nodes) {
		panic(fmt.Sprintf("mesh: partition of %d nodes, have %d", len(nodeDom), len(n.nodes)))
	}
	n.nodeDom = nodeDom
	n.engs = engs
	n.traf = make([]trafficSlot, len(engs))
	// Precompute each domain's cross-domain horizon: the minimum zero-load
	// latency of any message it can send to another domain (one-flit
	// serialization is the floor — serialization() never returns less than
	// one cycle, and fault delays only add). The sharded engine uses these
	// as per-shard output lookaheads in adaptive mode.
	n.crossHor = make([]sim.Cycle, len(engs))
	for src := range n.nodes {
		sd := nodeDom[src]
		for dst := range n.nodes {
			if nodeDom[dst] == sd {
				continue
			}
			l := n.Latency(NodeID(src), NodeID(dst), 1)
			if h := n.crossHor[sd]; h == 0 || l < h {
				n.crossHor[sd] = l
			}
		}
	}
	// Assign each router's four directed links to the domain of its first
	// endpoint (cores attach one per router, so every populated router has
	// an owner; endpoint-less routers are never reserved by intra-domain
	// routes of a disjoint region and default to domain 0).
	routerDom := make([]int32, n.cfg.Width*n.cfg.Height)
	for i := range routerDom {
		routerDom[i] = -1
	}
	for i := len(n.nodes) - 1; i >= 0; i-- {
		nd := n.nodes[i]
		routerDom[nd.y*n.cfg.Width+nd.x] = nodeDom[i]
	}
	n.domLinks = make([][]int32, len(engs))
	for r, d := range routerDom {
		if d < 0 {
			d = 0
		}
		for dir := 0; dir < 4; dir++ {
			n.domLinks[d] = append(n.domLinks[d], int32(r<<2|dir))
		}
	}
}

// DomainSnap is one domain's network checkpoint (optimistic shard engine):
// the reservation horizon of every link the domain owns plus its traffic
// slot. Cross-domain messages never reserve links, so a domain's snapshot
// is complete with respect to everything its shard can mutate.
type DomainSnap struct {
	nextFree []sim.Cycle
	traf     trafficSlot
}

// SaveDomain copies domain d's mutable network state into s.
func (n *Network) SaveDomain(d int, s *DomainSnap) {
	links := n.domLinks[d]
	s.nextFree = s.nextFree[:0]
	for _, l := range links {
		s.nextFree = append(s.nextFree, n.nextFree[l])
	}
	s.traf = n.traf[d]
}

// RestoreDomain rewinds domain d's network state to the checkpoint.
func (n *Network) RestoreDomain(d int, s *DomainSnap) {
	links := n.domLinks[d]
	for i, l := range links {
		n.nextFree[l] = s.nextFree[i]
	}
	n.traf[d] = s.traf
}

// CrossHorizons returns, per domain, the minimum zero-load latency of any
// cross-domain message the domain can originate — a lower bound on the
// arrival distance of every cross-shard deposit (partitioned mode; nil
// otherwise). A zero entry means the domain has no cross-domain
// destination.
func (n *Network) CrossHorizons() []sim.Cycle { return n.crossHor }

// DomainCrossSends returns the number of messages domain d sent to other
// domains (partitioned mode).
func (n *Network) DomainCrossSends(d int) uint64 { return n.traf[d].crossMsgs }

// MinCrossLatency returns the minimum latency of any cross-domain message
// (one hop, one flit) — the conservative lookahead for sharded execution.
func (n *Network) MinCrossLatency() sim.Cycle {
	return n.cfg.RouterDelay + n.cfg.LinkDelay + 1
}

// TrafficTotals returns the whole-machine traffic counters, summing the
// per-domain slots in partitioned mode.
func (n *Network) TrafficTotals() (byteHops, bytes, messages uint64) {
	byteHops, bytes, messages = n.ByteHops, n.Bytes, n.Messages
	for i := range n.traf {
		t := &n.traf[i]
		byteHops += t.byteHops
		bytes += t.bytes
		messages += t.messages
	}
	return
}

// DomainTraffic returns domain d's traffic counters (partitioned mode).
func (n *Network) DomainTraffic(d int) (byteHops, bytes, messages uint64) {
	t := &n.traf[d]
	return t.byteHops, t.bytes, t.messages
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Attach registers an endpoint at router (x, y) and returns its NodeID.
// Multiple endpoints may share a router (e.g. a corner core and a memory
// controller).
func (n *Network) Attach(x, y int, h Handler) NodeID {
	if x < 0 || x >= n.cfg.Width || y < 0 || y >= n.cfg.Height {
		panic(fmt.Sprintf("mesh: attach at (%d,%d) outside %dx%d", x, y, n.cfg.Width, n.cfg.Height))
	}
	n.nodes = append(n.nodes, node{x: x, y: y, handler: h})
	return NodeID(len(n.nodes) - 1)
}

// SetHandler replaces the delivery handler of an endpoint (useful when the
// endpoint object is constructed after the network).
func (n *Network) SetHandler(id NodeID, h Handler) { n.nodes[id].handler = h }

// Coords returns the router coordinates of an endpoint.
func (n *Network) Coords(id NodeID) (x, y int) {
	nd := n.nodes[id]
	return nd.x, nd.y
}

// Hops returns the XY-routing hop count between two endpoints (the
// Manhattan distance between their routers).
//vsnoop:hotpath
func (n *Network) Hops(src, dst NodeID) int {
	a, b := n.nodes[src], n.nodes[dst]
	return abs(a.x-b.x) + abs(a.y-b.y)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// serialization returns the cycles needed to push bytes through one link.
//vsnoop:hotpath
func (n *Network) serialization(bytes int) sim.Cycle {
	s := sim.Cycle((bytes + n.cfg.LinkBytesPerCycle - 1) / n.cfg.LinkBytesPerCycle)
	if s == 0 {
		s = 1
	}
	return s
}

// Latency returns the zero-load latency of a message (no contention):
// router pipeline + wire delay per hop, plus one serialization term
// (wormhole switching: the body streams behind the header).
//vsnoop:hotpath
func (n *Network) Latency(src, dst NodeID, bytes int) sim.Cycle {
	hops := n.Hops(src, dst)
	if hops == 0 {
		// Local delivery still crosses the router once.
		return n.cfg.RouterDelay + n.serialization(bytes)
	}
	return sim.Cycle(hops)*(n.cfg.RouterDelay+n.cfg.LinkDelay) + n.serialization(bytes)
}

// Send injects a message; the destination handler runs when the tail
// arrives. Traffic statistics are charged immediately. When a FaultHook is
// installed it may drop, duplicate, delay, or redirect the message; the
// hook runs once per Send (a duplicated copy is not re-faulted).
//vsnoop:hotpath
func (n *Network) Send(src, dst NodeID, bytes int, payload interface{}) {
	if n.FaultHook != nil {
		out := n.FaultHook(src, dst, bytes, payload)
		if out.Drop {
			return
		}
		if out.Redirected {
			dst = out.RedirectTo
		}
		if out.Duplicate {
			n.transmit(src, dst, bytes, payload, out.Delay)
		}
		n.transmit(src, dst, bytes, payload, out.Delay)
		return
	}
	n.transmit(src, dst, bytes, payload, 0)
}

// transmit performs the actual routing, accounting, and delivery.
//vsnoop:hotpath
func (n *Network) transmit(src, dst NodeID, bytes int, payload interface{}, extra sim.Cycle) {
	hops := n.Hops(src, dst)
	flitBytes := uint64(n.serialization(bytes)) * uint64(n.cfg.LinkBytesPerCycle)
	eng := n.eng
	crossDom := false
	var dd int32
	if n.nodeDom != nil {
		sd := n.nodeDom[src]
		dd = n.nodeDom[dst]
		t := &n.traf[sd]
		t.messages++
		t.bytes += flitBytes
		t.byteHops += flitBytes * uint64(maxInt(hops, 1))
		eng = n.engs[sd]
		crossDom = sd != dd
		if crossDom {
			t.crossMsgs++
		}
	} else {
		n.Messages++
		n.Bytes += flitBytes
		n.ByteHops += flitBytes * uint64(maxInt(hops, 1))
	}

	var arrive sim.Cycle
	if crossDom || !n.cfg.Contention || hops == 0 {
		arrive = eng.Now() + n.Latency(src, dst, bytes)
	} else {
		// Walk the XY route inline (X moves first, then Y), reserving each
		// directed link in the dense nextFree table — no per-message route
		// slice is materialized.
		ser := n.serialization(bytes)
		lastSer := ser
		t := eng.Now() + n.cfg.RouterDelay // source injection pipeline
		a, b := n.nodes[src], n.nodes[dst]
		x, y := a.x, a.y
		for x != b.x || y != b.y {
			var dir int
			switch {
			case b.x > x:
				dir = dirEast
			case b.x < x:
				dir = dirWest
			case b.y > y:
				dir = dirSouth
			default:
				dir = dirNorth
			}
			l := n.linkID(x, y, dir)
			serL := ser
			if f := n.degraded[l]; f > 1 {
				serL = ser * sim.Cycle(f)
			}
			start := t
			if nf := n.nextFree[l]; nf > start {
				start = nf
			}
			n.nextFree[l] = start + serL
			t = start + n.cfg.LinkDelay + n.cfg.RouterDelay
			lastSer = serL
			switch dir {
			case dirEast:
				x++
			case dirWest:
				x--
			case dirSouth:
				y++
			default:
				y--
			}
		}
		arrive = t + lastSer - 1
	}
	arrive += extra
	if n.nodeDom != nil {
		eng.ScheduleFnAtDom(arrive, dd, n.deliver, payload, uint64(dst))
	} else {
		eng.ScheduleFnAt(arrive, n.deliver, payload, uint64(dst))
	}
}

// DegradeLinks marks count randomly chosen directed links as degraded: their
// serialization cost is multiplied by factor (a link-width fault). Links are
// enumerated in a fixed deterministic order and chosen via rng, so identical
// seeds degrade identical links. It returns the number of links degraded.
// Degradation applies to the contention model only (Config.Contention).
func (n *Network) DegradeLinks(count, factor int, rng *sim.Rand) int {
	if count <= 0 || factor <= 1 {
		return 0
	}
	var all []int
	for y := 0; y < n.cfg.Height; y++ {
		for x := 0; x < n.cfg.Width; x++ {
			if x+1 < n.cfg.Width {
				all = append(all, n.linkID(x, y, dirEast))
			}
			if x > 0 {
				all = append(all, n.linkID(x, y, dirWest))
			}
			if y > 0 {
				all = append(all, n.linkID(x, y, dirNorth))
			}
			if y+1 < n.cfg.Height {
				all = append(all, n.linkID(x, y, dirSouth))
			}
		}
	}
	if count > len(all) {
		count = len(all)
	}
	for _, i := range rng.Perm(len(all))[:count] {
		n.degraded[all[i]] = int32(factor)
	}
	return count
}

// Multicast sends the same payload to every destination (one unicast per
// destination, as a broadcast tree is not modeled — this matches charging
// the baseline TokenB its full broadcast cost too).
//vsnoop:hotpath
func (n *Network) Multicast(src NodeID, dsts []NodeID, bytes int, payload interface{}) {
	for _, d := range dsts {
		n.Send(src, d, bytes, payload)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
