// Package stats provides the measurement primitives shared by all
// simulators in this repository: named counters, fixed-bin histograms,
// empirical CDFs, and normalization helpers used to produce the paper's
// "normalized to baseline TokenB" series.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Counters is a set of named uint64 counters. The zero value is ready to
// use after a call to New, or construct with make via NewCounters.
type Counters struct {
	m     map[string]uint64
	order []string
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]uint64)}
}

// Add increments counter name by delta, creating it at first use.
func (c *Counters) Add(name string, delta uint64) {
	if _, ok := c.m[name]; !ok {
		c.order = append(c.order, name)
	}
	c.m[name] += delta
}

// Inc increments counter name by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the current value of counter name (0 if never touched).
func (c *Counters) Get(name string) uint64 { return c.m[name] }

// Names returns counter names in first-use order.
func (c *Counters) Names() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// Merge adds every counter from other into c.
func (c *Counters) Merge(other *Counters) {
	for _, n := range other.order {
		c.Add(n, other.m[n])
	}
}

// String renders the counters, one per line, in first-use order.
func (c *Counters) String() string {
	var b strings.Builder
	for _, n := range c.order {
		fmt.Fprintf(&b, "%-32s %d\n", n, c.m[n])
	}
	return b.String()
}

// Sample accumulates scalar observations and reports summary statistics.
type Sample struct {
	n          uint64
	sum, sumSq float64
	min, max   float64
}

// Observe records one value.
func (s *Sample) Observe(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
}

// N returns the number of observations.
func (s *Sample) N() uint64 { return s.n }

// Mean returns the arithmetic mean (0 with no observations).
func (s *Sample) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Var returns the population variance.
func (s *Sample) Var() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.n) - m*m
	if v < 0 { // numerical noise
		v = 0
	}
	return v
}

// Min and Max return the extremes (0 with no observations).
func (s *Sample) Min() float64 { return s.min }
func (s *Sample) Max() float64 { return s.max }

// Sum returns the running total.
func (s *Sample) Sum() float64 { return s.sum }

// Merge folds other's observations into s. Summary statistics after a merge
// equal those of a single Sample fed both observation streams.
func (s *Sample) Merge(other *Sample) {
	if other.n == 0 {
		return
	}
	if s.n == 0 || other.min < s.min {
		s.min = other.min
	}
	if s.n == 0 || other.max > s.max {
		s.max = other.max
	}
	s.n += other.n
	s.sum += other.sum
	s.sumSq += other.sumSq
}

// CDF collects observations and reports the empirical cumulative
// distribution, used for Figure 9 (core-removal periods).
type CDF struct {
	vals   []float64
	sorted bool
}

// Observe records one value.
func (c *CDF) Observe(v float64) {
	c.vals = append(c.vals, v)
	c.sorted = false
}

// N returns the number of observations.
func (c *CDF) N() int { return len(c.vals) }

// Merge folds other's observations into c. The empirical distribution after
// a merge is order-independent (queries sort), so merging per-shard CDFs in
// shard order yields the same curve for any shard count.
func (c *CDF) Merge(other *CDF) {
	if len(other.vals) == 0 {
		return
	}
	c.vals = append(c.vals, other.vals...)
	c.sorted = false
}

// Mark returns a checkpoint of the observation count, for speculative
// execution engines that may need to discard observations made past a
// checkpoint. Valid to pair with Truncate only while the CDF is still in
// insertion order (no query has sorted it) — which holds during a
// simulation run, where queries happen only at finalization.
func (c *CDF) Mark() int { return len(c.vals) }

// Truncate discards every observation recorded after the given Mark. It
// panics if a query sorted the values in between: sorted order no longer
// corresponds to insertion order, so truncation would drop the wrong
// observations.
func (c *CDF) Truncate(mark int) {
	if c.sorted && mark != len(c.vals) {
		panic("stats: CDF.Truncate after a query sorted the observations")
	}
	c.vals = c.vals[:mark]
}

func (c *CDF) ensureSorted() {
	if !c.sorted {
		sort.Float64s(c.vals)
		c.sorted = true
	}
}

// At returns the fraction of observations <= x.
func (c *CDF) At(x float64) float64 {
	if len(c.vals) == 0 {
		return 0
	}
	c.ensureSorted()
	i := sort.SearchFloat64s(c.vals, x)
	// Include all entries equal to x.
	for i < len(c.vals) && c.vals[i] <= x {
		i++
	}
	return float64(i) / float64(len(c.vals))
}

// Quantile returns the q-th quantile (0 <= q <= 1) by nearest rank.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.vals) == 0 {
		return 0
	}
	c.ensureSorted()
	if q <= 0 {
		return c.vals[0]
	}
	if q >= 1 {
		return c.vals[len(c.vals)-1]
	}
	i := int(q * float64(len(c.vals)))
	if i >= len(c.vals) {
		i = len(c.vals) - 1
	}
	return c.vals[i]
}

// Series samples the CDF at n evenly spaced points spanning [0, max] and
// returns (xs, ys) suitable for plotting a cumulative-distribution curve.
func (c *CDF) Series(n int) (xs, ys []float64) {
	if len(c.vals) == 0 || n <= 0 {
		return nil, nil
	}
	c.ensureSorted()
	max := c.vals[len(c.vals)-1]
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := 0; i < n; i++ {
		x := max * float64(i+1) / float64(n)
		xs[i] = x
		ys[i] = c.At(x)
	}
	return xs, ys
}

// Histogram is a fixed-width-bin histogram over [0, binWidth*len(bins)),
// with an overflow bin for larger values.
type Histogram struct {
	binWidth float64
	bins     []uint64
	overflow uint64
	total    uint64
}

// NewHistogram creates a histogram with nBins bins of width binWidth.
func NewHistogram(binWidth float64, nBins int) *Histogram {
	if binWidth <= 0 || nBins <= 0 {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{binWidth: binWidth, bins: make([]uint64, nBins)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.total++
	if v < 0 {
		v = 0
	}
	i := int(v / h.binWidth)
	if i >= len(h.bins) {
		h.overflow++
		return
	}
	h.bins[i]++
}

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) uint64 { return h.bins[i] }

// Overflow returns the count of observations beyond the last bin.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Normalize returns 100*value/base, the paper's "normalized (%)"
// convention; it returns 0 when base is 0.
func Normalize(value, base float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * value / base
}

// Reduction returns the percentage reduction of value versus base
// (100*(1-value/base)); 0 when base is 0.
func Reduction(value, base float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (1 - value/base)
}
