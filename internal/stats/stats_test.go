package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCountersBasics(t *testing.T) {
	c := NewCounters()
	c.Inc("a")
	c.Add("b", 5)
	c.Inc("a")
	if c.Get("a") != 2 || c.Get("b") != 5 || c.Get("missing") != 0 {
		t.Fatalf("counter values wrong: a=%d b=%d", c.Get("a"), c.Get("b"))
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names order wrong: %v", names)
	}
}

func TestCountersMerge(t *testing.T) {
	a := NewCounters()
	a.Add("x", 3)
	b := NewCounters()
	b.Add("x", 4)
	b.Add("y", 1)
	a.Merge(b)
	if a.Get("x") != 7 || a.Get("y") != 1 {
		t.Fatalf("merge wrong: x=%d y=%d", a.Get("x"), a.Get("y"))
	}
}

func TestSampleSummary(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	if math.Abs(s.Var()-4) > 1e-9 {
		t.Fatalf("Var = %v, want 4", s.Var())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Var() != 0 || s.N() != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestCDF(t *testing.T) {
	var c CDF
	for _, v := range []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		c.Observe(v)
	}
	if got := c.At(5); got != 0.5 {
		t.Fatalf("At(5) = %v, want 0.5", got)
	}
	if got := c.At(0.5); got != 0 {
		t.Fatalf("At(0.5) = %v, want 0", got)
	}
	if got := c.At(10); got != 1 {
		t.Fatalf("At(10) = %v, want 1", got)
	}
	if got := c.Quantile(0.5); got != 6 {
		t.Fatalf("Quantile(0.5) = %v, want 6 (nearest rank)", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Fatalf("Quantile(0) = %v", got)
	}
	if got := c.Quantile(1); got != 10 {
		t.Fatalf("Quantile(1) = %v", got)
	}
}

func TestCDFMonotone(t *testing.T) {
	var c CDF
	err := quick.Check(func(raw []uint16) bool {
		c = CDF{}
		for _, v := range raw {
			c.Observe(float64(v))
		}
		if len(raw) == 0 {
			return c.At(1) == 0
		}
		prev := -1.0
		for x := 0.0; x < 70000; x += 7001 {
			y := c.At(x)
			if y < prev || y < 0 || y > 1 {
				return false
			}
			prev = y
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCDFSeries(t *testing.T) {
	var c CDF
	for i := 1; i <= 100; i++ {
		c.Observe(float64(i))
	}
	xs, ys := c.Series(10)
	if len(xs) != 10 || len(ys) != 10 {
		t.Fatalf("series lengths %d %d", len(xs), len(ys))
	}
	if ys[9] != 1 {
		t.Fatalf("series must end at 1, got %v", ys[9])
	}
	for i := 1; i < 10; i++ {
		if ys[i] < ys[i-1] {
			t.Fatalf("series not monotone at %d: %v", i, ys)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 5)
	for _, v := range []float64{0, 5, 9.99, 10, 49, 50, 1000} {
		h.Observe(v)
	}
	if h.Bin(0) != 3 {
		t.Fatalf("bin0 = %d, want 3", h.Bin(0))
	}
	if h.Bin(1) != 1 {
		t.Fatalf("bin1 = %d, want 1", h.Bin(1))
	}
	if h.Bin(4) != 1 {
		t.Fatalf("bin4 = %d, want 1", h.Bin(4))
	}
	if h.Overflow() != 2 {
		t.Fatalf("overflow = %d, want 2", h.Overflow())
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d, want 7", h.Total())
	}
}

func TestNormalizeReduction(t *testing.T) {
	if Normalize(50, 200) != 25 {
		t.Fatal("Normalize wrong")
	}
	if Reduction(50, 200) != 75 {
		t.Fatal("Reduction wrong")
	}
	if Normalize(1, 0) != 0 || Reduction(1, 0) != 0 {
		t.Fatal("zero base must yield 0")
	}
}
