// Package prof wires pprof profile capture into the command-line drivers:
// each command registers -cpuprofile/-memprofile flags and brackets its run
// with Start/Stop, so a slow sweep can be diagnosed with `go tool pprof`
// without modifying the simulator.
package prof

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strconv"
)

// Flags holds the profile destinations registered by AddFlags.
type Flags struct {
	CPUProfile string
	MemProfile string
	Trace      string

	cpuFile   *os.File
	traceFile *os.File
}

// AddFlags registers -cpuprofile, -memprofile and -trace on fs (the
// default flag.CommandLine when fs is nil).
func (f *Flags) AddFlags(fs *flag.FlagSet) {
	if fs == nil {
		fs = flag.CommandLine
	}
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to `file`")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write an allocation profile to `file` at exit")
	fs.StringVar(&f.Trace, "trace", "", "write a Go runtime execution trace to `file` (inspect with go tool trace; shard barrier stalls show up per goroutine)")
}

// Do runs fn with pprof labels (shard, phase) attached, so per-shard time
// separates cleanly in CPU profiles and execution traces of the parallel
// engine. It is called once per shard goroutine, not per event.
func Do(shard int, phase string, fn func()) {
	pprof.Do(context.Background(), pprof.Labels(
		"shard", strconv.Itoa(shard), "phase", phase,
	), func(context.Context) { fn() })
}

// Start begins CPU profiling when -cpuprofile was given. Call Stop (usually
// via defer) before the process exits; note defers do not run across
// os.Exit, so commands that exit non-zero must call Stop explicitly first.
func (f *Flags) Start() error {
	if f.CPUProfile != "" {
		file, err := os.Create(f.CPUProfile)
		if err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(file); err != nil {
			file.Close()
			return fmt.Errorf("prof: start cpu profile: %w", err)
		}
		f.cpuFile = file
	}
	if f.Trace != "" {
		file, err := os.Create(f.Trace)
		if err != nil {
			f.Stop()
			return fmt.Errorf("prof: %w", err)
		}
		if err := trace.Start(file); err != nil {
			file.Close()
			f.Stop()
			return fmt.Errorf("prof: start execution trace: %w", err)
		}
		f.traceFile = file
	}
	return nil
}

// Stop finalizes both profiles: it flushes the CPU profile (if one is
// running) and writes the allocation profile when -memprofile was given.
// It is safe to call more than once.
func (f *Flags) Stop() {
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		f.cpuFile.Close()
		f.cpuFile = nil
	}
	if f.traceFile != nil {
		trace.Stop()
		f.traceFile.Close()
		f.traceFile = nil
	}
	if f.MemProfile != "" {
		file, err := os.Create(f.MemProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "prof:", err)
			return
		}
		defer file.Close()
		runtime.GC() // materialize the final live heap
		if err := pprof.Lookup("allocs").WriteTo(file, 0); err != nil {
			fmt.Fprintln(os.Stderr, "prof:", err)
		}
		f.MemProfile = ""
	}
}
