// Package memctrl implements the memory-side Token Coherence controller:
// the token home for every block, the DRAM timing model, the persistent-
// request arbitration table, and the read-only-sharing response rule
// (memory supplies clean data for content-shared pages, or just a token
// when a designated cache provider will supply the data).
package memctrl

import (
	"fmt"
	"sort"

	"vsnoop/internal/mem"
	"vsnoop/internal/mesh"
	"vsnoop/internal/sim"
	"vsnoop/internal/token"
)

// line is the controller's per-block token account. Absent entries mean
// "memory holds all tokens including the owner token" (the reset state).
type line struct {
	tokens int
	owner  bool
}

// persistentEntry tracks the active persistent requester and the queue of
// waiters for one block.
type persistentEntry struct {
	active  mesh.NodeID
	hasAct  bool
	waiters []token.Msg
}

// Stats are the per-controller counters.
type Stats struct {
	DRAMReads   uint64
	DRAMWrites  uint64
	TokenSends  uint64
	Activations uint64
}

// Ctrl is one memory controller endpoint. Blocks are assigned to
// controllers by address interleaving (done by the cache controllers).
type Ctrl struct {
	Eng  *sim.Engine
	Net  *mesh.Network
	Node mesh.NodeID
	P    token.Params

	// AllCaches lists every cache controller endpoint, for persistent
	// activation broadcasts.
	AllCaches []mesh.NodeID

	// Oracle answers whether a designated RO provider exists among the
	// snooped cores (see token.Oracle); nil disables the optimization and
	// memory always sends data for RO-shared reads.
	Oracle token.Oracle

	Stats Stats

	// Obs, if set, watches token custody changes (invariant checking).
	Obs token.Observer

	lines      map[mem.BlockAddr]*line
	persistent map[mem.BlockAddr]*persistentEntry

	// jn is the armed checkpoint journal (nil outside a speculative epoch);
	// jnStore holds the allocation between epochs. See snapshot.go.
	jn      *mjournal
	jnStore *mjournal

	// sendFn is the prebound event handler for delayed response sends
	// (arg = boxed Msg, u = destination << 32 | bytes): zero-alloc arming.
	sendFn sim.HandlerFn
}

// Init prepares internal state; call once after fields are set.
func (m *Ctrl) Init() {
	m.lines = make(map[mem.BlockAddr]*line)
	m.persistent = make(map[mem.BlockAddr]*persistentEntry)
	m.sendFn = func(arg interface{}, u uint64) {
		m.Net.Send(m.Node, mesh.NodeID(u>>32), int(uint32(u)), arg)
	}
}

func (m *Ctrl) line(a mem.BlockAddr) *line {
	if m.jn != nil {
		// Every caller may mutate the returned line, so journal its
		// pre-image (or its absence) first.
		m.jLine(a)
	}
	l, ok := m.lines[a]
	if !ok {
		l = &line{tokens: m.P.TotalTokens, owner: true}
		m.lines[a] = l
	}
	return l
}

// Tokens returns memory's current token count and owner flag for a block
// (for tests and invariant checks).
func (m *Ctrl) Tokens(a mem.BlockAddr) (int, bool) {
	l := m.line(a)
	return l.tokens, l.owner
}

// Peek returns the token account for a block without allocating a line:
// present is false when the block has never left the reset state ("memory
// holds all tokens"). Invariant checkers must use Peek, not Tokens, so that
// checking never perturbs controller state.
func (m *Ctrl) Peek(a mem.BlockAddr) (tokens int, owner, present bool) {
	l, ok := m.lines[a]
	if !ok {
		return 0, false, false
	}
	return l.tokens, l.owner, true
}

// ForEachLine calls fn for every materialized line in ascending block-addr
// order. It runs off the hot path (invariant checkers, end-of-run dumps), so
// the sort cost does not matter and callers get determinism for free.
func (m *Ctrl) ForEachLine(fn func(a mem.BlockAddr, tokens int, owner bool)) {
	addrs := make([]mem.BlockAddr, 0, len(m.lines))
	for a := range m.lines {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		l := m.lines[a]
		fn(a, l.tokens, l.owner)
	}
}

// depart/arrive notify the token-custody observer.
func (m *Ctrl) depart(addr mem.BlockAddr, tokens int, owner bool) {
	if m.Obs != nil && (tokens > 0 || owner) {
		m.Obs.Depart(addr, tokens, owner)
	}
}

func (m *Ctrl) arrive(addr mem.BlockAddr, tokens int, owner bool) {
	if m.Obs != nil && (tokens > 0 || owner) {
		m.Obs.Arrive(addr, tokens, owner)
	}
}

// Handle processes a delivered coherence message (mesh handler).
func (m *Ctrl) Handle(payload interface{}) {
	msg := payload.(token.Msg)
	switch msg.Kind {
	case token.MsgGetS:
		m.handleGetS(msg)
	case token.MsgGetX:
		m.handleGetX(msg)
	case token.MsgWBData, token.MsgWBTokens, token.MsgData, token.MsgTokens:
		m.absorb(msg)
	case token.MsgPersistentReq:
		m.handlePersistentReq(msg)
	case token.MsgPersistentRelease:
		m.handleRelease(msg)
	default:
		panic(fmt.Sprintf("memctrl: unexpected %v", msg.Kind))
	}
}

func (m *Ctrl) handleGetS(msg token.Msg) {
	if p, ok := m.persistent[msg.Addr]; ok && p.hasAct {
		return // tokens are pledged to the persistent requester
	}
	l := m.line(msg.Addr)
	if msg.Page == mem.PageROShared {
		// Content-shared pages are guaranteed clean in memory (the
		// hypervisor flushed them when marking them RO-shared), so memory
		// can always serve them. If a designated cache provider is among
		// the snooped cores, send only the token and let the cache supply
		// the data with a fast cache-to-cache transfer.
		if l.tokens == 0 {
			return // everything is cached; a holder will be snooped
		}
		providerNearby := m.Oracle != nil && m.Oracle.ROProviderAmong(msg.Addr, msg.Dests)
		tok, owner := m.takeOneToken(l)
		m.depart(msg.Addr, tok, owner)
		if providerNearby {
			m.Stats.TokenSends++
			m.send(msg.Src, token.Msg{Kind: token.MsgTokens, Addr: msg.Addr,
				Src: m.Node, Tokens: tok, Owner: owner}, m.P.MCLatency, false)
		} else {
			m.Stats.DRAMReads++
			m.send(msg.Src, token.Msg{Kind: token.MsgData, Addr: msg.Addr,
				Src: m.Node, Tokens: tok, Owner: owner, Data: true}, m.P.DRAMLatency, true)
		}
		return
	}
	// Ordinary TokenB: memory responds only while it holds the owner token
	// (otherwise a cache owner has the current data and responds).
	if !l.owner || l.tokens == 0 {
		return
	}
	tok, owner := m.takeOneToken(l)
	m.depart(msg.Addr, tok, owner)
	m.Stats.DRAMReads++
	m.send(msg.Src, token.Msg{Kind: token.MsgData, Addr: msg.Addr, Src: m.Node,
		Tokens: tok, Owner: owner, Data: true}, m.P.DRAMLatency, true)
}

// takeOneToken removes one token from the line, preferring to keep the
// owner token; ownership transfers only with the last token.
func (m *Ctrl) takeOneToken(l *line) (tokens int, owner bool) {
	if l.tokens >= 2 || !l.owner {
		l.tokens--
		return 1, false
	}
	// Last token and it is the owner token.
	l.tokens = 0
	l.owner = false
	return 1, true
}

func (m *Ctrl) handleGetX(msg token.Msg) {
	if p, ok := m.persistent[msg.Addr]; ok && p.hasAct {
		return
	}
	l := m.line(msg.Addr)
	if l.tokens == 0 && !l.owner {
		return
	}
	tok, owner := l.tokens, l.owner
	l.tokens, l.owner = 0, false
	m.depart(msg.Addr, tok, owner)
	if owner {
		m.Stats.DRAMReads++
		m.send(msg.Src, token.Msg{Kind: token.MsgData, Addr: msg.Addr, Src: m.Node,
			Tokens: tok, Owner: true, Data: true}, m.P.DRAMLatency, true)
	} else if tok > 0 {
		m.Stats.TokenSends++
		m.send(msg.Src, token.Msg{Kind: token.MsgTokens, Addr: msg.Addr, Src: m.Node,
			Tokens: tok}, m.P.MCLatency, false)
	}
}

// absorb folds returned tokens (writebacks or strays) back into the line,
// or forwards them when a persistent entry is active.
func (m *Ctrl) absorb(msg token.Msg) {
	if p, ok := m.persistent[msg.Addr]; ok && p.hasAct && p.active != msg.Src {
		// Relayed tokens stay in flight: no Arrive/Depart on the ledger.
		out := msg
		out.Src = m.Node
		bytes := m.P.CtrlBytes
		if out.Data {
			bytes = m.P.DataBytes
		}
		m.Net.Send(m.Node, p.active, bytes, out)
		return
	}
	m.arrive(msg.Addr, msg.Tokens, msg.Owner)
	l := m.line(msg.Addr)
	l.tokens += msg.Tokens
	l.owner = l.owner || msg.Owner
	if l.tokens > m.P.TotalTokens {
		panic(fmt.Sprintf("memctrl: token overflow at block %d (%d > %d)",
			msg.Addr, l.tokens, m.P.TotalTokens))
	}
	if msg.Dirty {
		m.Stats.DRAMWrites++
	}
}

func (m *Ctrl) handlePersistentReq(msg token.Msg) {
	if m.jn != nil {
		m.jPersist(msg.Addr)
	}
	p, ok := m.persistent[msg.Addr]
	if !ok {
		p = &persistentEntry{}
		m.persistent[msg.Addr] = p
	}
	if p.hasAct {
		if p.active == msg.Src {
			return // duplicate activation from a retry
		}
		p.waiters = append(p.waiters, msg)
		return
	}
	m.activate(p, msg)
}

func (m *Ctrl) activate(p *persistentEntry, msg token.Msg) {
	p.active = msg.Src
	p.hasAct = true
	m.Stats.Activations++
	var act interface{} = token.Msg{Kind: token.MsgPersistentActivate, Addr: msg.Addr, Src: msg.Src}
	for _, n := range m.AllCaches {
		m.Net.Send(m.Node, n, m.P.CtrlBytes, act)
	}
	// Memory forwards its own tokens too.
	l := m.line(msg.Addr)
	if l.tokens > 0 || l.owner {
		tok, owner := l.tokens, l.owner
		l.tokens, l.owner = 0, false
		m.depart(msg.Addr, tok, owner)
		if owner {
			m.Stats.DRAMReads++
			m.send(msg.Src, token.Msg{Kind: token.MsgData, Addr: msg.Addr, Src: m.Node,
				Tokens: tok, Owner: true, Data: true}, m.P.DRAMLatency, true)
		} else if tok > 0 {
			m.send(msg.Src, token.Msg{Kind: token.MsgTokens, Addr: msg.Addr, Src: m.Node,
				Tokens: tok}, m.P.MCLatency, false)
		}
	}
}

func (m *Ctrl) handleRelease(msg token.Msg) {
	if m.jn != nil {
		m.jPersist(msg.Addr)
	}
	p, ok := m.persistent[msg.Addr]
	if !ok || !p.hasAct || p.active != msg.Src {
		return // stale release
	}
	var deact interface{} = token.Msg{Kind: token.MsgPersistentDeactivate, Addr: msg.Addr, Src: m.Node}
	for _, n := range m.AllCaches {
		m.Net.Send(m.Node, n, m.P.CtrlBytes, deact)
	}
	p.hasAct = false
	if len(p.waiters) > 0 {
		next := p.waiters[0]
		p.waiters = p.waiters[1:]
		m.activate(p, next)
	} else {
		delete(m.persistent, msg.Addr)
	}
}

// send transmits a response after the given processing latency.
func (m *Ctrl) send(dst mesh.NodeID, msg token.Msg, latency sim.Cycle, data bool) {
	bytes := m.P.CtrlBytes
	if data {
		bytes = m.P.DataBytes
	}
	var payload interface{} = msg
	m.Eng.ScheduleFn(latency, m.sendFn, payload, uint64(dst)<<32|uint64(uint32(bytes)))
}
