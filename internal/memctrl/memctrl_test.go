package memctrl

import (
	"testing"

	"vsnoop/internal/mem"
	"vsnoop/internal/mesh"
	"vsnoop/internal/sim"
	"vsnoop/internal/token"
)

// rig wires one memory controller to a recording stub endpoint.
type rig struct {
	eng  *sim.Engine
	net  *mesh.Network
	mc   *Ctrl
	req  mesh.NodeID
	got  []token.Msg
	p    token.Params
	node mesh.NodeID
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine()
	net := mesh.New(eng, mesh.DefaultConfig())
	r := &rig{eng: eng, net: net, p: token.DefaultParams(4)}
	r.req = net.Attach(3, 3, func(p interface{}) { r.got = append(r.got, p.(token.Msg)) })
	r.node = net.Attach(0, 0, nil)
	r.mc = &Ctrl{Eng: eng, Net: net, Node: r.node, P: r.p, AllCaches: []mesh.NodeID{r.req}}
	r.mc.Init()
	net.SetHandler(r.node, r.mc.Handle)
	return r
}

func (r *rig) send(msg token.Msg) {
	msg.Src = r.req
	r.net.Send(r.req, r.node, r.p.CtrlBytes, msg)
	r.eng.Run()
}

func TestGetSFromCleanMemory(t *testing.T) {
	r := newRig(t)
	r.send(token.Msg{Kind: token.MsgGetS, Addr: 10})
	if len(r.got) != 1 {
		t.Fatalf("responses = %d", len(r.got))
	}
	resp := r.got[0]
	if !resp.Data || resp.Tokens != 1 || resp.Owner {
		t.Fatalf("resp = %+v, want data + 1 plain token", resp)
	}
	tok, own := r.mc.Tokens(10)
	if tok != r.p.TotalTokens-1 || !own {
		t.Fatalf("memory kept %d tokens own=%v", tok, own)
	}
	if r.mc.Stats.DRAMReads != 1 {
		t.Fatalf("DRAM reads = %d", r.mc.Stats.DRAMReads)
	}
}

func TestGetSTransfersOwnershipWithLastToken(t *testing.T) {
	r := newRig(t)
	// Drain to one token.
	for i := 0; i < r.p.TotalTokens-1; i++ {
		r.send(token.Msg{Kind: token.MsgGetS, Addr: 20})
	}
	r.got = nil
	r.send(token.Msg{Kind: token.MsgGetS, Addr: 20})
	if len(r.got) != 1 || !r.got[0].Owner {
		t.Fatalf("last-token response = %+v, want owner transfer", r.got)
	}
	tok, own := r.mc.Tokens(20)
	if tok != 0 || own {
		t.Fatal("memory kept state after giving away last token")
	}
	// Further GetS must be silent: memory is no longer owner.
	r.got = nil
	r.send(token.Msg{Kind: token.MsgGetS, Addr: 20})
	if len(r.got) != 0 {
		t.Fatalf("non-owner memory responded: %+v", r.got)
	}
}

func TestGetXTakesEverything(t *testing.T) {
	r := newRig(t)
	r.send(token.Msg{Kind: token.MsgGetX, Addr: 30, Write: true})
	if len(r.got) != 1 {
		t.Fatalf("responses = %d", len(r.got))
	}
	resp := r.got[0]
	if resp.Tokens != r.p.TotalTokens || !resp.Owner || !resp.Data {
		t.Fatalf("resp = %+v, want all tokens + owner + data", resp)
	}
	tok, own := r.mc.Tokens(30)
	if tok != 0 || own {
		t.Fatal("memory retained tokens after GetX")
	}
}

func TestWritebackRestoresTokens(t *testing.T) {
	r := newRig(t)
	r.send(token.Msg{Kind: token.MsgGetX, Addr: 40, Write: true})
	r.send(token.Msg{Kind: token.MsgWBData, Addr: 40,
		Tokens: r.p.TotalTokens, Owner: true, Dirty: true, Data: true})
	tok, own := r.mc.Tokens(40)
	if tok != r.p.TotalTokens || !own {
		t.Fatalf("after WB: tokens=%d owner=%v", tok, own)
	}
	if r.mc.Stats.DRAMWrites != 1 {
		t.Fatalf("DRAM writes = %d", r.mc.Stats.DRAMWrites)
	}
}

func TestTokenOverflowPanics(t *testing.T) {
	r := newRig(t)
	defer func() {
		if recover() == nil {
			t.Fatal("token overflow not detected")
		}
	}()
	// Inject more tokens than exist (a protocol bug the controller must
	// catch rather than silently corrupt).
	r.mc.Handle(token.Msg{Kind: token.MsgWBTokens, Addr: 50, Tokens: r.p.TotalTokens + 1})
}

func TestROSharedTokenOnlyWithProvider(t *testing.T) {
	r := newRig(t)
	r.mc.Oracle = oracleTrue{}
	r.send(token.Msg{Kind: token.MsgGetS, Addr: 60, Page: mem.PageROShared})
	if len(r.got) != 1 {
		t.Fatalf("responses = %d", len(r.got))
	}
	if r.got[0].Data {
		t.Fatal("memory sent data although a cache provider exists")
	}
	if r.got[0].Tokens != 1 {
		t.Fatalf("tokens = %d, want 1", r.got[0].Tokens)
	}
	if r.mc.Stats.DRAMReads != 0 {
		t.Fatal("token-only response should not read DRAM")
	}
}

func TestROSharedDataWithoutProvider(t *testing.T) {
	r := newRig(t)
	r.mc.Oracle = oracleFalse{}
	r.send(token.Msg{Kind: token.MsgGetS, Addr: 61, Page: mem.PageROShared})
	if len(r.got) != 1 || !r.got[0].Data {
		t.Fatalf("want data response, got %+v", r.got)
	}
}

type oracleTrue struct{}

func (oracleTrue) ROProviderAmong(mem.BlockAddr, []mesh.NodeID) bool { return true }

type oracleFalse struct{}

func (oracleFalse) ROProviderAmong(mem.BlockAddr, []mesh.NodeID) bool { return false }

func TestPersistentActivationAndQueueing(t *testing.T) {
	eng := sim.NewEngine()
	net := mesh.New(eng, mesh.DefaultConfig())
	p := token.DefaultParams(4)
	var gotA, gotB, acts []token.Msg
	a := net.Attach(1, 1, func(m interface{}) {
		msg := m.(token.Msg)
		if msg.Kind == token.MsgPersistentActivate || msg.Kind == token.MsgPersistentDeactivate {
			acts = append(acts, msg)
			return
		}
		gotA = append(gotA, msg)
	})
	b := net.Attach(2, 2, func(m interface{}) {
		msg := m.(token.Msg)
		if msg.Kind == token.MsgPersistentActivate || msg.Kind == token.MsgPersistentDeactivate {
			acts = append(acts, msg)
			return
		}
		gotB = append(gotB, msg)
	})
	node := net.Attach(0, 0, nil)
	mc := &Ctrl{Eng: eng, Net: net, Node: node, P: p, AllCaches: []mesh.NodeID{a, b}}
	mc.Init()
	net.SetHandler(node, mc.Handle)

	// A activates: memory forwards its tokens to A and broadcasts.
	net.Send(a, node, p.CtrlBytes, token.Msg{Kind: token.MsgPersistentReq, Addr: 70, Src: a})
	eng.Run()
	if mc.Stats.Activations != 1 {
		t.Fatalf("activations = %d", mc.Stats.Activations)
	}
	if len(gotA) != 1 || gotA[0].Tokens != p.TotalTokens {
		t.Fatalf("A received %+v, want all memory tokens", gotA)
	}
	// B requests while A active: queued, no second activation yet.
	net.Send(b, node, p.CtrlBytes, token.Msg{Kind: token.MsgPersistentReq, Addr: 70, Src: b})
	eng.Run()
	if mc.Stats.Activations != 1 {
		t.Fatal("second activation fired while first still active")
	}
	// Tokens arriving at memory while A is active are forwarded to A.
	gotA = nil
	net.Send(b, node, p.CtrlBytes, token.Msg{Kind: token.MsgWBTokens, Addr: 70, Tokens: 1, Src: b})
	eng.Run()
	if len(gotA) != 1 || gotA[0].Tokens != 1 {
		t.Fatalf("arriving token not forwarded to persistent requester: %+v", gotA)
	}
	// A releases: B activates next.
	net.Send(a, node, p.CtrlBytes, token.Msg{Kind: token.MsgPersistentRelease, Addr: 70, Src: a})
	eng.Run()
	if mc.Stats.Activations != 2 {
		t.Fatalf("activations = %d, want 2 after release", mc.Stats.Activations)
	}
}

func TestStaleReleaseIgnored(t *testing.T) {
	r := newRig(t)
	r.send(token.Msg{Kind: token.MsgPersistentRelease, Addr: 80})
	// No panic, no state: just ignored.
	if r.mc.Stats.Activations != 0 {
		t.Fatal("stale release changed state")
	}
}
