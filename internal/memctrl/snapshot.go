package memctrl

import (
	"vsnoop/internal/mem"
	"vsnoop/internal/mesh"
	"vsnoop/internal/token"
)

// Checkpointing for the optimistic (Time Warp) shard engine. Like the
// cache (see internal/cache/snapshot.go), two regimes share one Snap type:
// a flat flatten-the-maps copy, and a journaled copy-on-first-touch undo
// log armed by Save and truncated by CommitSnap, which prices a checkpoint
// at O(entries touched per epoch) instead of O(table size). The backward
// unwind to a slot's mark is exact for the same first-touch argument.

// lineSave / persistSave are flattened map entries: flat-regime snapshots
// hold one per table entry, journal entries one per first touch (had=false
// marks a key absent at checkpoint time, i.e. created speculatively).
type lineSave struct {
	addr mem.BlockAddr
	had  bool
	l    line
}

type persistSave struct {
	addr    mem.BlockAddr
	had     bool
	active  mesh.NodeID
	hasAct  bool
	waiters []token.Msg
}

// mjournal is the copy-on-first-touch undo log over the two tables.
type mjournal struct {
	gen     uint64
	lineGen map[mem.BlockAddr]uint64
	persGen map[mem.BlockAddr]uint64
	lines   []lineSave
	persist []persistSave
}

// Snap is one checkpoint of a memory controller: the token accounts, the
// persistent-request arbitration table, and the counters. Under the flat
// regime the slices hold full flattened tables; under the journaled regime
// they stay empty and the marks index the journal. The simulation never
// observes map iteration order at runtime (ForEachLine sorts, and it only
// runs at finalization), so a rebuild is indistinguishable from the
// original.
type Snap struct {
	lines    []lineSave
	persist  []persistSave
	lineMark int
	persMark int
	stats    Stats
}

// EnableJournal allocates the journal (disarmed) for a controller owned by
// an optimistic shard engine.
func (m *Ctrl) EnableJournal() {
	m.jnStore = &mjournal{
		gen:     1,
		lineGen: make(map[mem.BlockAddr]uint64),
		persGen: make(map[mem.BlockAddr]uint64),
	}
}

// jLine records addr's line pre-image once per generation. Guard with
// m.jn != nil.
func (m *Ctrl) jLine(a mem.BlockAddr) {
	j := m.jn
	if j.lineGen[a] == j.gen {
		return
	}
	j.lineGen[a] = j.gen
	e := lineSave{addr: a}
	if l, ok := m.lines[a]; ok {
		e.had = true
		e.l = *l
	}
	j.lines = append(j.lines, e)
}

// jPersist records addr's persistent-entry pre-image once per generation,
// including a deep copy of the waiter queue. Guard with m.jn != nil.
func (m *Ctrl) jPersist(a mem.BlockAddr) {
	j := m.jn
	if j.persGen[a] == j.gen {
		return
	}
	j.persGen[a] = j.gen
	e := persistSave{addr: a}
	if p, ok := m.persistent[a]; ok {
		e.had = true
		e.active, e.hasAct = p.active, p.hasAct
		e.waiters = append(e.waiters[:0], p.waiters...)
	}
	j.persist = append(j.persist, e)
}

// Save checkpoints the controller into s: journal marks when journaling is
// enabled (arming the mutation hooks), flattened tables otherwise.
func (m *Ctrl) Save(s *Snap) {
	if j := m.jnStore; j != nil {
		m.jn = j
		s.lineMark = len(j.lines)
		s.persMark = len(j.persist)
		s.lines = s.lines[:0]
		s.persist = s.persist[:0]
		j.gen++
		s.stats = m.Stats
		return
	}
	s.lines = s.lines[:0]
	for a, l := range m.lines { //lint:ordered flattened entries are rebuilt into a map on Restore; iteration order never reaches simulation state
		s.lines = append(s.lines, lineSave{addr: a, had: true, l: *l})
	}
	np := 0
	for a, p := range m.persistent { //lint:ordered flattened entries are rebuilt into a map on Restore; iteration order never reaches simulation state
		var ws []token.Msg
		if np < len(s.persist) {
			ws = s.persist[np].waiters[:0]
		}
		if np < cap(s.persist) {
			s.persist = s.persist[:np+1]
		} else {
			s.persist = append(s.persist, persistSave{})
		}
		s.persist[np] = persistSave{
			addr:    a,
			had:     true,
			active:  p.active,
			hasAct:  p.hasAct,
			waiters: append(ws, p.waiters...),
		}
		np++
	}
	s.persist = s.persist[:np]
	s.stats = m.Stats
}

// Restore rewinds the controller to the state captured by Save: a backward
// journal unwind down to the slot's marks when journaling is enabled (which
// also disarms the hooks — the post-rollback replay runs straight to the
// commit horizon), a full table rebuild otherwise.
func (m *Ctrl) Restore(s *Snap) {
	if j := m.jnStore; j != nil {
		for e := len(j.lines) - 1; e >= s.lineMark; e-- {
			u := &j.lines[e]
			if u.had {
				*m.lines[u.addr] = u.l
			} else {
				delete(m.lines, u.addr)
			}
		}
		j.lines = j.lines[:s.lineMark]
		for e := len(j.persist) - 1; e >= s.persMark; e-- {
			u := &j.persist[e]
			if !u.had {
				delete(m.persistent, u.addr)
				continue
			}
			p, ok := m.persistent[u.addr]
			if !ok {
				p = &persistentEntry{}
				m.persistent[u.addr] = p
			}
			p.active, p.hasAct = u.active, u.hasAct
			p.waiters = append(p.waiters[:0], u.waiters...)
		}
		j.persist = j.persist[:s.persMark]
		j.gen++
		m.jn = nil
		m.Stats = s.stats
		return
	}
	clear(m.lines)
	for _, ls := range s.lines {
		l := ls.l
		m.lines[ls.addr] = &l
	}
	clear(m.persistent)
	for _, ps := range s.persist {
		m.persistent[ps.addr] = &persistentEntry{
			active:  ps.active,
			hasAct:  ps.hasAct,
			waiters: append([]token.Msg(nil), ps.waiters...),
		}
	}
	m.Stats = s.stats
}

// CommitSnap finalizes the epoch: the journal truncates and disarms. Every
// Save mark taken this epoch is dead after this call.
func (m *Ctrl) CommitSnap() {
	if j := m.jnStore; j != nil {
		j.lines = j.lines[:0]
		j.persist = j.persist[:0]
		j.gen++
		m.jn = nil
	}
}
