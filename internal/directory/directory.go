// Package directory implements a blocking home-directory MESI protocol on
// the same machine substrate as the Token Coherence implementation. The
// paper positions virtual snooping against directory-based designs for
// virtualized multi-cores (Section VII: Marty and Hill's Virtual
// Hierarchies "is based on two-level directory-based protocols", while
// "virtual snooping uses a conventional snooping protocol"); this package
// makes that trade-off measurable: directories eliminate broadcast
// entirely but pay home-node indirection on every miss, while filtered
// snooping keeps 2-hop cache-to-cache transfers.
//
// The protocol is a textbook blocking directory: the home (co-located
// with the block's memory controller) serializes transactions per block
// with a busy bit and a wait queue, tracks sharers in a full-map vector,
// forwards requests to owners, and collects invalidation acknowledgements
// at the requester.
package directory

import (
	"fmt"

	"vsnoop/internal/cache"
	"vsnoop/internal/mem"
	"vsnoop/internal/mesh"
	"vsnoop/internal/sim"
)

// Kind enumerates directory protocol messages.
type Kind uint8

const (
	// MsgGetS / MsgGetX are requests to the home.
	MsgGetS Kind = iota
	MsgGetX
	// MsgFwdGetS / MsgFwdGetX forward a request to the current owner.
	MsgFwdGetS
	MsgFwdGetX
	// MsgInv invalidates a sharer; the sharer acks the requester.
	MsgInv
	// MsgData carries data (from home/memory or a forwarding owner).
	MsgData
	// MsgInvAck acknowledges an invalidation to the requester.
	MsgInvAck
	// MsgUnblock releases the home's busy bit once the requester is done.
	MsgUnblock
	// MsgWB writes a dirty owned block back to the home.
	MsgWB
	// MsgWBAck confirms a writeback (the home may have raced a forward).
	MsgWBAck
	// MsgSharingWB is the owner's clean copy sent home on a downgrade.
	MsgSharingWB
)

func (k Kind) String() string {
	return [...]string{"GetS", "GetX", "FwdGetS", "FwdGetX", "Inv", "Data",
		"InvAck", "Unblock", "WB", "WBAck", "SharingWB"}[k]
}

// Msg is one directory-protocol message.
type Msg struct {
	Kind      Kind
	Addr      mem.BlockAddr
	Src       mesh.NodeID
	Requester mesh.NodeID // final destination of forwarded data/acks
	AckCount  int         // invalidations the requester must collect
	Dirty     bool
	Data      bool
}

// Params carries the timing/size constants (shared with the token config
// where meaningful).
type Params struct {
	CtrlBytes   int
	DataBytes   int
	L2Latency   sim.Cycle
	FillLatency sim.Cycle
	DRAMLatency sim.Cycle
	DirLatency  sim.Cycle // directory lookup/update
}

// DefaultParams mirrors token.DefaultParams timing.
func DefaultParams() Params {
	return Params{
		CtrlBytes: 8, DataBytes: 72,
		L2Latency: 10, FillLatency: 2, DRAMLatency: 200, DirLatency: 6,
	}
}

// Stats counts protocol events at one controller.
type Stats struct {
	Transactions  uint64
	DirLookups    uint64 // home-directory accesses
	Forwards      uint64 // owner forwards
	Invalidations uint64
	Writebacks    uint64
}

// CacheCtrl is the cache side of the directory protocol. MESI state is
// encoded in the shared cache.Block fields exactly as the token protocol
// encodes it (S = one token, E/M = all tokens, dirty flag), so the cache
// model, residence counters, and stats pipeline are reused unchanged.
type CacheCtrl struct {
	Eng    *sim.Engine
	Net    *mesh.Network
	Node   mesh.NodeID
	Core   int
	L2     *cache.Cache
	P      Params
	Tokens int // "all tokens" value used to encode E/M

	// Homes maps a block to its home node (block-interleaved MCs).
	Homes []mesh.NodeID

	Stats Stats

	cur *txn
}

// Init prepares internal state; call once after fields are set.
func (c *CacheCtrl) Init() {}

type txn struct {
	addr     mem.BlockAddr
	vm       mem.VMID
	write    bool
	done     func()
	gotData  bool
	needAcks int
	gotAcks  int
	complete bool
}

// Busy reports whether a transaction is outstanding.
func (c *CacheCtrl) Busy() bool { return c.cur != nil }

func (c *CacheCtrl) home(a mem.BlockAddr) mesh.NodeID {
	return c.Homes[uint64(a)%uint64(len(c.Homes))]
}

// Start begins a miss/upgrade transaction.
func (c *CacheCtrl) Start(addr mem.BlockAddr, vm mem.VMID, write bool, done func()) {
	if c.cur != nil {
		panic(fmt.Sprintf("directory: core %d busy", c.Core))
	}
	t := &txn{addr: addr, vm: vm, write: write, done: done}
	c.cur = t
	c.Stats.Transactions++
	if b := c.L2.Lookup(addr); b != nil && b.Tokens >= 1 {
		if write {
			if b.Tokens == c.Tokens {
				c.finish(t, b) // silent E->M
				return
			}
			// Upgrade: the local S copy does NOT count as data. The write
			// completes only when the home's grant (MsgData with the ack
			// count) arrives — otherwise an early InvAck would finish the
			// write without permission, leaving the line S while the
			// directory believes we own it.
		} else {
			t.gotData = true
		}
	}
	kind := MsgGetS
	if write {
		kind = MsgGetX
	}
	c.Net.Send(c.Node, c.home(addr), c.P.CtrlBytes,
		Msg{Kind: kind, Addr: addr, Src: c.Node, Requester: c.Node})
}

// Handle is the mesh delivery handler.
func (c *CacheCtrl) Handle(payload interface{}) {
	msg := payload.(Msg)
	switch msg.Kind {
	case MsgData:
		c.handleData(msg)
	case MsgInvAck:
		c.handleInvAck(msg)
	case MsgFwdGetS:
		c.handleFwdGetS(msg)
	case MsgFwdGetX:
		c.handleFwdGetX(msg)
	case MsgInv:
		c.handleInv(msg)
	case MsgWBAck:
		// nothing further: the home absorbed the writeback
	default:
		panic(fmt.Sprintf("directory: cache ctrl got %v", msg.Kind))
	}
}

func (c *CacheCtrl) handleData(msg Msg) {
	t := c.cur
	if t == nil || t.addr != msg.Addr {
		return // stale (e.g. data raced a local eviction decision)
	}
	b := c.L2.Lookup(t.addr)
	if b == nil {
		nb, victim, evicted := c.L2.Insert(t.addr, t.vm)
		if evicted {
			c.writebackVictim(victim)
		}
		b = nb
	}
	t.gotData = true
	t.needAcks += msg.AckCount
	if t.write {
		b.Tokens = c.Tokens
		b.Owner = true
		b.Dirty = true
	} else {
		b.Tokens = 1
		b.Dirty = msg.Dirty
	}
	c.maybeFinish(t, b)
}

func (c *CacheCtrl) handleInvAck(msg Msg) {
	t := c.cur
	if t == nil || t.addr != msg.Addr {
		return
	}
	t.gotAcks++
	if b := c.L2.Lookup(t.addr); b != nil {
		c.maybeFinish(t, b)
	}
}

func (c *CacheCtrl) maybeFinish(t *txn, b *cache.Block) {
	if t.complete || !t.gotData || t.gotAcks < t.needAcks {
		return
	}
	c.finish(t, b)
}

func (c *CacheCtrl) finish(t *txn, b *cache.Block) {
	t.complete = true
	c.L2.Touch(b)
	c.Net.Send(c.Node, c.home(t.addr), c.P.CtrlBytes,
		Msg{Kind: MsgUnblock, Addr: t.addr, Src: c.Node})
	done := t.done
	c.cur = nil
	c.Eng.Schedule(c.P.FillLatency, done)
}

// handleFwdGetS: we own the block; send data to the requester, downgrade
// to shared, and send the home a clean copy.
func (c *CacheCtrl) handleFwdGetS(msg Msg) {
	c.Stats.Forwards++
	b := c.L2.Lookup(msg.Addr)
	if b == nil || b.Tokens == 0 {
		// Raced with our own eviction. The writeback (in flight or already
		// absorbed) makes the home's copy current, so responding here is
		// consistent — this is the writeback-buffer behaviour of blocking
		// directory protocols, with the buffer's lifetime made unbounded
		// because the simulator carries validity, not values.
		c.Eng.Schedule(c.P.L2Latency, func() {
			c.Net.Send(c.Node, msg.Requester, c.P.DataBytes,
				Msg{Kind: MsgData, Addr: msg.Addr, Src: c.Node, Data: true})
		})
		return
	}
	dirty := b.Dirty
	b.Tokens = 1 // downgrade to S
	b.Owner = false
	b.Dirty = false
	c.Eng.Schedule(c.P.L2Latency, func() {
		c.Net.Send(c.Node, msg.Requester, c.P.DataBytes,
			Msg{Kind: MsgData, Addr: msg.Addr, Src: c.Node, Data: true})
		c.Net.Send(c.Node, c.home(msg.Addr), c.P.DataBytes,
			Msg{Kind: MsgSharingWB, Addr: msg.Addr, Src: c.Node, Dirty: dirty, Data: true})
	})
}

// handleFwdGetX: we own the block; send data to the requester and
// invalidate our copy.
func (c *CacheCtrl) handleFwdGetX(msg Msg) {
	c.Stats.Forwards++
	b := c.L2.Lookup(msg.Addr)
	if b == nil || b.Tokens == 0 {
		// Raced with our own eviction: respond anyway (see handleFwdGetS).
		c.Eng.Schedule(c.P.L2Latency, func() {
			c.Net.Send(c.Node, msg.Requester, c.P.DataBytes,
				Msg{Kind: MsgData, Addr: msg.Addr, Src: c.Node, Data: true})
		})
		return
	}
	c.L2.Invalidate(b)
	c.Eng.Schedule(c.P.L2Latency, func() {
		c.Net.Send(c.Node, msg.Requester, c.P.DataBytes,
			Msg{Kind: MsgData, Addr: msg.Addr, Src: c.Node, Data: true})
	})
}

// handleInv: drop our shared copy and ack the requester.
func (c *CacheCtrl) handleInv(msg Msg) {
	c.Stats.Invalidations++
	if b := c.L2.Lookup(msg.Addr); b != nil && b.Tokens > 0 {
		c.L2.Invalidate(b)
	}
	c.Eng.Schedule(c.P.L2Latency, func() {
		c.Net.Send(c.Node, msg.Requester, c.P.CtrlBytes,
			Msg{Kind: MsgInvAck, Addr: msg.Addr, Src: c.Node})
	})
}

// writebackVictim returns an evicted block to its home. Shared copies are
// dropped silently (the directory tolerates stale sharers); owned copies
// write back.
func (c *CacheCtrl) writebackVictim(v cache.EvictInfo) {
	if v.Tokens < c.Tokens {
		return // silent S-eviction
	}
	c.Stats.Writebacks++
	bytes := c.P.CtrlBytes
	if v.Dirty {
		bytes = c.P.DataBytes
	}
	c.Net.Send(c.Node, c.home(v.Addr), bytes,
		Msg{Kind: MsgWB, Addr: v.Addr, Src: c.Node, Dirty: v.Dirty, Data: v.Dirty})
}
