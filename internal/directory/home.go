package directory

import (
	"fmt"
	"sort"

	"vsnoop/internal/mem"
	"vsnoop/internal/mesh"
	"vsnoop/internal/sim"
)

// dirState is the home's view of one block.
type dirState uint8

const (
	dirUncached dirState = iota
	dirShared
	dirExclusive
)

// dirEntry is one directory line: state, full-map sharer vector, and the
// blocking-protocol busy bit with its wait queue.
type dirEntry struct {
	state   dirState
	sharers map[mesh.NodeID]bool
	owner   mesh.NodeID
	busy    bool
	waiting []Msg
	// wbExpected marks a forward that raced the owner's eviction: the
	// home must satisfy the requester from the incoming writeback.
	pendingReq *Msg
}

// HomeStats counts events at one home controller.
type HomeStats struct {
	Lookups     uint64
	DRAMReads   uint64
	DRAMWrites  uint64
	Forwards    uint64
	Invalidates uint64
}

// Home is the directory controller co-located with a memory controller.
// In partitioned runs the planner assigns each home to the domain of its
// mesh corner; its line directory is that domain's private state.
//
//vsnoop:owned
type Home struct {
	Eng  *sim.Engine
	Net  *mesh.Network
	Node mesh.NodeID
	P    Params

	Stats HomeStats

	// TraceAddr, when nonzero, logs every event for that block via TraceFn
	// (debugging aid for protocol work).
	TraceAddr mem.BlockAddr
	TraceFn   func(format string, args ...interface{})

	lines map[mem.BlockAddr]*dirEntry
}

func (h *Home) trace(a mem.BlockAddr, format string, args ...interface{}) {
	if h.TraceFn != nil && a == h.TraceAddr {
		h.TraceFn(format, args...)
	}
}

// Init prepares internal state.
func (h *Home) Init() { h.lines = make(map[mem.BlockAddr]*dirEntry) }

func (h *Home) line(a mem.BlockAddr) *dirEntry {
	e, ok := h.lines[a]
	if !ok {
		e = &dirEntry{sharers: make(map[mesh.NodeID]bool)}
		h.lines[a] = e
	}
	return e
}

// Sharers returns the sharer count of a block (tests).
func (h *Home) Sharers(a mem.BlockAddr) int { return len(h.line(a).sharers) }

// State returns the directory state of a block (tests).
func (h *Home) State(a mem.BlockAddr) string {
	return [...]string{"U", "S", "E"}[h.line(a).state]
}

// Handle is the mesh delivery handler.
func (h *Home) Handle(payload interface{}) {
	msg := payload.(Msg)
	h.trace(msg.Addr, "home<- %v src=%d req=%d state=%s busy=%v owner=%d sharers=%d waiting=%d pending=%v",
		msg.Kind, msg.Src, msg.Requester, h.State(msg.Addr), h.line(msg.Addr).busy,
		h.line(msg.Addr).owner, len(h.line(msg.Addr).sharers), len(h.line(msg.Addr).waiting),
		h.line(msg.Addr).pendingReq != nil)
	switch msg.Kind {
	case MsgGetS, MsgGetX:
		h.handleRequest(msg)
	case MsgUnblock:
		h.handleUnblock(msg)
	case MsgWB:
		h.handleWB(msg)
	case MsgSharingWB:
		h.handleSharingWB(msg)
	default:
		panic(fmt.Sprintf("directory: home got %v", msg.Kind))
	}
}

func (h *Home) handleRequest(msg Msg) {
	e := h.line(msg.Addr)
	if e.busy {
		e.waiting = append(e.waiting, msg)
		return
	}
	e.busy = true
	h.Stats.Lookups++
	h.process(msg, e)
}

func (h *Home) process(msg Msg, e *dirEntry) {
	switch msg.Kind {
	case MsgGetS:
		h.processGetS(msg, e)
	case MsgGetX:
		h.processGetX(msg, e)
	}
}

func (h *Home) processGetS(msg Msg, e *dirEntry) {
	switch e.state {
	case dirUncached, dirShared:
		h.Stats.DRAMReads++
		e.state = dirShared
		e.sharers[msg.Requester] = true
		h.send(msg.Requester, Msg{Kind: MsgData, Addr: msg.Addr, Src: h.Node, Data: true},
			h.P.DRAMLatency, true)
	case dirExclusive:
		if e.owner == msg.Requester {
			// The owner re-requesting means its copy was evicted and the
			// writeback is in flight; stash the request.
			e.pendingReq = &msg
			return
		}
		h.Stats.Forwards++
		e.state = dirShared
		e.sharers[e.owner] = true
		e.sharers[msg.Requester] = true
		h.send(e.owner, Msg{Kind: MsgFwdGetS, Addr: msg.Addr, Src: h.Node,
			Requester: msg.Requester}, h.P.DirLatency, false)
	}
}

func (h *Home) processGetX(msg Msg, e *dirEntry) {
	switch e.state {
	case dirUncached:
		h.Stats.DRAMReads++
		e.state = dirExclusive
		e.owner = msg.Requester
		h.send(msg.Requester, Msg{Kind: MsgData, Addr: msg.Addr, Src: h.Node, Data: true},
			h.P.DRAMLatency, true)
	case dirShared:
		// Invalidate every sharer except the requester; data comes from
		// memory with the ack count piggybacked. Sharers are walked in
		// sorted order so runs stay deterministic.
		sharers := make([]mesh.NodeID, 0, len(e.sharers))
		for s := range e.sharers {
			sharers = append(sharers, s)
		}
		sort.Slice(sharers, func(i, j int) bool { return sharers[i] < sharers[j] })
		acks := 0
		for _, s := range sharers {
			if s == msg.Requester {
				continue
			}
			acks++
			h.Stats.Invalidates++
			h.send(s, Msg{Kind: MsgInv, Addr: msg.Addr, Src: h.Node,
				Requester: msg.Requester}, h.P.DirLatency, false)
		}
		h.Stats.DRAMReads++
		e.state = dirExclusive
		e.owner = msg.Requester
		e.sharers = make(map[mesh.NodeID]bool)
		h.send(msg.Requester, Msg{Kind: MsgData, Addr: msg.Addr, Src: h.Node,
			AckCount: acks, Data: true}, h.P.DRAMLatency, true)
	case dirExclusive:
		if e.owner == msg.Requester {
			e.pendingReq = &msg
			return
		}
		h.Stats.Forwards++
		old := e.owner
		e.owner = msg.Requester
		h.send(old, Msg{Kind: MsgFwdGetX, Addr: msg.Addr, Src: h.Node,
			Requester: msg.Requester}, h.P.DirLatency, false)
	}
}

func (h *Home) handleUnblock(msg Msg) {
	e := h.line(msg.Addr)
	if !e.busy {
		return // stale (e.g. unblock after a WB already cleared it)
	}
	e.busy = false
	if len(e.waiting) > 0 {
		next := e.waiting[0]
		e.waiting = e.waiting[1:]
		e.busy = true
		h.Stats.Lookups++
		h.process(next, e)
	}
}

// handleWB absorbs an owner's eviction writeback.
func (h *Home) handleWB(msg Msg) {
	e := h.line(msg.Addr)
	if msg.Dirty {
		h.Stats.DRAMWrites++
	}
	if e.state == dirExclusive && e.owner == msg.Src {
		e.state = dirUncached
		e.owner = 0
	}
	h.send(msg.Src, Msg{Kind: MsgWBAck, Addr: msg.Addr, Src: h.Node}, h.P.DirLatency, false)
	// A forward raced this eviction, or the old owner itself re-requested:
	// satisfy the stashed request from (now clean) memory.
	if e.pendingReq != nil {
		req := *e.pendingReq
		e.pendingReq = nil
		h.process(req, e)
	}
}

// handleSharingWB records the clean copy an owner pushed home when it
// downgraded on a forwarded GetS.
func (h *Home) handleSharingWB(msg Msg) {
	if msg.Dirty {
		h.Stats.DRAMWrites++
	}
}

func (h *Home) send(dst mesh.NodeID, msg Msg, latency sim.Cycle, data bool) {
	bytes := h.P.CtrlBytes
	if data {
		bytes = h.P.DataBytes
	}
	h.Eng.Schedule(latency, func() {
		h.Net.Send(h.Node, dst, bytes, msg)
	})
}
