package directory

import (
	"testing"

	"vsnoop/internal/cache"
	"vsnoop/internal/mem"
	"vsnoop/internal/mesh"
	"vsnoop/internal/sim"
)

type harness struct {
	eng   *sim.Engine
	net   *mesh.Network
	ctrls []*CacheCtrl
	home  *Home
}

func newHarness(t *testing.T, nCores int) *harness {
	t.Helper()
	eng := sim.NewEngine()
	net := mesh.New(eng, mesh.DefaultConfig())
	p := DefaultParams()

	coreNodes := make([]mesh.NodeID, nCores)
	for i := 0; i < nCores; i++ {
		coreNodes[i] = net.Attach(i%4, i/4, nil)
	}
	homeNode := net.Attach(0, 0, nil)
	h := &Home{Eng: eng, Net: net, Node: homeNode, P: p}
	h.Init()
	net.SetHandler(homeNode, h.Handle)

	out := &harness{eng: eng, net: net, home: h}
	for i := 0; i < nCores; i++ {
		l2 := cache.New(cache.Config{Name: "L2", SizeBytes: 16 * 1024, Ways: 8, BlockBytes: 64, HitLatency: 10})
		c := &CacheCtrl{
			Eng: eng, Net: net, Node: coreNodes[i], Core: i, L2: l2, P: p,
			Tokens: nCores + 1, Homes: []mesh.NodeID{homeNode},
		}
		c.Init()
		net.SetHandler(coreNodes[i], c.Handle)
		out.ctrls = append(out.ctrls, c)
	}
	return out
}

func (h *harness) run() { h.eng.Run() }

func TestColdRead(t *testing.T) {
	h := newHarness(t, 4)
	done := false
	h.ctrls[0].Start(100, 1, false, func() { done = true })
	h.run()
	if !done {
		t.Fatal("read never completed")
	}
	b := h.ctrls[0].L2.Lookup(100)
	if b == nil || b.Tokens != 1 {
		t.Fatalf("block = %+v", b)
	}
	if h.home.State(100) != "S" || h.home.Sharers(100) != 1 {
		t.Fatalf("directory: state=%s sharers=%d", h.home.State(100), h.home.Sharers(100))
	}
	if h.home.Stats.DRAMReads != 1 {
		t.Fatalf("DRAM reads = %d", h.home.Stats.DRAMReads)
	}
}

func TestWriteThenForwardedRead(t *testing.T) {
	h := newHarness(t, 4)
	step := 0
	h.ctrls[0].Start(200, 1, true, func() { step = 1 })
	h.run()
	if step != 1 || h.home.State(200) != "E" {
		t.Fatalf("write failed: step=%d state=%s", step, h.home.State(200))
	}
	dram := h.home.Stats.DRAMReads
	h.ctrls[1].Start(200, 1, false, func() { step = 2 })
	h.run()
	if step != 2 {
		t.Fatal("forwarded read never completed")
	}
	if h.home.Stats.Forwards != 1 {
		t.Fatalf("forwards = %d, want 1", h.home.Stats.Forwards)
	}
	if h.home.Stats.DRAMReads != dram {
		t.Fatal("forwarded read should not touch DRAM")
	}
	// Old owner downgraded to S, requester S, directory Shared with both.
	b0 := h.ctrls[0].L2.Lookup(200)
	if b0 == nil || b0.Tokens != 1 || b0.Owner {
		t.Fatalf("old owner state: %+v", b0)
	}
	if h.home.State(200) != "S" || h.home.Sharers(200) != 2 {
		t.Fatalf("directory: %s/%d", h.home.State(200), h.home.Sharers(200))
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	h := newHarness(t, 4)
	n := 0
	for i := 0; i < 3; i++ {
		h.ctrls[i].Start(300, 1, false, func() { n++ })
		h.run()
	}
	h.ctrls[3].Start(300, 1, true, func() { n++ })
	h.run()
	if n != 4 {
		t.Fatalf("completed = %d", n)
	}
	for i := 0; i < 3; i++ {
		if b := h.ctrls[i].L2.Lookup(300); b != nil && b.Tokens > 0 {
			t.Fatalf("sharer %d not invalidated", i)
		}
	}
	if h.home.Stats.Invalidates != 3 {
		t.Fatalf("invalidates = %d, want 3", h.home.Stats.Invalidates)
	}
	if h.home.State(300) != "E" {
		t.Fatalf("state = %s", h.home.State(300))
	}
}

func TestUpgradeFromShared(t *testing.T) {
	h := newHarness(t, 4)
	steps := 0
	h.ctrls[0].Start(400, 1, false, func() { steps++ })
	h.run()
	h.ctrls[1].Start(400, 1, false, func() { steps++ })
	h.run()
	h.ctrls[0].Start(400, 1, true, func() { steps++ })
	h.run()
	if steps != 3 {
		t.Fatalf("steps = %d", steps)
	}
	b := h.ctrls[0].L2.Lookup(400)
	if b == nil || !b.Dirty || b.Tokens != h.ctrls[0].Tokens {
		t.Fatalf("upgrader state: %+v", b)
	}
	if got := h.ctrls[1].L2.Lookup(400); got != nil && got.Tokens > 0 {
		t.Fatal("other sharer survived upgrade")
	}
}

func TestConcurrentWritersSerialized(t *testing.T) {
	h := newHarness(t, 4)
	done := 0
	h.ctrls[0].Start(500, 1, true, func() { done++ })
	h.ctrls[1].Start(500, 1, true, func() { done++ })
	h.run()
	if done != 2 {
		t.Fatalf("completed = %d, want 2 (home must serialize)", done)
	}
	// Exactly one owner at the end.
	owners := 0
	for _, c := range h.ctrls {
		if b := c.L2.Lookup(500); b != nil && b.Tokens == c.Tokens {
			owners++
		}
	}
	if owners != 1 {
		t.Fatalf("owners = %d", owners)
	}
}

func TestEvictionWriteback(t *testing.T) {
	h := newHarness(t, 2)
	// 16KB/8way/64B = 32 sets; conflict one set with writes.
	n := 0
	for i := 0; i < 10; i++ {
		a := mem.BlockAddr(i * 32)
		h.ctrls[0].Start(a, 1, true, func() { n++ })
		h.run()
	}
	if n != 10 {
		t.Fatalf("writes completed = %d", n)
	}
	if h.ctrls[0].Stats.Writebacks == 0 {
		t.Fatal("no writebacks")
	}
	if h.home.Stats.DRAMWrites == 0 {
		t.Fatal("dirty writebacks did not reach DRAM")
	}
	// Evicted blocks must be re-readable (home state recovered).
	done := false
	h.ctrls[1].Start(0, 1, false, func() { done = true })
	h.run()
	if !done {
		t.Fatal("read of written-back block never completed")
	}
}

func TestRandomStressNoDeadlock(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		h := newHarness(t, 8)
		r := sim.NewRand(seed)
		ops := make([]int, 8)
		var issue func(core int)
		issue = func(core int) {
			if ops[core] >= 40 {
				return
			}
			ops[core]++
			a := mem.BlockAddr(1000 + r.Intn(24))
			write := r.Bool(0.4)
			c := h.ctrls[core]
			if b := c.L2.Lookup(a); b != nil && b.Tokens >= 1 && (!write || b.Tokens == c.Tokens) {
				if write {
					b.Dirty = true
				}
				h.eng.Schedule(1, func() { issue(core) })
				return
			}
			c.Start(a, mem.VMID(core/2), write, func() { issue(core) })
		}
		for core := 0; core < 8; core++ {
			core := core
			h.eng.Schedule(sim.Cycle(core), func() { issue(core) })
		}
		h.run()
		total := 0
		for _, n := range ops {
			total += n
		}
		if total != 8*40 {
			t.Fatalf("seed %d: deadlock, %d/%d ops", seed, total, 8*40)
		}
		// Single-writer invariant at quiescence.
		for a := mem.BlockAddr(1000); a < 1024; a++ {
			owners, sharers := 0, 0
			for _, c := range h.ctrls {
				if b := c.L2.Lookup(a); b != nil && b.Tokens > 0 {
					if b.Tokens == c.Tokens {
						owners++
					} else {
						sharers++
					}
				}
			}
			if owners > 1 {
				t.Fatalf("seed %d block %d: %d owners", seed, a, owners)
			}
			if owners == 1 && sharers > 0 {
				t.Fatalf("seed %d block %d: owner plus %d sharers", seed, a, sharers)
			}
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, uint64) {
		h := newHarness(t, 4)
		r := sim.NewRand(9)
		count := 0
		var issue func(core int)
		issue = func(core int) {
			if count >= 120 {
				return
			}
			count++
			a := mem.BlockAddr(2000 + r.Intn(12))
			c := h.ctrls[core]
			write := r.Bool(0.5)
			if b := c.L2.Lookup(a); b != nil && b.Tokens >= 1 && (!write || b.Tokens == c.Tokens) {
				h.eng.Schedule(1, func() { issue(core) })
				return
			}
			c.Start(a, 1, write, func() { issue(core) })
		}
		issue(0)
		h.eng.Schedule(3, func() { issue(1) })
		h.run()
		return h.home.Stats.Lookups, h.net.ByteHops
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", a1, b1, a2, b2)
	}
}

func TestForwardRacesEviction(t *testing.T) {
	// Directed test for the forward/eviction race: the owner evicts while
	// a forward is in flight; the requester must still complete.
	h := newHarness(t, 2)
	done := false
	h.ctrls[0].Start(600, 1, true, func() { done = true })
	h.run()
	if !done {
		t.Fatal("setup write failed")
	}
	// Evict the owned block by conflict-filling its set (32 sets).
	n := 0
	for i := 1; i <= 8; i++ {
		a := mem.BlockAddr(600 + i*32)
		h.ctrls[0].Start(a, 1, true, func() { n++ })
		h.run()
	}
	if h.ctrls[0].L2.Lookup(600) != nil {
		t.Fatal("block 600 still resident; test setup wrong")
	}
	// The home may still believe core 0 owns it (WB processed) or not; a
	// read from core 1 must complete either way.
	got := false
	h.ctrls[1].Start(600, 1, false, func() { got = true })
	h.run()
	if !got {
		t.Fatal("read after owner eviction never completed")
	}
}

func TestOwnerReRequestAfterEviction(t *testing.T) {
	// The pendingReq path: the owner evicts and immediately re-requests
	// before its writeback is processed.
	h := newHarness(t, 2)
	done := 0
	h.ctrls[0].Start(700, 1, true, func() { done++ })
	h.run()
	for i := 1; i <= 8; i++ {
		h.ctrls[0].Start(mem.BlockAddr(700+i*32), 1, true, func() { done++ })
		h.run()
	}
	// Re-request the evicted block.
	h.ctrls[0].Start(700, 1, true, func() { done++ })
	h.run()
	if done != 10 {
		t.Fatalf("completed = %d, want 10", done)
	}
	b := h.ctrls[0].L2.Lookup(700)
	if b == nil || b.Tokens != h.ctrls[0].Tokens {
		t.Fatalf("re-acquired block state: %+v", b)
	}
}

func TestUpgradeRaceLosesCleanly(t *testing.T) {
	// Two sharers race to upgrade; the home serializes them, and the loser
	// must re-acquire data (its S copy is invalidated mid-upgrade).
	h := newHarness(t, 4)
	n := 0
	h.ctrls[0].Start(800, 1, false, func() { n++ })
	h.run()
	h.ctrls[1].Start(800, 1, false, func() { n++ })
	h.run()
	h.ctrls[0].Start(800, 1, true, func() { n++ })
	h.ctrls[1].Start(800, 1, true, func() { n++ })
	h.run()
	if n != 4 {
		t.Fatalf("completed = %d, want 4", n)
	}
	owners := 0
	for _, c := range h.ctrls {
		if b := c.L2.Lookup(800); b != nil && b.Tokens == c.Tokens && b.Dirty {
			owners++
		}
	}
	if owners != 1 {
		t.Fatalf("owners = %d, want exactly 1", owners)
	}
}
