package serve

import (
	"fmt"
	"io"
	"sync/atomic"

	"vsnoop"
)

// metrics holds the server's self-observation counters. All fields are
// atomics written from handler and worker goroutines; render reads them
// without locks (staleness across counters is acceptable for a scrape).
type metrics struct {
	jobsAccepted  atomic.Uint64 // 202s issued
	jobsShedQueue atomic.Uint64 // 429s from a full queue
	jobsShedQuota atomic.Uint64 // 429s from tenant quotas
	jobsDone      atomic.Uint64
	jobsFailed    atomic.Uint64
	jobsCanceled  atomic.Uint64

	configsComputed atomic.Uint64 // simulations actually run
	configsMemoized atomic.Uint64 // served from the store without running
	configsReplayed atomic.Uint64 // store hits during post-crash job replay
	configsFailed   atomic.Uint64

	journalRecords atomic.Uint64 // records appended this process
	jobsRecovered  atomic.Uint64 // unfinished jobs resubmitted at startup
	badRequests    atomic.Uint64
}

// render writes the Prometheus text exposition. Engine-level totals come
// from the simulator's process-wide counters (vsnoop.TotalEventsFired,
// vsnoop.TotalSyncCounters); queueDepth and ready are sampled by the
// caller.
func (m *metrics) render(w io.Writer, queueDepth int, ready bool, shards int,
	mode string, storeBytes int64, storeEvictions uint64) {
	c := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	g := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	c("vsnoop_jobs_accepted_total", "Jobs admitted (202).", m.jobsAccepted.Load())
	c("vsnoop_jobs_shed_queue_total", "Jobs shed with 429: queue full.", m.jobsShedQueue.Load())
	c("vsnoop_jobs_shed_quota_total", "Jobs shed with 429: tenant quota.", m.jobsShedQuota.Load())
	c("vsnoop_jobs_done_total", "Jobs finished successfully.", m.jobsDone.Load())
	c("vsnoop_jobs_failed_total", "Jobs finished with config failures.", m.jobsFailed.Load())
	c("vsnoop_jobs_canceled_total", "Jobs canceled or deadline-exceeded.", m.jobsCanceled.Load())
	c("vsnoop_configs_computed_total", "Simulations executed.", m.configsComputed.Load())
	c("vsnoop_configs_memoized_total", "Configs served from the content-addressed store.", m.configsMemoized.Load())
	c("vsnoop_configs_replayed_total", "Store hits while replaying jobs after a restart.", m.configsReplayed.Load())
	c("vsnoop_configs_failed_total", "Configs that failed to simulate.", m.configsFailed.Load())
	c("vsnoop_journal_records_total", "Journal records appended this process.", m.journalRecords.Load())
	c("vsnoop_jobs_recovered_total", "Unfinished jobs resubmitted at startup.", m.jobsRecovered.Load())
	c("vsnoop_bad_requests_total", "Requests rejected with 4xx before admission.", m.badRequests.Load())
	g("vsnoop_queue_depth", "Jobs queued but not yet running.", uint64(queueDepth))
	rd := uint64(0)
	if ready {
		rd = 1
	}
	g("vsnoop_ready", "1 when the server is accepting jobs.", rd)
	g("vsnoop_shards", "Event-queue shards forced per run (planner-resolved when -shards is auto; 0 honors each request).",
		uint64(shards))
	if mode == "" {
		mode = "request"
	}
	fmt.Fprintf(w, "# HELP vsnoop_mode Synchronization engine forced per run (\"request\" honors each request).\n"+
		"# TYPE vsnoop_mode gauge\nvsnoop_mode{mode=%q} 1\n", mode)
	c("vsnoop_store_evictions_total", "Results evicted from the size-bounded store.", storeEvictions)
	g("vsnoop_store_bytes", "Bytes held by the content-addressed result store.", uint64(storeBytes))

	c("vsnoop_engine_events_total", "Simulator events executed by every run in this process.",
		vsnoop.TotalEventsFired())
	windows, elided, waits, widthSum := vsnoop.TotalSyncCounters()
	c("vsnoop_engine_sync_windows_total", "Sharded-engine synchronization windows.", windows)
	c("vsnoop_engine_sync_elided_barriers_total", "Quiet-window exchange barriers elided.", elided)
	c("vsnoop_engine_sync_barrier_waits_total", "Shard arrivals at synchronization barriers.", waits)
	c("vsnoop_engine_sync_window_width_cycles_total", "Sum of window widths in cycles.", widthSum)
}
