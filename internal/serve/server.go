package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"vsnoop"
	"vsnoop/internal/runner"
)

// Options configures a Server. Zero values select the documented defaults.
type Options struct {
	// DataDir holds the journal and the result store. Required.
	DataDir string
	// Workers is the number of concurrent jobs (default 2). Each job runs
	// its configs sequentially; a config may itself be shard-parallel.
	Workers int
	// QueueCap bounds jobs accepted but not yet running (default 64). A
	// full queue sheds with 429 + Retry-After — this is the memory bound.
	QueueCap int
	// QuotaRate / QuotaBurst configure per-tenant token buckets in units
	// of configs (rate per second). QuotaRate <= 0 disables quotas.
	QuotaRate  float64
	QuotaBurst float64
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// MaxConfigsPerJob bounds sweep expansion (default 1024).
	MaxConfigsPerJob int
	// MaxJobs bounds the in-memory job table (default 4096). When full,
	// the oldest finished job is evicted; if every job is live, submission
	// sheds.
	MaxJobs int
	// Shards overrides Config.Shards on every submitted config (0 leaves
	// requests as-is). The hash ignores it, so this never affects results.
	Shards int
	// Mode overrides Config.Mode on every submitted config ("" leaves
	// requests as-is): windowed, adaptive, timewarp, or auto. Like Shards
	// it is an execution mechanic the hash ignores — results are
	// bit-identical across modes — so forcing it never affects stored
	// records.
	Mode string
	// StoreMaxBytes bounds the content-addressed result store; past it the
	// oldest unreferenced records are evicted (0 = unbounded). Evicted
	// results recompute bit-identically on the next request.
	StoreMaxBytes int64
	// Now is the clock (required): the daemon passes time.Now, tests pass
	// a fake. The serve package never reads ambient time itself.
	Now func() time.Time
}

func (o *Options) withDefaults() error {
	if o.DataDir == "" {
		return fmt.Errorf("serve: Options.DataDir is required")
	}
	if o.Now == nil {
		return fmt.Errorf("serve: Options.Now is required (inject time.Now)")
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.MaxConfigsPerJob <= 0 {
		o.MaxConfigsPerJob = 1024
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 4096
	}
	switch o.Mode {
	case "", "auto", "windowed", "adaptive", "timewarp":
	default:
		return fmt.Errorf("serve: unknown Mode %q (want windowed, adaptive, timewarp, or auto)", o.Mode)
	}
	return nil
}

// Server is the vsnoop simulation service. Create with New, expose
// Handler() via an http.Server, stop with Close (graceful: cancels
// in-flight jobs, drains the pool) or Abort (simulated kill -9 for crash
// tests: freezes all persistence at the current instant).
type Server struct {
	opts    Options
	now     func() time.Time
	pool    *runner.Pool
	quota   *quotaTable
	journal *journal
	store   *store
	metrics *metrics

	rootCtx  context.Context
	rootStop context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*jobState // lookup only; iteration uses jobOrder
	jobOrder []string
	seq      uint64
	closed   bool

	fmu     sync.Mutex
	flights map[string]chan struct{}
}

// New opens the data directory, replays the journal, resubmits unfinished
// jobs, compacts the journal, and returns a ready server.
func New(opts Options) (*Server, error) {
	if err := opts.withDefaults(); err != nil {
		return nil, err
	}
	st, err := openStore(filepath.Join(opts.DataDir, "results"), opts.StoreMaxBytes)
	if err != nil {
		return nil, err
	}
	jn, recs, err := openJournal(filepath.Join(opts.DataDir, "journal"))
	if err != nil {
		return nil, err
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		opts:    opts,
		now:     opts.Now,
		quota:   newQuota(opts.QuotaRate, opts.QuotaBurst),
		journal: jn,
		store:   st,
		metrics: &metrics{},
		rootCtx: ctx, rootStop: stop,
		jobs:    make(map[string]*jobState),
		flights: make(map[string]chan struct{}),
	}
	unfinished := s.replay(recs)
	if err := s.compact(unfinished); err != nil {
		stop()
		return nil, err
	}
	// Size the queue to fit every recovered job plus the configured
	// capacity, so recovery never sheds its own backlog.
	s.pool = runner.NewPool(opts.Workers, opts.QueueCap+len(unfinished))
	for _, j := range unfinished {
		j := j
		s.pool.TrySubmit(func() { s.runJob(j) })
		s.metrics.jobsRecovered.Add(1)
	}
	// First GC pass: the replay above fixed which hashes recovered jobs
	// still reference, so a store left oversized by a crash (including one
	// mid-eviction) is trimmed back under the bound right away.
	st.gc(s.liveHashes())
	return s, nil
}

// liveHashes returns the result hashes that queued or running jobs still
// reference; the store GC never evicts these.
func (s *Server) liveHashes() map[string]bool {
	refs := make(map[string]bool)
	s.mu.Lock()
	for _, id := range s.jobOrder {
		j := s.jobs[id]
		if j.status == statusQueued || j.status == statusRunning {
			for _, h := range j.hashes {
				refs[h] = true
			}
		}
	}
	s.mu.Unlock()
	return refs
}

// replay rebuilds the job table from journal records and returns the
// unfinished jobs (accepted, no terminal record) in acceptance order.
func (s *Server) replay(recs []record) []*jobState {
	for _, r := range recs {
		switch r.Op {
		case opJob:
			if len(r.Configs) == 0 || len(r.Configs) != len(r.Hashes) {
				continue // malformed; skip defensively
			}
			ctx, cancel := context.WithCancel(s.rootCtx)
			j := &jobState{
				id: r.ID, tenant: r.Tenant,
				configs: r.Configs, hashes: r.Hashes,
				status: statusQueued, recovered: true,
				outcomes: make([]outcome, len(r.Configs)),
				ctx:      ctx, cancelFn: cancel,
			}
			for i := range j.outcomes {
				j.outcomes[i] = outcome{Hash: r.Hashes[i], State: cfgPending}
			}
			s.jobs[r.ID] = j
			s.jobOrder = append(s.jobOrder, r.ID)
			if n := parseSeq(r.ID); n > s.seq {
				s.seq = n
			}
		case opCfg:
			j := s.jobs[r.ID]
			if j == nil {
				continue
			}
			for i := range j.outcomes {
				if j.outcomes[i].State != cfgPending || j.outcomes[i].Hash != r.Hash {
					continue
				}
				if r.Status == "ok" {
					// A cfg record follows the store write, but verify:
					// a missing file just means we recompute.
					if _, ok, _ := s.store.get(r.Hash); ok {
						j.outcomes[i].State = cfgReplayed
						j.done++
						s.metrics.configsReplayed.Add(1)
					}
				} else {
					j.outcomes[i].State = cfgFailed
					j.outcomes[i].Err = r.Err
					j.done++
				}
				break
			}
		case opEnd:
			j := s.jobs[r.ID]
			if j == nil {
				continue
			}
			j.status = r.Status
			for i := range j.outcomes {
				if j.outcomes[i].State == cfgPending {
					j.outcomes[i].State = cfgCanceled
					j.done++
				}
			}
			j.cancelFn()
		}
	}
	var unfinished []*jobState
	for _, id := range s.jobOrder {
		j := s.jobs[id]
		if j.status == statusQueued || j.status == statusRunning {
			unfinished = append(unfinished, j)
		}
	}
	return unfinished
}

// compact rewrites the journal to hold only the unfinished jobs' records.
// Finished jobs are forgotten across restarts (their results remain
// addressable in the store by hash); this bounds the journal.
func (s *Server) compact(unfinished []*jobState) error {
	var recs []record
	for _, j := range unfinished {
		recs = append(recs, record{
			Op: opJob, ID: j.id, Tenant: j.tenant,
			Configs: j.configs, Hashes: j.hashes,
		})
		for i := range j.outcomes {
			switch j.outcomes[i].State {
			case cfgReplayed, cfgMemoized, cfgComputed:
				recs = append(recs, record{Op: opCfg, ID: j.id, Hash: j.outcomes[i].Hash, Status: "ok"})
			case cfgFailed:
				recs = append(recs, record{Op: opCfg, ID: j.id, Hash: j.outcomes[i].Hash,
					Status: "failed", Err: j.outcomes[i].Err})
			}
		}
	}
	return s.journal.rewrite(recs)
}

func parseSeq(id string) uint64 {
	if len(id) < 3 || id[0] != 'j' || id[1] != '-' {
		return 0
	}
	n, err := strconv.ParseUint(id[2:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// Close shuts down gracefully: no new jobs, in-flight jobs canceled (and
// journaled as canceled), pool drained. Safe to call twice.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.rootStop()
	s.pool.Close()
	s.journal.closeFile()
}

// Abort simulates kill -9 for crash tests: all journal and store writes
// are suppressed from this instant, then everything stops. Because every
// persistence operation is individually crash-atomic (fsync'd appends,
// write-temp + rename), the on-disk state Abort leaves behind is exactly a
// state the real kill could have produced.
func (s *Server) Abort() {
	s.journal.freeze()
	s.store.freeze()
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.rootStop()
	s.pool.Close()
	s.journal.closeFile()
}

// Handler returns the HTTP API:
//
//	POST /v1/jobs             submit a config or sweep (202, 400, 429, 503)
//	GET  /v1/jobs/{id}        job status and per-config outcomes
//	POST /v1/jobs/{id}/cancel cancel a job
//	GET  /v1/results/{hash}   stored result, byte-identical across serves
//	GET  /healthz             liveness
//	GET  /readyz              readiness (503 once closed)
//	GET  /metrics             Prometheus text
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleJobCancel)
	mux.HandleFunc("GET /v1/results/{hash}", s.handleResult)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ready\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.render(w, s.pool.Depth(), !closed, s.opts.Shards, s.opts.Mode,
		s.store.bytes(), s.store.evictions.Load())
}

// shed writes a 429 with Retry-After, the backpressure contract.
func shed(w http.ResponseWriter, retry time.Duration, msg string) {
	secs := int64(retry / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	http.Error(w, msg, http.StatusTooManyRequests)
}

func (s *Server) badRequest(w http.ResponseWriter, msg string) {
	s.metrics.badRequests.Add(1)
	http.Error(w, msg, http.StatusBadRequest)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var req jobRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.badRequest(w, fmt.Sprintf("bad request body: %v", err))
		return
	}
	configs, err := expandRequest(&req)
	if err != nil {
		s.badRequest(w, err.Error())
		return
	}
	if len(configs) > s.opts.MaxConfigsPerJob {
		s.badRequest(w, fmt.Sprintf("sweep expands to %d configs (limit %d)",
			len(configs), s.opts.MaxConfigsPerJob))
		return
	}
	hashes := make([]string, len(configs))
	for i := range configs {
		if s.opts.Shards != 0 {
			configs[i].Shards = s.opts.Shards
		}
		if s.opts.Mode != "" {
			configs[i].Mode = s.opts.Mode
		}
		if err := configs[i].Validate(); err != nil {
			s.badRequest(w, fmt.Sprintf("config %d: %v", i, err))
			return
		}
		hashes[i] = configs[i].Hash()
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = r.Header.Get("X-Tenant")
	}
	if tenant == "" {
		tenant = "anon"
	}
	if ok, retry := s.quota.allow(tenant, s.now(), float64(len(configs))); !ok {
		s.metrics.jobsShedQuota.Add(1)
		shed(w, retry, fmt.Sprintf("tenant %q over quota", tenant))
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	if len(s.jobOrder) >= s.opts.MaxJobs && !s.evictFinishedLocked() {
		s.mu.Unlock()
		s.metrics.jobsShedQueue.Add(1)
		shed(w, 5*time.Second, "job table full")
		return
	}
	s.seq++
	id := fmt.Sprintf("j-%06d", s.seq)
	ctx, cancel := context.WithCancel(s.rootCtx)
	if req.TimeoutMs > 0 {
		ctx, cancel = context.WithTimeout(s.rootCtx, time.Duration(req.TimeoutMs)*time.Millisecond)
	}
	j := &jobState{
		id: id, tenant: tenant, configs: configs, hashes: hashes,
		status: statusQueued, outcomes: make([]outcome, len(configs)),
		ctx: ctx, cancelFn: cancel,
	}
	for i := range j.outcomes {
		j.outcomes[i] = outcome{Hash: hashes[i], State: cfgPending}
	}
	s.mu.Unlock()

	// Admission is durable before it is acknowledged: journal first, then
	// queue. A crash between the two resubmits the job at restart — safe,
	// because memoization absorbs duplicate execution.
	if err := s.journal.append(record{
		Op: opJob, ID: id, Tenant: tenant, Configs: configs, Hashes: hashes,
	}); err != nil {
		cancel()
		http.Error(w, fmt.Sprintf("journal: %v", err), http.StatusInternalServerError)
		return
	}
	s.metrics.journalRecords.Add(1)
	if !s.pool.TrySubmit(func() { s.runJob(j) }) {
		// Queue full: journal the shed so replay never resurrects the job.
		s.journalAppend(record{Op: opEnd, ID: id, Status: statusCanceled})
		cancel()
		s.metrics.jobsShedQueue.Add(1)
		shed(w, 2*time.Second, "job queue full")
		return
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.jobOrder = append(s.jobOrder, id)
	s.mu.Unlock()
	s.metrics.jobsAccepted.Add(1)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]interface{}{
		"id": id, "total": len(configs), "hashes": hashes,
	})
}

// evictFinishedLocked frees one slot by dropping the oldest finished job.
// Reports false when every job is still live (the table stays bounded by
// shedding instead).
func (s *Server) evictFinishedLocked() bool {
	for i, id := range s.jobOrder {
		j := s.jobs[id]
		if j.status == statusDone || j.status == statusFailed || j.status == statusCanceled {
			delete(s.jobs, id)
			s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
			return true
		}
	}
	return false
}

// jobView is the GET /v1/jobs/{id} response.
type jobView struct {
	ID       string    `json:"id"`
	Tenant   string    `json:"tenant"`
	Status   string    `json:"status"`
	Total    int       `json:"total"`
	Done     int       `json:"done"`
	Outcomes []outcome `json:"outcomes"`
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var view jobView
	if ok {
		view = jobView{
			ID: j.id, Tenant: j.tenant, Status: j.status,
			Total: len(j.configs), Done: j.done,
			Outcomes: append([]outcome(nil), j.outcomes...),
		}
	}
	s.mu.Unlock()
	if !ok {
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(view)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	j.cancelFn()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"id": j.id, "status": "canceling"})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if !validHash(hash) {
		s.badRequest(w, "malformed hash")
		return
	}
	data, ok, err := s.store.raw(hash)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !ok {
		http.Error(w, "no result for hash", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// Hash re-exports the canonical config hash for CLI convenience.
func Hash(cfg vsnoop.Config) string { return cfg.Hash() }
