package serve

import (
	"sync"
	"time"
)

// maxTenants bounds the quota table: admission control must itself use
// bounded memory, or an attacker minting tenant names turns the defense
// into the attack. When the table is full, the stalest bucket (the one
// whose tokens would be fullest now) is recycled — forgetting an idle
// tenant merely refills their bucket, which is safe.
const maxTenants = 1024

// bucket is one tenant's token bucket. Tokens are "configs": a single run
// costs 1, a sweep costs its expanded config count.
type bucket struct {
	tenant string
	tokens float64
	last   time.Time
}

// quotaTable implements per-tenant token-bucket admission control. All
// time is passed in by the caller (the server's injected clock) — the
// table never reads an ambient clock, so tests drive it deterministically
// and the wallclock lint holds.
type quotaTable struct {
	rate  float64 // tokens per second per tenant; <= 0 disables quotas
	burst float64 // bucket capacity

	mu      sync.Mutex
	idx     map[string]int // tenant -> index in buckets (lookup only, never ranged)
	buckets []bucket
}

func newQuota(rate, burst float64) *quotaTable {
	if burst < 1 {
		burst = 1
	}
	return &quotaTable{rate: rate, burst: burst, idx: make(map[string]int)}
}

// allow charges tenant cost tokens at time now. On refusal it returns the
// duration after which the charge would succeed — the Retry-After value.
// Costs above the burst are clamped to it, so a sweep larger than one full
// bucket is still admittable (it drains the bucket completely).
func (q *quotaTable) allow(tenant string, now time.Time, cost float64) (bool, time.Duration) {
	if q.rate <= 0 {
		return true, 0
	}
	if cost > q.burst {
		cost = q.burst
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	i, ok := q.idx[tenant]
	if !ok {
		i = q.place(tenant, now)
	}
	b := &q.buckets[i]
	if el := now.Sub(b.last).Seconds(); el > 0 {
		b.tokens += el * q.rate
		if b.tokens > q.burst {
			b.tokens = q.burst
		}
		b.last = now
	}
	if b.tokens >= cost {
		b.tokens -= cost
		return true, 0
	}
	deficit := cost - b.tokens
	retry := time.Duration(deficit / q.rate * float64(time.Second))
	if retry < time.Second {
		retry = time.Second
	}
	return false, retry
}

// place installs a bucket for a new tenant, recycling the stalest slot
// when the table is full. The victim scan walks the slice — maps are
// lookup-only in this package.
func (q *quotaTable) place(tenant string, now time.Time) int {
	if len(q.buckets) < maxTenants {
		q.buckets = append(q.buckets, bucket{tenant: tenant, tokens: q.burst, last: now})
		q.idx[tenant] = len(q.buckets) - 1
		return len(q.buckets) - 1
	}
	victim := 0
	best := -1.0
	for i := range q.buckets {
		b := &q.buckets[i]
		// Effective fill if refreshed now; fullest bucket = longest idle.
		fill := b.tokens + now.Sub(b.last).Seconds()*q.rate
		if fill > best {
			best, victim = fill, i
		}
	}
	delete(q.idx, q.buckets[victim].tenant)
	q.buckets[victim] = bucket{tenant: tenant, tokens: q.burst, last: now}
	q.idx[tenant] = victim
	return victim
}
