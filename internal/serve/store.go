package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"vsnoop"
)

// Record is one stored result: the canonical hash, the normalized
// configuration that produced it, and the simulation result. Stored
// records are normalized so that byte equality is meaningful:
//
//   - Config.Shards, Config.NoElision, and Config.Mode are zeroed — they
//     are execution mechanics excluded from the hash, and results are
//     bit-identical across them, so a record computed at any shard count
//     or synchronization mode serves all.
//   - Result.Stats is dropped: the low-level record embeds synchronization
//     telemetry (barrier waits, window widths), which measures how the run
//     was executed, not what it computed.
//
// Everything that remains is a pure function of the hash.
type Record struct {
	Hash   string         `json:"hash"`
	Config vsnoop.Config  `json:"config"`
	Result *vsnoop.Result `json:"result"`
}

// normalizeRecord builds the canonical stored form.
func normalizeRecord(cfg vsnoop.Config, res *vsnoop.Result) Record {
	cfg.Shards = 0
	cfg.NoElision = false
	cfg.Mode = ""
	r := *res
	r.Stats = nil
	return Record{Hash: cfg.Hash(), Config: cfg, Result: &r}
}

// store is the content-addressed result store: one JSON file per hash,
// written with the write-temp + fsync + rename + dir-fsync pattern so a
// file either exists completely or not at all — kill -9 can never leave a
// half-written result visible under its final name.
//
// When maxBytes > 0 the store is size-bounded: gc evicts the oldest
// unreferenced records (oldest write first; at startup, oldest file mtime
// first) until the total fits. Eviction is a pure cache decision —
// determinism means any evicted result can be recomputed bit-identically
// from its config — and each removal is a single atomic unlink, so a crash
// mid-eviction leaves only states a clean restart rebuilds from the
// directory scan.
type store struct {
	dir      string
	maxBytes int64 // 0 = unbounded
	frozen   atomic.Bool

	// evictions counts records removed by gc (the
	// vsnoop_store_evictions_total metric).
	evictions atomic.Uint64

	// mu guards the size accounting. Readers (raw/get) are deliberately
	// outside it: a record evicted between lookup and read surfaces as a
	// plain miss, which every caller already handles by recomputing.
	mu    sync.Mutex
	sizes map[string]int64
	order []string // eviction order: oldest first
	total int64
}

// openStore opens the store rooted at dir, deletes any *.tmp leftovers
// from a crash mid-write, and rebuilds the size accounting from a
// directory scan (oldest mtime first, hash as the deterministic
// tiebreaker). It never evicts on its own — the server runs the first gc
// after journal replay, when the live-reference set is known.
func openStore(dir string, maxBytes int64) (*store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &store{dir: dir, maxBytes: maxBytes, sizes: make(map[string]int64)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type meta struct {
		hash string
		size int64
		mod  int64
	}
	var metas []meta
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// A crash between write and rename left a temp file; it was
			// never visible under its final name, so dropping it is safe.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		h, ok := strings.CutSuffix(name, ".json")
		if !ok || !validHash(h) {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		metas = append(metas, meta{hash: h, size: fi.Size(), mod: fi.ModTime().UnixNano()})
	}
	sort.Slice(metas, func(i, j int) bool {
		if metas[i].mod != metas[j].mod {
			return metas[i].mod < metas[j].mod
		}
		return metas[i].hash < metas[j].hash
	})
	for _, m := range metas {
		s.sizes[m.hash] = m.size
		s.order = append(s.order, m.hash)
		s.total += m.size
	}
	return s, nil
}

// bytes returns the accounted store size (the vsnoop_store_bytes gauge).
func (s *store) bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// account registers a freshly renamed record in the size bookkeeping.
func (s *store) account(hash string, n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.sizes[hash]; !dup {
		s.sizes[hash] = n
		s.order = append(s.order, hash)
		s.total += n
	}
}

// gc evicts oldest-first until the store fits maxBytes, skipping hashes in
// referenced (results that queued or running jobs still need). If every
// record is referenced the store may transiently exceed its bound — live
// work is never sacrificed to the cache limit. Each eviction is one atomic
// unlink; the directory is fsync'd once at the end so the batch is durable.
func (s *store) gc(referenced map[string]bool) {
	if s.maxBytes <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := false
	for s.total > s.maxBytes && !s.frozen.Load() {
		victim := -1
		for i, h := range s.order {
			if !referenced[h] {
				victim = i
				break
			}
		}
		if victim < 0 {
			break
		}
		h := s.order[victim]
		if err := os.Remove(s.path(h)); err != nil && !os.IsNotExist(err) {
			break
		}
		s.evictions.Add(1)
		s.total -= s.sizes[h]
		delete(s.sizes, h)
		s.order = append(s.order[:victim], s.order[victim+1:]...)
		removed = true
	}
	if removed {
		syncDir(s.dir)
	}
}

// validHash reports whether h is a lowercase hex SHA-256 — both an API
// input check and a path-traversal guard (hashes become file names).
func validHash(h string) bool {
	if len(h) != 64 {
		return false
	}
	for i := 0; i < len(h); i++ {
		c := h[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *store) path(hash string) string {
	return filepath.Join(s.dir, hash+".json")
}

// raw returns the stored bytes for hash, exactly as written. Serving raw
// bytes (rather than re-marshaling) is what makes "bit-identical re-serve"
// literal: two GETs of the same hash — before and after a crash, from a
// replayed or a fresh computation — return the same bytes.
func (s *store) raw(hash string) ([]byte, bool, error) {
	if !validHash(hash) {
		return nil, false, fmt.Errorf("store: invalid hash %q", hash)
	}
	data, err := os.ReadFile(s.path(hash))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// get reads and validates the record for hash.
func (s *store) get(hash string) (*Record, bool, error) {
	data, ok, err := s.raw(hash)
	if !ok || err != nil {
		return nil, false, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, false, fmt.Errorf("store: corrupt record %s: %w", hash, err)
	}
	if rec.Hash != hash {
		return nil, false, fmt.Errorf("store: record %s claims hash %s", hash, rec.Hash)
	}
	return &rec, true, nil
}

// put durably writes rec, keyed by its hash. Writing the same hash twice
// is a no-op (first write wins; determinism guarantees the bytes would
// match anyway, and keeping the original preserves byte identity).
func (s *store) put(rec Record) error {
	if s.frozen.Load() {
		return fmt.Errorf("store: frozen (server aborted)")
	}
	if !validHash(rec.Hash) {
		return fmt.Errorf("store: invalid hash %q", rec.Hash)
	}
	final := s.path(rec.Hash)
	if _, err := os.Stat(final); err == nil {
		return nil
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if s.frozen.Load() {
		os.Remove(tmp)
		return fmt.Errorf("store: frozen (server aborted)")
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	s.account(rec.Hash, int64(len(data)+1))
	return nil
}

// freeze suppresses further writes (Abort; see journal.freeze).
func (s *store) freeze() { s.frozen.Store(true) }
