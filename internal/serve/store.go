package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"vsnoop"
)

// Record is one stored result: the canonical hash, the normalized
// configuration that produced it, and the simulation result. Stored
// records are normalized so that byte equality is meaningful:
//
//   - Config.Shards and Config.NoElision are zeroed — they are execution
//     mechanics excluded from the hash, and results are bit-identical
//     across them, so a record computed at any shard count serves all.
//   - Result.Stats is dropped: the low-level record embeds synchronization
//     telemetry (barrier waits, window widths), which measures how the run
//     was executed, not what it computed.
//
// Everything that remains is a pure function of the hash.
type Record struct {
	Hash   string         `json:"hash"`
	Config vsnoop.Config  `json:"config"`
	Result *vsnoop.Result `json:"result"`
}

// normalizeRecord builds the canonical stored form.
func normalizeRecord(cfg vsnoop.Config, res *vsnoop.Result) Record {
	cfg.Shards = 0
	cfg.NoElision = false
	r := *res
	r.Stats = nil
	return Record{Hash: cfg.Hash(), Config: cfg, Result: &r}
}

// store is the content-addressed result store: one JSON file per hash,
// written with the write-temp + fsync + rename + dir-fsync pattern so a
// file either exists completely or not at all — kill -9 can never leave a
// half-written result visible under its final name.
type store struct {
	dir    string
	frozen atomic.Bool
}

func openStore(dir string) (*store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &store{dir: dir}, nil
}

// validHash reports whether h is a lowercase hex SHA-256 — both an API
// input check and a path-traversal guard (hashes become file names).
func validHash(h string) bool {
	if len(h) != 64 {
		return false
	}
	for i := 0; i < len(h); i++ {
		c := h[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *store) path(hash string) string {
	return filepath.Join(s.dir, hash+".json")
}

// raw returns the stored bytes for hash, exactly as written. Serving raw
// bytes (rather than re-marshaling) is what makes "bit-identical re-serve"
// literal: two GETs of the same hash — before and after a crash, from a
// replayed or a fresh computation — return the same bytes.
func (s *store) raw(hash string) ([]byte, bool, error) {
	if !validHash(hash) {
		return nil, false, fmt.Errorf("store: invalid hash %q", hash)
	}
	data, err := os.ReadFile(s.path(hash))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// get reads and validates the record for hash.
func (s *store) get(hash string) (*Record, bool, error) {
	data, ok, err := s.raw(hash)
	if !ok || err != nil {
		return nil, false, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, false, fmt.Errorf("store: corrupt record %s: %w", hash, err)
	}
	if rec.Hash != hash {
		return nil, false, fmt.Errorf("store: record %s claims hash %s", hash, rec.Hash)
	}
	return &rec, true, nil
}

// put durably writes rec, keyed by its hash. Writing the same hash twice
// is a no-op (first write wins; determinism guarantees the bytes would
// match anyway, and keeping the original preserves byte identity).
func (s *store) put(rec Record) error {
	if s.frozen.Load() {
		return fmt.Errorf("store: frozen (server aborted)")
	}
	if !validHash(rec.Hash) {
		return fmt.Errorf("store: invalid hash %q", rec.Hash)
	}
	final := s.path(rec.Hash)
	if _, err := os.Stat(final); err == nil {
		return nil
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if s.frozen.Load() {
		os.Remove(tmp)
		return fmt.Errorf("store: frozen (server aborted)")
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return syncDir(s.dir)
}

// freeze suppresses further writes (Abort; see journal.freeze).
func (s *store) freeze() { s.frozen.Store(true) }
