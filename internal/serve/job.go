package serve

import (
	"context"
	"errors"
	"fmt"

	"vsnoop"
)

// Job statuses.
const (
	statusQueued   = "queued"
	statusRunning  = "running"
	statusDone     = "done"
	statusFailed   = "failed"   // at least one config failed; the rest ran
	statusCanceled = "canceled" // client cancel or deadline
)

// Per-config outcome kinds.
const (
	cfgPending  = "pending"
	cfgComputed = "computed" // simulated in this process
	cfgMemoized = "memoized" // store hit, no simulation
	cfgReplayed = "replayed" // store hit while recovering a journaled job
	cfgFailed   = "failed"
	cfgCanceled = "canceled"
)

// outcome is the public per-config status inside a job view.
type outcome struct {
	Hash  string `json:"hash"`
	State string `json:"state"`
	Err   string `json:"err,omitempty"`
}

// jobState is one accepted job. Mutable fields (status, outcomes, done)
// are guarded by the server mutex; the run loop takes snapshots under it.
type jobState struct {
	id      string
	tenant  string
	configs []vsnoop.Config
	hashes  []string

	status   string
	outcomes []outcome
	done     int // configs in a terminal state

	recovered bool // rebuilt from the journal after a restart
	ctx       context.Context
	cancelFn  context.CancelFunc
}

// jobRequest is the POST /v1/jobs body: exactly one of Config or Sweep.
type jobRequest struct {
	Tenant    string         `json:"tenant,omitempty"`
	TimeoutMs int64          `json:"timeout_ms,omitempty"`
	Config    *vsnoop.Config `json:"config,omitempty"`
	Sweep     *sweepSpec     `json:"sweep,omitempty"`
}

// sweepSpec expands to the cross product of the non-empty axis lists
// applied over the base config, in fixed axis order (workloads, policies,
// thresholds, seeds) — the expansion order is part of the API contract, so
// a sweep's config list is deterministic.
type sweepSpec struct {
	Config     vsnoop.Config   `json:"config"`
	Workloads  []string        `json:"workloads,omitempty"`
	Policies   []vsnoop.Policy `json:"policies,omitempty"`
	Thresholds []int           `json:"thresholds,omitempty"`
	Seeds      []uint64        `json:"seeds,omitempty"`
}

func (s *sweepSpec) expand() []vsnoop.Config {
	workloads := s.Workloads
	if len(workloads) == 0 {
		workloads = []string{s.Config.Workload}
	}
	policies := s.Policies
	if len(policies) == 0 {
		policies = []vsnoop.Policy{s.Config.Policy}
	}
	thresholds := s.Thresholds
	if len(thresholds) == 0 {
		thresholds = []int{s.Config.Threshold}
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{s.Config.Seed}
	}
	var out []vsnoop.Config
	for _, w := range workloads {
		for _, p := range policies {
			for _, th := range thresholds {
				for _, sd := range seeds {
					cfg := s.Config
					cfg.Workload = w
					cfg.Policy = p
					cfg.Threshold = th
					cfg.Seed = sd
					out = append(out, cfg)
				}
			}
		}
	}
	return out
}

// expandRequest turns a request into its config list.
func expandRequest(req *jobRequest) ([]vsnoop.Config, error) {
	switch {
	case req.Config != nil && req.Sweep != nil:
		return nil, fmt.Errorf("request has both config and sweep")
	case req.Config != nil:
		return []vsnoop.Config{*req.Config}, nil
	case req.Sweep != nil:
		return req.Sweep.expand(), nil
	default:
		return nil, fmt.Errorf("request has neither config nor sweep")
	}
}

// runJob is the worker-side job loop: run every config in order, stopping
// early only on cancellation. Configs run sequentially within a job —
// cross-job parallelism comes from the pool's workers, and each simulation
// may itself be shard-parallel.
func (s *Server) runJob(j *jobState) {
	s.mu.Lock()
	if j.status == statusQueued {
		j.status = statusRunning
	}
	n := len(j.configs)
	s.mu.Unlock()

	anyFailed, canceled := false, false
	for i := 0; i < n; i++ {
		s.mu.Lock()
		state := j.outcomes[i].State
		s.mu.Unlock()
		if state != cfgPending {
			continue // finished before a crash; already accounted in replay
		}
		if j.ctx.Err() != nil {
			s.setOutcome(j, i, cfgCanceled, "")
			canceled = true
			continue
		}
		st, errMsg := s.runConfig(j, i)
		s.setOutcome(j, i, st, errMsg)
		switch st {
		case cfgFailed:
			anyFailed = true
		case cfgCanceled:
			canceled = true
		}
	}

	final := statusDone
	switch {
	case canceled:
		final = statusCanceled
		s.metrics.jobsCanceled.Add(1)
	case anyFailed:
		final = statusFailed
		s.metrics.jobsFailed.Add(1)
	default:
		s.metrics.jobsDone.Add(1)
	}
	s.mu.Lock()
	j.status = final
	s.mu.Unlock()
	s.journalAppend(record{Op: opEnd, ID: j.id, Status: final})
	j.cancelFn()
}

// runConfig resolves one config of a job: store hit (memoized/replayed) or
// a fresh simulation, deduplicated against concurrent jobs computing the
// same hash. On success the result is durable in the store and the cfg
// record is journaled before returning.
func (s *Server) runConfig(j *jobState, i int) (state, errMsg string) {
	h := j.hashes[i]
	hit := cfgMemoized
	if j.recovered {
		hit = cfgReplayed
	}
	if rec, ok, _ := s.store.get(h); ok && rec != nil {
		if hit == cfgReplayed {
			s.metrics.configsReplayed.Add(1)
		} else {
			s.metrics.configsMemoized.Add(1)
		}
		s.journalAppend(record{Op: opCfg, ID: j.id, Hash: h, Status: "ok"})
		return hit, ""
	}

	// Singleflight: one computation per hash at a time, across jobs.
	var ch chan struct{}
	for {
		s.fmu.Lock()
		other, busy := s.flights[h]
		if !busy {
			ch = make(chan struct{})
			s.flights[h] = ch
			s.fmu.Unlock()
			break
		}
		s.fmu.Unlock()
		select {
		case <-other:
			if _, ok, _ := s.store.get(h); ok {
				s.metrics.configsMemoized.Add(1)
				s.journalAppend(record{Op: opCfg, ID: j.id, Hash: h, Status: "ok"})
				return cfgMemoized, ""
			}
			// The other flight failed or was canceled; take our turn.
		case <-j.ctx.Done():
			return cfgCanceled, ""
		}
	}
	defer func() {
		s.fmu.Lock()
		delete(s.flights, h)
		s.fmu.Unlock()
		close(ch)
	}()

	res, err := vsnoop.RunCtx(j.ctx, j.configs[i])
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return cfgCanceled, ""
		}
		s.metrics.configsFailed.Add(1)
		s.journalAppend(record{Op: opCfg, ID: j.id, Hash: h, Status: "failed", Err: err.Error()})
		return cfgFailed, err.Error()
	}
	s.metrics.configsComputed.Add(1)
	rec := normalizeRecord(j.configs[i], res)
	if perr := s.store.put(rec); perr != nil {
		// Result computed but not durable: fail the config rather than
		// journal a completion the store cannot back.
		s.metrics.configsFailed.Add(1)
		return cfgFailed, fmt.Sprintf("store: %v", perr)
	}
	s.journalAppend(record{Op: opCfg, ID: j.id, Hash: h, Status: "ok"})
	// Every durable write is a GC trigger: evict oldest-unreferenced
	// records until the store fits its bound again (this job's hashes are
	// live until it terminates, so its own results are never victims).
	s.store.gc(s.liveHashes())
	return cfgComputed, ""
}

// setOutcome records a config's terminal state under the server lock.
func (s *Server) setOutcome(j *jobState, i int, state, errMsg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.outcomes[i].State == cfgPending {
		j.outcomes[i].State = state
		j.outcomes[i].Err = errMsg
		j.done++
	}
}

// journalAppend appends a record, counting it; journal failures after
// admission are surfaced via metrics (the job proceeds — losing a cfg
// record costs one recomputation after a crash, never correctness).
func (s *Server) journalAppend(r record) {
	if err := s.journal.append(r); err == nil {
		s.metrics.journalRecords.Add(1)
	}
}
