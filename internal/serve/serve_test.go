package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vsnoop"
)

// fakeClock is a deterministic injected clock for quota tests.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }
func newFakeClock(start time.Duration) *fakeClock {
	c := &fakeClock{}
	c.ns.Store(int64(start))
	return c
}

// quickConfig returns a config that simulates in tens of milliseconds.
func quickConfig(seed uint64) vsnoop.Config {
	cfg := vsnoop.DefaultConfig()
	cfg.RefsPerVCPU = 800
	cfg.WarmupRefs = 100
	cfg.Seed = seed
	return cfg
}

// slowConfig returns a config that runs long enough to cancel mid-flight.
func slowConfig(seed uint64) vsnoop.Config {
	cfg := vsnoop.DefaultConfig()
	cfg.RefsPerVCPU = 200000
	cfg.WarmupRefs = 1000
	cfg.Seed = seed
	return cfg
}

func newTestServer(t *testing.T, dir string, mut func(*Options)) (*Server, *httptest.Server) {
	t.Helper()
	opts := Options{DataDir: dir, Workers: 2, QueueCap: 8, Now: newFakeClock(time.Hour).now}
	if mut != nil {
		mut(&opts)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJob(t *testing.T, base string, body interface{}) (int, map[string]interface{}) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string, out interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

// waitJob polls until the job reaches a terminal status.
func waitJob(t *testing.T, base, id string, timeout time.Duration) jobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var v jobView
		code := getJSON(t, base+"/v1/jobs/"+id, &v)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: %d", id, code)
		}
		switch v.Status {
		case statusDone, statusFailed, statusCanceled:
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q (%d/%d done)", id, v.Status, v.Done, v.Total)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getRaw(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

func TestSubmitComputeAndServe(t *testing.T) {
	s, ts := newTestServer(t, t.TempDir(), nil)
	defer s.Close()
	cfg := quickConfig(42)

	code, resp := postJob(t, ts.URL, jobRequest{Config: &cfg})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d (%v)", code, resp)
	}
	id := resp["id"].(string)
	v := waitJob(t, ts.URL, id, 30*time.Second)
	if v.Status != statusDone || v.Done != 1 {
		t.Fatalf("job = %+v", v)
	}
	if v.Outcomes[0].State != cfgComputed {
		t.Fatalf("outcome = %+v, want computed", v.Outcomes[0])
	}

	// The served result matches a direct in-process run.
	code, body := getRaw(t, ts.URL+"/v1/results/"+cfg.Hash())
	if code != http.StatusOK {
		t.Fatalf("GET result: %d", code)
	}
	var rec Record
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	direct, err := vsnoop.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Result.ExecCycles != direct.ExecCycles ||
		rec.Result.SnoopsPerTransaction != direct.SnoopsPerTransaction ||
		rec.Result.Transactions != direct.Transactions {
		t.Fatalf("served result diverges from direct run:\nserved: %+v\ndirect: %+v",
			rec.Result, direct)
	}

	// Byte-identical re-serve.
	_, again := getRaw(t, ts.URL+"/v1/results/"+cfg.Hash())
	if !bytes.Equal(body, again) {
		t.Fatal("two GETs of the same result returned different bytes")
	}

	// A second job for the same config is memoized, not recomputed.
	code, resp = postJob(t, ts.URL, jobRequest{Config: &cfg})
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: %d", code)
	}
	v = waitJob(t, ts.URL, resp["id"].(string), 10*time.Second)
	if v.Outcomes[0].State != cfgMemoized {
		t.Fatalf("second run outcome = %+v, want memoized", v.Outcomes[0])
	}
	if got := s.metrics.configsComputed.Load(); got != 1 {
		t.Fatalf("configsComputed = %d, want 1", got)
	}
}

func TestSweepExpansionAndOrder(t *testing.T) {
	s, ts := newTestServer(t, t.TempDir(), nil)
	defer s.Close()
	base := quickConfig(1)
	code, resp := postJob(t, ts.URL, jobRequest{Sweep: &sweepSpec{
		Config: base,
		Seeds:  []uint64{1, 2, 3},
	}})
	if code != http.StatusAccepted {
		t.Fatalf("submit sweep: %d (%v)", code, resp)
	}
	if n := int(resp["total"].(float64)); n != 3 {
		t.Fatalf("total = %d, want 3", n)
	}
	v := waitJob(t, ts.URL, resp["id"].(string), 60*time.Second)
	if v.Status != statusDone || v.Done != 3 {
		t.Fatalf("sweep job = %+v", v)
	}
	// Expansion order is deterministic: seeds in request order.
	for i, seed := range []uint64{1, 2, 3} {
		want := quickConfig(seed)
		if v.Outcomes[i].Hash != want.Hash() {
			t.Fatalf("outcome %d hash mismatch", i)
		}
	}
}

func TestBadRequests(t *testing.T) {
	s, ts := newTestServer(t, t.TempDir(), nil)
	defer s.Close()
	// Neither config nor sweep.
	code, _ := postJob(t, ts.URL, jobRequest{})
	if code != http.StatusBadRequest {
		t.Fatalf("empty request: %d, want 400", code)
	}
	// Unknown workload fails Validate.
	bad := quickConfig(1)
	bad.Workload = "no-such-workload"
	code, _ = postJob(t, ts.URL, jobRequest{Config: &bad})
	if code != http.StatusBadRequest {
		t.Fatalf("invalid config: %d, want 400", code)
	}
	// Malformed hash.
	code, _ = getRaw(t, ts.URL+"/v1/results/nothex")
	if code != http.StatusBadRequest {
		t.Fatalf("bad hash: %d, want 400", code)
	}
	// Unknown but well-formed hash.
	code, _ = getRaw(t, ts.URL+"/v1/results/"+strings.Repeat("ab", 32))
	if code != http.StatusNotFound {
		t.Fatalf("missing result: %d, want 404", code)
	}
}

func TestQuotaShedsWithRetryAfter(t *testing.T) {
	clk := newFakeClock(time.Hour)
	s, ts := newTestServer(t, t.TempDir(), func(o *Options) {
		o.QuotaRate = 1 // one config per second
		o.QuotaBurst = 1
		o.Now = clk.now
	})
	defer s.Close()
	cfg := quickConfig(7)

	code, _ := postJob(t, ts.URL, jobRequest{Tenant: "alice", Config: &cfg})
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	// Bucket empty: immediate resubmit sheds with Retry-After.
	data, _ := json.Marshal(jobRequest{Tenant: "alice", Config: &cfg})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Another tenant is unaffected.
	code, _ = postJob(t, ts.URL, jobRequest{Tenant: "bob", Config: &cfg})
	if code != http.StatusAccepted {
		t.Fatalf("other tenant: %d, want 202", code)
	}
	// After the bucket refills, alice is admitted again.
	clk.advance(2 * time.Second)
	code, _ = postJob(t, ts.URL, jobRequest{Tenant: "alice", Config: &cfg})
	if code != http.StatusAccepted {
		t.Fatalf("post-refill submit: %d, want 202", code)
	}
	if s.metrics.jobsShedQuota.Load() == 0 {
		t.Fatal("quota shed not counted")
	}
}

func TestJobTableBackpressure(t *testing.T) {
	s, ts := newTestServer(t, t.TempDir(), func(o *Options) {
		o.Workers = 1
		o.MaxJobs = 2
	})
	defer s.Close()
	slow := slowConfig(1)
	code, r1 := postJob(t, ts.URL, jobRequest{Config: &slow})
	if code != http.StatusAccepted {
		t.Fatalf("job 1: %d", code)
	}
	slow2 := slowConfig(2)
	code, r2 := postJob(t, ts.URL, jobRequest{Config: &slow2})
	if code != http.StatusAccepted {
		t.Fatalf("job 2: %d", code)
	}
	// Both jobs live, table full: deterministic shed.
	slow3 := slowConfig(3)
	data, _ := json.Marshal(jobRequest{Config: &slow3})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full table submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if s.metrics.jobsShedQueue.Load() == 0 {
		t.Fatal("queue shed not counted")
	}
	// Cancel both; the canceled runs must terminate promptly.
	for _, r := range []map[string]interface{}{r1, r2} {
		id := r["id"].(string)
		req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs/"+id+"/cancel", nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
		v := waitJob(t, ts.URL, id, 30*time.Second)
		if v.Status != statusCanceled {
			t.Fatalf("job %s = %q, want canceled", id, v.Status)
		}
	}
}

func TestHealthReadyMetrics(t *testing.T) {
	s, ts := newTestServer(t, t.TempDir(), nil)
	if code, _ := getRaw(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if code, _ := getRaw(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz: %d", code)
	}
	code, body := getRaw(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, name := range []string{
		"vsnoop_jobs_accepted_total", "vsnoop_jobs_shed_queue_total",
		"vsnoop_queue_depth", "vsnoop_configs_replayed_total",
		"vsnoop_engine_events_total", "vsnoop_engine_sync_windows_total",
	} {
		if !bytes.Contains(body, []byte(name)) {
			t.Errorf("metrics missing %s", name)
		}
	}
	s.Close()
	if code, _ := getRaw(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after Close: %d, want 503", code)
	}
}

// TestJournalTornTail: a crash mid-append leaves a torn line; reopening
// truncates it and keeps every intact record.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/journal"
	j, recs, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal has %d records", len(recs))
	}
	if err := j.append(record{Op: opJob, ID: "j-000001"}); err != nil {
		t.Fatal(err)
	}
	if err := j.append(record{Op: opEnd, ID: "j-000001", Status: statusDone}); err != nil {
		t.Fatal(err)
	}
	j.closeFile()
	// Simulate a torn write: half a line, no newline, bad checksum.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`deadbeef {"op":"job","id":"j-0000`)
	f.Close()
	_, recs, err = openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].ID != "j-000001" || recs[1].Op != opEnd {
		t.Fatalf("replayed %d records: %+v", len(recs), recs)
	}
}

// TestCrashResumeBitIdentical is the acceptance test from the issue: kill
// the server (Abort freezes persistence exactly as kill -9 would) after
// some configs of a sweep completed, restart on the same data directory,
// and require (a) the recovered job to finish, (b) completed configs to be
// served from the store without recomputation, and (c) every result byte
// to equal an uninterrupted golden run's.
func TestCrashResumeBitIdentical(t *testing.T) {
	seeds := []uint64{11, 12, 13, 14, 15, 16}
	base := quickConfig(0)
	sweep := &sweepSpec{Config: base, Seeds: seeds}
	var hashes []string
	for _, cfg := range sweep.expand() {
		hashes = append(hashes, cfg.Hash())
	}

	// Golden: an uninterrupted run in its own data dir.
	golden := make(map[string][]byte)
	{
		s, ts := newTestServer(t, t.TempDir(), nil)
		code, resp := postJob(t, ts.URL, jobRequest{Sweep: sweep})
		if code != http.StatusAccepted {
			t.Fatalf("golden submit: %d", code)
		}
		v := waitJob(t, ts.URL, resp["id"].(string), 120*time.Second)
		if v.Status != statusDone {
			t.Fatalf("golden job: %+v", v)
		}
		for _, h := range hashes {
			code, body := getRaw(t, ts.URL+"/v1/results/"+h)
			if code != http.StatusOK {
				t.Fatalf("golden GET %s: %d", h, code)
			}
			golden[h] = body
		}
		s.Close()
	}

	// Interrupted: same sweep, crash mid-flight.
	dir := t.TempDir()
	var jobID string
	var doneBeforeCrash int
	{
		s, ts := newTestServer(t, dir, func(o *Options) { o.Workers = 1 })
		code, resp := postJob(t, ts.URL, jobRequest{Sweep: sweep})
		if code != http.StatusAccepted {
			t.Fatalf("submit: %d", code)
		}
		jobID = resp["id"].(string)
		// Wait until at least two configs completed, then "kill -9".
		deadline := time.Now().Add(60 * time.Second)
		for {
			var v jobView
			getJSON(t, ts.URL+"/v1/jobs/"+jobID, &v)
			if v.Done >= 2 {
				doneBeforeCrash = v.Done
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("no configs completed before crash point")
			}
			time.Sleep(5 * time.Millisecond)
		}
		s.Abort()
	}

	// Restart on the same directory: the journal resurrects the job.
	{
		s, ts := newTestServer(t, dir, nil)
		defer s.Close()
		v := waitJob(t, ts.URL, jobID, 120*time.Second)
		if v.Status != statusDone || v.Done != len(seeds) {
			t.Fatalf("recovered job: %+v", v)
		}
		replayed, computed := 0, 0
		for _, o := range v.Outcomes {
			switch o.State {
			case cfgReplayed:
				replayed++
			case cfgComputed, cfgMemoized:
				computed++
			default:
				t.Fatalf("unexpected outcome %+v", o)
			}
		}
		if replayed == 0 {
			t.Fatalf("nothing replayed (done before crash: %d)", doneBeforeCrash)
		}
		if computed == 0 {
			t.Fatal("nothing computed after restart: crash happened too late")
		}
		if s.metrics.configsReplayed.Load() == 0 {
			t.Fatal("replay counter is zero")
		}
		// Every result — replayed or freshly computed — is byte-identical
		// to the uninterrupted golden run.
		for _, h := range hashes {
			code, body := getRaw(t, ts.URL+"/v1/results/"+h)
			if code != http.StatusOK {
				t.Fatalf("GET %s after recovery: %d", h, code)
			}
			if !bytes.Equal(body, golden[h]) {
				t.Fatalf("result %s differs from the uninterrupted run", h)
			}
		}
	}
}

// TestSoakConcurrentClients hammers the server with concurrent submitters
// and cancelers; run under -race in CI. It asserts liveness (every job
// reaches a terminal state), bounded-memory accounting, and a healthy
// metrics endpoint afterwards.
func TestSoakConcurrentClients(t *testing.T) {
	clients, perClient := 8, 6
	if testing.Short() {
		clients, perClient = 4, 3
	}
	s, ts := newTestServer(t, t.TempDir(), func(o *Options) {
		o.Workers = 4
		o.QueueCap = 4
		o.MaxJobs = 16
	})
	defer s.Close()

	var mu sync.Mutex
	var ids []string
	var accepted, shed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				cfg := quickConfig(uint64(1000 + c*perClient + i))
				if i%3 == 0 {
					cfg = quickConfig(uint64(1000 + i)) // duplicates: singleflight + memoization
				}
				data, _ := json.Marshal(jobRequest{Tenant: fmt.Sprintf("t%d", c), Config: &cfg})
				resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(data))
				if err != nil {
					t.Error(err)
					return
				}
				var out map[string]interface{}
				json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusAccepted:
					accepted.Add(1)
					id := out["id"].(string)
					mu.Lock()
					ids = append(ids, id)
					mu.Unlock()
					if i%4 == 1 { // forced cancellations
						req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs/"+id+"/cancel", nil)
						if r2, err := http.DefaultClient.Do(req); err == nil {
							r2.Body.Close()
						}
					}
				case http.StatusTooManyRequests:
					shed.Add(1)
				default:
					t.Errorf("submit: unexpected %d", resp.StatusCode)
				}
			}
		}()
	}
	wg.Wait()
	if accepted.Load() == 0 {
		t.Fatal("soak accepted nothing")
	}
	// Liveness: every accepted job terminates. (Evicted jobs 404 — fine.)
	deadline := time.Now().Add(120 * time.Second)
	for _, id := range ids {
		for {
			var v jobView
			code := getJSON(t, ts.URL+"/v1/jobs/"+id, &v)
			if code == http.StatusNotFound ||
				v.Status == statusDone || v.Status == statusFailed || v.Status == statusCanceled {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s never terminated (%+v)", id, v)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if code, _ := getRaw(t, ts.URL+"/metrics"); code != http.StatusOK {
		t.Fatalf("metrics after soak: %d", code)
	}
	t.Logf("soak: accepted=%d shed=%d computed=%d memoized=%d",
		accepted.Load(), shed.Load(),
		s.metrics.configsComputed.Load(), s.metrics.configsMemoized.Load())
}

// TestStoreGCSkipsReferenced exercises the eviction policy at the store
// level: oldest-first victim selection that never touches a hash a live
// job still references.
func TestStoreGCSkipsReferenced(t *testing.T) {
	st, err := openStore(t.TempDir()+"/results", 1)
	if err != nil {
		t.Fatal(err)
	}
	h := func(c byte) string { return strings.Repeat(string(c), 64) }
	for _, c := range []byte{'1', '2', '3'} {
		if err := st.put(Record{Hash: h(c), Result: &vsnoop.Result{}}); err != nil {
			t.Fatal(err)
		}
	}
	one := st.sizes[h('1')]
	if one == 0 {
		t.Fatal("record size not accounted")
	}
	st.maxBytes = 2 * one
	// Oldest (h1) is referenced: the GC must step over it and evict h2.
	st.gc(map[string]bool{h('1'): true})
	if _, err := os.Stat(st.path(h('1'))); err != nil {
		t.Fatalf("referenced oldest record was evicted: %v", err)
	}
	if _, err := os.Stat(st.path(h('2'))); !os.IsNotExist(err) {
		t.Fatal("oldest unreferenced record survived GC")
	}
	if _, err := os.Stat(st.path(h('3'))); err != nil {
		t.Fatalf("newest record was evicted: %v", err)
	}
	if got := st.evictions.Load(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if st.bytes() != 2*one {
		t.Fatalf("accounted bytes = %d, want %d", st.bytes(), 2*one)
	}
}

// TestStoreGCEvictsOldestUnreferenced is the end-to-end satellite test: a
// size-bounded server evicts the oldest finished results as new ones are
// computed, exposes the eviction counter on /metrics, and recomputes an
// evicted result bit-identically on the next request (determinism makes
// eviction a pure cache decision).
func TestStoreGCEvictsOldestUnreferenced(t *testing.T) {
	first := quickConfig(21)
	res, err := vsnoop.Run(first)
	if err != nil {
		t.Fatal(err)
	}
	rec := normalizeRecord(first, res)
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	// Room for ~3.5 records: five sequential jobs must force evictions.
	limit := 7 * int64(len(data)+1) / 2

	s, ts := newTestServer(t, t.TempDir(), func(o *Options) {
		o.Workers = 1
		o.StoreMaxBytes = limit
	})
	defer s.Close()

	var firstServed []byte
	for _, sd := range []uint64{21, 22, 23, 24, 25} {
		cfg := quickConfig(sd)
		code, resp := postJob(t, ts.URL, jobRequest{Config: &cfg})
		if code != http.StatusAccepted {
			t.Fatalf("seed %d submit: %d", sd, code)
		}
		v := waitJob(t, ts.URL, resp["id"].(string), 60*time.Second)
		if v.Status != statusDone {
			t.Fatalf("seed %d job: %+v", sd, v)
		}
		if sd == 21 {
			if code, body := getRaw(t, ts.URL+"/v1/results/"+cfg.Hash()); code == http.StatusOK {
				firstServed = body
			} else {
				t.Fatalf("GET fresh result: %d", code)
			}
		}
	}
	if code, _ := getRaw(t, ts.URL+"/v1/results/"+first.Hash()); code != http.StatusNotFound {
		t.Fatalf("oldest result after five jobs: %d, want 404 (evicted)", code)
	}
	if code, _ := getRaw(t, ts.URL+"/v1/results/"+quickConfig(25).Hash()); code != http.StatusOK {
		t.Fatalf("newest result: %d, want 200", code)
	}
	if s.store.evictions.Load() == 0 {
		t.Fatal("no evictions counted")
	}
	if b := s.store.bytes(); b > limit {
		t.Fatalf("store holds %d bytes, bound is %d", b, limit)
	}
	_, mb := getRaw(t, ts.URL+"/metrics")
	for _, name := range []string{"vsnoop_store_evictions_total", "vsnoop_store_bytes"} {
		if !bytes.Contains(mb, []byte(name)) {
			t.Errorf("metrics missing %s", name)
		}
	}

	// The evicted config recomputes — and serves the exact bytes the first
	// computation served.
	code, resp := postJob(t, ts.URL, jobRequest{Config: &first})
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: %d", code)
	}
	v := waitJob(t, ts.URL, resp["id"].(string), 60*time.Second)
	if v.Outcomes[0].State != cfgComputed {
		t.Fatalf("evicted config outcome = %+v, want computed", v.Outcomes[0])
	}
	_, again := getRaw(t, ts.URL+"/v1/results/"+first.Hash())
	if !bytes.Equal(firstServed, again) {
		t.Fatal("recomputed result differs from the originally served bytes")
	}
}

// TestStoreGCStartupRecovery covers the crash-during-eviction story: a
// crash can leave the store oversized (evictions stopped mid-batch) and
// can leave a .tmp from an interrupted write. Each eviction is one atomic
// unlink, so restart recovery is a pure directory scan: temp files are
// dropped, accounting is rebuilt from what survived, and the first GC
// trims back under the bound oldest-mtime-first.
func TestStoreGCStartupRecovery(t *testing.T) {
	dir := t.TempDir()
	results := dir + "/results"
	if err := os.MkdirAll(results, 0o755); err != nil {
		t.Fatal(err)
	}
	h := func(c byte) string { return strings.Repeat(string(c), 64) }
	body := bytes.Repeat([]byte("x"), 1000)
	for i, c := range []byte{'1', '2', '3', '4'} {
		p := results + "/" + h(c) + ".json"
		if err := os.WriteFile(p, body, 0o644); err != nil {
			t.Fatal(err)
		}
		// Pin distinct mtimes so the scan's oldest-first order is exact.
		mt := time.Unix(1_700_000_000+int64(i), 0)
		if err := os.Chtimes(p, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	stray := results + "/" + h('5') + ".json.tmp"
	if err := os.WriteFile(stray, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, ts := newTestServer(t, dir, func(o *Options) { o.StoreMaxBytes = 2500 })
	defer s.Close()
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatal("interrupted-write temp file survived restart")
	}
	for _, c := range []byte{'1', '2'} {
		if code, _ := getRaw(t, ts.URL+"/v1/results/"+h(c)); code != http.StatusNotFound {
			t.Fatalf("oldest record %c: %d, want 404 (trimmed at startup)", c, code)
		}
	}
	for _, c := range []byte{'3', '4'} {
		code, got := getRaw(t, ts.URL+"/v1/results/"+h(c))
		if code != http.StatusOK || !bytes.Equal(got, body) {
			t.Fatalf("surviving record %c: code %d, bytes equal %v", c, code, bytes.Equal(got, body))
		}
	}
	if got := s.store.evictions.Load(); got != 2 {
		t.Fatalf("startup evictions = %d, want 2", got)
	}
	if got := s.store.bytes(); got != 2000 {
		t.Fatalf("accounted bytes = %d, want 2000", got)
	}
}

// TestModeOverrideBitIdentical: a server forcing -mode timewarp stores and
// serves exactly the bytes a mode-less computation produces — Mode is an
// execution mechanic outside the hash and the normalized record.
func TestModeOverrideBitIdentical(t *testing.T) {
	cfg := quickConfig(51)
	s, ts := newTestServer(t, t.TempDir(), func(o *Options) {
		o.Mode = "timewarp"
		o.Shards = 4
	})
	defer s.Close()
	code, resp := postJob(t, ts.URL, jobRequest{Config: &cfg})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	v := waitJob(t, ts.URL, resp["id"].(string), 60*time.Second)
	if v.Status != statusDone || v.Outcomes[0].State != cfgComputed {
		t.Fatalf("job: %+v", v)
	}
	code, body := getRaw(t, ts.URL+"/v1/results/"+cfg.Hash())
	if code != http.StatusOK {
		t.Fatalf("GET result: %d", code)
	}
	res, err := vsnoop.Run(cfg) // serial, historical dispatch
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.MarshalIndent(normalizeRecord(cfg, res), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, append(want, '\n')) {
		t.Fatal("timewarp-forced server result differs from a serial run's record")
	}
}
