// Package serve implements the vsnoop simulation service: a long-running
// HTTP/JSON daemon that schedules single-config and sweep jobs over the
// deterministic simulator, engineered to survive overload and crashes.
//
// The robustness design rests on four pieces, each in its own file:
//
//   - journal.go: an append-only, fsync'd, checksummed job journal. Every
//     accepted job, every completed config, and every job termination is a
//     journal record, durable before the action is acknowledged. A restart
//     replays the journal: finished work is re-served from the store,
//     unfinished jobs are resubmitted.
//   - store.go: a content-addressed result store keyed by the canonical
//     vsnoop.Config.Hash(). Determinism makes the key sound: equal hashes
//     mean bit-identical results, so a store hit IS the result.
//   - quota.go: per-tenant token buckets — the admission-control half of
//     backpressure (the other half is the bounded runner.Pool queue).
//   - metrics.go: atomic counters exposed in Prometheus text format.
//
// The package is lint-classified "deterministic-only": maprange and
// wallclock gate it (no map iteration, no ambient clock — time is injected
// via Options.Now), while the goroutine-heavy server machinery is exempt
// from the sim-only shardsafe/hotalloc passes.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"vsnoop"
)

// Journal record operations.
const (
	opJob = "job" // a job was accepted: ID, Tenant, Configs, Hashes
	opCfg = "cfg" // one config of a job finished: ID, Hash, Status[, Err]
	opEnd = "end" // a job terminated: ID, Status
)

// record is one journal entry. A job's lifecycle is one opJob record, one
// opCfg record per finished config (in completion order), and one opEnd
// record. opCfg records follow the matching store write, so during replay
// an opCfg with Status "ok" implies the result file exists.
type record struct {
	Op      string          `json:"op"`
	ID      string          `json:"id,omitempty"`
	Tenant  string          `json:"tenant,omitempty"`
	Configs []vsnoop.Config `json:"configs,omitempty"`
	Hashes  []string        `json:"hashes,omitempty"`
	Hash    string          `json:"hash,omitempty"`
	Status  string          `json:"status,omitempty"`
	Err     string          `json:"err,omitempty"`
}

// journal is the append-only durable log. Each line is
//
//	%08x <json>\n
//
// where the hex prefix is the IEEE CRC-32 of the JSON payload. Appends are
// fsync'd before returning, so an acknowledged record survives kill -9; a
// torn final line (crash mid-write) fails its checksum and is truncated
// away on the next open. Records never contain raw newlines (encoding/json
// escapes control characters), so line framing is unambiguous.
type journal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	frozen atomic.Bool // Abort(): simulate kill -9 — suppress all writes
}

// openJournal opens (creating if absent) the journal at path, replays every
// intact record, truncates any torn tail, and leaves the file positioned
// for appends.
func openJournal(path string) (*journal, []record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	recs, good := parseJournal(data)
	if good < int64(len(data)) {
		// Torn or corrupt tail: drop it. Everything after the last intact
		// record was never acknowledged to any client.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &journal{f: f, path: path}, recs, nil
}

// parseJournal decodes records until the first framing or checksum error,
// returning the intact records and the byte offset of the first bad line.
func parseJournal(data []byte) ([]record, int64) {
	var recs []record
	off := int64(0)
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // torn final line
		}
		line := data[:nl]
		if len(line) < 10 || line[8] != ' ' {
			break
		}
		var sum uint32
		if _, err := fmt.Sscanf(string(line[:8]), "%08x", &sum); err != nil {
			break
		}
		payload := line[9:]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		var r record
		if err := json.Unmarshal(payload, &r); err != nil {
			break
		}
		recs = append(recs, r)
		data = data[nl+1:]
		off += int64(nl) + 1
	}
	return recs, off
}

// append marshals, checksums, writes, and fsyncs one record. The record is
// durable when append returns nil.
func (j *journal) append(r record) error {
	if j.frozen.Load() {
		return fmt.Errorf("journal: frozen (server aborted)")
	}
	payload, err := json.Marshal(r)
	if err != nil {
		return err
	}
	line := fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(payload), payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.frozen.Load() {
		return fmt.Errorf("journal: frozen (server aborted)")
	}
	if _, err := j.f.WriteString(line); err != nil {
		return err
	}
	return j.f.Sync()
}

// rewrite atomically replaces the journal contents with recs (startup
// compaction: finished jobs' records are dropped; their results stay in the
// content-addressed store). Write-temp + fsync + rename + dir-fsync, the
// same crash-atomic pattern as store writes.
func (j *journal) rewrite(recs []record) error {
	tmp := j.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	for _, r := range recs {
		payload, err := json.Marshal(r)
		if err != nil {
			f.Close()
			return err
		}
		if _, err := fmt.Fprintf(f, "%08x %s\n", crc32.ChecksumIEEE(payload), payload); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := os.Rename(tmp, j.path); err != nil {
		return err
	}
	if err := syncDir(filepath.Dir(j.path)); err != nil {
		return err
	}
	old := j.f
	nf, err := os.OpenFile(j.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.f = nf
	old.Close()
	return nil
}

// freeze suppresses all further writes, simulating the moment of a kill
// -9: whatever is on disk now is exactly what a restart will see.
func (j *journal) freeze() { j.frozen.Store(true) }

func (j *journal) closeFile() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// syncDir fsyncs a directory so a rename into it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
