package system

// Optimistic (timewarp) execution support: machineState adapts the
// machine's per-domain model state to sim.ShardState, so the sharded
// engine's breathing-time-buckets mode can checkpoint, roll back, and
// commit model state alongside its own event queues.
//
// The checkpoint of one domain is a flat-slice copy of everything its
// events mutate at runtime: the statistics value, the vCPU structs it owns
// (via the vlist maintained by the depart/arrive handlers), the caches,
// TLBs, and coherence controllers of its cores, its corner memory
// controllers, its mesh link arbitration and traffic slot, its filter
// replica (syncMode), its own/fwd location rows, the holder-probe registry
// state, and — for domain 0 — the mapper, the inflight table, and the
// shuffle RNG. Insert-only structures (the COW overlay) and cross-epoch
// logs (the arrival log) checkpoint as marks into undo logs instead of
// full copies.
//
// Restore ordering is load-bearing: arrivals are undone newest-first
// BEFORE the checkpointed vlists are restored. A vCPU that both departed
// and arrived inside one epoch appears in the departing domain's saved
// vlist AND in the shard's arrival log; undoing the arrival first rewinds
// it to its in-flight (post-depart) state, and the vlist restore then
// rewinds it to the checkpoint. A vCPU that was in flight at the
// checkpoint (committed depart, speculative arrive) appears only in the
// log, and the undo alone restores it. The log is per shard, not per
// domain, because a chain of moves across domains of one shard can execute
// within a single epoch and must unwind in reverse execution order — which
// the shard's single goroutine records chronologically for free.

import (
	"vsnoop/internal/cache"
	"vsnoop/internal/core"
	"vsnoop/internal/hv"
	"vsnoop/internal/memctrl"
	"vsnoop/internal/mesh"
	"vsnoop/internal/sim"
	"vsnoop/internal/tlb"
	"vsnoop/internal/token"
	"vsnoop/internal/workload"
)

// arriveSave is one entry of a shard's arrival undo log: the vCPU and its
// complete pre-arrival state, captured by handleArrive before any mutation.
//
//vsnoop:owned
type arriveSave struct {
	v   *vcpu
	st  vcpu
	gen workload.GenState
}

// vcpuSave is one owned vCPU's checkpointed state (the struct is flat —
// pointers in it are identities, not owned sub-state).
type vcpuSave struct {
	v   *vcpu
	st  vcpu
	gen workload.GenState
}

// probeSave is the source-domain-owned state of one registered holder
// probe. The identity fields (addr/vm/srcDom) are rewritten on every
// allocation before any reader can see them, so they need no checkpoint.
type probeSave struct {
	remaining int
	bits      uint64
}

// domSnap is one domain's checkpoint. Buffers are reused across saves, so
// steady-state checkpointing allocates only when a footprint grows.
//
//vsnoop:owned
type domSnap struct {
	st       Stats
	live     int
	warmLeft int
	warmed   bool

	vs      []vcpuSave
	cowMark int

	probeFree []int32
	probeSt   []probeSave

	ownRow []bool
	fwdRow []int32

	waitq [][]*vcpu
	l1    []cache.Snap
	l2    []cache.Snap
	tlbs  []tlb.Snap
	ctrls []token.CtrlSnap
	mcs   []memctrl.Snap

	mesh   mesh.DomainSnap
	filter core.FilterSnap

	// Domain-0 extras (syncMode): the mapper, migration bookkeeping, and
	// the shuffle RNG are owned by the shard hosting domain 0.
	mapper   hv.MapperSnap
	inflight []bool
	retired  int
	shufRng  sim.Rand
}

// shardSnap is one checkpoint slot of one shard: its domains' snapshots
// plus the arrival-log mark.
type shardSnap struct {
	doms       []domSnap
	arriveMark int
}

// machineState implements sim.ShardState over the machine. Every method
// runs on the shard's own goroutine in a barrier-separated phase, touching
// only state that shard's domains own.
type machineState struct {
	m      *Machine
	domsOf [][]int     // shard -> indices of the domains it executes
	snaps  [][]*shardSnap
}

// newMachineState builds the adapter and the per-shard arrival logs.
func newMachineState(m *Machine) *machineState {
	k := m.sharded.Shards()
	ms := &machineState{m: m, domsOf: make([][]int, k), snaps: make([][]*shardSnap, k)}
	for d := range m.doms {
		s := int(m.domShard[d])
		ms.domsOf[s] = append(ms.domsOf[s], d)
	}
	m.twLog = make([][]arriveSave, k)
	return ms
}

// Save checkpoints shard's model state into the given slot.
func (ms *machineState) Save(shard, slot int) {
	for len(ms.snaps[shard]) <= slot {
		ms.snaps[shard] = append(ms.snaps[shard], &shardSnap{})
	}
	sn := ms.snaps[shard][slot]
	sn.arriveMark = len(ms.m.twLog[shard])
	if len(sn.doms) != len(ms.domsOf[shard]) {
		sn.doms = make([]domSnap, len(ms.domsOf[shard]))
	}
	for i, di := range ms.domsOf[shard] {
		ms.m.saveDomain(ms.m.doms[di], &sn.doms[i])
	}
}

// Restore rewinds shard's model state to the given slot: undo logged
// arrivals newest-first down to the slot's mark, then restore each owned
// domain's checkpoint.
func (ms *machineState) Restore(shard, slot int) {
	m := ms.m
	sn := ms.snaps[shard][slot]
	log := m.twLog[shard]
	for i := len(log) - 1; i >= sn.arriveMark; i-- {
		e := &log[i]
		*e.v = e.st
		e.v.gen.(*workload.Generator).SetState(e.gen)
	}
	m.twLog[shard] = log[:sn.arriveMark]
	for i, di := range ms.domsOf[shard] {
		m.restoreDomain(m.doms[di], &sn.doms[i])
	}
}

// Commit truncates the epoch-local undo logs: everything below the commit
// horizon is final, so the arrival log, the COW insert logs, and the
// cache/memory-controller checkpoint journals all reset (the journals also
// disarm until the next epoch-base Save).
func (ms *machineState) Commit(shard int) {
	m := ms.m
	m.twLog[shard] = m.twLog[shard][:0]
	for _, di := range ms.domsOf[shard] {
		d := m.doms[di]
		d.cowLog = d.cowLog[:0]
		for _, ci := range d.cores {
			cn := m.cores[ci]
			cn.l1.CommitSnap()
			cn.l2.CommitSnap()
			cn.tlb.CommitSnap()
		}
		for _, mi := range d.mcs {
			m.mcs[mi].CommitSnap()
		}
	}
}

// saveDomain copies domain d's mutable state into s.
func (m *Machine) saveDomain(d *domain, s *domSnap) {
	s.st = *d.st
	s.live, s.warmLeft, s.warmed = d.live, d.warmLeft, d.warmed

	s.vs = s.vs[:0]
	for _, v := range d.vlist {
		s.vs = append(s.vs, vcpuSave{v: v, st: *v, gen: v.gen.(*workload.Generator).State()})
	}
	s.cowMark = len(d.cowLog)

	s.probeFree = s.probeFree[:0]
	for _, p := range d.probes {
		s.probeFree = append(s.probeFree, p.idx)
	}
	s.probeSt = s.probeSt[:0]
	for _, p := range d.allProbes {
		s.probeSt = append(s.probeSt, probeSave{remaining: p.remaining, bits: p.bits})
	}

	row := int(d.idx) * m.nv
	s.ownRow = append(s.ownRow[:0], m.own[row:row+m.nv]...)
	s.fwdRow = append(s.fwdRow[:0], m.fwd[row:row+m.nv]...)

	nc := len(d.cores)
	if len(s.waitq) != nc {
		s.waitq = make([][]*vcpu, nc)
		s.l1 = make([]cache.Snap, nc)
		s.l2 = make([]cache.Snap, nc)
		s.tlbs = make([]tlb.Snap, nc)
		s.ctrls = make([]token.CtrlSnap, nc)
	}
	for i, ci := range d.cores {
		cn := m.cores[ci]
		s.waitq[i] = append(s.waitq[i][:0], cn.waitq...)
		cn.l1.Save(&s.l1[i])
		cn.l2.Save(&s.l2[i])
		cn.tlb.Save(&s.tlbs[i])
		cn.ctrl.Save(&s.ctrls[i])
	}
	if len(s.mcs) != len(d.mcs) {
		s.mcs = make([]memctrl.Snap, len(d.mcs))
	}
	for i, mi := range d.mcs {
		m.mcs[mi].Save(&s.mcs[i])
	}
	m.Net.SaveDomain(int(d.idx), &s.mesh)
	if m.replicas != nil {
		m.replicas[d.idx].Save(&s.filter)
	}
	if d.idx == 0 && m.syncMode {
		m.Mapper.Save(&s.mapper)
		s.inflight = append(s.inflight[:0], m.inflight...)
		s.retired = m.retired
		if m.shufRng != nil {
			s.shufRng = *m.shufRng
		}
	}
}

// restoreDomain rewinds domain d to the state captured by saveDomain.
// Registry entries beyond the checkpoint (probes first allocated during
// rolled-back speculation) keep their current fields: a deterministic
// replay either re-pops the same freelist sequence (so the fields are
// rewritten identically) or never reaches them again before the next
// allocation overwrites them.
func (m *Machine) restoreDomain(d *domain, s *domSnap) {
	*d.st = s.st
	d.live, d.warmLeft, d.warmed = s.live, s.warmLeft, s.warmed

	d.vlist = d.vlist[:0]
	for i := range s.vs {
		sv := &s.vs[i]
		*sv.v = sv.st
		sv.v.gen.(*workload.Generator).SetState(sv.gen)
		d.vlist = append(d.vlist, sv.v)
	}
	for i := len(d.cowLog) - 1; i >= s.cowMark; i-- {
		delete(d.cow, d.cowLog[i])
	}
	d.cowLog = d.cowLog[:s.cowMark]

	for i := range s.probeSt {
		p := d.allProbes[i]
		p.remaining, p.bits = s.probeSt[i].remaining, s.probeSt[i].bits
	}
	d.probes = d.probes[:0]
	for _, ix := range s.probeFree {
		d.probes = append(d.probes, d.allProbes[ix])
	}

	row := int(d.idx) * m.nv
	copy(m.own[row:row+m.nv], s.ownRow)
	copy(m.fwd[row:row+m.nv], s.fwdRow)

	for i, ci := range d.cores {
		cn := m.cores[ci]
		cn.waitq = append(cn.waitq[:0], s.waitq[i]...)
		cn.l1.Restore(&s.l1[i])
		cn.l2.Restore(&s.l2[i])
		cn.tlb.Restore(&s.tlbs[i])
		cn.ctrl.Restore(&s.ctrls[i])
	}
	for i, mi := range d.mcs {
		m.mcs[mi].Restore(&s.mcs[i])
	}
	m.Net.RestoreDomain(int(d.idx), &s.mesh)
	if m.replicas != nil {
		m.replicas[d.idx].Restore(&s.filter)
	}
	if d.idx == 0 && m.syncMode {
		m.Mapper.Restore(&s.mapper)
		copy(m.inflight, s.inflight)
		m.retired = s.retired
		if m.shufRng != nil {
			*m.shufRng = s.shufRng
		}
	}
}

// snapshotSupported reports whether the machine's configuration is within
// the optimistic engine's checkpoint coverage: token protocol, no
// RegionScout, no online invariant checker or fault plan (both observe
// conservative window boundaries), synthetic reference streams, and —
// outside syncMode — a filter policy whose shared register file is
// runtime-read-only (base/broadcast; the counter policies mutate residence
// state through a single shared filter there).
func (m *Machine) snapshotSupported() bool {
	if m.sharded == nil || m.cfg.Directory || m.cfg.UseRegionScout {
		return false
	}
	if m.Checker != nil || m.Injector != nil {
		return false
	}
	if !m.syncMode {
		switch m.cfg.Filter.Policy {
		case core.PolicyBroadcast, core.PolicyBase:
		default:
			return false
		}
	}
	for _, v := range m.vcpus {
		if _, ok := v.gen.(*workload.Generator); !ok {
			return false
		}
	}
	return true
}

// resolveMode maps the config's engine selection to the sharded engine's
// mode. "windowed" and "adaptive" pin the conservative engines;
// "timewarp" requests the optimistic engine and falls back to the
// historical dispatch when the configuration is outside checkpoint
// coverage (the conservative result is identical by construction, so the
// fallback is silent); "auto" picks the optimistic engine exactly where
// the planner's horizon estimate predicts it wins — multiple shards whose
// cross-domain lookahead sits at the mesh floor while cross-shard filter
// traffic (syncMode) forces the conservative engines into lockstep. The
// default ("") preserves the historical dispatch unchanged.
func (m *Machine) resolveMode() sim.Mode {
	if m.sharded == nil {
		return sim.ModeAuto
	}
	switch m.cfg.Mode {
	case "windowed":
		return sim.ModeWindowed
	case "adaptive":
		return sim.ModeAdaptive
	case "timewarp":
		if m.snapshotSupported() {
			return sim.ModeTimewarp
		}
		return sim.ModeAuto
	case "auto":
		if m.snapshotSupported() && m.sharded.Shards() >= 2 && m.syncMode {
			min := m.crossHor[0]
			for _, h := range m.crossHor {
				if h < min {
					min = h
				}
			}
			if min <= 4*m.Net.MinCrossLatency() {
				return sim.ModeTimewarp
			}
		}
		return sim.ModeAuto
	default:
		return sim.ModeAuto
	}
}
