package system

import (
	"fmt"
	"strings"

	"vsnoop/internal/mesh"
	"vsnoop/internal/partition"
	"vsnoop/internal/sim"
)

// initialPlacement returns the VM initially running on each core (row-major,
// -1 = idle), replicating placeVMs as a pure function of the config so the
// partition planner sees the same geometry the machine builds.
func (c Config) initialPlacement() []int {
	group := make([]int, c.Cores)
	for i := range group {
		group[i] = -1
	}
	if !c.LinearPlacement && c.Cores == 16 && c.VMs <= 4 && c.VCPUsPerVM == 4 && c.Mesh.Width == 4 {
		for vm := 0; vm < c.VMs; vm++ {
			x0, y0 := 2*(vm%2), 2*(vm/2)
			for idx := 0; idx < 4; idx++ {
				x, y := x0+idx%2, y0+idx/2
				group[y*4+x] = vm
			}
		}
		return group
	}
	c2 := 0
	for vm := 0; vm < c.VMs; vm++ {
		for idx := 0; idx < c.VCPUsPerVM; idx++ {
			group[c2] = vm
			c2++
		}
	}
	return group
}

// mcCorners returns the mesh coordinates of the configured memory
// controllers (the first MCs corners, matching machine wiring).
func (c Config) mcCorners() [][2]int {
	all := [4][2]int{
		{0, 0},
		{c.Mesh.Width - 1, 0},
		{0, c.Mesh.Height - 1},
		{c.Mesh.Width - 1, c.Mesh.Height - 1},
	}
	return append([][2]int(nil), all[:c.MCs]...)
}

// plannerFriends estimates content-sharing affinity for the planner: under
// ContentSharing, VMs running the same workload profile share pages, so
// adjacent same-profile VM pairs attract. This is a placement hint only —
// the cross-domain content protocol is correct for any cut.
func (c Config) plannerFriends() map[int]int {
	if !c.ContentSharing {
		return nil
	}
	friends := make(map[int]int)
	for vm := 0; vm+1 < c.VMs; vm += 2 {
		if c.workloadFor(vm) == c.workloadFor(vm+1) {
			friends[vm] = vm + 1
			friends[vm+1] = vm
		}
	}
	return friends
}

// PlanPartition computes the snoop-domain partition for this configuration.
// The plan is a pure function of the config (never of Shards), so the
// domain decomposition — and therefore the simulated event order — is fixed
// before any goroutine count is chosen. Domains == 1 means the run uses the
// single-queue legacy engine.
func (c Config) PlanPartition() partition.Plan {
	if c.ForceSerial || c.Cores <= 1 {
		return partition.Plan{Domains: 1, GX: 1, GY: 1}
	}
	return partition.Compute(partition.Input{
		Width:     c.Mesh.Width,
		Height:    c.Mesh.Height,
		CoreGroup: c.initialPlacement(),
		Friends:   c.plannerFriends(),
		MCCorner:  c.mcCorners(),
	})
}

// needSync reports whether the partitioned machine must replicate and
// synchronize snoop-filter state across domains: vCPU migration, a VM
// placement spanning domains, or scheduled fault events can all move or
// mutate per-VM registration outside its home domain. When false, every
// VM's filter state is written only from its own domain and the single
// shared filter of the legacy engine remains safe (and byte-identical).
func (c Config) needSync(p partition.Plan) bool {
	return c.MigrationPeriodMs != 0 || p.SpansVM || len(c.faultEvents()) > 0
}

// PartitionInfo renders the computed partition for the -dump-partition
// debug flag: the domain grid, cut summary, per-MC assignment, and the
// per-domain cross-shard horizons the synchronization protocol will use.
func (c Config) PartitionInfo() string {
	p := c.PlanPartition()
	var b strings.Builder
	b.WriteString(p.String())
	if p.Domains <= 1 {
		b.WriteString("  engine: serial (single domain)\n")
		return b.String()
	}
	// Horizons come from the mesh, which derives them from the cut. Build a
	// throwaway network with the plan's node->domain map to report them.
	nw := mesh.New(sim.NewEngine(), c.Mesh)
	nodeDom := make([]int32, 0, c.Cores+c.MCs)
	for y := 0; y < c.Mesh.Height; y++ {
		for x := 0; x < c.Mesh.Width; x++ {
			nw.Attach(x, y, nil)
			nodeDom = append(nodeDom, p.CoreDom[y*c.Mesh.Width+x])
		}
	}
	for j, corner := range c.mcCorners() {
		nw.Attach(corner[0], corner[1], nil)
		nodeDom = append(nodeDom, p.MCDom[j])
	}
	engs := make([]*sim.Engine, p.Domains)
	for i := range engs {
		engs[i] = sim.NewEngine()
	}
	nw.Partition(nodeDom, engs)
	for d, h := range nw.CrossHorizons() {
		fmt.Fprintf(&b, "  domain %d horizon %d cycle(s)\n", d, h)
	}
	fmt.Fprintf(&b, "  filter sync: %v\n", c.needSync(p))
	return b.String()
}
