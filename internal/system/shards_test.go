package system

import (
	"fmt"
	"reflect"
	"testing"

	"vsnoop/internal/core"
	"vsnoop/internal/fault"
)

// statsEqual compares every exported field of two statistics records,
// treating the latency sample and removal-period CDF through their summary
// accessors (their internals hold equivalent but unexported state). Sync is
// skipped: it reports execution mechanics (windows, barriers, elisions) that
// depend on the shard count and synchronization mode by design, while every
// simulation statistic must stay bit-identical across them.
func statsEqual(t *testing.T, label string, a, b *Stats) {
	t.Helper()
	va, vb := reflect.ValueOf(*a), reflect.ValueOf(*b)
	tp := va.Type()
	for i := 0; i < tp.NumField(); i++ {
		f := tp.Field(i)
		if f.PkgPath != "" || f.Name == "RemovalPeriods" || f.Name == "MissLatency" ||
			f.Name == "Sync" {
			continue
		}
		if !reflect.DeepEqual(va.Field(i).Interface(), vb.Field(i).Interface()) {
			t.Errorf("%s: field %s differs: %v vs %v",
				label, f.Name, va.Field(i).Interface(), vb.Field(i).Interface())
		}
	}
	if a.MissLatency.N() != b.MissLatency.N() || a.MissLatency.Mean() != b.MissLatency.Mean() {
		t.Errorf("%s: miss latency differs: %d/%v vs %d/%v", label,
			a.MissLatency.N(), a.MissLatency.Mean(), b.MissLatency.N(), b.MissLatency.Mean())
	}
	an, bn := 0, 0
	if a.RemovalPeriods != nil {
		an = a.RemovalPeriods.N()
	}
	if b.RemovalPeriods != nil {
		bn = b.RemovalPeriods.N()
	}
	if an != bn {
		t.Errorf("%s: removal periods differ: %d vs %d", label, an, bn)
	}
}

// TestShardCountBitIdentical is the core guarantee of the parallel engine:
// for every snoop policy x content policy, running with 1, 2, or 4 shards
// produces statistics identical to the serial run. The semantic event order
// is fixed by the configuration alone; the shard count only picks how many
// goroutines execute it.
func TestShardCountBitIdentical(t *testing.T) {
	policies := []core.Policy{
		core.PolicyBroadcast, core.PolicyBase, core.PolicyCounter,
		core.PolicyCounterThreshold, core.PolicyCounterFlush,
	}
	contents := []core.ContentPolicy{
		core.ContentBroadcast, core.ContentMemoryDirect,
		core.ContentIntraVM, core.ContentFriendVM,
	}
	for _, pol := range policies {
		for _, con := range contents {
			pol, con := pol, con
			t.Run(fmt.Sprintf("%v_%v", pol, con), func(t *testing.T) {
				run := func(shards int, noElision bool) *Stats {
					cfg := DefaultConfig()
					cfg.RefsPerVCPU = 1200
					cfg.WarmupRefs = 200
					cfg.Filter.Policy = pol
					cfg.Filter.Content = con
					cfg.Shards = shards
					cfg.NoElision = noElision
					return runCfg(t, cfg)
				}
				serial := run(0, false)
				for _, k := range []int{1, 2, 4} {
					// Elision on (K>1: adaptive free-running) and off
					// (fully-barriered windowed protocol) must both match
					// the serial run exactly; K=1 has a single mode.
					statsEqual(t, fmt.Sprintf("shards=%d", k), serial, run(k, false))
					if k > 1 {
						statsEqual(t, fmt.Sprintf("shards=%d/no-elision", k), serial, run(k, true))
					}
				}
			})
		}
	}
}

// TestShardedFaultBitIdentical extends the guarantee to probabilistic fault
// injection: per-node fault streams make drops, duplicates, and delays a
// function of (seed, node) rather than global arrival order, so a moderate
// fault plan stays bit-identical across shard counts too.
func TestShardedFaultBitIdentical(t *testing.T) {
	run := func(shards int, noElision bool) *Stats {
		cfg := DefaultConfig()
		cfg.RefsPerVCPU = 1500
		cfg.WarmupRefs = 300
		cfg.Filter.Policy = core.PolicyCounter
		cfg.NoHypervisor = true
		cfg.Fault = fault.Moderate(7)
		cfg.Shards = shards
		cfg.NoElision = noElision
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.RunChecked()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	serial := run(0, false)
	if serial.FaultsDropped == 0 && serial.FaultsBounced == 0 && serial.FaultsDelayed == 0 {
		t.Fatal("fault plan injected nothing")
	}
	if serial.InvariantChecks == 0 {
		t.Fatal("checker never ran")
	}
	// Checked runs use the windowed protocol; with elision the barrier-A
	// leader folds quiet windows, without it every window pays both
	// barriers. InvariantChecks is compared too (statsEqual), so the
	// window-boundary sequence itself must be identical in all variants.
	for _, k := range []int{1, 2, 4} {
		statsEqual(t, fmt.Sprintf("shards=%d", k), serial, run(k, false))
		if k > 1 {
			statsEqual(t, fmt.Sprintf("shards=%d/no-elision", k), serial, run(k, true))
		}
	}
}

// TestShardedHypervisorBitIdentical covers the hypervisor/dom0 activity
// paths (shared hv pages are cacheable across quadrants; only their state
// ownership is partitioned).
func TestShardedHypervisorBitIdentical(t *testing.T) {
	run := func(shards int) *Stats {
		cfg := DefaultConfig()
		cfg.RefsPerVCPU = 1200
		cfg.WarmupRefs = 200
		cfg.NoHypervisor = false
		cfg.Shards = shards
		return runCfg(t, cfg)
	}
	serial := run(0)
	for _, k := range []int{2, 4} {
		statsEqual(t, fmt.Sprintf("shards=%d", k), serial, run(k))
	}
}

// TestMigrationBitIdentical pins the tentpole guarantee for the class the
// old quadrant invariant disqualified outright: runtime vCPU migration. The
// shuffler runs as a machine-owned dom0 tick and every relocation is an
// ordered depart/arrive/ack transaction between domains, so the partitioned
// run must stay bit-identical to the single-shard run for every K.
func TestMigrationBitIdentical(t *testing.T) {
	run := func(shards int, noElision bool) *Stats {
		cfg := DefaultConfig()
		cfg.RefsPerVCPU = 1000
		cfg.MigrationPeriodMs = 2
		cfg.CyclesPerMs = 12000
		cfg.Shards = shards
		cfg.NoElision = noElision
		return runCfg(t, cfg)
	}
	serial := run(0, false)
	if serial.Relocations == 0 {
		t.Fatal("migration config relocated nothing")
	}
	if serial.MapSyncs == 0 {
		t.Fatal("relocations synchronized no VM maps")
	}
	for _, k := range []int{1, 2, 4} {
		statsEqual(t, fmt.Sprintf("shards=%d", k), serial, run(k, false))
		if k > 1 {
			statsEqual(t, fmt.Sprintf("shards=%d/no-elision", k), serial, run(k, true))
		}
	}
	// A config the planner cannot cut (single core, or forced serial) still
	// reports a single domain and runs the legacy engine for any Shards.
	if cfg := (Config{}); cfg.Shardable() {
		t.Fatal("zero config must not be shardable")
	}
	forced := DefaultConfig()
	forced.ForceSerial = true
	if forced.Shardable() {
		t.Fatal("ForceSerial config must not be shardable")
	}
}

// TestAdaptiveZeroBarrierWaits is the synchronization-telemetry regression
// test: when nothing observes window boundaries, K>1 runs free-running
// adaptive synchronization and must fire ZERO barrier waits for the whole
// run — execution stretches with no cross-domain traffic never synchronize
// at a barrier at all. The fully-barriered fallback must, by contrast,
// report waits and no elisions.
func TestAdaptiveZeroBarrierWaits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefsPerVCPU = 800
	cfg.Shards = 4
	st := runCfg(t, cfg)
	if st.Sync.BarrierWaits != 0 {
		t.Errorf("adaptive run fired %d barrier waits, want 0", st.Sync.BarrierWaits)
	}
	if st.Sync.Windows == 0 || st.Sync.ElidedBarriers == 0 {
		t.Errorf("adaptive telemetry empty: %+v", st.Sync)
	}
	if st.Sync.MeanWindowWidth() <= 0 {
		t.Errorf("mean window width %v, want > 0", st.Sync.MeanWindowWidth())
	}

	cfg.NoElision = true
	st = runCfg(t, cfg)
	if st.Sync.BarrierWaits == 0 {
		t.Errorf("fully-barriered run reported zero barrier waits: %+v", st.Sync)
	}
	if st.Sync.ElidedBarriers != 0 {
		t.Errorf("NoElision run elided %d barriers, want 0", st.Sync.ElidedBarriers)
	}

	// Windowed mode with elision enabled (an OnWindow observer forces the
	// windowed protocol): quiet windows skip barrier B, so the wait count
	// must come in strictly below the two-barriers-per-window worst case.
	cfg.NoElision = false
	cfg.Checks = true
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err = m.RunChecked()
	if err != nil {
		t.Fatal(err)
	}
	if st.Sync.ElidedBarriers == 0 {
		t.Errorf("windowed run with elision skipped no barriers: %+v", st.Sync)
	}
	worst := 2 * 4 * st.Sync.Windows
	if st.Sync.BarrierWaits >= worst {
		t.Errorf("windowed elision saved nothing: %d waits for %d windows",
			st.Sync.BarrierWaits, st.Sync.Windows)
	}
}

// TestAdaptiveRaceSoak soaks the free-running adaptive protocol under
// -race with heavy cross-domain traffic that needs no synchronized mode:
// hypervisor/dom0 activity layered over counter-threshold filtering.
// Migration (the replicated-filter synchronized mode) gets its own soak in
// TestMigrationStormRaceSoak below.
func TestAdaptiveRaceSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test is slow")
	}
	cfg := DefaultConfig()
	cfg.RefsPerVCPU = 4000
	cfg.WarmupRefs = 500
	cfg.Filter.Policy = core.PolicyCounterThreshold
	cfg.NoHypervisor = false
	cfg.Shards = 4
	serial := runCfg(t, func() Config { c := cfg; c.Shards = 0; return c }())
	st := runCfg(t, cfg)
	statsEqual(t, "adaptive-soak", serial, st)
	if st.Sync.BarrierWaits != 0 {
		t.Errorf("adaptive soak fired %d barrier waits, want 0", st.Sync.BarrierWaits)
	}
	if st.Transactions == 0 || st.EventsFired == 0 {
		t.Fatalf("no activity: %d transactions, %d events", st.Transactions, st.EventsFired)
	}
}

// TestMigrationStormRaceSoak soaks vCPU relocation storms (the cross-VM
// worst case) under -race, now on the partitioned engine: periodic shuffles
// plus storm events drive the depart/arrive/ack transaction and the filter
// replica deltas continuously, with invariant checks forcing the windowed
// protocol. The 4-shard run must match the single-shard run exactly.
func TestMigrationStormRaceSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test is slow")
	}
	run := func(shards int) *Stats {
		cfg := DefaultConfig()
		cfg.RefsPerVCPU = 3000
		cfg.WarmupRefs = 400
		cfg.Filter.Policy = core.PolicyCounter
		cfg.MigrationPeriodMs = 2
		cfg.CyclesPerMs = 12000
		cfg.Fault = fault.Moderate(13)
		cfg.Fault.Events = append(cfg.Fault.Events,
			fault.Event{At: 20000, Kind: fault.EvMigrationStorm, Count: 6},
			fault.Event{At: 60000, Kind: fault.EvMigrationStorm, Count: 6},
		)
		cfg.Shards = shards
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.RunChecked()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	st := run(4)
	if len(st.InvariantViolations) != 0 {
		t.Fatalf("invariants violated: %v", st.InvariantViolations)
	}
	if st.StormRelocations == 0 {
		t.Fatal("storms relocated nothing")
	}
	statsEqual(t, "storm-soak", run(0), st)
}

// TestShardRaceSoak is the data-race soak: a 4-shard run under the moderate
// fault plan with invariant checks, sized to spend real time in the barrier
// protocol. Its value is under -race (the CI soak job); without -race it is
// a cheap smoke test.
func TestShardRaceSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test is slow")
	}
	cfg := DefaultConfig()
	cfg.RefsPerVCPU = 4000
	cfg.WarmupRefs = 500
	cfg.Filter.Policy = core.PolicyCounterThreshold
	cfg.NoHypervisor = true
	cfg.Fault = fault.Moderate(11)
	cfg.Shards = 4
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.RunChecked()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.InvariantViolations) != 0 {
		t.Fatalf("invariants violated: %v", st.InvariantViolations)
	}
	if st.Transactions == 0 || st.EventsFired == 0 {
		t.Fatalf("no activity: %d transactions, %d events", st.Transactions, st.EventsFired)
	}
}
