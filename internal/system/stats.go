package system

import (
	"vsnoop/internal/mem"
	"vsnoop/internal/stats"
	"vsnoop/internal/workload"
)

// Stats aggregates everything the paper's tables and figures need from one
// run. Raw counters are filled during the run; finalizeStats folds in the
// per-controller and network totals.
type Stats struct {
	cfg Config

	// ExecCycles is the cycle at which the last vCPU finished (Figure 6).
	ExecCycles uint64

	// Snoop accounting (Figures 7, 8, 10; Table IV's companion metric).
	SnoopsIssued uint64 // cores snooped per transaction, summed (incl requester)
	SnoopLookups uint64 // external tag lookups performed at caches

	// Network traffic (Table IV).
	ByteHops uint64
	Bytes    uint64
	Messages uint64

	// Protocol totals.
	Transactions uint64
	Retries      uint64
	Persistent   uint64
	Writebacks   uint64
	DRAMReads    uint64
	DRAMWrites   uint64

	// L1 accesses and L2 misses, total and on content-shared pages
	// (Table V), plus the L2 miss decomposition by context (Figure 1).
	L1Accesses        uint64
	L1AccessesContent uint64
	L2Accesses        uint64 // core-side L2 lookups (writes + L1-miss reads)
	L2Misses          uint64
	L2MissesContent   uint64
	L2MissesGuest     uint64
	L2MissesXen       uint64
	L2MissesDom0      uint64

	// Data-holder decomposition for L2 misses on content-shared pages
	// (Table VI): who could have supplied the block at miss time.
	HolderMemory  uint64 // no cache held it
	HolderIntraVM uint64 // a cache of the requesting VM held it
	HolderFriend  uint64 // a cache of the friend VM held it (not intra)
	HolderOther   uint64 // only caches of unrelated VMs held it

	// TLB events (sharing-type lookups happen at translation time).
	TLBHits       uint64
	TLBMisses     uint64
	TLBShootdowns uint64

	// RegionScout counters (populated only with Config.UseRegionScout).
	RegionNSRTHits   uint64
	RegionBroadcasts uint64

	// Directory counters (populated only with Config.Directory).
	DirLookups     uint64
	DirForwards    uint64
	DirInvalidates uint64

	// Hypervisor events.
	Cows     uint64
	MapSyncs uint64

	// Relocation bookkeeping (Figure 9).
	Relocations    uint64
	RemovalPeriods *stats.CDF

	MissLatency stats.Sample

	// Robustness counters (fault injection, graceful degradation, and
	// invariant checking). Whole-run, never warmup-adjusted: faults and
	// checks span the entire run including warmup.
	FaultsDropped       uint64 // transient requests destroyed
	FaultsBounced       uint64 // token-carrying messages redirected home
	FaultsDuplicated    uint64
	FaultsDelayed       uint64
	MapCorruptions      uint64
	CounterCorruptions  uint64
	StormRelocations    uint64
	FallbackCounterAug  uint64 // routes served by the counter-augmented map
	FallbackBroadcast   uint64 // routes served by degradation broadcast
	MapRebuilds         uint64
	CounterUnderflows   uint64
	InvariantChecks     uint64
	InvariantViolations []string

	warm    snapshot
	hasWarm bool
}

// snapshot records every cumulative counter at the end of the warmup
// phase; finalizeStats subtracts it so reported statistics cover only the
// measured (post-warm) phase.
type snapshot struct {
	l1Acc, l1AccC, l2Acc                    uint64
	l2Miss, l2MissC, l2G, l2X, l2D          uint64
	hMem, hIntra, hFriend, hOther           uint64
	snoops, lookups, txns, retries, persist uint64
	writebacks, dramR, dramW                uint64
	byteHops, bytes, messages, cows         uint64
	cycle                                   uint64
}

func (s *Stats) init(cfg Config) { s.cfg = cfg }

// takeSnapshot freezes the warmup-phase counters.
func (m *Machine) takeSnapshot() {
	m.warmed = true
	s := &m.Stats
	w := snapshot{
		l1Acc: s.L1Accesses, l1AccC: s.L1AccessesContent, l2Acc: s.L2Accesses,
		l2Miss: s.L2Misses, l2MissC: s.L2MissesContent,
		l2G: s.L2MissesGuest, l2X: s.L2MissesXen, l2D: s.L2MissesDom0,
		hMem: s.HolderMemory, hIntra: s.HolderIntraVM,
		hFriend: s.HolderFriend, hOther: s.HolderOther,
		byteHops: m.Net.ByteHops, bytes: m.Net.Bytes, messages: m.Net.Messages,
		cows:  m.MM.CowCount,
		cycle: uint64(m.Eng.Now()),
	}
	for _, cn := range m.cores {
		if cn.dctrl != nil {
			w.txns += cn.dctrl.Stats.Transactions
			w.writebacks += cn.dctrl.Stats.Writebacks
			continue
		}
		w.snoops += cn.ctrl.Stats.SnoopsIssued
		w.lookups += cn.ctrl.Stats.SnoopLookups
		w.txns += cn.ctrl.Stats.Transactions
		w.retries += cn.ctrl.Stats.Retries
		w.persist += cn.ctrl.Stats.Persistent
		w.writebacks += cn.ctrl.Stats.Writebacks
	}
	for _, mc := range m.mcs {
		w.dramR += mc.Stats.DRAMReads
		w.dramW += mc.Stats.DRAMWrites
	}
	for _, h := range m.homes {
		w.dramR += h.Stats.DRAMReads
		w.dramW += h.Stats.DRAMWrites
	}
	s.warm = w
	s.hasWarm = true
}

func (s *Stats) recordL1Access(vm mem.VMID, ctx workload.Ctx, pt mem.PageType) {
	s.L1Accesses++
	if pt == mem.PageROShared {
		s.L1AccessesContent++
	}
}

func (s *Stats) recordL2Miss(vm mem.VMID, ctx workload.Ctx, pt mem.PageType) {
	s.L2Misses++
	if pt == mem.PageROShared {
		s.L2MissesContent++
	}
	switch ctx {
	case workload.CtxGuest:
		s.L2MissesGuest++
	case workload.CtxXen:
		s.L2MissesXen++
	case workload.CtxDom0:
		s.L2MissesDom0++
	}
}

// classifyHolder implements the Table VI measurement: at an L2 miss on a
// content-shared page, find the best possible data holder.
func (m *Machine) classifyHolder(addr mem.BlockAddr, vm mem.VMID) {
	st := &m.Stats
	friend, hasFriend := m.MM.FriendOf(vm)
	intra, fr, other := false, false, false
	for _, cn := range m.cores {
		b := cn.l2.Lookup(addr)
		if b == nil || b.Tokens == 0 {
			continue
		}
		switch {
		case b.VM == vm:
			intra = true
		case hasFriend && b.VM == friend:
			fr = true
		default:
			other = true
		}
	}
	switch {
	case intra:
		st.HolderIntraVM++
	case fr:
		st.HolderFriend++
	case other:
		st.HolderOther++
	default:
		st.HolderMemory++
	}
}

func (m *Machine) finalizeStats() {
	s := &m.Stats
	for _, cn := range m.cores {
		if cn.dctrl != nil {
			s.Transactions += cn.dctrl.Stats.Transactions
			s.Writebacks += cn.dctrl.Stats.Writebacks
			continue
		}
		s.SnoopsIssued += cn.ctrl.Stats.SnoopsIssued
		s.SnoopLookups += cn.ctrl.Stats.SnoopLookups
		s.Transactions += cn.ctrl.Stats.Transactions
		s.Retries += cn.ctrl.Stats.Retries
		s.Persistent += cn.ctrl.Stats.Persistent
		s.Writebacks += cn.ctrl.Stats.Writebacks
	}
	for _, mc := range m.mcs {
		s.DRAMReads += mc.Stats.DRAMReads
		s.DRAMWrites += mc.Stats.DRAMWrites
	}
	for _, h := range m.homes {
		s.DRAMReads += h.Stats.DRAMReads
		s.DRAMWrites += h.Stats.DRAMWrites
		s.DirLookups += h.Stats.Lookups
		s.DirForwards += h.Stats.Forwards
		s.DirInvalidates += h.Stats.Invalidates
	}
	for _, cn := range m.cores {
		s.TLBHits += cn.tlb.Stats.Hits
		s.TLBMisses += cn.tlb.Stats.Misses
		s.TLBShootdowns += cn.tlb.Stats.Shootdowns
	}
	if m.rs != nil {
		s.RegionNSRTHits = m.rs.Stats.NSRTHits
		s.RegionBroadcasts = m.rs.Stats.Broadcasts
	}
	s.ByteHops = m.Net.ByteHops
	s.Bytes = m.Net.Bytes
	s.Messages = m.Net.Messages
	s.Cows = m.MM.CowCount
	s.MapSyncs = m.Filter.MapSyncs
	s.Relocations = m.Mapper.Relocations
	s.RemovalPeriods = &m.Filter.RemovalPeriods

	s.FallbackCounterAug = m.Filter.FallbackCounterAug
	s.FallbackBroadcast = m.Filter.FallbackBroadcast
	s.MapRebuilds = m.Filter.MapRebuilds
	s.CounterUnderflows = m.Filter.Underflows
	if m.Injector != nil {
		fs := m.Injector.Stats
		s.FaultsDropped = fs.Dropped
		s.FaultsBounced = fs.Bounced
		s.FaultsDuplicated = fs.Duplicated
		s.FaultsDelayed = fs.Delayed
		s.MapCorruptions = fs.MapCorruptions
		s.CounterCorruptions = fs.CounterCorruptions
		s.StormRelocations = fs.StormRelocations
	}
	if m.Checker != nil {
		s.InvariantChecks = m.Checker.Checks
		s.InvariantViolations = m.Checker.Violations
	}

	if s.hasWarm {
		w := s.warm
		s.L1Accesses -= w.l1Acc
		s.L1AccessesContent -= w.l1AccC
		s.L2Accesses -= w.l2Acc
		s.L2Misses -= w.l2Miss
		s.L2MissesContent -= w.l2MissC
		s.L2MissesGuest -= w.l2G
		s.L2MissesXen -= w.l2X
		s.L2MissesDom0 -= w.l2D
		s.HolderMemory -= w.hMem
		s.HolderIntraVM -= w.hIntra
		s.HolderFriend -= w.hFriend
		s.HolderOther -= w.hOther
		s.SnoopsIssued -= w.snoops
		s.SnoopLookups -= w.lookups
		s.Transactions -= w.txns
		s.Retries -= w.retries
		s.Persistent -= w.persist
		s.Writebacks -= w.writebacks
		s.DRAMReads -= w.dramR
		s.DRAMWrites -= w.dramW
		s.ByteHops -= w.byteHops
		s.Bytes -= w.bytes
		s.Messages -= w.messages
		s.Cows -= w.cows
		if s.ExecCycles >= w.cycle {
			s.ExecCycles -= w.cycle
		}
	}
}

// SnoopsPerTransaction returns the mean cores snooped per transaction.
func (s *Stats) SnoopsPerTransaction() float64 {
	if s.Transactions == 0 {
		return 0
	}
	return float64(s.SnoopsIssued) / float64(s.Transactions)
}

// ContentAccessPct returns Table V column 1 (percent of L1 accesses to
// content-shared pages).
func (s *Stats) ContentAccessPct() float64 {
	return stats.Normalize(float64(s.L1AccessesContent), float64(s.L1Accesses))
}

// ContentMissPct returns Table V column 2 (percent of L2 misses on
// content-shared pages).
func (s *Stats) ContentMissPct() float64 {
	return stats.Normalize(float64(s.L2MissesContent), float64(s.L2Misses))
}

// HypervisorMissPct returns the Figure 1 quantity: percent of L2 misses by
// the hypervisor plus dom0.
func (s *Stats) HypervisorMissPct() float64 {
	return stats.Normalize(float64(s.L2MissesXen+s.L2MissesDom0), float64(s.L2Misses))
}
