package system

import (
	"sync/atomic"

	"vsnoop/internal/mem"
	"vsnoop/internal/sim"
	"vsnoop/internal/stats"
	"vsnoop/internal/workload"
)

// totalEvents accumulates EventsFired across every run in the process; the
// CLI throughput footers read it via TotalEventsFired.
var totalEvents atomic.Uint64 //lint:shardsafe process-wide CLI telemetry, written once per run at finalize, never read by sim code

// TotalEventsFired returns the simulator events executed by all runs in
// this process so far. Monotone; each run adds its count as it finalizes.
func TotalEventsFired() uint64 { return totalEvents.Load() }

// Process-wide synchronization telemetry, accumulated by finalizeSharded
// alongside totalEvents; the CLI footers read it via TotalSyncStats.
var (
	totalSyncWindows atomic.Uint64 //lint:shardsafe process-wide CLI telemetry, written once per run at finalize, never read by sim code
	totalSyncElided  atomic.Uint64 //lint:shardsafe process-wide CLI telemetry, written once per run at finalize, never read by sim code
	totalSyncWaits   atomic.Uint64 //lint:shardsafe process-wide CLI telemetry, written once per run at finalize, never read by sim code
	totalSyncWidth   atomic.Uint64 //lint:shardsafe process-wide CLI telemetry, written once per run at finalize, never read by sim code
)

// TotalSyncStats returns the synchronization telemetry summed over every
// sharded run in this process so far (windows, elided barriers, barrier
// waits, window-width sum in cycles).
func TotalSyncStats() (windows, elided, waits, widthSum uint64) {
	return totalSyncWindows.Load(), totalSyncElided.Load(),
		totalSyncWaits.Load(), totalSyncWidth.Load()
}

// Stats aggregates everything the paper's tables and figures need from one
// run. Raw counters are filled during the run; finalizeStats folds in the
// per-controller and network totals.
type Stats struct {
	cfg Config

	// ExecCycles is the cycle at which the last vCPU finished (Figure 6).
	ExecCycles uint64

	// Snoop accounting (Figures 7, 8, 10; Table IV's companion metric).
	SnoopsIssued uint64 // cores snooped per transaction, summed (incl requester)
	SnoopLookups uint64 // external tag lookups performed at caches

	// Network traffic (Table IV).
	ByteHops uint64
	Bytes    uint64
	Messages uint64

	// Protocol totals.
	Transactions uint64
	Retries      uint64
	Persistent   uint64
	Writebacks   uint64
	DRAMReads    uint64
	DRAMWrites   uint64

	// L1 accesses and L2 misses, total and on content-shared pages
	// (Table V), plus the L2 miss decomposition by context (Figure 1).
	L1Accesses        uint64
	L1AccessesContent uint64
	L2Accesses        uint64 // core-side L2 lookups (writes + L1-miss reads)
	L2Misses          uint64
	L2MissesContent   uint64
	L2MissesGuest     uint64
	L2MissesXen       uint64
	L2MissesDom0      uint64

	// Data-holder decomposition for L2 misses on content-shared pages
	// (Table VI): who could have supplied the block at miss time.
	HolderMemory  uint64 // no cache held it
	HolderIntraVM uint64 // a cache of the requesting VM held it
	HolderFriend  uint64 // a cache of the friend VM held it (not intra)
	HolderOther   uint64 // only caches of unrelated VMs held it

	// TLB events (sharing-type lookups happen at translation time).
	TLBHits       uint64
	TLBMisses     uint64
	TLBShootdowns uint64

	// RegionScout counters (populated only with Config.UseRegionScout).
	RegionNSRTHits   uint64
	RegionBroadcasts uint64

	// Directory counters (populated only with Config.Directory).
	DirLookups     uint64
	DirForwards    uint64
	DirInvalidates uint64

	// Hypervisor events.
	Cows     uint64
	MapSyncs uint64

	// Relocation bookkeeping (Figure 9).
	Relocations    uint64
	RemovalPeriods *stats.CDF

	MissLatency stats.Sample

	// EventsFired counts the discrete events executed by the engine(s) over
	// the whole run — the simulator's own work metric (events/sec in the
	// report footer). Never warmup-adjusted.
	EventsFired uint64

	// Sync holds the sharded engine's synchronization telemetry (windows,
	// barrier waits, elisions, window widths). Execution mechanics, not
	// simulation results: the values depend on the shard count and
	// synchronization mode, while every other counter in Stats stays
	// bit-identical across them. Zero for legacy (non-sharded) runs.
	Sync sim.SyncStats

	// Robustness counters (fault injection, graceful degradation, and
	// invariant checking). Whole-run, never warmup-adjusted: faults and
	// checks span the entire run including warmup.
	FaultsDropped       uint64 // transient requests destroyed
	FaultsBounced       uint64 // token-carrying messages redirected home
	FaultsDuplicated    uint64
	FaultsDelayed       uint64
	MapCorruptions      uint64
	CounterCorruptions  uint64
	StormRelocations    uint64
	FallbackCounterAug  uint64 // routes served by the counter-augmented map
	FallbackBroadcast   uint64 // routes served by degradation broadcast
	MapRebuilds         uint64
	CounterUnderflows   uint64
	InvariantChecks     uint64
	InvariantViolations []string

	warm    snapshot
	hasWarm bool
}

// snapshot records every cumulative counter at the end of the warmup
// phase; finalizeStats subtracts it so reported statistics cover only the
// measured (post-warm) phase.
type snapshot struct {
	l1Acc, l1AccC, l2Acc                    uint64
	l2Miss, l2MissC, l2G, l2X, l2D          uint64
	hMem, hIntra, hFriend, hOther           uint64
	snoops, lookups, txns, retries, persist uint64
	writebacks, dramR, dramW                uint64
	byteHops, bytes, messages, cows         uint64
	cycle                                   uint64
}

func (s *Stats) init(cfg Config) { s.cfg = cfg.sansControl() }

// takeSnapshot freezes domain d's warmup-phase counters. It runs when the
// last vCPU of the domain crosses WarmupRefs, and reads only state owned by
// the domain (its cores' controllers, its corner memory controller, its
// traffic slot, its engine's clock) — deterministic per domain, and safe
// while other shards execute concurrently. The legacy single domain owns
// everything, so this is exactly the old whole-machine snapshot there.
func (m *Machine) takeSnapshot(d *domain) {
	d.warmed = true
	s := d.st
	var bh, by, ms uint64
	if m.sharded != nil {
		bh, by, ms = m.Net.DomainTraffic(int(d.idx))
	} else {
		bh, by, ms = m.Net.ByteHops, m.Net.Bytes, m.Net.Messages
	}
	// COW traps land in the domain's own counter under the partitioned
	// overlay; the legacy global path still counts on the memory manager.
	cows := m.MM.CowCount
	if m.cowTargets != nil {
		cows = s.Cows
	}
	w := snapshot{
		l1Acc: s.L1Accesses, l1AccC: s.L1AccessesContent, l2Acc: s.L2Accesses,
		l2Miss: s.L2Misses, l2MissC: s.L2MissesContent,
		l2G: s.L2MissesGuest, l2X: s.L2MissesXen, l2D: s.L2MissesDom0,
		hMem: s.HolderMemory, hIntra: s.HolderIntraVM,
		hFriend: s.HolderFriend, hOther: s.HolderOther,
		byteHops: bh, bytes: by, messages: ms,
		cows:  cows,
		cycle: uint64(d.eng.Now()),
	}
	for _, ci := range d.cores {
		cn := m.cores[ci]
		if cn.dctrl != nil {
			w.txns += cn.dctrl.Stats.Transactions
			w.writebacks += cn.dctrl.Stats.Writebacks
			continue
		}
		w.snoops += cn.ctrl.Stats.SnoopsIssued
		w.lookups += cn.ctrl.Stats.SnoopLookups
		w.txns += cn.ctrl.Stats.Transactions
		w.retries += cn.ctrl.Stats.Retries
		w.persist += cn.ctrl.Stats.Persistent
		w.writebacks += cn.ctrl.Stats.Writebacks
	}
	for _, mi := range d.mcs {
		w.dramR += m.mcs[mi].Stats.DRAMReads
		w.dramW += m.mcs[mi].Stats.DRAMWrites
	}
	for _, hi := range d.homes {
		w.dramR += m.homes[hi].Stats.DRAMReads
		w.dramW += m.homes[hi].Stats.DRAMWrites
	}
	s.warm = w
	s.hasWarm = true
}

func (s *Stats) recordL1Access(vm mem.VMID, ctx workload.Ctx, pt mem.PageType) {
	s.L1Accesses++
	if pt == mem.PageROShared {
		s.L1AccessesContent++
	}
}

func (s *Stats) recordL2Miss(vm mem.VMID, ctx workload.Ctx, pt mem.PageType) {
	s.L2Misses++
	if pt == mem.PageROShared {
		s.L2MissesContent++
	}
	switch ctx {
	case workload.CtxGuest:
		s.L2MissesGuest++
	case workload.CtxXen:
		s.L2MissesXen++
	case workload.CtxDom0:
		s.L2MissesDom0++
	}
}

// classifyHolder implements the Table VI measurement: at an L2 miss on a
// content-shared page, find the best possible data holder. Serial-only:
// sharded runs take classifyPartitioned, which probes remote domains under
// the lookahead discipline instead of reading their caches directly. The
// single legacy domain owns every core, so scanning d.cores here covers
// the whole machine.
func (m *Machine) classifyHolder(d *domain, st *Stats, addr mem.BlockAddr, vm mem.VMID) {
	friend, hasFriend := m.MM.FriendOf(vm)
	intra, fr, other := false, false, false
	for _, ci := range d.cores {
		b := m.cores[ci].l2.Lookup(addr)
		if b == nil || b.Tokens == 0 {
			continue
		}
		switch {
		case b.VM == vm:
			intra = true
		case hasFriend && b.VM == friend:
			fr = true
		default:
			other = true
		}
	}
	switch {
	case intra:
		st.HolderIntraVM++
	case fr:
		st.HolderFriend++
	case other:
		st.HolderOther++
	default:
		st.HolderMemory++
	}
}

// applyWarm subtracts the warmup-phase snapshot so the reported statistics
// cover only the measured phase. No-op when no snapshot was taken.
func (s *Stats) applyWarm() {
	if !s.hasWarm {
		return
	}
	w := s.warm
	s.L1Accesses -= w.l1Acc
	s.L1AccessesContent -= w.l1AccC
	s.L2Accesses -= w.l2Acc
	s.L2Misses -= w.l2Miss
	s.L2MissesContent -= w.l2MissC
	s.L2MissesGuest -= w.l2G
	s.L2MissesXen -= w.l2X
	s.L2MissesDom0 -= w.l2D
	s.HolderMemory -= w.hMem
	s.HolderIntraVM -= w.hIntra
	s.HolderFriend -= w.hFriend
	s.HolderOther -= w.hOther
	s.SnoopsIssued -= w.snoops
	s.SnoopLookups -= w.lookups
	s.Transactions -= w.txns
	s.Retries -= w.retries
	s.Persistent -= w.persist
	s.Writebacks -= w.writebacks
	s.DRAMReads -= w.dramR
	s.DRAMWrites -= w.dramW
	s.ByteHops -= w.byteHops
	s.Bytes -= w.bytes
	s.Messages -= w.messages
	s.Cows -= w.cows
	if s.ExecCycles >= w.cycle {
		s.ExecCycles -= w.cycle
	}
}

func (m *Machine) finalizeStats() {
	if m.sharded != nil {
		m.finalizeSharded()
		return
	}
	s := &m.Stats
	for _, cn := range m.cores {
		if cn.dctrl != nil {
			s.Transactions += cn.dctrl.Stats.Transactions
			s.Writebacks += cn.dctrl.Stats.Writebacks
			continue
		}
		s.SnoopsIssued += cn.ctrl.Stats.SnoopsIssued
		s.SnoopLookups += cn.ctrl.Stats.SnoopLookups
		s.Transactions += cn.ctrl.Stats.Transactions
		s.Retries += cn.ctrl.Stats.Retries
		s.Persistent += cn.ctrl.Stats.Persistent
		s.Writebacks += cn.ctrl.Stats.Writebacks
	}
	for _, mc := range m.mcs {
		s.DRAMReads += mc.Stats.DRAMReads
		s.DRAMWrites += mc.Stats.DRAMWrites
	}
	for _, h := range m.homes {
		s.DRAMReads += h.Stats.DRAMReads
		s.DRAMWrites += h.Stats.DRAMWrites
		s.DirLookups += h.Stats.Lookups
		s.DirForwards += h.Stats.Forwards
		s.DirInvalidates += h.Stats.Invalidates
	}
	for _, cn := range m.cores {
		s.TLBHits += cn.tlb.Stats.Hits
		s.TLBMisses += cn.tlb.Stats.Misses
		s.TLBShootdowns += cn.tlb.Stats.Shootdowns
	}
	if m.rs != nil {
		rt := m.rs.Totals()
		s.RegionNSRTHits = rt.NSRTHits
		s.RegionBroadcasts = rt.Broadcasts
	}
	s.ByteHops = m.Net.ByteHops
	s.Bytes = m.Net.Bytes
	s.Messages = m.Net.Messages
	s.Cows = m.MM.CowCount
	s.MapSyncs = m.Filter.MapSyncs
	s.Relocations = m.Mapper.Relocations
	s.RemovalPeriods = &m.Filter.RemovalPeriods

	s.FallbackCounterAug = m.Filter.FallbackCounterAug()
	s.FallbackBroadcast = m.Filter.FallbackBroadcast()
	s.MapRebuilds = m.Filter.MapRebuilds()
	s.CounterUnderflows = m.Filter.Underflows()
	if m.Injector != nil {
		fs := m.Injector.TotalStats()
		s.FaultsDropped = fs.Dropped
		s.FaultsBounced = fs.Bounced
		s.FaultsDuplicated = fs.Duplicated
		s.FaultsDelayed = fs.Delayed
		s.MapCorruptions = fs.MapCorruptions
		s.CounterCorruptions = fs.CounterCorruptions
		s.StormRelocations = fs.StormRelocations
	}
	if m.Checker != nil {
		s.InvariantChecks = m.Checker.Checks
		s.InvariantViolations = m.Checker.Violations
	}
	s.EventsFired = m.Eng.Fired()
	totalEvents.Add(s.EventsFired)

	s.applyWarm()
}

// finalizeSharded folds the per-domain statistics into the machine totals.
// Per-domain sums (controller and DRAM counters, traffic, warm adjustment)
// happen first, in domain order; then counters add, latency samples merge,
// and ExecCycles takes the slowest domain. Global state (filter, mapper,
// memory manager, checker, injector) is read once at the end — the run is
// quiesced, so everything is stable.
func (m *Machine) finalizeSharded() {
	s := &m.Stats
	for _, d := range m.doms {
		st := d.st
		for _, ci := range d.cores {
			cn := m.cores[ci]
			if cn.dctrl != nil {
				st.Transactions += cn.dctrl.Stats.Transactions
				st.Writebacks += cn.dctrl.Stats.Writebacks
			} else {
				st.SnoopsIssued += cn.ctrl.Stats.SnoopsIssued
				st.SnoopLookups += cn.ctrl.Stats.SnoopLookups
				st.Transactions += cn.ctrl.Stats.Transactions
				st.Retries += cn.ctrl.Stats.Retries
				st.Persistent += cn.ctrl.Stats.Persistent
				st.Writebacks += cn.ctrl.Stats.Writebacks
			}
			st.TLBHits += cn.tlb.Stats.Hits
			st.TLBMisses += cn.tlb.Stats.Misses
			st.TLBShootdowns += cn.tlb.Stats.Shootdowns
		}
		for _, mi := range d.mcs {
			st.DRAMReads += m.mcs[mi].Stats.DRAMReads
			st.DRAMWrites += m.mcs[mi].Stats.DRAMWrites
		}
		for _, hi := range d.homes {
			h := m.homes[hi]
			st.DRAMReads += h.Stats.DRAMReads
			st.DRAMWrites += h.Stats.DRAMWrites
			st.DirLookups += h.Stats.Lookups
			st.DirForwards += h.Stats.Forwards
			st.DirInvalidates += h.Stats.Invalidates
		}
		st.ByteHops, st.Bytes, st.Messages = m.Net.DomainTraffic(int(d.idx))
		st.applyWarm()

		s.SnoopsIssued += st.SnoopsIssued
		s.SnoopLookups += st.SnoopLookups
		s.Transactions += st.Transactions
		s.Retries += st.Retries
		s.Persistent += st.Persistent
		s.Writebacks += st.Writebacks
		s.DRAMReads += st.DRAMReads
		s.DRAMWrites += st.DRAMWrites
		s.TLBHits += st.TLBHits
		s.TLBMisses += st.TLBMisses
		s.TLBShootdowns += st.TLBShootdowns
		s.ByteHops += st.ByteHops
		s.Bytes += st.Bytes
		s.Messages += st.Messages
		s.L1Accesses += st.L1Accesses
		s.L1AccessesContent += st.L1AccessesContent
		s.L2Accesses += st.L2Accesses
		s.L2Misses += st.L2Misses
		s.L2MissesContent += st.L2MissesContent
		s.L2MissesGuest += st.L2MissesGuest
		s.L2MissesXen += st.L2MissesXen
		s.L2MissesDom0 += st.L2MissesDom0
		s.HolderMemory += st.HolderMemory
		s.HolderIntraVM += st.HolderIntraVM
		s.HolderFriend += st.HolderFriend
		s.HolderOther += st.HolderOther
		s.DirLookups += st.DirLookups
		s.DirForwards += st.DirForwards
		s.DirInvalidates += st.DirInvalidates
		s.Cows += st.Cows
		s.MissLatency.Merge(&st.MissLatency)
		if st.ExecCycles > s.ExecCycles {
			s.ExecCycles = st.ExecCycles
		}
	}

	if m.cowTargets == nil {
		// Global COW path (no domain overlays): the manager's count is
		// authoritative, exactly as in legacy runs.
		s.Cows = m.MM.CowCount
	}
	s.Relocations = m.Mapper.Relocations
	if m.replicas != nil {
		// Replicated register file: event counters live on the owning
		// domain's replica; fold them, and merge the removal-period CDFs
		// into replica 0's (the run is quiesced, so this is safe).
		for _, rep := range m.replicas {
			s.MapSyncs += rep.MapSyncs
			s.FallbackCounterAug += rep.FallbackCounterAug()
			s.FallbackBroadcast += rep.FallbackBroadcast()
			s.MapRebuilds += rep.MapRebuilds()
			s.CounterUnderflows += rep.Underflows()
		}
		for _, rep := range m.replicas[1:] {
			m.replicas[0].RemovalPeriods.Merge(&rep.RemovalPeriods)
		}
		s.RemovalPeriods = &m.replicas[0].RemovalPeriods
	} else {
		s.MapSyncs = m.Filter.MapSyncs
		s.RemovalPeriods = &m.Filter.RemovalPeriods
		s.FallbackCounterAug = m.Filter.FallbackCounterAug()
		s.FallbackBroadcast = m.Filter.FallbackBroadcast()
		s.MapRebuilds = m.Filter.MapRebuilds()
		s.CounterUnderflows = m.Filter.Underflows()
	}
	if m.rs != nil {
		rt := m.rs.Totals()
		s.RegionNSRTHits = rt.NSRTHits
		s.RegionBroadcasts = rt.Broadcasts
	}
	if m.Injector != nil {
		fs := m.Injector.TotalStats()
		s.FaultsDropped = fs.Dropped
		s.FaultsBounced = fs.Bounced
		s.FaultsDuplicated = fs.Duplicated
		s.FaultsDelayed = fs.Delayed
		s.MapCorruptions = fs.MapCorruptions
		s.CounterCorruptions = fs.CounterCorruptions
		s.StormRelocations = fs.StormRelocations
	}
	if m.Checker != nil {
		s.InvariantChecks = m.Checker.Checks
		s.InvariantViolations = m.Checker.Violations
	}
	s.EventsFired = m.sharded.Fired()
	totalEvents.Add(s.EventsFired)
	s.Sync = m.sharded.Telemetry()
	totalSyncWindows.Add(s.Sync.Windows)
	totalSyncElided.Add(s.Sync.ElidedBarriers)
	totalSyncWaits.Add(s.Sync.BarrierWaits)
	totalSyncWidth.Add(s.Sync.WindowWidthSum)
}

// SnoopsPerTransaction returns the mean cores snooped per transaction.
func (s *Stats) SnoopsPerTransaction() float64 {
	if s.Transactions == 0 {
		return 0
	}
	return float64(s.SnoopsIssued) / float64(s.Transactions)
}

// ContentAccessPct returns Table V column 1 (percent of L1 accesses to
// content-shared pages).
func (s *Stats) ContentAccessPct() float64 {
	return stats.Normalize(float64(s.L1AccessesContent), float64(s.L1Accesses))
}

// ContentMissPct returns Table V column 2 (percent of L2 misses on
// content-shared pages).
func (s *Stats) ContentMissPct() float64 {
	return stats.Normalize(float64(s.L2MissesContent), float64(s.L2Misses))
}

// HypervisorMissPct returns the Figure 1 quantity: percent of L2 misses by
// the hypervisor plus dom0.
func (s *Stats) HypervisorMissPct() float64 {
	return stats.Normalize(float64(s.L2MissesXen+s.L2MissesDom0), float64(s.L2Misses))
}
