package system

import (
	"fmt"
	"reflect"
	"testing"

	"vsnoop/internal/core"
	"vsnoop/internal/fault"
)

// soakPlan is the moderate reference plan plus one of each scheduled
// event kind, exercising every injection path in one run.
func soakPlan(seed uint64) *fault.Plan {
	p := fault.Moderate(seed)
	p.DegradedLinks = 2
	p.Events = []fault.Event{
		{At: 40_000, Kind: fault.EvCorruptMap, VM: 1, Core: 2},
		{At: 60_000, Kind: fault.EvCorruptCounter, VM: 2, Core: 9, Count: -1},
		{At: 80_000, Kind: fault.EvMigrationStorm, Count: 4},
	}
	return p
}

// TestSoakAllPoliciesUnderFaults drives every snoop policy x content
// policy combination through the moderate fault plan and requires the
// run to complete with every invariant intact — the paper's safety
// argument ("a wrong destination set only costs performance") verified
// mechanically across the whole policy space.
func TestSoakAllPoliciesUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test is slow")
	}
	policies := []core.Policy{
		core.PolicyBroadcast, core.PolicyBase, core.PolicyCounter,
		core.PolicyCounterThreshold, core.PolicyCounterFlush,
	}
	contents := []core.ContentPolicy{
		core.ContentBroadcast, core.ContentMemoryDirect,
		core.ContentIntraVM, core.ContentFriendVM,
	}
	for _, pol := range policies {
		for _, con := range contents {
			pol, con := pol, con
			t.Run(fmt.Sprintf("%v_%v", pol, con), func(t *testing.T) {
				cfg := smallCfg()
				cfg.RefsPerVCPU = 2000
				cfg.WarmupRefs = 400
				cfg.Filter.Policy = pol
				cfg.Filter.Content = con
				cfg.ContentSharing = con != core.ContentBroadcast
				cfg.MigrationPeriodMs = 2 // keep maps churning too
				cfg.Fault = soakPlan(7)
				m, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				st, err := m.RunChecked()
				if err != nil {
					t.Fatalf("run failed under faults: %v", err)
				}
				if len(st.InvariantViolations) != 0 {
					t.Fatalf("invariants violated: %v", st.InvariantViolations)
				}
				if st.InvariantChecks == 0 {
					t.Fatal("checker never ran")
				}
				if st.FaultsDropped == 0 && st.FaultsBounced == 0 && st.FaultsDelayed == 0 {
					t.Fatal("fault plan injected nothing")
				}
				if st.MapCorruptions != 1 || st.CounterCorruptions != 1 {
					t.Fatalf("scheduled events: %d map / %d counter, want 1/1",
						st.MapCorruptions, st.CounterCorruptions)
				}
				// Completion itself is guaranteed by err == nil (the run
				// only returns once every vCPU finished its stream); the
				// measured phase must still have seen real activity.
				if st.L1Accesses == 0 || st.Transactions == 0 {
					t.Fatalf("no measured activity: %d accesses, %d transactions",
						st.L1Accesses, st.Transactions)
				}
			})
		}
	}
}

// TestSoakBitIdentical requires identical (Config, FaultPlan, Seed) to
// produce bit-identical statistics, across several seeds.
func TestSoakBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test is slow")
	}
	for _, seed := range []uint64{1, 7, 1234} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			run := func() *Stats {
				cfg := smallCfg()
				cfg.RefsPerVCPU = 2000
				cfg.Filter.Policy = core.PolicyCounter
				cfg.MigrationPeriodMs = 2
				cfg.Seed = seed
				cfg.Fault = soakPlan(seed)
				m, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				st, err := m.RunChecked()
				if err != nil {
					t.Fatal(err)
				}
				return st
			}
			a, b := run(), run()
			// Compare the full exported statistics records (cfg and the
			// warmup snapshot are unexported and irrelevant).
			va, vb := reflect.ValueOf(*a), reflect.ValueOf(*b)
			tp := va.Type()
			for i := 0; i < tp.NumField(); i++ {
				f := tp.Field(i)
				if f.PkgPath != "" || f.Name == "RemovalPeriods" || f.Name == "MissLatency" {
					continue
				}
				if !reflect.DeepEqual(va.Field(i).Interface(), vb.Field(i).Interface()) {
					t.Fatalf("field %s differs across identical runs: %v vs %v",
						f.Name, va.Field(i).Interface(), vb.Field(i).Interface())
				}
			}
			if a.MissLatency.Mean() != b.MissLatency.Mean() {
				t.Fatalf("miss latency differs: %v vs %v", a.MissLatency.Mean(), b.MissLatency.Mean())
			}
			if a.ExecCycles != b.ExecCycles {
				t.Fatalf("exec cycles differ: %d vs %d", a.ExecCycles, b.ExecCycles)
			}
		})
	}
}

// TestChecksAloneAreInvisible verifies that enabling invariant checking
// without faults does not perturb the simulation: results are
// bit-identical to a plain run.
func TestChecksAloneAreInvisible(t *testing.T) {
	run := func(checks bool) *Stats {
		cfg := smallCfg()
		cfg.RefsPerVCPU = 1500
		cfg.Filter.Policy = core.PolicyCounter
		cfg.MigrationPeriodMs = 2
		cfg.Checks = checks
		return runCfg(t, cfg)
	}
	plain, checked := run(false), run(true)
	if checked.InvariantChecks == 0 {
		t.Fatal("checker never ran")
	}
	if len(checked.InvariantViolations) != 0 {
		t.Fatalf("fault-free run violated invariants: %v", checked.InvariantViolations)
	}
	if plain.ExecCycles != checked.ExecCycles ||
		plain.SnoopsIssued != checked.SnoopsIssued ||
		plain.Transactions != checked.Transactions ||
		plain.ByteHops != checked.ByteHops ||
		plain.Retries != checked.Retries {
		t.Fatalf("observation-only checks changed the simulation:\nplain   %+v\nchecked %+v",
			plain, checked)
	}
}

// TestMaxStepsBoundsRun verifies the step bound terminates a run early
// with an error (and partial stats) instead of hanging.
func TestMaxStepsBoundsRun(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxSteps = 10_000 // far too few to finish
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.RunChecked()
	if err == nil {
		t.Fatal("10k-step bound did not trip")
	}
	if st == nil {
		t.Fatal("stats not returned alongside the bound error")
	}
}
