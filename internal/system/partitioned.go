package system

// Cross-shard machinery of the partitioned machine: filter-replica deltas,
// vCPU migration as an ordered depart/arrive transaction, domain-local
// copy-on-write and provider designation, the holder-classification probe
// protocol, and dom0-routed fault events. Everything here rides the sharded
// engine's deposit path, so every cross-domain effect lands at least one
// cross-shard horizon after its cause — the same lookahead discipline the
// mesh itself obeys — and the simulated event order stays a pure function
// of the domain partition, never of the shard count.

import (
	"vsnoop/internal/cache"
	"vsnoop/internal/core"
	"vsnoop/internal/fault"
	"vsnoop/internal/hv"
	"vsnoop/internal/mem"
	"vsnoop/internal/mesh"
	"vsnoop/internal/sim"
	"vsnoop/internal/token"
	"vsnoop/internal/workload"
)

// Filter-replica delta opcodes, packed into the event's u payload as
// op<<48 | vm<<16 | (core+1) — core+1 so the -1 "clear entirely" target of
// CorruptMap survives the unsigned encoding.
const (
	opRunClear uint64 = iota + 1
	opRunMapSet
	opMapClear
	opCorrupt
)

// filterOf returns the filter replica owned by domain d (the shared filter
// outside syncMode).
func (m *Machine) filterOf(d *domain) *core.Filter {
	if m.replicas != nil {
		return m.replicas[d.idx]
	}
	return m.Filter
}

// filterContains reports whether core is in vm's map on any replica. The
// union is the right conservative notion for the offline invariant check:
// replicas may transiently differ by an in-flight delta, but the owning
// domain's register always covers its own cached blocks.
func (m *Machine) filterContains(vm mem.VMID, coreIdx int) bool {
	if m.replicas == nil {
		return m.Filter.Contains(vm, coreIdx)
	}
	for _, rep := range m.replicas {
		if rep.Contains(vm, coreIdx) {
			return true
		}
	}
	return false
}

// vcpuIndex maps a vCPU identity to its slot in m.vcpus (VM-major order,
// matching setupVMs).
func (m *Machine) vcpuIndex(id hv.VCPU) int { return int(id.VM)*m.cfg.VCPUsPerVM + id.Idx }

// vcpuAt returns the vcpu struct for id (nil for out-of-range identities).
func (m *Machine) vcpuAt(id hv.VCPU) *vcpu {
	i := m.vcpuIndex(id)
	if i < 0 || i >= len(m.vcpus) {
		return nil
	}
	return m.vcpus[i]
}

// chase reschedules a step/resume event that fired in the domain it was
// scheduled for (from) after its vCPU migrated away: deposit it toward the
// vCPU's current domain one cross-shard horizon ahead, hopping along from's
// own fwd row — never the vCPU's dom pointer, which the destination shard
// may be rewriting concurrently. Each hop retests ownership on arrival, so
// a vCPU that moved again mid-chase is simply chased again; the depart
// always precedes the chased continuation at every hop (both paths add the
// same horizon, and the continuation was scheduled strictly after the
// depart's cause).
//vsnoop:hotpath
func (m *Machine) chase(v *vcpu, from uint64, fn sim.HandlerFn) {
	d := m.doms[from]
	nxt := m.fwd[int(from)*m.nv+v.vix]
	d.eng.ScheduleFnAtDom(d.eng.Now()+m.crossHor[from], nxt, fn, v, uint64(nxt))
}

// broadcastDelta replays a register-file update of from's replica on every
// other replica, one cross-shard horizon ahead in each target's stream.
//vsnoop:hotpath
func (m *Machine) broadcastDelta(from *domain, op uint64, vm mem.VMID, coreIdx int) {
	at := from.eng.Now() + m.crossHor[from.idx]
	u := op<<48 | uint64(uint16(vm))<<16 | uint64(uint16(coreIdx+1))
	for d := range m.doms {
		if int32(d) == from.idx {
			continue
		}
		from.eng.ScheduleFnAtDom(at, int32(d), m.deltaFn, m.replicas[d], u)
	}
}

// applyDelta replays one replica delta on the target replica (the event
// arg). Apply* methods never fire hooks or count stats, so deltas cannot
// loop and every event is counted exactly once, on its owning domain.
//vsnoop:hotpath
func applyDelta(arg interface{}, u uint64) {
	f := arg.(*core.Filter)
	vm := mem.VMID(uint16(u >> 16))
	coreIdx := int(uint16(u)) - 1
	switch u >> 48 {
	case opRunClear:
		f.ApplyRunClear(vm, coreIdx)
	case opRunMapSet:
		f.ApplyRunSet(vm, coreIdx)
		f.ApplyMapSet(vm, coreIdx)
	case opMapClear:
		f.ApplyMapClear(vm, coreIdx)
	case opCorrupt:
		f.CorruptMap(vm, coreIdx)
	}
}

// beginMove starts a cross-shard vCPU migration (runtime relocations in
// syncMode; always invoked from domain 0, the single writer of the mapper).
// The move is a three-leg transaction — depart in the old core's domain,
// arrive in the new core's domain, ack back to dom0 — with the vCPU marked
// inflight so the shuffler and storms never double-move it. Its callers
// (the shuffle tick, storms, the relocation hook) all execute in domain 0,
// which the static walk cannot always see through the hook indirection.
//
//vsnoop:handler dom=0
func (m *Machine) beginMove(id hv.VCPU, from, to int) {
	v := m.vcpuAt(id)
	m.inflight[m.vcpuIndex(id)] = true
	eng := m.doms[0].eng
	eng.ScheduleFnAtDom(eng.Now()+m.crossHor[0], m.plan.CoreDom[from],
		m.departFn, v, uint64(from)<<16|uint64(to))
}

// handleDepart runs in the old core's domain. A depart landing inside an
// open coherence transaction is deferred to the completion callback — the
// controller's state machine must not lose its issuer mid-flight.
func (m *Machine) handleDepart(arg interface{}, u uint64) {
	v := arg.(*vcpu)
	from, to := int(u>>16), int(uint16(u))
	if v.inTxn {
		v.deferred, v.defFrom, v.defTo = true, from, to
		return
	}
	m.departNow(v, from, to)
}

// departNow performs the old-domain half of a migration: filter departure
// on the owning replica (plus run-bit deltas everywhere), waitq removal,
// live/warmup hand-off, and the arrive deposit into the new domain.
func (m *Machine) departNow(v *vcpu, from, to int) {
	dOld := v.dom
	m.replicas[dOld.idx].RelocateDepart(v.id.VM, from)
	m.broadcastDelta(dOld, opRunClear, v.id.VM, from)
	if v.parked {
		// Unhook from the old core's waitq (order-preserving); the vCPU
		// stays logically parked and re-issues its pending ref on arrival.
		cn := m.cores[from]
		q := cn.waitq
		for i, w := range q {
			if w == v {
				copy(q[i:], q[i+1:])
				cn.waitq = q[:len(q)-1]
				break
			}
		}
	}
	if !v.done {
		dOld.live--
		if m.cfg.WarmupRefs > 0 && v.executed < m.cfg.WarmupRefs && !dOld.warmed {
			dOld.warmLeft--
			if dOld.warmLeft == 0 {
				m.takeSnapshot(dOld)
			}
		}
	}
	v.core = to
	v.dom = m.domOfCore(to)
	// Hand off ownership in dOld's own location rows and vlist; the arrive
	// completes the transfer in the destination's rows.
	m.own[int(dOld.idx)*m.nv+v.vix] = false
	m.fwd[int(dOld.idx)*m.nv+v.vix] = v.dom.idx
	for i, w := range dOld.vlist {
		if w == v {
			last := len(dOld.vlist) - 1
			dOld.vlist[i] = dOld.vlist[last]
			dOld.vlist = dOld.vlist[:last]
			break
		}
	}
	eng := dOld.eng
	eng.ScheduleFnAtDom(eng.Now()+m.crossHor[dOld.idx], v.dom.idx, m.arriveFn, v, uint64(to))
}

// handleArrive runs in the new core's domain: filter arrival on the owning
// replica (plus registration deltas everywhere), the untagged-TLB flush,
// live/warmup hand-in, reissue of a parked reference, and the ack to dom0.
func (m *Machine) handleArrive(arg interface{}, u uint64) {
	v := arg.(*vcpu)
	to := int(u)
	d := v.dom
	if m.twOn {
		// Log the pre-arrival vCPU state before any mutation: an optimistic
		// rollback undoes arrivals (newest first) before restoring the
		// checkpointed vlists, so a vCPU that both departed and arrived
		// inside one epoch unwinds through its in-flight state back to the
		// depart-side checkpoint.
		m.twLog[m.domShard[d.idx]] = append(m.twLog[m.domShard[d.idx]],
			arriveSave{v: v, st: *v, gen: v.gen.(*workload.Generator).State()})
	}
	m.own[int(d.idx)*m.nv+v.vix] = true
	m.fwd[int(d.idx)*m.nv+v.vix] = d.idx
	d.vlist = append(d.vlist, v)
	m.replicas[d.idx].RelocateArrive(v.id.VM, to)
	m.broadcastDelta(d, opRunMapSet, v.id.VM, to)
	if !m.cfg.TLB.Tagged {
		m.cores[to].tlb.FlushAll()
	}
	if !v.done {
		d.live++
		if !d.warmed && m.cfg.WarmupRefs > 0 && v.executed < m.cfg.WarmupRefs {
			d.warmLeft++
		}
	}
	if v.parked {
		v.parked = false
		m.issueRef(v, v.pending)
	}
	eng := d.eng
	eng.ScheduleFnAtDom(eng.Now()+m.crossHor[d.idx], 0, m.ackFn, v, 0)
}

// shuffleTick is the machine-owned replacement for hv.Shuffler in
// partitioned runs: it runs in domain 0 so the mapper and the shuffle RNG
// have a single writer, skips vCPUs whose previous move is still in the
// air, and stops rescheduling once every stream has retired so the run can
// drain.
func (m *Machine) shuffleTick() {
	if m.retired >= len(m.vcpus) {
		return
	}
	m.shuffleOnce()
	m.doms[0].eng.ScheduleFn(m.shufPeriod, m.tickFn, nil, 0)
}

// shuffleOnce mirrors hv.Shuffler.shuffleOnce — 16 tries for a cross-VM
// pair, one swap per tick — with an extra inflight guard.
func (m *Machine) shuffleOnce() {
	n := m.Mapper.NumCores()
	for try := 0; try < 16; try++ {
		a, b := m.shufRng.Intn(n), m.shufRng.Intn(n)
		va, vb := m.Mapper.On(a), m.Mapper.On(b)
		if va == hv.NoVCPU || vb == hv.NoVCPU || va.VM == vb.VM {
			continue
		}
		if m.inflight[m.vcpuIndex(va)] || m.inflight[m.vcpuIndex(vb)] {
			continue
		}
		m.Mapper.Swap(a, b)
		return
	}
}

// syncStorm is migrationStorm for syncMode: same mapper walk and RNG
// consumption shape, plus the inflight guard (a busy pick burns a try,
// deterministically).
func (m *Machine) syncStorm(pairs int) int {
	before := m.Mapper.Relocations
	n := m.Mapper.NumCores()
	for p := 0; p < pairs; p++ {
		for try := 0; try < 16; try++ {
			a, b := m.Injector.Rng.Intn(n), m.Injector.Rng.Intn(n)
			va, vb := m.Mapper.On(a), m.Mapper.On(b)
			if va == hv.NoVCPU || vb == hv.NoVCPU || va.VM == vb.VM {
				continue
			}
			if m.inflight[m.vcpuIndex(va)] || m.inflight[m.vcpuIndex(vb)] {
				continue
			}
			m.Mapper.Swap(a, b)
			break
		}
	}
	return int(m.Mapper.Relocations - before)
}

// applyCorruptResidence is the domain-local leg of a corrupt-counter fault
// event: u carries vm<<16 | uint16(delta), arg is the target core.
func applyCorruptResidence(arg interface{}, u uint64) {
	cn := arg.(*coreNode)
	cn.l2.CorruptResidence(mem.VMID(uint16(u>>16)), int(int16(uint16(u))))
}

// scheduleFaultEvents queues the plan's one-shot events for a syncMode run:
// every event fires in domain 0 (single writer for the injector's event
// counters and the mapper), then fans out to its target domain through the
// deposit path — map corruption as replica deltas, counter corruption as a
// domain-local sub-event, storms as ordinary cross-shard migrations.
func (m *Machine) scheduleFaultEvents() {
	eng := m.doms[0].eng
	eng.SetCurDomain(0)
	for _, ev := range m.cfg.faultEvents() {
		ev := ev
		var fn sim.HandlerFn
		switch ev.Kind {
		case fault.EvCorruptMap:
			fn = func(_ interface{}, _ uint64) {
				m.Injector.Stats.MapCorruptions++
				target := ev.Core
				if target < 0 {
					target = -1
				}
				m.replicas[0].CorruptMap(mem.VMID(ev.VM), target)
				m.broadcastDelta(m.doms[0], opCorrupt, mem.VMID(ev.VM), target)
			}
		case fault.EvCorruptCounter:
			fn = func(_ interface{}, _ uint64) {
				m.Injector.Stats.CounterCorruptions++
				if ev.Core < 0 || ev.Core >= len(m.cores) {
					return
				}
				delta := ev.Count
				if delta == 0 {
					delta = -1
				}
				cn := m.cores[ev.Core]
				u := uint64(uint16(mem.VMID(ev.VM)))<<16 | uint64(uint16(int16(delta)))
				eng.ScheduleFnAtDom(eng.Now()+m.crossHor[0], cn.dom.idx, applyCorruptResidence, cn, u)
			}
		case fault.EvMigrationStorm:
			fn = func(_ interface{}, _ uint64) {
				pairs := ev.Count
				if pairs <= 0 {
					pairs = 4
				}
				m.Injector.Stats.StormRelocations += uint64(m.syncStorm(pairs))
			}
		}
		eng.ScheduleFnAtDom(ev.At, 0, fn, nil, 0)
	}
}

// translate resolves a guest page through the domain's COW overlay first,
// falling back to the (runtime-immutable) global page tables.
//vsnoop:hotpath
func (m *Machine) translate(d *domain, vm mem.VMID, gp mem.GuestPage) mem.Translation {
	if d.cow != nil {
		if tr, ok := d.cow[mem.CowKey(vm, gp)]; ok {
			return tr
		}
	}
	return m.MM.Translate(vm, gp)
}

// initFriendTable snapshots the post-merge friend relation into flat
// arrays, so partitioned holder classification never touches the global
// memory manager from domain goroutines.
func (m *Machine) initFriendTable() {
	m.friendOf = make([]mem.VMID, m.cfg.VMs)
	m.hasFriend = make([]bool, m.cfg.VMs)
	for vm := 0; vm < m.cfg.VMs; vm++ {
		if fr, ok := m.MM.FriendOf(mem.VMID(vm)); ok {
			m.friendOf[vm] = fr
			m.hasFriend[vm] = true
		}
	}
}

// domOracle is the memory controllers' RO-provider oracle in partitioned
// runs: it scans only the MC's own domain's caches. A provider in another
// domain is missed — a safe false negative costing one DRAM read — and the
// answer depends only on the partition, never on shard interleaving.
type domOracle struct {
	m *Machine
	d *domain
}

func (o domOracle) ROProviderAmong(addr mem.BlockAddr, cores []mesh.NodeID) bool {
	for _, n := range cores {
		i, ok := o.m.node2i[n]
		if !ok || o.m.plan.CoreDom[i] != o.d.idx {
			continue
		}
		if b := o.m.cores[i].l2.Lookup(addr); b != nil && b.Provider {
			return true
		}
	}
	return false
}

// onFillDom designates RO provider copies with a domain-local scan: the
// first copy of a content-shared block brought into a VM within this
// domain becomes a provider (at most one provider per VM per domain).
func (m *Machine) onFillDom(d *domain, b *cache.Block, t *token.Txn) {
	if t.Page != mem.PageROShared || t.Write {
		return
	}
	for _, ci := range d.cores {
		if ob := m.cores[ci].l2.Lookup(b.Addr); ob != nil && ob != b && ob.Provider && ob.VM == t.VM {
			return // this VM already has a provider in this domain
		}
	}
	b.Provider = true
}

// holderProbe is one in-flight cross-domain holder classification for a
// content-shared miss. The immutable fields (addr, vm, srcDom) are written
// before the probe is sent and only read by remote handlers; bits and
// remaining are owned by the source domain (remote scans travel back in
// the reply's u payload).
//
//vsnoop:owned
type holderProbe struct {
	addr      mem.BlockAddr //vsnoop:owned const
	vm        mem.VMID      //vsnoop:owned const
	srcDom    int32         //vsnoop:owned const
	idx       int32         //vsnoop:owned const — slot in the domain's allProbes registry
	remaining int
	bits      uint64
}

// holder-classification bits: 1 = same VM, 2 = friend VM, 4 = any other.
const (
	holderIntra  = 1
	holderFriend = 2
	holderOther  = 4
)

// getHolderProbe pops a probe from d's freelist, or allocates one and
// registers it in the domain's append-only probe registry (checkpoints
// save in-flight probe state by registry index).
func (m *Machine) getHolderProbe(d *domain) *holderProbe {
	if n := len(d.probes); n > 0 {
		p := d.probes[n-1]
		d.probes = d.probes[:n-1]
		return p
	}
	p := &holderProbe{idx: int32(len(d.allProbes))}
	d.allProbes = append(d.allProbes, p)
	return p
}

// scanHolder classifies the holders of addr among d's own caches.
//vsnoop:hotpath
func (m *Machine) scanHolder(d *domain, addr mem.BlockAddr, vm mem.VMID) uint64 {
	var bits uint64
	var fr mem.VMID
	hasFr := false
	if i := int(vm); i >= 0 && i < len(m.friendOf) {
		fr, hasFr = m.friendOf[i], m.hasFriend[i]
	}
	for _, ci := range d.cores {
		b := m.cores[ci].l2.Lookup(addr)
		if b == nil || b.Tokens == 0 {
			continue
		}
		switch {
		case b.VM == vm:
			bits |= holderIntra
		case hasFr && b.VM == fr:
			bits |= holderFriend
		default:
			bits |= holderOther
		}
	}
	return bits
}

// classifyPartitioned is classifyHolder for partitioned runs: scan the
// local domain synchronously, probe every other domain under the mesh's
// lookahead discipline, and fold the Figure-11 holder counters on the last
// reply (credited to the requesting domain's stats).
func (m *Machine) classifyPartitioned(d *domain, addr mem.BlockAddr, vm mem.VMID) {
	p := m.getHolderProbe(d)
	p.addr, p.vm, p.srcDom = addr, vm, d.idx
	p.bits = m.scanHolder(d, addr, vm)
	p.remaining = len(m.doms) - 1
	eng := d.eng
	at := eng.Now() + m.crossHor[d.idx]
	for _, od := range m.doms {
		if od.idx != d.idx {
			eng.ScheduleFnAtDom(at, od.idx, m.classifyReqFn, p, uint64(od.idx))
		}
	}
}

// handleClassifyReq runs in the probed domain (u): scan its caches and
// reply to the source with the holder bits in the event payload.
func (m *Machine) handleClassifyReq(arg interface{}, u uint64) {
	p := arg.(*holderProbe)
	d := m.doms[u]
	bits := m.scanHolder(d, p.addr, p.vm)
	eng := d.eng
	eng.ScheduleFnAtDom(eng.Now()+m.crossHor[d.idx], p.srcDom, m.classifyRepFn, p, bits)
}

// handleClassifyRep runs in the probe's source domain: fold the remote
// bits and, on the last reply, apply the legacy precedence (intra-VM over
// friend over other over memory) and recycle the probe.
func (m *Machine) handleClassifyRep(arg interface{}, u uint64) {
	p := arg.(*holderProbe)
	p.bits |= u
	p.remaining--
	if p.remaining > 0 {
		return
	}
	d := m.doms[p.srcDom]
	st := d.st
	switch {
	case p.bits&holderIntra != 0:
		st.HolderIntraVM++
	case p.bits&holderFriend != 0:
		st.HolderFriend++
	case p.bits&holderOther != 0:
		st.HolderOther++
	default:
		st.HolderMemory++
	}
	d.probes = append(d.probes, p)
}
