package system

import (
	"fmt"

	"vsnoop/internal/cache"
	"vsnoop/internal/check"
	"vsnoop/internal/core"
	"vsnoop/internal/directory"
	"vsnoop/internal/fault"
	"vsnoop/internal/hv"
	"vsnoop/internal/mem"
	"vsnoop/internal/memctrl"
	"vsnoop/internal/mesh"
	"vsnoop/internal/partition"
	"vsnoop/internal/regionscout"
	"vsnoop/internal/sim"
	"vsnoop/internal/tlb"
	"vsnoop/internal/token"
	"vsnoop/internal/workload"
)

// coreNode is one core's hardware: private L1/L2 and the coherence
// controller, plus the queue of vCPUs waiting for the controller.
//
//vsnoop:owned
type coreNode struct {
	idx  int
	node mesh.NodeID
	// dom is the snoop-domain partition owning this core.
	dom    *domain //vsnoop:owned const
	l1, l2 *cache.Cache
	tlb    *tlb.TLB
	ctrl   *token.CacheCtrl     // token-protocol controller (nil in directory mode)
	dctrl  *directory.CacheCtrl // directory-protocol controller (nil in token mode)
	// waitq holds vCPUs blocked on the busy controller in arrival order
	// (relocation hand-over); drainq is the swap buffer the drain event
	// iterates, so draining allocates nothing in steady state.
	waitq  []*vcpu
	drainq []*vcpu
}

// busy reports whether the core's coherence controller has an outstanding
// transaction, regardless of protocol.
func (cn *coreNode) busy() bool {
	if cn.dctrl != nil {
		return cn.dctrl.Busy()
	}
	return cn.ctrl.Busy()
}

// start launches a coherence transaction on whichever protocol is wired.
func (cn *coreNode) start(addr mem.BlockAddr, vm mem.VMID, pt mem.PageType, write bool, done func()) {
	if cn.dctrl != nil {
		cn.dctrl.Start(addr, vm, write, done)
		return
	}
	cn.ctrl.Start(addr, vm, pt, write, done)
}

// RefSource produces a vCPU's reference stream. workload.Generator is the
// synthetic default; trace.Replayer replays a recorded stream.
type RefSource interface {
	Next() workload.Ref
}

// vcpu is one virtual CPU: its reference source, progress, and identity.
//
//vsnoop:owned
type vcpu struct {
	id hv.VCPU
	// dom is the snoop-domain partition this vCPU executes in; it is only
	// rewritten by the depart handler, inside the old owning domain.
	dom      *domain
	core     int // physical core currently hosting this vCPU
	gen      RefSource
	left     int // references remaining
	executed int // references issued so far (for warmup accounting)
	// pending holds the reference being replayed across a delayed resumption
	// (TLB walk, COW trap) or while parked on a busy controller. A vCPU's
	// stream is strictly sequential, so at most one is ever outstanding.
	pending workload.Ref

	// Cross-shard migration state (syncMode only). inTxn marks an open
	// coherence transaction: a depart arriving mid-transaction is deferred
	// (defFrom/defTo) until the completion callback. parked marks membership
	// in a core's waitq; done marks a finished stream (migrating a retired
	// vCPU must not disturb live accounting).
	inTxn    bool
	deferred bool
	parked   bool
	done     bool
	defFrom  int
	defTo    int

	// vix is this vCPU's index in m.vcpus — the column of the own/fwd
	// ownership tables.
	vix int //vsnoop:owned const
}

// domain is one snoop-domain partition of the machine: the cores the
// graph-cut planner assigned to it, the memory controllers at its corners,
// the engine that executes its events, and the run-time statistics its
// events record. A single-domain configuration has exactly one domain
// covering the whole machine, driven by the single legacy engine — the hot
// paths read state through the domain either way, so serial runs pay no
// branch for sharding support.
//
//vsnoop:owned
type domain struct {
	idx   int32       //vsnoop:owned const
	eng   *sim.Engine //vsnoop:owned const
	st    *Stats
	cores []int // core indexes owned by this domain
	mcs   []int // token memory-controller indexes owned by this domain
	homes []int // directory home indexes owned by this domain

	nvcpus   int
	live     int  // vCPUs still running
	warmLeft int  // vCPUs still inside the warmup phase
	warmed   bool // statistics snapshot taken

	// cow is this domain's private translation overlay for copy-on-write
	// faulted pages (partitioned content-sharing runs only): the global
	// page tables stay immutable at runtime, each domain traps its own
	// writes onto the setup-preallocated target page.
	cow map[uint64]mem.Translation
	// probes is the freelist of holder-classification probes this domain
	// originates; allProbes is the append-only registry of every probe the
	// domain ever allocated, so the optimistic engine can checkpoint the
	// in-flight ones by index.
	probes    []*holderProbe
	allProbes []*holderProbe

	// vlist is the authoritative list of vCPUs this domain currently owns
	// (maintained by the depart/arrive handlers); cowLog records the keys
	// inserted into the cow overlay since the last commit. Both exist for
	// the optimistic engine's checkpoints and are only appended outside it.
	vlist  []*vcpu
	cowLog []uint64
}

// Machine is a fully wired simulated system.
type Machine struct {
	cfg Config

	Eng    *sim.Engine
	Net    *mesh.Network
	MM     *mem.Manager
	Mapper *hv.Mapper
	Filter *core.Filter

	// cores and vcpus are ownership tables keyed by core/vCPU index: the
	// element's owner is its dom field (plan.CoreDom[i] for cores), so any
	// index not derived from the executing handler's own inputs reaches
	// foreign state.
	cores  []*coreNode //vsnoop:owned table
	rs     *regionscout.Filter
	mcs    []*memctrl.Ctrl
	homes  []*directory.Home
	vcpus  []*vcpu             //vsnoop:owned table
	node2i map[mesh.NodeID]int // core endpoint -> core index

	// Injector applies the configured fault plan (nil without one).
	Injector *fault.Injector
	// Checker evaluates protocol invariants online (nil unless Checks or a
	// fault plan is configured).
	Checker *check.Checker
	ledger  *check.Ledger
	// ledgers holds one token-custody ledger per domain in sharded mode, so
	// custody observations stay shard-local (conservation sums them).
	ledgers []*check.Ledger

	dom0 mem.VMID

	Stats Stats

	// plan is the graph-cut snoop-domain partition computed for this config;
	// crossHor holds the per-domain cross-shard horizons the mesh derived
	// from the cut (nil in legacy mode).
	plan     partition.Plan
	crossHor []sim.Cycle

	// doms holds the snoop-domain partitions (one covering everything in
	// legacy mode, the planner's cut in sharded mode); sharded is the
	// parallel engine driving them (nil in legacy mode).
	doms    []*domain //vsnoop:owned table
	sharded *sim.ShardedEngine
	// chkNow is the window-boundary clock published to the invariant
	// checker in sharded runs (written by the barrier leader, read by the
	// checker on the same goroutine).
	chkNow sim.Cycle

	// syncMode marks a partitioned run whose filter state mutates at
	// runtime (vCPU migration, a VM spanning domains, scheduled fault
	// events): the machine builds one filter replica per domain and keeps
	// them coherent with ordered cross-shard deltas. running distinguishes
	// runtime relocations (cross-shard protocol) from setup placement.
	syncMode bool
	running  bool
	// replicas holds the per-domain filter replicas in syncMode (nil
	// otherwise; m.Filter then is the single shared filter). replicas[0]
	// doubles as m.Filter so external accessors keep working.
	replicas []*core.Filter //vsnoop:owned table

	// cowTargets maps CowKey(vm, page) to the setup-preallocated private
	// host page a COW trap resolves to (partitioned content-sharing only),
	// making the target a pure function of the config.
	cowTargets map[uint64]mem.HostPage
	// friendOf/hasFriend are the static post-merge friend tables used by
	// partitioned holder classification (the global mem.Manager is never
	// consulted from domain goroutines at runtime).
	friendOf  []mem.VMID
	hasFriend []bool

	// inflight marks vCPUs with an open cross-shard migration (indexed by
	// vcpuIndex); the shuffler and storms skip them so at most one move per
	// vCPU is ever in the air. retired counts finished vCPUs observed by
	// dom0 so the recurring shuffle tick knows when to stop rescheduling.
	inflight   []bool
	retired    int
	shufRng    *sim.Rand
	shufPeriod sim.Cycle

	// DebugMissHook, if set, receives (guest page, write) for every
	// measured guest L2 miss; used by calibration tooling only.
	DebugMissHook func(page int, write bool)

	// own/fwd are the flat per-domain vCPU location tables of sharded mode
	// (nil in legacy): own[d*nv+vix] reports whether domain d currently owns
	// vCPU vix, and fwd[d*nv+vix] is where d last sent it. Row d is written
	// exclusively by domain d's handlers — depart clears own and points fwd
	// at the destination, arrive sets both — so every shard reads only rows
	// it owns and the event-chase path hops along fwd one domain at a time.
	// Chasing through these rows instead of the vCPU's dom pointer (which
	// the destination shard may be rewriting concurrently) makes the chase
	// both race-free and a pure function of simulated time.
	own []bool  //vsnoop:owned table
	fwd []int32 //vsnoop:owned table
	nv  int

	// Optimistic (timewarp) execution support. twOn gates the undo-log
	// appends on the migration and COW paths; domShard maps each domain to
	// the shard executing it; twLog is the per-shard arrival undo log —
	// chronological, because all of a shard's domains run on one goroutine;
	// shardState adapts the per-domain model state to sim.ShardState.
	twOn       bool
	domShard   []int32
	twLog      [][]arriveSave //vsnoop:owned table
	shardState *machineState

	// stepFn/resumeFn are the prebound event handlers for the two hottest
	// schedulers (per-reference think-time step, delayed reference
	// resumption); the vCPU rides in the event's arg, so neither allocates.
	// The rest are the prebound handlers of the cross-shard protocols.
	stepFn        sim.HandlerFn
	resumeFn      sim.HandlerFn
	drainFn       sim.HandlerFn
	departFn      sim.HandlerFn
	arriveFn      sim.HandlerFn
	ackFn         sim.HandlerFn
	retireFn      sim.HandlerFn
	tickFn        sim.HandlerFn
	deltaFn       sim.HandlerFn
	classifyReqFn sim.HandlerFn
	classifyRepFn sim.HandlerFn
}

// New builds a machine from cfg; it returns an error on invalid
// configuration.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg, node2i: make(map[mesh.NodeID]int)}

	// Engine topology. The graph-cut planner fixes the snoop-domain
	// decomposition as a pure function of the config — Shards only picks how
	// many goroutines execute the domains (domain d runs on shard d mod K),
	// so results are bit-identical for every K. A single-domain plan keeps
	// the legacy engine as its one whole-machine domain.
	plan := cfg.PlanPartition()
	m.plan = plan
	if plan.Domains > 1 {
		nd := plan.Domains
		k := cfg.Shards
		if k < 1 {
			k = 1
		}
		if k > nd {
			k = nd
		}
		domShard := make([]int, nd)
		m.domShard = make([]int32, nd)
		for d := range domShard {
			domShard[d] = d % k
			m.domShard[d] = int32(d % k)
		}
		// Lookahead: any cross-domain message crosses at least one mesh hop
		// (router + link + one flit), and fault delays only add latency.
		lookahead := cfg.Mesh.RouterDelay + cfg.Mesh.LinkDelay + 1
		m.sharded = sim.NewSharded(domShard, lookahead)
		m.Eng = m.sharded.Eng(0)
		for d := 0; d < nd; d++ {
			m.doms = append(m.doms, &domain{
				idx: int32(d), eng: m.sharded.Eng(domShard[d]), st: &Stats{cfg: cfg.sansControl()},
			})
		}
	} else {
		m.Eng = sim.NewEngine()
		m.doms = []*domain{{idx: 0, eng: m.Eng, st: &m.Stats}}
	}
	m.syncMode = m.sharded != nil && cfg.needSync(plan)

	// stepFn/resumeFn carry the scheduled domain index in u: when a migrated
	// vCPU's event fires in a domain that no longer owns it, the handler
	// chases it along the fwd table through the deposit path (which preserves
	// the lookahead discipline). The ownership test reads only row u of the
	// own table — state the executing shard itself writes. Legacy runs have
	// no own table and never chase.
	m.stepFn = func(arg interface{}, u uint64) {
		v := arg.(*vcpu)
		if m.own != nil && !m.own[int(u)*m.nv+v.vix] {
			m.chase(v, u, m.stepFn)
			return
		}
		m.step(v)
	}
	m.resumeFn = func(arg interface{}, u uint64) {
		v := arg.(*vcpu)
		if m.own != nil && !m.own[int(u)*m.nv+v.vix] {
			m.chase(v, u, m.resumeFn)
			return
		}
		m.issueRef(v, v.pending)
	}
	m.drainFn = func(arg interface{}, _ uint64) { m.drainWaiters(arg.(*coreNode)) }
	m.departFn = m.handleDepart
	m.arriveFn = m.handleArrive
	m.ackFn = func(arg interface{}, _ uint64) { m.inflight[m.vcpuIndex(arg.(*vcpu).id)] = false }
	m.retireFn = func(_ interface{}, _ uint64) { m.retired++ }
	m.tickFn = func(_ interface{}, _ uint64) { m.shuffleTick() }
	m.deltaFn = applyDelta
	m.classifyReqFn = m.handleClassifyReq
	m.classifyRepFn = m.handleClassifyRep
	m.Net = mesh.New(m.Eng, cfg.Mesh)
	m.MM = mem.NewManager(cfg.HvPages)
	m.Mapper = hv.NewMapper(cfg.Cores)
	m.dom0 = mem.VMID(0xFFFD)
	m.Stats.init(cfg)

	// Core endpoints, row-major on the mesh.
	coreNodes := make([]mesh.NodeID, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		x, y := i%cfg.Mesh.Width, i/cfg.Mesh.Width
		coreNodes[i] = m.Net.Attach(x, y, nil)
		m.node2i[coreNodes[i]] = i
	}
	// Memory controllers at the corners, block-interleaved.
	cornerXY := [4][2]int{{0, 0}, {cfg.Mesh.Width - 1, 0}, {0, cfg.Mesh.Height - 1}, {cfg.Mesh.Width - 1, cfg.Mesh.Height - 1}}
	mcNodes := make([]mesh.NodeID, cfg.MCs)
	for i := 0; i < cfg.MCs; i++ {
		mcNodes[i] = m.Net.Attach(cornerXY[i][0], cornerXY[i][1], nil)
	}

	// Domain ownership follows the plan's computed cut: cores by CoreDom,
	// memory controllers by MCDom (nearest-corner assignment). In legacy
	// mode the single domain owns everything. Then hand the network the
	// partition so intra-domain traffic keeps full contention while
	// cross-domain messages are delivered at zero-load latency into the
	// destination domain's queue.
	if m.sharded != nil {
		for i := 0; i < cfg.Cores; i++ {
			d := plan.CoreDom[i]
			m.doms[d].cores = append(m.doms[d].cores, i)
		}
		for i := 0; i < cfg.MCs; i++ {
			d := plan.MCDom[i]
			if cfg.Directory {
				m.doms[d].homes = append(m.doms[d].homes, i)
			} else {
				m.doms[d].mcs = append(m.doms[d].mcs, i)
			}
		}
		nodeDom := make([]int32, cfg.Cores+cfg.MCs)
		for i := 0; i < cfg.Cores; i++ {
			nodeDom[coreNodes[i]] = plan.CoreDom[i]
		}
		for i := 0; i < cfg.MCs; i++ {
			nodeDom[mcNodes[i]] = plan.MCDom[i]
		}
		engs := make([]*sim.Engine, len(m.doms))
		for d, dom := range m.doms {
			engs[d] = dom.eng
		}
		m.Net.Partition(nodeDom, engs)
		// Hand the partition's per-domain cross-traffic horizons to the
		// sharded engine: adaptive-mode output lookaheads tighter than (or
		// equal to) the global one. NoElision pins the fully-barriered
		// windowed protocol instead.
		m.crossHor = m.Net.CrossHorizons()
		m.sharded.SetDomainLookahead(m.crossHor)
		m.sharded.DisableElision = cfg.NoElision
	} else {
		d := m.doms[0]
		for i := 0; i < cfg.Cores; i++ {
			d.cores = append(d.cores, i)
		}
		for i := 0; i < cfg.MCs; i++ {
			if cfg.Directory {
				d.homes = append(d.homes, i)
			} else {
				d.mcs = append(d.mcs, i)
			}
		}
	}

	// Caches + filter. In syncMode the filter's register file is replicated
	// per domain: each replica owns the residence callbacks of its domain's
	// caches, reads its own domain's clock, and propagates its authoritative
	// map removals to the other replicas as ordered cross-shard deltas.
	// Outside syncMode every VM's state is written from one domain only, so
	// the single shared filter stays safe.
	l2s := make([]*cache.Cache, cfg.Cores)
	for i := range l2s {
		l2s[i] = cache.New(cfg.L2)
	}
	if m.syncMode {
		m.replicas = make([]*core.Filter, len(m.doms))
		for d := range m.doms {
			m.replicas[d] = core.NewFilterScoped(m.doms[d].eng, cfg.Filter, coreNodes, l2s, m.doms[d].cores)
		}
		m.Filter = m.replicas[0]
		for d := range m.replicas {
			dom := m.doms[d]
			m.replicas[d].OnMapRemove = func(vm mem.VMID, coreIdx int) {
				m.broadcastDelta(dom, opMapClear, vm, coreIdx)
			}
		}
	} else {
		m.Filter = core.NewFilter(m.Eng, cfg.Filter, coreNodes, l2s)
	}

	// Cache-side controllers.
	dirParams := directory.DefaultParams()
	dirParams.CtrlBytes, dirParams.DataBytes = cfg.P.CtrlBytes, cfg.P.DataBytes
	dirParams.L2Latency, dirParams.FillLatency = cfg.P.L2Latency, cfg.P.FillLatency
	dirParams.DRAMLatency = cfg.P.DRAMLatency
	for i := 0; i < cfg.Cores; i++ {
		cn := &coreNode{idx: i, node: coreNodes[i], dom: m.domOfCore(i), l2: l2s[i], l1: cache.New(cfg.L1), tlb: tlb.New(cfg.TLB)}
		if cfg.Directory {
			cn.dctrl = &directory.CacheCtrl{
				Eng: cn.dom.eng, Net: m.Net, Node: coreNodes[i], Core: i,
				L2: cn.l2, P: dirParams, Tokens: cfg.P.TotalTokens,
				Homes: mcNodes,
			}
			cn.dctrl.Init()
			m.Net.SetHandler(coreNodes[i], cn.dctrl.Handle)
		} else {
			others := make([]mesh.NodeID, 0, cfg.Cores-1)
			for j, n := range coreNodes {
				if j != i {
					others = append(others, n)
				}
			}
			cn.ctrl = &token.CacheCtrl{
				Eng: cn.dom.eng, Net: m.Net, Node: coreNodes[i], Core: i,
				L2: cn.l2, P: cfg.P, Router: m.filterOf(cn.dom),
				AllCores: others, MCNodes: mcNodes,
				Rng: sim.NewRandTagged(cfg.Seed, fmt.Sprintf("ctrl%d", i)),
			}
			cn.ctrl.Init()
			if m.sharded != nil {
				// Provider designation stays domain-local: the fill scan
				// reads only caches this domain's goroutine owns.
				dom := cn.dom
				cn.ctrl.OnFill = func(b *cache.Block, t *token.Txn) { m.onFillDom(dom, b, t) }
			} else {
				cn.ctrl.OnFill = m.onFill
			}
			m.Net.SetHandler(coreNodes[i], cn.ctrl.Handle)
		}
		// L1 inclusion: L2 drops force L1 drops.
		l1 := cn.l1
		cn.l2.OnDrop = func(a mem.BlockAddr) {
			if b := l1.Lookup(a); b != nil {
				l1.Invalidate(b)
			}
		}
		m.cores = append(m.cores, cn)
	}

	// Optional RegionScout router (related-work comparison). Wired after
	// the L1-inclusion hooks so its presence tracking chains with them.
	if cfg.UseRegionScout {
		m.rs = regionscout.New(regionscout.DefaultConfig(), coreNodes, l2s)
		if m.sharded != nil {
			// Domain-owned NSRTs and presence maps: remote domains are
			// consulted through probe events under the same lookahead
			// discipline as the mesh.
			domCores := make([][]int, len(m.doms))
			domEng := make([]*sim.Engine, len(m.doms))
			for d, dom := range m.doms {
				domCores[d] = dom.cores
				domEng[d] = dom.eng
			}
			m.rs.Partition(plan.CoreDom, domCores, domEng, m.crossHor)
		}
		for _, cn := range m.cores {
			cn.ctrl.Router = m.rs
		}
	}

	// Memory-side controllers: directory homes or token homes, each driven
	// by the engine of the domain the planner assigned its corner to.
	if cfg.Directory {
		for i := 0; i < cfg.MCs; i++ {
			hEng := m.Eng
			if m.sharded != nil {
				hEng = m.doms[plan.MCDom[i]].eng
			}
			h := &directory.Home{Eng: hEng, Net: m.Net, Node: mcNodes[i], P: dirParams}
			h.Init()
			m.Net.SetHandler(mcNodes[i], h.Handle)
			m.homes = append(m.homes, h)
		}
	} else {
		for i := 0; i < cfg.MCs; i++ {
			mcEng := m.Eng
			var oracle token.Oracle = m
			if m.sharded != nil {
				md := m.doms[plan.MCDom[i]]
				mcEng = md.eng
				// The provider oracle scans only the MC's own domain's
				// caches: a missed remote provider is a safe false negative
				// (one extra DRAM read), and the answer is a pure function
				// of the partition, never of the shard interleaving.
				oracle = domOracle{m: m, d: md}
			}
			mc := &memctrl.Ctrl{Eng: mcEng, Net: m.Net, Node: mcNodes[i], P: cfg.P,
				AllCaches: coreNodes, Oracle: oracle}
			mc.Init()
			m.Net.SetHandler(mcNodes[i], mc.Handle)
			m.mcs = append(m.mcs, mc)
		}
	}

	// Hypervisor relocation hook keeps the filter's maps (and the vCPU's
	// cached core index) current; on an untagged TLB a vCPU switch also
	// flushes the new core's TLB. At runtime in syncMode the move instead
	// becomes an ordered cross-shard transaction (beginMove): depart in the
	// old domain, arrive in the new one, registration deltas everywhere.
	m.Mapper.OnRelocate = func(id hv.VCPU, from, to int) {
		if m.running && m.syncMode {
			m.beginMove(id, from, to)
			return
		}
		if v := m.vcpuAt(id); v != nil {
			v.core = to
			v.dom = m.domOfCore(to)
		}
		if m.replicas != nil {
			if from >= 0 {
				ownFrom := m.plan.CoreDom[from]
				m.replicas[ownFrom].RelocateDepart(id.VM, from)
				for d, rep := range m.replicas {
					if int32(d) != ownFrom {
						rep.ApplyRunClear(id.VM, from)
					}
				}
			}
			ownTo := m.plan.CoreDom[to]
			m.replicas[ownTo].RelocateArrive(id.VM, to)
			for d, rep := range m.replicas {
				if int32(d) != ownTo {
					rep.ApplyRunSet(id.VM, to)
					rep.ApplyMapSet(id.VM, to)
				}
			}
		} else {
			m.Filter.HandleRelocate(id.VM, from, to)
		}
		if !cfg.TLB.Tagged {
			m.cores[to].tlb.FlushAll()
		}
	}
	// Selective-flush support (PolicyCounterFlush): the filter asks the
	// departed core's controller to write the VM's blocks back. Each replica
	// only ever flushes cores its own domain owns.
	flushVM := func(coreIdx int, vm mem.VMID) {
		if cn := m.cores[coreIdx]; cn.ctrl != nil {
			cn.ctrl.FlushVM(vm)
		}
	}
	if m.replicas != nil {
		for _, rep := range m.replicas {
			rep.OnFlushVM = flushVM
		}
	} else {
		m.Filter.OnFlushVM = flushVM
	}

	// Fault injection: mesh hook, degradation, underflow recovery, and
	// scheduled events. Token-protocol only (Validate enforces it).
	if cfg.Fault.Active() && !cfg.Directory {
		m.Injector = fault.NewInjector(cfg.Fault, cfg.Seed)
		m.Injector.Attach(m.Net, mcNodes)
		if m.sharded != nil {
			// Per-source-node fault streams: each endpoint's faults draw
			// from its own seeded sequence, consumed in that endpoint's
			// deterministic send order — reproducible for any shard count.
			m.Injector.EnablePerNode(cfg.Cores + cfg.MCs)
		}
		if m.replicas != nil {
			for _, rep := range m.replicas {
				rep.DegradationEnabled = true
			}
		} else {
			m.Filter.DegradationEnabled = true
		}
		for _, cn := range m.cores {
			f := m.filterOf(cn.dom)
			cn.ctrl.Esc = f
			cn.l2.OnResidenceUnderflow = f.NoteUnderflow
		}
		if m.syncMode {
			// Scheduled events run in domain 0 (single writer for the
			// injector's event counters) and fan out to the target domains
			// through the deposit path.
			m.scheduleFaultEvents()
		} else {
			m.Injector.ScheduleEvents(m.Eng, fault.EventHooks{
				CorruptMap: m.Filter.CorruptMap,
				CorruptCounter: func(coreIdx int, vm mem.VMID, delta int) {
					if coreIdx >= 0 && coreIdx < len(m.cores) {
						m.cores[coreIdx].l2.CorruptResidence(vm, delta)
					}
				},
				MigrationStorm: m.migrationStorm,
			})
		}
	}

	// Invariant checking: token-custody ledger on every controller plus
	// the periodic checker. Observation-only, so results are identical
	// with or without it; a fault plan always implies it.
	if (cfg.Checks || cfg.Fault.Active()) && !cfg.Directory {
		ctrls := make([]*token.CacheCtrl, len(m.cores))
		ageLimit := cfg.TxnAgeLimit
		if ageLimit == 0 {
			ageLimit = 500_000
		}
		if m.sharded != nil {
			// One token-custody ledger per domain: controllers report to
			// their own domain's ledger (per-ledger balances may go negative
			// on cross-domain transfers; conservation sums across ledgers).
			// The checker runs at window boundaries on the barrier leader —
			// every shard quiesced — against the published window clock.
			m.ledgers = make([]*check.Ledger, len(m.doms))
			for d := range m.ledgers {
				m.ledgers[d] = check.NewLedger()
			}
			for i, cn := range m.cores {
				cn.ctrl.Obs = m.ledgers[cn.dom.idx]
				ctrls[i] = cn.ctrl
			}
			for i, mc := range m.mcs {
				mc.Obs = m.ledgers[plan.MCDom[i]]
			}
			nowFn := func() sim.Cycle { return m.chkNow }
			m.Checker = &check.Checker{Period: cfg.CheckPeriod, Now: nowFn}
			m.Checker.Add(check.TokenConservation(cfg.P.TotalTokens, l2s, m.mcs, m.ledgers...))
			m.Checker.Add(check.SingleWriter(cfg.P.TotalTokens, l2s))
			m.Checker.Add(check.TxnCompletion(nowFn, ctrls, ageLimit))
		} else {
			m.ledger = check.NewLedger()
			for i, cn := range m.cores {
				cn.ctrl.Obs = m.ledger
				ctrls[i] = cn.ctrl
			}
			for _, mc := range m.mcs {
				mc.Obs = m.ledger
			}
			m.Checker = &check.Checker{Eng: m.Eng, Period: cfg.CheckPeriod}
			m.Checker.Add(check.TokenConservation(cfg.P.TotalTokens, l2s, m.mcs, m.ledger))
			m.Checker.Add(check.SingleWriter(cfg.P.TotalTokens, l2s))
			m.Checker.Add(check.TxnCompletion(m.Eng.Now, ctrls, ageLimit))
		}
	}

	m.setupVMs()

	// Sharded post-setup wiring. Page allocation must not depend on the
	// shard interleaving of first touches; COW targets are preallocated so
	// a trap never mutates global page tables; (under faults) each VM's
	// degradation machinery is confined to its owning domain's caches and
	// clock. Every vCPU then joins the domain its core was cut into.
	if m.sharded != nil {
		m.MM.PreallocateAll()
		if cfg.ContentSharing {
			m.cowTargets = m.MM.PrepareCowTargets()
			for _, d := range m.doms {
				d.cow = make(map[uint64]mem.Translation)
			}
			m.initFriendTable()
		}
		if m.Injector != nil {
			if m.replicas != nil {
				for d, rep := range m.replicas {
					for q := 0; q < cfg.VMs; q++ {
						rep.SetVMScope(mem.VMID(q), m.doms[d].cores, m.doms[d].eng)
					}
				}
			} else {
				for q := 0; q < cfg.VMs; q++ {
					// Without sync the VM never leaves its home domain
					// (needSync would be true otherwise), so scope its
					// degradation machinery to that domain alone.
					hd := m.domOfCore(m.Mapper.CoreOf(hv.VCPU{VM: mem.VMID(q), Idx: 0}))
					m.Filter.SetVMScope(mem.VMID(q), hd.cores, hd.eng)
				}
			}
		}
	}
	if m.sharded != nil {
		m.nv = len(m.vcpus)
		m.own = make([]bool, len(m.doms)*m.nv)
		m.fwd = make([]int32, len(m.doms)*m.nv)
	}
	for i, v := range m.vcpus {
		v.vix = i
		v.core = m.Mapper.CoreOf(v.id)
		v.dom = m.domOfCore(v.core)
		v.dom.nvcpus++
	}
	m.initLocationTables()
	return m, nil
}

// initLocationTables (re)derives the per-domain vCPU lists and the own/fwd
// location rows from the mapper's current placement. Called at construction
// and again when a partitioned run starts, so placement changes between the
// two (tests relocating by hand) cannot leave the tables stale.
func (m *Machine) initLocationTables() {
	if m.sharded == nil {
		return
	}
	for _, d := range m.doms {
		d.vlist = d.vlist[:0]
	}
	for i, v := range m.vcpus {
		v.dom = m.domOfCore(v.core)
		v.dom.vlist = append(v.dom.vlist, v)
		for d := range m.doms {
			m.own[d*m.nv+i] = int32(d) == v.dom.idx
			m.fwd[d*m.nv+i] = v.dom.idx
		}
	}
	for _, d := range m.doms {
		d.nvcpus = len(d.vlist)
	}
}

// domOfCore returns the domain owning core i (per the computed cut).
func (m *Machine) domOfCore(i int) *domain {
	if m.sharded == nil {
		return m.doms[0]
	}
	return m.doms[m.plan.CoreDom[i]]
}

// migrationStorm performs up to pairs cross-VM vCPU swaps back-to-back (a
// relocation burst that churns every vCPU map at once). It returns the
// number of relocations performed.
func (m *Machine) migrationStorm(pairs int) int {
	before := m.Mapper.Relocations
	n := m.Mapper.NumCores()
	for p := 0; p < pairs; p++ {
		for try := 0; try < 16; try++ {
			a, b := m.Injector.Rng.Intn(n), m.Injector.Rng.Intn(n)
			va, vb := m.Mapper.On(a), m.Mapper.On(b)
			if va == hv.NoVCPU || vb == hv.NoVCPU || va.VM == vb.VM {
				continue
			}
			m.Mapper.Swap(a, b)
			break
		}
	}
	return int(m.Mapper.Relocations - before)
}

// ReplaceSources swaps every vCPU's reference source (e.g. with trace
// replayers). sources must have one entry per vCPU, ordered VM-major.
// Call before Run.
func (m *Machine) ReplaceSources(sources []RefSource) error {
	if len(sources) != len(m.vcpus) {
		return fmt.Errorf("system: %d sources for %d vCPUs", len(sources), len(m.vcpus))
	}
	for i, v := range m.vcpus {
		v.gen = sources[i]
	}
	return nil
}

// setupVMs builds address spaces, content sharing, generators, and the
// initial quadrant placement of vCPUs.
func (m *Machine) setupVMs() {
	cfg := m.cfg
	// dom0's working pages live in the shared hypervisor region already;
	// no separate space needed.
	for vm := 0; vm < cfg.VMs; vm++ {
		prof := workload.MustGet(cfg.workloadFor(vm))
		if cfg.NoHypervisor {
			prof.XenFrac, prof.Dom0Frac = 0, 0
		}
		m.MM.NewSpace(mem.VMID(vm), prof.GuestPages(cfg.VCPUsPerVM))
		layout := workload.NewLayout(prof, cfg.VCPUsPerVM)
		if cfg.ContentSharing {
			lo, hi := layout.ContentRange()
			// Content IDs derive from the profile name so homogeneous VMs
			// share all content pages and heterogeneous VMs share none.
			base := mem.ContentID(hashName(prof.Name)) << 20
			for gp := lo; gp < hi; gp++ {
				m.MM.SetContent(mem.VMID(vm), mem.GuestPage(gp), base|mem.ContentID(gp+1))
			}
		}
		for t := 0; t < cfg.VCPUsPerVM; t++ {
			m.vcpus = append(m.vcpus, &vcpu{
				id:   hv.VCPU{VM: mem.VMID(vm), Idx: t},
				gen:  workload.NewGenerator(prof, cfg.VCPUsPerVM, t, cfg.Seed+uint64(vm)*1000),
				left: cfg.RefsPerVCPU,
			})
		}
	}
	if cfg.ContentSharing {
		m.MM.OnShareFlush = m.flushPageEverywhere
		m.MM.MergeIdentical()
		for vm := 0; vm < cfg.VMs; vm++ {
			if friend, ok := m.MM.FriendOf(mem.VMID(vm)); ok {
				m.Filter.SetFriend(mem.VMID(vm), friend)
			}
		}
	}
	m.placeVMs()
}

// placeVMs pins each VM's vCPUs onto a compact region of the mesh
// (quadrants for the default 4 VMs x 4 vCPUs on 4x4), the ideal placement
// of Section V.B.
func (m *Machine) placeVMs() {
	cfg := m.cfg
	if !cfg.LinearPlacement && cfg.Cores == 16 && cfg.VMs <= 4 && cfg.VCPUsPerVM == 4 && cfg.Mesh.Width == 4 {
		for _, v := range m.vcpus {
			q := int(v.id.VM)
			x0, y0 := 2*(q%2), 2*(q/2)
			x, y := x0+v.id.Idx%2, y0+v.id.Idx/2
			m.Mapper.Place(v.id, y*4+x)
		}
		return
	}
	c := 0
	for _, v := range m.vcpus {
		m.Mapper.Place(v.id, c)
		c++
	}
}

// flushPageEverywhere writes back every cached block of a page (invoked
// when the hypervisor marks a page RO-shared so memory holds clean data).
func (m *Machine) flushPageEverywhere(p mem.HostPage) {
	for _, cn := range m.cores {
		for range cn.l2.FlushPage(p) {
			// Token state returns to memory implicitly at setup time (the
			// caches are empty before Run); at runtime the writeback path
			// would be used. Setup-only in this model.
		}
	}
}

// hashName gives a stable small hash for content-ID namespacing.
func hashName(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h & 0xFFF
}

// ROProviderAmong implements token.Oracle for the memory controllers.
func (m *Machine) ROProviderAmong(addr mem.BlockAddr, cores []mesh.NodeID) bool {
	for _, n := range cores {
		i, ok := m.node2i[n]
		if !ok {
			continue
		}
		if b := m.cores[i].l2.Lookup(addr); b != nil && b.Provider {
			return true
		}
	}
	return false
}

// onFill designates RO provider copies: the first copy of a content-shared
// block brought into a VM becomes that VM's provider (Section VI.B).
func (m *Machine) onFill(b *cache.Block, t *token.Txn) {
	if t.Page != mem.PageROShared || t.Write {
		return
	}
	for _, cn := range m.cores {
		if ob := cn.l2.Lookup(b.Addr); ob != nil && ob != b && ob.Provider && ob.VM == t.VM {
			return // this VM already has a provider
		}
	}
	b.Provider = true
}

// Run executes the configured reference streams to completion and returns
// the collected statistics; it panics on a runtime failure (watchdog trip,
// step-budget exhaustion, drained queue). Use RunChecked to get the error.
func (m *Machine) Run() *Stats {
	st, err := m.RunChecked()
	if err != nil {
		panic(err)
	}
	return st
}

// RunChecked executes the run under the no-forward-progress watchdog and
// (when configured) the step budget and invariant checker. The returned
// Stats are valid even on error — they describe the run up to the failure,
// which is exactly what a livelock diagnosis needs.
func (m *Machine) RunChecked() (*Stats, error) {
	if m.sharded != nil {
		return m.runSharded()
	}
	cfg := m.cfg
	if cfg.MigrationPeriodMs > 0 {
		sh := &hv.Shuffler{
			Eng: m.Eng, Map: m.Mapper,
			Period: sim.Cycle(cfg.MigrationPeriodMs * float64(cfg.CyclesPerMs)),
			Rng:    sim.NewRandTagged(cfg.Seed, "shuffle"),
		}
		sh.Start()
		defer sh.Stop()
	}
	if m.Checker != nil {
		m.Checker.Start()
		defer m.Checker.Stop()
	}
	limit := cfg.ProgressLimit
	if limit == 0 {
		limit = 10_000_000
	}
	m.Eng.SetProgressLimit(limit)
	m.Eng.SetCancel(cfg.Cancel)
	d := m.doms[0]
	d.live = len(m.vcpus)
	if cfg.WarmupRefs > 0 {
		d.warmLeft = len(m.vcpus)
	} else {
		d.warmed = true
	}
	for i, v := range m.vcpus {
		m.Eng.ScheduleFn(sim.Cycle(i), m.stepFn, v, 0)
	}
	err := m.runUntilDone()
	if err == nil && m.Checker != nil {
		m.Checker.CheckNow() // final sweep at quiescence
	}
	m.finalizeStats()
	return &m.Stats, err
}

// runSharded executes a domain-partitioned run on the parallel engine:
// conservative window synchronization over the per-domain event queues,
// with the invariant checker driven at window boundaries (every shard
// quiesced) instead of by self-scheduled engine events. The semantic event
// ordering is fixed by the domain partition, so any shard count — including
// the degenerate K=1 — produces identical results.
func (m *Machine) runSharded() (*Stats, error) {
	cfg := m.cfg
	limit := cfg.ProgressLimit
	if limit == 0 {
		limit = 10_000_000
	}
	m.sharded.SetProgressLimit(limit)
	m.sharded.SetCancel(cfg.Cancel)
	m.sharded.MaxSteps = cfg.MaxSteps
	m.initLocationTables()
	mode := m.resolveMode()
	m.sharded.Mode = mode
	if mode == sim.ModeTimewarp {
		m.twOn = true
		m.shardState = newMachineState(m)
		m.sharded.SetShardState(m.shardState)
		// Arm copy-on-first-touch journals on the bulk structures (cache
		// sets, memory-controller tables), so a checkpoint costs what the
		// epoch touched, not what the machine holds.
		for _, cn := range m.cores {
			cn.l1.EnableJournal()
			cn.l2.EnableJournal()
			cn.tlb.EnableJournal()
		}
		for _, mc := range m.mcs {
			mc.EnableJournal()
		}
	}
	m.running = true
	if m.syncMode {
		m.inflight = make([]bool, len(m.vcpus))
		if cfg.MigrationPeriodMs > 0 {
			// The machine owns the shuffle tick in partitioned runs: it
			// runs in domain 0 (single writer for the mapper and the RNG)
			// and every move it triggers becomes a cross-shard transaction.
			m.shufRng = sim.NewRandTagged(cfg.Seed, "shuffle")
			m.shufPeriod = sim.Cycle(cfg.MigrationPeriodMs * float64(cfg.CyclesPerMs))
			eng := m.doms[0].eng
			eng.SetCurDomain(0)
			eng.ScheduleFn(m.shufPeriod, m.tickFn, nil, 0)
		}
	}
	for _, d := range m.doms {
		d.live = d.nvcpus
		if cfg.WarmupRefs > 0 {
			d.warmLeft = d.nvcpus
		} else {
			d.warmed = true
		}
	}
	for i, v := range m.vcpus {
		v.dom.eng.SetCurDomain(v.dom.idx)
		v.dom.eng.ScheduleFn(sim.Cycle(i), m.stepFn, v, uint64(v.dom.idx))
	}
	if m.Checker != nil {
		period := cfg.CheckPeriod
		if period <= 0 {
			period = 5000
		}
		next := period
		m.sharded.OnWindow = func(now sim.Cycle) error {
			if now >= next {
				m.chkNow = now
				m.Checker.CheckNow()
				next = (now/period + 1) * period
			}
			return nil
		}
	}
	err := m.sharded.Run()
	if err == nil {
		live := 0
		for _, d := range m.doms {
			live += d.live
		}
		if live > 0 {
			err = fmt.Errorf("system: event queue drained with %d unfinished vCPUs", live)
		}
	}
	if err == nil && m.Checker != nil {
		m.chkNow = m.sharded.Now()
		m.Checker.CheckNow() // final sweep at quiescence
	}
	m.finalizeStats()
	return &m.Stats, err
}

// runUntilDone drains events until every vCPU finished. The shuffler and
// checker keep the queue non-empty, so step until the live count reaches
// zero, failing on a watchdog trip or an exhausted step budget.
func (m *Machine) runUntilDone() error {
	var steps uint64
	d := m.doms[0]
	for d.live > 0 {
		ok, err := m.Eng.StepChecked()
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("system: event queue drained with %d unfinished vCPUs", d.live)
		}
		steps++
		if m.cfg.MaxSteps > 0 && steps >= m.cfg.MaxSteps && d.live > 0 {
			return &sim.StepLimitError{Limit: m.cfg.MaxSteps, Now: m.Eng.Now(), Pending: m.Eng.Pending()}
		}
	}
	return nil
}

// step issues the next reference of v on its current core.
func (m *Machine) step(v *vcpu) {
	d := v.dom
	d.eng.Progress() // a vCPU advancing its stream is forward progress
	if v.left == 0 {
		d.live--
		if d.st.ExecCycles < uint64(d.eng.Now()) {
			d.st.ExecCycles = uint64(d.eng.Now())
		}
		v.done = true
		if m.shufPeriod > 0 {
			// Tell dom0 (which owns the recurring shuffle tick) that one
			// more stream retired, so the tick can stop rescheduling once
			// every vCPU is done and the run can drain.
			d.eng.ScheduleFnAtDom(d.eng.Now()+m.crossHor[d.idx], 0, m.retireFn, nil, 0)
		}
		return
	}
	v.left--
	v.executed++
	if !d.warmed && v.executed == m.cfg.WarmupRefs {
		d.warmLeft--
		if d.warmLeft == 0 {
			m.takeSnapshot(d)
		}
	}
	m.issueRef(v, v.gen.Next())
}

// issueRef runs one reference on the vCPU's current core, parking it if
// the core's coherence controller is still busy with the previous
// occupant's miss (relocation hand-over). Delayed resumptions (TLB walks,
// copy-on-write traps) re-enter here so occupancy is always re-checked —
// the vCPU may have been relocated, or another vCPU may have claimed the
// controller, while the delay elapsed.
func (m *Machine) issueRef(v *vcpu, ref workload.Ref) {
	cn := m.cores[v.core]
	if cn.busy() {
		v.pending = ref
		v.parked = true
		cn.waitq = append(cn.waitq, v)
		return
	}
	m.execute(v, cn, ref)
}

// drainWaiters re-issues every vCPU parked on cn, in arrival order. The
// first one claims the controller; the rest re-park. One drain event per
// completed transaction with waiters — the same event count the legacy
// closure chain produced.
func (m *Machine) drainWaiters(cn *coreNode) {
	q := cn.waitq
	cn.waitq = cn.drainq[:0]
	cn.drainq = q
	for _, v := range q {
		v.parked = false
		m.issueRef(v, v.pending)
	}
}

// execute performs one memory reference on core cn.
func (m *Machine) execute(v *vcpu, cn *coreNode, ref workload.Ref) {
	cfg := m.cfg
	d := v.dom
	st := d.st

	// Translate: context decides the address space and attribution.
	var (
		host  mem.HostPage
		ptype mem.PageType
		tagVM mem.VMID
	)
	var walk sim.Cycle
	switch ref.Ctx {
	case workload.CtxGuest:
		tr, hit := cn.tlb.Lookup(v.id.VM, ref.Page)
		if !hit {
			tr = m.translate(d, v.id.VM, ref.Page)
			cn.tlb.Insert(v.id.VM, ref.Page, tr)
			walk = sim.Cycle(cfg.TLB.WalkLatency)
		}
		if ref.Write && tr.Type == mem.PageROShared {
			// Store to a content-shared page: hypervisor COW, then a TLB
			// shootdown on every core the VM may run on, then retry the
			// access against the fresh private page. Partitioned runs trap
			// into the domain's private overlay (the target host page was
			// preallocated at setup) and shoot down only their own cores —
			// another domain writing the same page traps again there, onto
			// the same target.
			if m.cowTargets != nil {
				key := mem.CowKey(v.id.VM, ref.Page)
				d.cow[key] = mem.Translation{Host: m.cowTargets[key], Type: mem.PagePrivate}
				if m.twOn {
					// The overlay is insert-only (the trap fires once per
					// domain per page), so an undo log of inserted keys is a
					// complete checkpoint delta.
					d.cowLog = append(d.cowLog, key)
				}
				st.Cows++
				for _, ci := range d.cores {
					m.cores[ci].tlb.Shootdown(v.id.VM, ref.Page)
				}
			} else {
				// Serial-only: a sharded content-sharing run always has
				// cowTargets (setup preallocates them), so the global
				// page-table mutation never races. The single legacy
				// domain owns every core, so shooting down d.cores is the
				// whole machine here — and stays domain-confined if a
				// future mode ever reaches this branch sharded.
				m.MM.CopyOnWrite(v.id.VM, ref.Page)
				st.Cows++
				for _, ci := range d.cores {
					m.cores[ci].tlb.Shootdown(v.id.VM, ref.Page)
				}
			}
			v.pending = ref
			d.eng.ScheduleFn(cfg.CowLatency, m.resumeFn, v, uint64(d.idx))
			return
		}
		host, ptype, tagVM = tr.Host, tr.Type, v.id.VM
	case workload.CtxXen:
		host, ptype, tagVM = m.MM.HypervisorPage(ref.Hv), mem.PageRWShared, mem.Hypervisor
	case workload.CtxDom0:
		host, ptype, tagVM = m.MM.HypervisorPage(ref.Hv), mem.PageRWShared, m.dom0
	}
	addr := mem.BlockInPage(host, ref.Block)

	if walk > 0 {
		// Pay the page walk, then re-run the access with a warm TLB
		// (re-entering through the occupancy check: the core may have been
		// claimed, or the vCPU relocated, during the walk).
		v.pending = ref
		d.eng.ScheduleFn(walk, m.resumeFn, v, uint64(d.idx))
		return
	}

	st.recordL1Access(v.id.VM, ref.Ctx, ptype)

	// L1: a read filter (write-through, no write-allocate). An L1 hit
	// also refreshes the block's L2 recency so the inclusive L2 does not
	// mistake L1-resident hot data for dead and evict it under streaming
	// fills (hit-promotion hint).
	if !ref.Write {
		if b := cn.l1.Lookup(addr); b != nil {
			cn.l1.Touch(b)
			if lb := cn.l2.Lookup(addr); lb != nil {
				cn.l2.Touch(lb)
			}
			m.finish(v, sim.Cycle(cfg.L1.HitLatency))
			return
		}
	}

	// L2.
	st.L2Accesses++
	b := cn.l2.Lookup(addr)
	if b != nil && b.Tokens >= 1 && (!ref.Write || b.Tokens == cfg.P.TotalTokens) {
		// Hit (reads need a token; writes need all — silent E->M upgrade).
		if ref.Write {
			b.Dirty = true
		}
		cn.l2.Touch(b)
		m.l1Fill(cn, addr, tagVM, ref.Write)
		m.finish(v, sim.Cycle(cfg.L2.HitLatency))
		return
	}

	// L2 miss or upgrade: coherence transaction.
	st.recordL2Miss(v.id.VM, ref.Ctx, ptype)
	if m.DebugMissHook != nil && d.warmed && ref.Ctx == workload.CtxGuest {
		m.DebugMissHook(int(ref.Page), ref.Write)
	}
	if ptype == mem.PageROShared {
		if m.sharded != nil {
			m.classifyPartitioned(d, addr, v.id.VM)
		} else {
			m.classifyHolder(d, st, addr, v.id.VM)
		}
	}
	start := d.eng.Now()
	v.inTxn = true
	cn.start(addr, tagVM, ptype, ref.Write, func() {
		v.inTxn = false
		st.MissLatency.Observe(float64(d.eng.Now() - start))
		m.l1Fill(cn, addr, tagVM, ref.Write)
		// Free waiting relocated vCPUs, then continue this stream.
		if len(cn.waitq) > 0 {
			d.eng.ScheduleFn(0, m.drainFn, cn, 0)
		}
		m.finish(v, 0)
		if v.deferred {
			// A cross-shard depart arrived mid-transaction: perform it now
			// that the transaction closed. The step just scheduled above
			// fires in this (old) domain and chases the vCPU to its new one.
			v.deferred = false
			m.departNow(v, v.defFrom, v.defTo)
		}
	})
}

// l1Fill caches read data in the L1 (writes are no-allocate).
func (m *Machine) l1Fill(cn *coreNode, addr mem.BlockAddr, vm mem.VMID, write bool) {
	if write {
		return
	}
	if cn.l1.Lookup(addr) == nil {
		cn.l1.Insert(addr, vm)
	}
}

// finish schedules the vCPU's next reference after latency + think time.
func (m *Machine) finish(v *vcpu, latency sim.Cycle) {
	v.dom.eng.ScheduleFn(latency+m.cfg.ThinkCycles, m.stepFn, v, uint64(v.dom.idx))
}

// L2 exposes core i's L2 cache (tests and invariant checks).
func (m *Machine) L2(i int) *cache.Cache { return m.cores[i].l2 }

// CheckFilterInvariant verifies virtual snooping's conservativeness: every
// cached block of a VM-private page resides on a core that is in the VM's
// vCPU map. It applies to the base and counter policies (counter-threshold
// is deliberately speculative and relies on protocol retries instead).
func (m *Machine) CheckFilterInvariant() error {
	pol := m.cfg.Filter.Policy
	if pol != core.PolicyBase && pol != core.PolicyCounter && pol != core.PolicyCounterFlush {
		return nil
	}
	for i, cn := range m.cores {
		var err error
		cn.l2.ForEachValid(func(b *cache.Block) {
			if err != nil || b.Tokens == 0 {
				return
			}
			if int(b.VM) >= m.cfg.VMs {
				return // hypervisor / dom0 blocks are broadcast anyway
			}
			if m.MM.TypeOf(b.Addr.PageOf()) != mem.PagePrivate {
				return
			}
			if !m.filterContains(b.VM, i) {
				err = fmt.Errorf("core %d holds private block %d of VM %d but is not in its vCPU map (map=%v)",
					i, b.Addr, b.VM, m.filterOf(cn.dom).MapCores(b.VM))
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}
