package system

import (
	"fmt"
	"testing"

	"vsnoop/internal/core"
	"vsnoop/internal/fault"
	"vsnoop/internal/mem"
)

// identityAcross is the universal-sharding acceptance harness: run cfg with
// Shards=0 (the single-goroutine execution of the same partitioned plan)
// and require bit-identical statistics at every Shards ∈ {1, 2, 4, 8}.
// Shards beyond the plan's domain count clamp, so 8 also pins the clamp.
func identityAcross(t *testing.T, cfg Config) *Stats {
	t.Helper()
	run := func(shards int) *Stats {
		c := cfg
		c.Shards = shards
		return runCfg(t, c)
	}
	serial := run(0)
	for _, k := range []int{1, 2, 4, 8} {
		statsEqual(t, fmt.Sprintf("shards=%d", k), serial, run(k))
	}
	return serial
}

// TestContentSharingBitIdentical covers the content-shared page machinery —
// per-domain COW overlays onto preallocated targets, domain-local provider
// designation, and the cross-domain holder-classification probes — under
// the friend-VM snoop policy that consumes all of it.
func TestContentSharingBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefsPerVCPU = 1200
	cfg.WarmupRefs = 200
	cfg.ContentSharing = true
	cfg.Filter.Policy = core.PolicyCounter
	cfg.Filter.Content = core.ContentFriendVM
	st := identityAcross(t, cfg)
	if st.L1AccessesContent == 0 {
		t.Error("content-sharing run touched no content pages")
	}
	if st.HolderMemory+st.HolderIntraVM+st.HolderFriend+st.HolderOther == 0 {
		t.Error("no holder classifications recorded")
	}
}

// TestCowOverlayDomainLocal pins the partitioned copy-on-write semantics
// directly (the synthetic workloads never store to content pages, so the
// trap path needs a unit-level check): targets are preallocated at setup, a
// trap installs the domain-local overlay without touching global page
// tables, and other domains keep reading the shared translation until they
// trap themselves — onto the same preallocated target.
func TestCowOverlayDomainLocal(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ContentSharing = true
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.doms) <= 1 {
		t.Fatal("content config planned a single domain")
	}
	if len(m.cowTargets) == 0 {
		t.Fatal("no COW targets preallocated for a content-sharing config")
	}
	var key uint64
	for k := range m.cowTargets {
		if key == 0 || k < key {
			key = k // smallest key: deterministic pick from the map
		}
	}
	vm := mem.VMID(key >> 32)
	gp := mem.GuestPage(uint32(key))
	if tr := m.MM.Translate(vm, gp); tr.Type != mem.PageROShared {
		t.Fatalf("target page not RO-shared before trap: %v", tr.Type)
	}
	d0, d1 := m.doms[0], m.doms[1]
	d0.cow[key] = mem.Translation{Host: m.cowTargets[key], Type: mem.PagePrivate}
	got := m.translate(d0, vm, gp)
	if got.Type != mem.PagePrivate || got.Host != m.cowTargets[key] {
		t.Fatalf("overlay translation = %+v, want private page %v", got, m.cowTargets[key])
	}
	if tr := m.translate(d1, vm, gp); tr.Type != mem.PageROShared {
		t.Fatalf("other domain's translation changed: %+v", tr)
	}
	if tr := m.MM.Translate(vm, gp); tr.Type != mem.PageROShared {
		t.Fatalf("global page tables mutated by overlay trap: %+v", tr)
	}
}

// TestRegionScoutBitIdentical covers the domain-sharded RegionScout router:
// NSRT and presence state owned per domain, remote regions consulted via
// probe events under the cross-shard lookahead.
func TestRegionScoutBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefsPerVCPU = 1200
	cfg.WarmupRefs = 200
	cfg.UseRegionScout = true
	st := identityAcross(t, cfg)
	if st.RegionBroadcasts == 0 {
		t.Error("RegionScout issued no broadcasts")
	}
}

// TestDirectoryBitIdentical covers the directory protocol: home state is
// owned by the MC's domain, and per-domain home counters fold into the run
// totals.
func TestDirectoryBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefsPerVCPU = 1200
	cfg.WarmupRefs = 200
	cfg.Directory = true
	st := identityAcross(t, cfg)
	if st.DirLookups == 0 {
		t.Error("directory saw no lookups")
	}
}

// TestLinearPlacementBitIdentical covers VM placements that span domains:
// linear (row-major) placement puts VM 1 and VM 3 across the planner's cut,
// so the run needs replicated filter state even without migration.
func TestLinearPlacementBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefsPerVCPU = 1200
	cfg.WarmupRefs = 200
	cfg.LinearPlacement = true
	plan := cfg.PlanPartition()
	if plan.Domains <= 1 {
		t.Fatal("linear placement planned a single domain; test covers nothing")
	}
	if !cfg.needSync(plan) && plan.SpansVM {
		t.Fatal("spanning plan did not require synchronized filter state")
	}
	identityAcross(t, cfg)
}

// TestFaultEventsBitIdentical covers scheduled fault events on the
// partitioned engine with hypervisor activity layered in: map and counter
// corruption fan out from domain 0 as replica deltas and domain-local
// sub-events, and migration storms run as ordered cross-shard relocations.
func TestFaultEventsBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefsPerVCPU = 1500
	cfg.WarmupRefs = 300
	cfg.NoHypervisor = false
	cfg.Filter.Policy = core.PolicyCounterThreshold
	cfg.Fault = &fault.Plan{Seed: 21, Events: []fault.Event{
		{At: 15000, Kind: fault.EvCorruptMap, VM: 1, Core: 5},
		{At: 25000, Kind: fault.EvCorruptCounter, VM: 2, Core: 9, Count: 3},
		{At: 35000, Kind: fault.EvMigrationStorm, Count: 4},
		{At: 55000, Kind: fault.EvMigrationStorm, Count: 4},
	}}
	st := identityAcross(t, cfg)
	if st.MapCorruptions != 1 || st.CounterCorruptions != 1 {
		t.Errorf("corruption events lost: map=%d counter=%d",
			st.MapCorruptions, st.CounterCorruptions)
	}
	if st.StormRelocations == 0 {
		t.Error("storms relocated nothing")
	}
}

// TestLargeMeshBitIdentical covers a geometry the quadrant invariant could
// never shard: an 8x8 mesh with 16 VMs placed linearly. The planner must
// find a multi-domain guillotine cut and the partitioned run must match the
// single-shard execution exactly.
func TestLargeMeshBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 64
	cfg.Mesh.Width = 8
	cfg.Mesh.Height = 8
	cfg.VMs = 16
	cfg.RefsPerVCPU = 400
	cfg.WarmupRefs = 100
	plan := cfg.PlanPartition()
	if plan.Domains <= 1 {
		t.Fatal("8x8 mesh planned a single domain")
	}
	identityAcross(t, cfg)
}

// TestMigrationContentCombined is the everything-at-once identity check:
// periodic migration over content-shared pages, so relocation transactions,
// COW overlays, holder probes, and filter deltas all interleave.
func TestMigrationContentCombined(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefsPerVCPU = 1000
	cfg.WarmupRefs = 200
	cfg.ContentSharing = true
	cfg.Filter.Content = core.ContentIntraVM
	cfg.MigrationPeriodMs = 2
	cfg.CyclesPerMs = 12000
	st := identityAcross(t, cfg)
	if st.Relocations == 0 {
		t.Error("combined run relocated nothing")
	}
	if st.L1AccessesContent == 0 {
		t.Error("combined run touched no content pages")
	}
}
