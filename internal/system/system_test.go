package system

import (
	"testing"

	"vsnoop/internal/core"
)

// smallCfg returns a quick-running configuration for tests.
func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.RefsPerVCPU = 3000
	return cfg
}

func runCfg(t *testing.T, cfg Config) *Stats {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := m.Run()
	if err := m.CheckFilterInvariant(); err != nil {
		t.Fatalf("filter invariant violated: %v", err)
	}
	return st
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VMs = 5 // 20 vCPUs > 16 cores
	if _, err := New(cfg); err == nil {
		t.Fatal("overcommitted config accepted")
	}
	cfg = DefaultConfig()
	cfg.Workloads = []string{"a", "b"}
	if _, err := New(cfg); err == nil {
		t.Fatal("workload/VM count mismatch accepted")
	}
	cfg = DefaultConfig()
	cfg.Mesh.Width = 3
	if _, err := New(cfg); err == nil {
		t.Fatal("mesh/core mismatch accepted")
	}
}

func TestBaselineRunCompletes(t *testing.T) {
	cfg := smallCfg()
	cfg.Filter.Policy = core.PolicyBroadcast
	st := runCfg(t, cfg)
	if st.L1Accesses != uint64(cfg.RefsPerVCPU*16) {
		t.Fatalf("accesses = %d, want %d", st.L1Accesses, cfg.RefsPerVCPU*16)
	}
	if st.L2Misses == 0 || st.Transactions == 0 {
		t.Fatal("no misses/transactions — workload too cacheable to test anything")
	}
	if st.ExecCycles == 0 {
		t.Fatal("execution time not recorded")
	}
	// Broadcast on 16 cores: every transaction snoops all 16.
	if got := st.SnoopsPerTransaction(); got < 15.9 || got > 16.1 {
		t.Fatalf("baseline snoops/transaction = %v, want 16", got)
	}
}

func TestPinnedVSnoopSnoopReduction(t *testing.T) {
	// Section V.B: ideally pinned VMs, snoop reduction is exactly 75%
	// (each VM snoops its 4 cores out of 16) for VM-private traffic.
	base := smallCfg()
	base.Filter.Policy = core.PolicyBroadcast
	bst := runCfg(t, base)

	vs := smallCfg()
	vs.Filter.Policy = core.PolicyBase
	vst := runCfg(t, vs)

	bSnoops := bst.SnoopsPerTransaction()
	vSnoops := vst.SnoopsPerTransaction()
	ratio := vSnoops / bSnoops
	// Hypervisor/dom0 accesses broadcast, so slightly above 0.25.
	if ratio < 0.24 || ratio > 0.35 {
		t.Fatalf("snoop ratio = %v (base %.2f vs vsnoop %.2f), want ~0.25",
			ratio, bSnoops, vSnoops)
	}
}

func TestPinnedVSnoopTrafficReduction(t *testing.T) {
	// Table IV: total network traffic drops by ~62-65%.
	base := smallCfg()
	base.Filter.Policy = core.PolicyBroadcast
	bst := runCfg(t, base)

	vs := smallCfg()
	vs.Filter.Policy = core.PolicyBase
	vst := runCfg(t, vs)

	red := 100 * (1 - float64(vst.ByteHops)/float64(bst.ByteHops))
	if red < 40 || red > 80 {
		t.Fatalf("traffic reduction = %.1f%%, want roughly 60%%", red)
	}
}

func TestPinnedVSnoopNotSlower(t *testing.T) {
	base := smallCfg()
	base.Filter.Policy = core.PolicyBroadcast
	bst := runCfg(t, base)

	vs := smallCfg()
	vs.Filter.Policy = core.PolicyBase
	vst := runCfg(t, vs)

	if float64(vst.ExecCycles) > float64(bst.ExecCycles)*1.05 {
		t.Fatalf("virtual snooping slowed execution: %d vs %d", vst.ExecCycles, bst.ExecCycles)
	}
}

func TestMigrationDegradesBasePolicy(t *testing.T) {
	// Figures 7/8: with migration, vsnoop-base accumulates cores in the
	// maps and loses most of its reduction; counter recovers it.
	// A small L2 lets the new tenant evict the departed VM's blocks within
	// the short test run (the full-size experiments run far longer).
	mk := func(policy core.Policy) *Stats {
		cfg := smallCfg()
		cfg.RefsPerVCPU = 8000
		cfg.L2.SizeBytes = 32 * 1024
		cfg.Filter.Policy = policy
		cfg.MigrationPeriodMs = 0.5
		cfg.CyclesPerMs = 20_000
		return runCfg(t, cfg)
	}
	bst := mk(core.PolicyBroadcast)

	baseSt := mk(core.PolicyBase)
	counterSt := mk(core.PolicyCounter)

	bS := bst.SnoopsPerTransaction()
	vb := baseSt.SnoopsPerTransaction() / bS
	vc := counterSt.SnoopsPerTransaction() / bS
	if baseSt.Relocations == 0 {
		t.Fatal("no relocations happened")
	}
	if vb <= vc {
		t.Fatalf("counter (%.2f) should beat base (%.2f) under migration", vc, vb)
	}
	if vc > 0.8 {
		t.Fatalf("counter ratio = %.2f, reduction nearly lost", vc)
	}
}

func TestCounterRecordsRemovalPeriods(t *testing.T) {
	cfg := smallCfg()
	cfg.RefsPerVCPU = 8000
	cfg.L2.SizeBytes = 32 * 1024
	cfg.Filter.Policy = core.PolicyCounter
	cfg.MigrationPeriodMs = 1
	cfg.CyclesPerMs = 20_000
	st := runCfg(t, cfg)
	if st.RemovalPeriods.N() == 0 {
		t.Fatal("no removal periods recorded (Figure 9 would be empty)")
	}
}

func TestHypervisorMissDecomposition(t *testing.T) {
	cfg := smallCfg()
	cfg.VMs = 2
	cfg.VCPUsPerVM = 4
	cfg.Workloads = []string{"oltp"}
	st := runCfg(t, cfg)
	if st.L2MissesXen == 0 || st.L2MissesDom0 == 0 {
		t.Fatal("no hypervisor/dom0 misses recorded (Figure 1 empty)")
	}
	pct := st.HypervisorMissPct()
	if pct <= 0 || pct >= 60 {
		t.Fatalf("hypervisor miss pct = %.1f, implausible", pct)
	}
	if st.L2MissesGuest+st.L2MissesXen+st.L2MissesDom0 != st.L2Misses {
		t.Fatal("miss decomposition does not add up")
	}
}

func TestContentSharingStats(t *testing.T) {
	cfg := smallCfg()
	cfg.Workloads = []string{"canneal"}
	cfg.ContentSharing = true
	st := runCfg(t, cfg)
	if st.L1AccessesContent == 0 || st.L2MissesContent == 0 {
		t.Fatal("no content-page activity (Table V empty)")
	}
	holders := st.HolderMemory + st.HolderIntraVM + st.HolderFriend + st.HolderOther
	if holders != st.L2MissesContent {
		t.Fatalf("holder decomposition %d != content misses %d", holders, st.L2MissesContent)
	}
	ap := st.ContentAccessPct()
	if ap < 10 || ap > 40 {
		t.Fatalf("canneal content access pct = %.1f, calibrated for ~25", ap)
	}
}

func TestContentPoliciesReduceSnoops(t *testing.T) {
	run := func(cp core.ContentPolicy) *Stats {
		cfg := smallCfg()
		cfg.Workloads = []string{"canneal"}
		cfg.ContentSharing = true
		cfg.Filter.Policy = core.PolicyBase
		cfg.Filter.Content = cp
		return runCfg(t, cfg)
	}
	bcast := run(core.ContentBroadcast)
	md := run(core.ContentMemoryDirect)
	intra := run(core.ContentIntraVM)
	friend := run(core.ContentFriendVM)

	if !(md.SnoopsIssued < intra.SnoopsIssued) {
		t.Fatalf("memory-direct (%d) should snoop less than intra-VM (%d)",
			md.SnoopsIssued, intra.SnoopsIssued)
	}
	if !(intra.SnoopsIssued < friend.SnoopsIssued) {
		t.Fatalf("intra-VM (%d) should snoop less than friend-VM (%d)",
			intra.SnoopsIssued, friend.SnoopsIssued)
	}
	if !(friend.SnoopsIssued < bcast.SnoopsIssued) {
		t.Fatalf("friend-VM (%d) should snoop less than broadcast (%d)",
			friend.SnoopsIssued, bcast.SnoopsIssued)
	}
}

func TestCopyOnWriteTriggersDuringRun(t *testing.T) {
	cfg := smallCfg()
	cfg.Workloads = []string{"canneal"}
	cfg.ContentSharing = true
	st := runCfg(t, cfg)
	// canneal's generator never writes content pages directly, but other
	// regions do not COW either; expect zero. Use a synthetic check: COWs
	// must be counted when they happen (0 is fine here).
	_ = st.Cows
}

func TestDeterministicMachineRuns(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		cfg := smallCfg()
		cfg.RefsPerVCPU = 2000
		cfg.Filter.Policy = core.PolicyCounter
		cfg.MigrationPeriodMs = 1
		cfg.CyclesPerMs = 10_000
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st := m.Run()
		return st.ExecCycles, st.SnoopsIssued, st.ByteHops
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Fatalf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", a1, b1, c1, a2, b2, c2)
	}
}

func TestHeterogeneousWorkloads(t *testing.T) {
	cfg := smallCfg()
	cfg.Workloads = []string{"fft", "lu", "radix", "ocean"}
	st := runCfg(t, cfg)
	if st.L2Misses == 0 {
		t.Fatal("heterogeneous run produced no misses")
	}
}

func TestMigrationWithDelayedResumes(t *testing.T) {
	// Regression: TLB walks and COW traps delay a reference past a vCPU
	// shuffle; the resumed reference must re-check controller occupancy
	// instead of colliding with the new tenant's transaction.
	cfg := smallCfg()
	cfg.RefsPerVCPU = 12000
	cfg.L2.SizeBytes = 16 * 1024
	cfg.L1.SizeBytes = 8 * 1024
	cfg.Workloads = []string{"canneal"} // content-heavy: many TLB walks
	cfg.ContentSharing = true
	cfg.Filter.Policy = core.PolicyCounter
	cfg.MigrationPeriodMs = 0.1
	cfg.CyclesPerMs = 10_000
	cfg.TLB.Entries = 8 // tiny TLB: constant walks
	cfg.TLB.Ways = 2
	st := runCfg(t, cfg)
	if st.TLBMisses == 0 {
		t.Fatal("test wants TLB pressure but saw no misses")
	}
	if st.Relocations == 0 {
		t.Fatal("test wants relocations")
	}
}

func TestDirectoryProtocolRun(t *testing.T) {
	cfg := smallCfg()
	cfg.Directory = true
	st := runCfg(t, cfg)
	if st.L2Misses == 0 || st.Transactions == 0 {
		t.Fatal("directory run produced no coherence activity")
	}
	if st.SnoopsIssued != 0 {
		t.Fatalf("directory mode issued %d snoops; directories do not snoop", st.SnoopsIssued)
	}
	if st.DirLookups == 0 {
		t.Fatal("no directory lookups recorded")
	}
	if st.DRAMReads == 0 {
		t.Fatal("no DRAM activity")
	}
}

func TestDirectoryVsSnoopingTraffic(t *testing.T) {
	// The comparison the paper implies: a directory avoids broadcast
	// traffic entirely, so its traffic is well below the TokenB baseline —
	// and filtered snooping closes most of that gap without indirection.
	base := smallCfg()
	base.Filter.Policy = core.PolicyBroadcast
	bst := runCfg(t, base)

	dir := smallCfg()
	dir.Directory = true
	dst := runCfg(t, dir)

	if dst.ByteHops >= bst.ByteHops {
		t.Fatalf("directory traffic %d not below broadcast %d", dst.ByteHops, bst.ByteHops)
	}
}
