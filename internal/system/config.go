// Package system assembles the full simulated machine: in-order cores with
// private L1/L2 caches on a 2D mesh, Token Coherence with the virtual-
// snooping filter, memory controllers, the hypervisor's vCPU mapper with
// periodic relocation, memory virtualization with content-based sharing,
// and the synthetic workload generators. It is the engine behind every
// Section V / VI experiment.
package system

import (
	"fmt"

	"vsnoop/internal/cache"
	"vsnoop/internal/core"
	"vsnoop/internal/fault"
	"vsnoop/internal/mesh"
	"vsnoop/internal/sim"
	"vsnoop/internal/tlb"
	"vsnoop/internal/token"
)

// Config describes one simulation run. DefaultConfig reproduces Table II.
type Config struct {
	Cores      int
	VMs        int
	VCPUsPerVM int

	Mesh mesh.Config
	L1   cache.Config
	L2   cache.Config
	TLB  tlb.Config
	P    token.Params

	Filter core.Config

	// Workloads names the profile run by each VM (length VMs; a single
	// entry is replicated, matching the paper's homogeneous setups).
	Workloads []string

	// RefsPerVCPU is the stream length each vCPU executes.
	RefsPerVCPU int
	// WarmupRefs is the number of initial references per vCPU excluded
	// from statistics (cache-warming phase, standard simulation
	// methodology: the paper's workloads run long enough that cold-start
	// compulsory misses are negligible; our streams are short, so we
	// measure only the post-warm phase).
	WarmupRefs int
	// ThinkCycles separates successive references of a vCPU.
	ThinkCycles sim.Cycle

	// CyclesPerMs scales scheduler time to simulator cycles. The paper's
	// machines run ~2-3 GHz (so 1 ms is millions of cycles); the default
	// compresses a "millisecond" to 100k cycles so migration-period sweeps
	// finish quickly while keeping migration periods well above cache
	// turnover times. EXPERIMENTS.md documents this scaling.
	CyclesPerMs uint64

	// MigrationPeriodMs shuffles two vCPUs of different VMs every period
	// (0 = ideally pinned VMs).
	MigrationPeriodMs float64

	// ContentSharing runs the idealized content-based page-sharing
	// detector at setup (Section VI experiments).
	ContentSharing bool

	// NoHypervisor suppresses hypervisor/dom0 activity, matching the
	// paper's Virtual-GEMS methodology for Sections V and VI ("in this
	// simulation environment, a hypervisor is not running").
	NoHypervisor bool

	// HvPages sizes the RW-shared hypervisor/dom0 region (pages).
	HvPages int

	// CowLatency is the hypervisor's copy-on-write handling cost.
	CowLatency sim.Cycle

	// MCs is the number of memory controllers (placed at mesh corners).
	MCs int

	// LinearPlacement places vCPUs on consecutive cores row-major instead
	// of per-VM mesh quadrants (an ablation of the locality-aware
	// placement that shortens intra-VM snoop paths).
	LinearPlacement bool

	// UseRegionScout replaces the virtual-snooping filter with a
	// RegionScout-style region filter (related-work comparison; the
	// Filter.Policy setting is ignored for routing when set).
	UseRegionScout bool

	// Directory replaces the snooping Token Coherence protocol with the
	// blocking home-directory MESI protocol (related-work comparison:
	// Marty & Hill's directory-based approach to virtualized coherence).
	// Snoop filtering does not apply; the Filter settings are ignored.
	Directory bool

	// Fault, if non-nil and active, enables deterministic fault injection
	// (internal/fault) and graceful map degradation in the filter. It also
	// implies Checks. Token-protocol runs only.
	Fault *fault.Plan

	// Checks enables online invariant checking (internal/check) even
	// without a fault plan. Checks are observation-only: results of a run
	// are bit-identical with and without them.
	Checks bool
	// CheckPeriod is the invariant-check interval in cycles (0 = 5000).
	CheckPeriod sim.Cycle
	// TxnAgeLimit bounds how long one coherence transaction may stay
	// outstanding before the completion invariant flags it (0 = 500k).
	TxnAgeLimit sim.Cycle

	// Shards is the number of parallel event-queue shards (0 or 1 = one
	// worker). Results are bit-identical for every value: the semantic
	// event ordering is fixed by the config alone (see PlanPartition), and
	// Shards only chooses how many goroutines execute the computed domains.
	// Clamped to the planned domain count.
	Shards int

	// ForceSerial builds the single-queue legacy engine regardless of the
	// partition plan. Internal knob for benchmarks and differential tests
	// (not part of the public vsnoop.Config, excluded from Config.Hash).
	ForceSerial bool

	// NoElision forces the fully-barriered windowed synchronization
	// protocol on sharded runs: no adaptive free-running, no quiet-window
	// barrier elision. Results are bit-identical with and without it; the
	// flag pins the synchronization mode for tests and benchmarks.
	NoElision bool

	// Mode selects the sharded engine's synchronization engine:
	// "windowed", "adaptive", "timewarp" (optimistic
	// checkpoint/rollback), "auto" (pick from the planner's horizon
	// estimate), or "" for the historical dispatch. Results are
	// bit-identical for every value — a mode is an execution strategy,
	// not a different simulation — so Mode is excluded from the public
	// config hash, like Shards. "timewarp" silently falls back to the
	// conservative dispatch when the configuration is outside the
	// optimistic engine's checkpoint coverage.
	Mode string

	// Cancel, if non-nil, lets another goroutine stop the run early; a
	// canceled run fails with a sim.CanceledError instead of returning a
	// partial result. Control plane only: a run that completes before the
	// canceler trips is bit-identical to one with no canceler attached.
	Cancel *sim.Canceler

	// MaxSteps bounds the run's executed event count; RunChecked returns a
	// sim.StepLimitError when exhausted (0 = unbounded).
	MaxSteps uint64
	// ProgressLimit arms the no-forward-progress watchdog: an error after
	// this many events without a completed reference (0 = 10M).
	ProgressLimit uint64

	Seed uint64
}

// DefaultConfig returns the Table II system: 16 in-order cores, 32 KB L1,
// 256 KB private L2, Token Coherence (MOESI), 4x4 mesh with 16 B links,
// four VMs with four vCPUs each.
func DefaultConfig() Config {
	return Config{
		Cores:       16,
		VMs:         4,
		VCPUsPerVM:  4,
		Mesh:        mesh.DefaultConfig(),
		L1:          cache.Config{Name: "L1", SizeBytes: 32 * 1024, Ways: 4, BlockBytes: 64, HitLatency: 2},
		L2:          cache.Config{Name: "L2", SizeBytes: 256 * 1024, Ways: 8, BlockBytes: 64, HitLatency: 10},
		TLB:         tlb.DefaultConfig(),
		P:           token.DefaultParams(16),
		Filter:      core.Config{Policy: core.PolicyBase, Content: core.ContentBroadcast, Threshold: 10},
		Workloads:   []string{"fft"},
		RefsPerVCPU: 20000,
		ThinkCycles: 2,
		CyclesPerMs: 100_000,
		HvPages:     512,
		CowLatency:  2000,
		MCs:         4,
		Seed:        1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Cores <= 0 || c.VMs <= 0 || c.VCPUsPerVM <= 0 {
		return fmt.Errorf("system: non-positive core/VM counts")
	}
	if c.VMs*c.VCPUsPerVM > c.Cores {
		return fmt.Errorf("system: %d vCPUs exceed %d cores (overcommit is not modeled, as in the paper)",
			c.VMs*c.VCPUsPerVM, c.Cores)
	}
	if c.Mesh.Width*c.Mesh.Height != c.Cores {
		return fmt.Errorf("system: mesh %dx%d does not host %d cores",
			c.Mesh.Width, c.Mesh.Height, c.Cores)
	}
	if len(c.Workloads) != 1 && len(c.Workloads) != c.VMs {
		return fmt.Errorf("system: %d workloads for %d VMs", len(c.Workloads), c.VMs)
	}
	if err := c.L1.Validate(); err != nil {
		return err
	}
	if err := c.L2.Validate(); err != nil {
		return err
	}
	if err := c.TLB.Validate(); err != nil {
		return err
	}
	if c.RefsPerVCPU <= 0 {
		return fmt.Errorf("system: RefsPerVCPU must be positive")
	}
	if c.MCs <= 0 || c.MCs > 4 {
		return fmt.Errorf("system: MCs must be 1..4 (mesh corners)")
	}
	if err := c.Fault.Validate(); err != nil {
		return err
	}
	if c.Fault.Active() && c.Directory {
		return fmt.Errorf("system: fault injection targets the token protocol; not supported with Directory")
	}
	for i, ev := range c.faultEvents() {
		if ev.VM >= c.VMs {
			return fmt.Errorf("system: fault event %d targets VM %d of %d", i, ev.VM, c.VMs)
		}
		if ev.Core >= c.Cores {
			return fmt.Errorf("system: fault event %d targets core %d of %d", i, ev.Core, c.Cores)
		}
	}
	if c.Shards < 0 {
		return fmt.Errorf("system: negative Shards")
	}
	switch c.Mode {
	case "", "auto", "windowed", "adaptive", "timewarp":
	default:
		return fmt.Errorf("system: unknown Mode %q (want windowed, adaptive, timewarp, or auto)", c.Mode)
	}
	return nil
}

// Shardable reports whether this configuration runs the domain-partitioned
// parallel engine: true whenever the topology-aware partition planner
// (PlanPartition) cuts the mesh into more than one snoop domain. CLIs use
// it to resolve `-shards auto`; PlannedDomains bounds the useful worker
// count. The domain decomposition — and therefore the simulated event
// order — is a pure function of the config, never of Shards, so results
// are bit-identical for every shard count.
func (c Config) Shardable() bool { return c.PlanPartition().Domains > 1 }

// PlannedDomains returns the snoop-domain count the partition planner
// computes for this config (1 = serial legacy engine).
func (c Config) PlannedDomains() int { return c.PlanPartition().Domains }

// sansControl returns the config with control-plane fields cleared. Stats
// snapshots this form, so two runs of the same simulation compare deeply
// equal no matter how they were driven (with or without a Canceler).
func (c Config) sansControl() Config {
	c.Cancel = nil
	return c
}

// faultEvents returns the plan's events (nil-safe).
func (c Config) faultEvents() []fault.Event {
	if c.Fault == nil {
		return nil
	}
	return c.Fault.Events
}

// workloadFor returns the profile name of VM i.
func (c Config) workloadFor(vm int) string {
	if len(c.Workloads) == 1 {
		return c.Workloads[0]
	}
	return c.Workloads[vm]
}
