package system

import (
	"fmt"
	"testing"

	"vsnoop/internal/core"
	"vsnoop/internal/fault"
	"vsnoop/internal/sim"
)

// timewarpIdentity runs cfg serially (Shards=0, historical dispatch) and
// under the optimistic engine at K ∈ {1, 2, 4}, requiring bit-identical
// statistics every time. It returns the K=4 sync telemetry so callers can
// assert on the rollback counters.
func timewarpIdentity(t *testing.T, cfg Config) sim.SyncStats {
	t.Helper()
	serial := runCfg(t, cfg)
	var tele sim.SyncStats
	for _, k := range []int{1, 2, 4} {
		c := cfg
		c.Shards = k
		c.Mode = "timewarp"
		st := runCfg(t, c)
		statsEqual(t, fmt.Sprintf("timewarp/shards=%d", k), serial, st)
		tele = st.Sync
	}
	return tele
}

// TestTimewarpMigrationBitIdentical is the optimistic engine's core
// guarantee on its hardest input: periodic cross-VM vCPU migration drives
// depart/arrive transactions, filter-replica deltas, and chased step
// events across shards — each a potential straggler below another shard's
// local virtual time. The committed state must still be bit-identical to
// serial at every shard count, and the run must actually exercise the
// rollback machinery (a migration config that never rolls back would make
// this test vacuous, so the telemetry assertion is part of the contract).
func TestTimewarpMigrationBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefsPerVCPU = 2500
	cfg.WarmupRefs = 400
	cfg.Filter.Policy = core.PolicyCounter
	cfg.MigrationPeriodMs = 2
	tele := timewarpIdentity(t, cfg)
	if tele.Rollbacks == 0 && tele.Bailouts == 0 {
		t.Errorf("migration run under timewarp saw no rollbacks and no bailout: telemetry %+v", tele)
	}
	if tele.Rollbacks > 0 && tele.GVTLagSum == 0 {
		t.Errorf("rollbacks recorded with zero GVT lag: telemetry %+v", tele)
	}
}

// TestTimewarpContentSharingBitIdentical covers the non-syncMode coverage
// class: content sharing with the friend-VM snoop policy generates
// cross-domain holder-classification probes and replies (plus COW overlay
// inserts), all of which must checkpoint and replay exactly. The filter
// stays a single shared replica here, which the snapshot layer supports
// only for the runtime-read-only policies (base/broadcast).
func TestTimewarpContentSharingBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefsPerVCPU = 2000
	cfg.WarmupRefs = 300
	cfg.ContentSharing = true
	cfg.Filter.Policy = core.PolicyBase
	cfg.Filter.Content = core.ContentFriendVM
	st := runCfg(t, cfg)
	if st.HolderMemory+st.HolderIntraVM+st.HolderFriend+st.HolderOther == 0 {
		t.Fatal("content config recorded no holder classifications")
	}
	timewarpIdentity(t, cfg)
}

// TestTimewarpStormBitIdentical drives the straggler injector directly: a
// burst of back-to-back cross-VM swaps (the migration-storm fault event)
// floods the shards with depart/arrive/delta deposits at one simulated
// instant. Fault plans imply the online checker, which needs conservative
// window boundaries — so this config must fall back, still match serial
// bit-for-bit, and report zero optimistic telemetry.
func TestTimewarpStormFallsBackBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefsPerVCPU = 1500
	cfg.WarmupRefs = 300
	cfg.Filter.Policy = core.PolicyCounter
	cfg.NoHypervisor = true
	cfg.Fault = &fault.Plan{Events: []fault.Event{
		{At: 3000, Kind: fault.EvMigrationStorm, Count: 6},
		{At: 9000, Kind: fault.EvMigrationStorm, Count: 6},
	}}
	run := func(shards int, mode string) *Stats {
		c := cfg
		c.Shards = shards
		c.Mode = mode
		m, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.RunChecked()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	serial := run(0, "")
	if serial.StormRelocations == 0 {
		t.Fatal("storm plan performed no relocations")
	}
	for _, k := range []int{2, 4} {
		st := run(k, "timewarp")
		statsEqual(t, fmt.Sprintf("storm/shards=%d", k), serial, st)
		if st.Sync.Rollbacks != 0 || st.Sync.AntiMessages != 0 {
			t.Errorf("shards=%d: faulted config must fall back to conservative mode, got telemetry %+v",
				k, st.Sync)
		}
	}
}

// TestTimewarpModeResolution pins resolveMode's dispatch table: explicit
// conservative modes stay conservative, "timewarp" engages exactly when
// the configuration is inside checkpoint coverage, and "auto" follows the
// planner's horizon estimate (multiple shards + runtime filter sync at
// mesh-floor lookahead).
func TestTimewarpModeResolution(t *testing.T) {
	build := func(mut func(*Config)) *Machine {
		cfg := DefaultConfig()
		cfg.RefsPerVCPU = 100
		cfg.Shards = 4
		mut(&cfg)
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want sim.Mode
	}{
		{"explicit-windowed", func(c *Config) { c.Mode = "windowed"; c.MigrationPeriodMs = 2 }, sim.ModeWindowed},
		{"explicit-adaptive", func(c *Config) { c.Mode = "adaptive"; c.MigrationPeriodMs = 2 }, sim.ModeAdaptive},
		{"timewarp-migration", func(c *Config) { c.Mode = "timewarp"; c.MigrationPeriodMs = 2 }, sim.ModeTimewarp},
		{"timewarp-base-content", func(c *Config) { c.Mode = "timewarp"; c.ContentSharing = true }, sim.ModeTimewarp},
		{"timewarp-checks-fallback", func(c *Config) { c.Mode = "timewarp"; c.Checks = true }, sim.ModeAuto},
		{"timewarp-directory-fallback", func(c *Config) { c.Mode = "timewarp"; c.Directory = true }, sim.ModeAuto},
		{"timewarp-regionscout-fallback", func(c *Config) { c.Mode = "timewarp"; c.UseRegionScout = true }, sim.ModeAuto},
		{"timewarp-counter-shared-filter-fallback",
			func(c *Config) { c.Mode = "timewarp"; c.Filter.Policy = core.PolicyCounter }, sim.ModeAuto},
		{"auto-migration", func(c *Config) { c.Mode = "auto"; c.MigrationPeriodMs = 2 }, sim.ModeTimewarp},
		{"auto-pinned", func(c *Config) { c.Mode = "auto" }, sim.ModeAuto},
		{"default-dispatch", func(c *Config) { c.MigrationPeriodMs = 2 }, sim.ModeAuto},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := build(tc.mut)
			if m.sharded == nil {
				t.Fatal("config planned a single domain")
			}
			if got := m.resolveMode(); got != tc.want {
				t.Errorf("resolveMode() = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestTimewarpLocationTables pins the race-freedom refactor the optimistic
// engine rides on: each domain's own/fwd row tracks exactly its vlist, and
// a depart/arrive pair hands both off consistently.
func TestTimewarpLocationTables(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefsPerVCPU = 1000
	cfg.MigrationPeriodMs = 2
	cfg.Filter.Policy = core.PolicyCounter
	cfg.Shards = 2
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.own == nil || m.nv != len(m.vcpus) {
		t.Fatalf("location tables not built: own=%v nv=%d", m.own != nil, m.nv)
	}
	check := func(when string) {
		t.Helper()
		total := 0
		for _, d := range m.doms {
			row := int(d.idx) * m.nv
			n := 0
			for i := 0; i < m.nv; i++ {
				if m.own[row+i] {
					n++
					if m.fwd[row+i] != d.idx {
						t.Errorf("%s: dom %d owns vCPU %d but fwd points to %d", when, d.idx, i, m.fwd[row+i])
					}
				}
			}
			if n != len(d.vlist) {
				t.Errorf("%s: dom %d own row has %d set, vlist has %d", when, d.idx, n, len(d.vlist))
			}
			total += n
		}
		if total != m.nv {
			t.Errorf("%s: %d vCPUs owned in total, want %d", when, total, m.nv)
		}
	}
	check("after New")
	if _, err := m.RunChecked(); err != nil {
		t.Fatal(err)
	}
	check("after Run")
}
