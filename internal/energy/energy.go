// Package energy estimates the dynamic energy consumed by coherence
// activity. The paper motivates snoop filtering primarily by power: "the
// first goal of snoop filtering is to reduce the power consumption for
// snoop tag lookups and snoop message transfers" (Section V.B, citing
// Moshovos et al., JETTY). This model charges per-event energies in the
// style of CACTI-derived constants so policies can be compared by the
// energy they save, not just by counts.
//
// The constants are representative 45 nm-class values (the paper's era);
// absolute joules are not the point — the *relative* savings between
// broadcast and filtered snooping are.
package energy

import "vsnoop/internal/system"

// Params are per-event dynamic energies in picojoules.
type Params struct {
	SnoopTagLookup float64 // external snoop probe of an L2 tag array
	L1Access       float64 // L1 hit access
	L2Access       float64 // L2 data-array access
	LinkFlit       float64 // one 16 B flit over one link
	RouterFlit     float64 // one flit through one router
	DRAMAccess     float64 // one DRAM read or write burst
	MapSync        float64 // one vCPU-map register update
}

// Default returns representative 45 nm constants: tag probes are much
// cheaper than data accesses, network flits cost roughly a tag probe per
// hop, and DRAM dwarfs everything per event.
func Default() Params {
	return Params{
		SnoopTagLookup: 6,
		L1Access:       10,
		L2Access:       45,
		LinkFlit:       4,
		RouterFlit:     8,
		DRAMAccess:     2000,
		MapSync:        2,
	}
}

// Breakdown is the per-component energy of one run, in nanojoules.
type Breakdown struct {
	SnoopTag float64 // external tag probes at all caches
	Cache    float64 // L1/L2 accesses by the cores themselves
	Network  float64 // link + router flit traversals
	DRAM     float64 // memory accesses
	MapSync  float64 // vCPU-map maintenance
}

// Total returns the sum of all components (nJ).
func (b Breakdown) Total() float64 {
	return b.SnoopTag + b.Cache + b.Network + b.DRAM + b.MapSync
}

// Compute charges the energy model against a run's statistics. Flits are
// recovered from the flit-quantized byte-hop counter (16 B flits).
func Compute(p Params, st *system.Stats) Breakdown {
	flitHops := float64(st.ByteHops) / 16
	return Breakdown{
		SnoopTag: pj(float64(st.SnoopLookups) * p.SnoopTagLookup),
		Cache: pj(float64(st.L1Accesses)*p.L1Access +
			float64(st.L2Accesses)*p.L2Access),
		Network: pj(flitHops * (p.LinkFlit + p.RouterFlit)),
		DRAM:    pj(float64(st.DRAMReads+st.DRAMWrites) * p.DRAMAccess),
		MapSync: pj(float64(st.MapSyncs) * p.MapSync),
	}
}

// pj converts picojoules to nanojoules.
func pj(v float64) float64 { return v / 1000 }
