package energy

import (
	"testing"

	"vsnoop/internal/core"
	"vsnoop/internal/system"
)

func run(t *testing.T, policy core.Policy) *system.Stats {
	t.Helper()
	cfg := system.DefaultConfig()
	cfg.RefsPerVCPU = 3000
	cfg.WarmupRefs = 500
	cfg.NoHypervisor = true
	cfg.Filter.Policy = policy
	m, err := system.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m.Run()
}

func TestBreakdownComponents(t *testing.T) {
	st := run(t, core.PolicyBroadcast)
	b := Compute(Default(), st)
	if b.SnoopTag <= 0 || b.Cache <= 0 || b.Network <= 0 || b.DRAM <= 0 {
		t.Fatalf("zero components: %+v", b)
	}
	if b.Total() <= b.SnoopTag {
		t.Fatal("total must exceed any single component")
	}
}

func TestVirtualSnoopingSavesSnoopEnergy(t *testing.T) {
	base := Compute(Default(), run(t, core.PolicyBroadcast))
	vs := Compute(Default(), run(t, core.PolicyBase))
	// The headline claim: filtered snooping slashes tag-probe energy.
	if vs.SnoopTag >= base.SnoopTag*0.4 {
		t.Fatalf("snoop-tag energy %.1f vs baseline %.1f: expected <40%%",
			vs.SnoopTag, base.SnoopTag)
	}
	if vs.Network >= base.Network {
		t.Fatal("network energy did not drop")
	}
	if vs.Total() >= base.Total() {
		t.Fatal("total energy did not drop")
	}
}

func TestZeroStatsZeroEnergy(t *testing.T) {
	var st system.Stats
	b := Compute(Default(), &st)
	if b.Total() != 0 {
		t.Fatalf("empty run consumed %v nJ", b.Total())
	}
}
