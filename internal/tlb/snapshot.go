package tlb

// Checkpointing for the optimistic (Time Warp) shard engine: the same two
// regimes as internal/cache/snapshot.go. Flat Save bulk-copies every
// entry; the journaled regime (EnableJournal + the jsave hooks on every
// mutating path) records a set's pre-image once per checkpoint generation,
// making a checkpoint O(sets touched per epoch). The backward unwind to a
// slot's mark is exact by the first-touch argument spelled out in the
// cache package.

type journal struct {
	gen     uint64
	setGen  []uint64
	idx     []int32
	entries []entry // pre-image arena: entry e occupies [e*ways, (e+1)*ways)
}

// Snap is one checkpoint of a TLB: every entry (flat regime) or a journal
// mark (journaled regime), plus the LRU clock and the event counters.
type Snap struct {
	entries []entry
	mark    int
	tick    uint64
	stats   Stats
}

// EnableJournal allocates the journal (disarmed). Call once, before the
// run, on TLBs owned by an optimistic shard engine.
func (t *TLB) EnableJournal() {
	t.jnStore = &journal{gen: 1, setGen: make([]uint64, len(t.sets))}
}

// jsave records set s's pre-image once per generation. Callers guard with
// t.jn != nil.
func (t *TLB) jsave(s uint64) {
	j := t.jn
	if j.setGen[s] == j.gen {
		return
	}
	j.setGen[s] = j.gen
	j.idx = append(j.idx, int32(s))
	j.entries = append(j.entries, t.sets[s]...)
}

// jsaveAll records every set (whole-TLB flushes).
func (t *TLB) jsaveAll() {
	for s := range t.sets {
		t.jsave(uint64(s))
	}
}

// Save checkpoints the TLB into s: a journal mark when journaling is
// enabled (arming the mutation hooks), a full entry copy otherwise.
func (t *TLB) Save(s *Snap) {
	if j := t.jnStore; j != nil {
		t.jn = j
		s.mark = len(j.idx)
		s.entries = s.entries[:0]
		j.gen++
	} else {
		s.entries = s.entries[:0]
		for _, set := range t.sets {
			s.entries = append(s.entries, set...)
		}
	}
	s.tick = t.tick
	s.stats = t.Stats
}

// Restore rewinds the TLB to the state captured by Save. Journaled restore
// disarms the hooks for the post-rollback replay.
func (t *TLB) Restore(s *Snap) {
	if j := t.jnStore; j != nil {
		ways := t.cfg.Ways
		for e := len(j.idx) - 1; e >= s.mark; e-- {
			copy(t.sets[j.idx[e]], j.entries[e*ways:(e+1)*ways])
		}
		j.idx = j.idx[:s.mark]
		j.entries = j.entries[:s.mark*ways]
		j.gen++
		t.jn = nil
	} else {
		i := 0
		for _, set := range t.sets {
			copy(set, s.entries[i:i+len(set)])
			i += len(set)
		}
	}
	t.tick = s.tick
	t.Stats = s.stats
}

// CommitSnap finalizes the epoch: the journal truncates and disarms.
func (t *TLB) CommitSnap() {
	if j := t.jnStore; j != nil {
		j.idx = j.idx[:0]
		j.entries = j.entries[:0]
		j.gen++
		t.jn = nil
	}
}
