// Package tlb models the per-core TLB through which virtual snooping
// learns a page's sharing type: the two unused PTE bits (VM-private /
// RW-shared / RO-shared) are cached in each TLB entry, so "processors can
// know page sharing types for all memory accesses during address
// translation" (Section II.B).
//
// The TLB matters to the mechanism in two ways this model captures:
//
//   - every coherence decision consumes the cached sharing type, so a TLB
//     miss pays a page-walk latency before the request can be routed, and
//   - hypervisor events that change a mapping or its type — copy-on-write
//     on a content-shared page, page merging — require shootdowns that
//     invalidate stale entries.
package tlb

import (
	"fmt"

	"vsnoop/internal/mem"
)

// Config shapes one TLB.
type Config struct {
	Entries int // total entries
	Ways    int
	// Tagged keeps entries across VM switches by tagging them with the
	// VMID (ASID-style); untagged TLBs flush on every vCPU relocation.
	Tagged bool
	// WalkLatency is the page-walk cost of a miss, in cycles.
	WalkLatency uint64
}

// DefaultConfig is a 64-entry 4-way tagged TLB with a 30-cycle walk.
func DefaultConfig() Config {
	return Config{Entries: 64, Ways: 4, Tagged: true, WalkLatency: 30}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Entries <= 0 || c.Ways <= 0 || c.Entries%c.Ways != 0 {
		return fmt.Errorf("tlb: bad geometry %d/%d", c.Entries, c.Ways)
	}
	sets := c.Entries / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("tlb: set count %d not a power of two", sets)
	}
	return nil
}

type entry struct {
	vm    mem.VMID
	guest mem.GuestPage
	tr    mem.Translation
	valid bool
	lru   uint64
}

// Stats counts TLB events.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Flushes    uint64 // whole-TLB or per-VM flushes
	Shootdowns uint64 // single-page invalidations
}

// TLB is one core's translation cache. Not safe for concurrent use.
type TLB struct {
	cfg     Config
	sets    [][]entry
	setMask uint64
	tick    uint64

	Stats Stats

	// jn is the armed checkpoint journal (nil outside a speculative epoch);
	// jnStore holds the allocation between epochs. See snapshot.go.
	jn      *journal
	jnStore *journal
}

// New builds a TLB; it panics on invalid geometry.
func New(cfg Config) *TLB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nSets := cfg.Entries / cfg.Ways
	sets := make([][]entry, nSets)
	backing := make([]entry, cfg.Entries)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return &TLB{cfg: cfg, sets: sets, setMask: uint64(nSets - 1)}
}

// Config returns the TLB configuration.
func (t *TLB) Config() Config { return t.cfg }

func (t *TLB) set(gp mem.GuestPage) []entry {
	return t.sets[uint64(gp)&t.setMask]
}

// Lookup returns the cached translation for (vm, guest page).
func (t *TLB) Lookup(vm mem.VMID, gp mem.GuestPage) (mem.Translation, bool) {
	set := t.set(gp)
	for i := range set {
		e := &set[i]
		if e.valid && e.guest == gp && (!t.cfg.Tagged || e.vm == vm) && e.vm == vm {
			if t.jn != nil {
				t.jsave(uint64(gp) & t.setMask)
			}
			t.tick++
			e.lru = t.tick
			t.Stats.Hits++
			return e.tr, true
		}
	}
	t.Stats.Misses++
	return mem.Translation{}, false
}

// Insert caches a translation after a page walk.
func (t *TLB) Insert(vm mem.VMID, gp mem.GuestPage, tr mem.Translation) {
	if t.jn != nil {
		t.jsave(uint64(gp) & t.setMask)
	}
	set := t.set(gp)
	slot := &set[0]
	for i := range set {
		e := &set[i]
		if e.valid && e.guest == gp && e.vm == vm {
			slot = e // refresh in place
			break
		}
		if !e.valid {
			slot = e
			break
		}
		if e.lru < slot.lru {
			slot = e
		}
	}
	t.tick++
	*slot = entry{vm: vm, guest: gp, tr: tr, valid: true, lru: t.tick}
}

// Shootdown invalidates one (vm, guest page) entry, as the hypervisor does
// after copy-on-write or page merging changes the mapping or its type.
func (t *TLB) Shootdown(vm mem.VMID, gp mem.GuestPage) {
	if t.jn != nil {
		t.jsave(uint64(gp) & t.setMask)
	}
	set := t.set(gp)
	for i := range set {
		e := &set[i]
		if e.valid && e.guest == gp && e.vm == vm {
			e.valid = false
			t.Stats.Shootdowns++
			return
		}
	}
}

// FlushVM drops every entry of vm (context switch on an untagged TLB, or
// VM teardown).
func (t *TLB) FlushVM(vm mem.VMID) {
	if t.jn != nil {
		t.jsaveAll()
	}
	n := 0
	for s := range t.sets {
		set := t.sets[s]
		for i := range set {
			if set[i].valid && set[i].vm == vm {
				set[i].valid = false
				n++
			}
		}
	}
	if n > 0 {
		t.Stats.Flushes++
	}
}

// FlushAll empties the TLB.
func (t *TLB) FlushAll() {
	if t.jn != nil {
		t.jsaveAll()
	}
	for s := range t.sets {
		set := t.sets[s]
		for i := range set {
			set[i].valid = false
		}
	}
	t.Stats.Flushes++
}

// CountValid returns the number of valid entries (tests).
func (t *TLB) CountValid() int {
	n := 0
	for s := range t.sets {
		for i := range t.sets[s] {
			if t.sets[s][i].valid {
				n++
			}
		}
	}
	return n
}
