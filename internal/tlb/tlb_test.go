package tlb

import (
	"testing"
	"testing/quick"

	"vsnoop/internal/mem"
	"vsnoop/internal/sim"
)

func small() *TLB {
	return New(Config{Entries: 16, Ways: 4, Tagged: true, WalkLatency: 30})
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Entries: 12, Ways: 4}).Validate(); err == nil {
		t.Fatal("non-power-of-two sets accepted")
	}
	if err := (Config{Entries: 10, Ways: 4}).Validate(); err == nil {
		t.Fatal("indivisible geometry accepted")
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHitMiss(t *testing.T) {
	tl := small()
	tr := mem.Translation{Host: 42, Type: mem.PageROShared}
	if _, ok := tl.Lookup(1, 5); ok {
		t.Fatal("hit in empty TLB")
	}
	tl.Insert(1, 5, tr)
	got, ok := tl.Lookup(1, 5)
	if !ok || got != tr {
		t.Fatalf("lookup = %+v, %v", got, ok)
	}
	if tl.Stats.Hits != 1 || tl.Stats.Misses != 1 {
		t.Fatalf("stats = %+v", tl.Stats)
	}
}

func TestVMIsolation(t *testing.T) {
	tl := small()
	tl.Insert(1, 5, mem.Translation{Host: 42})
	if _, ok := tl.Lookup(2, 5); ok {
		t.Fatal("VM 2 hit VM 1's entry")
	}
}

func TestLRUReplacement(t *testing.T) {
	tl := small() // 4 sets x 4 ways
	// Fill one set (pages congruent mod 4).
	for i := 0; i < 4; i++ {
		tl.Insert(1, mem.GuestPage(i*4), mem.Translation{Host: mem.HostPage(i)})
	}
	tl.Lookup(1, 0) // refresh page 0
	tl.Insert(1, 16*4, mem.Translation{Host: 99})
	if _, ok := tl.Lookup(1, 0); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := tl.Lookup(1, 4); ok {
		t.Fatal("LRU entry survived")
	}
}

func TestShootdown(t *testing.T) {
	tl := small()
	tl.Insert(1, 5, mem.Translation{Host: 42, Type: mem.PageROShared})
	tl.Insert(2, 5, mem.Translation{Host: 42, Type: mem.PageROShared})
	tl.Shootdown(1, 5)
	if _, ok := tl.Lookup(1, 5); ok {
		t.Fatal("entry survived shootdown")
	}
	if _, ok := tl.Lookup(2, 5); !ok {
		t.Fatal("shootdown hit the wrong VM")
	}
	if tl.Stats.Shootdowns != 1 {
		t.Fatalf("shootdowns = %d", tl.Stats.Shootdowns)
	}
}

func TestFlushVM(t *testing.T) {
	tl := small()
	tl.Insert(1, 1, mem.Translation{})
	tl.Insert(1, 2, mem.Translation{})
	tl.Insert(2, 3, mem.Translation{})
	tl.FlushVM(1)
	if tl.CountValid() != 1 {
		t.Fatalf("valid = %d, want 1", tl.CountValid())
	}
	if _, ok := tl.Lookup(2, 3); !ok {
		t.Fatal("flush removed another VM's entry")
	}
}

func TestFlushAll(t *testing.T) {
	tl := small()
	for i := 0; i < 10; i++ {
		tl.Insert(1, mem.GuestPage(i), mem.Translation{})
	}
	tl.FlushAll()
	if tl.CountValid() != 0 {
		t.Fatal("entries survived FlushAll")
	}
}

func TestInsertRefreshesInPlace(t *testing.T) {
	tl := small()
	tl.Insert(1, 5, mem.Translation{Host: 1})
	tl.Insert(1, 5, mem.Translation{Host: 2, Type: mem.PagePrivate})
	got, ok := tl.Lookup(1, 5)
	if !ok || got.Host != 2 {
		t.Fatalf("refresh failed: %+v", got)
	}
	// Must not occupy two ways.
	n := 0
	for i := 0; i < 4; i++ {
		if _, ok := tl.Lookup(1, 5); ok {
			n++
		}
	}
	if tl.CountValid() != 1 {
		t.Fatalf("valid = %d after refresh", tl.CountValid())
	}
	_ = n
}

// Property: lookup after insert always hits until evicted or invalidated,
// and the TLB never exceeds its capacity.
func TestCapacityProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := sim.NewRand(seed)
		tl := small()
		for op := 0; op < 500; op++ {
			vm := mem.VMID(r.Intn(3))
			gp := mem.GuestPage(r.Intn(64))
			switch r.Intn(4) {
			case 0, 1:
				tl.Insert(vm, gp, mem.Translation{Host: mem.HostPage(gp)})
				if got, ok := tl.Lookup(vm, gp); !ok || got.Host != mem.HostPage(gp) {
					return false
				}
			case 2:
				tl.Shootdown(vm, gp)
			case 3:
				tl.Lookup(vm, gp)
			}
			if tl.CountValid() > 16 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}
