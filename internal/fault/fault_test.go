package fault

import (
	"strings"
	"testing"

	"vsnoop/internal/mem"
	"vsnoop/internal/mesh"
	"vsnoop/internal/sim"
	"vsnoop/internal/token"
)

func TestPlanActive(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Active() {
		t.Fatal("nil plan active")
	}
	if (&Plan{}).Active() {
		t.Fatal("zero plan active")
	}
	for _, p := range []*Plan{
		{DropPct: 1}, {DupPct: 1}, {DelayPct: 1}, {DegradedLinks: 1},
		{Events: []Event{{Kind: EvCorruptMap}}},
	} {
		if !p.Active() {
			t.Fatalf("plan %+v not active", p)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	if err := (*Plan)(nil).Validate(); err != nil {
		t.Fatalf("nil plan: %v", err)
	}
	good := &Plan{DropPct: 5, DupPct: 1, DelayPct: 2,
		Events: []Event{{Kind: EvMigrationStorm, Count: 4}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
	for name, p := range map[string]*Plan{
		"drop>100":      {DropPct: 101},
		"negative dup":  {DupPct: -1},
		"negative max":  {DelayMax: -1},
		"bad kind":      {Events: []Event{{Kind: EventKind(99)}}},
		"negative vm":   {Events: []Event{{Kind: EvCorruptMap, VM: -1}}},
		"negative link": {DegradedLinks: -2},
	} {
		if err := p.Validate(); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

// faultNet builds a 4x4 mesh with an injector attached; node 15 plays the
// home memory controller.
func faultNet(t *testing.T, plan *Plan, seed uint64) (*sim.Engine, *mesh.Network, []mesh.NodeID, *Injector) {
	t.Helper()
	eng := sim.NewEngine()
	net := mesh.New(eng, mesh.DefaultConfig())
	ids := make([]mesh.NodeID, 16)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			ids[y*4+x] = net.Attach(x, y, nil)
		}
	}
	in := NewInjector(plan, seed)
	in.Attach(net, []mesh.NodeID{ids[15]})
	return eng, net, ids, in
}

func TestPersistentMessagesExempt(t *testing.T) {
	// 100% drop: every transient request dies, every persistent-protocol
	// message still arrives.
	eng, net, ids, in := faultNet(t, &Plan{DropPct: 100}, 1)
	got := map[token.Kind]int{}
	net.SetHandler(ids[5], func(p interface{}) { got[p.(token.Msg).Kind]++ })
	for _, k := range []token.Kind{
		token.MsgGetS, token.MsgGetX,
		token.MsgPersistentReq, token.MsgPersistentActivate, token.MsgPersistentRelease, token.MsgPersistentDeactivate,
	} {
		net.Send(ids[0], ids[5], 8, token.Msg{Kind: k, Addr: 64})
	}
	eng.Run()
	if got[token.MsgGetS] != 0 || got[token.MsgGetX] != 0 {
		t.Fatalf("transient requests survived 100%% drop: %v", got)
	}
	for _, k := range []token.Kind{token.MsgPersistentReq, token.MsgPersistentActivate, token.MsgPersistentRelease, token.MsgPersistentDeactivate} {
		if got[k] != 1 {
			t.Fatalf("persistent message %v dropped (got %v)", k, got)
		}
	}
	if in.Stats.Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2", in.Stats.Dropped)
	}
}

func TestTokenMessagesBounceHome(t *testing.T) {
	// 100% drop on a Data response: never destroyed, redirected to home.
	eng, net, ids, in := faultNet(t, &Plan{DropPct: 100}, 1)
	atDst, atHome := 0, 0
	net.SetHandler(ids[5], func(interface{}) { atDst++ })
	net.SetHandler(ids[15], func(interface{}) { atHome++ })
	net.Send(ids[0], ids[5], 72, token.Msg{Kind: token.MsgData, Addr: 64, Tokens: 3})
	net.Send(ids[0], ids[5], 16, token.Msg{Kind: token.MsgTokens, Addr: 64, Tokens: 1})
	eng.Run()
	if atDst != 0 || atHome != 2 {
		t.Fatalf("bounce: dst=%d home=%d, want 0/2", atDst, atHome)
	}
	if in.Stats.Bounced != 2 || in.Stats.Dropped != 0 {
		t.Fatalf("stats = %+v, want 2 bounced, 0 dropped", in.Stats)
	}
}

func TestDuplicateOnlyRequests(t *testing.T) {
	eng, net, ids, in := faultNet(t, &Plan{DupPct: 100}, 1)
	got := map[token.Kind]int{}
	net.SetHandler(ids[5], func(p interface{}) { got[p.(token.Msg).Kind]++ })
	net.Send(ids[0], ids[5], 8, token.Msg{Kind: token.MsgGetS, Addr: 64})
	net.Send(ids[0], ids[5], 72, token.Msg{Kind: token.MsgData, Addr: 64, Tokens: 1})
	eng.Run()
	if got[token.MsgGetS] != 2 {
		t.Fatalf("GetS delivered %d times, want 2", got[token.MsgGetS])
	}
	if got[token.MsgData] != 1 {
		t.Fatalf("Data duplicated: delivered %d times — duplicating tokens forges them", got[token.MsgData])
	}
	if in.Stats.Duplicated != 1 {
		t.Fatalf("Duplicated = %d, want 1", in.Stats.Duplicated)
	}
}

func TestNonCoherencePayloadUntouched(t *testing.T) {
	eng, net, ids, in := faultNet(t, &Plan{DropPct: 100, DelayPct: 100}, 1)
	delivered := 0
	net.SetHandler(ids[5], func(interface{}) { delivered++ })
	net.Send(ids[0], ids[5], 8, "not a coherence message")
	eng.Run()
	if delivered != 1 {
		t.Fatal("non-coherence payload faulted")
	}
	if in.Stats.Dropped != 0 && in.Stats.Delayed != 0 {
		t.Fatalf("stats moved for non-coherence payload: %+v", in.Stats)
	}
}

func TestInjectorDeterministic(t *testing.T) {
	run := func() (Stats, []sim.Cycle) {
		eng, net, ids, in := faultNet(t, &Plan{Seed: 7, DropPct: 30, DupPct: 20, DelayPct: 30, DelayMax: 50}, 9)
		var arrivals []sim.Cycle
		net.SetHandler(ids[10], func(interface{}) { arrivals = append(arrivals, eng.Now()) })
		for i := 0; i < 200; i++ {
			net.Send(ids[0], ids[10], 8, token.Msg{Kind: token.MsgGetS, Addr: mem.BlockAddr(i)})
		}
		eng.Run()
		return in.Stats, arrivals
	}
	s1, a1 := run()
	s2, a2 := run()
	if s1 != s2 {
		t.Fatalf("stats differ across identical runs: %+v vs %+v", s1, s2)
	}
	if len(a1) != len(a2) {
		t.Fatalf("arrival counts differ: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("arrival %d differs: %d vs %d", i, a1[i], a2[i])
		}
	}
	if s1.Dropped == 0 || s1.Duplicated == 0 || s1.Delayed == 0 {
		t.Fatalf("expected all fault classes to trigger over 200 messages: %+v", s1)
	}
}

func TestScheduleEvents(t *testing.T) {
	eng := sim.NewEngine()
	plan := &Plan{Events: []Event{
		{At: 10, Kind: EvCorruptMap, VM: 1, Core: 3},
		{At: 20, Kind: EvCorruptCounter, VM: 2, Core: 4}, // Count 0 -> default -1
		{At: 30, Kind: EvMigrationStorm},                 // Count 0 -> default 4 pairs
	}}
	in := NewInjector(plan, 1)
	var gotMap, gotCtr, gotStorm []int
	in.ScheduleEvents(eng, EventHooks{
		CorruptMap:     func(vm mem.VMID, core int) { gotMap = []int{int(vm), core, int(eng.Now())} },
		CorruptCounter: func(core int, vm mem.VMID, delta int) { gotCtr = []int{core, int(vm), delta} },
		MigrationStorm: func(pairs int) int { gotStorm = []int{pairs}; return pairs * 2 },
	})
	eng.Run()
	if len(gotMap) != 3 || gotMap[0] != 1 || gotMap[1] != 3 || gotMap[2] != 10 {
		t.Fatalf("corrupt-map hook got %v", gotMap)
	}
	if len(gotCtr) != 3 || gotCtr[0] != 4 || gotCtr[1] != 2 || gotCtr[2] != -1 {
		t.Fatalf("corrupt-counter hook got %v (delta default -1)", gotCtr)
	}
	if len(gotStorm) != 1 || gotStorm[0] != 4 {
		t.Fatalf("storm hook got %v (default 4 pairs)", gotStorm)
	}
	s := in.Stats
	if s.MapCorruptions != 1 || s.CounterCorruptions != 1 || s.StormRelocations != 8 {
		t.Fatalf("event stats = %+v", s)
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		EvCorruptMap: "corrupt-map", EvCorruptCounter: "corrupt-counter",
		EvMigrationStorm: "migration-storm",
	} {
		if got := k.String(); !strings.Contains(got, want) {
			t.Fatalf("EventKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
