// Package fault implements deterministic fault injection for the
// virtual-snooping stack. A Plan is a seeded, reproducible description of
// what goes wrong during a run: probabilistic mesh-message faults (drop,
// duplicate, delay), degraded links, and scheduled one-shot events
// (vCPU-map register corruption, residence-counter corruption, vCPU
// migration storms). The Injector turns a Plan into concrete hooks on
// internal/mesh and the system layer.
//
// The fault model is deliberately shaped around the paper's safety
// argument (Section IV): Token Coherence tolerates lost and reordered
// *transient* traffic, so a wrong destination set — or an injected message
// loss — may only cost performance. The injector therefore only destroys
// what the protocol is specified to survive:
//
//   - GetS/GetX transient requests may be dropped, duplicated, or delayed.
//     Loss triggers the requester's timeout/retry path; duplicates are
//     idempotent (a second response is absorbed or written back).
//   - Data/Tokens responses are never destroyed (that would un-conserve
//     tokens and turn a performance fault into a correctness fault no real
//     interconnect exhibits: links corrupt and misroute, but flits are
//     retransmitted). Instead "drop" bounces them to the home memory
//     controller — a misdelivery the protocol absorbs. They may be delayed.
//   - Writebacks (WBData/WBTokens) are delay-only; they already target the
//     home controller.
//   - The persistent-request protocol (PReq/PAct/PRel/PDeact) is exempt
//     entirely: it is the forward-progress guarantee of last resort, and
//     real designs carry it on a reliable virtual channel.
//
// All randomness flows from one seeded sim.Rand stream consumed in
// deterministic (event-order) sequence, so identical (Config, Plan, seed)
// produce bit-identical runs.
package fault

import (
	"fmt"

	"vsnoop/internal/mem"
	"vsnoop/internal/mesh"
	"vsnoop/internal/sim"
	"vsnoop/internal/token"
)

// EventKind enumerates scheduled one-shot fault events.
type EventKind int

const (
	// EvCorruptMap overwrites a VM's vCPU map register: Core >= 0 leaves a
	// single stale entry, Core < 0 clears the map.
	EvCorruptMap EventKind = iota
	// EvCorruptCounter adds Count (default -1) to a VM's residence counter
	// at core Core — the soft error that later surfaces as an underflow.
	EvCorruptCounter
	// EvMigrationStorm performs Count random vCPU swaps back-to-back,
	// churning every map at once.
	EvMigrationStorm
)

func (k EventKind) String() string {
	return [...]string{"corrupt-map", "corrupt-counter", "migration-storm"}[k]
}

// Event is one scheduled fault.
type Event struct {
	At   sim.Cycle // absolute injection cycle
	Kind EventKind
	VM   int // target VM (corrupt-map / corrupt-counter)
	Core int // target core; corrupt-map: stale entry (<0 clears)
	// Count is the counter delta (corrupt-counter, default -1) or the
	// number of vCPU swaps (migration-storm, default 4).
	Count int
}

// Plan is a complete, seedable fault scenario. The zero value injects
// nothing (and a nil *Plan disables the subsystem entirely).
type Plan struct {
	// Seed is mixed with the run seed to derive the injector's random
	// stream, so the same plan produces different (but each reproducible)
	// fault sequences across run seeds.
	Seed uint64

	// Per-message fault probabilities, in percent (5 = 5%). Drop applies
	// to transient requests (destroyed) and to token-carrying responses
	// (bounced to the home controller, never destroyed).
	DropPct  float64
	DupPct   float64 // transient requests only
	DelayPct float64 // any non-persistent message
	DelayMax int     // max extra delivery cycles (default 200)

	// DegradedLinks marks that many randomly chosen mesh links as slow,
	// multiplying their serialization cost by LinkDegradeFactor (default 4).
	DegradedLinks     int
	LinkDegradeFactor int

	// Events are scheduled one-shot faults.
	Events []Event
}

// Active reports whether the plan injects anything at all.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return p.DropPct > 0 || p.DupPct > 0 || p.DelayPct > 0 ||
		p.DegradedLinks > 0 || len(p.Events) > 0
}

// Validate rejects out-of-range probabilities and malformed events.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for _, pc := range []struct {
		name string
		v    float64
	}{{"DropPct", p.DropPct}, {"DupPct", p.DupPct}, {"DelayPct", p.DelayPct}} {
		if pc.v < 0 || pc.v > 100 {
			return fmt.Errorf("fault: %s %.2f outside [0,100]", pc.name, pc.v)
		}
	}
	if p.DelayMax < 0 || p.DegradedLinks < 0 {
		return fmt.Errorf("fault: negative DelayMax or DegradedLinks")
	}
	for i, ev := range p.Events {
		if ev.Kind < EvCorruptMap || ev.Kind > EvMigrationStorm {
			return fmt.Errorf("fault: event %d has unknown kind %d", i, ev.Kind)
		}
		if ev.VM < 0 {
			return fmt.Errorf("fault: event %d has negative VM", i)
		}
	}
	return nil
}

// Moderate is the reference stress plan used by the soak tests: light
// probabilistic faults on every message class plus one of each scheduled
// event kind placed by the caller.
func Moderate(seed uint64) *Plan {
	return &Plan{Seed: seed, DropPct: 2, DupPct: 1, DelayPct: 2, DelayMax: 200}
}

// Stats counts injected faults (whole-run; never warmup-adjusted).
type Stats struct {
	Dropped            uint64 // transient requests destroyed
	Bounced            uint64 // token-carrying messages redirected home
	Duplicated         uint64
	Delayed            uint64
	MapCorruptions     uint64
	CounterCorruptions uint64
	StormRelocations   uint64 // vCPU swaps performed by migration storms
}

// EventHooks are the system-layer callbacks scheduled events act through.
type EventHooks struct {
	CorruptMap     func(vm mem.VMID, core int)
	CorruptCounter func(core int, vm mem.VMID, delta int)
	// MigrationStorm performs pairs random vCPU swaps and returns how many
	// relocations actually happened.
	MigrationStorm func(pairs int) int
}

// Injector applies a Plan to a running machine.
type Injector struct {
	Plan  *Plan
	Rng   *sim.Rand
	Stats Stats

	mcs                 []mesh.NodeID
	dropP, dupP, delayP float64
	delayMax            int
	mixedSeed           uint64

	// perNode, when non-nil, gives every source endpoint its own random
	// stream and fault counters (EnablePerNode). Sharded runs need this:
	// the message hook fires concurrently from different shards, and a
	// single stream would both race and make the fault sequence depend on
	// the shard interleaving. A node's stream is consumed in that node's
	// deterministic send order, so per-node faulting is reproducible and
	// independent of the shard count.
	perNode []nodeFaults
}

// nodeFaults is one endpoint's fault state, padded so that concurrent
// senders on different shards do not share a cache line.
type nodeFaults struct {
	rng   *sim.Rand
	stats Stats
	_     [6]uint64
}

// NewInjector builds an injector whose random stream mixes the plan seed
// with the run seed.
func NewInjector(plan *Plan, runSeed uint64) *Injector {
	delayMax := plan.DelayMax
	if delayMax <= 0 {
		delayMax = 200
	}
	mixed := runSeed ^ (plan.Seed * 0x9e3779b97f4a7c15)
	return &Injector{
		Plan:      plan,
		Rng:       sim.NewRandTagged(mixed, "fault"),
		dropP:     plan.DropPct / 100,
		dupP:      plan.DupPct / 100,
		delayP:    plan.DelayPct / 100,
		delayMax:  delayMax,
		mixedSeed: mixed,
	}
}

// EnablePerNode switches the probabilistic hook to per-source-node random
// streams and counters for the given number of endpoints. Call before the
// run starts; TotalStats aggregates the per-node counters afterwards.
func (in *Injector) EnablePerNode(nodes int) {
	in.perNode = make([]nodeFaults, nodes)
	for i := range in.perNode {
		in.perNode[i].rng = sim.NewRandTagged(in.mixedSeed, fmt.Sprintf("fault-n%d", i))
	}
}

// TotalStats returns the whole-run fault counters: the shared Stats in
// single-stream mode, the per-node sum after EnablePerNode.
func (in *Injector) TotalStats() Stats {
	if in.perNode == nil {
		return in.Stats
	}
	total := in.Stats // scheduled-event counters stay on the shared struct
	for i := range in.perNode {
		s := &in.perNode[i].stats
		total.Dropped += s.Dropped
		total.Bounced += s.Bounced
		total.Duplicated += s.Duplicated
		total.Delayed += s.Delayed
	}
	return total
}

// Attach installs the message hook on the network and applies link
// degradation. mcNodes maps home-controller interleaving to endpoints
// (bounce targets for token-carrying messages).
func (in *Injector) Attach(net *mesh.Network, mcNodes []mesh.NodeID) {
	in.mcs = mcNodes
	net.FaultHook = in.hook
	if in.Plan.DegradedLinks > 0 {
		f := in.Plan.LinkDegradeFactor
		if f < 2 {
			f = 4
		}
		net.DegradeLinks(in.Plan.DegradedLinks, f, in.Rng)
	}
}

// home returns the home memory controller endpoint for a block (the same
// interleaving the cache controllers use).
func (in *Injector) home(a mem.BlockAddr) mesh.NodeID {
	return in.mcs[uint64(a)%uint64(len(in.mcs))]
}

// hook classifies each injected message and rolls its fate. Non-coherence
// payloads pass through untouched.
func (in *Injector) hook(src, dst mesh.NodeID, bytes int, payload interface{}) mesh.FaultOutcome {
	msg, ok := payload.(token.Msg)
	if !ok {
		return mesh.FaultOutcome{}
	}
	rng, stats := in.Rng, &in.Stats
	if in.perNode != nil {
		n := &in.perNode[src]
		rng, stats = n.rng, &n.stats
	}
	var out mesh.FaultOutcome
	switch msg.Kind {
	case token.MsgGetS, token.MsgGetX:
		// Transient requests: fully faultable. Loss is what the
		// timeout/retry path exists for; duplicates are idempotent.
		if in.dropP > 0 && rng.Bool(in.dropP) {
			stats.Dropped++
			out.Drop = true
			return out
		}
		if in.dupP > 0 && rng.Bool(in.dupP) {
			stats.Duplicated++
			out.Duplicate = true
		}
		in.maybeDelay(rng, stats, &out)
	case token.MsgData, token.MsgTokens:
		// Token-carrying: never destroyed, bounced home instead.
		if in.dropP > 0 && rng.Bool(in.dropP) && len(in.mcs) > 0 {
			stats.Bounced++
			out.Redirected = true
			out.RedirectTo = in.home(msg.Addr)
		}
		in.maybeDelay(rng, stats, &out)
	case token.MsgWBData, token.MsgWBTokens:
		// Writebacks already target home: delay-only.
		in.maybeDelay(rng, stats, &out)
	default:
		// Persistent protocol: the reliable channel of last resort.
	}
	return out
}

func (in *Injector) maybeDelay(rng *sim.Rand, stats *Stats, out *mesh.FaultOutcome) {
	if in.delayP > 0 && rng.Bool(in.delayP) {
		stats.Delayed++
		out.Delay = sim.Cycle(1 + rng.Intn(in.delayMax))
	}
}

// ScheduleEvents queues the plan's one-shot events on the engine, acting
// through the provided hooks. Call before the run starts (event times are
// absolute cycles).
func (in *Injector) ScheduleEvents(eng *sim.Engine, h EventHooks) {
	for _, ev := range in.Plan.Events {
		ev := ev
		eng.ScheduleAt(ev.At, func() {
			switch ev.Kind {
			case EvCorruptMap:
				if h.CorruptMap != nil {
					in.Stats.MapCorruptions++
					h.CorruptMap(mem.VMID(ev.VM), ev.Core)
				}
			case EvCorruptCounter:
				if h.CorruptCounter != nil {
					delta := ev.Count
					if delta == 0 {
						delta = -1
					}
					in.Stats.CounterCorruptions++
					h.CorruptCounter(ev.Core, mem.VMID(ev.VM), delta)
				}
			case EvMigrationStorm:
				if h.MigrationStorm != nil {
					pairs := ev.Count
					if pairs <= 0 {
						pairs = 4
					}
					in.Stats.StormRelocations += uint64(h.MigrationStorm(pairs))
				}
			}
		})
	}
}
