package trace

import (
	"bytes"
	"io"
	"testing"

	"vsnoop/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Begin(2); err != nil {
		t.Fatal(err)
	}
	p := workload.MustGet("fft")
	g0 := workload.NewGenerator(p, 4, 0, 7)
	g1 := workload.NewGenerator(p, 4, 1, 7)
	const n = 5000
	if err := Capture(w, g0, n); err != nil {
		t.Fatal(err)
	}
	if err := Capture(w, g1, n); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.VCPUs() != 2 {
		t.Fatalf("vcpus = %d", r.VCPUs())
	}
	// Replay must equal regeneration with the same seeds.
	g0 = workload.NewGenerator(p, 4, 0, 7)
	g1 = workload.NewGenerator(p, 4, 1, 7)
	for s, g := range []*workload.Generator{g0, g1} {
		cnt, err := r.NextSection()
		if err != nil {
			t.Fatal(err)
		}
		if cnt != n {
			t.Fatalf("section %d length %d", s, cnt)
		}
		for i := 0; i < n; i++ {
			got, err := r.Read()
			if err != nil {
				t.Fatalf("section %d record %d: %v", s, i, err)
			}
			if want := g.Next(); got != want {
				t.Fatalf("section %d record %d: %+v != %+v", s, i, got, want)
			}
		}
	}
}

func TestCompactness(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Begin(1)
	g := workload.NewGenerator(workload.MustGet("canneal"), 4, 0, 3)
	const n = 10000
	if err := Capture(w, g, n); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	perRecord := float64(buf.Len()) / n
	if perRecord > 6 {
		t.Fatalf("%.1f bytes/record, expected < 6 (varint pages)", perRecord)
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE_______"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTruncatedTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Begin(1)
	g := workload.NewGenerator(workload.MustGet("fft"), 4, 0, 1)
	Capture(w, g, 100)
	w.Flush()
	cut := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.NextSection(); err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 100; i++ {
		if _, lastErr = r.Read(); lastErr != nil {
			break
		}
	}
	if lastErr == nil {
		t.Fatal("truncated trace read fully")
	}
}

func TestSectionOverflowRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Begin(1)
	w.Section(1)
	g := workload.NewGenerator(workload.MustGet("fft"), 4, 0, 1)
	if err := w.Write(g.Next()); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(g.Next()); err == nil {
		t.Fatal("overflowing a section did not error")
	}
}

func TestFlushRejectsIncompleteSection(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Begin(1)
	w.Section(5)
	if err := w.Flush(); err == nil {
		t.Fatal("flush of incomplete section did not error")
	}
}

func TestReplayerWraps(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Begin(1)
	g := workload.NewGenerator(workload.MustGet("fft"), 4, 0, 9)
	Capture(w, g, 10)
	w.Flush()
	r, _ := NewReader(bytes.NewReader(buf.Bytes()))
	rp, err := NewReplayer(r)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Len() != 10 {
		t.Fatalf("len = %d", rp.Len())
	}
	first := rp.Next()
	for i := 0; i < 9; i++ {
		rp.Next()
	}
	if rp.Next() != first {
		t.Fatal("replayer did not wrap to the start")
	}
}

func TestEOFAfterSection(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Begin(1)
	g := workload.NewGenerator(workload.MustGet("fft"), 4, 0, 9)
	Capture(w, g, 3)
	w.Flush()
	r, _ := NewReader(bytes.NewReader(buf.Bytes()))
	r.NextSection()
	for i := 0; i < 3; i++ {
		if _, err := r.Read(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}
