// Package trace records and replays per-vCPU memory-reference streams in a
// compact binary format. The paper's own methodology is trace-driven
// (Virtual-GEMS replays Simics execution traces into the GEMS timing
// model); this package gives the reproduction the same workflow: capture a
// workload's stream once, then replay it identically against different
// coherence configurations, or hand-author traces for directed tests.
//
// Format: a 16-byte header ("VSNPTRC1", version, vCPU count) followed by
// one varint-encoded record per reference:
//
//	record := ctx(1B) | flags(1B) | uvarint(page) | block(1B)
//
// Streams for different vCPUs are stored as independent sections so replay
// does not need to interleave.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"vsnoop/internal/mem"
	"vsnoop/internal/workload"
)

var magic = [8]byte{'V', 'S', 'N', 'P', 'T', 'R', 'C', '1'}

const flagWrite = 1 << 0

// Writer serializes reference streams.
type Writer struct {
	w       *bufio.Writer
	started bool
	nVCPUs  uint32
	cur     int64 // records written in the current section
}

// NewWriter wraps w. Call Begin before the first section.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Begin writes the header for a trace holding nVCPUs sections.
func (t *Writer) Begin(nVCPUs int) error {
	if t.started {
		return errors.New("trace: Begin called twice")
	}
	t.started = true
	t.nVCPUs = uint32(nVCPUs)
	if _, err := t.w.Write(magic[:]); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], 1) // version
	binary.LittleEndian.PutUint32(hdr[4:], t.nVCPUs)
	_, err := t.w.Write(hdr[:])
	return err
}

// Section starts the records of one vCPU, announcing its length.
func (t *Writer) Section(records int) error {
	if !t.started {
		return errors.New("trace: Section before Begin")
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(records))
	_, err := t.w.Write(buf[:n])
	t.cur = int64(records)
	return err
}

// Write appends one reference to the current section.
func (t *Writer) Write(r workload.Ref) error {
	if t.cur <= 0 {
		return errors.New("trace: section full or not started")
	}
	t.cur--
	var buf [2 + binary.MaxVarintLen64 + 1]byte
	buf[0] = byte(r.Ctx)
	if r.Write {
		buf[1] |= flagWrite
	}
	n := 2
	page := uint64(r.Page)
	if r.Ctx != workload.CtxGuest {
		page = uint64(r.Hv)
	}
	n += binary.PutUvarint(buf[n:], page)
	buf[n] = byte(r.Block)
	n++
	_, err := t.w.Write(buf[:n])
	return err
}

// Flush completes the trace.
func (t *Writer) Flush() error {
	if t.cur != 0 {
		return fmt.Errorf("trace: section has %d unwritten records", t.cur)
	}
	return t.w.Flush()
}

// Reader deserializes a trace.
type Reader struct {
	r      *bufio.Reader
	nVCPUs int
	left   int64
}

// NewReader validates the header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if m != magic {
		return nil, errors.New("trace: bad magic")
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:]); v != 1 {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	return &Reader{r: br, nVCPUs: int(binary.LittleEndian.Uint32(hdr[4:]))}, nil
}

// VCPUs returns the number of sections in the trace.
func (t *Reader) VCPUs() int { return t.nVCPUs }

// NextSection returns the record count of the next vCPU section.
func (t *Reader) NextSection() (int, error) {
	if t.left != 0 {
		return 0, fmt.Errorf("trace: %d records left in current section", t.left)
	}
	n, err := binary.ReadUvarint(t.r)
	if err != nil {
		return 0, err
	}
	t.left = int64(n)
	return int(n), nil
}

// Read returns the next reference of the current section.
func (t *Reader) Read() (workload.Ref, error) {
	if t.left <= 0 {
		return workload.Ref{}, io.EOF
	}
	t.left--
	var hdr [2]byte
	if _, err := io.ReadFull(t.r, hdr[:]); err != nil {
		return workload.Ref{}, err
	}
	page, err := binary.ReadUvarint(t.r)
	if err != nil {
		return workload.Ref{}, err
	}
	block, err := t.r.ReadByte()
	if err != nil {
		return workload.Ref{}, err
	}
	ref := workload.Ref{
		Ctx:   workload.Ctx(hdr[0]),
		Write: hdr[1]&flagWrite != 0,
		Block: int(block),
	}
	if ref.Ctx == workload.CtxGuest {
		ref.Page = mem.GuestPage(page)
	} else {
		ref.Hv = int(page)
	}
	return ref, nil
}

// Capture runs a generator for n references and writes them as one
// section.
func Capture(t *Writer, g *workload.Generator, n int) error {
	if err := t.Section(n); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := t.Write(g.Next()); err != nil {
			return err
		}
	}
	return nil
}

// Replayer feeds a recorded section as a reference source; it loops back
// to the beginning if drained (so replays can be longer than captures).
type Replayer struct {
	refs []workload.Ref
	pos  int
}

// NewReplayer materializes one section.
func NewReplayer(t *Reader) (*Replayer, error) {
	n, err := t.NextSection()
	if err != nil {
		return nil, err
	}
	refs := make([]workload.Ref, 0, n)
	for i := 0; i < n; i++ {
		r, err := t.Read()
		if err != nil {
			return nil, err
		}
		refs = append(refs, r)
	}
	if len(refs) == 0 {
		return nil, errors.New("trace: empty section")
	}
	return &Replayer{refs: refs}, nil
}

// Next returns the next recorded reference, wrapping at the end.
func (r *Replayer) Next() workload.Ref {
	ref := r.refs[r.pos]
	r.pos = (r.pos + 1) % len(r.refs)
	return ref
}

// Len returns the section length.
func (r *Replayer) Len() int { return len(r.refs) }
