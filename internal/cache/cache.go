// Package cache implements the set-associative cache model used for the
// private L1 and L2 caches: LRU replacement, per-block token-coherence
// state (token count, owner token, dirty bit), and the two hardware
// extensions virtual snooping adds (paper Section IV.B):
//
//   - a VM identifier in every cache tag, and
//   - per-VM cache residence counters that count how many valid blocks each
//     VM has in the cache. When a VM's counter reaches zero, the core can
//     safely be removed from that VM's vCPU map.
package cache

import (
	"fmt"

	"vsnoop/internal/mem"
)

// Config describes one cache.
type Config struct {
	Name       string
	SizeBytes  int
	Ways       int
	BlockBytes int
	HitLatency uint64 // cycles
}

// Validate checks the geometry is a power-of-two set count.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.BlockBytes <= 0 {
		return fmt.Errorf("cache %q: non-positive geometry", c.Name)
	}
	sets := c.SizeBytes / (c.Ways * c.BlockBytes)
	if sets == 0 {
		return fmt.Errorf("cache %q: zero sets", c.Name)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// Block is one cache line. Token-coherence state (Section V: Token
// Coherence, MOESI) is carried as a token count plus owner and dirty
// flags; the classic MOESI letter is derived on demand.
type Block struct {
	Addr   mem.BlockAddr
	Valid  bool
	Tokens int
	Owner  bool // holds the owner token (data-provider responsibility)
	Dirty  bool
	VM     mem.VMID // VM identifier in the tag (virtual snooping extension)
	// Provider marks this copy as its VM's designated data provider for an
	// RO-shared (content-shared) block, so intra-VM and friend-VM requests
	// get exactly one cache response (paper Section VI.B).
	Provider bool
	lru      uint64
}

// State is the derived MOESI state of a block.
type State uint8

const (
	Invalid State = iota
	Shared
	Owned
	Exclusive
	Modified
)

func (s State) String() string {
	return [...]string{"I", "S", "O", "E", "M"}[s]
}

// StateOf derives the MOESI letter from token state given the total number
// of tokens per block in the system.
func StateOf(b *Block, totalTokens int) State {
	switch {
	case !b.Valid || b.Tokens == 0:
		return Invalid
	case b.Tokens == totalTokens && b.Dirty:
		return Modified
	case b.Tokens == totalTokens:
		return Exclusive
	case b.Owner:
		return Owned
	default:
		return Shared
	}
}

// EvictInfo describes a block displaced from the cache; the coherence
// controller must return its tokens (and dirty data) to memory.
type EvictInfo struct {
	Addr   mem.BlockAddr
	Tokens int
	Owner  bool
	Dirty  bool
	VM     mem.VMID
}

// Cache is one set-associative cache. It is not safe for concurrent use;
// the simulation engine is single-threaded by design.
type Cache struct {
	cfg     Config
	sets    [][]Block
	setMask uint64
	tick    uint64

	// resident is the per-VM residence counter file, a flat array indexed
	// by mem.DenseVM (the hardware analogue: one small counter register per
	// VM, not an associative structure). It grows on first touch of a VM.
	resident []int

	// OnResidenceZero, if set, fires when a VM's residence counter drops
	// to zero (the trigger for vCPU-map removal in the counter policy).
	OnResidenceZero func(vm mem.VMID)
	// OnResidenceBelow, if set, fires when a VM's counter drops strictly
	// below Threshold (the counter-threshold policy trigger).
	OnResidenceBelow func(vm mem.VMID, count int)
	Threshold        int

	// OnDrop, if set, fires whenever a valid block leaves the cache
	// (eviction or invalidation). The system layer uses it to keep the L1
	// a strict subset of the L2 (inclusion).
	OnDrop func(a mem.BlockAddr)

	// OnInsert, if set, fires when a block becomes valid (region-presence
	// tracking for region-based snoop filters).
	OnInsert func(a mem.BlockAddr, vm mem.VMID)

	// OnResidenceUnderflow, if set, turns a residence-counter underflow from
	// a fatal bug into a recoverable fault: the counter is clamped, all
	// counters are recounted from the tags, and the hook fires so the filter
	// can suspect the VM's map. When nil (fault-free runs) underflow remains
	// a panic, because then it can only be a simulator bug.
	OnResidenceUnderflow func(vm mem.VMID)

	// jn is the armed checkpoint journal (nil outside a speculative epoch);
	// jnStore holds the allocation between epochs. See snapshot.go.
	jn      *journal
	jnStore *journal
}

// New builds a cache from cfg; it panics on invalid geometry (a
// configuration error, not a runtime condition).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nSets := cfg.SizeBytes / (cfg.Ways * cfg.BlockBytes)
	sets := make([][]Block, nSets)
	backing := make([]Block, nSets*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return &Cache{
		cfg:     cfg,
		sets:    sets,
		setMask: uint64(nSets - 1),
	}
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return len(c.sets) }

func (c *Cache) setIndex(a mem.BlockAddr) uint64 { return uint64(a) & c.setMask }

// Lookup returns the block holding addr with nonzero validity, or nil.
// It does not update LRU state; callers decide whether an access counts
// as a use (snoop probes do not).
func (c *Cache) Lookup(a mem.BlockAddr) *Block {
	s := c.setIndex(a)
	set := c.sets[s]
	for i := range set {
		if set[i].Valid && set[i].Addr == a {
			if c.jn != nil {
				// The caller may mutate the returned block in place, so the
				// hit journals its set's pre-image.
				c.jsave(s)
			}
			return &set[i]
		}
	}
	return nil
}

// Touch marks b most-recently used.
func (c *Cache) Touch(b *Block) {
	if c.jn != nil {
		c.jsave(c.setIndex(b.Addr))
	}
	c.tick++
	b.lru = c.tick
}

// Resident returns the residence counter for vm: the number of valid
// blocks tagged with that VM.
func (c *Cache) Resident(vm mem.VMID) int {
	i := mem.DenseVM(vm)
	if i >= len(c.resident) {
		return 0
	}
	return c.resident[i]
}

// ResidentVMs returns every VM with a nonzero residence counter, in
// counter-file order (deterministic).
func (c *Cache) ResidentVMs() []mem.VMID {
	out := make([]mem.VMID, 0, len(c.resident))
	for i, n := range c.resident {
		if n > 0 {
			out = append(out, mem.VMFromDense(i))
		}
	}
	return out
}

// counterIdx returns the counter-file slot for vm, growing the file on a
// VM's first touch (new VMs appear rarely: VM creation, fault injection).
func (c *Cache) counterIdx(vm mem.VMID) int {
	i := mem.DenseVM(vm)
	for i >= len(c.resident) {
		c.resident = append(c.resident, 0)
	}
	return i
}

func (c *Cache) incResident(vm mem.VMID) { c.resident[c.counterIdx(vm)]++ }

func (c *Cache) decResident(vm mem.VMID) {
	i := c.counterIdx(vm)
	c.resident[i]--
	n := c.resident[i]
	if n < 0 {
		if c.OnResidenceUnderflow == nil {
			panic(fmt.Sprintf("cache %s: residence counter for VM %d underflowed", c.cfg.Name, vm))
		}
		c.RecountResidence()
		n = c.resident[i]
		c.OnResidenceUnderflow(vm)
	}
	if n == 0 && c.OnResidenceZero != nil {
		c.OnResidenceZero(vm)
	}
	if c.OnResidenceBelow != nil && n < c.Threshold {
		c.OnResidenceBelow(vm, n)
	}
}

// Insert places addr into the cache tagged with vm, evicting the LRU
// victim of the set if no way is free. The new block starts with zero
// tokens; the coherence controller fills token state as responses arrive.
// evicted reports whether victim describes a displaced valid block.
func (c *Cache) Insert(a mem.BlockAddr, vm mem.VMID) (b *Block, victim EvictInfo, evicted bool) {
	s := c.setIndex(a)
	if c.jn != nil {
		c.jsave(s)
	}
	set := c.sets[s]
	var slot *Block
	for i := range set {
		if set[i].Valid && set[i].Addr == a {
			panic(fmt.Sprintf("cache %s: double insert of block %d", c.cfg.Name, a))
		}
		if !set[i].Valid && slot == nil {
			slot = &set[i]
		}
	}
	if slot == nil {
		slot = &set[0]
		for i := 1; i < len(set); i++ {
			if set[i].lru < slot.lru {
				slot = &set[i]
			}
		}
		victim = EvictInfo{Addr: slot.Addr, Tokens: slot.Tokens, Owner: slot.Owner, Dirty: slot.Dirty, VM: slot.VM}
		evicted = true
		// Clear the slot before firing callbacks so reentrant operations
		// (e.g. a residence-triggered FlushVM) never see the victim as
		// still valid.
		*slot = Block{}
		c.decResident(victim.VM)
		if c.OnDrop != nil {
			c.OnDrop(victim.Addr)
		}
	}
	c.tick++
	*slot = Block{Addr: a, Valid: true, VM: vm, lru: c.tick}
	c.incResident(vm)
	if c.OnInsert != nil {
		c.OnInsert(a, vm)
	}
	return slot, victim, evicted
}

// Invalidate removes b from the cache (e.g. all tokens taken by a GETX)
// and returns its final token state for the controller to forward.
func (c *Cache) Invalidate(b *Block) EvictInfo {
	if !b.Valid {
		panic(fmt.Sprintf("cache %s: invalidate of invalid block", c.cfg.Name))
	}
	if c.jn != nil {
		c.jsave(c.setIndex(b.Addr))
	}
	info := EvictInfo{Addr: b.Addr, Tokens: b.Tokens, Owner: b.Owner, Dirty: b.Dirty, VM: b.VM}
	// Clear before callbacks: a reentrant FlushVM from a residence trigger
	// must not double-invalidate this block.
	*b = Block{}
	c.decResident(info.VM)
	if c.OnDrop != nil {
		c.OnDrop(info.Addr)
	}
	return info
}

// FlushPage invalidates every block of host page p and returns their final
// states (used when the hypervisor marks a page RO-shared: dirty lines
// must reach memory so it holds a clean copy).
func (c *Cache) FlushPage(p mem.HostPage) []EvictInfo {
	var out []EvictInfo
	lo := mem.BlockInPage(p, 0)
	hi := mem.BlockInPage(p, mem.BlocksPerPage-1)
	for s := range c.sets {
		set := c.sets[s]
		for i := range set {
			if set[i].Valid && set[i].Addr >= lo && set[i].Addr <= hi {
				out = append(out, c.Invalidate(&set[i]))
			}
		}
	}
	return out
}

// FlushVM invalidates every block tagged with vm (the "selective flush"
// alternative discussed in Section IV.B) and returns their states.
func (c *Cache) FlushVM(vm mem.VMID) []EvictInfo {
	var out []EvictInfo
	for s := range c.sets {
		set := c.sets[s]
		for i := range set {
			if set[i].Valid && set[i].VM == vm {
				out = append(out, c.Invalidate(&set[i]))
			}
		}
	}
	return out
}

// CorruptResidence adds delta to vm's residence counter without touching
// any tags — a deliberate soft-error injection (internal/fault). A negative
// delta models the bit-flip that later surfaces as an underflow; a positive
// delta models a stuck count that delays map removal (performance-only, per
// the paper's safety argument).
func (c *Cache) CorruptResidence(vm mem.VMID, delta int) {
	c.resident[c.counterIdx(vm)] += delta
}

// RecountResidence rebuilds every residence counter from the cache tags,
// the recovery action after a detected counter fault.
func (c *Cache) RecountResidence() {
	for i := range c.resident {
		c.resident[i] = 0
	}
	c.ForEachValid(func(b *Block) { c.resident[c.counterIdx(b.VM)]++ })
}

// ForEachValid calls fn for every valid block. fn receives mutable blocks,
// so an armed checkpoint journal conservatively records every set first;
// runtime callers are invariant checks and fault recovery, neither of which
// runs inside a speculative epoch, so the bulk pre-image never happens on
// the optimistic fast path.
func (c *Cache) ForEachValid(fn func(*Block)) {
	if c.jn != nil {
		c.jsaveAll()
	}
	for s := range c.sets {
		set := c.sets[s]
		for i := range set {
			if set[i].Valid {
				fn(&set[i])
			}
		}
	}
}

// CountValid returns the number of valid blocks (for tests/invariants).
func (c *Cache) CountValid() int {
	n := 0
	c.ForEachValid(func(*Block) { n++ })
	return n
}
