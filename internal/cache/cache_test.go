package cache

import (
	"testing"
	"testing/quick"

	"vsnoop/internal/mem"
	"vsnoop/internal/sim"
)

func small() *Cache {
	return New(Config{Name: "t", SizeBytes: 4 * 1024, Ways: 4, BlockBytes: 64, HitLatency: 2})
}

func TestConfigValidate(t *testing.T) {
	bad := Config{Name: "b", SizeBytes: 3000, Ways: 4, BlockBytes: 64}
	if err := bad.Validate(); err == nil {
		t.Fatal("non-power-of-two sets accepted")
	}
	good := Config{Name: "g", SizeBytes: 32 * 1024, Ways: 4, BlockBytes: 64}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertLookup(t *testing.T) {
	c := small()
	b, _, ev := c.Insert(100, 1)
	if ev {
		t.Fatal("eviction from empty cache")
	}
	if b.Addr != 100 || !b.Valid || b.VM != 1 || b.Tokens != 0 {
		t.Fatalf("inserted block wrong: %+v", b)
	}
	if got := c.Lookup(100); got != b {
		t.Fatal("lookup after insert failed")
	}
	if c.Lookup(101) != nil {
		t.Fatal("lookup of absent block succeeded")
	}
}

func TestLRUEviction(t *testing.T) {
	c := small() // 16 sets, 4 ways
	nSets := uint64(c.NumSets())
	// Fill one set with 4 blocks mapping to set 0.
	addrs := []mem.BlockAddr{0, mem.BlockAddr(nSets), mem.BlockAddr(2 * nSets), mem.BlockAddr(3 * nSets)}
	for _, a := range addrs {
		c.Insert(a, 1)
	}
	// Touch the first so the second becomes LRU.
	c.Touch(c.Lookup(addrs[0]))
	_, victim, ev := c.Insert(mem.BlockAddr(4*nSets), 1)
	if !ev {
		t.Fatal("expected eviction from full set")
	}
	if victim.Addr != addrs[1] {
		t.Fatalf("evicted %d, want LRU %d", victim.Addr, addrs[1])
	}
	if c.Lookup(addrs[1]) != nil {
		t.Fatal("victim still present")
	}
	if c.Lookup(addrs[0]) == nil {
		t.Fatal("recently touched block evicted")
	}
}

func TestEvictInfoCarriesTokenState(t *testing.T) {
	c := small()
	nSets := uint64(c.NumSets())
	b, _, _ := c.Insert(0, 3)
	b.Tokens = 5
	b.Owner = true
	b.Dirty = true
	for i := uint64(1); i <= 3; i++ {
		c.Insert(mem.BlockAddr(i*nSets), 3)
	}
	_, victim, ev := c.Insert(mem.BlockAddr(4*nSets), 3)
	if !ev {
		t.Fatal("no eviction")
	}
	if victim.Tokens != 5 || !victim.Owner || !victim.Dirty || victim.VM != 3 {
		t.Fatalf("victim state lost: %+v", victim)
	}
}

func TestResidenceCounters(t *testing.T) {
	c := small()
	c.Insert(1, 1)
	c.Insert(2, 1)
	c.Insert(3, 2)
	if c.Resident(1) != 2 || c.Resident(2) != 1 {
		t.Fatalf("counters: vm1=%d vm2=%d", c.Resident(1), c.Resident(2))
	}
	c.Invalidate(c.Lookup(1))
	if c.Resident(1) != 1 {
		t.Fatalf("counter after invalidate = %d", c.Resident(1))
	}
	c.Invalidate(c.Lookup(2))
	if c.Resident(1) != 0 {
		t.Fatalf("counter not zero: %d", c.Resident(1))
	}
}

func TestOnResidenceZeroFires(t *testing.T) {
	c := small()
	var fired []mem.VMID
	c.OnResidenceZero = func(vm mem.VMID) { fired = append(fired, vm) }
	c.Insert(1, 7)
	c.Insert(2, 7)
	c.Invalidate(c.Lookup(1))
	if len(fired) != 0 {
		t.Fatal("fired before counter reached zero")
	}
	c.Invalidate(c.Lookup(2))
	if len(fired) != 1 || fired[0] != 7 {
		t.Fatalf("fired = %v, want [7]", fired)
	}
}

func TestOnResidenceBelowThreshold(t *testing.T) {
	c := small()
	c.Threshold = 2
	var events []int
	c.OnResidenceBelow = func(vm mem.VMID, n int) { events = append(events, n) }
	c.Insert(1, 9)
	c.Insert(2, 9)
	c.Insert(3, 9)
	c.Invalidate(c.Lookup(1)) // 2: not below threshold 2
	c.Invalidate(c.Lookup(2)) // 1: below
	c.Invalidate(c.Lookup(3)) // 0: below
	if len(events) != 2 || events[0] != 1 || events[1] != 0 {
		t.Fatalf("threshold events = %v, want [1 0]", events)
	}
}

func TestStateDerivation(t *testing.T) {
	const T = 17
	cases := []struct {
		b    Block
		want State
	}{
		{Block{Valid: false}, Invalid},
		{Block{Valid: true, Tokens: 0}, Invalid},
		{Block{Valid: true, Tokens: 1}, Shared},
		{Block{Valid: true, Tokens: 3, Owner: true}, Owned},
		{Block{Valid: true, Tokens: 3, Owner: true, Dirty: true}, Owned},
		{Block{Valid: true, Tokens: T, Owner: true}, Exclusive},
		{Block{Valid: true, Tokens: T, Owner: true, Dirty: true}, Modified},
	}
	for i, tc := range cases {
		if got := StateOf(&tc.b, T); got != tc.want {
			t.Errorf("case %d: state = %v, want %v", i, got, tc.want)
		}
	}
}

func TestFlushPage(t *testing.T) {
	c := New(Config{Name: "big", SizeBytes: 64 * 1024, Ways: 8, BlockBytes: 64})
	p := mem.HostPage(5)
	for i := 0; i < mem.BlocksPerPage; i++ {
		c.Insert(mem.BlockInPage(p, i), 1)
	}
	c.Insert(mem.BlockInPage(6, 0), 1) // different page
	out := c.FlushPage(p)
	if len(out) != mem.BlocksPerPage {
		t.Fatalf("flushed %d blocks, want %d", len(out), mem.BlocksPerPage)
	}
	if c.Lookup(mem.BlockInPage(6, 0)) == nil {
		t.Fatal("flush removed block of another page")
	}
	if c.Resident(1) != 1 {
		t.Fatalf("residence after flush = %d, want 1", c.Resident(1))
	}
}

func TestFlushVM(t *testing.T) {
	c := small()
	c.Insert(1, 1)
	c.Insert(2, 2)
	c.Insert(3, 1)
	out := c.FlushVM(1)
	if len(out) != 2 {
		t.Fatalf("flushed %d, want 2", len(out))
	}
	if c.Resident(1) != 0 || c.Resident(2) != 1 {
		t.Fatal("flushVM residence wrong")
	}
	if c.Lookup(2) == nil {
		t.Fatal("flushVM removed another VM's block")
	}
}

func TestDoubleInsertPanics(t *testing.T) {
	c := small()
	c.Insert(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("double insert did not panic")
		}
	}()
	c.Insert(1, 1)
}

// Property: the residence counter always equals the exact number of valid
// blocks per VM, under random insert/invalidate/flush sequences.
func TestResidenceCounterExactProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, opsRaw uint16) bool {
		r := sim.NewRand(seed)
		c := small()
		ops := int(opsRaw%500) + 50
		next := mem.BlockAddr(0)
		for i := 0; i < ops; i++ {
			switch r.Intn(10) {
			case 0, 1, 2, 3, 4, 5:
				vm := mem.VMID(r.Intn(4))
				if c.Lookup(next) == nil {
					c.Insert(next, vm)
				}
				next = mem.BlockAddr(r.Intn(512))
			case 6, 7:
				a := mem.BlockAddr(r.Intn(512))
				if b := c.Lookup(a); b != nil {
					c.Invalidate(b)
				}
			case 8:
				c.FlushVM(mem.VMID(r.Intn(4)))
			case 9:
				c.FlushPage(mem.HostPage(r.Intn(8)))
			}
		}
		counts := make(map[mem.VMID]int)
		c.ForEachValid(func(b *Block) { counts[b.VM]++ })
		for vm := mem.VMID(0); vm < 4; vm++ {
			if c.Resident(vm) != counts[vm] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: a set never holds two valid blocks with the same address, and
// never more blocks than ways.
func TestSetInvariantProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := sim.NewRand(seed)
		c := small()
		for i := 0; i < 1000; i++ {
			a := mem.BlockAddr(r.Intn(256))
			if c.Lookup(a) == nil {
				c.Insert(a, mem.VMID(r.Intn(3)))
			} else if r.Bool(0.3) {
				c.Invalidate(c.Lookup(a))
			}
		}
		seen := make(map[mem.BlockAddr]bool)
		dup := false
		c.ForEachValid(func(b *Block) {
			if seen[b.Addr] {
				dup = true
			}
			seen[b.Addr] = true
		})
		return !dup && c.CountValid() <= c.NumSets()*4
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}
