package cache

// Checkpointing for the optimistic (Time Warp) shard engine. Two regimes:
//
//   - Flat: Save bulk-copies every block. Simple, but O(cache size) per
//     checkpoint — ruinous when epochs are a few dozen cycles wide and an
//     epoch touches a handful of sets.
//
//   - Journaled: the engine arms a copy-on-first-touch journal at the
//     epoch-base checkpoint. Each mutating access records its set's
//     pre-image once per checkpoint generation; Save is then just a mark in
//     the journal (plus the small flat state: tick and the residence
//     counter file), Restore unwinds pre-images newest-first down to the
//     slot's mark, and Commit truncates everything. Cost is O(sets touched
//     per epoch), not O(cache size).
//
// Restoring to slot j by a backward walk is exact: the oldest journal
// entry for a set at or above slot j's mark holds that set's value at the
// first touch after some checkpoint g >= j, and the set was untouched
// between checkpoint j and that touch (otherwise an earlier entry would
// exist), so the last pre-image the walk applies is the set's state at
// checkpoint j.

// journal is the copy-on-first-touch undo log. Backing arrays are reused
// across epochs, so steady-state checkpointing allocates only when the
// per-epoch footprint grows past its high-water mark.
type journal struct {
	gen    uint64   // current checkpoint generation (bumped per Save/Restore/Commit)
	setGen []uint64 // per set: generation whose journal already holds its pre-image
	idx    []int32  // touched set index, in touch order
	blocks []Block  // pre-image arena: entry e occupies [e*ways, (e+1)*ways)
}

// Snap is one checkpoint of a cache. Under the flat regime blocks holds a
// full copy; under the journaled regime mark is the journal length at save
// time and blocks stays empty. tick and the residence counter file are
// always copied flat (they are a few words).
type Snap struct {
	blocks   []Block
	mark     int
	resident []int
	tick     uint64
}

// EnableJournal allocates the journal (disarmed). Call once, before the
// run, on caches owned by an optimistic shard engine. Until the first Save
// the journal stays disarmed and the mutation hooks cost one nil check.
func (c *Cache) EnableJournal() {
	c.jnStore = &journal{gen: 1, setGen: make([]uint64, len(c.sets))}
}

// jsave records set s's pre-image once per generation. Callers guard with
// c.jn != nil (armed).
func (c *Cache) jsave(s uint64) {
	j := c.jn
	if j.setGen[s] == j.gen {
		return
	}
	j.setGen[s] = j.gen
	j.idx = append(j.idx, int32(s))
	j.blocks = append(j.blocks, c.sets[s]...)
}

// jsaveAll records every set (bulk escape hatch for whole-cache walks that
// hand out mutable blocks).
func (c *Cache) jsaveAll() {
	for s := range c.sets {
		c.jsave(uint64(s))
	}
}

// Save checkpoints the cache into s: a journal mark when journaling is
// enabled (arming the mutation hooks), a full block copy otherwise.
func (c *Cache) Save(s *Snap) {
	if j := c.jnStore; j != nil {
		c.jn = j
		s.mark = len(j.idx)
		s.blocks = s.blocks[:0]
		j.gen++
	} else {
		s.blocks = s.blocks[:0]
		for _, set := range c.sets {
			s.blocks = append(s.blocks, set...)
		}
	}
	s.resident = append(s.resident[:0], c.resident...)
	s.tick = c.tick
}

// Restore rewinds the cache to the state captured by Save. The residence
// counter file is truncated back to its saved length: entries a VM's first
// touch appended during rolled-back speculation are regrown (as zeros) if
// the replay touches that VM again, reproducing the original growth order.
// Journaled restore disarms the hooks: the engine's post-rollback replay
// runs straight to the commit horizon, after which everything is final.
func (c *Cache) Restore(s *Snap) {
	if j := c.jnStore; j != nil {
		ways := c.cfg.Ways
		for e := len(j.idx) - 1; e >= s.mark; e-- {
			copy(c.sets[j.idx[e]], j.blocks[e*ways:(e+1)*ways])
		}
		j.idx = j.idx[:s.mark]
		j.blocks = j.blocks[:s.mark*ways]
		j.gen++
		c.jn = nil
	} else {
		i := 0
		for _, set := range c.sets {
			copy(set, s.blocks[i:i+len(set)])
			i += len(set)
		}
	}
	c.resident = append(c.resident[:0], s.resident...)
	c.tick = s.tick
}

// CommitSnap finalizes the epoch: the journal truncates and disarms. Every
// Save mark taken this epoch is dead after this call.
func (c *Cache) CommitSnap() {
	if j := c.jnStore; j != nil {
		j.idx = j.idx[:0]
		j.blocks = j.blocks[:0]
		j.gen++
		c.jn = nil
	}
}
