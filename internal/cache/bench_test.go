package cache

import (
	"testing"

	"vsnoop/internal/mem"
)

func benchCache() *Cache {
	return New(Config{Name: "L2", SizeBytes: 256 * 1024, Ways: 8, BlockBytes: 64, HitLatency: 10})
}

func BenchmarkLookupHit(b *testing.B) {
	c := benchCache()
	for i := 0; i < 1024; i++ {
		c.Insert(mem.BlockAddr(i), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Lookup(mem.BlockAddr(i&1023)) == nil {
			b.Fatal("unexpected miss")
		}
	}
}

func BenchmarkLookupMiss(b *testing.B) {
	c := benchCache()
	for i := 0; i < 1024; i++ {
		c.Insert(mem.BlockAddr(i), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Lookup(mem.BlockAddr(1_000_000+i)) != nil {
			b.Fatal("unexpected hit")
		}
	}
}

func BenchmarkInsertEvict(b *testing.B) {
	c := benchCache()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := mem.BlockAddr(i)
		if c.Lookup(a) == nil {
			c.Insert(a, mem.VMID(i&3))
		}
	}
}

func BenchmarkFlushVM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := benchCache()
		for j := 0; j < 4096; j++ {
			c.Insert(mem.BlockAddr(j), mem.VMID(j&3))
		}
		b.StartTimer()
		c.FlushVM(1)
	}
}
