package workload

import (
	"testing"

	"vsnoop/internal/mem"
)

func TestProfilesWellFormed(t *testing.T) {
	names := Names()
	if len(names) < 20 {
		t.Fatalf("only %d profiles", len(names))
	}
	for _, n := range names {
		p := MustGet(n)
		if p.Name != n {
			t.Errorf("%s: Name field = %q", n, p.Name)
		}
		sum := p.HotFrac + p.SharedFrac + p.ColdFrac + p.ContentFrac
		if sum > 1.0001 {
			t.Errorf("%s: access fractions sum to %v > 1", n, sum)
		}
		if p.XenFrac+p.Dom0Frac > 0.16 {
			t.Errorf("%s: hypervisor access fraction %v implausibly high", n, p.XenFrac+p.Dom0Frac)
		}
		if p.HotPages <= 0 || p.WriteFrac < 0 || p.WriteFrac > 1 {
			t.Errorf("%s: bad knobs %+v", n, p)
		}
		if p.BurstMeanMS <= 0 || p.WorkMS <= 0 {
			t.Errorf("%s: bad scheduler knobs", n)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, ok := Get("nosuchapp"); ok {
		t.Fatal("Get of unknown profile succeeded")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p := MustGet("fft")
	a := NewGenerator(p, 4, 0, 99)
	b := NewGenerator(p, 4, 0, 99)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams diverged at ref %d", i)
		}
	}
	c := NewGenerator(p, 4, 1, 99) // different thread: different stream
	same := 0
	a = NewGenerator(p, 4, 0, 99)
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("threads produce near-identical streams (%d/1000)", same)
	}
}

func TestGeneratorRefsInBounds(t *testing.T) {
	for _, n := range Names() {
		p := MustGet(n)
		l := NewLayout(p, 4)
		g := NewGenerator(p, 4, 2, 7)
		for i := 0; i < 5000; i++ {
			r := g.Next()
			if r.Block < 0 || r.Block >= mem.BlocksPerPage {
				t.Fatalf("%s: block %d out of range", n, r.Block)
			}
			switch r.Ctx {
			case CtxGuest:
				if int(r.Page) < 0 || int(r.Page) >= l.TotalPages() {
					t.Fatalf("%s: guest page %d outside %d-page space", n, r.Page, l.TotalPages())
				}
			case CtxXen, CtxDom0:
				if r.Hv < 0 || r.Hv >= 128 {
					t.Fatalf("%s: hv page index %d", n, r.Hv)
				}
			}
		}
	}
}

func TestContentAccessesAreReadOnly(t *testing.T) {
	p := MustGet("blackscholes") // highest content fraction
	l := NewLayout(p, 4)
	lo, hi := l.ContentRange()
	g := NewGenerator(p, 4, 0, 3)
	for i := 0; i < 20000; i++ {
		r := g.Next()
		if r.Ctx == CtxGuest && int(r.Page) >= lo && int(r.Page) < hi && r.Write {
			t.Fatal("write issued to a content-shared page")
		}
	}
}

func TestAccessMixMatchesProfile(t *testing.T) {
	p := MustGet("canneal")
	l := NewLayout(p, 4)
	lo, hi := l.ContentRange()
	g := NewGenerator(p, 4, 0, 11)
	const n = 200000
	content, xen, dom0 := 0, 0, 0
	for i := 0; i < n; i++ {
		r := g.Next()
		switch r.Ctx {
		case CtxXen:
			xen++
		case CtxDom0:
			dom0++
		case CtxGuest:
			if int(r.Page) >= lo && int(r.Page) < hi {
				content++
			}
		}
	}
	cf := float64(content) / n
	if cf < p.ContentFrac*0.85 || cf > p.ContentFrac*1.15 {
		t.Fatalf("content access fraction = %v, profile says %v", cf, p.ContentFrac)
	}
	xf := float64(xen) / n
	if xf < p.XenFrac*0.5 || xf > p.XenFrac*2.0 {
		t.Fatalf("xen fraction = %v, profile says %v", xf, p.XenFrac)
	}
	_ = dom0
}

func TestLayoutPartitionsDisjoint(t *testing.T) {
	p := MustGet("fft")
	l := NewLayout(p, 4)
	if l.TotalPages() != p.GuestPages(4) {
		t.Fatalf("layout total %d != GuestPages %d", l.TotalPages(), p.GuestPages(4))
	}
	lo, hi := l.ContentRange()
	if lo != 0 || hi != p.ContentPages {
		t.Fatalf("content range [%d,%d)", lo, hi)
	}
}

func TestHotSetsPerThreadDisjoint(t *testing.T) {
	p := MustGet("lu")
	l := NewLayout(p, 4)
	_, contentHi := l.ContentRange()
	pagesSeen := make([]map[mem.GuestPage]bool, 4)
	for th := 0; th < 4; th++ {
		pagesSeen[th] = map[mem.GuestPage]bool{}
		g := NewGenerator(p, 4, th, 5)
		for i := 0; i < 30000; i++ {
			r := g.Next()
			// Hot region pages only (between content and shared regions).
			hotLo := contentHi + th*p.HotPages
			hotHi := hotLo + p.HotPages
			if r.Ctx == CtxGuest && int(r.Page) >= contentHi && int(r.Page) < contentHi+4*p.HotPages {
				if int(r.Page) < hotLo || int(r.Page) >= hotHi {
					t.Fatalf("thread %d touched another thread's hot page %d", th, r.Page)
				}
				pagesSeen[th][r.Page] = true
			}
		}
		if len(pagesSeen[th]) == 0 {
			t.Fatalf("thread %d never touched its hot set", th)
		}
	}
}
