package workload

import "vsnoop/internal/sim"

// GenState is the complete mutable state of a Generator: the RNG and the
// three streaming pointers. Everything else (profile, layout, thread index)
// is immutable after construction. The optimistic shard engine checkpoints
// vCPU reference streams with it.
type GenState struct {
	Rng        sim.Rand
	ColdPtr    int
	ContentPtr int
	PartPtr    int
}

// State captures the generator's mutable state.
func (g *Generator) State() GenState {
	return GenState{Rng: *g.rng, ColdPtr: g.coldPtr, ContentPtr: g.contentPtr, PartPtr: g.partPtr}
}

// SetState rewinds the generator to a state captured by State; the replayed
// reference stream is bit-identical to the original.
func (g *Generator) SetState(s GenState) {
	*g.rng = s.Rng
	g.coldPtr = s.ColdPtr
	g.contentPtr = s.ContentPtr
	g.partPtr = s.PartPtr
}
