// Package workload provides synthetic memory-reference generators that
// stand in for the paper's benchmark binaries (SPLASH-2, PARSEC, SPECjbb,
// OLTP, SPECweb run under Simics/Virtual-GEMS — see DESIGN.md for the
// substitution argument).
//
// Each application is described by a Profile whose knobs are calibrated to
// the paper's published per-benchmark statistics:
//
//   - hypervisor/dom0 activity fractions            (Figure 1)
//   - scheduler burst/block rhythm                  (Table I, Figure 3)
//   - content-shared access and miss fractions      (Table V)
//   - working-set sizes / cache behaviour           (Figures 7-9)
//
// A Generator emits a deterministic pseudo-random reference stream for one
// vCPU: guest accesses over a layout of per-thread hot pages, VM-shared
// pages, content-shared pages and a cold streaming region, plus accesses
// executed in hypervisor (Xen) or dom0 context.
package workload

import (
	"fmt"
	"sort"

	"vsnoop/internal/mem"
	"vsnoop/internal/sim"
)

// Ctx tells which execution context issued a reference; the paper's
// Figure 1 decomposes L2 misses by exactly these three classes.
type Ctx uint8

const (
	// CtxGuest is ordinary guest-VM execution.
	CtxGuest Ctx = iota
	// CtxXen is hypervisor execution (RW-shared hypervisor region).
	CtxXen
	// CtxDom0 is privileged-VM I/O handling on behalf of the guest.
	CtxDom0
)

func (c Ctx) String() string { return [...]string{"guest", "xen", "dom0"}[c] }

// Ref is one memory reference produced by a generator.
type Ref struct {
	Ctx   Ctx
	Page  mem.GuestPage // guest page (CtxGuest)
	Hv    int           // hypervisor-region page index (CtxXen/CtxDom0)
	Block int           // block index within the page (0..63)
	Write bool
}

// Profile describes one application's behaviour. All fields are
// per-VM; page counts are 4 KB pages.
type Profile struct {
	Name string

	// Guest memory layout and access mix.
	HotPages    int     // per-thread high-locality working set
	SharedPages int     // VM-wide shared region (intra-VM sharing)
	ColdPages   int     // streaming region driving L2 misses
	HotFrac     float64 // access fraction to the per-thread hot set
	HotSkew     float64 // zipf skew of hot-set accesses (0 = default 0.5)
	SharedFrac  float64 // access fraction to the VM-shared region
	ColdFrac    float64 // access fraction to the streaming region
	WriteFrac   float64 // store fraction of guest accesses

	// Content-based sharing (Table V calibration).
	ContentPages int     // pages identical across VMs of this app
	ContentFrac  float64 // access fraction to content pages (Table V col 1)
	ContentReuse float64 // probability a content access hits a hot subset
	// (low reuse => content accesses stream and dominate L2 misses)
	// ContentPartition is the probability a streaming content access stays
	// inside the thread's own page partition (data-parallel scan). High
	// partitioning means a VM's own caches rarely hold a missed content
	// block while the friend VM's matching thread often does — the
	// intra-VM/friend-VM asymmetry of Table VI.
	ContentPartition float64

	// Hypervisor interaction (Figure 1 calibration).
	XenFrac  float64 // access fraction executed in hypervisor context
	Dom0Frac float64 // access fraction executed by dom0

	// Credit-scheduler behaviour (Table I / Figure 3 calibration).
	BurstMeanMS float64
	BlockMeanMS float64
	WorkMS      float64
	// SerialFrac is the VM's serial-phase fraction (Amdahl sections);
	// see hv.TaskSpec.SerialFrac.
	SerialFrac float64
}

// GuestPages returns the size of the guest-physical space the profile
// needs for nThreads vCPUs.
func (p Profile) GuestPages(nThreads int) int {
	return p.ContentPages + nThreads*p.HotPages + p.SharedPages + p.ColdPages
}

// TaskSpec converts the profile's scheduler knobs for the hv package.
func (p Profile) TaskSpec() (work, burst, block float64) {
	return p.WorkMS, p.BurstMeanMS, p.BlockMeanMS
}

// Layout gives the page-range boundaries of a VM's guest space.
type Layout struct {
	nThreads    int
	p           Profile
	contentLo   int
	hotLo       int
	sharedLo    int
	coldLo      int
	totalGuest  int
	contentHotN int
}

// NewLayout computes the guest-space layout for a profile.
func NewLayout(p Profile, nThreads int) Layout {
	l := Layout{nThreads: nThreads, p: p}
	l.contentLo = 0
	l.hotLo = l.contentLo + p.ContentPages
	l.sharedLo = l.hotLo + nThreads*p.HotPages
	l.coldLo = l.sharedLo + p.SharedPages
	l.totalGuest = l.coldLo + p.ColdPages
	l.contentHotN = p.ContentPages / 8
	if l.contentHotN < 1 {
		l.contentHotN = 1
	}
	if l.contentHotN > 8 {
		l.contentHotN = 8 // the reused subset stays small (library/code pages)
	}
	return l
}

// partitionBlocks returns the number of blocks in one thread's content
// page partition (pages p with p %% nThreads == thread).
func (g *Generator) partitionBlocks() int {
	return (g.p.ContentPages / g.l.nThreads) * mem.BlocksPerPage
}

// TotalPages returns the guest space size in pages.
func (l Layout) TotalPages() int { return l.totalGuest }

// ContentRange returns [lo, hi) of the content-shared page range.
func (l Layout) ContentRange() (int, int) { return l.contentLo, l.contentLo + l.p.ContentPages }

// Generator produces the reference stream of one vCPU.
type Generator struct {
	p      Profile
	l      Layout
	thread int
	rng    *sim.Rand

	coldPtr    int // streaming pointer (page*64+block) in cold region
	contentPtr int // streaming pointer in content region (global scan)
	partPtr    int // streaming pointer within the thread's page partition
}

// NewGenerator builds the generator for one vCPU (thread index within the
// VM). seed should combine the run seed, VM and thread so streams are
// independent and reproducible.
func NewGenerator(p Profile, nThreads, thread int, seed uint64) *Generator {
	g := &Generator{
		p: p, l: NewLayout(p, nThreads), thread: thread,
		rng: sim.NewRandTagged(seed, fmt.Sprintf("%s.t%d", p.Name, thread)),
	}
	// Desynchronize streaming pointers across threads.
	if p.ColdPages > 0 {
		g.coldPtr = g.rng.Intn(p.ColdPages * mem.BlocksPerPage)
	}
	if p.ContentPages > 0 {
		g.contentPtr = g.rng.Intn(p.ContentPages * mem.BlocksPerPage)
		if n := g.partitionBlocks(); n > 0 {
			g.partPtr = g.rng.Intn(n)
		}
	}
	return g
}

// Next returns the next reference in the stream.
func (g *Generator) Next() Ref {
	r := g.rng
	// Context first: hypervisor and dom0 activity interleaves with guest
	// execution.
	u := r.Float64()
	if u < g.p.XenFrac {
		return Ref{Ctx: CtxXen, Hv: r.Intn(64), Block: r.Intn(mem.BlocksPerPage),
			Write: r.Bool(0.3)}
	}
	if u < g.p.XenFrac+g.p.Dom0Frac {
		// dom0 touches a separate slice of the shared region (I/O rings
		// and its own buffers), offset so Xen and dom0 misses are
		// distinguishable.
		return Ref{Ctx: CtxDom0, Hv: 64 + r.Intn(64), Block: r.Intn(mem.BlocksPerPage),
			Write: r.Bool(0.5)}
	}

	write := r.Bool(g.p.WriteFrac)
	v := r.Float64()
	switch {
	case v < g.p.ContentFrac && g.p.ContentPages > 0:
		// Content-shared access: reads only (stores would COW; the paper's
		// detector shares read-only pages, and workloads treat them as
		// code/read-mostly data).
		var page, block int
		switch {
		case r.Bool(g.p.ContentReuse):
			page = r.Zipf(g.l.contentHotN, 0.6)
			block = r.Intn(mem.BlocksPerPage)
		case g.partitionBlocks() > 0 && r.Bool(g.p.ContentPartition):
			// Data-parallel scan over the thread's own page partition.
			g.partPtr = (g.partPtr + 1) % g.partitionBlocks()
			k := g.partPtr / mem.BlocksPerPage
			page = g.thread + g.l.nThreads*k
			block = g.partPtr % mem.BlocksPerPage
		default:
			g.contentPtr = (g.contentPtr + 1) % (g.p.ContentPages * mem.BlocksPerPage)
			page = g.contentPtr / mem.BlocksPerPage
			block = g.contentPtr % mem.BlocksPerPage
		}
		return Ref{Ctx: CtxGuest, Page: mem.GuestPage(g.l.contentLo + page), Block: block}
	case v < g.p.ContentFrac+g.p.ColdFrac && g.p.ColdPages > 0:
		g.coldPtr = (g.coldPtr + 1) % (g.p.ColdPages * mem.BlocksPerPage)
		page := g.l.coldLo + g.coldPtr/mem.BlocksPerPage
		return Ref{Ctx: CtxGuest, Page: mem.GuestPage(page),
			Block: g.coldPtr % mem.BlocksPerPage, Write: write}
	case v < g.p.ContentFrac+g.p.ColdFrac+g.p.SharedFrac && g.p.SharedPages > 0:
		page := g.l.sharedLo + r.Intn(g.p.SharedPages)
		return Ref{Ctx: CtxGuest, Page: mem.GuestPage(page),
			Block: r.Intn(mem.BlocksPerPage), Write: write}
	default:
		skew := g.p.HotSkew
		if skew == 0 {
			skew = 0.5
		}
		page := g.l.hotLo + g.thread*g.p.HotPages + r.Zipf(g.p.HotPages, skew)
		return Ref{Ctx: CtxGuest, Page: mem.GuestPage(page),
			Block: r.Intn(mem.BlocksPerPage), Write: write}
	}
}

// Names returns all profile names in sorted order.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get returns the profile named n; ok is false for unknown names.
func Get(n string) (Profile, bool) {
	p, ok := profiles[n]
	return p, ok
}

// MustGet returns the profile named n or panics.
func MustGet(n string) Profile {
	p, ok := profiles[n]
	if !ok {
		panic(fmt.Sprintf("workload: unknown profile %q", n))
	}
	return p
}
