package workload

// The profile table. Every knob is calibrated against a number the paper
// publishes for that benchmark:
//
//   - ContentFrac / ContentReuse / ContentPages target Table V (the share
//     of L1 accesses on content-shared pages, and — via reuse, which
//     decides whether content accesses hit in cache or stream — the share
//     of L2 misses on them).
//   - XenFrac / Dom0Frac target Figure 1 (hypervisor + dom0 share of L2
//     misses; dom0 dominates for I/O-heavy workloads).
//   - BurstMeanMS / BlockMeanMS target Table I (mean vCPU relocation
//     periods under the credit scheduler; long bursts => rare relocation).
//   - HotPages / ColdPages / fractions set the cache working set: small
//     hot sets (blackscholes) never drain from an old core's cache, while
//     streaming workloads (canneal) evict a departed VM's lines quickly
//     (Figure 9).
//
// Hypervisor-context accesses go to a 512 KB RW-shared region, so they
// miss the 256 KB L2 at a high rate; XenFrac/Dom0Frac are access-level
// fractions chosen so the resulting *miss* decomposition approximates
// Figure 1 (guest workloads miss at a few percent, the shared region at
// tens of percent).
var profiles = map[string]Profile{
	// ---- SPLASH-2 (Table III inputs; used in Section V and VI) ----
	"cholesky": {
		Name: "cholesky", HotPages: 48, SharedPages: 96, ColdPages: 256,
		HotFrac: 0.62, SharedFrac: 0.22, ColdFrac: 0.14, WriteFrac: 0.28,
		ContentPages: 32, ContentFrac: 0.0145, ContentReuse: 0.30, ContentPartition: 0.5,
		XenFrac: 0.009, Dom0Frac: 0.005,
		BurstMeanMS: 45, BlockMeanMS: 2, WorkMS: 3000, SerialFrac: 0.15,
	},
	"fft": {
		Name: "fft", HotPages: 12, SharedPages: 24, ColdPages: 384,
		HotFrac: 0.83, HotSkew: 0.8, SharedFrac: 0.03, ColdFrac: 0.08, WriteFrac: 0.30,
		ContentPages: 128, ContentFrac: 0.0543, ContentReuse: 0.02, ContentPartition: 0.9,
		XenFrac: 0.007, Dom0Frac: 0.004,
		BurstMeanMS: 40, BlockMeanMS: 2, WorkMS: 3000, SerialFrac: 0.15,
	},
	"lu": {
		Name: "lu", HotPages: 12, SharedPages: 16, ColdPages: 224,
		HotFrac: 0.966, HotSkew: 0.9, SharedFrac: 0.012, ColdFrac: 0.017, WriteFrac: 0.27,
		ContentPages: 96, ContentFrac: 0.0043, ContentReuse: 0.02, ContentPartition: 0.6,
		XenFrac: 0.006, Dom0Frac: 0.003,
		BurstMeanMS: 50, BlockMeanMS: 2, WorkMS: 3000, SerialFrac: 0.12,
	},
	"ocean": {
		Name: "ocean", HotPages: 52, SharedPages: 112, ColdPages: 320,
		HotFrac: 0.60, SharedFrac: 0.22, ColdFrac: 0.176, WriteFrac: 0.31,
		ContentPages: 24, ContentFrac: 0.004, ContentReuse: 0.45, ContentPartition: 0.5,
		XenFrac: 0.008, Dom0Frac: 0.004,
		BurstMeanMS: 42, BlockMeanMS: 2, WorkMS: 3000, SerialFrac: 0.2,
	},
	"radix": {
		Name: "radix", HotPages: 44, SharedPages: 128, ColdPages: 288,
		HotFrac: 0.47, SharedFrac: 0.19, ColdFrac: 0.135, WriteFrac: 0.33,
		// Table V: radix reads content pages constantly (20.5% of L1
		// accesses) but they stay cached (only ~1% of L2 misses).
		ContentPages: 12, ContentFrac: 0.2047, ContentReuse: 0.993, ContentPartition: 0.5,
		XenFrac: 0.0075, Dom0Frac: 0.0035,
		BurstMeanMS: 44, BlockMeanMS: 2, WorkMS: 3000, SerialFrac: 0.18,
	},

	// ---- PARSEC (simsmall/simmedium; Sections III, V, VI) ----
	"blackscholes": {
		Name: "blackscholes", HotPages: 10, SharedPages: 16, ColdPages: 24,
		HotFrac: 0.42, SharedFrac: 0.08, ColdFrac: 0.035, WriteFrac: 0.18,
		// Table V: nearly half of all accesses hit content-shared pages
		// (option tables / libraries), and they are 41% of L2 misses.
		ContentPages: 176, ContentFrac: 0.4616, ContentReuse: 0.80, ContentPartition: 0.92,
		XenFrac: 0.0037, Dom0Frac: 0.0013,
		// Table I: 2880 ms under-, 91 ms overcommitted (compute-bound).
		BurstMeanMS: 1500, BlockMeanMS: 1.5, WorkMS: 3000, SerialFrac: 0.02,
	},
	"bodytrack": {
		Name: "bodytrack", HotPages: 40, SharedPages: 80, ColdPages: 192,
		HotFrac: 0.62, SharedFrac: 0.22, ColdFrac: 0.12, WriteFrac: 0.26,
		ContentPages: 32, ContentFrac: 0.03, ContentReuse: 0.3,
		XenFrac: 0.0139, Dom0Frac: 0.0088,
		// Table I: 26.1 ms / 1.2 ms — frame-parallel, blocks constantly.
		BurstMeanMS: 18, BlockMeanMS: 2.5, WorkMS: 3000, SerialFrac: 0.3,
	},
	"canneal": {
		Name: "canneal", HotPages: 10, SharedPages: 160, ColdPages: 512,
		HotFrac: 0.56, SharedFrac: 0.07, ColdFrac: 0.11, WriteFrac: 0.24,
		// Table V: 25% of accesses, 51% of misses (huge netlist streamed).
		ContentPages: 256, ContentFrac: 0.2516, ContentReuse: 0.05, ContentPartition: 0.3,
		XenFrac: 0.0122, Dom0Frac: 0.0060,
		BurstMeanMS: 20, BlockMeanMS: 2.5, WorkMS: 3000, SerialFrac: 0.25,
	},
	"dedup": {
		Name: "dedup", HotPages: 44, SharedPages: 96, ColdPages: 256,
		HotFrac: 0.60, SharedFrac: 0.22, ColdFrac: 0.13, WriteFrac: 0.33,
		ContentPages: 32, ContentFrac: 0.02, ContentReuse: 0.3,
		// Figure 1: 11% hypervisor+dom0 (pipelined I/O through dom0).
		XenFrac: 0.0290, Dom0Frac: 0.0371,
		// Table I: 10.8 ms / 0.1 ms — the most migration-happy workload.
		BurstMeanMS: 7, BlockMeanMS: 2, WorkMS: 3000, SerialFrac: 0.35,
	},
	"facesim": {
		Name: "facesim", HotPages: 52, SharedPages: 112, ColdPages: 256,
		HotFrac: 0.63, SharedFrac: 0.21, ColdFrac: 0.125, WriteFrac: 0.29,
		ContentPages: 32, ContentFrac: 0.02, ContentReuse: 0.3,
		XenFrac: 0.0156, Dom0Frac: 0.0079,
		BurstMeanMS: 21, BlockMeanMS: 2, WorkMS: 3000, SerialFrac: 0.3,
	},
	"ferret": {
		Name: "ferret", HotPages: 46, SharedPages: 120, ColdPages: 288,
		HotFrac: 0.60, SharedFrac: 0.23, ColdFrac: 0.13, WriteFrac: 0.27,
		ContentPages: 48, ContentFrac: 0.0364, ContentReuse: 0.32, ContentPartition: 0.5,
		XenFrac: 0.0193, Dom0Frac: 0.0119,
		// Table I: 375.9 ms / 31.5 ms — pipeline stages with long stints.
		BurstMeanMS: 300, BlockMeanMS: 3, WorkMS: 3000, SerialFrac: 0.3,
	},
	"fluidanimate": {
		Name: "fluidanimate", HotPages: 48, SharedPages: 104, ColdPages: 224,
		HotFrac: 0.63, SharedFrac: 0.22, ColdFrac: 0.12, WriteFrac: 0.30,
		ContentPages: 32, ContentFrac: 0.02, ContentReuse: 0.3,
		XenFrac: 0.0157, Dom0Frac: 0.0074,
		BurstMeanMS: 33, BlockMeanMS: 2, WorkMS: 3000, SerialFrac: 0.25,
	},
	"freqmine": {
		Name: "freqmine", HotPages: 56, SharedPages: 128, ColdPages: 288,
		HotFrac: 0.64, SharedFrac: 0.21, ColdFrac: 0.115, WriteFrac: 0.24,
		ContentPages: 32, ContentFrac: 0.02, ContentReuse: 0.3,
		// Figure 1: 8% hypervisor+dom0.
		XenFrac: 0.0281, Dom0Frac: 0.0207,
		// Table I: ~2 s in both systems — barely ever blocks.
		BurstMeanMS: 1300, BlockMeanMS: 1, WorkMS: 3000, SerialFrac: 0.03,
	},
	"raytrace": {
		Name: "raytrace", HotPages: 50, SharedPages: 128, ColdPages: 256,
		HotFrac: 0.63, SharedFrac: 0.22, ColdFrac: 0.115, WriteFrac: 0.22,
		ContentPages: 48, ContentFrac: 0.03, ContentReuse: 0.4,
		// Figure 1: 7% hypervisor+dom0.
		XenFrac: 0.0271, Dom0Frac: 0.0174,
		// Table I: 528.8 ms / 23.6 ms.
		BurstMeanMS: 320, BlockMeanMS: 2, WorkMS: 3000, SerialFrac: 0.08,
	},
	"streamcluster": {
		Name: "streamcluster", HotPages: 42, SharedPages: 120, ColdPages: 320,
		HotFrac: 0.58, SharedFrac: 0.23, ColdFrac: 0.16, WriteFrac: 0.25,
		ContentPages: 32, ContentFrac: 0.02, ContentReuse: 0.3,
		XenFrac: 0.0132, Dom0Frac: 0.0062,
		BurstMeanMS: 25, BlockMeanMS: 2, WorkMS: 3000, SerialFrac: 0.35,
	},
	"swaptions": {
		Name: "swaptions", HotPages: 14, SharedPages: 24, ColdPages: 48,
		HotFrac: 0.70, SharedFrac: 0.12, ColdFrac: 0.05, WriteFrac: 0.20,
		ContentPages: 24, ContentFrac: 0.02, ContentReuse: 0.5,
		XenFrac: 0.0022, Dom0Frac: 0.0009,
		// Table I: 2203 ms / 80 ms — compute-bound Monte Carlo.
		BurstMeanMS: 1400, BlockMeanMS: 1.2, WorkMS: 3000, SerialFrac: 0.02,
	},
	"vips": {
		Name: "vips", HotPages: 44, SharedPages: 96, ColdPages: 256,
		HotFrac: 0.60, SharedFrac: 0.22, ColdFrac: 0.135, WriteFrac: 0.31,
		ContentPages: 32, ContentFrac: 0.02, ContentReuse: 0.3,
		XenFrac: 0.0180, Dom0Frac: 0.0105,
		// Table I: 18.3 ms / 0.7 ms.
		BurstMeanMS: 12, BlockMeanMS: 2, WorkMS: 3000, SerialFrac: 0.3,
	},
	"x264": {
		Name: "x264", HotPages: 46, SharedPages: 112, ColdPages: 240,
		HotFrac: 0.61, SharedFrac: 0.22, ColdFrac: 0.125, WriteFrac: 0.30,
		ContentPages: 32, ContentFrac: 0.02, ContentReuse: 0.3,
		XenFrac: 0.0193, Dom0Frac: 0.0105,
		BurstMeanMS: 20, BlockMeanMS: 2.2, WorkMS: 3000, SerialFrac: 0.3,
	},

	// ---- Server workloads ----
	"specjbb": {
		Name: "specjbb", HotPages: 12, SharedPages: 64, ColdPages: 384,
		HotFrac: 0.745, HotSkew: 0.7, SharedFrac: 0.05, ColdFrac: 0.105, WriteFrac: 0.30,
		// Table V: 9.5% of accesses, 38% of misses (JIT code + class data
		// shared across homogeneous JVMs, streamed heap beside it).
		ContentPages: 224, ContentFrac: 0.0948, ContentReuse: 0.05, ContentPartition: 0.5,
		XenFrac: 0.011, Dom0Frac: 0.008,
		BurstMeanMS: 35, BlockMeanMS: 3, WorkMS: 3000, SerialFrac: 0.2,
	},
	"oltp": {
		Name: "oltp", HotPages: 44, SharedPages: 176, ColdPages: 384,
		HotFrac: 0.55, SharedFrac: 0.24, ColdFrac: 0.12, WriteFrac: 0.34,
		ContentPages: 64, ContentFrac: 0.05, ContentReuse: 0.3,
		// Figure 1: 15% hypervisor+dom0 (disk + network I/O via dom0).
		XenFrac: 0.0410, Dom0Frac: 0.0667,
		BurstMeanMS: 10, BlockMeanMS: 4, WorkMS: 3000, SerialFrac: 0.3,
	},
	"specweb": {
		Name: "specweb", HotPages: 40, SharedPages: 160, ColdPages: 352,
		HotFrac: 0.54, SharedFrac: 0.24, ColdFrac: 0.125, WriteFrac: 0.28,
		ContentPages: 96, ContentFrac: 0.06, ContentReuse: 0.3,
		// Figure 1: 19% hypervisor+dom0 (network-intensive banking mix).
		XenFrac: 0.0493, Dom0Frac: 0.0887,
		BurstMeanMS: 8, BlockMeanMS: 4, WorkMS: 3000, SerialFrac: 0.3,
	},
}
