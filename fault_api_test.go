package vsnoop

import "testing"

// TestFaultAcceptance is the headline robustness scenario: 5% message
// drop plus one vCPU-map corruption mid-run. The run must complete with
// every invariant intact, visibly exercise the retry and degradation
// machinery, and stay deterministic.
func TestFaultAcceptance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefsPerVCPU = 10_000
	cfg.WarmupRefs = 1_000
	cfg.Policy = PolicyBase
	cfg.Fault = &FaultPlan{
		DropPct: 5,
		Events:  []FaultEvent{{AtCycle: 200_000, Kind: FaultCorruptMap, VM: 1, Core: 5}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("run failed under faults: %v", err)
	}
	if len(res.InvariantViolations) != 0 {
		t.Fatalf("invariants violated: %v", res.InvariantViolations)
	}
	if res.InvariantChecks == 0 {
		t.Fatal("checker never ran")
	}
	if res.FaultsDropped == 0 {
		t.Fatal("5% drop plan destroyed nothing")
	}
	if res.Retries == 0 {
		t.Fatal("message loss caused no retries — the recovery path never ran")
	}
	if res.Persistent == 0 {
		t.Fatal("sustained loss never escalated to the persistent path")
	}
	if res.BroadcastFallbacks == 0 {
		t.Fatal("degradation never fell back to broadcast")
	}
	if res.MapRebuilds == 0 {
		t.Fatal("corrupted map never rebuilt")
	}
}

// TestFaultDeterminism: identical (Config, FaultPlan, Seed) must give
// bit-identical public results.
func TestFaultDeterminism(t *testing.T) {
	run := func() *Result {
		cfg := quick(DefaultConfig())
		cfg.Policy = PolicyCounter
		cfg.MigrationPeriodMs = 2
		cfg.Seed = 11
		cfg.Fault = &FaultPlan{Seed: 3, DropPct: 3, DupPct: 1, DelayPct: 3,
			Events: []FaultEvent{{AtCycle: 70_000, Kind: FaultMigrationStorm, Count: 4}}}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.ExecCycles != b.ExecCycles || a.SnoopsPerTransaction != b.SnoopsPerTransaction ||
		a.TrafficByteHops != b.TrafficByteHops || a.Retries != b.Retries ||
		a.FaultsDropped != b.FaultsDropped || a.FaultsDelayed != b.FaultsDelayed ||
		a.BroadcastFallbacks != b.BroadcastFallbacks {
		t.Fatalf("identical fault runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestFaultFreeParity: a nil fault plan must leave the simulation
// byte-identical to the seed behaviour — the entire robustness subsystem
// stays off the hot path.
func TestFaultFreeParity(t *testing.T) {
	run := func(checks bool) *Result {
		cfg := quick(DefaultConfig())
		cfg.Policy = PolicyBase
		cfg.Checks = checks
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, checked := run(false), run(true)
	if plain.ExecCycles != checked.ExecCycles ||
		plain.SnoopsPerTransaction != checked.SnoopsPerTransaction ||
		plain.TrafficByteHops != checked.TrafficByteHops {
		t.Fatal("enabling observation-only checks changed results")
	}
	if plain.FaultsDropped != 0 || plain.BroadcastFallbacks != 0 || plain.MapRebuilds != 0 {
		t.Fatalf("fault counters nonzero without a plan: %+v", plain)
	}
	// The paper's ideal pinned multicast: 4 cores per snoop domain.
	if plain.SnoopsPerTransaction < 3.9 || plain.SnoopsPerTransaction > 4.1 {
		t.Fatalf("fault-free snoops/transaction = %.2f, want ~4.00 (seed parity)",
			plain.SnoopsPerTransaction)
	}
}

// TestFaultPlanValidation: malformed plans are rejected up front.
func TestFaultPlanValidation(t *testing.T) {
	cfg := quick(DefaultConfig())
	cfg.Fault = &FaultPlan{DropPct: 150}
	if _, err := Run(cfg); err == nil {
		t.Fatal("out-of-range probability accepted")
	}
	cfg = quick(DefaultConfig())
	cfg.Fault = &FaultPlan{DropPct: 1,
		Events: []FaultEvent{{Kind: FaultCorruptMap, VM: 99}}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("event targeting a nonexistent VM accepted")
	}
}

// TestMaxStepsSurfacesError: exhausting the step bound is an error, not
// a silent truncation.
func TestMaxStepsSurfacesError(t *testing.T) {
	cfg := quick(DefaultConfig())
	cfg.MaxSteps = 5_000
	if _, err := Run(cfg); err == nil {
		t.Fatal("step bound exhausted without error")
	}
}
